// Snapshots & point-in-time restore (§5 of the paper): because pages on
// the object store are retained past their MVCC death for a retention
// period, a snapshot only has to back up the tiny system dbspace — making
// snapshots near-instantaneous — and restore garbage-collects exactly the
// key range created after the snapshot.
//
//   ./build/examples/snapshot_time_travel

#include <cstdio>

#include "engine/database.h"
#include "engine/snapshot_view.h"
#include "exec/executor.h"

using namespace cloudiq;

namespace {

Status LoadGeneration(Database* db, uint64_t table_id, uint8_t version,
                      int rows) {
  TableSchema schema;
  schema.name = "ledger_v" + std::to_string(version);
  schema.table_id = table_id;
  schema.columns = {{"id", ColumnType::kInt64},
                    {"balance", ColumnType::kDecimal}};
  Transaction* txn = db->Begin();
  TableLoader loader = db->NewTableLoader(txn, schema);
  Batch batch;
  batch.AddColumn("id", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("balance", {ColumnType::kDecimal, {}, {}, {}});
  for (int i = 0; i < rows; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].ints.push_back(version * 1000 + i);
  }
  CLOUDIQ_RETURN_IF_ERROR(loader.Append(batch.columns));
  CLOUDIQ_RETURN_IF_ERROR(loader.Finish(db->system()).status());
  return db->Commit(txn);
}

int64_t SumBalances(Database* db, uint64_t table_id) {
  Transaction* txn = db->Begin();
  QueryContext ctx(&db->txn_mgr(), txn, db->system());
  Result<TableReader> reader = ctx.OpenTable(table_id);
  if (!reader.ok()) {
    (void)db->Commit(txn);
    return -1;
  }
  Result<Batch> rows = ScanTable(&ctx, &*reader, {"balance"});
  int64_t sum = 0;
  if (rows.ok()) {
    for (int64_t v : rows->column("balance").ints) sum += v;
  }
  (void)db->Commit(txn);
  return sum;
}

}  // namespace

int main() {
  SimEnvironment cloud;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.snapshot_retention_seconds = 24 * 3600;
  Database db(&cloud, InstanceProfile::M5ad4xlarge(), options);

  // Generation 1 of the data, then a snapshot.
  if (!LoadGeneration(&db, 1, 1, 20000).ok()) return 1;
  int64_t v1_sum = SumBalances(&db, 1);

  Result<SnapshotManager::SnapshotInfo> snap = db.TakeSnapshot();
  if (!snap.ok()) return 1;
  std::printf("Snapshot %llu taken in %.4f simulated seconds — it backed "
              "up only %.1f KB\n",
              static_cast<unsigned long long>(snap->id),
              snap->duration_seconds, snap->backup_bytes / 1e3);
  std::printf("(the %.1f MB of table data on the object store were NOT "
              "copied: retained pages + monotonic keys make them "
              "recoverable in place)\n\n",
              db.UserBytesAtRest() / 1e6);

  // Post-snapshot work: an extra table and lots of fresh objects.
  if (!LoadGeneration(&db, 2, 2, 20000).ok()) return 1;
  uint64_t live_before = cloud.object_store().LiveObjectCount();
  std::printf("After more loads: table 2 exists, %llu live objects\n",
              static_cast<unsigned long long>(live_before));

  // Bonus (the paper's §8 future work, implemented here): open a
  // READ-ONLY VIEW over the snapshot, without restoring. The view and
  // the live database answer queries side by side.
  {
    Result<std::unique_ptr<SnapshotView>> view =
        SnapshotView::Open(&db, snap->id);
    if (!view.ok()) return 1;
    QueryContext vctx = (*view)->NewQueryContext();
    Result<TableReader> t1 = (*view)->OpenTable(1);
    Result<Batch> rows =
        t1.ok() ? ScanTable(&vctx, &*t1, {"balance"})
                : Result<Batch>(t1.status());
    bool t2_in_view = (*view)->OpenTable(2).ok();
    std::printf("Read-only view over snapshot %llu (no restore): table 1 "
                "has %zu rows, table 2 %s\n",
                static_cast<unsigned long long>(snap->id),
                rows.ok() ? rows->rows() : 0,
                t2_in_view ? "VISIBLE (bug!)" : "not visible");
  }

  // Time travel: restore the snapshot. Keys allocated after the snapshot
  // form a contiguous range (the generator is monotonic); restore polls
  // and deletes exactly that range.
  if (!db.RestoreSnapshot(snap->id).ok()) {
    std::fprintf(stderr, "restore failed\n");
    return 1;
  }
  std::printf("\nRestored snapshot %llu:\n",
              static_cast<unsigned long long>(snap->id));
  std::printf("  table 1 intact: balances sum %lld (was %lld)\n",
              static_cast<long long>(SumBalances(&db, 1)),
              static_cast<long long>(v1_sum));
  std::printf("  table 2 gone:   %s\n",
              db.system()->Contains("tablemeta/2") ? "NO (bug!)" : "yes");
  std::printf("  post-snapshot objects GC'd: %llu -> %llu live\n",
              static_cast<unsigned long long>(live_before),
              static_cast<unsigned long long>(
                  cloud.object_store().LiveObjectCount()));
  return SumBalances(&db, 1) == v1_sum ? 0 : 1;
}
