// Runs the full workload of the paper's first experiment end to end at a
// laptop-friendly scale factor: generate and load TPC-H into a cloud
// dbspace, then execute the 22 queries sequentially in power mode,
// printing timings, the storage/cost ledger, and the per-query
// attribution summary.
//
//   ./build/examples/tpch_power_run          # SF 0.02
//   CLOUDIQ_BENCH_SF=0.1 ./build/examples/tpch_power_run
//   ./build/examples/tpch_power_run --explain
//     (per-operator EXPLAIN ANALYZE after every query: rows, sim-time,
//      object-store requests, OCM hit rate, and USD per operator)
//   ./build/examples/tpch_power_run --report=power.report.json
//     (structured JSON run report: global cost, the attribution ledger
//      by query/node/prefix, and latency percentiles)
//   ./build/examples/tpch_power_run --trace=power.trace.json
//     (then open power.trace.json in chrome://tracing or
//      https://ui.perfetto.dev to see per-layer spans on the sim
//      timeline)

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/metrics.h"
#include "tpch/queries.h"
#include "tpch/tpch_loader.h"

using namespace cloudiq;

int main(int argc, char** argv) {
  bench::InitTelemetry(argc, argv);
  double scale = bench::BenchScale(0.02);
  bench::Telemetry().scale_factor = scale;

  SimEnvironment cloud;
  bench::MaybeEnableTracing(&cloud);
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  Database db(&cloud, InstanceProfile::M5ad24xlarge(), options);
  TpchGenerator gen(scale);
  CostLedger& ledger = cloud.telemetry().ledger();

  std::printf("Loading TPC-H SF=%g into a cloud dbspace "
              "(m5ad.24xlarge)...\n",
              scale);
  AttributionContext load_attr;
  load_attr.query_id = ledger.NextQueryId();
  load_attr.node_id = db.node().trace_pid();
  load_attr.tag = "load";
  SimTime load_start = db.node().clock().now();
  Result<TpchLoadResult> load = [&] {
    ScopedAttribution scope(&ledger, load_attr);
    return LoadTpch(&db, &gen, {});
  }();
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 load.status().ToString().c_str());
    return 1;
  }
  bench::ChargePhase(&db, load_attr, load->seconds);
  cloud.telemetry().tracer().CompleteSpan(
      db.node().trace_pid(), kTrackExec, "query", "load TPC-H", load_start,
      db.node().clock().now());
  std::printf("  %llu rows in %.1f simulated s; %.1f MB raw -> %.1f MB at "
              "rest (%.2fx compression)\n\n",
              static_cast<unsigned long long>(load->rows), load->seconds,
              load->input_bytes / 1e6, load->bytes_at_rest / 1e6,
              static_cast<double>(load->input_bytes) /
                  load->bytes_at_rest);

  std::printf("%-4s %9s %11s   %s\n", "Q", "sim (s)", "ledger ($)",
              "workload shape");
  double total = 0;
  uint64_t first_query_id = 0;
  for (int q = 1; q <= kTpchQueryCount; ++q) {
    double elapsed = 0;
    Status st = bench::RunOneTpchQuery(&db, q, &elapsed);
    if (!st.ok()) {
      std::fprintf(stderr, "Q%d failed: %s\n", q, st.ToString().c_str());
      return 1;
    }
    total += elapsed;
    // Query ids are dense, handed out by NewQueryContext in run order.
    uint64_t query_id = ledger.last_query_id();
    if (first_query_id == 0) first_query_id = query_id;
    CostLedger::Entry entry = ledger.QueryTotal(query_id);
    std::printf("Q%-3d %9.3f %11.6f   %s\n", q, elapsed,
                entry.TotalUsd(ledger.prices()), TpchQueryDescription(q));
  }
  std::printf("\nPower run total: %.1f simulated seconds "
              "(load %.1f + queries %.1f)\n",
              load->seconds + total, load->seconds, total);
  std::printf("\n%s", FormatMetrics(CollectMetrics(&db)).c_str());

  // The acceptance check of the attribution design: every dollar the
  // global CostMeter accumulated must be attributed to some query (the
  // load counts as one), so the ledger's grand total matches the meter.
  CostLedger::Entry grand = ledger.GrandTotal();
  double ledger_usd = grand.TotalUsd(ledger.prices());
  double meter_usd = cloud.cost_meter().TotalComputeUsd();
  std::printf("\nattribution: ledger total $%.6f across %zu queries vs "
              "CostMeter $%.6f (%s)\n",
              ledger_usd, ledger.Queries().size(), meter_usd,
              std::fabs(ledger_usd - meter_usd) < 1e-6 ? "match"
                                                       : "MISMATCH");
  bench::MaybePrintStallTop(&cloud);
  bench::MaybeWriteTrace(&cloud);
  bench::MaybeWriteReport(&cloud, db.node().clock().now());
  return 0;
}
