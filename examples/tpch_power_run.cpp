// Runs the full workload of the paper's first experiment end to end at a
// laptop-friendly scale factor: generate and load TPC-H into a cloud
// dbspace, then execute the 22 queries sequentially in power mode,
// printing timings and the storage/cost ledger.
//
//   ./build/examples/tpch_power_run          # SF 0.02
//   CLOUDIQ_BENCH_SF=0.1 ./build/examples/tpch_power_run
//   ./build/examples/tpch_power_run --trace=power.trace.json
//     (then open power.trace.json in chrome://tracing or
//      https://ui.perfetto.dev to see per-layer spans on the sim
//      timeline)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "engine/database.h"
#include "engine/metrics.h"
#include "telemetry/tracer.h"
#include "tpch/queries.h"
#include "tpch/tpch_loader.h"

using namespace cloudiq;

int main(int argc, char** argv) {
  double scale = 0.02;
  if (const char* env = std::getenv("CLOUDIQ_BENCH_SF")) {
    double v = std::atof(env);
    if (v > 0) scale = v;
  }
  std::string trace_path;
  if (const char* env = std::getenv("CLOUDIQ_TRACE")) trace_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }

  SimEnvironment cloud;
  if (!trace_path.empty()) cloud.telemetry().tracer().set_enabled(true);
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  Database db(&cloud, InstanceProfile::M5ad24xlarge(), options);
  TpchGenerator gen(scale);

  std::printf("Loading TPC-H SF=%g into a cloud dbspace "
              "(m5ad.24xlarge)...\n",
              scale);
  Result<TpchLoadResult> load = LoadTpch(&db, &gen, {});
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 load.status().ToString().c_str());
    return 1;
  }
  std::printf("  %llu rows in %.1f simulated s; %.1f MB raw -> %.1f MB at "
              "rest (%.2fx compression)\n\n",
              static_cast<unsigned long long>(load->rows), load->seconds,
              load->input_bytes / 1e6, load->bytes_at_rest / 1e6,
              static_cast<double>(load->input_bytes) /
                  load->bytes_at_rest);

  std::printf("%-4s %9s   %s\n", "Q", "sim (s)", "workload shape");
  double total = 0;
  for (int q = 1; q <= kTpchQueryCount; ++q) {
    SimTime before = db.node().clock().now();
    Transaction* txn = db.Begin();
    QueryContext ctx(&db.txn_mgr(), txn, db.system());
    Result<Batch> result = RunTpchQuery(&ctx, q);
    if (!result.ok()) {
      std::fprintf(stderr, "Q%d failed: %s\n", q,
                   result.status().ToString().c_str());
      return 1;
    }
    (void)db.Commit(txn);
    double elapsed = db.node().clock().now() - before;
    total += elapsed;
    cloud.telemetry().tracer().CompleteSpan(
        db.node().trace_pid(), kTrackExec, "query", "Q" + std::to_string(q),
        before, db.node().clock().now());
    std::printf("Q%-3d %9.3f   %s\n", q, elapsed,
                TpchQueryDescription(q));
  }
  std::printf("\nPower run total: %.1f simulated seconds "
              "(load %.1f + queries %.1f)\n",
              load->seconds + total, load->seconds, total);
  std::printf("\n%s", FormatMetrics(CollectMetrics(&db)).c_str());
  if (!trace_path.empty()) {
    Status st = TraceExporter::WriteChromeTrace(cloud.telemetry().tracer(),
                                                trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("\nChrome trace written to %s (open in chrome://tracing "
                "or https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  return 0;
}
