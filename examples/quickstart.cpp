// CloudIQ quickstart: create a database whose user dbspace lives on an
// S3-like object store, load a table, query it, and look under the hood
// at what the cloud-native storage layer did.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "engine/consistency_check.h"
#include "engine/database.h"
#include "exec/executor.h"

using namespace cloudiq;

int main() {
  // 1. The simulated cloud: an object store (S3-like), block volumes,
  //    and compute nodes with NICs and instance SSDs.
  SimEnvironment cloud;

  // 2. A single-node CloudIQ instance. This is the programmatic
  //    equivalent of
  //      CREATE DBSPACE userdb USING OBJECT STORE "s3://bucket"
  //    — user pages go straight to the object store; the small system
  //    dbspace (catalog, logs, freelist) stays on a strongly consistent
  //    EBS-like volume. The OCM caches object reads/writes on the
  //    instance NVMe.
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  Database db(&cloud, InstanceProfile::M5ad4xlarge(), options);

  // 3. Define and load a table inside a transaction.
  TableSchema schema;
  schema.name = "events";
  schema.table_id = 1;
  schema.columns = {{"event_id", ColumnType::kInt64},
                    {"kind", ColumnType::kString},
                    {"amount", ColumnType::kDecimal}};
  schema.hg_index_columns = {0};  // High-Group index on event_id

  Transaction* txn = db.Begin();
  TableLoader loader = db.NewTableLoader(txn, schema);

  Batch batch;
  batch.AddColumn("event_id", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("kind", {ColumnType::kString, {}, {}, {}});
  batch.AddColumn("amount", {ColumnType::kDecimal, {}, {}, {}});
  const char* kinds[3] = {"view", "click", "purchase"};
  for (int64_t i = 0; i < 50000; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].strings.push_back(kinds[i % 3]);
    batch.columns[2].ints.push_back((i % 97) * 100);  // dollars.cents
  }
  if (!loader.Append(batch.columns).ok() ||
      !loader.Finish(db.system()).ok() || !db.Commit(txn).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("Loaded 50,000 rows in %.3f simulated seconds\n",
              db.node().clock().now());

  // 4. Query: revenue by kind, using the vectorized executor.
  Transaction* query_txn = db.Begin();
  QueryContext ctx(&db.txn_mgr(), query_txn, db.system());
  Result<TableReader> events = ctx.OpenTable(1);
  if (!events.ok()) return 1;
  Result<Batch> rows = ScanTable(&ctx, &*events, {"kind", "amount"});
  if (!rows.ok()) return 1;
  Result<Batch> agg =
      HashAggregate(&ctx, *rows, {"kind"},
                    {{AggOp::kCount, "", "n"},
                     {AggOp::kSum, "amount", "revenue"}});
  if (!agg.ok()) return 1;
  Batch result = SortBatch(&ctx, *agg, {{"revenue", false}});
  std::printf("\n%-10s %10s %14s\n", "kind", "count", "revenue");
  for (size_t r = 0; r < result.rows(); ++r) {
    std::printf("%-10s %10lld %14.2f\n", result.Str("kind", r).c_str(),
                static_cast<long long>(result.Int("n", r)),
                DecimalToDouble(result.Int("revenue", r)));
  }
  (void)db.Commit(query_txn);

  // 5. Point lookup through the High-Group index: only the index pages
  //    whose key range covers the probe are read.
  Transaction* lookup_txn = db.Begin();
  QueryContext lookup_ctx(&db.txn_mgr(), lookup_txn, db.system());
  Result<TableReader> reader = lookup_ctx.OpenTable(1);
  if (reader.ok()) {
    Result<IntervalSet> hit = reader->IndexLookup(0, 0, 31337);
    if (hit.ok() && !hit->empty()) {
      Result<Batch> row = ScanRowIds(&lookup_ctx, &*reader, 0,
                                     {"event_id", "kind"}, *hit);
      if (row.ok() && row->rows() == 1) {
        std::printf("\nHG index lookup: event %lld is a '%s'\n",
                    static_cast<long long>(row->Int("event_id", 0)),
                    row->Str("kind", 0).c_str());
      }
    }
  }
  (void)db.Commit(lookup_txn);

  // 6. What the cloud-native storage layer did underneath.
  const SimObjectStore::Stats& s3 = cloud.object_store().stats();
  std::printf("\n--- storage layer ---\n");
  std::printf("objects PUT: %llu (every page under a fresh key — never "
              "written twice: %llu overwrites)\n",
              static_cast<unsigned long long>(s3.puts),
              static_cast<unsigned long long>(s3.overwrites));
  std::printf("GET requests: %llu, eventual-consistency races absorbed by "
              "retries: %llu\n",
              static_cast<unsigned long long>(s3.gets),
              static_cast<unsigned long long>(s3.not_found_races));
  if (db.ocm() != nullptr) {
    std::printf("OCM: %llu hits / %llu misses on the instance SSD\n",
                static_cast<unsigned long long>(db.ocm()->stats().hits),
                static_cast<unsigned long long>(db.ocm()->stats().misses));
  }
  std::printf("monthly storage cost of the data at rest: $%.4f on S3 vs "
              "$%.4f on EBS\n",
              cloud.cost_meter().S3MonthlyUsd(db.UserBytesAtRest() / 1e9),
              cloud.cost_meter().EbsMonthlyUsd(db.UserBytesAtRest() / 1e9));

  // 7. Audit: every reachable page reads back, nothing leaked.
  Result<ConsistencyReport> audit = CheckConsistency(&db);
  if (!audit.ok()) return 1;
  std::printf("consistency audit: %llu objects / %llu pages checked — %s\n",
              static_cast<unsigned long long>(audit->objects_checked),
              static_cast<unsigned long long>(audit->pages_checked),
              audit->ok() ? "clean" : "PROBLEMS FOUND");
  return audit->ok() ? 0 : 1;
}
