// A guided tour of §3.3's crash-recovery and garbage-collection
// machinery on a live multiplex: a writer node loads data, commits one
// table, leaves another in flight, rolls a third back — then crashes.
// Watch the coordinator's active sets and the object store's live-object
// count as each protocol step runs.
//
//   ./build/examples/crash_recovery_tour

#include <cstdio>

#include "exec/executor.h"
#include "multiplex/multiplex.h"

using namespace cloudiq;

namespace {

void Report(const char* stage, SimEnvironment& cloud, Multiplex& mx) {
  const IntervalSet& active = mx.coordinator().keygen().ActiveSet(1);
  std::printf("%-46s | live objects: %5llu | W1 active set: %llu keys\n",
              stage,
              static_cast<unsigned long long>(
                  cloud.object_store().LiveObjectCount()),
              static_cast<unsigned long long>(active.Count()));
}

Batch MakeRows(int64_t n) {
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("v", {ColumnType::kString, {}, {}, {}});
  for (int64_t i = 0; i < n; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].strings.push_back("payload-" + std::to_string(i));
  }
  return batch;
}

TableSchema SchemaFor(uint64_t id, const char* name) {
  TableSchema schema;
  schema.name = name;
  schema.table_id = id;
  schema.columns = {{"k", ColumnType::kInt64}, {"v", ColumnType::kString}};
  return schema;
}

}  // namespace

int main() {
  SimEnvironment cloud;
  Multiplex::Options options;
  options.db.user_storage = UserStorage::kObjectStore;
  Multiplex mx(&cloud, /*secondary_count=*/1, options);
  Database& writer = mx.secondary(0);
  Report("cluster up (coordinator + writer W1)", cloud, mx);

  // A committed table: its keys leave W1's active set at commit.
  {
    Transaction* txn = writer.Begin();
    TableLoader loader = writer.NewTableLoader(txn, SchemaFor(1, "keep"));
    if (!loader.Append(MakeRows(8000).columns).ok()) return 1;
    if (!loader.Finish(writer.system()).ok()) return 1;
    if (!writer.Commit(txn).ok()) return 1;
  }
  Report("T1 committed table 'keep'", cloud, mx);

  // A rolled-back transaction: W1 deletes its own objects immediately,
  // and — the paper's deliberate optimization — does NOT tell the
  // coordinator, so the active set still covers the dead range.
  {
    Transaction* txn = writer.Begin();
    TableLoader loader =
        writer.NewTableLoader(txn, SchemaFor(2, "rolled_back"));
    if (!loader.Append(MakeRows(8000).columns).ok()) return 1;
    if (!loader.Finish(writer.system()).ok()) return 1;
    if (!writer.txn_mgr().buffer().FlushTxn(txn->id).ok()) return 1;
    Report("T2 flushed 'rolled_back' to the object store", cloud, mx);
    if (!writer.Rollback(txn).ok()) return 1;
  }
  Report("T2 rolled back (coordinator NOT notified)", cloud, mx);

  // An in-flight transaction whose pages reach the store... then W1 dies.
  {
    Transaction* txn = writer.Begin();
    TableLoader loader = writer.NewTableLoader(txn, SchemaFor(3, "doomed"));
    if (!loader.Append(MakeRows(8000).columns).ok()) return 1;
    if (!loader.Finish(writer.system()).ok()) return 1;
    if (!writer.txn_mgr().buffer().FlushTxn(txn->id).ok()) return 1;
  }
  Report("T3 in flight, pages uploaded — W1 CRASHES", cloud, mx);

  // Restart protocol: W1 recovers its durable state and RPCs the
  // coordinator, which polls W1's entire active set — T3's orphans get
  // deleted, T2's range is re-polled harmlessly, T1's keys were never in
  // the set.
  Result<uint64_t> collected = mx.RestartSecondary(0);
  if (!collected.ok()) {
    std::fprintf(stderr, "restart failed: %s\n",
                 collected.status().ToString().c_str());
    return 1;
  }
  char line[80];
  std::snprintf(line, sizeof(line),
                "W1 restarted; coordinator GC'd %llu orphans",
                static_cast<unsigned long long>(*collected));
  Report(line, cloud, mx);

  // Committed data survived it all.
  Transaction* txn = writer.Begin();
  QueryContext ctx(&writer.txn_mgr(), txn, writer.system());
  Result<TableReader> reader = ctx.OpenTable(1);
  if (!reader.ok()) return 1;
  Result<Batch> rows = ScanTable(&ctx, &*reader, {"k"});
  if (!rows.ok()) return 1;
  std::printf("\nTable 'keep' after the dust settles: %zu rows (expected "
              "8000)\n",
              rows->rows());
  (void)writer.Commit(txn);
  return rows->rows() == 8000 ? 0 : 1;
}
