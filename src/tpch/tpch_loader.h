#ifndef CLOUDIQ_TPCH_TPCH_LOADER_H_
#define CLOUDIQ_TPCH_TPCH_LOADER_H_

#include "common/result.h"
#include "engine/database.h"
#include "tpch/tpch_gen.h"

namespace cloudiq {

struct TpchLoadOptions {
  size_t partitions = 8;
  uint64_t batch_rows = 16384;
};

struct TpchLoadResult {
  double seconds = 0;         // simulated wall time for the full load
  uint64_t rows = 0;
  uint64_t input_bytes = 0;   // raw input-file bytes streamed from S3
  uint64_t bytes_at_rest = 0; // compressed user-dbspace footprint
};

// Loads all eight TPC-H tables into `db` (one transaction per table, as a
// bulk load would): streams the input files from the simulated S3 input
// bucket, parses/encodes them with the load engine (CPU drains onto the
// node's clock at its vCPU parallelism), flushes pages through the
// write-back path, and commits write-through.
Result<TpchLoadResult> LoadTpch(Database* db, TpchGenerator* gen,
                                TpchLoadOptions options = {});

// Loads a single table (used by tests and the scale-out setup).
Result<TableMeta> LoadTpchTable(Database* db, TpchGenerator* gen,
                                TpchTable table, TpchLoadOptions options);

}  // namespace cloudiq

#endif  // CLOUDIQ_TPCH_TPCH_LOADER_H_
