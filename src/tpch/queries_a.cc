#include "tpch/queries.h"
#include "tpch/queries_internal.h"

namespace cloudiq {
namespace tpch_internal {

Batch WithRevenue(QueryContext* ctx, Batch in, const std::string& ext,
                  const std::string& disc, const std::string& as) {
  return WithComputedColumn(
      ctx, std::move(in), as, ColumnType::kDouble,
      [ext, disc](const Batch& b, size_t r, ColumnVector* out) {
        out->doubles.push_back(DecimalToDouble(b.Int(ext, r)) *
                               (1.0 - b.Int(disc, r) / 100.0));
      });
}

Result<Batch> ScanByMonth(QueryContext* ctx, TableReader* reader,
                          int date_column, int year, int month,
                          const std::vector<std::string>& columns) {
  Batch out;
  bool first = true;
  for (size_t p = 0; p < reader->meta().partitions.size(); ++p) {
    if (reader->meta().partitions[p].row_count == 0) continue;
    CLOUDIQ_ASSIGN_OR_RETURN(
        IntervalSet rows,
        reader->DateIndexMonth(p, date_column, year, month));
    CLOUDIQ_ASSIGN_OR_RETURN(Batch part,
                             ScanRowIds(ctx, reader, p, columns, rows));
    if (first) {
      out = std::move(part);
      first = false;
    } else {
      for (size_t r = 0; r < part.rows(); ++r) part.AppendRowTo(&out, r);
    }
  }
  if (first) {
    // No partitions had rows: produce the correct (empty) shape.
    return ScanRowIds(ctx, reader, 0, columns, IntervalSet());
  }
  return out;
}

// Q1: pricing summary report. Full lineitem scan with a shipdate cutoff;
// wide aggregate grouped by (returnflag, linestatus).
Result<Batch> Q1(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  ScanRange range{"l_shipdate", INT64_MIN, D(1998, 12, 1) - 90};
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch rows,
      ScanTable(ctx, &lineitem,
                {"l_returnflag", "l_linestatus", "l_quantity",
                 "l_extendedprice", "l_discount", "l_tax", "l_shipdate"},
                range));
  rows = WithRevenue(ctx, std::move(rows), "l_extendedprice", "l_discount",
                     "disc_price");
  rows = WithComputedColumn(
      ctx, std::move(rows), "charge", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->doubles.push_back(b.Double("disc_price", r) *
                               (1.0 + b.Int("l_tax", r) / 100.0));
      });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg,
      HashAggregate(ctx, rows, {"l_returnflag", "l_linestatus"},
                    {{AggOp::kSum, "l_quantity", "sum_qty"},
                     {AggOp::kSum, "l_extendedprice", "sum_base_price"},
                     {AggOp::kSum, "disc_price", "sum_disc_price"},
                     {AggOp::kSum, "charge", "sum_charge"},
                     {AggOp::kAvg, "l_quantity", "avg_qty"},
                     {AggOp::kAvg, "l_extendedprice", "avg_price"},
                     {AggOp::kAvg, "l_discount", "avg_disc"},
                     {AggOp::kCount, "", "count_order"}}));
  return SortBatch(ctx, std::move(agg),
                   {{"l_returnflag", true}, {"l_linestatus", true}});
}

// Q2: minimum-cost supplier. Small-table join pipeline over part,
// partsupp, supplier, nation, region — short running, latency bound.
Result<Batch> Q2(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader part, ctx->OpenTable(kPart));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader partsupp, ctx->OpenTable(kPartSupp));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader supplier, ctx->OpenTable(kSupplier));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader nation, ctx->OpenTable(kNation));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader region, ctx->OpenTable(kRegion));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch parts,
      ScanTable(ctx, &part, {"p_partkey", "p_mfgr", "p_size", "p_type"}));
  parts = FilterBatch(ctx, parts, [](const Batch& b, size_t r) {
    return b.Int("p_size", r) == 15 && EndsWith(b.Str("p_type", r), "BRASS");
  });

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch regions, ScanTable(ctx, &region, {"r_regionkey", "r_name"}));
  regions = FilterBatch(ctx, regions, [](const Batch& b, size_t r) {
    return b.Str("r_name", r) == "EUROPE";
  });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch nations,
      ScanTable(ctx, &nation, {"n_nationkey", "n_regionkey", "n_name"}));
  CLOUDIQ_ASSIGN_OR_RETURN(nations,
                           HashJoin(ctx, nations, "n_regionkey", regions,
                                    "r_regionkey", JoinType::kLeftSemi));
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch suppliers,
      ScanTable(ctx, &supplier,
                {"s_suppkey", "s_name", "s_nationkey", "s_acctbal",
                 "s_address", "s_phone", "s_comment"}));
  CLOUDIQ_ASSIGN_OR_RETURN(suppliers,
                           HashJoin(ctx, suppliers, "s_nationkey", nations,
                                    "n_nationkey", JoinType::kInner));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ps, ScanTable(ctx, &partsupp,
                          {"ps_partkey", "ps_suppkey", "ps_supplycost"}));
  CLOUDIQ_ASSIGN_OR_RETURN(
      ps, HashJoin(ctx, ps, "ps_partkey", parts, "p_partkey",
                   JoinType::kInner));
  CLOUDIQ_ASSIGN_OR_RETURN(
      ps, HashJoin(ctx, ps, "ps_suppkey", suppliers, "s_suppkey",
                   JoinType::kInner));

  // Keep rows achieving the per-part minimum supply cost.
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch mins,
      HashAggregate(ctx, ps, {"ps_partkey"},
                    {{AggOp::kMin, "ps_supplycost", "min_cost"}}));
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch joined, HashJoin(ctx, ps, "ps_partkey", mins, "ps_partkey",
                             JoinType::kInner));
  joined = FilterBatch(ctx, joined, [](const Batch& b, size_t r) {
    return b.Int("ps_supplycost", r) == b.Int("min_cost", r);
  });
  return SortBatch(ctx, std::move(joined),
                   {{"s_acctbal", false},
                    {"n_name", true},
                    {"s_name", true},
                    {"ps_partkey", true}},
                   100);
}

// Q3: shipping priority. customer (BUILDING) x orders x lineitem, top 10
// by revenue — a long-running scan-join over the two big tables.
Result<Batch> Q3(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader customer, ctx->OpenTable(kCustomer));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  int64_t cutoff = D(1995, 3, 15);

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch customers,
      ScanTable(ctx, &customer, {"c_custkey", "c_mktsegment"}));
  customers = FilterBatch(ctx, customers, [](const Batch& b, size_t r) {
    return b.Str("c_mktsegment", r) == "BUILDING";
  });

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ord, ScanTable(ctx, &orders,
                           {"o_orderkey", "o_custkey", "o_orderdate",
                            "o_shippriority"}));
  ord = FilterBatch(ctx, ord, [cutoff](const Batch& b, size_t r) {
    return b.Int("o_orderdate", r) < cutoff;
  });
  CLOUDIQ_ASSIGN_OR_RETURN(ord,
                           HashJoin(ctx, ord, "o_custkey", customers,
                                    "c_custkey", JoinType::kLeftSemi));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_orderkey", "l_extendedprice", "l_discount",
                 "l_shipdate"},
                ScanRange{"l_shipdate", cutoff + 1, INT64_MAX}));
  CLOUDIQ_ASSIGN_OR_RETURN(items,
                           HashJoin(ctx, items, "l_orderkey", ord,
                                    "o_orderkey", JoinType::kInner));
  items = WithRevenue(ctx, std::move(items), "l_extendedprice",
                      "l_discount", "revenue");
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg,
      HashAggregate(ctx, items,
                    {"l_orderkey", "o_orderdate", "o_shippriority"},
                    {{AggOp::kSum, "revenue", "revenue"}}));
  return SortBatch(ctx, std::move(agg),
                   {{"revenue", false}, {"o_orderdate", true}}, 10);
}

// Q4: order priority checking. Orders of 1993Q3 with at least one late
// lineitem (semi-join), counted by priority.
Result<Batch> Q4(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ord,
      ScanTable(ctx, &orders,
                {"o_orderkey", "o_orderdate", "o_orderpriority"}));
  int64_t lo = D(1993, 7, 1);
  int64_t hi = D(1993, 10, 1) - 1;
  ord = FilterBatch(ctx, ord, [lo, hi](const Batch& b, size_t r) {
    int64_t d = b.Int("o_orderdate", r);
    return d >= lo && d <= hi;
  });

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_orderkey", "l_commitdate", "l_receiptdate"}));
  items = FilterBatch(ctx, items, [](const Batch& b, size_t r) {
    return b.Int("l_commitdate", r) < b.Int("l_receiptdate", r);
  });
  CLOUDIQ_ASSIGN_OR_RETURN(ord,
                           HashJoin(ctx, ord, "o_orderkey", items,
                                    "l_orderkey", JoinType::kLeftSemi));
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg, HashAggregate(ctx, ord, {"o_orderpriority"},
                               {{AggOp::kCount, "", "order_count"}}));
  return SortBatch(ctx, std::move(agg), {{"o_orderpriority", true}});
}

// Q5: local supplier volume within ASIA in 1994. Six-way join.
Result<Batch> Q5(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader customer, ctx->OpenTable(kCustomer));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader supplier, ctx->OpenTable(kSupplier));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader nation, ctx->OpenTable(kNation));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader region, ctx->OpenTable(kRegion));

  CLOUDIQ_ASSIGN_OR_RETURN(Batch regions,
                           ScanTable(ctx, &region,
                                     {"r_regionkey", "r_name"}));
  regions = FilterBatch(ctx, regions, [](const Batch& b, size_t r) {
    return b.Str("r_name", r) == "ASIA";
  });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch nations,
      ScanTable(ctx, &nation, {"n_nationkey", "n_regionkey", "n_name"}));
  CLOUDIQ_ASSIGN_OR_RETURN(nations,
                           HashJoin(ctx, nations, "n_regionkey", regions,
                                    "r_regionkey", JoinType::kLeftSemi));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch suppliers,
      ScanTable(ctx, &supplier, {"s_suppkey", "s_nationkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(suppliers,
                           HashJoin(ctx, suppliers, "s_nationkey", nations,
                                    "n_nationkey", JoinType::kInner));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch customers,
      ScanTable(ctx, &customer, {"c_custkey", "c_nationkey"}));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ord,
      ScanTable(ctx, &orders, {"o_orderkey", "o_custkey", "o_orderdate"}));
  int64_t lo = D(1994, 1, 1);
  int64_t hi = D(1995, 1, 1) - 1;
  ord = FilterBatch(ctx, ord, [lo, hi](const Batch& b, size_t r) {
    int64_t d = b.Int("o_orderdate", r);
    return d >= lo && d <= hi;
  });
  CLOUDIQ_ASSIGN_OR_RETURN(ord, HashJoin(ctx, ord, "o_custkey", customers,
                                         "c_custkey", JoinType::kInner));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_orderkey", "l_suppkey", "l_extendedprice",
                 "l_discount"}));
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_orderkey", ord,
                                           "o_orderkey", JoinType::kInner));
  CLOUDIQ_ASSIGN_OR_RETURN(items,
                           HashJoin(ctx, items, "l_suppkey", suppliers,
                                    "s_suppkey", JoinType::kInner));
  // "Local" volume: customer and supplier from the same nation.
  items = FilterBatch(ctx, items, [](const Batch& b, size_t r) {
    return b.Int("c_nationkey", r) == b.Int("s_nationkey", r);
  });
  items = WithRevenue(ctx, std::move(items), "l_extendedprice",
                      "l_discount", "revenue");
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg, HashAggregate(ctx, items, {"n_name"},
                               {{AggOp::kSum, "revenue", "revenue"}}));
  return SortBatch(ctx, std::move(agg), {{"revenue", false}});
}

// Q6: forecasting revenue change. Pure lineitem predicate scan — the
// benchmark's simplest I/O shape.
Result<Batch> Q6(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  int64_t lo = D(1994, 1, 1);
  int64_t hi = D(1995, 1, 1) - 1;
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_shipdate", "l_discount", "l_quantity",
                 "l_extendedprice"},
                ScanRange{"l_shipdate", lo, hi}));
  items = FilterBatch(ctx, items, [](const Batch& b, size_t r) {
    int64_t disc = b.Int("l_discount", r);
    return disc >= 5 && disc <= 7 && b.Int("l_quantity", r) < 24;
  });
  items = WithComputedColumn(
      ctx, std::move(items), "revenue", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->doubles.push_back(DecimalToDouble(b.Int("l_extendedprice", r)) *
                               (b.Int("l_discount", r) / 100.0));
      });
  return HashAggregate(ctx, items, {},
                       {{AggOp::kSum, "revenue", "revenue"}});
}

// Q7: volume shipping between FRANCE and GERMANY by year.
Result<Batch> Q7(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader customer, ctx->OpenTable(kCustomer));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader supplier, ctx->OpenTable(kSupplier));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader nation, ctx->OpenTable(kNation));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch nations, ScanTable(ctx, &nation, {"n_nationkey", "n_name"}));
  nations = FilterBatch(ctx, nations, [](const Batch& b, size_t r) {
    return b.Str("n_name", r) == "FRANCE" || b.Str("n_name", r) == "GERMANY";
  });

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch suppliers,
      ScanTable(ctx, &supplier, {"s_suppkey", "s_nationkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(suppliers,
                           HashJoin(ctx, suppliers, "s_nationkey", nations,
                                    "n_nationkey", JoinType::kInner));
  // n_name now tags the supplier nation.
  Batch supp_tagged = suppliers;
  supp_tagged.names[supp_tagged.Col("n_name")] = "supp_nation";

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch customers,
      ScanTable(ctx, &customer, {"c_custkey", "c_nationkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(customers,
                           HashJoin(ctx, customers, "c_nationkey", nations,
                                    "n_nationkey", JoinType::kInner));
  Batch cust_tagged = customers;
  cust_tagged.names[cust_tagged.Col("n_name")] = "cust_nation";

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ord, ScanTable(ctx, &orders, {"o_orderkey", "o_custkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(ord,
                           HashJoin(ctx, ord, "o_custkey", cust_tagged,
                                    "c_custkey", JoinType::kInner));

  int64_t lo = D(1995, 1, 1);
  int64_t hi = D(1996, 12, 31);
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_orderkey", "l_suppkey", "l_shipdate",
                 "l_extendedprice", "l_discount"},
                ScanRange{"l_shipdate", lo, hi}));
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_orderkey", ord,
                                           "o_orderkey", JoinType::kInner));
  CLOUDIQ_ASSIGN_OR_RETURN(items,
                           HashJoin(ctx, items, "l_suppkey", supp_tagged,
                                    "s_suppkey", JoinType::kInner));
  items = FilterBatch(ctx, items, [](const Batch& b, size_t r) {
    const std::string& s = b.Str("supp_nation", r);
    const std::string& c = b.Str("cust_nation", r);
    return (s == "FRANCE" && c == "GERMANY") ||
           (s == "GERMANY" && c == "FRANCE");
  });
  items = WithRevenue(ctx, std::move(items), "l_extendedprice",
                      "l_discount", "volume");
  items = WithComputedColumn(
      ctx, std::move(items), "l_year", ColumnType::kInt64,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->ints.push_back(YearOf(b.Int("l_shipdate", r)));
      });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg,
      HashAggregate(ctx, items, {"supp_nation", "cust_nation", "l_year"},
                    {{AggOp::kSum, "volume", "revenue"}}));
  return SortBatch(ctx, std::move(agg),
                   {{"supp_nation", true},
                    {"cust_nation", true},
                    {"l_year", true}});
}

// Q8: national market share of BRAZIL within AMERICA for one part type.
Result<Batch> Q8(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader part, ctx->OpenTable(kPart));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader customer, ctx->OpenTable(kCustomer));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader supplier, ctx->OpenTable(kSupplier));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader nation, ctx->OpenTable(kNation));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader region, ctx->OpenTable(kRegion));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch parts, ScanTable(ctx, &part, {"p_partkey", "p_type"}));
  parts = FilterBatch(ctx, parts, [](const Batch& b, size_t r) {
    return b.Str("p_type", r) == "ECONOMY ANODIZED STEEL";
  });

  CLOUDIQ_ASSIGN_OR_RETURN(Batch regions,
                           ScanTable(ctx, &region,
                                     {"r_regionkey", "r_name"}));
  regions = FilterBatch(ctx, regions, [](const Batch& b, size_t r) {
    return b.Str("r_name", r) == "AMERICA";
  });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch nations,
      ScanTable(ctx, &nation, {"n_nationkey", "n_regionkey", "n_name"}));
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch america_nations,
      HashJoin(ctx, nations, "n_regionkey", regions, "r_regionkey",
               JoinType::kLeftSemi));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch customers,
      ScanTable(ctx, &customer, {"c_custkey", "c_nationkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(customers,
                           HashJoin(ctx, customers, "c_nationkey",
                                    america_nations, "n_nationkey",
                                    JoinType::kLeftSemi));

  int64_t lo = D(1995, 1, 1);
  int64_t hi = D(1996, 12, 31);
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ord,
      ScanTable(ctx, &orders, {"o_orderkey", "o_custkey", "o_orderdate"}));
  ord = FilterBatch(ctx, ord, [lo, hi](const Batch& b, size_t r) {
    int64_t d = b.Int("o_orderdate", r);
    return d >= lo && d <= hi;
  });
  CLOUDIQ_ASSIGN_OR_RETURN(ord, HashJoin(ctx, ord, "o_custkey", customers,
                                         "c_custkey", JoinType::kLeftSemi));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice",
                 "l_discount"}));
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_partkey", parts,
                                           "p_partkey", JoinType::kLeftSemi));
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_orderkey", ord,
                                           "o_orderkey", JoinType::kInner));

  // Supplier nation name for the numerator.
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch suppliers,
      ScanTable(ctx, &supplier, {"s_suppkey", "s_nationkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(suppliers,
                           HashJoin(ctx, suppliers, "s_nationkey", nations,
                                    "n_nationkey", JoinType::kInner));
  CLOUDIQ_ASSIGN_OR_RETURN(items,
                           HashJoin(ctx, items, "l_suppkey", suppliers,
                                    "s_suppkey", JoinType::kInner));

  items = WithRevenue(ctx, std::move(items), "l_extendedprice",
                      "l_discount", "volume");
  items = WithComputedColumn(
      ctx, std::move(items), "o_year", ColumnType::kInt64,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->ints.push_back(YearOf(b.Int("o_orderdate", r)));
      });
  items = WithComputedColumn(
      ctx, std::move(items), "brazil_volume", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->doubles.push_back(
            b.Str("n_name", r) == "BRAZIL" ? b.Double("volume", r) : 0.0);
      });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg,
      HashAggregate(ctx, items, {"o_year"},
                    {{AggOp::kSum, "brazil_volume", "brazil"},
                     {AggOp::kSum, "volume", "total"}}));
  agg = WithComputedColumn(
      ctx, std::move(agg), "mkt_share", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        double total = b.Double("total", r);
        out->doubles.push_back(total > 0 ? b.Double("brazil", r) / total
                                         : 0.0);
      });
  return SortBatch(ctx, std::move(agg), {{"o_year", true}});
}

// Q9: product-type profit by nation and year for green parts.
Result<Batch> Q9(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader part, ctx->OpenTable(kPart));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader partsupp, ctx->OpenTable(kPartSupp));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader supplier, ctx->OpenTable(kSupplier));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader nation, ctx->OpenTable(kNation));

  CLOUDIQ_ASSIGN_OR_RETURN(Batch parts,
                           ScanTable(ctx, &part, {"p_partkey", "p_name"}));
  parts = FilterBatch(ctx, parts, [](const Batch& b, size_t r) {
    return Contains(b.Str("p_name", r), "furiously");  // the "green" stand-in
  });

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
                 "l_extendedprice", "l_discount"}));
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_partkey", parts,
                                           "p_partkey", JoinType::kLeftSemi));

  // ps_supplycost via composite (partkey, suppkey): join on partkey then
  // match suppkey.
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ps, ScanTable(ctx, &partsupp,
                          {"ps_partkey", "ps_suppkey", "ps_supplycost"}));
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_partkey", ps,
                                           "ps_partkey", JoinType::kInner));
  items = FilterBatch(ctx, items, [](const Batch& b, size_t r) {
    return b.Int("l_suppkey", r) == b.Int("ps_suppkey", r);
  });

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ord, ScanTable(ctx, &orders, {"o_orderkey", "o_orderdate"}));
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_orderkey", ord,
                                           "o_orderkey", JoinType::kInner));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch suppliers,
      ScanTable(ctx, &supplier, {"s_suppkey", "s_nationkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(Batch nations,
                           ScanTable(ctx, &nation,
                                     {"n_nationkey", "n_name"}));
  CLOUDIQ_ASSIGN_OR_RETURN(suppliers,
                           HashJoin(ctx, suppliers, "s_nationkey", nations,
                                    "n_nationkey", JoinType::kInner));
  CLOUDIQ_ASSIGN_OR_RETURN(items,
                           HashJoin(ctx, items, "l_suppkey", suppliers,
                                    "s_suppkey", JoinType::kInner));

  items = WithComputedColumn(
      ctx, std::move(items), "amount", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        double revenue = DecimalToDouble(b.Int("l_extendedprice", r)) *
                         (1.0 - b.Int("l_discount", r) / 100.0);
        double cost = DecimalToDouble(b.Int("ps_supplycost", r)) *
                      b.Int("l_quantity", r);
        out->doubles.push_back(revenue - cost);
      });
  items = WithComputedColumn(
      ctx, std::move(items), "o_year", ColumnType::kInt64,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->ints.push_back(YearOf(b.Int("o_orderdate", r)));
      });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg, HashAggregate(ctx, items, {"n_name", "o_year"},
                               {{AggOp::kSum, "amount", "sum_profit"}}));
  return SortBatch(ctx, std::move(agg),
                   {{"n_name", true}, {"o_year", false}});
}

// Q10: returned-item reporting, top 20 customers by lost revenue.
Result<Batch> Q10(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader customer, ctx->OpenTable(kCustomer));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader nation, ctx->OpenTable(kNation));

  int64_t lo = D(1993, 10, 1);
  int64_t hi = D(1994, 1, 1) - 1;
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ord,
      ScanTable(ctx, &orders, {"o_orderkey", "o_custkey", "o_orderdate"}));
  ord = FilterBatch(ctx, ord, [lo, hi](const Batch& b, size_t r) {
    int64_t d = b.Int("o_orderdate", r);
    return d >= lo && d <= hi;
  });

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_orderkey", "l_returnflag", "l_extendedprice",
                 "l_discount"}));
  items = FilterBatch(ctx, items, [](const Batch& b, size_t r) {
    return b.Str("l_returnflag", r) == "R";
  });
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_orderkey", ord,
                                           "o_orderkey", JoinType::kInner));
  items = WithRevenue(ctx, std::move(items), "l_extendedprice",
                      "l_discount", "revenue");
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch by_cust, HashAggregate(ctx, items, {"o_custkey"},
                                   {{AggOp::kSum, "revenue", "revenue"}}));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch customers,
      ScanTable(ctx, &customer,
                {"c_custkey", "c_name", "c_acctbal", "c_nationkey",
                 "c_phone"}));
  CLOUDIQ_ASSIGN_OR_RETURN(Batch nations,
                           ScanTable(ctx, &nation,
                                     {"n_nationkey", "n_name"}));
  CLOUDIQ_ASSIGN_OR_RETURN(customers,
                           HashJoin(ctx, customers, "c_nationkey", nations,
                                    "n_nationkey", JoinType::kInner));
  CLOUDIQ_ASSIGN_OR_RETURN(Batch joined,
                           HashJoin(ctx, by_cust, "o_custkey", customers,
                                    "c_custkey", JoinType::kInner));
  return SortBatch(ctx, std::move(joined), {{"revenue", false}}, 20);
}

// Q11: important stock identification in GERMANY.
Result<Batch> Q11(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader partsupp, ctx->OpenTable(kPartSupp));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader supplier, ctx->OpenTable(kSupplier));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader nation, ctx->OpenTable(kNation));

  CLOUDIQ_ASSIGN_OR_RETURN(Batch nations,
                           ScanTable(ctx, &nation,
                                     {"n_nationkey", "n_name"}));
  nations = FilterBatch(ctx, nations, [](const Batch& b, size_t r) {
    return b.Str("n_name", r) == "GERMANY";
  });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch suppliers,
      ScanTable(ctx, &supplier, {"s_suppkey", "s_nationkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(suppliers,
                           HashJoin(ctx, suppliers, "s_nationkey", nations,
                                    "n_nationkey", JoinType::kLeftSemi));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ps,
      ScanTable(ctx, &partsupp,
                {"ps_partkey", "ps_suppkey", "ps_availqty",
                 "ps_supplycost"}));
  CLOUDIQ_ASSIGN_OR_RETURN(ps, HashJoin(ctx, ps, "ps_suppkey", suppliers,
                                        "s_suppkey", JoinType::kLeftSemi));
  ps = WithComputedColumn(
      ctx, std::move(ps), "value", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->doubles.push_back(DecimalToDouble(b.Int("ps_supplycost", r)) *
                               b.Int("ps_availqty", r));
      });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch total_batch,
      HashAggregate(ctx, ps, {}, {{AggOp::kSum, "value", "total"}}));
  double threshold = total_batch.rows() > 0
                         ? total_batch.Double("total", 0) * 0.0001
                         : 0.0;
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg, HashAggregate(ctx, ps, {"ps_partkey"},
                               {{AggOp::kSum, "value", "value"}}));
  agg = FilterBatch(ctx, agg, [threshold](const Batch& b, size_t r) {
    return b.Double("value", r) > threshold;
  });
  return SortBatch(ctx, std::move(agg), {{"value", false}});
}

}  // namespace tpch_internal

Result<Batch> RunTpchQuery(QueryContext* ctx, int query_number) {
  using namespace tpch_internal;
  switch (query_number) {
    case 1: return Q1(ctx);
    case 2: return Q2(ctx);
    case 3: return Q3(ctx);
    case 4: return Q4(ctx);
    case 5: return Q5(ctx);
    case 6: return Q6(ctx);
    case 7: return Q7(ctx);
    case 8: return Q8(ctx);
    case 9: return Q9(ctx);
    case 10: return Q10(ctx);
    case 11: return Q11(ctx);
    case 12: return Q12(ctx);
    case 13: return Q13(ctx);
    case 14: return Q14(ctx);
    case 15: return Q15(ctx);
    case 16: return Q16(ctx);
    case 17: return Q17(ctx);
    case 18: return Q18(ctx);
    case 19: return Q19(ctx);
    case 20: return Q20(ctx);
    case 21: return Q21(ctx);
    case 22: return Q22(ctx);
    default:
      return Status::InvalidArgument("TPC-H query number out of range");
  }
}

const char* TpchQueryDescription(int query_number) {
  switch (query_number) {
    case 1: return "pricing summary: full lineitem scan + wide aggregate";
    case 2: return "min-cost supplier: small-table join pipeline";
    case 3: return "shipping priority: customer x orders x lineitem top-n";
    case 4: return "order priority: orders semi-join late lineitems";
    case 5: return "local supplier volume: six-way join";
    case 6: return "revenue forecast: pure lineitem predicate scan";
    case 7: return "nation volume shipping: two-nation join by year";
    case 8: return "national market share: eight-table join";
    case 9: return "product profit: five-way join, group by nation/year";
    case 10: return "returned items: top customers by lost revenue";
    case 11: return "important stock: partsupp value concentration";
    case 12: return "shipmode priority: lineitem x orders counts";
    case 13: return "customer distribution: orders per customer histogram";
    case 14: return "promo revenue: lineitem x part monthly fraction";
    case 15: return "top supplier: quarterly revenue ranking";
    case 16: return "parts/supplier relationship: distinct supplier counts";
    case 17: return "small-quantity revenue: avg-quantity correlated agg";
    case 18: return "large-volume customers: quantity-heavy orders top-n";
    case 19: return "discounted revenue: disjunctive part predicates";
    case 20: return "potential promotion: nested semi-joins on stock";
    case 21: return "waiting suppliers: multi-pass lineitem self-joins";
    case 22: return "global sales opportunity: anti-join on orders";
  }
  return "unknown";
}

}  // namespace cloudiq
