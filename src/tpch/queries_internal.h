#ifndef CLOUDIQ_TPCH_QUERIES_INTERNAL_H_
#define CLOUDIQ_TPCH_QUERIES_INTERNAL_H_

#include <string>

#include "columnar/value.h"
#include "common/result.h"
#include "exec/executor.h"
#include "tpch/tpch_gen.h"

namespace cloudiq {
namespace tpch_internal {

inline int64_t D(int y, int m, int d) { return DaysFromCivil(y, m, d); }

inline int YearOf(int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return y;
}

inline bool Contains(const std::string& haystack,
                     const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

inline bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

inline bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

// revenue = l_extendedprice * (1 - l_discount), as a double column.
// `ext` and `disc` are scaled-decimal int columns.
Batch WithRevenue(QueryContext* ctx, Batch in, const std::string& ext,
                  const std::string& disc, const std::string& as);

// Datepart-index scan: rows of `columns` whose DATE column falls in
// calendar month (year, month), resolved through the table's DATE index
// (one posting-page probe per partition instead of a column scan).
Result<Batch> ScanByMonth(QueryContext* ctx, TableReader* reader,
                          int date_column, int year, int month,
                          const std::vector<std::string>& columns);

// Queries 1-11 (queries_a.cc) and 12-22 (queries_b.cc).
Result<Batch> Q1(QueryContext* ctx);
Result<Batch> Q2(QueryContext* ctx);
Result<Batch> Q3(QueryContext* ctx);
Result<Batch> Q4(QueryContext* ctx);
Result<Batch> Q5(QueryContext* ctx);
Result<Batch> Q6(QueryContext* ctx);
Result<Batch> Q7(QueryContext* ctx);
Result<Batch> Q8(QueryContext* ctx);
Result<Batch> Q9(QueryContext* ctx);
Result<Batch> Q10(QueryContext* ctx);
Result<Batch> Q11(QueryContext* ctx);
Result<Batch> Q12(QueryContext* ctx);
Result<Batch> Q13(QueryContext* ctx);
Result<Batch> Q14(QueryContext* ctx);
Result<Batch> Q15(QueryContext* ctx);
Result<Batch> Q16(QueryContext* ctx);
Result<Batch> Q17(QueryContext* ctx);
Result<Batch> Q18(QueryContext* ctx);
Result<Batch> Q19(QueryContext* ctx);
Result<Batch> Q20(QueryContext* ctx);
Result<Batch> Q21(QueryContext* ctx);
Result<Batch> Q22(QueryContext* ctx);

}  // namespace tpch_internal
}  // namespace cloudiq

#endif  // CLOUDIQ_TPCH_QUERIES_INTERNAL_H_
