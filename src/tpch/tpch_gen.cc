#include "tpch/tpch_gen.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace cloudiq {
namespace {

// Deterministic per-entity RNG: the same (seed, table, entity) always
// produces the same values, so batches can be generated in any split.
Rng EntityRng(uint64_t seed, uint64_t table, uint64_t entity) {
  return Rng(seed ^ (table * 0x9e3779b97f4a7c15ULL) ^
             (entity * 0xc2b2ae3d27d4eb4fULL));
}

const char* kRegionNames[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                               "MIDDLE EAST"};
const char* kNationNames[25] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// region of each nation, per the TPC-H spec.
const int kNationRegion[25] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                               4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                            "HOUSEHOLD", "MACHINERY"};
const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                              "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[7] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR",
                             "SHIP", "TRUCK"};
const char* kShipInstructs[4] = {"COLLECT COD", "DELIVER IN PERSON",
                                 "NONE", "TAKE BACK RETURN"};
const char* kTypes1[6] = {"STANDARD", "SMALL",   "MEDIUM",
                          "LARGE",    "ECONOMY", "PROMO"};
const char* kTypes2[5] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                          "BRUSHED"};
const char* kTypes3[5] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[5] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[8] = {"CASE", "BOX", "BAG", "JAR",
                               "PKG",  "PACK", "CAN", "DRUM"};
const char* kWords[24] = {
    "furiously", "quickly", "slyly",    "carefully", "blithely", "even",
    "final",     "ironic",  "pending",  "regular",   "special",  "express",
    "accounts",  "deposits", "requests", "packages", "theodolites",
    "instructions", "foxes", "pinto", "beans", "dependencies", "platelets",
    "asymptotes"};

std::string RandomComment(Rng& rng, int min_words, int max_words) {
  int n = static_cast<int>(rng.UniformRange(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += kWords[rng.Uniform(24)];
  }
  return out;
}

std::string Phone(Rng& rng, int64_t nationkey) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(10 + nationkey),
                static_cast<int>(rng.UniformRange(100, 999)),
                static_cast<int>(rng.UniformRange(100, 999)),
                static_cast<int>(rng.UniformRange(1000, 9999)));
  return buf;
}

std::string KeyedName(const char* prefix, uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s#%09llu", prefix,
                static_cast<unsigned long long>(key));
  return buf;
}

// Retail price formula from the spec (scaled decimal, 2 digits).
int64_t PartRetailPrice(uint64_t partkey) {
  return 90000 + ((partkey / 10) % 20001) + 100 * (partkey % 1000);
}

constexpr int kMaxLinesPerOrder = 7;

}  // namespace

// 1-7 lines, uniform (the spec's distribution; average 4). Deterministic
// in the order key alone so the mapping never depends on batch splits.
int TpchGenerator::LinesPerOrder(uint64_t orderkey) {
  uint64_t h = orderkey * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return 1 + static_cast<int>(h % kMaxLinesPerOrder);
}

void TpchGenerator::EnsureLinePrefix() const {
  if (!line_prefix_.empty()) return;
  uint64_t orders = RowCount(kOrders);
  line_prefix_.resize(orders + 1, 0);
  for (uint64_t o = 1; o <= orders; ++o) {
    line_prefix_[o] = line_prefix_[o - 1] + LinesPerOrder(o);
  }
}

void TpchGenerator::OrderForLineRow(uint64_t row, uint64_t* order_index,
                                    int* linenumber) const {
  EnsureLinePrefix();
  // Binary search the prefix sums: first order whose cumulative count
  // exceeds `row`.
  uint64_t lo = 0;
  uint64_t hi = line_prefix_.size() - 1;
  while (lo < hi) {
    uint64_t mid = (lo + hi) / 2;
    if (line_prefix_[mid + 1] > row) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  *order_index = lo;  // 0-based; orderkey = lo + 1
  *linenumber = static_cast<int>(row - line_prefix_[lo]);
}

TpchGenerator::TpchGenerator(double scale, uint64_t seed)
    : scale_(scale), seed_(seed) {}

int64_t TpchGenerator::MinOrderDate() { return DaysFromCivil(1992, 1, 1); }
int64_t TpchGenerator::MaxOrderDate() { return DaysFromCivil(1998, 8, 2); }

uint64_t TpchGenerator::RowCount(TpchTable table) const {
  auto scaled = [&](double base) {
    return std::max<uint64_t>(1, static_cast<uint64_t>(base * scale_));
  };
  switch (table) {
    case kRegion:
      return 5;
    case kNation:
      return 25;
    case kSupplier:
      return scaled(10000);
    case kCustomer:
      return scaled(150000);
    case kPart:
      return scaled(200000);
    case kPartSupp:
      return scaled(200000) * 4;
    case kOrders:
      return scaled(1500000);
    case kLineitem:
      EnsureLinePrefix();
      return line_prefix_.back();
  }
  return 0;
}

uint64_t TpchGenerator::RawRowBytes(TpchTable table) {
  switch (table) {
    case kRegion:
      return 80;
    case kNation:
      return 90;
    case kSupplier:
      return 140;
    case kCustomer:
      return 160;
    case kPart:
      return 120;
    case kPartSupp:
      return 145;
    case kOrders:
      return 110;
    case kLineitem:
      return 130;
  }
  return 100;
}

TableSchema TpchGenerator::SchemaFor(TpchTable table,
                                     size_t partitions) const {
  TableSchema s;
  s.table_id = table;
  auto bounds_for = [&](uint64_t max_key) {
    std::vector<int64_t> bounds;
    for (size_t i = 1; i < partitions; ++i) {
      bounds.push_back(static_cast<int64_t>(max_key * i / partitions) + 1);
    }
    return bounds;
  };
  using CT = ColumnType;
  switch (table) {
    case kRegion:
      s.name = "region";
      s.columns = {{"r_regionkey", CT::kInt64},
                   {"r_name", CT::kString},
                   {"r_comment", CT::kString}};
      break;
    case kNation:
      s.name = "nation";
      s.columns = {{"n_nationkey", CT::kInt64},
                   {"n_name", CT::kString},
                   {"n_regionkey", CT::kInt64},
                   {"n_comment", CT::kString}};
      s.hg_index_columns = {2};  // n_regionkey
      break;
    case kSupplier:
      s.name = "supplier";
      s.columns = {{"s_suppkey", CT::kInt64},  {"s_name", CT::kString},
                   {"s_address", CT::kString}, {"s_nationkey", CT::kInt64},
                   {"s_phone", CT::kString},   {"s_acctbal", CT::kDecimal},
                   {"s_comment", CT::kString}};
      s.hg_index_columns = {3};  // s_nationkey
      break;
    case kCustomer:
      s.name = "customer";
      s.columns = {{"c_custkey", CT::kInt64},
                   {"c_name", CT::kString},
                   {"c_address", CT::kString},
                   {"c_nationkey", CT::kInt64},
                   {"c_phone", CT::kString},
                   {"c_acctbal", CT::kDecimal},
                   {"c_mktsegment", CT::kString},
                   {"c_comment", CT::kString}};
      s.partition_column = 0;
      s.partition_bounds = bounds_for(RowCount(kCustomer));
      s.hg_index_columns = {3};  // c_nationkey
      break;
    case kPart:
      s.name = "part";
      s.columns = {{"p_partkey", CT::kInt64},
                   {"p_name", CT::kString},
                   {"p_mfgr", CT::kString},
                   {"p_brand", CT::kString},
                   {"p_type", CT::kString},
                   {"p_size", CT::kInt64},
                   {"p_container", CT::kString},
                   {"p_retailprice", CT::kDecimal},
                   {"p_comment", CT::kString}};
      s.partition_column = 0;
      s.partition_bounds = bounds_for(RowCount(kPart));
      break;
    case kPartSupp:
      s.name = "partsupp";
      s.columns = {{"ps_partkey", CT::kInt64},
                   {"ps_suppkey", CT::kInt64},
                   {"ps_availqty", CT::kInt64},
                   {"ps_supplycost", CT::kDecimal},
                   {"ps_comment", CT::kString}};
      s.partition_column = 0;
      s.partition_bounds = bounds_for(RowCount(kPart));
      s.hg_index_columns = {1, 0};  // ps_suppkey, ps_partkey
      break;
    case kOrders:
      s.name = "orders";
      s.columns = {{"o_orderkey", CT::kInt64},
                   {"o_custkey", CT::kInt64},
                   {"o_orderstatus", CT::kString},
                   {"o_totalprice", CT::kDecimal},
                   {"o_orderdate", CT::kDate},
                   {"o_orderpriority", CT::kString},
                   {"o_clerk", CT::kString},
                   {"o_shippriority", CT::kInt64},
                   {"o_comment", CT::kString}};
      s.partition_column = 0;
      s.partition_bounds = bounds_for(RowCount(kOrders));
      s.hg_index_columns = {1};    // o_custkey
      s.date_index_columns = {4};  // o_orderdate
      s.text_index_columns = {8};  // o_comment
      break;
    case kLineitem:
      s.name = "lineitem";
      s.columns = {{"l_orderkey", CT::kInt64},
                   {"l_partkey", CT::kInt64},
                   {"l_suppkey", CT::kInt64},
                   {"l_linenumber", CT::kInt64},
                   {"l_quantity", CT::kInt64},
                   {"l_extendedprice", CT::kDecimal},
                   {"l_discount", CT::kDecimal},
                   {"l_tax", CT::kDecimal},
                   {"l_returnflag", CT::kString},
                   {"l_linestatus", CT::kString},
                   {"l_shipdate", CT::kDate},
                   {"l_commitdate", CT::kDate},
                   {"l_receiptdate", CT::kDate},
                   {"l_shipinstruct", CT::kString},
                   {"l_shipmode", CT::kString},
                   {"l_comment", CT::kString}};
      s.partition_column = 0;
      s.partition_bounds = bounds_for(RowCount(kOrders));  // by orderkey
      s.hg_index_columns = {0};     // l_orderkey
      s.date_index_columns = {10};  // l_shipdate
      break;
  }
  return s;
}

namespace {

// Per-order deterministic line detail, shared between orders (to compute
// o_totalprice / o_orderstatus) and lineitem generation.
struct LineDetail {
  int64_t partkey;
  int64_t suppkey;
  int64_t quantity;
  int64_t extendedprice;  // scaled decimal
  int64_t discount;       // scaled decimal (0-10)
  int64_t tax;            // scaled decimal (0-8)
  int64_t shipdate;
  int64_t commitdate;
  int64_t receiptdate;
};

struct OrderDetail {
  int64_t custkey;
  int64_t orderdate;
  int line_count;
  LineDetail lines[kMaxLinesPerOrder];
  int64_t totalprice;
  char orderstatus;
};

OrderDetail MakeOrder(uint64_t seed, uint64_t orderkey, uint64_t customers,
                      uint64_t parts, uint64_t suppliers) {
  Rng rng = EntityRng(seed, kOrders, orderkey);
  OrderDetail order;
  // Spec: a third of customers place no orders (custkey % 3 == 0 skipped).
  do {
    order.custkey = rng.UniformRange(1, static_cast<int64_t>(customers));
  } while (customers >= 3 && order.custkey % 3 == 0);
  int64_t min_date = TpchGenerator::MinOrderDate();
  int64_t max_date = TpchGenerator::MaxOrderDate() - 151;
  order.orderdate = rng.UniformRange(min_date, max_date);

  order.totalprice = 0;
  order.line_count = TpchGenerator::LinesPerOrder(orderkey);
  int open_lines = 0;
  for (int l = 0; l < order.line_count; ++l) {
    LineDetail& line = order.lines[l];
    line.partkey = rng.UniformRange(1, static_cast<int64_t>(parts));
    // One of the part's four suppliers, per the spec's formula.
    int64_t i = rng.UniformRange(0, 3);
    int64_t s = static_cast<int64_t>(suppliers);
    line.suppkey =
        (line.partkey + i * (s / 4 + (line.partkey - 1) / s)) % s + 1;
    line.quantity = rng.UniformRange(1, 50);
    line.extendedprice = line.quantity * PartRetailPrice(line.partkey);
    line.discount = rng.UniformRange(0, 10);
    line.tax = rng.UniformRange(0, 8);
    line.shipdate = order.orderdate + rng.UniformRange(1, 121);
    line.commitdate = order.orderdate + rng.UniformRange(30, 90);
    line.receiptdate = line.shipdate + rng.UniformRange(1, 30);
    order.totalprice += line.extendedprice * (100 + line.tax) / 100 *
                        (100 - line.discount) / 100;
    if (line.shipdate > DaysFromCivil(1995, 6, 17)) ++open_lines;
  }
  order.orderstatus = open_lines == order.line_count
                          ? 'O'
                          : (open_lines == 0 ? 'F' : 'P');
  return order;
}

}  // namespace

Batch TpchGenerator::GenerateBatch(TpchTable table, uint64_t first,
                                   uint64_t count) {
  TableSchema schema = SchemaFor(table);
  Batch batch;
  for (const ColumnDef& col : schema.columns) {
    ColumnVector vec;
    vec.type = col.type;
    vec.reserve(count);
    batch.AddColumn(col.name, std::move(vec));
  }
  uint64_t customers = RowCount(kCustomer);
  uint64_t parts = RowCount(kPart);
  uint64_t suppliers = RowCount(kSupplier);

  for (uint64_t row = first; row < first + count; ++row) {
    switch (table) {
      case kRegion: {
        Rng rng = EntityRng(seed_, table, row);
        batch.columns[0].ints.push_back(static_cast<int64_t>(row));
        batch.columns[1].strings.push_back(kRegionNames[row % 5]);
        batch.columns[2].strings.push_back(RandomComment(rng, 4, 10));
        break;
      }
      case kNation: {
        Rng rng = EntityRng(seed_, table, row);
        batch.columns[0].ints.push_back(static_cast<int64_t>(row));
        batch.columns[1].strings.push_back(kNationNames[row % 25]);
        batch.columns[2].ints.push_back(kNationRegion[row % 25]);
        batch.columns[3].strings.push_back(RandomComment(rng, 4, 10));
        break;
      }
      case kSupplier: {
        uint64_t key = row + 1;
        Rng rng = EntityRng(seed_, table, key);
        int64_t nation = rng.UniformRange(0, 24);
        batch.columns[0].ints.push_back(static_cast<int64_t>(key));
        batch.columns[1].strings.push_back(KeyedName("Supplier", key));
        batch.columns[2].strings.push_back(RandomComment(rng, 2, 4));
        batch.columns[3].ints.push_back(nation);
        batch.columns[4].strings.push_back(Phone(rng, nation));
        batch.columns[5].ints.push_back(rng.UniformRange(-99999, 999999));
        // ~5% of suppliers carry the Q16 complaints marker.
        std::string comment = RandomComment(rng, 4, 10);
        if (rng.Bernoulli(0.05)) {
          comment += " Customer some Complaints noted";
        }
        batch.columns[6].strings.push_back(std::move(comment));
        break;
      }
      case kCustomer: {
        uint64_t key = row + 1;
        Rng rng = EntityRng(seed_, table, key);
        int64_t nation = rng.UniformRange(0, 24);
        batch.columns[0].ints.push_back(static_cast<int64_t>(key));
        batch.columns[1].strings.push_back(KeyedName("Customer", key));
        batch.columns[2].strings.push_back(RandomComment(rng, 2, 4));
        batch.columns[3].ints.push_back(nation);
        batch.columns[4].strings.push_back(Phone(rng, nation));
        batch.columns[5].ints.push_back(rng.UniformRange(-99999, 999999));
        batch.columns[6].strings.push_back(kSegments[rng.Uniform(5)]);
        batch.columns[7].strings.push_back(RandomComment(rng, 6, 20));
        break;
      }
      case kPart: {
        uint64_t key = row + 1;
        Rng rng = EntityRng(seed_, table, key);
        batch.columns[0].ints.push_back(static_cast<int64_t>(key));
        std::string name = std::string(kWords[rng.Uniform(24)]) + " " +
                           kWords[rng.Uniform(24)] + " " +
                           kWords[rng.Uniform(24)];
        batch.columns[1].strings.push_back(std::move(name));
        int mfgr = static_cast<int>(rng.UniformRange(1, 5));
        batch.columns[2].strings.push_back("Manufacturer#" +
                                           std::to_string(mfgr));
        batch.columns[3].strings.push_back(
            "Brand#" + std::to_string(mfgr) +
            std::to_string(rng.UniformRange(1, 5)));
        std::string type = std::string(kTypes1[rng.Uniform(6)]) + " " +
                           kTypes2[rng.Uniform(5)] + " " +
                           kTypes3[rng.Uniform(5)];
        batch.columns[4].strings.push_back(std::move(type));
        batch.columns[5].ints.push_back(rng.UniformRange(1, 50));
        batch.columns[6].strings.push_back(
            std::string(kContainers1[rng.Uniform(5)]) + " " +
            kContainers2[rng.Uniform(8)]);
        batch.columns[7].ints.push_back(PartRetailPrice(key));
        batch.columns[8].strings.push_back(RandomComment(rng, 2, 6));
        break;
      }
      case kPartSupp: {
        uint64_t partkey = row / 4 + 1;
        uint64_t i = row % 4;
        Rng rng = EntityRng(seed_, table, row + 1);
        int64_t s = static_cast<int64_t>(suppliers);
        int64_t suppkey =
            (static_cast<int64_t>(partkey) +
             static_cast<int64_t>(i) *
                 (s / 4 + (static_cast<int64_t>(partkey) - 1) / s)) %
                s +
            1;
        batch.columns[0].ints.push_back(static_cast<int64_t>(partkey));
        batch.columns[1].ints.push_back(suppkey);
        batch.columns[2].ints.push_back(rng.UniformRange(1, 9999));
        batch.columns[3].ints.push_back(rng.UniformRange(100, 100000));
        batch.columns[4].strings.push_back(RandomComment(rng, 6, 20));
        break;
      }
      case kOrders: {
        uint64_t key = row + 1;
        OrderDetail order =
            MakeOrder(seed_, key, customers, parts, suppliers);
        Rng rng = EntityRng(seed_, table, key ^ 0xabcdef);
        batch.columns[0].ints.push_back(static_cast<int64_t>(key));
        batch.columns[1].ints.push_back(order.custkey);
        batch.columns[2].strings.push_back(
            std::string(1, order.orderstatus));
        batch.columns[3].ints.push_back(order.totalprice);
        batch.columns[4].ints.push_back(order.orderdate);
        batch.columns[5].strings.push_back(kPriorities[rng.Uniform(5)]);
        batch.columns[6].strings.push_back(
            KeyedName("Clerk", rng.UniformRange(1, 1000)));
        batch.columns[7].ints.push_back(0);
        batch.columns[8].strings.push_back(RandomComment(rng, 6, 16));
        break;
      }
      case kLineitem: {
        uint64_t order_index;
        int linenumber;
        OrderForLineRow(row, &order_index, &linenumber);
        uint64_t orderkey = order_index + 1;
        OrderDetail order =
            MakeOrder(seed_, orderkey, customers, parts, suppliers);
        const LineDetail& line = order.lines[linenumber];
        Rng rng = EntityRng(seed_, table, row + 1);
        int64_t cutoff = DaysFromCivil(1995, 6, 17);
        batch.columns[0].ints.push_back(static_cast<int64_t>(orderkey));
        batch.columns[1].ints.push_back(line.partkey);
        batch.columns[2].ints.push_back(line.suppkey);
        batch.columns[3].ints.push_back(linenumber + 1);
        batch.columns[4].ints.push_back(line.quantity);
        batch.columns[5].ints.push_back(line.extendedprice);
        batch.columns[6].ints.push_back(line.discount);
        batch.columns[7].ints.push_back(line.tax);
        batch.columns[8].strings.push_back(
            line.receiptdate <= cutoff ? (rng.Bernoulli(0.5) ? "R" : "A")
                                       : "N");
        batch.columns[9].strings.push_back(line.shipdate > cutoff ? "O"
                                                                  : "F");
        batch.columns[10].ints.push_back(line.shipdate);
        batch.columns[11].ints.push_back(line.commitdate);
        batch.columns[12].ints.push_back(line.receiptdate);
        batch.columns[13].strings.push_back(
            kShipInstructs[rng.Uniform(4)]);
        batch.columns[14].strings.push_back(kShipModes[rng.Uniform(7)]);
        batch.columns[15].strings.push_back(RandomComment(rng, 2, 8));
        break;
      }
    }
  }
  return batch;
}

}  // namespace cloudiq
