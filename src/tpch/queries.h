#ifndef CLOUDIQ_TPCH_QUERIES_H_
#define CLOUDIQ_TPCH_QUERIES_H_

#include "common/result.h"
#include "exec/batch.h"
#include "exec/executor.h"

namespace cloudiq {

// Runs TPC-H query `query_number` (1-22) against the tables loaded by
// LoadTpch, returning the result batch. Queries are expressed directly
// against the vectorized executor (scan with zone-map pruning and
// prefetch, hash joins, hash aggregation, sort/top-n) and follow the
// spec's semantics; a few thresholds are rescaled to the generator's
// fixed four lineitems per order and noted inline.
Result<Batch> RunTpchQuery(QueryContext* ctx, int query_number);

// One-line description of the query's workload shape.
const char* TpchQueryDescription(int query_number);

inline constexpr int kTpchQueryCount = 22;

}  // namespace cloudiq

#endif  // CLOUDIQ_TPCH_QUERIES_H_
