#include <set>
#include <unordered_map>
#include <unordered_set>

#include "tpch/queries.h"
#include "tpch/queries_internal.h"

namespace cloudiq {
namespace tpch_internal {

// Q12: shipping modes and order priority. lineitem (receiptdate in 1994,
// modes MAIL/SHIP) joined to orders; high/low priority line counts.
Result<Batch> Q12(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  int64_t lo = D(1994, 1, 1);
  int64_t hi = D(1995, 1, 1) - 1;
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_orderkey", "l_shipmode", "l_commitdate", "l_shipdate",
                 "l_receiptdate"},
                ScanRange{"l_receiptdate", lo, hi}));
  items = FilterBatch(ctx, items, [](const Batch& b, size_t r) {
    const std::string& mode = b.Str("l_shipmode", r);
    return (mode == "MAIL" || mode == "SHIP") &&
           b.Int("l_commitdate", r) < b.Int("l_receiptdate", r) &&
           b.Int("l_shipdate", r) < b.Int("l_commitdate", r);
  });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ord,
      ScanTable(ctx, &orders, {"o_orderkey", "o_orderpriority"}));
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_orderkey", ord,
                                           "o_orderkey", JoinType::kInner));
  items = WithComputedColumn(
      ctx, std::move(items), "high_line", ColumnType::kInt64,
      [](const Batch& b, size_t r, ColumnVector* out) {
        const std::string& p = b.Str("o_orderpriority", r);
        out->ints.push_back(p == "1-URGENT" || p == "2-HIGH" ? 1 : 0);
      });
  items = WithComputedColumn(
      ctx, std::move(items), "low_line", ColumnType::kInt64,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->ints.push_back(1 - b.Int("high_line", r));
      });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg,
      HashAggregate(ctx, items, {"l_shipmode"},
                    {{AggOp::kSum, "high_line", "high_line_count"},
                     {AggOp::kSum, "low_line", "low_line_count"}}));
  return SortBatch(ctx, std::move(agg), {{"l_shipmode", true}});
}

// Q13: customer order-count distribution (customers with zero orders
// included via anti-join).
Result<Batch> Q13(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader customer, ctx->OpenTable(kCustomer));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));

  // NOT LIKE '%special%requests%': the TEXT index (§1's text-indexing
  // niche index) yields the candidate rows containing both words; only
  // those few rows have their comments decoded for the exact ordered
  // check — the heavy o_comment column is never scanned in full.
  int comment_col = orders.schema().ColumnIndex("o_comment");
  Batch excluded;
  excluded.AddColumn("x_orderkey", {ColumnType::kInt64, {}, {}, {}});
  for (size_t p = 0; p < orders.meta().partitions.size(); ++p) {
    if (orders.meta().partitions[p].row_count == 0) continue;
    CLOUDIQ_ASSIGN_OR_RETURN(
        IntervalSet candidates,
        orders.TextIndexAllWords(p, comment_col, {"special", "requests"}));
    CLOUDIQ_ASSIGN_OR_RETURN(
        Batch rows, ScanRowIds(ctx, &orders, p,
                               {"o_orderkey", "o_comment"}, candidates));
    for (size_t r = 0; r < rows.rows(); ++r) {
      const std::string& c = rows.Str("o_comment", r);
      size_t pos = c.find("special");
      if (pos != std::string::npos &&
          c.find("requests", pos) != std::string::npos) {
        excluded.columns[0].ints.push_back(rows.Int("o_orderkey", r));
      }
    }
  }
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ord, ScanTable(ctx, &orders, {"o_orderkey", "o_custkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(ord,
                           HashJoin(ctx, ord, "o_orderkey", excluded,
                                    "x_orderkey", JoinType::kLeftAnti));
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch counts, HashAggregate(ctx, ord, {"o_custkey"},
                                  {{AggOp::kCount, "", "c_count"}}));

  CLOUDIQ_ASSIGN_OR_RETURN(Batch customers,
                           ScanTable(ctx, &customer, {"c_custkey"}));
  // Customers with no surviving orders count as zero.
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch zero, HashJoin(ctx, customers, "c_custkey", counts,
                           "o_custkey", JoinType::kLeftAnti));
  zero = WithComputedColumn(
      ctx, std::move(zero), "c_count", ColumnType::kInt64,
      [](const Batch&, size_t, ColumnVector* out) {
        out->ints.push_back(0);
      });

  // Histogram over both populations.
  Batch combined;
  combined.AddColumn("c_count", ColumnVector{ColumnType::kInt64, {}, {}, {}});
  for (int64_t v : counts.column("c_count").ints) {
    combined.columns[0].ints.push_back(v);
  }
  for (int64_t v : zero.column("c_count").ints) {
    combined.columns[0].ints.push_back(v);
  }
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch hist, HashAggregate(ctx, combined, {"c_count"},
                                {{AggOp::kCount, "", "custdist"}}));
  return SortBatch(ctx, std::move(hist),
                   {{"custdist", false}, {"c_count", false}});
}

// Q14: promotion effect in 1995-09. The month predicate is exactly what
// the DATE index (§1's datepart niche index) answers: one posting probe
// per partition instead of a shipdate column scan.
Result<Batch> Q14(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader part, ctx->OpenTable(kPart));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  int shipdate_col = lineitem.schema().ColumnIndex("l_shipdate");
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanByMonth(ctx, &lineitem, shipdate_col, 1995, 9,
                  {"l_partkey", "l_extendedprice", "l_discount"}));
  CLOUDIQ_ASSIGN_OR_RETURN(Batch parts,
                           ScanTable(ctx, &part, {"p_partkey", "p_type"}));
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_partkey", parts,
                                           "p_partkey", JoinType::kInner));
  items = WithRevenue(ctx, std::move(items), "l_extendedprice",
                      "l_discount", "revenue");
  items = WithComputedColumn(
      ctx, std::move(items), "promo_revenue", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->doubles.push_back(StartsWith(b.Str("p_type", r), "PROMO")
                                   ? b.Double("revenue", r)
                                   : 0.0);
      });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg, HashAggregate(ctx, items, {},
                               {{AggOp::kSum, "promo_revenue", "promo"},
                                {AggOp::kSum, "revenue", "total"}}));
  return WithComputedColumn(
      ctx, std::move(agg), "promo_pct", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        double total = b.Double("total", r);
        out->doubles.push_back(
            total > 0 ? 100.0 * b.Double("promo", r) / total : 0.0);
      });
}

// Q15: top supplier for 1996Q1.
Result<Batch> Q15(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader supplier, ctx->OpenTable(kSupplier));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  int64_t lo = D(1996, 1, 1);
  int64_t hi = D(1996, 4, 1) - 1;
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_suppkey", "l_extendedprice", "l_discount",
                 "l_shipdate"},
                ScanRange{"l_shipdate", lo, hi}));
  items = WithRevenue(ctx, std::move(items), "l_extendedprice",
                      "l_discount", "revenue");
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch by_supp, HashAggregate(ctx, items, {"l_suppkey"},
                                   {{AggOp::kSum, "revenue",
                                     "total_revenue"}}));
  double max_revenue = 0;
  for (double v : by_supp.column("total_revenue").doubles) {
    max_revenue = std::max(max_revenue, v);
  }
  by_supp = FilterBatch(ctx, by_supp,
                        [max_revenue](const Batch& b, size_t r) {
                          return b.Double("total_revenue", r) >=
                                 max_revenue - 1e-9;
                        });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch suppliers,
      ScanTable(ctx, &supplier,
                {"s_suppkey", "s_name", "s_address", "s_phone"}));
  CLOUDIQ_ASSIGN_OR_RETURN(Batch joined,
                           HashJoin(ctx, by_supp, "l_suppkey", suppliers,
                                    "s_suppkey", JoinType::kInner));
  return SortBatch(ctx, std::move(joined), {{"l_suppkey", true}});
}

// Q16: parts/supplier relationship. Distinct supplier counts by
// brand/type/size, excluding complaint suppliers.
Result<Batch> Q16(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader part, ctx->OpenTable(kPart));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader partsupp, ctx->OpenTable(kPartSupp));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader supplier, ctx->OpenTable(kSupplier));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch parts, ScanTable(ctx, &part,
                             {"p_partkey", "p_brand", "p_type", "p_size"}));
  const std::set<int64_t> kSizes{1, 14, 23, 45, 19, 3, 36, 9};
  parts = FilterBatch(ctx, parts, [&kSizes](const Batch& b, size_t r) {
    return b.Str("p_brand", r) != "Brand#45" &&
           !StartsWith(b.Str("p_type", r), "MEDIUM POLISHED") &&
           kSizes.count(b.Int("p_size", r)) > 0;
  });

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch complainers,
      ScanTable(ctx, &supplier, {"s_suppkey", "s_comment"}));
  complainers = FilterBatch(ctx, complainers, [](const Batch& b, size_t r) {
    const std::string& c = b.Str("s_comment", r);
    size_t p = c.find("Customer");
    return p != std::string::npos &&
           c.find("Complaints", p) != std::string::npos;
  });

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ps, ScanTable(ctx, &partsupp, {"ps_partkey", "ps_suppkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(ps, HashJoin(ctx, ps, "ps_suppkey", complainers,
                                        "s_suppkey", JoinType::kLeftAnti));
  CLOUDIQ_ASSIGN_OR_RETURN(ps, HashJoin(ctx, ps, "ps_partkey", parts,
                                        "p_partkey", JoinType::kInner));

  // Distinct suppliers per group.
  std::unordered_map<std::string, std::unordered_set<int64_t>> distinct;
  std::unordered_map<std::string, size_t> rep_row;
  for (size_t r = 0; r < ps.rows(); ++r) {
    std::string key = ps.Str("p_brand", r) + '\x1f' + ps.Str("p_type", r) +
                      '\x1f' + std::to_string(ps.Int("p_size", r));
    distinct[key].insert(ps.Int("ps_suppkey", r));
    rep_row.emplace(key, r);
  }
  ctx->ChargeValues(ps.rows() * 2);

  Batch out;
  out.AddColumn("p_brand", ColumnVector{ColumnType::kString, {}, {}, {}});
  out.AddColumn("p_type", ColumnVector{ColumnType::kString, {}, {}, {}});
  out.AddColumn("p_size", ColumnVector{ColumnType::kInt64, {}, {}, {}});
  out.AddColumn("supplier_cnt", ColumnVector{ColumnType::kInt64, {}, {}, {}});
  for (const auto& [key, supps] : distinct) {
    size_t r = rep_row[key];
    out.columns[0].strings.push_back(ps.Str("p_brand", r));
    out.columns[1].strings.push_back(ps.Str("p_type", r));
    out.columns[2].ints.push_back(ps.Int("p_size", r));
    out.columns[3].ints.push_back(static_cast<int64_t>(supps.size()));
  }
  return SortBatch(ctx, std::move(out),
                   {{"supplier_cnt", false},
                    {"p_brand", true},
                    {"p_type", true},
                    {"p_size", true}});
}

// Q17: small-quantity-order revenue for one brand/container.
Result<Batch> Q17(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader part, ctx->OpenTable(kPart));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch parts, ScanTable(ctx, &part,
                             {"p_partkey", "p_brand", "p_container"}));
  parts = FilterBatch(ctx, parts, [](const Batch& b, size_t r) {
    return b.Str("p_brand", r) == "Brand#23" &&
           b.Str("p_container", r) == "MED BOX";
  });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_partkey", "l_quantity", "l_extendedprice"}));
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_partkey", parts,
                                           "p_partkey", JoinType::kLeftSemi));
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch avg_qty, HashAggregate(ctx, items, {"l_partkey"},
                                   {{AggOp::kAvg, "l_quantity",
                                     "avg_quantity"}}));
  CLOUDIQ_ASSIGN_OR_RETURN(items,
                           HashJoin(ctx, items, "l_partkey", avg_qty,
                                    "l_partkey", JoinType::kInner));
  items = FilterBatch(ctx, items, [](const Batch& b, size_t r) {
    return b.Int("l_quantity", r) < 0.2 * b.Double("avg_quantity", r);
  });
  items = WithComputedColumn(
      ctx, std::move(items), "price", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->doubles.push_back(
            DecimalToDouble(b.Int("l_extendedprice", r)));
      });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg,
      HashAggregate(ctx, items, {}, {{AggOp::kSum, "price", "sum_price"}}));
  return WithComputedColumn(
      ctx, std::move(agg), "avg_yearly", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->doubles.push_back(b.Double("sum_price", r) / 7.0);
      });
}

// Q18: large-volume customers. (Threshold rescaled from the spec's 300
// to 150: with 1-7 lines per order the 300 threshold is hit too rarely at
// bench scale factors to exercise the join pipeline.)
Result<Batch> Q18(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader customer, ctx->OpenTable(kCustomer));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items, ScanTable(ctx, &lineitem, {"l_orderkey", "l_quantity"}));
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch qty, HashAggregate(ctx, items, {"l_orderkey"},
                               {{AggOp::kSum, "l_quantity", "sum_qty"}}));
  qty = FilterBatch(ctx, qty, [](const Batch& b, size_t r) {
    return b.Int("sum_qty", r) > 150;
  });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ord,
      ScanTable(ctx, &orders,
                {"o_orderkey", "o_custkey", "o_orderdate",
                 "o_totalprice"}));
  CLOUDIQ_ASSIGN_OR_RETURN(ord, HashJoin(ctx, ord, "o_orderkey", qty,
                                         "l_orderkey", JoinType::kInner));
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch customers,
      ScanTable(ctx, &customer, {"c_custkey", "c_name"}));
  CLOUDIQ_ASSIGN_OR_RETURN(ord, HashJoin(ctx, ord, "o_custkey", customers,
                                         "c_custkey", JoinType::kInner));
  return SortBatch(ctx, std::move(ord),
                   {{"o_totalprice", false}, {"o_orderdate", true}}, 100);
}

// Q19: discounted revenue, disjunctive brand/container/quantity brackets.
Result<Batch> Q19(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader part, ctx->OpenTable(kPart));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch parts,
      ScanTable(ctx, &part,
                {"p_partkey", "p_brand", "p_container", "p_size"}));
  parts = FilterBatch(ctx, parts, [](const Batch& b, size_t r) {
    const std::string& brand = b.Str("p_brand", r);
    const std::string& cont = b.Str("p_container", r);
    int64_t size = b.Int("p_size", r);
    bool b1 = brand == "Brand#12" &&
              (StartsWith(cont, "SM")) && size >= 1 && size <= 5;
    bool b2 = brand == "Brand#23" &&
              (StartsWith(cont, "MED")) && size >= 1 && size <= 10;
    bool b3 = brand == "Brand#34" &&
              (StartsWith(cont, "LG")) && size >= 1 && size <= 15;
    return b1 || b2 || b3;
  });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_partkey", "l_quantity", "l_extendedprice",
                 "l_discount", "l_shipmode", "l_shipinstruct"}));
  items = FilterBatch(ctx, items, [](const Batch& b, size_t r) {
    const std::string& mode = b.Str("l_shipmode", r);
    return (mode == "AIR" || mode == "REG AIR") &&
           b.Str("l_shipinstruct", r) == "DELIVER IN PERSON";
  });
  CLOUDIQ_ASSIGN_OR_RETURN(items, HashJoin(ctx, items, "l_partkey", parts,
                                           "p_partkey", JoinType::kInner));
  items = FilterBatch(ctx, items, [](const Batch& b, size_t r) {
    const std::string& brand = b.Str("p_brand", r);
    int64_t q = b.Int("l_quantity", r);
    if (brand == "Brand#12") return q >= 1 && q <= 11;
    if (brand == "Brand#23") return q >= 10 && q <= 20;
    return q >= 20 && q <= 30;
  });
  items = WithRevenue(ctx, std::move(items), "l_extendedprice",
                      "l_discount", "revenue");
  return HashAggregate(ctx, items, {},
                       {{AggOp::kSum, "revenue", "revenue"}});
}

// Q20: potential part promotion — suppliers in CANADA with excess stock
// of parts shipped during 1994.
Result<Batch> Q20(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader part, ctx->OpenTable(kPart));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader partsupp, ctx->OpenTable(kPartSupp));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader supplier, ctx->OpenTable(kSupplier));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader nation, ctx->OpenTable(kNation));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));

  CLOUDIQ_ASSIGN_OR_RETURN(Batch parts,
                           ScanTable(ctx, &part, {"p_partkey", "p_name"}));
  parts = FilterBatch(ctx, parts, [](const Batch& b, size_t r) {
    return StartsWith(b.Str("p_name", r), "f");  // 'forest%' stand-in
  });

  int64_t lo = D(1994, 1, 1);
  int64_t hi = D(1995, 1, 1) - 1;
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_partkey", "l_suppkey", "l_quantity", "l_shipdate"},
                ScanRange{"l_shipdate", lo, hi}));
  items = WithComputedColumn(
      ctx, std::move(items), "ps_pair", ColumnType::kInt64,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->ints.push_back(b.Int("l_partkey", r) * 100000 +
                            b.Int("l_suppkey", r));
      });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch shipped, HashAggregate(ctx, items, {"ps_pair"},
                                   {{AggOp::kSum, "l_quantity",
                                     "shipped_qty"}}));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ps, ScanTable(ctx, &partsupp,
                          {"ps_partkey", "ps_suppkey", "ps_availqty"}));
  CLOUDIQ_ASSIGN_OR_RETURN(ps, HashJoin(ctx, ps, "ps_partkey", parts,
                                        "p_partkey", JoinType::kLeftSemi));
  ps = WithComputedColumn(
      ctx, std::move(ps), "pair", ColumnType::kInt64,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->ints.push_back(b.Int("ps_partkey", r) * 100000 +
                            b.Int("ps_suppkey", r));
      });
  CLOUDIQ_ASSIGN_OR_RETURN(ps, HashJoin(ctx, ps, "pair", shipped, "ps_pair",
                                        JoinType::kInner));
  ps = FilterBatch(ctx, ps, [](const Batch& b, size_t r) {
    return b.Int("ps_availqty", r) > b.Int("shipped_qty", r) / 2;
  });

  CLOUDIQ_ASSIGN_OR_RETURN(Batch nations,
                           ScanTable(ctx, &nation,
                                     {"n_nationkey", "n_name"}));
  nations = FilterBatch(ctx, nations, [](const Batch& b, size_t r) {
    return b.Str("n_name", r) == "CANADA";
  });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch suppliers,
      ScanTable(ctx, &supplier,
                {"s_suppkey", "s_name", "s_address", "s_nationkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(suppliers,
                           HashJoin(ctx, suppliers, "s_nationkey", nations,
                                    "n_nationkey", JoinType::kLeftSemi));
  CLOUDIQ_ASSIGN_OR_RETURN(suppliers,
                           HashJoin(ctx, suppliers, "s_suppkey", ps,
                                    "ps_suppkey", JoinType::kLeftSemi));
  return SortBatch(ctx, std::move(suppliers), {{"s_name", true}});
}

// Q21: suppliers who kept orders waiting. Multi-pass over lineitem with
// exists / not-exists conditions.
Result<Batch> Q21(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader supplier, ctx->OpenTable(kSupplier));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx->OpenTable(kLineitem));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader nation, ctx->OpenTable(kNation));

  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch items,
      ScanTable(ctx, &lineitem,
                {"l_orderkey", "l_suppkey", "l_commitdate",
                 "l_receiptdate"}));
  // Late lines: receipt after commit.
  Batch late = FilterBatch(ctx, items, [](const Batch& b, size_t r) {
    return b.Int("l_receiptdate", r) > b.Int("l_commitdate", r);
  });

  // Per order: number of distinct suppliers, and of distinct late
  // suppliers.
  std::unordered_map<int64_t, std::unordered_set<int64_t>> supps_by_order;
  for (size_t r = 0; r < items.rows(); ++r) {
    supps_by_order[items.Int("l_orderkey", r)].insert(
        items.Int("l_suppkey", r));
  }
  std::unordered_map<int64_t, std::unordered_set<int64_t>> late_by_order;
  for (size_t r = 0; r < late.rows(); ++r) {
    late_by_order[late.Int("l_orderkey", r)].insert(
        late.Int("l_suppkey", r));
  }
  ctx->ChargeValues(items.rows() + late.rows());

  // Orders with status F whose *only* late supplier is the candidate:
  // exists other supplier, not exists other late supplier.
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch ord, ScanTable(ctx, &orders, {"o_orderkey", "o_orderstatus"}));
  std::unordered_set<int64_t> f_orders;
  for (size_t r = 0; r < ord.rows(); ++r) {
    if (ord.Str("o_orderstatus", r) == "F") {
      f_orders.insert(ord.Int("o_orderkey", r));
    }
  }

  late = FilterBatch(ctx, late, [&](const Batch& b, size_t r) {
    int64_t order = b.Int("l_orderkey", r);
    int64_t supp = b.Int("l_suppkey", r);
    if (f_orders.count(order) == 0) return false;
    const auto& all = supps_by_order[order];
    const auto& late_set = late_by_order[order];
    return all.size() > 1 && late_set.size() == 1 &&
           *late_set.begin() == supp;
  });

  CLOUDIQ_ASSIGN_OR_RETURN(Batch nations,
                           ScanTable(ctx, &nation,
                                     {"n_nationkey", "n_name"}));
  nations = FilterBatch(ctx, nations, [](const Batch& b, size_t r) {
    return b.Str("n_name", r) == "SAUDI ARABIA";
  });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch suppliers,
      ScanTable(ctx, &supplier, {"s_suppkey", "s_name", "s_nationkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(suppliers,
                           HashJoin(ctx, suppliers, "s_nationkey", nations,
                                    "n_nationkey", JoinType::kLeftSemi));
  CLOUDIQ_ASSIGN_OR_RETURN(late,
                           HashJoin(ctx, late, "l_suppkey", suppliers,
                                    "s_suppkey", JoinType::kInner));
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg, HashAggregate(ctx, late, {"s_name"},
                               {{AggOp::kCount, "", "numwait"}}));
  return SortBatch(ctx, std::move(agg),
                   {{"numwait", false}, {"s_name", true}}, 100);
}

// Q22: global sales opportunity — well-funded customers with no orders.
Result<Batch> Q22(QueryContext* ctx) {
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader customer, ctx->OpenTable(kCustomer));
  CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx->OpenTable(kOrders));

  const std::set<std::string> kCodes{"13", "31", "23", "29", "30", "18",
                                     "17"};
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch customers,
      ScanTable(ctx, &customer, {"c_custkey", "c_phone", "c_acctbal"}));
  customers = FilterBatch(ctx, customers, [&](const Batch& b, size_t r) {
    return kCodes.count(b.Str("c_phone", r).substr(0, 2)) > 0;
  });

  // Average positive balance of the candidate population.
  Batch positive = FilterBatch(ctx, customers, [](const Batch& b, size_t r) {
    return b.Int("c_acctbal", r) > 0;
  });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch avg, HashAggregate(ctx, positive, {},
                               {{AggOp::kAvg, "c_acctbal", "avg_bal"}}));
  double avg_bal = avg.rows() > 0 ? avg.Double("avg_bal", 0) : 0;

  customers = FilterBatch(ctx, customers,
                          [avg_bal](const Batch& b, size_t r) {
                            return b.Int("c_acctbal", r) > avg_bal;
                          });

  CLOUDIQ_ASSIGN_OR_RETURN(Batch ord,
                           ScanTable(ctx, &orders, {"o_custkey"}));
  CLOUDIQ_ASSIGN_OR_RETURN(customers,
                           HashJoin(ctx, customers, "c_custkey", ord,
                                    "o_custkey", JoinType::kLeftAnti));
  customers = WithComputedColumn(
      ctx, std::move(customers), "cntrycode", ColumnType::kString,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->strings.push_back(b.Str("c_phone", r).substr(0, 2));
      });
  customers = WithComputedColumn(
      ctx, std::move(customers), "acctbal", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->doubles.push_back(DecimalToDouble(b.Int("c_acctbal", r)));
      });
  CLOUDIQ_ASSIGN_OR_RETURN(
      Batch agg,
      HashAggregate(ctx, customers, {"cntrycode"},
                    {{AggOp::kCount, "", "numcust"},
                     {AggOp::kSum, "acctbal", "totacctbal"}}));
  return SortBatch(ctx, std::move(agg), {{"cntrycode", true}});
}

}  // namespace tpch_internal
}  // namespace cloudiq
