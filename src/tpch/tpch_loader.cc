#include "tpch/tpch_loader.h"

namespace cloudiq {

Result<TableMeta> LoadTpchTable(Database* db, TpchGenerator* gen,
                                TpchTable table, TpchLoadOptions options) {
  TableSchema schema = gen->SchemaFor(table, options.partitions);
  Transaction* txn = db->Begin();
  TableLoader loader = db->NewTableLoader(txn, schema);

  NodeContext& node = db->node();
  uint64_t rows = gen->RowCount(table);
  uint64_t row_bytes = TpchGenerator::RawRowBytes(table);
  for (uint64_t first = 0; first < rows; first += options.batch_rows) {
    uint64_t count = std::min<uint64_t>(options.batch_rows, rows - first);
    // Stream the batch's share of the input files from the S3 input
    // bucket through the NIC (shared with the dbspace writes, which is
    // why load saturates the NIC — Figure 8). Input fetches are
    // double-buffered against parsing, so per-request latency is hidden
    // and only bandwidth (NIC + store streams) gates the pipeline.
    uint64_t input_bytes = count * row_bytes;
    (void)db->env().object_store().ExternalRead(input_bytes,
                                                node.clock().now());
    SimTime nic_done = node.nic().Transfer(input_bytes, node.clock().now());
    node.clock().AdvanceTo(nic_done);

    Batch batch = gen->GenerateBatch(table, first, count);
    Status st = loader.Append(batch.columns);
    if (!st.ok()) {
      (void)db->Rollback(txn);
      return st;
    }
    // Drain parse/encode CPU with the instance's parallelism.
    node.io().AddCpuWork(loader.TakeCpuSeconds(), node.profile().vcpus);
  }

  Result<TableMeta> meta = loader.Finish(db->system());
  if (!meta.ok()) {
    (void)db->Rollback(txn);
    return meta.status();
  }
  node.io().AddCpuWork(loader.TakeCpuSeconds(), node.profile().vcpus);
  CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
  return meta;
}

Result<TpchLoadResult> LoadTpch(Database* db, TpchGenerator* gen,
                                TpchLoadOptions options) {
  TpchLoadResult result;
  SimTime start = db->node().clock().now();
  const TpchTable tables[] = {kRegion,   kNation, kSupplier, kCustomer,
                              kPart,     kPartSupp, kOrders, kLineitem};
  for (TpchTable table : tables) {
    CLOUDIQ_RETURN_IF_ERROR(
        LoadTpchTable(db, gen, table, options).status());
    result.rows += gen->RowCount(table);
    result.input_bytes +=
        gen->RowCount(table) * TpchGenerator::RawRowBytes(table);
  }
  result.seconds = db->node().clock().now() - start;
  result.bytes_at_rest = db->UserBytesAtRest();
  return result;
}

}  // namespace cloudiq
