#ifndef CLOUDIQ_TPCH_TPCH_GEN_H_
#define CLOUDIQ_TPCH_TPCH_GEN_H_

#include <cstdint>
#include <vector>

#include "columnar/schema.h"
#include "common/random.h"
#include "exec/batch.h"

namespace cloudiq {

// Table ids for the eight TPC-H tables.
enum TpchTable : uint64_t {
  kRegion = 1,
  kNation = 2,
  kSupplier = 3,
  kCustomer = 4,
  kPart = 5,
  kPartSupp = 6,
  kOrders = 7,
  kLineitem = 8,
};

// TPC-H data generator: spec-shaped schemas, cardinalities and value
// distributions at a configurable scale factor, produced directly as
// columnar batches. Orders carry a variable 1-7 lineitems (the spec's
// distribution, average 4); a lazily built per-order prefix sum maps
// lineitem row ranges back to their orders so any batch split stays
// deterministic. Tables are created range-partitioned and carry the HG
// indexes the paper's evaluation declares (o_custkey, n_regionkey,
// s_nationkey, c_nationkey, ps_suppkey, ps_partkey, l_orderkey), plus
// DATE and TEXT niche indexes.
class TpchGenerator {
 public:
  // `scale` is the TPC-H scale factor (1.0 = ~8.6 GB raw). Sub-1 scales
  // shrink row counts proportionally (min 1 per table).
  explicit TpchGenerator(double scale, uint64_t seed = 20210620);

  double scale() const { return scale_; }

  // Schema (with partitioning and HG index declarations) for a table.
  // `partitions` controls the number of range partitions for the large
  // tables.
  TableSchema SchemaFor(TpchTable table, size_t partitions = 8) const;

  // Total rows for a table at this scale factor. (For lineitem this
  // builds the order->line prefix sum on first use.)
  uint64_t RowCount(TpchTable table) const;

  // Number of lineitems of order `orderkey` (1-7, deterministic).
  static int LinesPerOrder(uint64_t orderkey);

  // Average raw text bytes per row (for modelling the load-input files
  // staged in the S3 input bucket).
  static uint64_t RawRowBytes(TpchTable table);

  // Generates rows [first, first + count) of `table` as a columnar batch
  // in schema column order. Deterministic: the same (seed, row range)
  // yields the same data regardless of batch boundaries.
  Batch GenerateBatch(TpchTable table, uint64_t first, uint64_t count);

  // Date domain constants (days since epoch).
  static int64_t MinOrderDate();  // 1992-01-01
  static int64_t MaxOrderDate();  // 1998-08-02

 private:
  // Cumulative lineitem counts: line_prefix_[i] = total lineitems of
  // orders 1..i. Built lazily; purely a function of (seed, scale).
  void EnsureLinePrefix() const;
  // Order index (0-based) owning global lineitem row `row`, plus the
  // line number within the order.
  void OrderForLineRow(uint64_t row, uint64_t* order_index,
                       int* linenumber) const;

  double scale_;
  uint64_t seed_;
  mutable std::vector<uint64_t> line_prefix_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_TPCH_TPCH_GEN_H_
