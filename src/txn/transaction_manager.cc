#include "txn/transaction_manager.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"

namespace cloudiq {
namespace {

std::string RfName(const std::string& prefix, uint64_t txn_id) {
  return prefix + "rfrb/" + std::to_string(txn_id) + ".rf";
}
std::string RbName(const std::string& prefix, uint64_t txn_id) {
  return prefix + "rfrb/" + std::to_string(txn_id) + ".rb";
}

constexpr char kCatalogName[] = "catalog";
constexpr char kChainName[] = "chain";
constexpr char kTxnLogName[] = "txnlog";

// Records the elapsed sim time into a histogram when the scope exits,
// covering every early return of the commit/rollback paths.
struct LatencyScope {
  Histogram* histogram;
  const SimClock* clock;
  SimTime start;
  ~LatencyScope() {
    if (histogram != nullptr) histogram->Record(clock->now() - start);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// StorageObject
// ---------------------------------------------------------------------------

StorageObject::StorageObject(TransactionManager* txn_mgr, Transaction* txn,
                             uint64_t object_id, DbSpace* space,
                             Blockmap blockmap, bool writable)
    : txn_mgr_(txn_mgr),
      txn_(txn),
      object_id_(object_id),
      space_(space),
      blockmap_(std::move(blockmap)),
      writable_(writable) {}

Result<uint64_t> StorageObject::AppendPage(std::vector<uint8_t> payload) {
  if (!writable_) return Status::FailedPrecondition("read-only object");
  uint64_t page = blockmap_.Append(PhysicalLoc());
  CLOUDIQ_RETURN_IF_ERROR(txn_mgr_->buffer().PutDirty(
      txn_->id, object_id_, page, std::move(payload)));
  return page;
}

Status StorageObject::WritePage(uint64_t page,
                                std::vector<uint8_t> payload) {
  if (!writable_) return Status::FailedPrecondition("read-only object");
  if (page >= blockmap_.page_count()) {
    return Status::InvalidArgument("page out of range");
  }
  return txn_mgr_->buffer().PutDirty(txn_->id, object_id_, page,
                                     std::move(payload));
}

Result<BufferManager::PageData> StorageObject::ReadPage(uint64_t page) {
  if (writable_ && txn_ != nullptr) {
    Result<BufferManager::PageData> dirty =
        txn_mgr_->buffer().GetDirty(txn_->id, object_id_, page);
    if (dirty.ok()) return dirty;
  }
  CLOUDIQ_ASSIGN_OR_RETURN(PhysicalLoc loc, blockmap_.Lookup(page));
  if (!loc.valid()) {
    return Status::Corruption("page has neither dirty copy nor location");
  }
  StorageSubsystem* storage = &txn_mgr_->storage();
  DbSpace* space = space_;
  return txn_mgr_->buffer().Get(space_->id, loc, [storage, space, loc]() {
    return storage->ReadPage(space, loc);
  });
}

Status StorageObject::Prefetch(const std::vector<uint64_t>& pages) {
  std::vector<IoScheduler::Op> ops;
  std::vector<std::shared_ptr<StorageSubsystem::ReadSlot>> slots;
  std::vector<PhysicalLoc> locs;
  for (uint64_t page : pages) {
    if (writable_ && txn_ != nullptr &&
        txn_mgr_->buffer().GetDirty(txn_->id, object_id_, page).ok()) {
      continue;
    }
    CLOUDIQ_ASSIGN_OR_RETURN(PhysicalLoc loc, blockmap_.Lookup(page));
    if (!loc.valid() || txn_mgr_->buffer().Cached(space_->id, loc)) continue;
    auto slot = std::make_shared<StorageSubsystem::ReadSlot>();
    ops.push_back(txn_mgr_->storage().MakeReadOp(space_, loc, slot));
    slots.push_back(std::move(slot));
    locs.push_back(loc);
  }
  if (ops.empty()) return Status::Ok();
  NodeContext* node = txn_mgr_->storage().node();
  node->io().RunParallel(ops, node->IoWidth());
  Status first_error;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i]->status.ok()) {
      if (first_error.ok()) first_error = slots[i]->status;
      continue;
    }
    txn_mgr_->buffer().Insert(space_->id, locs[i],
                              std::move(slots[i]->payload));
  }
  return first_error;
}

Status StorageObject::PrefetchAll() {
  std::vector<uint64_t> pages(blockmap_.page_count());
  for (uint64_t i = 0; i < pages.size(); ++i) pages[i] = i;
  return Prefetch(pages);
}

// ---------------------------------------------------------------------------
// TransactionManager
// ---------------------------------------------------------------------------

TransactionManager::TransactionManager(StorageSubsystem* storage,
                                       SystemStore* system, Options options)
    : storage_(storage),
      system_(system),
      options_(options),
      log_(system, options.name_prefix + kTxnLogName) {
  BufferManager::Options buffer_options;
  buffer_options.capacity_bytes = options_.buffer_capacity_bytes;
  buffer_ = std::make_unique<BufferManager>(
      buffer_options,
      [this](uint64_t txn_id, std::vector<BufferManager::DirtyPage>&& pages,
             bool for_commit) {
        return FlushBatch(txn_id, std::move(pages), for_commit);
      });
  NodeContext* node = storage_->node();
  buffer_->set_telemetry(&node->telemetry(), &node->clock(),
                         node->trace_pid());
  commit_latency_ = &node->telemetry().stats().histogram("txn.commit");
  rollback_latency_ = &node->telemetry().stats().histogram("txn.rollback");
}

Transaction* TransactionManager::Begin() {
  auto txn = std::make_unique<Transaction>();
  Transaction* ptr = txn.get();
  MutexLock lock(&mu_);
  txn->id = (uint64_t{options_.node_id} << 40) | next_txn_local_++;
  txn->node = options_.node_id;
  txn->begin_seq = commit_seq_;
  txn->snapshot = catalog_;
  active_[txn->id] = std::move(txn);
  return ptr;
}

Transaction* TransactionManager::FindTxn(uint64_t txn_id) {
  auto it = active_.find(txn_id);
  return it == active_.end() ? nullptr : it->second.get();
}

Result<StorageObject*> TransactionManager::CreateObject(Transaction* txn,
                                                        uint64_t object_id,
                                                        DbSpace* space) {
  if (options_.read_only) {
    return Status::FailedPrecondition("reader nodes cannot modify data");
  }
  if (txn->snapshot.Contains(object_id) ||
      txn->write_objects.count(object_id) > 0) {
    return Status::AlreadyExists("object " + std::to_string(object_id));
  }
  auto object = std::make_unique<StorageObject>(
      this, txn, object_id, space,
      Blockmap(storage_, space, options_.blockmap_fanout, buffer_.get()),
      /*writable=*/true);
  StorageObject* ptr = object.get();
  txn->write_objects[object_id] = std::move(object);
  return ptr;
}

Result<StorageObject*> TransactionManager::OpenForWrite(Transaction* txn,
                                                        uint64_t object_id) {
  if (options_.read_only) {
    return Status::FailedPrecondition("reader nodes cannot modify data");
  }
  auto it = txn->write_objects.find(object_id);
  if (it != txn->write_objects.end()) return it->second.get();
  CLOUDIQ_ASSIGN_OR_RETURN(IdentityObject identity,
                           txn->snapshot.Get(object_id));
  DbSpace* space = storage_->dbspace(identity.dbspace_id);
  if (space == nullptr) return Status::Corruption("dbspace missing");
  auto object = std::make_unique<StorageObject>(
      this, txn, object_id, space,
      Blockmap::Open(storage_, space, options_.blockmap_fanout,
                     identity.root, identity.page_count, buffer_.get()),
      /*writable=*/true);
  StorageObject* ptr = object.get();
  txn->write_objects[object_id] = std::move(object);
  return ptr;
}

Result<std::unique_ptr<StorageObject>> TransactionManager::OpenForRead(
    Transaction* txn, uint64_t object_id) {
  // Read-your-writes: if this transaction already has a working copy, the
  // caller should use OpenForWrite; snapshot reads see the catalog as of
  // Begin().
  CLOUDIQ_ASSIGN_OR_RETURN(IdentityObject identity,
                           txn->snapshot.Get(object_id));
  DbSpace* space = storage_->dbspace(identity.dbspace_id);
  if (space == nullptr) return Status::Corruption("dbspace missing");
  return std::make_unique<StorageObject>(
      this, txn, object_id, space,
      Blockmap::Open(storage_, space, options_.blockmap_fanout,
                     identity.root, identity.page_count, buffer_.get()),
      /*writable=*/false);
}

Status TransactionManager::DropObject(Transaction* txn, uint64_t object_id) {
  if (options_.read_only) {
    return Status::FailedPrecondition("reader nodes cannot modify data");
  }
  CLOUDIQ_ASSIGN_OR_RETURN(IdentityObject identity,
                           txn->snapshot.Get(object_id));
  DbSpace* space = storage_->dbspace(identity.dbspace_id);
  if (space == nullptr) return Status::Corruption("dbspace missing");
  Blockmap map =
      Blockmap::Open(storage_, space, options_.blockmap_fanout,
                     identity.root, identity.page_count, buffer_.get());
  std::vector<PhysicalLoc> nodes;
  std::vector<PhysicalLoc> pages;
  CLOUDIQ_RETURN_IF_ERROR(map.CollectReachable(&nodes, &pages));
  for (PhysicalLoc loc : nodes) txn->rf.Add(space->id, loc);
  for (PhysicalLoc loc : pages) txn->rf.Add(space->id, loc);
  txn->dropped_objects.push_back(object_id);
  txn->write_objects.erase(object_id);
  return Status::Ok();
}

Status TransactionManager::FlushBatch(
    uint64_t txn_id, std::vector<BufferManager::DirtyPage>&& pages,
    bool for_commit) {
  Transaction* txn;
  {
    MutexLock lock(&mu_);
    txn = FindTxn(txn_id);
  }
  if (txn == nullptr) return Status::FailedPrecondition("unknown txn");
  CloudCache::WriteMode mode = for_commit
                                   ? CloudCache::WriteMode::kWriteThrough
                                   : CloudCache::WriteMode::kWriteBack;

  struct Pending {
    StorageObject* object;
    uint64_t page;
    StorageSubsystem::PreparedWrite prepared;
  };
  std::vector<Pending> pending;
  std::vector<IoScheduler::Op> ops;
  pending.reserve(pages.size());
  for (BufferManager::DirtyPage& page : pages) {
    auto obj_it = txn->write_objects.find(page.object_id);
    if (obj_it == txn->write_objects.end()) {
      return Status::Corruption("dirty page for unopened object");
    }
    StorageObject* object = obj_it->second.get();
    CLOUDIQ_ASSIGN_OR_RETURN(
        StorageSubsystem::PreparedWrite prepared,
        storage_->PrepareWrite(object->space(), page.payload, mode,
                               txn_id));
    ops.push_back(prepared.op);
    pending.push_back(Pending{object, page.page, std::move(prepared)});
  }

  // The flush itself is where cloud storage shines: every prepared write
  // is independent, so they run with the node's full I/O width.
  NodeContext* node = storage_->node();
  node->io().RunParallel(ops, node->IoWidth());

  for (Pending& p : pending) {
    if (!p.prepared.status->ok()) return *p.prepared.status;
    CLOUDIQ_ASSIGN_OR_RETURN(
        PhysicalLoc old_loc,
        p.object->blockmap().Update(p.page, p.prepared.loc));
    if (old_loc.valid()) {
      // The superseded version is deleted when no snapshot references it.
      txn->rf.Add(p.object->space()->id, old_loc);
      buffer_->Invalidate(p.object->space()->id, old_loc);
    }
    txn->rb.Add(p.object->space()->id, p.prepared.loc);
  }
  return Status::Ok();
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn->state != Transaction::State::kActive) {
    return Status::FailedPrecondition("transaction not active");
  }

  // Read-only fast path: a transaction that allocated nothing, dropped
  // nothing and dirtied nothing has no durable footprint — no RF/RB
  // bitmaps, no commit record, no catalog update. It merely stops
  // pinning its snapshot.
  bool wrote_something = !txn->rf.empty() || !txn->rb.empty() ||
                         !txn->dropped_objects.empty();
  for (const auto& [object_id, object] : txn->write_objects) {
    if (object->blockmap().dirty()) wrote_something = true;
  }
  if (!wrote_something && !buffer_->HasDirty(txn->id)) {
    txn->state = Transaction::State::kCommitted;
    {
      MutexLock lock(&mu_);
      ++stats_.commits;
      active_.erase(txn->id);
    }
    return RunGarbageCollection();
  }

  NodeContext* node = storage_->node();
  SimClock& clock = node->clock();
  SimTime done = clock.now();
  LatencyScope commit_latency{commit_latency_, &clock, clock.now()};
  Tracer& tracer = node->telemetry().tracer();
  ScopedSpan commit_span(&tracer, &clock, node->trace_pid(), kTrackTxn,
                         "txn",
                         tracer.enabled()
                             ? "commit txn " + std::to_string(txn->id)
                             : std::string());

  // (1) FlushForCommit: the OCM promotes this transaction's queued
  // background uploads and switches it to write-through (§4).
  CLOUDIQ_RETURN_IF_ERROR(storage_->FlushForCommit(txn->id));

  // (2) Flush remaining dirty pages, write-through. Durability before the
  // commit record: the log stores metadata only (§3.1).
  CLOUDIQ_RETURN_IF_ERROR(buffer_->FlushTxn(txn->id));

  // (3) Version the blockmap trees bottom-up (H' -> D' -> A', Figure 2)
  // and stage the identity-object updates. Node writes across all of the
  // transaction's objects are independent once their locations are
  // assigned, so they are prepared first and executed in one parallel
  // batch.
  std::vector<std::vector<uint8_t>> identity_updates;
  std::vector<IoScheduler::Op> node_ops;
  std::vector<std::shared_ptr<Status>> node_statuses;
  for (auto& [object_id, object] : txn->write_objects) {
    if (object->blockmap().dirty()) {
      CLOUDIQ_ASSIGN_OR_RETURN(
          Blockmap::FlushEffects effects,
          object->blockmap().PrepareFlush(
              CloudCache::WriteMode::kWriteThrough, txn->id));
      for (PhysicalLoc loc : effects.freed) {
        txn->rf.Add(object->space()->id, loc);
        buffer_->Invalidate(object->space()->id, loc);
      }
      for (PhysicalLoc loc : effects.allocated) {
        txn->rb.Add(object->space()->id, loc);
      }
      for (auto& op : effects.ops) node_ops.push_back(std::move(op));
      for (auto& status : effects.statuses) {
        node_statuses.push_back(status);
      }
    }
  }
  storage_->node()->io().RunParallel(node_ops,
                                     storage_->node()->IoWidth());
  for (const auto& status : node_statuses) {
    if (!status->ok()) return *status;
  }
  uint64_t next_commit_seq;
  {
    MutexLock lock(&mu_);
    next_commit_seq = commit_seq_ + 1;
  }
  for (auto& [object_id, object] : txn->write_objects) {
    IdentityObject identity;
    identity.object_id = object_id;
    identity.dbspace_id = object->space()->id;
    identity.root = object->blockmap().root_loc();
    identity.page_count = object->blockmap().page_count();
    identity.version = next_commit_seq;
    identity_updates.push_back(identity.Serialize());
  }

  // (4) Persist the RF/RB page sets; their identities go into the commit
  // record.
  CLOUDIQ_RETURN_IF_ERROR(system_->Put(RfName(options_.name_prefix, txn->id),
                                       txn->rf.Serialize(), clock.now(),
                                       &done));
  clock.AdvanceTo(done);
  CLOUDIQ_RETURN_IF_ERROR(system_->Put(RbName(options_.name_prefix, txn->id),
                                       txn->rb.Serialize(), clock.now(),
                                       &done));
  clock.AdvanceTo(done);

  // (5) Write the commit record.
  {
    MutexLock lock(&mu_);
    txn->commit_seq = ++commit_seq_;
  }
  TxnLogRecord rec;
  rec.type = TxnLogRecord::Type::kCommit;
  rec.node = txn->node;
  rec.txn_id = txn->id;
  rec.commit_seq = txn->commit_seq;
  rec.rf_name = RfName(options_.name_prefix, txn->id);
  rec.rb_name = RbName(options_.name_prefix, txn->id);
  rec.identity_updates = identity_updates;
  rec.dropped_objects = txn->dropped_objects;
  CLOUDIQ_RETURN_IF_ERROR(log_.Append(rec, clock.now(), &done));
  clock.AdvanceTo(done);

  // (6) Publish the new table versions (identity objects live on the
  // system dbspace and are updated in place). The durable image is
  // persisted from a snapshot so mu_ is not held across the system I/O.
  IdentityCatalog catalog_snapshot;
  {
    MutexLock lock(&mu_);
    for (const auto& update : rec.identity_updates) {
      catalog_.Put(IdentityObject::Deserialize(update));
    }
    for (uint64_t dropped : rec.dropped_objects) catalog_.Remove(dropped);
    catalog_snapshot = catalog_;
  }
  CLOUDIQ_RETURN_IF_ERROR(
      catalog_snapshot.Persist(system_, kCatalogName, clock.now(), &done));
  clock.AdvanceTo(done);

  // (7) Tell the coordinator which keys left this node's active set.
  if (commit_listener_ && !txn->rb.cloud_keys().empty()) {
    commit_listener_(txn->node, txn->rb.cloud_keys());
  }

  // (8) Hand garbage collection to the committed-transaction chain.
  {
    MutexLock lock(&mu_);
    chain_.push_back(CommittedTxn{txn->id, txn->commit_seq, txn->rf,
                                  RfName(options_.name_prefix, txn->id),
                                  RbName(options_.name_prefix, txn->id)});
  }
  CLOUDIQ_RETURN_IF_ERROR(PersistChain());

  txn->state = Transaction::State::kCommitted;
  {
    MutexLock lock(&mu_);
    ++stats_.commits;
    active_.erase(txn->id);
  }
  return RunGarbageCollection();
}

Status TransactionManager::Rollback(Transaction* txn) {
  if (txn->state != Transaction::State::kActive) {
    return Status::FailedPrecondition("transaction not active");
  }
  NodeContext* node = storage_->node();
  SimClock& clock = node->clock();
  LatencyScope rollback_latency{rollback_latency_, &clock, clock.now()};
  Tracer& tracer = node->telemetry().tracer();
  ScopedSpan rollback_span(&tracer, &clock, node->trace_pid(), kTrackTxn,
                           "txn",
                           tracer.enabled()
                               ? "rollback txn " + std::to_string(txn->id)
                               : std::string());
  if (storage_->cloud_cache() != nullptr) {
    storage_->cloud_cache()->AbortTxn(txn->id);
  }
  buffer_->DropTxn(txn->id);

  // Pages in the RB set can be deleted immediately (§3.3). Deletes are
  // idempotent, so keys whose uploads never happened are fine; and the
  // coordinator is deliberately NOT notified — if this node later
  // crashes, the same ranges are simply re-polled.
  for (const auto& [dbspace_id, loc] : txn->rb.block_locs()) {
    DbSpace* space = storage_->dbspace(dbspace_id);
    if (space != nullptr) {
      buffer_->Invalidate(dbspace_id, loc);
      CLOUDIQ_RETURN_IF_ERROR(
          storage_->DeletePage(space, loc, /*defer_allowed=*/false));
    }
  }
  DbSpace* any_cloud = nullptr;
  for (DbSpace* space : storage_->AllDbSpaces()) {
    if (space->is_cloud()) any_cloud = space;
  }
  for (uint64_t key : txn->rb.cloud_keys().Values()) {
    CLOUDIQ_RETURN_IF_ERROR(storage_->DeletePage(
        any_cloud, PhysicalLoc::ForCloudKey(key), /*defer_allowed=*/false));
  }

  txn->state = Transaction::State::kRolledBack;
  {
    MutexLock lock(&mu_);
    ++stats_.rollbacks;
    active_.erase(txn->id);
  }
  return Status::Ok();
}

void TransactionManager::SimulateCrash() {
  {
    MutexLock lock(&mu_);
    active_.clear();
    chain_.clear();
    catalog_ = IdentityCatalog();
    commit_seq_ = 0;
  }
  log_.clear_memory();
  BufferManager::Options buffer_options;
  buffer_options.capacity_bytes = options_.buffer_capacity_bytes;
  buffer_ = std::make_unique<BufferManager>(
      buffer_options,
      [this](uint64_t txn_id, std::vector<BufferManager::DirtyPage>&& pages,
             bool for_commit) {
        return FlushBatch(txn_id, std::move(pages), for_commit);
      });
  NodeContext* node = storage_->node();
  buffer_->set_telemetry(&node->telemetry(), &node->clock(),
                         node->trace_pid());
}

uint64_t TransactionManager::OldestActiveBeginSeq() const {
  uint64_t oldest = ~uint64_t{0};
  for (const auto& [id, txn] : active_) {
    oldest = std::min(oldest, txn->begin_seq);
  }
  return oldest;
}

Status TransactionManager::DeleteLoc(uint32_t dbspace_id, PhysicalLoc loc) {
  DbSpace* space = storage_->dbspace(dbspace_id);
  if (space == nullptr && !loc.is_cloud()) {
    return Status::Corruption("dbspace missing for GC");
  }
  if (space == nullptr) {
    for (DbSpace* s : storage_->AllDbSpaces()) {
      if (s->is_cloud()) space = s;
    }
  }
  buffer_->Invalidate(dbspace_id, loc);
  {
    MutexLock lock(&mu_);
    ++stats_.gc_pages_deleted;
  }
  return storage_->DeletePage(space, loc);
}

Status TransactionManager::RunGarbageCollection() {
  SimClock& clock = storage_->node()->clock();
  bool changed = false;
  {
    MutexLock lock(&mu_);
    ++stats_.gc_runs;
  }
  for (;;) {
    // Copy the chain head out under the lock; the deletions below are
    // storage I/O and run unlocked. The entry is popped only after they
    // all succeed, so an error leaves it for the next GC run — same
    // recovery behaviour as before the lock was introduced.
    CommittedTxn oldest;
    {
      MutexLock lock(&mu_);
      if (chain_.empty() ||
          chain_.front().commit_seq > OldestActiveBeginSeq()) {
        break;
      }
      oldest = chain_.front();
    }
    for (const auto& [dbspace_id, loc] : oldest.rf.block_locs()) {
      CLOUDIQ_RETURN_IF_ERROR(DeleteLoc(dbspace_id, loc));
    }
    for (uint64_t key : oldest.rf.cloud_keys().Values()) {
      CLOUDIQ_RETURN_IF_ERROR(DeleteLoc(0, PhysicalLoc::ForCloudKey(key)));
    }
    SimTime done = clock.now();
    CLOUDIQ_RETURN_IF_ERROR(system_->Delete(oldest.rf_name, clock.now(),
                                            &done));
    clock.AdvanceTo(done);
    CLOUDIQ_RETURN_IF_ERROR(system_->Delete(oldest.rb_name, clock.now(),
                                            &done));
    clock.AdvanceTo(done);
    {
      MutexLock lock(&mu_);
      chain_.pop_front();
    }
    changed = true;
  }
  if (changed) CLOUDIQ_RETURN_IF_ERROR(PersistChain());
  return Status::Ok();
}

Status TransactionManager::PersistChain() {
  std::vector<uint8_t> bytes;
  {
    MutexLock lock(&mu_);
    PutU64(bytes, chain_.size());
    for (const CommittedTxn& entry : chain_) {
      PutU64(bytes, entry.txn_id);
      PutU64(bytes, entry.commit_seq);
      PutString(bytes, entry.rf_name);
      PutString(bytes, entry.rb_name);
      std::vector<uint8_t> rf = entry.rf.Serialize();
      PutU64(bytes, rf.size());
      PutBytes(bytes, rf.data(), rf.size());
    }
  }
  SimClock& clock = storage_->node()->clock();
  SimTime done = clock.now();
  Status st = system_->Put(options_.name_prefix + kChainName, bytes, clock.now(), &done);
  clock.AdvanceTo(done);
  return st;
}

Status TransactionManager::Checkpoint() {
  SimClock& clock = storage_->node()->clock();
  SimTime done = clock.now();
  IdentityCatalog catalog_snapshot;
  uint64_t checkpoint_seq;
  {
    MutexLock lock(&mu_);
    catalog_snapshot = catalog_;
    checkpoint_seq = commit_seq_;
  }
  CLOUDIQ_RETURN_IF_ERROR(
      catalog_snapshot.Persist(system_, kCatalogName, clock.now(), &done));
  clock.AdvanceTo(done);
  for (DbSpace* space : storage_->AllDbSpaces()) {
    if (space->is_cloud()) continue;  // no freelist on cloud dbspaces
    CLOUDIQ_RETURN_IF_ERROR(
        system_->Put(options_.name_prefix + "freelist/" + std::to_string(space->id),
                     space->freelist.Serialize(), clock.now(), &done));
    clock.AdvanceTo(done);
  }
  CLOUDIQ_RETURN_IF_ERROR(PersistChain());
  TxnLogRecord marker;
  marker.type = TxnLogRecord::Type::kCheckpoint;
  marker.commit_seq = checkpoint_seq;
  CLOUDIQ_RETURN_IF_ERROR(log_.Append(marker, clock.now(), &done));
  clock.AdvanceTo(done);
  CLOUDIQ_RETURN_IF_ERROR(log_.TruncateAtCheckpoint(clock.now(), &done));
  clock.AdvanceTo(done);
  return Status::Ok();
}

Status TransactionManager::RecoverAfterCrash() {
  // Recovery holds mu_ across the whole rebuild, including its system-store
  // reads: the node serves no traffic until it returns and nothing below
  // the transaction layer calls back into it on this path.
  MutexLock lock(&mu_);
  SimClock& clock = storage_->node()->clock();
  SimTime done = clock.now();
  CLOUDIQ_RETURN_IF_ERROR(system_->Open(clock.now(), &done));
  clock.AdvanceTo(done);

  // Checkpointed state.
  Result<IdentityCatalog> catalog =
      IdentityCatalog::Load(system_, kCatalogName, clock.now(), &done);
  clock.AdvanceTo(done);
  catalog_ = catalog.ok() ? std::move(catalog).value() : IdentityCatalog();

  for (DbSpace* space : storage_->AllDbSpaces()) {
    if (space->is_cloud()) continue;
    Result<std::vector<uint8_t>> bytes = system_->Get(
        options_.name_prefix + "freelist/" + std::to_string(space->id), clock.now(), &done);
    clock.AdvanceTo(done);
    if (bytes.ok()) {
      space->freelist = Freelist::Deserialize(bytes.value());
    }
  }

  chain_.clear();
  Result<std::vector<uint8_t>> chain_bytes =
      system_->Get(options_.name_prefix + kChainName, clock.now(), &done);
  clock.AdvanceTo(done);
  if (chain_bytes.ok()) {
    ByteReader reader(chain_bytes.value());
    uint64_t n = reader.GetU64();
    for (uint64_t i = 0; i < n; ++i) {
      CommittedTxn entry;
      entry.txn_id = reader.GetU64();
      entry.commit_seq = reader.GetU64();
      entry.rf_name = reader.GetString();
      entry.rb_name = reader.GetString();
      uint64_t rf_len = reader.GetU64();
      entry.rf = PageSet::Deserialize(reader.GetBytes(rf_len));
      chain_.push_back(std::move(entry));
    }
  }

  // Replay the transaction log from the checkpoint: commits re-apply
  // catalog updates, bring the freelist forward (RB blocks marked in-use)
  // and restore commit sequencing. RF deletions are applied only for
  // transactions already garbage collected before the crash (absent from
  // the recovered chain) — those in the chain keep their pages until GC
  // runs again.
  CLOUDIQ_RETURN_IF_ERROR(log_.Load(clock.now(), &done));
  clock.AdvanceTo(done);
  for (const TxnLogRecord& rec : log_.records()) {
    if (rec.type != TxnLogRecord::Type::kCommit) continue;
    commit_seq_ = std::max(commit_seq_, rec.commit_seq);
    for (const auto& update : rec.identity_updates) {
      catalog_.Put(IdentityObject::Deserialize(update));
    }
    for (uint64_t dropped : rec.dropped_objects) catalog_.Remove(dropped);

    Result<std::vector<uint8_t>> rb_bytes =
        system_->Get(rec.rb_name, clock.now(), &done);
    clock.AdvanceTo(done);
    if (rb_bytes.ok()) {
      PageSet rb = PageSet::Deserialize(rb_bytes.value());
      for (const auto& [dbspace_id, loc] : rb.block_locs()) {
        DbSpace* space = storage_->dbspace(dbspace_id);
        if (space != nullptr) {
          space->freelist.MarkUsed(loc.first_block(), loc.block_count());
        }
      }
    }
    bool in_chain = false;
    for (const CommittedTxn& entry : chain_) {
      if (entry.txn_id == rec.txn_id) in_chain = true;
    }
    if (!in_chain) {
      Result<std::vector<uint8_t>> rf_bytes =
          system_->Get(rec.rf_name, clock.now(), &done);
      clock.AdvanceTo(done);
      if (rf_bytes.ok()) {
        PageSet rf = PageSet::Deserialize(rf_bytes.value());
        for (const auto& [dbspace_id, loc] : rf.block_locs()) {
          DbSpace* space = storage_->dbspace(dbspace_id);
          if (space != nullptr) {
            space->freelist.FreeRun(loc.first_block(), loc.block_count());
          }
        }
      }
    }
  }
  next_txn_local_ = std::max<uint64_t>(next_txn_local_, 1) + 100000;
  return Status::Ok();
}

}  // namespace cloudiq
