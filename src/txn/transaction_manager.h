#ifndef CLOUDIQ_TXN_TRANSACTION_MANAGER_H_
#define CLOUDIQ_TXN_TRANSACTION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "blockmap/blockmap.h"
#include "blockmap/identity.h"
#include "buffer/buffer_manager.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "keygen/object_key_generator.h"
#include "store/storage.h"
#include "store/system_store.h"
#include "txn/page_set.h"
#include "txn/txn_log.h"

namespace cloudiq {

class TransactionManager;
class StorageObject;

// A transaction: MVCC with table-level versioning and snapshot isolation
// (§2). Readers see the identity catalog as of Begin(); writers build
// copy-on-write blockmap working copies that become visible atomically at
// Commit().
struct Transaction {
  enum class State { kActive, kCommitted, kRolledBack };

  uint64_t id = 0;
  NodeId node = 0;
  State state = State::kActive;
  uint64_t begin_seq = 0;
  uint64_t commit_seq = 0;

  // RF: pages this transaction marked for deletion (superseded versions).
  // RB: pages this transaction allocated.
  PageSet rf;
  PageSet rb;

  // Snapshot of the identity catalog at Begin().
  IdentityCatalog snapshot;

  // Working copies of objects opened for write, by object id.
  std::map<uint64_t, std::unique_ptr<StorageObject>> write_objects;
  std::vector<uint64_t> dropped_objects;
};

// A storage object under a transaction: one table / column segment / index
// whose pages are mapped by a blockmap. Writable instances hold the
// transaction's COW working copy; read instances wrap the snapshot's
// committed tree.
class StorageObject {
 public:
  StorageObject(TransactionManager* txn_mgr, Transaction* txn,
                uint64_t object_id, DbSpace* space, Blockmap blockmap,
                bool writable);

  uint64_t object_id() const { return object_id_; }
  DbSpace* space() { return space_; }
  Blockmap& blockmap() { return blockmap_; }
  uint64_t page_count() const { return blockmap_.page_count(); }
  bool writable() const { return writable_; }

  // Appends a new logical page with `payload` (goes to the dirty list;
  // physical location assigned at flush). Returns the logical page number.
  Result<uint64_t> AppendPage(std::vector<uint8_t> payload);

  // Replaces the contents of an existing logical page.
  Status WritePage(uint64_t page, std::vector<uint8_t> payload);

  // Reads a logical page: the transaction's dirty copy if any, else the
  // buffer cache, else storage (through the OCM for cloud dbspaces).
  Result<BufferManager::PageData> ReadPage(uint64_t page);

  // Parallel read-ahead of the given logical pages into the buffer cache.
  Status Prefetch(const std::vector<uint64_t>& pages);
  Status PrefetchAll();

 private:
  friend class TransactionManager;

  TransactionManager* txn_mgr_;
  Transaction* txn_;  // nullptr for read-only snapshot objects
  uint64_t object_id_;
  DbSpace* space_;
  Blockmap blockmap_;
  bool writable_;
};

// The transaction manager (§2, §3.3): transaction lifecycle, the committed-
// transaction chain with RF/RB-driven garbage collection, checkpoints and
// crash recovery. Owns the node's buffer manager (its flush callback needs
// the per-transaction RF/RB bookkeeping).
//
// Locking: mu_ guards only the manager's own leaf state (the active map,
// the committed chain, sequence counters, the catalog and stats). It is
// never held across buffer_/storage_/system_/log_ calls or the commit
// listener — the buffer manager's flush callback re-enters this class
// (FlushBatch), so any lock held across a flush would self-deadlock.
// The contents of a Transaction (write_objects, rf/rb, snapshot) belong to
// the fiber that began it and are not guarded; active_ only guards the
// id -> Transaction map itself. A Transaction* stays valid outside the
// lock because only the owning fiber's Commit/Rollback erases it.
class TransactionManager {
 public:
  struct Options {
    NodeId node_id = 0;
    uint32_t blockmap_fanout = 64;
    uint64_t buffer_capacity_bytes = 64 << 20;
    // Prefix for node-local durable structures (transaction log, commit
    // chain, RF/RB blobs, freelists) when the system dbspace is shared by
    // a multiplex. The catalog and table metadata stay unprefixed —
    // they are the cluster-shared state readers attach to.
    std::string name_prefix;
    // Reader nodes of a multiplex cannot perform modifications (§2):
    // object creation, writes and drops are rejected.
    bool read_only = false;
  };

  TransactionManager(StorageSubsystem* storage, SystemStore* system,
                     Options options);

  // Called at every commit with the cloud keys the transaction consumed,
  // so the coordinator can update its active sets (§3.2). Wired to the
  // local ObjectKeyGenerator in single-node setups and to the coordinator
  // RPC in a multiplex.
  using CommitListener =
      std::function<void(NodeId node, const IntervalSet& keys)>;
  void set_commit_listener(CommitListener listener) {
    commit_listener_ = std::move(listener);
  }

  // --- transaction lifecycle ---------------------------------------------
  Transaction* Begin() EXCLUDES(mu_);
  Status Commit(Transaction* txn) EXCLUDES(mu_);
  // Rollback deletes the transaction's RB pages immediately and, per the
  // paper's optimization, does NOT notify the coordinator.
  Status Rollback(Transaction* txn) EXCLUDES(mu_);

  // Simulates this node dying with `txn` in flight: all volatile state is
  // dropped without deleting any storage. Cleanup must then happen through
  // the crash-recovery path (keygen active-set polling). Test-only.
  void SimulateCrash() EXCLUDES(mu_);

  // --- storage objects ------------------------------------------------------
  // Creates a new (empty) object on `space` owned by `txn`.
  Result<StorageObject*> CreateObject(Transaction* txn, uint64_t object_id,
                                      DbSpace* space);
  // Opens an existing object for write (COW working copy from the
  // snapshot).
  Result<StorageObject*> OpenForWrite(Transaction* txn, uint64_t object_id);
  // Opens a read-only view from the transaction's snapshot.
  Result<std::unique_ptr<StorageObject>> OpenForRead(Transaction* txn,
                                                     uint64_t object_id);
  // Drops the object: every reachable page joins the RF set at commit.
  Status DropObject(Transaction* txn, uint64_t object_id);

  // --- garbage collection ---------------------------------------------------
  // Deletes the pages of committed transactions that are no longer
  // referenced by any active transaction; prunes the chain.
  Status RunGarbageCollection() EXCLUDES(mu_);
  size_t committed_chain_length() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return chain_.size();
  }

  // --- durability -----------------------------------------------------------
  // Persists catalog + freelists + a checkpoint marker; truncates the log.
  Status Checkpoint() EXCLUDES(mu_);
  // Rebuilds state from the system store after a crash: checkpointed
  // catalog/freelists, then log replay (commits re-applied, chain and
  // freelist brought forward).
  Status RecoverAfterCrash() EXCLUDES(mu_);

  // Snapshot of the committed catalog (MVCC makes catalog copies the cheap,
  // idiomatic unit — every Begin() takes one anyway).
  IdentityCatalog catalog() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return catalog_;
  }
  BufferManager& buffer() { return *buffer_; }
  StorageSubsystem& storage() { return *storage_; }
  TxnLog& log() { return log_; }
  uint64_t commit_seq() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return commit_seq_;
  }
  NodeId node_id() const { return options_.node_id; }

  struct Stats {
    uint64_t commits = 0;
    uint64_t rollbacks = 0;
    uint64_t gc_pages_deleted = 0;
    uint64_t gc_runs = 0;
  };
  Stats stats() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  friend class StorageObject;

  struct CommittedTxn {
    uint64_t txn_id;
    uint64_t commit_seq;
    PageSet rf;
    std::string rf_name;
    std::string rb_name;
  };

  // BufferManager flush callback: writes dirty pages, updates blockmaps,
  // records RF/RB. Re-entered while Commit/PutDirty run with mu_ released.
  Status FlushBatch(uint64_t txn_id, std::vector<BufferManager::DirtyPage>&&
                                          pages,
                    bool for_commit) EXCLUDES(mu_);

  Status DeleteLoc(uint32_t dbspace_id, PhysicalLoc loc) EXCLUDES(mu_);
  Status PersistChain() EXCLUDES(mu_);
  uint64_t OldestActiveBeginSeq() const REQUIRES(mu_);
  Transaction* FindTxn(uint64_t txn_id) REQUIRES(mu_);

  // Wiring set at construction and never re-pointed while serving traffic
  // (buffer_ is also rebuilt by the test-only SimulateCrash), so none of
  // it is guarded by mu_. log_ and buffer_ serialize their own state.
  StorageSubsystem* storage_;
  SystemStore* system_;
  Options options_;
  std::unique_ptr<BufferManager> buffer_;
  TxnLog log_;
  CommitListener commit_listener_;

  mutable Mutex mu_{lockrank::kTransactionManager};
  IdentityCatalog catalog_ GUARDED_BY(mu_);
  std::map<uint64_t, std::unique_ptr<Transaction>> active_ GUARDED_BY(mu_);
  std::list<CommittedTxn> chain_ GUARDED_BY(mu_);
  uint64_t next_txn_local_ GUARDED_BY(mu_) = 1;
  uint64_t commit_seq_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);
  Histogram* commit_latency_ = nullptr;    // "txn.commit"
  Histogram* rollback_latency_ = nullptr;  // "txn.rollback"
};

}  // namespace cloudiq

#endif  // CLOUDIQ_TXN_TRANSACTION_MANAGER_H_
