#ifndef CLOUDIQ_TXN_TXN_LOG_H_
#define CLOUDIQ_TXN_TXN_LOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/status.h"
#include "keygen/object_key_generator.h"
#include "store/system_store.h"
#include "txn/page_set.h"

namespace cloudiq {

// One record in the transaction log. The log stores *metadata only* — in an
// OLAP engine the data volume is far too large to log, which is exactly why
// dirty pages must be flushed to permanent storage before commit (§3.1).
struct TxnLogRecord {
  enum class Type {
    kKeygenAllocate,  // key range handed to a node (§3.2 bookkeeping)
    kKeygenCommit,    // committed keys leaving a node's active set
    kCommit,          // transaction commit: RF/RB identities + catalog edits
    kCheckpoint,      // checkpoint marker (log before this can be dropped)
  };

  Type type = Type::kCommit;

  // kKeygenAllocate / kKeygenCommit
  NodeId node = 0;
  uint64_t range_begin = 0;
  uint64_t range_end = 0;
  IntervalSet committed_keys;

  // kCommit
  uint64_t txn_id = 0;
  uint64_t commit_seq = 0;
  // Names of the persisted RF/RB blobs in the system store ("the
  // identities of the bitmaps are recorded in the transaction log").
  std::string rf_name;
  std::string rb_name;
  // Identity-object updates produced by the commit: object id -> encoded
  // IdentityObject.
  std::vector<std::vector<uint8_t>> identity_updates;
  // Objects dropped by this transaction.
  std::vector<uint64_t> dropped_objects;

  std::vector<uint8_t> Serialize() const;
  static TxnLogRecord Deserialize(ByteReader& reader);
};

// The durable transaction log, persisted through the system store.
// Appends rewrite the tail blob; a checkpoint truncates the log. (The
// simulated volume makes the rewrite cost explicit but small — commit
// records are metadata-sized.)
class TxnLog {
 public:
  TxnLog(SystemStore* store, std::string name)
      : store_(store), name_(std::move(name)) {}

  Status Append(const TxnLogRecord& record, SimTime now,
                SimTime* completion);

  // Drops every record up to and including the latest checkpoint marker
  // and persists the truncated log.
  Status TruncateAtCheckpoint(SimTime now, SimTime* completion);

  // Loads the log from the system store (crash recovery).
  Status Load(SimTime now, SimTime* completion);

  const std::vector<TxnLogRecord>& records() const { return records_; }
  void clear_memory() { records_.clear(); }

 private:
  Status Persist(SimTime now, SimTime* completion);

  SystemStore* store_;
  std::string name_;
  std::vector<TxnLogRecord> records_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_TXN_TXN_LOG_H_
