#include "txn/page_set.h"

#include "common/coding.h"

namespace cloudiq {

void PageSet::Add(uint32_t dbspace_id, PhysicalLoc loc) {
  if (!loc.valid()) return;
  if (loc.is_cloud()) {
    cloud_keys_.Insert(loc.cloud_key());
  } else {
    block_locs_.emplace_back(dbspace_id, loc);
  }
}

Bitmap PageSet::BlockBitmap(uint32_t dbspace_id) const {
  Bitmap bm;
  for (const auto& [space, loc] : block_locs_) {
    if (space != dbspace_id) continue;
    bm.SetRange(loc.first_block(), loc.first_block() + loc.block_count());
  }
  return bm;
}

std::vector<uint8_t> PageSet::Serialize() const {
  std::vector<uint8_t> out;
  std::vector<uint8_t> cloud = cloud_keys_.Serialize();
  PutU64(out, cloud.size());
  PutBytes(out, cloud.data(), cloud.size());
  PutU64(out, block_locs_.size());
  for (const auto& [space, loc] : block_locs_) {
    PutU32(out, space);
    PutU64(out, loc.encoded());
  }
  return out;
}

PageSet PageSet::Deserialize(const std::vector<uint8_t>& bytes) {
  PageSet set;
  ByteReader reader(bytes);
  uint64_t cloud_len = reader.GetU64();
  std::vector<uint8_t> cloud = reader.GetBytes(cloud_len);
  set.cloud_keys_ = IntervalSet::Deserialize(cloud);
  uint64_t n = reader.GetU64();
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t space = reader.GetU32();
    uint64_t encoded = reader.GetU64();
    set.block_locs_.emplace_back(space, PhysicalLoc::FromEncoded(encoded));
  }
  return set;
}

}  // namespace cloudiq
