#ifndef CLOUDIQ_TXN_PAGE_SET_H_
#define CLOUDIQ_TXN_PAGE_SET_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/bitmap.h"
#include "common/interval_set.h"
#include "store/physical_loc.h"

namespace cloudiq {

// One of a transaction's roll-forward / roll-back page sets (§3.3).
//
// The RB set records the pages a transaction *allocated*; the RF set
// records the pages it *marked for deletion* (superseded versions). As in
// the paper, conventional pages are recorded as block-range bits in a
// per-dbspace bitmap while cloud pages — whose keys live in [2^63, 2^64) —
// are recorded as key ranges; the representation is distinguished purely
// by the numeric range, and the monotonic key generator keeps the cloud
// half compactly representable as intervals.
class PageSet {
 public:
  PageSet() = default;

  void Add(uint32_t dbspace_id, PhysicalLoc loc);

  bool empty() const { return cloud_keys_.empty() && block_locs_.empty(); }
  uint64_t page_count() const {
    return cloud_keys_.Count() + block_locs_.size();
  }

  // Cloud pages, as key intervals.
  const IntervalSet& cloud_keys() const { return cloud_keys_; }

  // Conventional pages, as (dbspace, location) pairs — the information
  // needed to clear freelist bits and free volume runs.
  const std::vector<std::pair<uint32_t, PhysicalLoc>>& block_locs() const {
    return block_locs_;
  }

  // Block bitmap for one dbspace (bit set for every block of every run),
  // as crash recovery applies these to the checkpointed freelist.
  Bitmap BlockBitmap(uint32_t dbspace_id) const;

  std::vector<uint8_t> Serialize() const;
  static PageSet Deserialize(const std::vector<uint8_t>& bytes);

  bool operator==(const PageSet& o) const {
    return cloud_keys_ == o.cloud_keys_ && block_locs_ == o.block_locs_;
  }

 private:
  IntervalSet cloud_keys_;
  std::vector<std::pair<uint32_t, PhysicalLoc>> block_locs_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_TXN_PAGE_SET_H_
