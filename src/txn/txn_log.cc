#include "txn/txn_log.h"

#include "common/coding.h"

namespace cloudiq {

std::vector<uint8_t> TxnLogRecord::Serialize() const {
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(type));
  PutU32(out, node);
  PutU64(out, range_begin);
  PutU64(out, range_end);
  std::vector<uint8_t> keys = committed_keys.Serialize();
  PutU64(out, keys.size());
  PutBytes(out, keys.data(), keys.size());
  PutU64(out, txn_id);
  PutU64(out, commit_seq);
  PutString(out, rf_name);
  PutString(out, rb_name);
  PutU64(out, identity_updates.size());
  for (const auto& update : identity_updates) {
    PutU64(out, update.size());
    PutBytes(out, update.data(), update.size());
  }
  PutU64(out, dropped_objects.size());
  for (uint64_t id : dropped_objects) PutU64(out, id);
  return out;
}

TxnLogRecord TxnLogRecord::Deserialize(ByteReader& reader) {
  TxnLogRecord rec;
  rec.type = static_cast<Type>(reader.GetU32());
  rec.node = reader.GetU32();
  rec.range_begin = reader.GetU64();
  rec.range_end = reader.GetU64();
  uint64_t keys_len = reader.GetU64();
  rec.committed_keys = IntervalSet::Deserialize(reader.GetBytes(keys_len));
  rec.txn_id = reader.GetU64();
  rec.commit_seq = reader.GetU64();
  rec.rf_name = reader.GetString();
  rec.rb_name = reader.GetString();
  uint64_t n_updates = reader.GetU64();
  for (uint64_t i = 0; i < n_updates; ++i) {
    uint64_t len = reader.GetU64();
    rec.identity_updates.push_back(reader.GetBytes(len));
  }
  uint64_t n_dropped = reader.GetU64();
  for (uint64_t i = 0; i < n_dropped; ++i) {
    rec.dropped_objects.push_back(reader.GetU64());
  }
  return rec;
}

Status TxnLog::Persist(SimTime now, SimTime* completion) {
  std::vector<uint8_t> bytes;
  PutU64(bytes, records_.size());
  for (const TxnLogRecord& rec : records_) {
    std::vector<uint8_t> r = rec.Serialize();
    PutU64(bytes, r.size());
    PutBytes(bytes, r.data(), r.size());
  }
  return store_->Put(name_, bytes, now, completion);
}

Status TxnLog::Append(const TxnLogRecord& record, SimTime now,
                      SimTime* completion) {
  records_.push_back(record);
  return Persist(now, completion);
}

Status TxnLog::TruncateAtCheckpoint(SimTime now, SimTime* completion) {
  // Find the last checkpoint marker; drop it and everything before it.
  size_t cut = 0;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].type == TxnLogRecord::Type::kCheckpoint) cut = i + 1;
  }
  if (cut > 0) {
    records_.erase(records_.begin(), records_.begin() + cut);
  }
  return Persist(now, completion);
}

Status TxnLog::Load(SimTime now, SimTime* completion) {
  records_.clear();
  Result<std::vector<uint8_t>> bytes = store_->Get(name_, now, completion);
  if (!bytes.ok()) {
    if (bytes.status().IsNotFound()) return Status::Ok();  // empty log
    return bytes.status();
  }
  ByteReader reader(bytes.value());
  uint64_t n = reader.GetU64();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t len = reader.GetU64();
    std::vector<uint8_t> rec_bytes = reader.GetBytes(len);
    ByteReader rec_reader(rec_bytes);
    records_.push_back(TxnLogRecord::Deserialize(rec_reader));
  }
  if (reader.overflow()) return Status::Corruption("transaction log");
  return Status::Ok();
}

}  // namespace cloudiq
