#include "exec/morsel.h"

#include <algorithm>

namespace cloudiq {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kSim: return "sim";
    case ExecMode::kNative: return "native";
  }
  return "unknown";
}

bool ParseExecMode(const std::string& text, ExecMode* mode) {
  if (text == "sim") {
    *mode = ExecMode::kSim;
    return true;
  }
  if (text == "native") {
    *mode = ExecMode::kNative;
    return true;
  }
  return false;
}

namespace {

// Candidate rows of `rows` that fall inside [first, last).
uint64_t CandidateRowsIn(const IntervalSet& rows, uint64_t first,
                         uint64_t last) {
  uint64_t count = 0;
  for (const IntervalSet::Interval& iv : rows.Intervals()) {
    uint64_t begin = std::max(iv.begin, first);
    uint64_t end = std::min(iv.end, last);
    if (end > begin) count += end - begin;
  }
  return count;
}

// Clips `rows` to the morsel's [row_begin, row_end) window.
void FillMorselRows(const IntervalSet& rows, Morsel* morsel) {
  for (const IntervalSet::Interval& iv : rows.Intervals()) {
    uint64_t begin = std::max(iv.begin, morsel->row_begin);
    uint64_t end = std::min(iv.end, morsel->row_end);
    if (end > begin) morsel->rows.InsertRange(begin, end);
  }
}

}  // namespace

void AppendMorsels(const SegmentMeta& align_seg, size_t partition,
                   const IntervalSet& rows, uint64_t target_rows,
                   std::vector<Morsel>* out) {
  if (rows.empty()) return;
  if (target_rows == 0) target_rows = 1;
  Morsel cur;
  bool open = false;
  uint64_t first = 0;
  for (size_t page = 0; page < align_seg.page_rows.size(); ++page) {
    uint64_t last = first + align_seg.page_rows[page];  // exclusive
    uint64_t candidates = CandidateRowsIn(rows, first, last);
    if (candidates > 0) {
      if (!open) {
        cur = Morsel{};
        cur.partition = partition;
        cur.row_begin = first;
        open = true;
      }
      cur.row_end = last;
      cur.row_count += candidates;
      if (cur.row_count >= target_rows) {
        FillMorselRows(rows, &cur);
        out->push_back(std::move(cur));
        open = false;
      }
    }
    first = last;
  }
  if (open) {
    // Remainder morsel: the candidate tail that never reached target.
    FillMorselRows(rows, &cur);
    out->push_back(std::move(cur));
  }
}

std::vector<RowChunk> MakeRowChunks(size_t rows, uint64_t target_rows) {
  std::vector<RowChunk> chunks;
  if (rows == 0) return chunks;
  if (target_rows == 0) target_rows = 1;
  size_t step = static_cast<size_t>(target_rows);
  for (size_t begin = 0; begin < rows; begin += step) {
    chunks.push_back(RowChunk{begin, std::min(rows, begin + step)});
  }
  return chunks;
}

}  // namespace cloudiq
