#ifndef CLOUDIQ_EXEC_MORSEL_H_
#define CLOUDIQ_EXEC_MORSEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "columnar/schema.h"
#include "common/interval_set.h"

namespace cloudiq {

// How the executor runs the morsels of a parallel section.
//
//  * kSim (default): morsels run inline on the calling thread in
//    ascending index order. Combined with the work-then-charge split in
//    executor.cc (task lambdas touch no simulator state; all CPU charges
//    happen afterwards in a fixed coordinator loop), a sim run's clock,
//    ledger and stall profile are byte-identical across worker counts.
//  * kNative: morsels are drained from a shared counter by real worker
//    threads (TaskPool) for wall-clock speedup. The charge loop is the
//    same fixed sequence, so the *simulated* report stays identical to a
//    sim run — only host wall time changes.
enum class ExecMode { kSim, kNative };

const char* ExecModeName(ExecMode mode);
// Parses "sim" / "native" (as accepted by --exec= and CLOUDIQ_EXEC).
bool ParseExecMode(const std::string& text, ExecMode* mode);

// One unit of parallel scan work: a page-aligned row range of one
// partition plus the candidate row set inside it (the zone-map
// survivors). Page alignment is taken from the scan's leading column so
// a morsel decodes whole pages of that column; other columns page
// independently and are walked by row id.
struct Morsel {
  size_t partition = 0;
  uint64_t row_begin = 0;  // first row covered (page boundary)
  uint64_t row_end = 0;    // exclusive (page boundary)
  IntervalSet rows;        // candidate rows within [row_begin, row_end)
  uint64_t row_count = 0;  // rows.Count(), precomputed
};

// Splits the candidate `rows` of one partition into page-aligned morsels
// of roughly `target_rows` candidate rows each, appending to `out`.
// Cuts only at page boundaries of `align_seg`, so a morsel is closed by
// the first page that brings it to >= target_rows; the tail becomes a
// smaller remainder morsel. Pages with no candidate rows extend no
// morsel. Empty `rows` appends nothing; target_rows == 0 is treated
// as 1.
void AppendMorsels(const SegmentMeta& align_seg, size_t partition,
                   const IntervalSet& rows, uint64_t target_rows,
                   std::vector<Morsel>* out);

// Contiguous row chunks for operators without page structure (hash-join
// build/probe sides, aggregation input): [begin, end) ranges covering
// [0, rows) in order, each `target_rows` long except a smaller final
// remainder. rows == 0 yields no chunks; target_rows == 0 is treated
// as 1.
struct RowChunk {
  size_t begin = 0;
  size_t end = 0;  // exclusive
};
std::vector<RowChunk> MakeRowChunks(size_t rows, uint64_t target_rows);

}  // namespace cloudiq

#endif  // CLOUDIQ_EXEC_MORSEL_H_
