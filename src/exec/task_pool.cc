#include "exec/task_pool.h"

#include <algorithm>

namespace cloudiq {

TaskPool& TaskPool::Global() {
  // Intentionally leaked: a static TaskPool's destructor would lock the
  // ranked mutex during exit, after glibc has already run the lock-rank
  // observer's thread_local destructors (use-after-free). Parked workers
  // are reaped by process exit; no job can be in flight by then.
  static TaskPool* pool = new TaskPool();  // NOLINT(cloudiq-raw-new): leaked on purpose, see above
  return *pool;
}

TaskPool::~TaskPool() {
  std::vector<std::thread> threads;
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
    threads.swap(threads_);
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads) t.join();
}

int TaskPool::thread_count() const {
  MutexLock lock(&mu_);
  return static_cast<int>(threads_.size());
}

void TaskPool::EnsureThreadsLocked(int want) {
  want = std::min(want, kMaxWorkers - 1);
  while (static_cast<int>(threads_.size()) < want) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void TaskPool::RunIndexed(ExecMode mode, int workers, size_t count,
                          const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (mode == ExecMode::kSim || workers <= 1 || count <= 1) {
    // Deterministic path: ascending order, no pool involvement at all.
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.count = count;
  {
    MutexLock lock(&mu_);
    // One job at a time; a concurrent caller waits for the pool.
    done_cv_.Wait(  // NOLINT(cloudiq-stall-report): host-thread handoff, no sim-time passes while blocked
        &mu_, [this]() REQUIRES(mu_) { return !busy_; });
    busy_ = true;
    EnsureThreadsLocked(workers - 1);
    job_ = &job;
    ++generation_;
  }
  work_cv_.NotifyAll();

  // The caller drains too — with one morsel left it just runs it
  // instead of waiting for a wakeup.
  for (size_t i = job.next.fetch_add(1); i < count;
       i = job.next.fetch_add(1)) {
    fn(i);
  }

  {
    MutexLock lock(&mu_);
    // Workers join (++active) and leave (--active) under mu_, and join
    // only while job_ still points at our stack frame, so once active
    // drops to zero with job_ cleared no thread can touch `job` again.
    done_cv_.Wait(  // NOLINT(cloudiq-stall-report): host-thread join, the sim clock is frozen during a parallel section
        &mu_, [&job]() { return job.active == 0; });
    job_ = nullptr;
    busy_ = false;
  }
  done_cv_.NotifyAll();  // wake any caller queued on !busy_
}

void TaskPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(&mu_);
      work_cv_.Wait(  // NOLINT(cloudiq-stall-report): idle worker parked between jobs, owns no sim-time
          &mu_, [this, &seen_generation]() REQUIRES(mu_) {
            return shutdown_ ||
                   (job_ != nullptr && generation_ != seen_generation);
          });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      ++job->active;
    }
    for (size_t i = job->next.fetch_add(1); i < job->count;
         i = job->next.fetch_add(1)) {
      (*job->fn)(i);
    }
    bool last = false;
    {
      MutexLock lock(&mu_);
      last = --job->active == 0;
    }
    if (last) done_cv_.NotifyAll();
  }
}

}  // namespace cloudiq
