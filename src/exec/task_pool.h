#ifndef CLOUDIQ_EXEC_TASK_POOL_H_
#define CLOUDIQ_EXEC_TASK_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/morsel.h"

namespace cloudiq {

// Worker pool for the morsel-driven executor's native mode.
//
// Design constraints, in order:
//  1. Sim determinism is untouchable: in kSim mode (or with one worker)
//     RunIndexed degrades to a plain inline loop — no lock is taken, no
//     thread is spawned, and indices run in ascending order.
//  2. Task bodies are *pure host CPU*. They must not touch the sim
//     clock, the ledger, the stall profiler, or any other simulator
//     state — all simulated accounting happens in the caller's fixed
//     coordinator loop after (or before) the parallel region, which is
//     what keeps a native run's report byte-identical to a sim run's.
//  3. The pool's one mutex (kTaskPool, rank 15) is held only around job
//     hand-off and join/leave bookkeeping, never while a task body runs,
//     so it can never participate in an inversion with the locks a
//     caller might logically hold above it.
//
// One job runs at a time (queries are single-threaded coordinators; a
// second concurrent caller parks on done_cv_ until the pool frees).
// Workers are spawned lazily on first native use and joined in the
// destructor. Work distribution is a shared atomic index counter —
// morsel-driven scheduling in the Leis et al. sense, degenerated to one
// global queue because a query's morsels already share one NUMA domain
// here.
class TaskPool {
 public:
  // Upper bound on pool threads (callers drain too, so up to kMaxWorkers
  // threads total touch a job). Far above any sensible --workers value.
  static constexpr int kMaxWorkers = 16;

  static TaskPool& Global();

  TaskPool() = default;
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  // Runs fn(0) .. fn(count - 1) to completion before returning.
  //
  // kSim, workers <= 1 or count <= 1: inline on the caller, ascending
  // order. kNative: the caller plus up to workers - 1 pool threads drain
  // indices from a shared counter; completion order is arbitrary, so fn
  // must write only its own index's output slot.
  void RunIndexed(ExecMode mode, int workers, size_t count,
                  const std::function<void(size_t)>& fn) EXCLUDES(mu_);

  // Pool threads spawned so far (tests / diagnostics).
  int thread_count() const EXCLUDES(mu_);

 private:
  // The job currently being drained. `next` is the only hot-path shared
  // state; everything else is touched under mu_.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    int active = 0;  // pool threads currently draining (under mu_)
  };

  void EnsureThreadsLocked(int want) REQUIRES(mu_);
  void WorkerLoop() EXCLUDES(mu_);

  mutable Mutex mu_{lockrank::kTaskPool};
  CondVar work_cv_;  // workers: a new job generation (or shutdown)
  CondVar done_cv_;  // caller: my job fully drained / the pool is free
  Job* job_ GUARDED_BY(mu_) = nullptr;
  // Bumped per job; a worker joins a job only once (its local copy of
  // the generation prevents re-joining the same job after finishing it
  // while the caller has not yet retired it).
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool busy_ GUARDED_BY(mu_) = false;
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_ GUARDED_BY(mu_);
};

}  // namespace cloudiq

#endif  // CLOUDIQ_EXEC_TASK_POOL_H_
