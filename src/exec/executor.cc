#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "columnar/encoding.h"
#include "costopt/cost_model.h"
#include "exec/task_pool.h"

namespace cloudiq {

void QueryContext::ChargeValues(uint64_t values) {
  node()->io().AddCpuWork(values * options_.cpu_per_value,
                          node()->profile().vcpus);
  CheckStep("charge_values");
}

void QueryContext::ChargeDecodedBytes(uint64_t bytes) {
  node()->io().AddCpuWork(bytes * options_.cpu_per_decoded_byte,
                          node()->profile().vcpus);
  CheckStep("charge_decoded");
}

void QueryContext::ChargeMorselValues(uint64_t values) {
  SimClock& clock = node()->clock();
  double start = clock.now();
  node()->io().AddCpuWork(values * options_.cpu_per_value,
                          node()->profile().vcpus);
  // Profiled explicitly as a lane of the enclosing parallel section:
  // consecutive morsel windows are disjoint and telescope to the
  // section's elapsed time, so EndParallel registers them unscaled and
  // per-morsel attribution stays conservation-exact. No step check here
  // — the section defers it (see ScopedParallelSection).
  node()->telemetry().profiler().Charge(WaitClass::kCpuExec, start,
                                        clock.now());
}

namespace {

AttributionContext OperatorAttribution(QueryContext* ctx, int op_id,
                                       const std::string& name) {
  AttributionContext attr = ctx->attribution();
  attr.operator_id = op_id;
  attr.tag = name;
  return attr;
}

}  // namespace

OperatorScope::OperatorScope(QueryContext* ctx, std::string name)
    : ctx_(ctx),
      op_id_(ctx->RegisterOperator(name)),
      start_(ctx->node()->clock().now()),
      scope_(&ctx->ledger(), OperatorAttribution(ctx, op_id_, name)),
      stall_(&ctx->node()->telemetry().profiler(), &ctx->node()->clock(),
             WaitClass::kCpuExec) {
  // Pin the stall residual to this operator: the fiber may be suspended
  // and resumed under a different installed attribution, but the scope's
  // unclaimed time must stay the operator's.
  ctx->node()->telemetry().profiler().PinScopeAttribution();
  ctx->CheckStep("operator");
}

OperatorScope::~OperatorScope() {
  double elapsed = ctx_->node()->clock().now() - start_;
  QueryContext::OperatorStats& stats = ctx_->operator_stats(op_id_);
  stats.sim_seconds += elapsed;
  ++stats.batches;
  // Recorded while our attribution scope is still installed, so the time
  // lands on this operator's ledger entry.
  ctx_->ledger().AddSimSeconds(elapsed);
}

namespace {

// Partition-level pruning with range-partition bounds.
bool PartitionMayMatch(const TableSchema& schema, size_t partition,
                       const std::optional<ScanRange>& range,
                       int range_col) {
  if (!range.has_value() || schema.partition_column < 0 ||
      range_col != schema.partition_column) {
    return true;
  }
  int64_t part_lo = partition == 0
                        ? INT64_MIN
                        : schema.partition_bounds[partition - 1];
  int64_t part_hi = partition < schema.partition_bounds.size()
                        ? schema.partition_bounds[partition] - 1
                        : INT64_MAX;
  return range->hi >= part_lo && range->lo <= part_hi;
}

// Pages of (partition, column) that contain any row in `rows`.
std::vector<uint64_t> PagesForRows(const SegmentMeta& seg,
                                   const IntervalSet& rows) {
  std::vector<uint64_t> pages;
  uint64_t first = 0;
  for (size_t page = 0; page < seg.page_rows.size(); ++page) {
    uint64_t last = first + seg.page_rows[page];  // exclusive
    for (const auto& iv : rows.Intervals()) {
      if (iv.begin < last && iv.end > first) {
        pages.push_back(page);
        break;
      }
    }
    first = last;
  }
  return pages;
}

// Appends the values of `col_ids` for the ascending row ids in `rows` of
// one partition to `out`. Column segments page independently (each column
// fills its pages to capacity), so each column walks its own page
// boundaries; appending in ascending row order keeps the output columns
// row-aligned.
Status ReadRowSet(QueryContext* ctx, TableReader* reader, size_t partition,
                  const std::vector<int>& col_ids, const IntervalSet& rows,
                  Batch* out) {
  if (rows.empty()) return Status::Ok();
  // Parallel prefetch of every column's needed pages first.
  std::vector<std::vector<uint64_t>> pages(col_ids.size());
  for (size_t i = 0; i < col_ids.size(); ++i) {
    const SegmentMeta& seg =
        reader->meta().partitions[partition].columns[col_ids[i]];
    pages[i] = PagesForRows(seg, rows);
    CLOUDIQ_RETURN_IF_ERROR(
        reader->Prefetch(partition, col_ids[i], pages[i]));
  }
  uint64_t values = 0;
  for (size_t i = 0; i < col_ids.size(); ++i) {
    const SegmentMeta& seg =
        reader->meta().partitions[partition].columns[col_ids[i]];
    ColumnVector& dst = out->columns[i];
    for (uint64_t page : pages[i]) {
      CLOUDIQ_ASSIGN_OR_RETURN(
          ColumnVector decoded, reader->ReadPage(partition, col_ids[i],
                                                 page));
      uint64_t page_first = reader->PageFirstRow(partition, col_ids[i],
                                                 page);
      uint64_t page_end = page_first + seg.page_rows[page];
      for (const auto& iv : rows.Intervals()) {
        uint64_t begin = std::max(iv.begin, page_first);
        uint64_t end = std::min(iv.end, page_end);
        for (uint64_t r = begin; r < end; ++r) {
          size_t off = static_cast<size_t>(r - page_first);
          switch (decoded.type) {
            case ColumnType::kDouble:
              dst.doubles.push_back(decoded.doubles[off]);
              break;
            case ColumnType::kString:
              dst.strings.push_back(decoded.strings[off]);
              break;
            default:
              dst.ints.push_back(decoded.ints[off]);
          }
          ++values;
        }
      }
    }
  }
  ctx->ChargeValues(values);
  return Status::Ok();
}

Batch MakeOutputShape(const TableSchema& schema,
                      const std::vector<std::string>& columns,
                      std::vector<int>* col_ids, Status* status) {
  Batch out;
  *status = Status::Ok();
  for (const std::string& name : columns) {
    int c = schema.ColumnIndex(name);
    if (c < 0) {
      *status = Status::InvalidArgument("unknown column " + name);
      return out;
    }
    col_ids->push_back(c);
    ColumnVector vec;
    vec.type = schema.columns[c].type;
    out.AddColumn(name, std::move(vec));
  }
  return out;
}

// --- morsel-parallel helpers -----------------------------------------------
//
// Every parallel region follows the same work-then-charge split:
//   * task lambdas run pure host CPU (decode, materialize, local build /
//     accumulate, placement) and touch no simulator state, writing only
//     their own index's output slot;
//   * the coordinator then charges sim-time in a fixed loop over the
//     same indices, in order, in both modes.
// The AddCpuWork / profiler call sequence is therefore identical in sim
// and native mode and across worker counts — which is the whole
// determinism contract (DESIGN.md §5j).

// One fetched page of a read column: the encoded frame (phase A, on the
// coordinator — all simulated I/O happens there) and its decoded values
// (phase B, on workers — each frame decoded exactly once).
struct DecodedPage {
  BufferManager::PageData frame;
  uint64_t first_row = 0;
  uint64_t row_count = 0;
  ColumnVector values;
};

// Pages of one (partition, read column), ascending by first_row.
struct ColumnSlice {
  std::vector<DecodedPage> pages;
};

// Forward cursor over a ColumnSlice: resolves ascending row ids to
// (page values, offset) with an amortized-O(1) walk. Valid only for rows
// covered by a fetched page — which every candidate row is, because the
// pages were chosen by PagesForRows over the candidate set.
struct SliceCursor {
  const ColumnSlice* slice;
  size_t page = 0;

  const ColumnVector& At(uint64_t row, size_t* offset) {
    while (row >=
           slice->pages[page].first_row + slice->pages[page].row_count) {
      ++page;
    }
    *offset = static_cast<size_t>(row - slice->pages[page].first_row);
    return slice->pages[page].values;
  }
};

// Materializes one morsel's candidate rows into a private fragment with
// `shape`'s columns, applying the exact range filter in-morsel. Pure
// host CPU.
Batch MaterializeScanMorsel(const Batch& shape,
                            const std::vector<ColumnSlice>& cols,
                            const Morsel& morsel,
                            const std::optional<ScanRange>& range,
                            size_t range_pos) {
  Batch frag = shape.EmptyLike();
  std::vector<SliceCursor> cursors;
  cursors.reserve(cols.size());
  for (const ColumnSlice& slice : cols) {
    cursors.push_back(SliceCursor{&slice, 0});
  }
  for (const IntervalSet::Interval& iv : morsel.rows.Intervals()) {
    for (uint64_t r = iv.begin; r < iv.end; ++r) {
      if (range.has_value()) {
        size_t off;
        const ColumnVector& vals = cursors[range_pos].At(r, &off);
        if (vals.ints[off] < range->lo || vals.ints[off] > range->hi) {
          continue;
        }
      }
      for (size_t c = 0; c < cols.size(); ++c) {
        size_t off;
        const ColumnVector& vals = cursors[c].At(r, &off);
        ColumnVector& dst = frag.columns[c];
        switch (dst.type) {
          case ColumnType::kDouble:
            dst.doubles.push_back(vals.doubles[off]);
            break;
          case ColumnType::kString:
            dst.strings.push_back(vals.strings[off]);
            break;
          default:
            dst.ints.push_back(vals.ints[off]);
        }
      }
    }
  }
  return frag;
}

void ResizeColumn(ColumnVector* col, size_t rows) {
  switch (col->type) {
    case ColumnType::kDouble:
      col->doubles.resize(rows);
      break;
    case ColumnType::kString:
      col->strings.resize(rows);
      break;
    default:
      col->ints.resize(rows);
  }
}

// Writes `src`'s values into `dst` starting at row `at`. The caller
// resized `dst` and assigned each fragment a disjoint slot range, so
// concurrent placements never overlap.
void PlaceColumn(ColumnVector* dst, ColumnVector* src, size_t at) {
  switch (dst->type) {
    case ColumnType::kDouble:
      std::copy(src->doubles.begin(), src->doubles.end(),
                dst->doubles.begin() + at);
      break;
    case ColumnType::kString:
      std::move(src->strings.begin(), src->strings.end(),
                dst->strings.begin() + at);
      break;
    default:
      std::copy(src->ints.begin(), src->ints.end(),
                dst->ints.begin() + at);
  }
}

// Phase D of every parallel operator: prefix-sums fragment sizes,
// resizes `out` to the total, and places each fragment into its disjoint
// slot range (in parallel in native mode).
void PlaceFragments(ExecMode mode, int workers, std::vector<Batch>* frags,
                    Batch* out) {
  std::vector<size_t> offsets(frags->size() + 1, 0);
  for (size_t i = 0; i < frags->size(); ++i) {
    offsets[i + 1] = offsets[i] + (*frags)[i].rows();
  }
  for (ColumnVector& col : out->columns) {
    ResizeColumn(&col, offsets.back());
  }
  TaskPool::Global().RunIndexed(
      mode, workers, frags->size(), [&](size_t i) {
        Batch& frag = (*frags)[i];
        for (size_t c = 0; c < out->columns.size(); ++c) {
          PlaceColumn(&out->columns[c], &frag.columns[c], offsets[i]);
        }
      });
}

// --- near-data processing --------------------------------------------------

// Per-type encoded-width guess for the bytes-moved heuristic. Precision
// is secondary: the pull and push estimates use the same weights, so
// only the ratio (driven by selectivity and projection width) matters.
double EncodedWidth(ColumnType type) {
  switch (type) {
    case ColumnType::kDouble: return 8.0;
    case ColumnType::kString: return 16.0;
    default: return 4.0;
  }
}

struct NdpScanPlan {
  bool use = false;        // pushdown chosen for this scan
  bool considered = false; // planning ran (mode on/auto and scan eligible)
  std::vector<size_t> partitions;              // partitions with candidates
  std::vector<std::vector<uint8_t>> requests;  // parallel to partitions
  double est_pull_bytes = 0;  // encoded bytes a pull would move over the NIC
  double est_push_bytes = 0;  // requests + estimated result bytes
  costopt::ScanWork work;     // what the cost model prices either way
};

// Reduces one node + the cluster's object-store service model to the
// plain numbers the cost model prices against.
costopt::NodeResources ResourcesFor(NodeContext* node,
                                    double cpu_per_decoded_byte) {
  const ObjectStoreOptions& store = node->env().object_store().options();
  const LocalSsdOptions& ssd = node->ssd().options();
  costopt::NodeResources r;
  r.vcpus = node->profile().vcpus;
  r.io_width = node->IoWidth();
  r.nic_bytes_per_sec = node->profile().nic_gbps * 1e9 / 8;
  r.hourly_usd = node->profile().hourly_usd;
  r.get_base_latency = store.get_base_latency;
  r.stream_bandwidth = store.stream_bandwidth;
  r.select_base_latency = store.select_base_latency;
  r.select_scan_bandwidth = store.select_scan_bandwidth;
  r.ssd_base_latency = ssd.base_latency;
  r.ssd_read_bandwidth =
      ssd.device_read_bandwidth * std::max(1, ssd.devices);
  r.cpu_per_decoded_byte = cpu_per_decoded_byte;
  return r;
}

// Builds one NdpRequest per candidate partition of a range scan and
// estimates bytes moved either way. Selectivity is estimated per zone-map
// survivor page assuming a uniform distribution between the page's
// min/max. Any page that is not cloud-resident (local dbspace, or not
// yet flushed) disables pushdown for the whole scan — mixed residency
// falls back to the pull path rather than splitting a scan across both.
NdpScanPlan PlanNdpScan(QueryContext* ctx, TableReader* reader,
                        const std::vector<std::string>& read_columns,
                        const std::vector<int>& col_ids,
                        size_t projected_count, int range_col,
                        size_t range_pos, const ScanRange& range) {
  NdpScanPlan plan;
  ndp::NdpMode mode = ctx->options().ndp_mode;
  if (mode == ndp::NdpMode::kOff) return plan;
  if (!reader->PushdownEligible()) return plan;
  if (!ctx->txn_mgr()->storage().object_io().SelectSupported()) return plan;
  plan.considered = true;
  const TableSchema& schema = reader->schema();
  for (size_t p = 0; p < reader->meta().partitions.size(); ++p) {
    const PartitionMeta& pm = reader->meta().partitions[p];
    if (pm.row_count == 0) continue;
    if (!PartitionMayMatch(schema, p, range, range_col)) continue;
    const SegmentMeta& range_seg = pm.columns[range_col];
    std::vector<uint64_t> range_pages =
        reader->PrunePagesInt(p, range_col, range.lo, range.hi);
    if (range_pages.empty()) continue;
    IntervalSet rows;
    double est_rows = 0;  // rows expected to pass the exact range filter
    for (uint64_t page : range_pages) {
      uint64_t first = reader->PageFirstRow(p, range_col, page);
      rows.InsertRange(first, first + range_seg.page_rows[page]);
      const ZoneMapEntry& z = range_seg.zones[page];
      double span = static_cast<double>(z.max_int - z.min_int) + 1;
      double overlap = static_cast<double>(std::min(range.hi, z.max_int) -
                                           std::max(range.lo, z.min_int)) +
                       1;
      est_rows += range_seg.page_rows[page] *
                  std::clamp(overlap / span, 0.0, 1.0);
    }
    ndp::NdpRequest req;
    for (size_t i = 0; i < read_columns.size(); ++i) {
      int c = col_ids[i];
      const SegmentMeta& seg = pm.columns[c];
      std::vector<uint64_t> pages =
          c == range_col ? range_pages : PagesForRows(seg, rows);
      Result<std::vector<TableReader::CloudPageRef>> refs =
          reader->CloudPageRefs(p, c, pages);
      if (!refs.ok()) return NdpScanPlan{};  // fall back to the pull path
      ndp::NdpColumn col;
      col.name = read_columns[i];
      col.type = schema.columns[c].type;
      col.projected = i < projected_count;
      col.pages.reserve(refs.value().size());
      uint64_t pull_rows = 0;
      for (const TableReader::CloudPageRef& ref : refs.value()) {
        col.pages.push_back(
            ndp::NdpPageRef{ref.store_key, ref.first_row, ref.row_count});
        pull_rows += ref.row_count;
      }
      double seg_bytes = pull_rows * EncodedWidth(col.type);
      // SELECT bills the stored frame bytes it scans, so price the push
      // from the loader-recorded per-page sizes when available; the
      // decoded-width product stays as the fallback for segments written
      // before page_bytes existed (and for the pull-side NIC heuristic,
      // whose crossover only depends on the ratio between columns).
      double stored_bytes = 0;
      if (!seg.page_bytes.empty()) {
        for (uint64_t page : pages) {
          stored_bytes +=
              page < seg.page_bytes.size() ? seg.page_bytes[page] : 0;
        }
      } else {
        stored_bytes = seg_bytes;
      }
      // Plan-time residency: how many of these pages a pull would find
      // already in RAM or on the OCM's SSD. The store-side engine scans
      // them all either way.
      TableReader::Residency res = reader->ProbeResidency(p, c, pages);
      plan.work.pull_pages += res.pages;
      plan.work.pull_pages_buffer += res.in_buffer;
      plan.work.pull_pages_ocm += res.in_cloud_cache;
      plan.work.pull_bytes += seg_bytes;
      plan.work.push_scan_bytes += stored_bytes;
      if (col.projected) {
        plan.work.push_return_bytes += est_rows * EncodedWidth(col.type);
      }
      req.columns.push_back(std::move(col));
    }
    uint32_t rp = static_cast<uint32_t>(range_pos);
    req.filter = ndp::NdpExpr::And(
        {ndp::NdpExpr::CmpInt(rp, ndp::CmpOp::kGe, range.lo),
         ndp::NdpExpr::CmpInt(rp, ndp::CmpOp::kLe, range.hi)});
    std::vector<uint8_t> bytes = req.Serialize();
    plan.work.push_requests += 1;
    plan.work.push_request_bytes += static_cast<double>(bytes.size());
    plan.partitions.push_back(p);
    plan.requests.push_back(std::move(bytes));
  }
  if (plan.partitions.empty()) {
    plan.considered = false;  // nothing to push (or to pull)
    return plan;
  }

  // Regression/bench switch: reprice the pull as if every page were a
  // cold GET — the pre-costopt bug this planner used to have.
  if (ctx->options().ndp_assume_cold) {
    plan.work.pull_pages_buffer = 0;
    plan.work.pull_pages_ocm = 0;
  }
  uint64_t cold_pages = plan.work.pull_pages - plan.work.pull_pages_buffer -
                        plan.work.pull_pages_ocm;
  double cold_frac =
      plan.work.pull_pages == 0
          ? 1.0
          : static_cast<double>(cold_pages) / plan.work.pull_pages;
  // The bytes-moved heuristic now compares against the bytes a pull
  // would actually move over the NIC: warm pages (buffer or OCM) never
  // cross it, so a warm scan is no longer pushed down at a loss.
  plan.est_pull_bytes = plan.work.pull_bytes * cold_frac;
  plan.est_push_bytes =
      plan.work.push_request_bytes + plan.work.push_return_bytes;

  // Price both shapes with the ledger's own tables — the prediction that
  // EXPLAIN WHATIF shows and that the run report scores against billing.
  costopt::CostModel model(ctx->ledger().prices());
  costopt::NodeResources local =
      ResourcesFor(ctx->node(), ctx->options().cpu_per_decoded_byte);
  std::vector<costopt::PlanEstimate> candidates;
  candidates.push_back(model.PricePull(plan.work, local));
  candidates.push_back(model.PricePush(plan.work, local));

  costopt::PlanPolicy policy = ctx->options().cost_policy;
  int chosen;
  std::string reason;
  if (mode == ndp::NdpMode::kOn) {
    chosen = 1;
    reason = "ndp=on: pushdown forced";
  } else if (policy == costopt::PlanPolicy::kCostBlind) {
    bool push_wins = plan.est_push_bytes <
                     ctx->options().ndp_auto_threshold * plan.est_pull_bytes;
    chosen = push_wins ? 1 : 0;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "cost_blind: est push %.6g B vs cold pull %.6g B "
                  "(threshold %.3g, %s)",
                  plan.est_push_bytes, plan.est_pull_bytes,
                  ctx->options().ndp_auto_threshold,
                  candidates[0].detail.c_str());
    reason = buf;
  } else {
    costopt::PlanChoice choice =
        costopt::ChoosePlan(candidates, policy, ctx->options().slo_seconds,
                            ctx->options().budget_left_usd);
    chosen = choice.index;
    reason = std::move(choice.reason);
  }
  plan.use = chosen == 1;

  // Record the decision trail. op_id anticipates the scan's OperatorScope,
  // which registers immediately after planning — that id is what ties the
  // prediction to the ledger entry the run bills.
  costopt::WhatIfScan record;
  record.op = "scan " + schema.name;
  record.op_id = static_cast<int>(ctx->operators().size());
  record.policy = costopt::PolicyName(policy);
  record.candidates = candidates;
  record.chosen = chosen;
  record.reason = std::move(reason);
  // Reader-node placement, advisory: the chosen shape re-priced on every
  // node in the environment with compute-time USD at its hourly rate.
  SimEnvironment& env = ctx->node()->env();
  for (size_t n = 0; n < env.node_count(); ++n) {
    costopt::NodeResources remote = ResourcesFor(
        &env.node(n), ctx->options().cpu_per_decoded_byte);
    record.placement.push_back(model.PricePlacement(
        plan.work, remote, plan.use,
        candidates[chosen].name + "@" + env.node(n).profile().name));
  }
  ctx->whatif().Add(std::move(record));
  return plan;
}

}  // namespace

Result<Batch> ScanTable(QueryContext* ctx, TableReader* reader,
                        const std::vector<std::string>& columns,
                        const std::optional<ScanRange>& range) {
  const TableSchema& schema = reader->schema();
  int range_col =
      range.has_value() ? schema.ColumnIndex(range->column) : -1;
  if (range.has_value() && range_col < 0) {
    return Status::InvalidArgument("unknown range column");
  }
  // Read the range column too (for the exact post-filter), dropping it at
  // the end if the caller did not ask for it.
  std::vector<std::string> read_columns = columns;
  bool extra_range_col = false;
  size_t range_pos = 0;  // position of the range column in read_columns
  if (range.has_value()) {
    auto it = std::find(columns.begin(), columns.end(), range->column);
    if (it == columns.end()) {
      range_pos = read_columns.size();
      read_columns.push_back(range->column);
      extra_range_col = true;
    } else {
      range_pos = static_cast<size_t>(it - columns.begin());
    }
  }
  std::vector<int> col_ids;
  Status shape_status;
  Batch out = MakeOutputShape(schema, read_columns, &col_ids,
                              &shape_status);
  CLOUDIQ_RETURN_IF_ERROR(shape_status);

  // Near-data processing: with a range predicate, consider evaluating the
  // scan inside the object store instead of pulling pages. Planned before
  // the operator registers so EXPLAIN shows the decision in the name.
  NdpScanPlan plan;
  if (range.has_value()) {
    plan = PlanNdpScan(ctx, reader, read_columns, col_ids, columns.size(),
                       range_col, range_pos, *range);
  }

  std::string op_name = "scan " + schema.name + (plan.use ? " [ndp]" : "");
  Tracer& tracer = ctx->node()->telemetry().tracer();
  ScopedSpan span(&tracer, &ctx->node()->clock(), ctx->node()->trace_pid(),
                  kTrackExec, "exec",
                  tracer.enabled() ? op_name : std::string());
  OperatorScope op(ctx, op_name);
  auto& stats = ctx->node()->telemetry().stats();

  if (plan.use) {
    // Server-side path: the store decodes, filters, and projects; only
    // the matching values cross the NIC. The server applies the exact
    // range filter, so there is no client post-filter, and the result
    // carries exactly the caller's columns (filter-only columns are not
    // projected). Row order matches the pull path: ascending within each
    // partition, partitions in order.
    std::vector<int> proj_ids;
    Status proj_status;
    Batch pushed = MakeOutputShape(schema, columns, &proj_ids,
                                   &proj_status);
    CLOUDIQ_RETURN_IF_ERROR(proj_status);
    ObjectStoreIo& io = ctx->txn_mgr()->storage().object_io();
    SimClock& clock = ctx->node()->clock();
    for (size_t i = 0; i < plan.partitions.size(); ++i) {
      SimTime done = clock.now();
      uint64_t scanned = 0;
      CLOUDIQ_ASSIGN_OR_RETURN(
          std::vector<uint8_t> result_bytes,
          io.Select(plan.requests[i], clock.now(), &done, &scanned));
      clock.AdvanceTo(done);
      CLOUDIQ_ASSIGN_OR_RETURN(ndp::NdpResult result,
                               ndp::NdpResult::Deserialize(result_bytes));
      if (result.is_aggregate ||
          result.columns.size() != pushed.columns.size()) {
        return Status::Corruption("NDP result shape mismatch");
      }
      for (size_t c = 0; c < result.columns.size(); ++c) {
        ColumnVector& dst = pushed.columns[c];
        ColumnVector& src = result.columns[c];
        if (src.type != dst.type) {
          return Status::Corruption("NDP result type mismatch");
        }
        dst.ints.insert(dst.ints.end(), src.ints.begin(), src.ints.end());
        dst.doubles.insert(dst.doubles.end(), src.doubles.begin(),
                           src.doubles.end());
        dst.strings.insert(dst.strings.end(),
                           std::make_move_iterator(src.strings.begin()),
                           std::make_move_iterator(src.strings.end()));
      }
      // Client work: decode the (compressed) result and materialize it.
      ctx->ChargeDecodedBytes(result_bytes.size());
      ctx->ChargeValues(result.rows_matched * pushed.columns.size());
      uint64_t returned = result_bytes.size();
      stats.counter("ndp.requests").Add(1);
      stats.counter("ndp.bytes_scanned").Add(scanned);
      stats.counter("ndp.bytes_returned").Add(returned);
      if (scanned > returned) {
        stats.counter("ndp.bytes_saved").Add(scanned - returned);
      }
    }
    stats.counter("ndp.pushdown_scans").Add(1);
    op.AddRows(pushed.rows());
    return pushed;
  }
  if (plan.considered) stats.counter("ndp.pull_scans").Add(1);

  // --- morsel-parallel pull path -----------------------------------------
  // Phase A (coordinator, simulated): per partition, compute the
  // candidate row set (zone-map survivors under a range predicate, the
  // whole partition otherwise), plan page-aligned morsels on the leading
  // read column, prefetch, and fetch every needed page's *encoded*
  // frame. All simulated I/O happens here, in partition/column/page
  // order — identical in both modes.
  uint64_t decoded_before = reader->decoded_bytes();
  std::vector<Morsel> morsels;
  std::vector<size_t> morsel_slice;  // morsel -> index into `parts`
  std::vector<std::vector<ColumnSlice>> parts;
  for (size_t p = 0;
       !col_ids.empty() && p < reader->meta().partitions.size(); ++p) {
    const PartitionMeta& pm = reader->meta().partitions[p];
    if (pm.row_count == 0) continue;
    if (!PartitionMayMatch(schema, p, range, range_col)) continue;

    IntervalSet rows;
    if (range.has_value()) {
      const SegmentMeta& seg = pm.columns[range_col];
      std::vector<uint64_t> pages =
          reader->PrunePagesInt(p, range_col, range->lo, range->hi);
      for (uint64_t page : pages) {
        uint64_t first = reader->PageFirstRow(p, range_col, page);
        rows.InsertRange(first, first + seg.page_rows[page]);
      }
    } else {
      rows.InsertRange(0, pm.row_count);
    }
    if (rows.empty()) continue;

    size_t morsels_before = morsels.size();
    AppendMorsels(pm.columns[col_ids[0]], p, rows,
                  ctx->options().morsel_rows, &morsels);
    if (morsels.size() == morsels_before) continue;
    morsel_slice.resize(morsels.size(), parts.size());

    std::vector<std::vector<uint64_t>> pages(col_ids.size());
    for (size_t i = 0; i < col_ids.size(); ++i) {
      const SegmentMeta& seg = pm.columns[col_ids[i]];
      pages[i] = PagesForRows(seg, rows);
      CLOUDIQ_RETURN_IF_ERROR(
          reader->Prefetch(p, col_ids[i], pages[i]));
    }
    std::vector<ColumnSlice> slices(col_ids.size());
    for (size_t i = 0; i < col_ids.size(); ++i) {
      const SegmentMeta& seg = pm.columns[col_ids[i]];
      for (uint64_t page : pages[i]) {
        DecodedPage dp;
        CLOUDIQ_ASSIGN_OR_RETURN(
            dp.frame, reader->FetchPage(p, col_ids[i], page));
        dp.first_row = reader->PageFirstRow(p, col_ids[i], page);
        dp.row_count = seg.page_rows[page];
        slices[i].pages.push_back(std::move(dp));
      }
    }
    parts.push_back(std::move(slices));
  }
  // Every fetched frame is decoded exactly once below; charge the decode
  // CPU up front so the parallel section carries only per-morsel values.
  ctx->ChargeDecodedBytes(reader->decoded_bytes() - decoded_before);

  if (!morsels.empty()) {
    TaskPool& pool = TaskPool::Global();
    const ExecMode mode = ctx->options().exec_mode;
    const int workers = ctx->options().exec_workers;
    stats.counter("exec.parallel_sections").Add(1);
    stats.counter("exec.morsels").Add(morsels.size());

    ScopedParallelSection section(ctx);
    // Phase B (workers, host CPU): decode each fetched frame once.
    std::vector<DecodedPage*> decode_tasks;
    for (std::vector<ColumnSlice>& slices : parts) {
      for (ColumnSlice& slice : slices) {
        for (DecodedPage& dp : slice.pages) decode_tasks.push_back(&dp);
      }
    }
    std::vector<Status> decode_status(decode_tasks.size(), Status::Ok());
    pool.RunIndexed(mode, workers, decode_tasks.size(), [&](size_t t) {
      DecodedPage* dp = decode_tasks[t];
      Result<ColumnVector> decoded = DecodeColumnPage(*dp->frame);
      if (!decoded.ok()) {
        decode_status[t] = decoded.status();
        return;
      }
      dp->values = std::move(decoded).value();
      dp->frame.reset();
    });
    for (const Status& st : decode_status) {
      CLOUDIQ_RETURN_IF_ERROR(st);
    }
    // Phase C (workers): per-morsel materialize + exact range filter.
    std::vector<Batch> frags(morsels.size());
    pool.RunIndexed(mode, workers, morsels.size(), [&](size_t m) {
      frags[m] = MaterializeScanMorsel(out, parts[morsel_slice[m]],
                                       morsels[m], range, range_pos);
    });
    // Phase D (workers): place fragments into disjoint slots of `out`.
    PlaceFragments(mode, workers, &frags, &out);
    // The coordinator's fixed charge loop: each candidate row costs one
    // touch per read column plus (with a predicate) the exact filter
    // touch — the same totals the serial executor charged, attributed
    // per morsel in morsel order in both modes.
    for (const Morsel& morsel : morsels) {
      uint64_t values = morsel.row_count * col_ids.size();
      if (range.has_value()) values += morsel.row_count;
      ctx->ChargeMorselValues(values);
    }
    section.Finish();
  }

  if (range.has_value() && extra_range_col) {
    out.names.pop_back();
    out.columns.pop_back();
  }
  op.AddRows(out.rows());
  return out;
}

Result<Batch> ScanRowIds(QueryContext* ctx, TableReader* reader,
                         size_t partition,
                         const std::vector<std::string>& columns,
                         const IntervalSet& row_ids) {
  OperatorScope op(ctx, "scan row-ids " + reader->schema().name);
  std::vector<int> col_ids;
  Status shape_status;
  Batch out = MakeOutputShape(reader->schema(), columns, &col_ids,
                              &shape_status);
  CLOUDIQ_RETURN_IF_ERROR(shape_status);
  if (row_ids.empty()) return out;
  CLOUDIQ_RETURN_IF_ERROR(
      ReadRowSet(ctx, reader, partition, col_ids, row_ids, &out));
  op.AddRows(out.rows());
  return out;
}

Batch FilterBatch(QueryContext* ctx, const Batch& in,
                  const std::function<bool(const Batch&, size_t)>& keep) {
  OperatorScope op(ctx, "filter");
  Batch out = in.EmptyLike();
  for (size_t r = 0; r < in.rows(); ++r) {
    if (keep(in, r)) in.AppendRowTo(&out, r);
  }
  ctx->ChargeValues(in.rows());
  op.AddRows(out.rows());
  return out;
}

Result<Batch> HashJoin(QueryContext* ctx, const Batch& left,
                       const std::string& left_key, const Batch& right,
                       const std::string& right_key, JoinType type) {
  ScopedSpan span(&ctx->node()->telemetry().tracer(), &ctx->node()->clock(),
                  ctx->node()->trace_pid(), kTrackExec, "exec",
                  "hash join");
  OperatorScope op(ctx, "hash join");
  int lk = left.Col(left_key);
  int rk = right.Col(right_key);
  if (lk < 0 || rk < 0) return Status::InvalidArgument("bad join key");
  if (left.columns[lk].type == ColumnType::kDouble ||
      right.columns[rk].type == ColumnType::kDouble) {
    return Status::InvalidArgument("join keys must be int or string");
  }
  bool string_key = left.columns[lk].type == ColumnType::kString;

  TaskPool& pool = TaskPool::Global();
  const ExecMode mode = ctx->options().exec_mode;
  const int workers = ctx->options().exec_workers;
  auto& stats = ctx->node()->telemetry().stats();

  // Build side: the right batch, chunked into thread-local hash tables
  // merged in chunk order — chunk c's rows all precede chunk c+1's, and
  // each local chunk appends its ascending row ids, so every key's row
  // list comes out exactly as a serial build produces it.
  std::unordered_map<int64_t, std::vector<size_t>> int_build;
  std::unordered_map<std::string, std::vector<size_t>> str_build;
  std::vector<RowChunk> build_chunks =
      MakeRowChunks(right.rows(), ctx->options().morsel_rows);
  if (!build_chunks.empty()) {
    stats.counter("exec.parallel_sections").Add(1);
    stats.counter("exec.morsels").Add(build_chunks.size());
    std::vector<std::unordered_map<int64_t, std::vector<size_t>>>
        int_locals(string_key ? 0 : build_chunks.size());
    std::vector<std::unordered_map<std::string, std::vector<size_t>>>
        str_locals(string_key ? build_chunks.size() : 0);
    ScopedParallelSection section(ctx);
    pool.RunIndexed(mode, workers, build_chunks.size(), [&](size_t i) {
      for (size_t r = build_chunks[i].begin; r < build_chunks[i].end;
           ++r) {
        if (string_key) {
          str_locals[i][right.columns[rk].strings[r]].push_back(r);
        } else {
          int_locals[i][right.columns[rk].ints[r]].push_back(r);
        }
      }
    });
    for (size_t i = 0; i < build_chunks.size(); ++i) {
      if (string_key) {
        for (auto& [key, rows_list] : str_locals[i]) {
          std::vector<size_t>& dst = str_build[key];
          dst.insert(dst.end(), rows_list.begin(), rows_list.end());
        }
      } else {
        for (auto& [key, rows_list] : int_locals[i]) {
          std::vector<size_t>& dst = int_build[key];
          dst.insert(dst.end(), rows_list.begin(), rows_list.end());
        }
      }
      ctx->ChargeMorselValues(build_chunks[i].end -
                              build_chunks[i].begin);
    }
    section.Finish();
  }

  // Output shape.
  Batch out = left.EmptyLike();
  std::vector<int> right_cols;  // emitted right columns (inner join)
  if (type == JoinType::kInner) {
    for (size_t c = 0; c < right.columns.size(); ++c) {
      if (static_cast<int>(c) == rk) continue;
      if (out.Col(right.names[c]) >= 0) continue;  // left name wins
      right_cols.push_back(static_cast<int>(c));
      ColumnVector vec;
      vec.type = right.columns[c].type;
      out.AddColumn(right.names[c], std::move(vec));
    }
  }

  // Probe side: left chunks emit into private fragments (same per-row
  // semantics as the serial probe), placed into `out` in chunk order.
  auto append_left_row = [&](size_t r, Batch* frag) {
    for (size_t c = 0; c < left.columns.size(); ++c) {
      const ColumnVector& src = left.columns[c];
      ColumnVector& dst = frag->columns[c];
      switch (src.type) {
        case ColumnType::kDouble:
          dst.doubles.push_back(src.doubles[r]);
          break;
        case ColumnType::kString:
          dst.strings.push_back(src.strings[r]);
          break;
        default:
          dst.ints.push_back(src.ints[r]);
      }
    }
  };
  std::vector<RowChunk> probe_chunks =
      MakeRowChunks(left.rows(), ctx->options().morsel_rows);
  if (!probe_chunks.empty()) {
    stats.counter("exec.parallel_sections").Add(1);
    stats.counter("exec.morsels").Add(probe_chunks.size());
    std::vector<Batch> frags(probe_chunks.size());
    ScopedParallelSection section(ctx);
    pool.RunIndexed(mode, workers, probe_chunks.size(), [&](size_t i) {
      Batch frag = out.EmptyLike();
      for (size_t r = probe_chunks[i].begin; r < probe_chunks[i].end;
           ++r) {
        const std::vector<size_t>* matches = nullptr;
        if (string_key) {
          auto it = str_build.find(left.columns[lk].strings[r]);
          if (it != str_build.end()) matches = &it->second;
        } else {
          auto it = int_build.find(left.columns[lk].ints[r]);
          if (it != int_build.end()) matches = &it->second;
        }
        switch (type) {
          case JoinType::kLeftSemi:
            if (matches != nullptr) append_left_row(r, &frag);
            break;
          case JoinType::kLeftAnti:
            if (matches == nullptr) append_left_row(r, &frag);
            break;
          case JoinType::kInner:
            if (matches != nullptr) {
              for (size_t m : *matches) {
                append_left_row(r, &frag);
                for (size_t rc = 0; rc < right_cols.size(); ++rc) {
                  const ColumnVector& src = right.columns[right_cols[rc]];
                  ColumnVector& dst =
                      frag.columns[left.columns.size() + rc];
                  switch (src.type) {
                    case ColumnType::kDouble:
                      dst.doubles.push_back(src.doubles[m]);
                      break;
                    case ColumnType::kString:
                      dst.strings.push_back(src.strings[m]);
                      break;
                    default:
                      dst.ints.push_back(src.ints[m]);
                  }
                }
              }
            }
            break;
        }
      }
      frags[i] = std::move(frag);
    });
    PlaceFragments(mode, workers, &frags, &out);
    for (const RowChunk& chunk : probe_chunks) {
      ctx->ChargeMorselValues((chunk.end - chunk.begin) *
                              (1 + out.columns.size()));
    }
    section.Finish();
  }
  op.AddRows(out.rows());
  return out;
}

namespace {

struct AggState {
  double sum = 0;
  int64_t isum = 0;
  uint64_t count = 0;
  double min = 0;
  double max = 0;
  int64_t imin = 0;
  int64_t imax = 0;
  std::string smin;
  std::string smax;
  bool has_value = false;
};

// Composite group key of row `r` ('\x1f'-joined, type-agnostic).
std::string CompositeKey(const Batch& in, const std::vector<int>& key_cols,
                         size_t r) {
  std::string composite;
  for (int c : key_cols) {
    const ColumnVector& col = in.columns[c];
    switch (col.type) {
      case ColumnType::kDouble:
        composite += std::to_string(col.doubles[r]);
        break;
      case ColumnType::kString:
        composite += col.strings[r];
        break;
      default:
        composite += std::to_string(col.ints[r]);
    }
    composite += '\x1f';
  }
  return composite;
}

// Folds row `r` into one group's per-aggregate states.
void UpdateAggStates(const Batch& in, const std::vector<AggSpec>& aggs,
                     const std::vector<int>& agg_cols, size_t r,
                     std::vector<AggState>* st) {
  for (size_t a = 0; a < aggs.size(); ++a) {
    AggState& s = (*st)[a];
    ++s.count;
    if (agg_cols[a] < 0) continue;
    const ColumnVector& col = in.columns[agg_cols[a]];
    double v = 0;
    int64_t iv = 0;
    const std::string* sv = nullptr;
    switch (col.type) {
      case ColumnType::kDouble:
        v = col.doubles[r];
        iv = static_cast<int64_t>(v);
        break;
      case ColumnType::kString:
        sv = &col.strings[r];
        break;
      default:
        iv = col.ints[r];
        v = static_cast<double>(iv);
    }
    if (!s.has_value) {
      s.min = s.max = v;
      s.imin = s.imax = iv;
      if (sv != nullptr) s.smin = s.smax = *sv;
      s.has_value = true;
    } else {
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
      s.imin = std::min(s.imin, iv);
      s.imax = std::max(s.imax, iv);
      if (sv != nullptr) {
        if (*sv < s.smin) s.smin = *sv;
        if (*sv > s.smax) s.smax = *sv;
      }
    }
    s.sum += v;
    s.isum += iv;
  }
}

// Merges a later chunk's partial states for one group into the global
// states. Sums reassociate (chunk partials then chunk-order folds) but
// stay deterministic for a given morsel_rows; counts and min/max are
// order-free.
void MergeAggStates(const std::vector<AggState>& src,
                    std::vector<AggState>* dst) {
  for (size_t a = 0; a < src.size(); ++a) {
    AggState& s = (*dst)[a];
    const AggState& o = src[a];
    s.count += o.count;
    s.sum += o.sum;
    s.isum += o.isum;
    if (!o.has_value) continue;
    if (!s.has_value) {
      s.min = o.min;
      s.max = o.max;
      s.imin = o.imin;
      s.imax = o.imax;
      s.smin = o.smin;
      s.smax = o.smax;
      s.has_value = true;
    } else {
      s.min = std::min(s.min, o.min);
      s.max = std::max(s.max, o.max);
      s.imin = std::min(s.imin, o.imin);
      s.imax = std::max(s.imax, o.imax);
      if (o.smin < s.smin) s.smin = o.smin;
      if (o.smax > s.smax) s.smax = o.smax;
    }
  }
}

}  // namespace

Result<Batch> HashAggregate(QueryContext* ctx, const Batch& in,
                            const std::vector<std::string>& keys,
                            const std::vector<AggSpec>& aggs) {
  ScopedSpan span(&ctx->node()->telemetry().tracer(), &ctx->node()->clock(),
                  ctx->node()->trace_pid(), kTrackExec, "exec",
                  "hash aggregate");
  OperatorScope op(ctx, "hash aggregate");
  std::vector<int> key_cols;
  for (const std::string& k : keys) {
    int c = in.Col(k);
    if (c < 0) return Status::InvalidArgument("unknown group key " + k);
    key_cols.push_back(c);
  }
  std::vector<int> agg_cols;
  for (const AggSpec& spec : aggs) {
    int c = spec.op == AggOp::kCount && spec.column.empty()
                ? 0
                : in.Col(spec.column);
    if (c < 0 && !(spec.op == AggOp::kCount && spec.column.empty())) {
      return Status::InvalidArgument("unknown agg column " + spec.column);
    }
    agg_cols.push_back(c);
  }

  // Group rows by a composite string key (simple and type-agnostic).
  // Chunked: each chunk accumulates into a thread-local table (the
  // agg_merge idiom), then chunks merge serially in chunk order — the
  // first chunk containing a group also contains its globally first row,
  // so the global insertion order and representative rows match a serial
  // pass exactly.
  std::unordered_map<std::string, size_t> groups;
  std::vector<size_t> group_of_first_row;  // representative row per group
  std::vector<std::vector<AggState>> states;

  struct LocalGroups {
    std::unordered_map<std::string, size_t> index;
    std::vector<std::string> order;  // composite keys, insertion order
    std::vector<size_t> first_row;   // global row ids
    std::vector<std::vector<AggState>> states;
  };
  std::vector<RowChunk> chunks =
      MakeRowChunks(in.rows(), ctx->options().morsel_rows);
  if (!chunks.empty()) {
    TaskPool& pool = TaskPool::Global();
    const ExecMode mode = ctx->options().exec_mode;
    const int workers = ctx->options().exec_workers;
    auto& stats = ctx->node()->telemetry().stats();
    stats.counter("exec.parallel_sections").Add(1);
    stats.counter("exec.morsels").Add(chunks.size());
    std::vector<LocalGroups> locals(chunks.size());
    ScopedParallelSection section(ctx);
    pool.RunIndexed(mode, workers, chunks.size(), [&](size_t i) {
      LocalGroups& lg = locals[i];
      for (size_t r = chunks[i].begin; r < chunks[i].end; ++r) {
        std::string composite = CompositeKey(in, key_cols, r);
        auto [it, inserted] =
            lg.index.try_emplace(std::move(composite), lg.order.size());
        if (inserted) {
          lg.order.push_back(it->first);
          lg.first_row.push_back(r);
          lg.states.emplace_back(aggs.size());
        }
        UpdateAggStates(in, aggs, agg_cols, r, &lg.states[it->second]);
      }
    });
    for (size_t i = 0; i < chunks.size(); ++i) {
      LocalGroups& lg = locals[i];
      for (size_t g = 0; g < lg.order.size(); ++g) {
        auto [it, inserted] =
            groups.try_emplace(lg.order[g], groups.size());
        if (inserted) {
          group_of_first_row.push_back(lg.first_row[g]);
          states.push_back(std::move(lg.states[g]));
        } else {
          MergeAggStates(lg.states[g], &states[it->second]);
        }
      }
      ctx->ChargeMorselValues((chunks[i].end - chunks[i].begin) *
                              (key_cols.size() + aggs.size()));
    }
    section.Finish();
  }

  // Materialize output: group keys, then aggregates.
  Batch out;
  for (size_t k = 0; k < keys.size(); ++k) {
    ColumnVector vec;
    vec.type = in.columns[key_cols[k]].type;
    out.AddColumn(keys[k], std::move(vec));
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    ColumnVector vec;
    const AggSpec& spec = aggs[a];
    if (spec.op == AggOp::kCount) {
      vec.type = ColumnType::kInt64;
    } else if (agg_cols[a] >= 0 &&
               in.columns[agg_cols[a]].type == ColumnType::kString) {
      vec.type = ColumnType::kString;
    } else if (agg_cols[a] >= 0 &&
               in.columns[agg_cols[a]].type != ColumnType::kDouble &&
               in.columns[agg_cols[a]].type != ColumnType::kString &&
               (spec.op == AggOp::kMin || spec.op == AggOp::kMax ||
                spec.op == AggOp::kSum)) {
      // Int-family inputs (INT64 / DATE / DECIMAL) keep exact int sums,
      // minima and maxima.
      vec.type = ColumnType::kInt64;
    } else {
      vec.type = ColumnType::kDouble;
    }
    out.AddColumn(spec.as, std::move(vec));
  }

  for (size_t g = 0; g < states.size(); ++g) {
    size_t rep = group_of_first_row[g];
    for (size_t k = 0; k < key_cols.size(); ++k) {
      const ColumnVector& src = in.columns[key_cols[k]];
      ColumnVector& dst = out.columns[k];
      switch (src.type) {
        case ColumnType::kDouble:
          dst.doubles.push_back(src.doubles[rep]);
          break;
        case ColumnType::kString:
          dst.strings.push_back(src.strings[rep]);
          break;
        default:
          dst.ints.push_back(src.ints[rep]);
      }
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggState& s = states[g][a];
      ColumnVector& dst = out.columns[key_cols.size() + a];
      switch (aggs[a].op) {
        case AggOp::kCount:
          dst.ints.push_back(static_cast<int64_t>(s.count));
          break;
        case AggOp::kSum:
          if (dst.type == ColumnType::kInt64) {
            dst.ints.push_back(s.isum);
          } else {
            dst.doubles.push_back(s.sum);
          }
          break;
        case AggOp::kAvg:
          dst.doubles.push_back(s.count > 0 ? s.sum / s.count : 0);
          break;
        case AggOp::kMin:
          if (dst.type == ColumnType::kString) {
            dst.strings.push_back(s.smin);
          } else if (dst.type == ColumnType::kInt64) {
            dst.ints.push_back(s.imin);
          } else {
            dst.doubles.push_back(s.min);
          }
          break;
        case AggOp::kMax:
          if (dst.type == ColumnType::kString) {
            dst.strings.push_back(s.smax);
          } else if (dst.type == ColumnType::kInt64) {
            dst.ints.push_back(s.imax);
          } else {
            dst.doubles.push_back(s.max);
          }
          break;
      }
    }
  }
  op.AddRows(out.rows());
  return out;
}

Batch SortBatch(QueryContext* ctx, Batch in,
                const std::vector<SortKey>& sort_keys, size_t limit) {
  ScopedSpan span(&ctx->node()->telemetry().tracer(), &ctx->node()->clock(),
                  ctx->node()->trace_pid(), kTrackExec, "exec", "sort");
  OperatorScope op(ctx, "sort");
  std::vector<size_t> order(in.rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  auto compare = [&](size_t a, size_t b) {
    for (const SortKey& key : sort_keys) {
      int c = in.Col(key.column);
      if (c < 0) continue;
      const ColumnVector& col = in.columns[c];
      int cmp = 0;
      switch (col.type) {
        case ColumnType::kDouble:
          cmp = col.doubles[a] < col.doubles[b]
                    ? -1
                    : (col.doubles[a] > col.doubles[b] ? 1 : 0);
          break;
        case ColumnType::kString:
          cmp = col.strings[a].compare(col.strings[b]);
          cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
          break;
        default:
          cmp = col.ints[a] < col.ints[b]
                    ? -1
                    : (col.ints[a] > col.ints[b] ? 1 : 0);
      }
      if (cmp != 0) return key.ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  };
  std::stable_sort(order.begin(), order.end(), compare);
  if (limit > 0 && order.size() > limit) order.resize(limit);

  Batch out = in.EmptyLike();
  for (size_t r : order) in.AppendRowTo(&out, r);
  // n log n comparisons, each touching the sort-key values.
  double n = static_cast<double>(in.rows());
  ctx->ChargeValues(static_cast<uint64_t>(
      n * (n > 1 ? std::log2(n) : 1) * sort_keys.size()));
  op.AddRows(out.rows());
  return out;
}

Batch WithComputedColumn(
    QueryContext* ctx, Batch in, const std::string& name, ColumnType type,
    const std::function<void(const Batch&, size_t, ColumnVector*)>& emit) {
  OperatorScope op(ctx, "computed column " + name);
  ColumnVector vec;
  vec.type = type;
  vec.reserve(in.rows());
  for (size_t r = 0; r < in.rows(); ++r) emit(in, r, &vec);
  ctx->ChargeValues(in.rows());
  in.AddColumn(name, std::move(vec));
  op.AddRows(in.rows());
  return in;
}

}  // namespace cloudiq
