#ifndef CLOUDIQ_EXEC_BATCH_H_
#define CLOUDIQ_EXEC_BATCH_H_

#include <cassert>
#include <string>
#include <vector>

#include "columnar/value.h"

namespace cloudiq {

// A named collection of equal-length column vectors — the unit of data
// flow between executor operators.
struct Batch {
  std::vector<std::string> names;
  std::vector<ColumnVector> columns;

  size_t rows() const { return columns.empty() ? 0 : columns[0].size(); }

  int Col(const std::string& name) const {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  const ColumnVector& column(const std::string& name) const {
    int i = Col(name);
    assert(i >= 0 && "unknown column");
    return columns[i];
  }

  // Convenience accessors (caller guarantees types).
  int64_t Int(const std::string& name, size_t row) const {
    return column(name).ints[row];
  }
  double Double(const std::string& name, size_t row) const {
    return column(name).doubles[row];
  }
  const std::string& Str(const std::string& name, size_t row) const {
    return column(name).strings[row];
  }

  void AddColumn(std::string name, ColumnVector column_data) {
    names.push_back(std::move(name));
    columns.push_back(std::move(column_data));
  }

  // Copies row `row` of every column into `dst` (columns must align).
  void AppendRowTo(Batch* dst, size_t row) const {
    for (size_t c = 0; c < columns.size(); ++c) {
      const ColumnVector& src = columns[c];
      ColumnVector& out = dst->columns[c];
      switch (src.type) {
        case ColumnType::kDouble:
          out.doubles.push_back(src.doubles[row]);
          break;
        case ColumnType::kString:
          out.strings.push_back(src.strings[row]);
          break;
        default:
          out.ints.push_back(src.ints[row]);
      }
    }
  }

  // An empty batch with the same shape.
  Batch EmptyLike() const {
    Batch out;
    out.names = names;
    out.columns.resize(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      out.columns[c].type = columns[c].type;
    }
    return out;
  }
};

}  // namespace cloudiq

#endif  // CLOUDIQ_EXEC_BATCH_H_
