#ifndef CLOUDIQ_EXEC_EXPLAIN_H_
#define CLOUDIQ_EXEC_EXPLAIN_H_

#include <string>

#include "exec/executor.h"

namespace cloudiq {

// EXPLAIN ANALYZE over an executed QueryContext: one row per operator
// call (in execution order) with rows, batches, sim-time, object-store
// requests, OCM hit rate and USD from that operator's ledger entry, plus
// a query-total footer that folds in query-level work (commit flushes,
// background uploads, compute charged by the harness). Call after the
// query — and ideally its commit — has run under the query's attribution
// scope.
std::string FormatExplainAnalyze(QueryContext* ctx);

// EXPLAIN WHATIF: the scan planner's decision trail — every candidate it
// priced (pull vs. push, plus advisory reader-node placements) with
// predicted request-USD and a per-stall-class latency decomposition, the
// winner and the deciding estimate. Called after execution it also scores
// the prediction against what the ledger actually billed to the same
// (query, operator) keys.
std::string FormatExplainWhatIf(QueryContext* ctx);

}  // namespace cloudiq

#endif  // CLOUDIQ_EXEC_EXPLAIN_H_
