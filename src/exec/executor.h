#ifndef CLOUDIQ_EXEC_EXECUTOR_H_
#define CLOUDIQ_EXEC_EXECUTOR_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "columnar/table_reader.h"
#include "common/result.h"
#include "costopt/chooser.h"
#include "costopt/whatif.h"
#include "exec/batch.h"
#include "exec/morsel.h"
#include "ndp/ndp_protocol.h"
#include "sim/environment.h"
#include "txn/transaction_manager.h"

namespace cloudiq {

// Execution context for one query: tracks the transaction, opens table
// readers, and accounts CPU work onto the node's simulated clock with the
// node's intra-query parallelism. Operators charge a per-value cost; scans
// additionally charge per decoded byte.
class QueryContext {
 public:
  struct Options {
    double cpu_per_value = 1.2e-9;       // seconds per value touched
    double cpu_per_decoded_byte = 2e-9;  // decode/decompress cost
    // Near-data processing: whether range scans may be evaluated inside
    // the object store (kAuto picks per scan with a bytes-moved
    // estimate; see PlanNdpScan in executor.cc).
    ndp::NdpMode ndp_mode = ndp::NdpMode::kOff;
    // kAuto pushes down when the estimated bytes returned by the store
    // are below this fraction of the bytes a pull would move — the
    // margin covers the per-request surcharge and estimate error.
    double ndp_auto_threshold = 0.5;
    // Cost-intelligent planning (src/costopt/). kCostBlind keeps the
    // bytes-moved heuristic in charge; the other policies hand the
    // pushdown-vs-pull decision to the cost model's USD/latency
    // estimates under the SLO / budget below.
    costopt::PlanPolicy cost_policy = costopt::PlanPolicy::kCostBlind;
    double slo_seconds = 0;       // <= 0: no latency SLO
    double budget_left_usd = -1;  // < 0: unlimited remaining budget
    // Regression/bench switch: reprice pulls as if every page were a
    // cold object-store GET — the pre-costopt planner bug (warm scans
    // pushed down at a loss). Kept so bench_costopt can quantify the
    // fix and tests can pin the old behaviour down.
    bool ndp_assume_cold = false;
    // Morsel-driven parallelism (src/exec/morsel.h): execution mode,
    // worker-thread count for kNative, and target candidate rows per
    // morsel / row chunk. The *simulated* run — clock, ledger, stall
    // profile, results — is identical across modes and worker counts;
    // only host wall time differs (see DESIGN.md §5j).
    ExecMode exec_mode = ExecMode::kSim;
    int exec_workers = 1;
    uint64_t morsel_rows = 16384;
  };

  QueryContext(TransactionManager* txn_mgr, Transaction* txn,
               SystemStore* system)
      : QueryContext(txn_mgr, txn, system, Options()) {}
  QueryContext(TransactionManager* txn_mgr, Transaction* txn,
               SystemStore* system, Options options)
      : txn_mgr_(txn_mgr), txn_(txn), system_(system), options_(options) {}

  // Loads a table's metadata (per-segment zone maps etc.). When a meta
  // provider is installed (the Database facade caches metadata after the
  // first open), repeated opens avoid the system-dbspace round trip — in
  // a multiplex, table metadata lives on the *shared* EFS volume, so this
  // is the difference between catalog reads scaling with queries or not.
  using MetaProvider = std::function<Result<TableMeta>(uint64_t table_id)>;
  void set_meta_provider(MetaProvider provider) {
    meta_provider_ = std::move(provider);
  }

  Result<TableReader> OpenTable(uint64_t table_id) {
    if (meta_provider_) {
      CLOUDIQ_ASSIGN_OR_RETURN(TableMeta meta, meta_provider_(table_id));
      return TableReader(txn_mgr_, txn_, std::move(meta));
    }
    return TableReader::Open(txn_mgr_, txn_, system_, table_id);
  }

  // Charges `values` touched at the per-value rate; applied to the clock
  // with the node's vCPU parallelism.
  void ChargeValues(uint64_t values);
  void ChargeDecodedBytes(uint64_t bytes);

  // Per-morsel charge inside a parallel section: books the values at the
  // per-value rate and profiles the resulting clock advance as a
  // kCpuExec lane of the open parallel section, WITHOUT a step check
  // (the section defers stepping to its end — see ScopedParallelSection).
  // Called from the coordinator's fixed charge loop only, never from
  // worker threads.
  void ChargeMorselValues(uint64_t values);

  // --- cooperative stepping ------------------------------------------------
  // When a hook is installed, execution is sliced into resumable steps:
  // the executor invokes it at operator boundaries and after every CPU
  // charge, and the hook may suspend the query (the workload engine parks
  // the query's fiber so other sessions interleave on the sim clock).
  // Without a hook queries run straight through, as before.
  using StepHook = std::function<void(const char* where)>;
  void set_step_hook(StepHook hook) { step_hook_ = std::move(hook); }
  // Deferred inside a parallel section: a fiber's parallel section must
  // suspend and resume as one unit (the workload engine swaps the stall
  // profiler's frame around every fiber resume, which must not happen
  // with a parallel node open on the stack), so steps inside a section
  // are swallowed and ScopedParallelSection fires exactly one step after
  // the section closes.
  void CheckStep(const char* where) {
    if (parallel_depth_ > 0) return;
    if (step_hook_) step_hook_(where);
  }
  void BeginParallelSection() { ++parallel_depth_; }
  void EndParallelSection() { --parallel_depth_; }

  // --- attribution ---------------------------------------------------------
  // Stamps this query's identity (Database::NewQueryContext draws the id
  // from the cluster ledger; the node is implied by the context). The
  // context does NOT install itself — callers wrap execution in a
  // ScopedQueryAttribution so commit-time flushes are also covered.
  void SetAttribution(uint64_t query_id, std::string tag) {
    attr_.query_id = query_id;
    attr_.operator_id = -1;
    attr_.node_id = node()->trace_pid();
    attr_.tag = std::move(tag);
  }
  const AttributionContext& attribution() const { return attr_; }
  CostLedger& ledger() { return node()->telemetry().ledger(); }

  // Per-operator execution stats backing EXPLAIN ANALYZE. Every operator
  // call registers itself (ids are dense, in call order) and reports rows
  // and sim-time through OperatorScope.
  struct OperatorStats {
    std::string name;
    uint64_t rows = 0;
    uint64_t batches = 0;
    double sim_seconds = 0;
  };
  int RegisterOperator(std::string name) {
    operators_.push_back(OperatorStats{std::move(name), 0, 0, 0});
    return static_cast<int>(operators_.size()) - 1;
  }
  OperatorStats& operator_stats(int id) { return operators_[id]; }
  const std::vector<OperatorStats>& operators() const { return operators_; }

  TransactionManager* txn_mgr() { return txn_mgr_; }
  Transaction* txn() { return txn_; }
  NodeContext* node() { return txn_mgr_->storage().node(); }
  const Options& options() const { return options_; }

  // Per-tenant constraints for the plan chooser, stamped after
  // construction (the workload engine knows the tenant's SLO and
  // remaining budget only at dispatch time).
  void SetCostConstraints(costopt::PlanPolicy policy, double slo_seconds,
                          double budget_left_usd) {
    options_.cost_policy = policy;
    options_.slo_seconds = slo_seconds;
    options_.budget_left_usd = budget_left_usd;
  }

  // The query's plan decision trail: every candidate the scan planner
  // priced, the winner and the deciding estimate — what EXPLAIN WHATIF
  // prints and the prediction-error tracker compares with the ledger.
  costopt::WhatIfLog& whatif() { return whatif_; }
  const costopt::WhatIfLog& whatif() const { return whatif_; }

 private:
  TransactionManager* txn_mgr_;
  Transaction* txn_;
  SystemStore* system_;
  Options options_;
  MetaProvider meta_provider_;
  StepHook step_hook_;
  int parallel_depth_ = 0;
  AttributionContext attr_;
  std::vector<OperatorStats> operators_;
  costopt::WhatIfLog whatif_;
};

// Installs a query's attribution on the cluster ledger for the scope's
// lifetime. Wrap the whole Begin..Commit window so commit flushes and
// OCM promotions are charged to the query, not left unattributed.
class ScopedQueryAttribution {
 public:
  explicit ScopedQueryAttribution(QueryContext* ctx)
      : scope_(&ctx->ledger(), ctx->attribution()) {}

 private:
  ScopedAttribution scope_;
};

// One operator invocation: registers itself with the QueryContext,
// narrows the ledger attribution to its operator id, and on destruction
// records the operator's sim-time (the clock advances inside via charged
// CPU work and storage I/O). Operators report output rows via AddRows.
// Also opens a stall-profiler scope pinned to the operator's attribution:
// I/O and wait charges inside land on the operator's stall entry under
// their own wait classes, and the unclaimed remainder (charged CPU work)
// books as kCpuExec.
class OperatorScope {
 public:
  OperatorScope(QueryContext* ctx, std::string name);
  ~OperatorScope();
  OperatorScope(const OperatorScope&) = delete;
  OperatorScope& operator=(const OperatorScope&) = delete;

  void AddRows(uint64_t rows) { ctx_->operator_stats(op_id_).rows += rows; }

 private:
  QueryContext* ctx_;
  int op_id_;
  SimTime start_;
  ScopedAttribution scope_;
  // Declared after scope_: opens after the operator attribution is
  // installed (so the residual pins to this operator) and closes before
  // it is restored.
  ScopedStall stall_;
};

// One parallel region of an operator (a morsel batch): opens a stall-
// profiler parallel section so the coordinator's per-morsel kCpuExec
// charges land as lanes of this section (disjoint windows telescoping to
// the section's elapsed time, so EndParallel registers them unscaled and
// conservation stays exact), and defers fiber step checks so the section
// suspends/resumes as one unit.
//
// Call Finish() at the end of the happy path: it closes the section and
// fires the one deferred scheduler step. The destructor only closes the
// section (no step) so an error-return unwind never re-enters the fiber
// — StepFiber::Yield can throw its cancel tag, which must not escape a
// destructor.
class ScopedParallelSection {
 public:
  explicit ScopedParallelSection(QueryContext* ctx) : ctx_(ctx) {
    ctx_->BeginParallelSection();
    ctx_->node()->telemetry().profiler().BeginParallel(
        ctx_->node()->clock().now());
  }
  ~ScopedParallelSection() { Close(); }
  ScopedParallelSection(const ScopedParallelSection&) = delete;
  ScopedParallelSection& operator=(const ScopedParallelSection&) = delete;

  void Finish() {
    Close();
    ctx_->CheckStep("parallel_section");
  }

 private:
  void Close() {
    if (closed_) return;
    closed_ = true;
    ctx_->node()->telemetry().profiler().EndParallel(
        ctx_->node()->clock().now());
    ctx_->EndParallelSection();
  }

  QueryContext* ctx_;
  bool closed_ = false;
};

// Zone-map-prunable scan predicate: int-family column in [lo, hi].
struct ScanRange {
  std::string column;
  int64_t lo;
  int64_t hi;
};

// Scans `columns` of the table, prefetching pages in parallel. When
// `range` is given, partitions and pages are pruned with partition bounds
// and zone maps, and rows outside the range are filtered out.
Result<Batch> ScanTable(QueryContext* ctx, TableReader* reader,
                        const std::vector<std::string>& columns,
                        const std::optional<ScanRange>& range = {});

// Index-assisted scan: rows of one partition whose ids are in `row_ids`.
Result<Batch> ScanRowIds(QueryContext* ctx, TableReader* reader,
                         size_t partition,
                         const std::vector<std::string>& columns,
                         const IntervalSet& row_ids);

// Row-wise filter.
Batch FilterBatch(QueryContext* ctx, const Batch& in,
                  const std::function<bool(const Batch&, size_t)>& keep);

enum class JoinType { kInner, kLeftSemi, kLeftAnti };

// Hash join on int64 keys. Inner joins emit left columns followed by the
// right batch's non-key columns (right key dropped; name collisions keep
// the left column). Semi/anti joins emit left columns only.
Result<Batch> HashJoin(QueryContext* ctx, const Batch& left,
                       const std::string& left_key, const Batch& right,
                       const std::string& right_key, JoinType type);

// Aggregations.
enum class AggOp { kSum, kCount, kMin, kMax, kAvg };
struct AggSpec {
  AggOp op;
  std::string column;  // ignored for kCount
  std::string as;
};

// Hash aggregate grouped by `keys` (empty = single global group).
Result<Batch> HashAggregate(QueryContext* ctx, const Batch& in,
                            const std::vector<std::string>& keys,
                            const std::vector<AggSpec>& aggs);

struct SortKey {
  std::string column;
  bool ascending = true;
};

// Sorts (optionally truncating to `limit` rows).
Batch SortBatch(QueryContext* ctx, Batch in,
                const std::vector<SortKey>& sort_keys, size_t limit = 0);

// Appends a computed column.
Batch WithComputedColumn(
    QueryContext* ctx, Batch in, const std::string& name, ColumnType type,
    const std::function<void(const Batch&, size_t, ColumnVector*)>& emit);

}  // namespace cloudiq

#endif  // CLOUDIQ_EXEC_EXECUTOR_H_
