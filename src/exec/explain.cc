#include "exec/explain.h"

#include <cstdio>

#include "telemetry/stall_profiler.h"

namespace cloudiq {

namespace {

// The operator's heaviest wait class other than kCpuExec ("-" when the
// operator never waited).
const char* TopWaitName(const StallProfiler::Entry& e) {
  int best = -1;
  for (int i = 1; i < kNumWaitClasses; ++i) {
    if (e.ns[i] > 0 && (best < 0 || e.ns[i] > e.ns[best])) best = i;
  }
  return best < 0 ? "-" : WaitClassName(static_cast<WaitClass>(best));
}

}  // namespace

std::string FormatExplainAnalyze(QueryContext* ctx) {
  const CostLedger& ledger = ctx->ledger();
  const LedgerPrices& prices = ledger.prices();
  const AttributionContext& attr = ctx->attribution();
  const StallProfiler& profiler = ctx->node()->telemetry().profiler();

  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "=== EXPLAIN ANALYZE %s (query %llu, node %u) ===\n",
                attr.tag.empty() ? "(untagged)" : attr.tag.c_str(),
                static_cast<unsigned long long>(attr.query_id),
                attr.node_id);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "%-3s %-28s %10s %7s %11s %8s %8s %10s %9s %-16s\n", "op",
                "name", "rows", "batches", "sim_s", "s3_reqs", "ocm_hit",
                "usd", "wait_s", "top_wait");
  out += buf;

  CostLedger::Entry visible_total;
  const auto entries = ledger.entries();
  const auto stall_entries = profiler.entries();
  const auto& ops = ctx->operators();
  for (size_t id = 0; id < ops.size(); ++id) {
    const QueryContext::OperatorStats& stats = ops[id];
    CostLedger::Entry entry;
    CostLedger::Key key{attr.query_id, static_cast<int32_t>(id),
                        attr.node_id};
    auto it = entries.find(key);
    if (it != entries.end()) entry = it->second;
    visible_total.Fold(entry);
    StallProfiler::Entry stall;
    auto sit = stall_entries.find(key);
    if (sit != stall_entries.end()) stall = sit->second;
    double wait_s =
        (stall.TotalNanos() - stall.ns[static_cast<int>(WaitClass::kCpuExec)]) /
        1e9;
    std::snprintf(buf, sizeof(buf),
                  "%-3zu %-28.28s %10llu %7llu %11.4f %8llu %7.0f%% %10.6f "
                  "%9.4f %-16s\n",
                  id, stats.name.c_str(),
                  static_cast<unsigned long long>(stats.rows),
                  static_cast<unsigned long long>(stats.batches),
                  stats.sim_seconds,
                  static_cast<unsigned long long>(entry.Requests()),
                  entry.OcmHitRate() * 100, entry.TotalUsd(prices), wait_s,
                  TopWaitName(stall));
    out += buf;
  }

  // Query total across operators AND query-level entries (commit-time
  // flushes, background uploads, compute charged by the harness) on every
  // node — the number that must sum to the global CostMeter.
  CostLedger::Entry total = ledger.QueryTotal(attr.query_id);
  std::snprintf(buf, sizeof(buf),
                "%-32s %10s %7s %11.4f %8llu %7.0f%% %10.6f\n",
                "total (incl. query-level work)", "", "",
                total.sim_seconds,
                static_cast<unsigned long long>(total.Requests()),
                total.OcmHitRate() * 100, total.TotalUsd(prices));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "    requests: %llu GET / %llu PUT / %llu DELETE / %llu ranged / "
      "%llu HEAD; throttle stalls %llu (%.4f s); retries %llu+%llu\n",
      static_cast<unsigned long long>(total.gets),
      static_cast<unsigned long long>(total.puts),
      static_cast<unsigned long long>(total.deletes),
      static_cast<unsigned long long>(total.ranged_gets),
      static_cast<unsigned long long>(total.heads),
      static_cast<unsigned long long>(total.throttle_events),
      total.throttle_stall_seconds,
      static_cast<unsigned long long>(total.not_found_retries),
      static_cast<unsigned long long>(total.transient_retries));
  out += buf;
  if (total.selects > 0) {
    // Near-data processing: scans evaluated inside the store ("[ndp]"
    // operators above) and the byte asymmetry that justified pushing.
    std::snprintf(
        buf, sizeof(buf),
        "    ndp: %llu SELECT, %llu B scanned in-store -> %llu B returned\n",
        static_cast<unsigned long long>(total.selects),
        static_cast<unsigned long long>(total.select_scanned_bytes),
        static_cast<unsigned long long>(total.select_returned_bytes));
    out += buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "    cost: $%.6f requests + $%.6f EC2 = $%.6f; buffer %llu/%llu "
      "hit/miss, %llu pages flushed\n",
      total.RequestUsd(prices), total.ec2_usd, total.TotalUsd(prices),
      static_cast<unsigned long long>(total.buffer_hits),
      static_cast<unsigned long long>(total.buffer_misses),
      static_cast<unsigned long long>(total.buffer_flush_pages));
  out += buf;

  // Where the query's sim-time went, by wait class (stall profiler).
  // Classes with no time are omitted; the background tail is deferred
  // OCM work the query enqueued but never waited for.
  StallProfiler::Entry stall_total = profiler.QueryTotal(attr.query_id);
  if (stall_total.TotalNanos() > 0) {
    out += "    stalls:";
    for (int i = 0; i < kNumWaitClasses; ++i) {
      if (stall_total.ns[i] == 0) continue;
      std::snprintf(buf, sizeof(buf), " %s %.4fs",
                    WaitClassName(static_cast<WaitClass>(i)),
                    stall_total.ns[i] / 1e9);
      out += buf;
    }
    if (stall_total.background > 0) {
      std::snprintf(buf, sizeof(buf), " (background %.4fs)",
                    stall_total.background / 1e9);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string FormatExplainWhatIf(QueryContext* ctx) {
  const AttributionContext& attr = ctx->attribution();
  std::string out = costopt::FormatWhatIf(
      ctx->whatif(), attr.tag.empty() ? "(untagged)" : attr.tag);
  const CostLedger& ledger = ctx->ledger();
  costopt::PredictionAccuracy acc = costopt::ComparePredictions(
      ctx->whatif(), ledger.entries(), attr.query_id, ledger.prices());
  if (acc.scans > 0) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "billed request usd: %.6g (abs err %.6g, rel %.3g)\n",
                  acc.billed_usd, acc.abs_error_usd, acc.RelativeError());
    out += buf;
  }
  return out;
}

}  // namespace cloudiq
