#ifndef CLOUDIQ_COSTOPT_PREDICTOR_H_
#define CLOUDIQ_COSTOPT_PREDICTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cloudiq {
namespace costopt {

// Predicts what a query is about to spend before it runs, from what
// queries of the same (tenant, tag) actually billed before — the signal
// predictive admission defers on. Deterministic: the history is fed
// exclusively from completed-query ledger totals (sim-visible state),
// and an unseen tag predicts the configured prior.
class SpendPredictor {
 public:
  explicit SpendPredictor(double prior_usd = 0) : prior_usd_(prior_usd) {}

  void Observe(const std::string& tenant, const std::string& tag,
               double billed_usd) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    Stat& s = history_[std::make_pair(tenant, tag)];
    ++s.count;
    s.total_usd += billed_usd;
  }

  // Mean billed USD of completed (tenant, tag) queries; falls back to the
  // tenant-wide mean, then to the prior, so one expensive tag does not
  // hide behind a fresh label.
  double Predict(const std::string& tenant,
                 const std::string& tag) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = history_.find(std::make_pair(tenant, tag));
    if (it != history_.end() && it->second.count > 0) {
      return it->second.total_usd / static_cast<double>(it->second.count);
    }
    uint64_t count = 0;
    double total = 0;
    for (const auto& [key, stat] : history_) {
      if (key.first != tenant) continue;
      count += stat.count;
      total += stat.total_usd;
    }
    if (count > 0) return total / static_cast<double>(count);
    return prior_usd_;
  }

  uint64_t observations(const std::string& tenant,
                        const std::string& tag) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = history_.find(std::make_pair(tenant, tag));
    return it == history_.end() ? 0 : it->second.count;
  }

  double prior_usd() const { return prior_usd_; }

 private:
  struct Stat {
    uint64_t count = 0;
    double total_usd = 0;
  };

  const double prior_usd_;
  mutable Mutex mu_{lockrank::kSpendPredictor};
  std::map<std::pair<std::string, std::string>, Stat> history_
      GUARDED_BY(mu_);
};

}  // namespace costopt
}  // namespace cloudiq

#endif  // CLOUDIQ_COSTOPT_PREDICTOR_H_
