#include "costopt/chooser.h"

#include <cstdio>

namespace cloudiq {
namespace costopt {
namespace {

std::string Cite(const char* verdict, const PlanEstimate& chosen,
                 const char* clause) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: %s $%.6g, %.6gs predicted (%s)",
                verdict, chosen.name.c_str(), chosen.usd,
                chosen.latency_seconds, clause);
  return buf;
}

int CheapestOf(const std::vector<PlanEstimate>& candidates,
               const std::vector<int>& pool) {
  int best = pool.front();
  for (int i : pool) {
    const PlanEstimate& c = candidates[i];
    const PlanEstimate& b = candidates[best];
    if (c.usd < b.usd ||
        (c.usd == b.usd && c.latency_seconds < b.latency_seconds)) {
      best = i;
    }
  }
  return best;
}

int FastestOf(const std::vector<PlanEstimate>& candidates,
              const std::vector<int>& pool) {
  int best = pool.front();
  for (int i : pool) {
    const PlanEstimate& c = candidates[i];
    const PlanEstimate& b = candidates[best];
    if (c.latency_seconds < b.latency_seconds ||
        (c.latency_seconds == b.latency_seconds && c.usd < b.usd)) {
      best = i;
    }
  }
  return best;
}

}  // namespace

const char* PolicyName(PlanPolicy policy) {
  switch (policy) {
    case PlanPolicy::kCostBlind: return "cost_blind";
    case PlanPolicy::kMinCostUnderSlo: return "min_cost_under_slo";
    case PlanPolicy::kMinLatencyUnderBudget:
      return "min_latency_under_budget";
  }
  return "?";
}

PlanChoice ChoosePlan(const std::vector<PlanEstimate>& candidates,
                      PlanPolicy policy, double slo_seconds,
                      double budget_left_usd) {
  PlanChoice choice;
  std::vector<int> all;
  all.reserve(candidates.size());
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    all.push_back(i);
  }
  switch (policy) {
    case PlanPolicy::kCostBlind:
      // The caller's own heuristic decides; the chooser only names it.
      choice.index = 0;
      choice.reason = "cost_blind: heuristic decides";
      return choice;
    case PlanPolicy::kMinCostUnderSlo: {
      std::vector<int> fits;
      for (int i : all) {
        if (slo_seconds <= 0 ||
            candidates[i].latency_seconds <= slo_seconds) {
          fits.push_back(i);
        }
      }
      if (fits.empty()) {
        choice.index = FastestOf(candidates, all);
        choice.reason = Cite("min_cost_under_slo", candidates[choice.index],
                             "no candidate meets slo; fastest wins");
      } else {
        choice.index = CheapestOf(candidates, fits);
        choice.reason = Cite("min_cost_under_slo", candidates[choice.index],
                             "cheapest within slo");
      }
      return choice;
    }
    case PlanPolicy::kMinLatencyUnderBudget: {
      std::vector<int> fits;
      for (int i : all) {
        if (budget_left_usd < 0 || candidates[i].usd <= budget_left_usd) {
          fits.push_back(i);
        }
      }
      if (fits.empty()) {
        choice.index = CheapestOf(candidates, all);
        choice.reason =
            Cite("min_latency_under_budget", candidates[choice.index],
                 "no candidate fits budget; cheapest wins");
      } else {
        choice.index = FastestOf(candidates, fits);
        choice.reason =
            Cite("min_latency_under_budget", candidates[choice.index],
                 "fastest within budget");
      }
      return choice;
    }
  }
  return choice;
}

}  // namespace costopt
}  // namespace cloudiq
