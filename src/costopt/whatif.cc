#include "costopt/whatif.h"

#include <cmath>
#include <cstdio>

namespace cloudiq {
namespace costopt {
namespace {

void AppendEstimate(std::string* out, const char* kind,
                    const PlanEstimate& est, bool chosen) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "  %s %-10s %c usd %.6g  lat %.6gs (net %.4g ndp %.4g ocm %.4g "
      "cpu %.4g)  nic %.6g B  cold %llu  %s\n",
      kind, est.name.c_str(), chosen ? '*' : ' ', est.usd,
      est.latency_seconds, est.network_seconds, est.ndp_select_seconds,
      est.ocm_fetch_seconds, est.cpu_seconds, est.nic_bytes,
      static_cast<unsigned long long>(est.cold_pages), est.detail.c_str());
  out->append(buf);
}

}  // namespace

double WhatIfLog::PredictedUsd() const {
  double usd = 0;
  for (const WhatIfScan& scan : scans_) {
    if (scan.chosen >= 0 &&
        scan.chosen < static_cast<int>(scan.candidates.size())) {
      usd += scan.candidates[scan.chosen].usd;
    }
  }
  return usd;
}

PredictionAccuracy ComparePredictions(
    const WhatIfLog& log,
    const std::map<CostLedger::Key, CostLedger::Entry>& entries,
    uint64_t query_id, const LedgerPrices& prices) {
  PredictionAccuracy acc;
  for (const WhatIfScan& scan : log.scans()) {
    if (scan.chosen < 0 ||
        scan.chosen >= static_cast<int>(scan.candidates.size())) {
      continue;
    }
    double predicted = scan.candidates[scan.chosen].usd;
    double billed = 0;
    for (const auto& [key, entry] : entries) {
      if (key.query_id == query_id && key.operator_id == scan.op_id) {
        billed += entry.RequestUsd(prices);
      }
    }
    ++acc.scans;
    acc.predicted_usd += predicted;
    acc.billed_usd += billed;
    acc.abs_error_usd += std::fabs(predicted - billed);
  }
  return acc;
}

std::string FormatWhatIf(const WhatIfLog& log, const std::string& label) {
  std::string out = "EXPLAIN WHATIF " + label + "\n";
  if (log.empty()) {
    out += "  (no scan candidates: planner not consulted)\n";
    return out;
  }
  for (const WhatIfScan& scan : log.scans()) {
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%s [op %d] policy=%s\n",
                  scan.op.c_str(), scan.op_id, scan.policy.c_str());
    out += buf;
    for (int i = 0; i < static_cast<int>(scan.candidates.size()); ++i) {
      AppendEstimate(&out, "candidate", scan.candidates[i],
                     i == scan.chosen);
    }
    for (const PlanEstimate& est : scan.placement) {
      AppendEstimate(&out, "placement", est, false);
    }
    out += "  reason: " + scan.reason + "\n";
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "predicted request usd: %.6g\n",
                log.PredictedUsd());
  out += buf;
  return out;
}

}  // namespace costopt
}  // namespace cloudiq
