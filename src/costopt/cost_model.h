#ifndef CLOUDIQ_COSTOPT_COST_MODEL_H_
#define CLOUDIQ_COSTOPT_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/attribution.h"

namespace cloudiq {
namespace costopt {

// The execution resources a candidate plan would run against, reduced to
// plain numbers so the cost model sits below exec/sim in the layering.
// Callers (the executor, benches) fill one from a NodeContext +
// ObjectStoreOptions; the defaults mirror the simulator's defaults so
// unit tests can price plans without an environment.
struct NodeResources {
  int vcpus = 1;
  int io_width = 1;                  // parallel I/O streams the node drives
  double nic_bytes_per_sec = 1.25e8;     // nic_gbps * 1e9 / 8
  double hourly_usd = 0;             // instance price (placement pricing)
  // Object store service model (ObjectStoreOptions).
  double get_base_latency = 0.012;
  double stream_bandwidth = 90e6;    // bytes/sec per connection
  double select_base_latency = 0.030;
  double select_scan_bandwidth = 400e6;
  // Local SSD (OCM) service model (LocalSsdOptions).
  double ssd_base_latency = 0.00012;
  double ssd_read_bandwidth = 2.4e9;  // devices * per-device read bw
  // Executor CPU rates (QueryContext::Options).
  double cpu_per_decoded_byte = 2e-9;
};

// What one scan would do, measured at plan time from sim-visible state
// only (zone maps, blockmap locations, buffer/OCM residency probes) —
// never from wall clocks or post-hoc ledger entries, so the same plan
// input always prices identically.
struct ScanWork {
  // Pull side: pages the pull path would read, split by residency.
  uint64_t pull_pages = 0;
  uint64_t pull_pages_buffer = 0;  // already in the RAM buffer pool
  uint64_t pull_pages_ocm = 0;     // on the local SSD cache
  double pull_bytes = 0;           // encoded-byte estimate of all of them
  // Push side: one SELECT per candidate partition.
  uint64_t push_requests = 0;
  double push_request_bytes = 0;   // serialized NdpRequests (NIC, egress)
  double push_scan_bytes = 0;      // bytes the store-side engine scans
  double push_return_bytes = 0;    // estimated result bytes (selectivity)
};

// One candidate plan, priced: predicted request-USD (the exact arithmetic
// CostLedger::Entry::RequestUsd bills with) and predicted latency,
// decomposed into the stall classes the profiler attributes the real run
// to — so predicted-vs-actual is comparable per class, not just in total.
struct PlanEstimate {
  std::string name;             // "pull", "push", "pull@node2", ...
  double usd = 0;               // predicted request USD
  double ec2_usd = 0;           // compute-time USD (placement candidates)
  double latency_seconds = 0;   // sum of the class legs below
  double network_seconds = 0;   // network_transfer: GETs + result streams
  double ndp_select_seconds = 0;  // server-side scan pipeline
  double ocm_fetch_seconds = 0;   // local SSD reads for warm pages
  double cpu_seconds = 0;         // decode/materialize on the node
  double nic_bytes = 0;         // predicted bytes crossing the node's NIC
  uint64_t cold_pages = 0;      // pages that would be object-store GETs
  std::string detail;           // human hint, e.g. "12/40 pages warm"

  double TotalUsd() const { return usd + ec2_usd; }
};

// Prices candidate plans with the same tables the ledger bills with: the
// LedgerPrices handed in MUST be the environment ledger's, so a correct
// prediction is byte-for-byte the ledger's arithmetic and the per-query
// prediction error is a pure estimation error, never a rate mismatch.
class CostModel {
 public:
  explicit CostModel(const LedgerPrices& prices) : prices_(prices) {}

  // The pull path: object-store GETs for cold pages, SSD reads for
  // OCM-resident pages, free RAM hits, then decode.
  PlanEstimate PricePull(const ScanWork& work,
                         const NodeResources& node) const;

  // The push path: per-partition SELECTs scanned server-side, only the
  // matching values streamed back.
  PlanEstimate PricePush(const ScanWork& work,
                         const NodeResources& node) const;

  // Re-prices `base` (a pull or push estimate's work) as if it ran on
  // `node` instead, adding the compute-time USD at that node's hourly
  // rate — the reader-node placement candidates of EXPLAIN WHATIF.
  PlanEstimate PricePlacement(const ScanWork& work,
                              const NodeResources& node, bool push,
                              const std::string& name) const;

  const LedgerPrices& prices() const { return prices_; }

 private:
  LedgerPrices prices_;
};

}  // namespace costopt
}  // namespace cloudiq

#endif  // CLOUDIQ_COSTOPT_COST_MODEL_H_
