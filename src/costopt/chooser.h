#ifndef CLOUDIQ_COSTOPT_CHOOSER_H_
#define CLOUDIQ_COSTOPT_CHOOSER_H_

#include <string>
#include <vector>

#include "costopt/cost_model.h"

namespace cloudiq {
namespace costopt {

// Per-tenant plan-choice policy, wired from Database::Options /
// WorkloadEngine tenant config through QueryContext into the scan
// planner.
enum class PlanPolicy {
  // The pre-costopt behaviour: the planner's bytes-moved heuristic picks
  // the shape (push iff estimated push bytes < threshold x pull bytes);
  // predicted USD is recorded but never consulted.
  kCostBlind,
  // Cheapest candidate whose predicted latency meets the tenant's SLO;
  // if none does, the fastest candidate (latency is the tie-breaker).
  kMinCostUnderSlo,
  // Fastest candidate whose predicted request USD fits the tenant's
  // remaining budget; if none fits, the cheapest candidate.
  kMinLatencyUnderBudget,
};

const char* PolicyName(PlanPolicy policy);

// The chooser's verdict: which candidate, and the deciding estimate
// spelled out — every plan change on cost must be able to cite this in
// EXPLAIN WHATIF / the run report (cloudiq-costopt-evidence).
struct PlanChoice {
  int index = 0;
  std::string reason;
};

// Picks among `candidates` (never empty) under `policy`. `slo_seconds`
// <= 0 means no SLO (every candidate qualifies); `budget_left_usd` < 0
// means unlimited budget. Deterministic: ties break toward the lower
// index, so candidate order (pull first, push second) is part of the
// contract.
PlanChoice ChoosePlan(const std::vector<PlanEstimate>& candidates,
                      PlanPolicy policy, double slo_seconds,
                      double budget_left_usd);

}  // namespace costopt
}  // namespace cloudiq

#endif  // CLOUDIQ_COSTOPT_CHOOSER_H_
