#include "costopt/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cloudiq {
namespace costopt {
namespace {

// Ceiling division for request rounds over the node's I/O width.
double Rounds(uint64_t requests, int width) {
  if (requests == 0) return 0;
  int w = std::max(1, width);
  return std::ceil(static_cast<double>(requests) / w);
}

std::string ResidencyDetail(const ScanWork& work) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "%llu/%llu pages warm (buffer %llu, ocm %llu)",
                static_cast<unsigned long long>(work.pull_pages_buffer +
                                                work.pull_pages_ocm),
                static_cast<unsigned long long>(work.pull_pages),
                static_cast<unsigned long long>(work.pull_pages_buffer),
                static_cast<unsigned long long>(work.pull_pages_ocm));
  return buf;
}

}  // namespace

PlanEstimate CostModel::PricePull(const ScanWork& work,
                                  const NodeResources& node) const {
  PlanEstimate est;
  est.name = "pull";
  uint64_t warm = work.pull_pages_buffer + work.pull_pages_ocm;
  uint64_t cold = work.pull_pages > warm ? work.pull_pages - warm : 0;
  est.cold_pages = cold;
  // GETs are per-request only — a warm page costs $0 in requests, which
  // is exactly why pricing a warm scan as a cold one pushed it down at a
  // loss before the residency probe existed.
  est.usd = static_cast<double>(cold) / 1000.0 * prices_.get_per_1k;

  double frac = work.pull_pages == 0
                    ? 0
                    : 1.0 / static_cast<double>(work.pull_pages);
  double cold_bytes = work.pull_bytes * frac * cold;
  double ocm_bytes = work.pull_bytes * frac * work.pull_pages_ocm;
  est.nic_bytes = cold_bytes;

  // Cold leg: GET rounds over the node's parallel streams, then the bytes
  // through min(streams, NIC) — the network_transfer stall class.
  double down_bw = std::min(node.nic_bytes_per_sec,
                            node.stream_bandwidth *
                                std::max(1, node.io_width));
  est.network_seconds = Rounds(cold, node.io_width) * node.get_base_latency;
  if (down_bw > 0) est.network_seconds += cold_bytes / down_bw;
  // Warm-on-SSD leg: the ocm_fetch stall class.
  est.ocm_fetch_seconds =
      Rounds(work.pull_pages_ocm, node.io_width) * node.ssd_base_latency;
  if (node.ssd_read_bandwidth > 0) {
    est.ocm_fetch_seconds += ocm_bytes / node.ssd_read_bandwidth;
  }
  // Decode every pulled byte (buffer hits still decode).
  est.cpu_seconds = work.pull_bytes * node.cpu_per_decoded_byte /
                    std::max(1, node.vcpus);
  est.latency_seconds =
      est.network_seconds + est.ocm_fetch_seconds + est.cpu_seconds;
  est.detail = ResidencyDetail(work);
  return est;
}

PlanEstimate CostModel::PricePush(const ScanWork& work,
                                  const NodeResources& node) const {
  PlanEstimate est;
  est.name = "push";
  est.usd = static_cast<double>(work.push_requests) / 1000.0 *
                prices_.select_per_1k +
            work.push_scan_bytes / 1e9 * prices_.select_scanned_per_gb +
            work.push_return_bytes / 1e9 * prices_.select_returned_per_gb;
  est.nic_bytes = work.push_request_bytes + work.push_return_bytes;

  // The executor issues the per-partition SELECTs sequentially, so the
  // scan-pipeline legs add up — the ndp_select stall class.
  est.ndp_select_seconds =
      static_cast<double>(work.push_requests) * node.select_base_latency;
  if (node.select_scan_bandwidth > 0) {
    est.ndp_select_seconds += work.push_scan_bytes /
                              node.select_scan_bandwidth;
  }
  double down_bw = std::min(node.nic_bytes_per_sec, node.stream_bandwidth);
  if (down_bw > 0) {
    est.network_seconds = work.push_return_bytes / down_bw;
  }
  est.cpu_seconds = work.push_return_bytes * node.cpu_per_decoded_byte /
                    std::max(1, node.vcpus);
  est.latency_seconds =
      est.ndp_select_seconds + est.network_seconds + est.cpu_seconds;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu partition selects",
                static_cast<unsigned long long>(work.push_requests));
  est.detail = buf;
  return est;
}

PlanEstimate CostModel::PricePlacement(const ScanWork& work,
                                       const NodeResources& node, bool push,
                                       const std::string& name) const {
  PlanEstimate est = push ? PricePush(work, node) : PricePull(work, node);
  est.name = name;
  // Compute time at this node's rate: latency seconds the instance is
  // busy serving the scan — how a cheaper-but-slower reader trades off.
  est.ec2_usd = est.latency_seconds / 3600.0 * node.hourly_usd;
  return est;
}

}  // namespace costopt
}  // namespace cloudiq
