#ifndef CLOUDIQ_COSTOPT_WHATIF_H_
#define CLOUDIQ_COSTOPT_WHATIF_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "costopt/cost_model.h"

namespace cloudiq {
namespace costopt {

// One scan's what-if record: every candidate the planner priced, the
// winner, and the deciding estimate. op_id is the dense operator id the
// scan registers right after planning, which is what links a prediction
// to the ledger entry the run actually billed under.
struct WhatIfScan {
  std::string op;     // operator name, e.g. "scan lineitem"
  int op_id = -1;     // QueryContext operator id of the scan
  std::string policy;
  std::vector<PlanEstimate> candidates;  // [0]=pull, [1]=push, ...
  std::vector<PlanEstimate> placement;   // advisory per-node pricing
  int chosen = 0;
  std::string reason;
};

// The per-query decision trail behind EXPLAIN WHATIF: appended at plan
// time, read by the formatter, the prediction-error tracker and tests.
// Lives by value inside QueryContext — single-threaded like the rest of
// the context, no locking.
class WhatIfLog {
 public:
  void Add(WhatIfScan scan) { scans_.push_back(std::move(scan)); }
  const std::vector<WhatIfScan>& scans() const { return scans_; }
  bool empty() const { return scans_.empty(); }

  // Predicted request USD of the chosen candidates, summed over scans.
  double PredictedUsd() const;

 private:
  std::vector<WhatIfScan> scans_;
};

// Predicted-vs-billed per query: the chosen candidates' predicted
// request USD against the request USD the ledger billed to the same
// (query, operator) keys. Feeding both from the same LedgerPrices makes
// the gap a pure estimation error.
struct PredictionAccuracy {
  uint64_t scans = 0;
  double predicted_usd = 0;
  double billed_usd = 0;
  double abs_error_usd = 0;  // sum of per-scan |predicted - billed|

  // abs error relative to billed spend (0 when nothing was billed).
  double RelativeError() const {
    return billed_usd > 0 ? abs_error_usd / billed_usd : 0;
  }
  void Fold(const PredictionAccuracy& o) {
    scans += o.scans;
    predicted_usd += o.predicted_usd;
    billed_usd += o.billed_usd;
    abs_error_usd += o.abs_error_usd;
  }
};

PredictionAccuracy ComparePredictions(
    const WhatIfLog& log,
    const std::map<CostLedger::Key, CostLedger::Entry>& entries,
    uint64_t query_id, const LedgerPrices& prices);

// Renders the decision trail (the EXPLAIN WHATIF body). `label` heads
// the output, e.g. "Q6".
std::string FormatWhatIf(const WhatIfLog& log, const std::string& label);

}  // namespace costopt
}  // namespace cloudiq

#endif  // CLOUDIQ_COSTOPT_WHATIF_H_
