#include "multiplex/multiplex.h"

#include <algorithm>

namespace cloudiq {

Multiplex::Multiplex(SimEnvironment* env, int secondary_count,
                     Options options)
    : env_(env), options_(options) {
  Database::Options coord_options = options.db;
  coord_options.node_id = 0;
  coord_options.shared_system_volume = "multiplex-system";
  // The coordinator is a small instance with no instance SSD — no OCM.
  coord_options.enable_ocm =
      options.coordinator_profile.ssd_gb > 0 && options.db.enable_ocm;
  coordinator_ = std::make_unique<Database>(
      env, options.coordinator_profile, coord_options);

  for (int i = 0; i < secondary_count; ++i) {
    Database::Options sec_options = options.db;
    sec_options.node_id = static_cast<NodeId>(i + 1);
    sec_options.shared_system_volume = "multiplex-system";
    if (options.writer_count >= 0 && i >= options.writer_count) {
      sec_options.read_only = true;
    }
    auto secondary = std::make_unique<Database>(
        env, options.secondary_profile, sec_options);

    // Key ranges come from the coordinator via RPC (§3.2). The
    // allocation itself is a transaction on the coordinator: it logs the
    // event before the response returns.
    Database* coord = coordinator_.get();
    Database* sec = secondary.get();
    NodeId node_id = sec_options.node_id;
    secondary->UseRemoteKeyFetcher(
        [this, coord, sec, node_id](uint64_t size, double) {
          Telemetry& telemetry = env_->telemetry();
          SimTime fetch_start = sec->node().clock().now();
          RpcHop(&sec->node(), &coord->node());
          KeyRange range = coord->keygen().AllocateRange(node_id, size);
          TxnLogRecord rec;
          rec.type = TxnLogRecord::Type::kKeygenAllocate;
          rec.node = node_id;
          rec.range_begin = range.begin;
          rec.range_end = range.end;
          SimTime done = coord->node().clock().now();
          (void)coord->txn_mgr().log().Append(
              rec, coord->node().clock().now(), &done);
          coord->node().clock().AdvanceTo(done);
          RpcHop(&coord->node(), &sec->node());
          telemetry.stats().counter("keygen.remote_fetches").Add(1);
          telemetry.stats()
              .histogram("keygen.fetch")
              .Record(sec->node().clock().now() - fetch_start);
          if (telemetry.tracer().enabled()) {
            telemetry.tracer().CompleteSpan(
                sec->node().trace_pid(), kTrackKeygen, "keygen",
                "fetch range (" + std::to_string(size) + " keys)",
                fetch_start, sec->node().clock().now());
          }
          return range;
        });
    secondary->UseRemoteCommitListener(
        [this, coord, sec](NodeId node, const IntervalSet& keys) {
          Telemetry& telemetry = env_->telemetry();
          SimTime notify_start = sec->node().clock().now();
          RpcHop(&sec->node(), &coord->node());
          coord->keygen().OnTransactionCommitted(node, keys);
          TxnLogRecord rec;
          rec.type = TxnLogRecord::Type::kKeygenCommit;
          rec.node = node;
          rec.committed_keys = keys;
          SimTime done = coord->node().clock().now();
          (void)coord->txn_mgr().log().Append(
              rec, coord->node().clock().now(), &done);
          coord->node().clock().AdvanceTo(done);
          RpcHop(&coord->node(), &sec->node());
          telemetry.stats().counter("keygen.commit_notifies").Add(1);
          if (telemetry.tracer().enabled()) {
            telemetry.tracer().CompleteSpan(
                sec->node().trace_pid(), kTrackKeygen, "keygen",
                "commit notify", notify_start, sec->node().clock().now());
          }
        });
    secondaries_.push_back(std::move(secondary));
  }
}

void Multiplex::RpcHop(NodeContext* from, NodeContext* to) {
  {
    MutexLock lock(&mu_);
    ++rpc_count_;
  }
  SimTime t = std::max(from->clock().now(), to->clock().now()) +
              options_.rpc_latency;
  from->clock().AdvanceTo(t);
  to->clock().AdvanceTo(t);
}

Status Multiplex::SyncCatalogs() {
  for (auto& secondary : secondaries_) {
    CLOUDIQ_RETURN_IF_ERROR(secondary->AttachSharedCatalog());
  }
  return Status::Ok();
}

Result<uint64_t> Multiplex::RestartSecondary(int i) {
  Database& secondary = *secondaries_[i];
  NodeId node_id = static_cast<NodeId>(i + 1);

  // The node's volatile state dies with it.
  secondary.txn_mgr().SimulateCrash();
  CLOUDIQ_RETURN_IF_ERROR(secondary.txn_mgr().RecoverAfterCrash());
  secondary.key_cache().DiscardCachedRange();

  // On restart the node RPCs into the coordinator to initiate garbage
  // collection of its outstanding allocations (§3.3): every key in its
  // active set is polled, and objects that exist are deleted. Deletes are
  // idempotent, so ranges already collected by a rollback are re-polled
  // harmlessly.
  RpcHop(&secondary.node(), &coordinator_->node());
  IntervalSet to_poll =
      coordinator_->keygen().TakeActiveSetForRecovery(node_id);
  uint64_t collected = 0;
  NodeContext& cnode = coordinator_->node();
  ObjectStoreIo& io = coordinator_->storage().object_io();
  for (uint64_t key : to_poll.Values()) {
    SimTime done = cnode.clock().now();
    if (io.Exists(key, cnode.clock().now(), &done)) {
      cnode.clock().AdvanceTo(done);
      CLOUDIQ_RETURN_IF_ERROR(io.Delete(key, cnode.clock().now(), &done));
      ++collected;
    }
    cnode.clock().AdvanceTo(done);
  }
  RpcHop(&coordinator_->node(), &secondary.node());
  return collected;
}

}  // namespace cloudiq
