#ifndef CLOUDIQ_MULTIPLEX_MULTIPLEX_H_
#define CLOUDIQ_MULTIPLEX_MULTIPLEX_H_

#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/database.h"
#include "sim/environment.h"

namespace cloudiq {

// A multiplex cluster (§2): one coordinator plus N secondary nodes over
// *shared* storage — the object store for user dbspaces and a shared EFS
// volume for the system dbspace (as the paper's scale-out experiment is
// configured). Implements the coordinator-centric protocols of §3.2/3.3:
//
//  * secondaries obtain object-key ranges via an RPC to the coordinator,
//    which logs the allocation and tracks the node's active set;
//  * commits notify the coordinator so consumed keys leave the active set
//    (rollbacks deliberately do not);
//  * when a secondary restarts after a crash, the coordinator polls the
//    node's entire active set and deletes surviving objects.
class Multiplex {
 public:
  struct Options {
    Database::Options db;
    InstanceProfile coordinator_profile = InstanceProfile::R5Large();
    InstanceProfile secondary_profile = InstanceProfile::M5ad4xlarge();
    double rpc_latency = 0.0005;  // seconds, one way
    // The first `writer_count` secondaries are writers; the rest are
    // reader nodes that cannot modify data (§2). -1 = all writers.
    int writer_count = -1;
  };

  Multiplex(SimEnvironment* env, int secondary_count)
      : Multiplex(env, secondary_count, Options()) {}
  Multiplex(SimEnvironment* env, int secondary_count, Options options);

  Database& coordinator() { return *coordinator_; }
  Database& secondary(int i) { return *secondaries_[i]; }
  int secondary_count() const {
    return static_cast<int>(secondaries_.size());
  }

  // Makes catalogs committed through the shared system dbspace visible on
  // every secondary (readers attach to the current table versions).
  Status SyncCatalogs();

  // Simulates a crash + restart of secondary `i`, running the §3.3
  // recovery protocol: the node recovers its durable state, then the
  // coordinator garbage collects the node's outstanding allocations by
  // polling. Returns the number of orphan objects deleted.
  Result<uint64_t> RestartSecondary(int i);

  // RPC statistics.
  uint64_t rpc_count() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return rpc_count_;
  }

 private:
  // Models one RPC hop: both clocks advance to a common point plus
  // latency.
  void RpcHop(NodeContext* from, NodeContext* to) EXCLUDES(mu_);

  SimEnvironment* env_;
  Options options_;
  std::unique_ptr<Database> coordinator_;
  std::vector<std::unique_ptr<Database>> secondaries_;
  // Guards the RPC counter only; the Databases serialize themselves.
  mutable Mutex mu_{lockrank::kMultiplex};
  uint64_t rpc_count_ GUARDED_BY(mu_) = 0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_MULTIPLEX_MULTIPLEX_H_
