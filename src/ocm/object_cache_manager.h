#ifndef CLOUDIQ_OCM_OBJECT_CACHE_MANAGER_H_
#define CLOUDIQ_OCM_OBJECT_CACHE_MANAGER_H_

#include <cstdint>
#include <deque>
#include <list>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sim/environment.h"
#include "store/cloud_cache.h"
#include "store/object_store_io.h"

namespace cloudiq {

// The Object Cache Manager (§4): a disk-based second-layer cache between
// SAP IQ's RAM buffer manager and the object store, backed by the node's
// locally attached NVMe SSDs.
//
// Semantics implemented from the paper:
//  * read-through: misses go to the object store; the fetched page is
//    returned immediately and cached on the SSD *asynchronously*;
//  * write-back (churn phase): synchronous SSD write, asynchronous upload
//    to the object store; the page enters the LRU only after the upload
//    succeeds, so failed/rolled-back transactions don't pollute the cache;
//  * write-through (commit phase): synchronous upload, asynchronous SSD
//    caching;
//  * FlushForCommit: promotes the committing transaction's queued uploads
//    to the head of the write queue, executes them, and upgrades the
//    transaction's subsequent writes to write-through;
//  * one LRU across reads and writes; eviction frees SSD space;
//  * SSD write failures are ignored (the object store is the source of
//    truth); upload failures are retried and eventually abort the
//    transaction (via ObjectStoreIo);
//  * presence or absence never affects correctness — pages are opaque,
//    already encrypted if encryption is on.
//
// Locking: mu_ guards the LRU index, the write queue and the counters —
// and nothing else. Every simulated I/O (SSD read/write, object-store
// GET/PUT, RunParallel) drains the node executor, which synchronously
// re-enters this class (PumpOne, cache fills), so mu_ is never held
// across one; methods take it in short sections around their own state.
class ObjectCacheManager : public CloudCache {
 public:
  struct Options {
    // Fraction of the node's SSD capacity the cache may use.
    double capacity_fraction = 1.0;
    // Delay before a queued background upload starts (models the
    // background writer picking work up).
    double background_delay = 0.002;
    // The paper's proposed brown-out mitigation (§6 future work):
    // monitor the SSD's backlog and serve cache *hits* from the object
    // store instead when a read would queue behind more than
    // `reroute_backlog_seconds` of pending device work.
    bool reroute_on_pressure = false;
    double reroute_backlog_seconds = 0.010;
  };

  ObjectCacheManager(NodeContext* node, ObjectStoreIo* io)
      : ObjectCacheManager(node, io, Options()) {}
  ObjectCacheManager(NodeContext* node, ObjectStoreIo* io, Options options);

  // --- CloudCache ----------------------------------------------------------
  Result<std::vector<uint8_t>> Read(uint64_t key, SimTime start,
                                    SimTime* completion) override
      EXCLUDES(mu_);
  Status Write(uint64_t key, std::vector<uint8_t> data, WriteMode mode,
               uint64_t txn_id, SimTime start, SimTime* completion) override
      EXCLUDES(mu_);
  void Erase(uint64_t key) override EXCLUDES(mu_);
  Status FlushForCommit(uint64_t txn_id, SimTime start,
                        SimTime* completion) override EXCLUDES(mu_);
  void AbortTxn(uint64_t txn_id) override EXCLUDES(mu_);

  // Plan-time residency probe (CloudCache): true when a Read would be
  // served from the SSD — the key is in the LRU index, or a queued
  // write-back still holds its local copy. Touches neither the LRU nor
  // the stats, and performs no simulated I/O.
  bool Resident(uint64_t key) const override EXCLUDES(mu_);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t background_uploads = 0;
    uint64_t write_through = 0;      // synchronous uploads (commit phase)
    uint64_t commit_promotions = 0;  // uploads executed by FlushForCommit
    uint64_t local_write_errors_ignored = 0;
    uint64_t rerouted_reads = 0;  // hits served from the store (pressure)
  };
  Stats stats() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = Stats();
  }

  uint64_t cached_bytes() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return cached_bytes_ + pending_bytes_;
  }
  size_t write_queue_depth() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return write_queue_.size();
  }

 private:
  struct PendingWrite {
    uint64_t key;
    uint64_t txn_id;
    std::vector<uint8_t> data;
    bool on_ssd;  // local copy exists, awaiting upload success to enter LRU
    // Attribution captured at enqueue time: the background pump charges
    // the upload to the query that dirtied the page, not to whoever
    // happens to be running when the pump drains.
    AttributionContext attr;
    // Enqueue time, so the drain can charge the queue-wait window
    // [enqueued_at, drain start] to kOcmUpload — background stalls must
    // not vanish from the stall breakdown.
    SimTime enqueued_at = 0;
  };

  // Admits `key` (already on SSD) into the LRU index, evicting as needed.
  // Takes mu_ itself: callers arrive from unlocked I/O completions.
  void AdmitToLru(uint64_t key, uint64_t bytes) EXCLUDES(mu_);
  void EvictIfNeeded() REQUIRES(mu_);
  // Executes one queued upload (the background pump).
  void PumpOne(SimTime run_at) EXCLUDES(mu_);
  // Schedules an asynchronous SSD cache fill for a read-through page.
  void ScheduleCacheFill(uint64_t key, std::vector<uint8_t> data,
                         SimTime at) EXCLUDES(mu_);

  NodeContext* node_;
  ObjectStoreIo* io_;
  Options options_;
  double capacity_bytes_;
  Telemetry* telemetry_;
  CostLedger* ledger_;
  StallProfiler* profiler_;
  uint32_t trace_pid_;
  Histogram* hit_latency_;   // SSD-served cache hits
  Histogram* miss_latency_;  // read-throughs to the object store
  // Background tasks scheduled on the node executor can outlive this OCM
  // (e.g. the instance "loses" its cache on a simulated crash and a new
  // OCM is built); they hold a weak reference to this token and become
  // no-ops once the OCM is gone.
  std::shared_ptr<ObjectCacheManager*> liveness_;

  mutable Mutex mu_{lockrank::kObjectCacheManager};

  // LRU over admitted keys (front = most recent).
  std::list<uint64_t> lru_ GUARDED_BY(mu_);
  struct Entry {
    uint64_t bytes;
    std::list<uint64_t>::iterator lru_it;
  };
  std::unordered_map<uint64_t, Entry> index_ GUARDED_BY(mu_);
  uint64_t cached_bytes_ GUARDED_BY(mu_) = 0;

  // Background upload queue (FIFO; FlushForCommit promotes and drains a
  // transaction's entries).
  std::deque<PendingWrite> write_queue_ GUARDED_BY(mu_);
  uint64_t pending_bytes_ GUARDED_BY(mu_) = 0;
  std::set<uint64_t> committing_txns_ GUARDED_BY(mu_);

  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace cloudiq

#endif  // CLOUDIQ_OCM_OBJECT_CACHE_MANAGER_H_
