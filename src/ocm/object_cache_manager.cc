#include "ocm/object_cache_manager.h"

#include <algorithm>
#include <cassert>

#include "common/random.h"

namespace cloudiq {

ObjectCacheManager::ObjectCacheManager(NodeContext* node, ObjectStoreIo* io,
                                       Options options)
    : node_(node),
      io_(io),
      options_(options),
      capacity_bytes_(node->ssd().CapacityBytes() *
                      options.capacity_fraction),
      telemetry_(&node->telemetry()),
      ledger_(&node->telemetry().ledger()),
      profiler_(&node->telemetry().profiler()),
      trace_pid_(node->trace_pid()),
      hit_latency_(&telemetry_->stats().histogram("ocm.hit")),
      miss_latency_(&telemetry_->stats().histogram("ocm.miss")),
      liveness_(std::make_shared<ObjectCacheManager*>(this)) {}

Result<std::vector<uint8_t>> ObjectCacheManager::Read(uint64_t key,
                                                      SimTime start,
                                                      SimTime* completion) {
  std::string ssd_key = FormatObjectKey(key);
  bool hit = false;
  bool reroute = false;
  {
    MutexLock lock(&mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      hit = true;
      ++stats_.hits;
      ledger_->RecordOcmHit();
      // Touch LRU.
      lru_.erase(it->second.lru_it);
      lru_.push_front(key);
      it->second.lru_it = lru_.begin();
      // Cache hit: read from local SSD. Under a flood of asynchronous
      // background writes the SSD's queues back up and this read can take
      // longer than the object store would — the Figure 6 brown-out. The
      // optional mitigation re-routes the read to the object store when
      // the device backlog exceeds the threshold. (BacklogSeconds is a
      // pure queue-depth query; no I/O runs under mu_.)
      reroute = options_.reroute_on_pressure &&
                node_->ssd().BacklogSeconds(start) >
                    options_.reroute_backlog_seconds;
      if (reroute) ++stats_.rerouted_reads;
    } else {
      // A write-back page still awaiting upload is readable from its queue
      // entry (the storage subsystem normally serves such reads from the
      // RAM buffer, but correctness must not depend on that).
      for (const PendingWrite& pw : write_queue_) {
        if (pw.key == key) {
          *completion = start;  // in-memory
          ++stats_.hits;
          ledger_->RecordOcmHit();
          return pw.data;
        }
      }
      ++stats_.misses;
      ledger_->RecordOcmMiss();
    }
  }

  if (hit) {
    if (reroute) {
      if (telemetry_->tracer().enabled()) {
        telemetry_->tracer().Instant(trace_pid_, kTrackOcm, "ocm",
                                     "reroute (SSD pressure)", start);
      }
      Result<std::vector<uint8_t>> rerouted =
          io_->Get(key, start, completion);
      if (rerouted.ok()) hit_latency_->Record(*completion - start);
      return rerouted;
    }
    Result<std::vector<uint8_t>> r =
        node_->ssd().Read(ssd_key, start, completion);
    if (r.ok()) {
      profiler_->Charge(WaitClass::kOcmFetch, start, *completion);
      hit_latency_->Record(*completion - start);
      if (telemetry_->tracer().enabled()) {
        telemetry_->tracer().CompleteSpan(trace_pid_, kTrackOcm, "ocm",
                                          "hit " + FormatObjectKey(key),
                                          start, *completion);
      }
      return r;
    }
    // Local copy unreadable: fall back to the object store; drop the entry.
    Erase(key);
  }

  // Read-through: fetch from the object store, hand the page to the
  // caller, and cache it on the SSD asynchronously.
  CLOUDIQ_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                           io_->Get(key, start, completion));
  miss_latency_->Record(*completion - start);
  if (telemetry_->tracer().enabled()) {
    telemetry_->tracer().CompleteSpan(trace_pid_, kTrackOcm, "ocm",
                                      "miss " + FormatObjectKey(key),
                                      start, *completion);
  }
  ScheduleCacheFill(key, data, *completion);
  return data;
}

bool ObjectCacheManager::Resident(uint64_t key) const {
  MutexLock lock(&mu_);
  if (index_.find(key) != index_.end()) return true;
  for (const PendingWrite& pw : write_queue_) {
    if (pw.key == key) return true;
  }
  return false;
}

void ObjectCacheManager::ScheduleCacheFill(uint64_t key,
                                           std::vector<uint8_t> data,
                                           SimTime at) {
  NodeContext* node = node_;
  std::weak_ptr<ObjectCacheManager*> alive = liveness_;
  AttributionContext attr = ledger_->current();
  node_->executor().Schedule(
      at + options_.background_delay,
      [alive, node, key, at, attr = std::move(attr),
       data = std::move(data)](SimTime run_at) mutable {
        auto token = alive.lock();
        if (!token) return;  // the OCM is gone (instance restart)
        ObjectCacheManager* self = *token;
        ScopedAttribution scope(self->ledger_, std::move(attr));
        // Deferred work consumes no foreground wall time: its queue wait
        // and SSD write book as background (shadow) nanos under the
        // enqueuing query, so cache-fill stalls don't vanish from the
        // breakdown.
        ScopedBackgroundStall bg(self->profiler_);
        self->profiler_->Charge(WaitClass::kOcmFetch, at, run_at);
        self->ledger_->RecordOcmFill();
        SimTime done = run_at;
        uint64_t bytes = data.size();
        Status st = node->ssd().Write(FormatObjectKey(key), std::move(data),
                                      run_at, &done);
        self->profiler_->Charge(WaitClass::kOcmFetch, run_at, done);
        if (!st.ok()) {
          // §4: local cache write failures are ignored.
          MutexLock lock(&self->mu_);
          ++self->stats_.local_write_errors_ignored;
          return;
        }
        self->AdmitToLru(key, bytes);
      });
}

Status ObjectCacheManager::Write(uint64_t key, std::vector<uint8_t> data,
                                 WriteMode mode, uint64_t txn_id,
                                 SimTime start, SimTime* completion) {
  {
    // A transaction that has signalled FlushForCommit writes through from
    // then on (§4).
    MutexLock lock(&mu_);
    if (committing_txns_.count(txn_id) > 0) mode = WriteMode::kWriteThrough;
    if (mode == WriteMode::kWriteThrough) ++stats_.write_through;
  }

  if (mode == WriteMode::kWriteThrough) {
    // Synchronous upload; asynchronous local caching.
    CLOUDIQ_RETURN_IF_ERROR(io_->Put(key, data, start, completion));
    if (telemetry_->tracer().enabled()) {
      telemetry_->tracer().CompleteSpan(
          trace_pid_, kTrackOcm, "ocm",
          "write-through " + FormatObjectKey(key), start, *completion);
    }
    ScheduleCacheFill(key, std::move(data), *completion);
    return Status::Ok();
  }

  // Write-back: synchronous SSD write, asynchronous upload. Latency seen
  // by the caller is the SSD's.
  std::string ssd_key = FormatObjectKey(key);
  bool on_ssd = true;
  Status local = node_->ssd().Write(ssd_key, data, start, completion);
  if (!local.ok()) {
    // Ignore the local error; the upload below is what matters.
    on_ssd = false;
    *completion = start;
  } else {
    profiler_->Charge(WaitClass::kOcmUpload, start, *completion);
  }
  if (telemetry_->tracer().enabled()) {
    telemetry_->tracer().CompleteSpan(trace_pid_, kTrackOcm, "ocm",
                                      "write-back " + FormatObjectKey(key),
                                      start, *completion);
  }
  {
    MutexLock lock(&mu_);
    if (!local.ok()) ++stats_.local_write_errors_ignored;
    pending_bytes_ += data.size();
    write_queue_.push_back(PendingWrite{key, txn_id, std::move(data),
                                        on_ssd, ledger_->current(),
                                        /*enqueued_at=*/*completion});
  }

  // Kick the background pump.
  std::weak_ptr<ObjectCacheManager*> alive = liveness_;
  node_->executor().Schedule(
      *completion + options_.background_delay, [alive](SimTime run_at) {
        if (auto token = alive.lock()) (*token)->PumpOne(run_at);
      });
  return Status::Ok();
}

void ObjectCacheManager::PumpOne(SimTime run_at) {
  PendingWrite pw;
  {
    MutexLock lock(&mu_);
    if (write_queue_.empty()) return;
    pw = std::move(write_queue_.front());
    write_queue_.pop_front();
    pending_bytes_ -= pw.data.size();
    ++stats_.background_uploads;
  }

  // Bill the upload (and any retries inside it) to the enqueuing query.
  ScopedAttribution scope(ledger_, pw.attr);
  // The whole drain — queue wait since enqueue plus the upload itself —
  // books as background (shadow) time under the enqueuing query.
  ScopedBackgroundStall bg(profiler_);
  profiler_->Charge(WaitClass::kOcmUpload, pw.enqueued_at, run_at);
  ledger_->RecordOcmUpload();
  SimTime done = run_at;
  Status st = io_->Put(pw.key, pw.data, run_at, &done);
  if (telemetry_->tracer().enabled()) {
    telemetry_->tracer().CompleteSpan(
        trace_pid_, kTrackOcm, "ocm",
        "bg upload " + FormatObjectKey(pw.key), run_at, done);
  }
  if (!st.ok()) {
    // Upload ultimately failed (ObjectStoreIo already retried): the page
    // is not durable. Drop the local copy; the owning transaction will
    // observe the failure at FlushForCommit / flush time and roll back.
    if (pw.on_ssd) node_->ssd().Erase(FormatObjectKey(pw.key));
    return;
  }
  // Only now does the page enter the LRU (§4's "not added to the LRU list
  // until it has been successfully written to the underlying object
  // store").
  if (pw.on_ssd) AdmitToLru(pw.key, pw.data.size());
}

Status ObjectCacheManager::FlushForCommit(uint64_t txn_id, SimTime start,
                                          SimTime* completion) {
  *completion = start;

  // Pull the committing transaction's queued uploads to the head of the
  // queue, then execute them immediately (prioritizing all previously
  // started background jobs for that transaction).
  std::vector<PendingWrite> mine;
  {
    MutexLock lock(&mu_);
    committing_txns_.insert(txn_id);
    std::deque<PendingWrite> rest;
    for (PendingWrite& pw : write_queue_) {
      if (pw.txn_id == txn_id) {
        pending_bytes_ -= pw.data.size();
        mine.push_back(std::move(pw));
      } else {
        rest.push_back(std::move(pw));
      }
    }
    write_queue_ = std::move(rest);
    stats_.commit_promotions += mine.size();
  }

  // The promoted writes waited in the background queue since enqueue;
  // book that wait as background time under each write's own attribution
  // before the foreground uploads start (the uploads themselves advance
  // the node clock and charge inside the parallel section below).
  for (const PendingWrite& pw : mine) {
    ScopedAttribution attr_scope(ledger_, pw.attr);
    ScopedBackgroundStall bg(profiler_);
    profiler_->Charge(WaitClass::kOcmUpload, pw.enqueued_at, start);
  }

  // Upload in parallel using the node's I/O width.
  std::vector<IoScheduler::Op> ops;
  auto statuses = std::make_shared<std::vector<Status>>(mine.size());
  auto pages = std::make_shared<std::vector<PendingWrite>>(std::move(mine));
  ObjectStoreIo* io = io_;
  CostLedger* ledger = ledger_;
  for (size_t i = 0; i < pages->size(); ++i) {
    ops.push_back([io, ledger, pages, statuses, i](SimTime t) {
      // Promoted uploads keep the attribution they were enqueued under.
      ScopedAttribution scope(ledger, (*pages)[i].attr);
      ledger->RecordOcmUpload();
      SimTime done = t;
      (*statuses)[i] = io->Put((*pages)[i].key, (*pages)[i].data, t, &done);
      return done;
    });
  }
  SimTime before = node_->clock().now();
  node_->clock().AdvanceTo(start);
  node_->io().RunParallel(ops, node_->IoWidth());
  *completion = std::max(node_->clock().now(), before);
  if (telemetry_->tracer().enabled() && !pages->empty()) {
    telemetry_->tracer().CompleteSpan(
        trace_pid_, kTrackOcm, "ocm",
        "flush-for-commit (" + std::to_string(pages->size()) + " uploads)",
        start, *completion);
  }

  for (size_t i = 0; i < pages->size(); ++i) {
    const PendingWrite& pw = (*pages)[i];
    if (!(*statuses)[i].ok()) {
      if (pw.on_ssd) node_->ssd().Erase(FormatObjectKey(pw.key));
      return (*statuses)[i];
    }
    if (pw.on_ssd) AdmitToLru(pw.key, pw.data.size());
  }
  return Status::Ok();
}

void ObjectCacheManager::AbortTxn(uint64_t txn_id) {
  // LocalSsd::Erase is metadata-only (no simulated I/O, no executor
  // drain), so it is safe under mu_.
  MutexLock lock(&mu_);
  committing_txns_.erase(txn_id);
  std::deque<PendingWrite> rest;
  for (PendingWrite& pw : write_queue_) {
    if (pw.txn_id == txn_id) {
      pending_bytes_ -= pw.data.size();
      if (pw.on_ssd) node_->ssd().Erase(FormatObjectKey(pw.key));
    } else {
      rest.push_back(std::move(pw));
    }
  }
  write_queue_ = std::move(rest);
}

void ObjectCacheManager::Erase(uint64_t key) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  cached_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  index_.erase(it);
  node_->ssd().Erase(FormatObjectKey(key));
}

void ObjectCacheManager::AdmitToLru(uint64_t key, uint64_t bytes) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    return;
  }
  lru_.push_front(key);
  index_[key] = Entry{bytes, lru_.begin()};
  cached_bytes_ += bytes;
  EvictIfNeeded();
}

void ObjectCacheManager::EvictIfNeeded() {
  while (cached_bytes_ + pending_bytes_ > capacity_bytes_ && !lru_.empty()) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = index_.find(victim);
    assert(it != index_.end());
    cached_bytes_ -= it->second.bytes;
    index_.erase(it);
    node_->ssd().Erase(FormatObjectKey(victim));
    ++stats_.evictions;
    if (telemetry_->tracer().enabled()) {
      telemetry_->tracer().Instant(trace_pid_, kTrackOcm, "ocm",
                                   "evict " + FormatObjectKey(victim),
                                   node_->clock().now());
    }
  }
}

}  // namespace cloudiq
