#include "engine/database.h"

#include "ndp/ndp_engine.h"

namespace cloudiq {
namespace {
constexpr char kKeygenCheckpointName[] = "keygen";
}  // namespace

Database::Database(SimEnvironment* env, const InstanceProfile& profile,
                   Options options)
    : env_(env),
      options_(options),
      node_(&env->AddNode(profile)),
      system_volume_(
          options.shared_system_volume.empty()
              ? &env->CreateVolume(
                    "system-node" + std::to_string(options.node_id),
                    BlockVolumeOptions::EbsGp2(/*size_gb=*/100))
              : &env->CreateVolume(options.shared_system_volume,
                                   BlockVolumeOptions::EfsStandard(
                                       /*utilized_gb=*/50))),
      system_(system_volume_) {
  // Near-data processing: give the (shared) store its server-side
  // engine. The engine is stateless and const, so one static instance
  // serves every database in the process; re-installing it from a second
  // node of a multiplex is a no-op.
  if (options_.ndp_mode != ndp::NdpMode::kOff) {
    static const ndp::NdpEngine kNdpEngine;
    env->object_store().set_ndp_engine(&kNdpEngine);
  }

  // User dbspace backing.
  StorageSubsystem::Options storage_options = options_.storage;
  storage_options.encrypt_pages = options_.encrypt_pages;
  storage_ = std::make_unique<StorageSubsystem>(node_, &env->object_store(),
                                                storage_options);
  switch (options_.user_storage) {
    case UserStorage::kObjectStore:
      user_space_ =
          storage_->CreateCloudDbSpace("userdb", options_.page_size);
      break;
    case UserStorage::kEbs:
      user_volume_ = &env->CreateVolume(
          "user-ebs-node" + std::to_string(options.node_id),
          BlockVolumeOptions::EbsGp2(options_.user_volume_gb));
      user_space_ = storage_->CreateBlockDbSpace("userdb", user_volume_,
                                                 options_.page_size);
      break;
    case UserStorage::kEfs:
      user_volume_ = &env->CreateVolume(
          "user-efs", BlockVolumeOptions::EfsStandard(
                          options_.user_volume_gb / 2));
      user_space_ = storage_->CreateBlockDbSpace("userdb", user_volume_,
                                                 options_.page_size);
      break;
  }

  // Object Key Generator: this node acts as its own coordinator; every
  // allocation is a bookkeeping event in the transaction log (§3.2).
  keygen_ = ObjectKeyGenerator(options_.keygen);
  key_cache_ = std::make_unique<NodeKeyCache>(
      [this](uint64_t size, double now) {
        KeyRange range = keygen_.AllocateRange(options_.node_id, size);
        TxnLogRecord rec;
        rec.type = TxnLogRecord::Type::kKeygenAllocate;
        rec.node = options_.node_id;
        rec.range_begin = range.begin;
        rec.range_end = range.end;
        SimTime done = now;
        (void)txn_mgr_->log().Append(rec, node_->clock().now(), &done);
        node_->clock().AdvanceTo(done);
        return range;
      },
      options_.key_cache);
  storage_->set_key_source(
      [this](double now) { return key_cache_->NextKey(now); });

  // OCM on the instance SSDs (a pure optimization; §4).
  if (options_.enable_ocm && profile.ssd_gb > 0) {
    ocm_ = std::make_unique<ObjectCacheManager>(
        node_, &storage_->object_io(), options_.ocm);
    storage_->set_cloud_cache(ocm_.get());
  }

  TransactionManager::Options txn_options;
  txn_options.node_id = options_.node_id;
  txn_options.read_only = options_.read_only;
  txn_options.blockmap_fanout = options_.blockmap_fanout;
  if (!options_.shared_system_volume.empty()) {
    // Node-local durable structures must not collide on the shared
    // system dbspace.
    txn_options.name_prefix =
        "node" + std::to_string(options_.node_id) + "/";
  }
  txn_options.buffer_capacity_bytes =
      options_.buffer_capacity_override != 0
          ? options_.buffer_capacity_override
          : static_cast<uint64_t>(profile.ram_gb * 1e9 *
                                  options_.buffer_ram_fraction);
  txn_mgr_ = std::make_unique<TransactionManager>(storage_.get(), &system_,
                                                  txn_options);
  txn_mgr_->set_commit_listener(
      [this](NodeId node_id, const IntervalSet& keys) {
        keygen_.OnTransactionCommitted(node_id, keys);
        TxnLogRecord rec;
        rec.type = TxnLogRecord::Type::kKeygenCommit;
        rec.node = node_id;
        rec.committed_keys = keys;
        SimTime done = node_->clock().now();
        (void)txn_mgr_->log().Append(rec, node_->clock().now(), &done);
        node_->clock().AdvanceTo(done);
      });

  snapshot_mgr_ = std::make_unique<SnapshotManager>(
      node_, &storage_->object_io(), &env->object_store(),
      SnapshotManager::Options{options_.snapshot_retention_seconds});
  storage_->set_delete_interceptor([this](uint64_t key) {
    return snapshot_mgr_->OnPageDropped(key);
  });
}

void Database::UseRemoteKeyFetcher(NodeKeyCache::RangeFetcher fetcher) {
  key_cache_ = std::make_unique<NodeKeyCache>(std::move(fetcher));
  storage_->set_key_source(
      [this](double now) { return key_cache_->NextKey(now); });
}

Status Database::AttachSharedCatalog() {
  // A secondary node attaching to the multiplex: open the shared system
  // dbspace and load the committed catalogs (the same code path as crash
  // recovery — checkpointed state plus log replay).
  table_meta_cache_.clear();
  txn_mgr_->SimulateCrash();
  return txn_mgr_->RecoverAfterCrash();
}

Result<TableMeta> Database::TableMetaFor(uint64_t table_id) {
  auto it = table_meta_cache_.find(table_id);
  if (it != table_meta_cache_.end()) return it->second;
  SimTime done = node_->clock().now();
  CLOUDIQ_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      system_.Get("tablemeta/" + std::to_string(table_id),
                  node_->clock().now(), &done));
  node_->clock().AdvanceTo(done);
  TableMeta meta = TableMeta::Deserialize(bytes);
  table_meta_cache_[table_id] = meta;
  return meta;
}

Status Database::Checkpoint() {
  SimTime done = node_->clock().now();
  CLOUDIQ_RETURN_IF_ERROR(system_.Put(kKeygenCheckpointName,
                                      keygen_.Checkpoint(),
                                      node_->clock().now(), &done));
  node_->clock().AdvanceTo(done);
  return txn_mgr_->Checkpoint();
}

Result<SnapshotManager::SnapshotInfo> Database::TakeSnapshot() {
  // Make the system dbspace image current, then back it (and any
  // conventional user dbspace) up. Cloud dbspaces are never backed up.
  CLOUDIQ_RETURN_IF_ERROR(Checkpoint());
  std::vector<SimBlockVolume*> volumes{system_volume_};
  if (user_volume_ != nullptr) volumes.push_back(user_volume_);
  Result<SnapshotManager::SnapshotInfo> info =
      snapshot_mgr_->TakeSnapshot(keygen_.max_allocated(), volumes);
  // Snapshot barrier: post-snapshot writes must use keys above the
  // recorded watermark so restore GC can be computed as a key range.
  key_cache_->DiscardCachedRange();
  return info;
}

Status Database::RestoreSnapshot(uint64_t snapshot_id) {
  std::vector<SimBlockVolume*> volumes{system_volume_};
  if (user_volume_ != nullptr) volumes.push_back(user_volume_);
  CLOUDIQ_RETURN_IF_ERROR(
      snapshot_mgr_
          ->Restore(snapshot_id, keygen_.max_allocated(), volumes)
          .status());
  // Reopen all durable state from the restored system dbspace.
  table_meta_cache_.clear();
  txn_mgr_->SimulateCrash();
  CLOUDIQ_RETURN_IF_ERROR(txn_mgr_->RecoverAfterCrash());
  return RecoverKeygen(/*collect_active_sets=*/false);
}

Status Database::RecoverKeygen(bool collect_active_sets) {
  SimTime done = node_->clock().now();
  std::vector<uint8_t> checkpoint;
  Result<std::vector<uint8_t>> bytes =
      system_.Get(kKeygenCheckpointName, node_->clock().now(), &done);
  node_->clock().AdvanceTo(done);
  if (bytes.ok()) checkpoint = std::move(bytes).value();

  std::vector<KeygenLogRecord> log;
  for (const TxnLogRecord& rec : txn_mgr_->log().records()) {
    if (rec.type == TxnLogRecord::Type::kKeygenAllocate) {
      KeygenLogRecord k;
      k.type = KeygenLogRecord::Type::kAllocate;
      k.node = rec.node;
      k.begin = rec.range_begin;
      k.end = rec.range_end;
      log.push_back(std::move(k));
    } else if (rec.type == TxnLogRecord::Type::kKeygenCommit) {
      KeygenLogRecord k;
      k.type = KeygenLogRecord::Type::kCommit;
      k.node = rec.node;
      k.committed = rec.committed_keys;
      log.push_back(std::move(k));
    }
  }
  keygen_ = ObjectKeyGenerator::Recover(checkpoint, log);
  key_cache_->DiscardCachedRange();

  if (collect_active_sets) {
    // Writer-restart GC (§3.3 / Table 1 clock 150): poll every key in
    // this node's active set; delete the objects that exist.
    IntervalSet to_poll =
        keygen_.TakeActiveSetForRecovery(options_.node_id);
    for (uint64_t key : to_poll.Values()) {
      done = node_->clock().now();
      if (storage_->object_io().Exists(key, node_->clock().now(), &done)) {
        node_->clock().AdvanceTo(done);
        CLOUDIQ_RETURN_IF_ERROR(storage_->object_io().Delete(
            key, node_->clock().now(), &done));
      }
      node_->clock().AdvanceTo(done);
    }
  }
  return Status::Ok();
}

Status Database::CrashAndRecover() {
  table_meta_cache_.clear();
  txn_mgr_->SimulateCrash();
  if (ocm_ != nullptr) {
    // Instance storage does not survive the instance: rebuild the OCM.
    ocm_ = std::make_unique<ObjectCacheManager>(
        node_, &storage_->object_io(), options_.ocm);
    storage_->set_cloud_cache(ocm_.get());
  }
  CLOUDIQ_RETURN_IF_ERROR(txn_mgr_->RecoverAfterCrash());
  return RecoverKeygen(/*collect_active_sets=*/true);
}

uint64_t Database::UserBytesAtRest() const {
  if (options_.user_storage == UserStorage::kObjectStore) {
    return env_->object_store().LiveBytes();
  }
  return user_volume_->StoredBytes();
}

}  // namespace cloudiq
