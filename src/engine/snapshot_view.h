#ifndef CLOUDIQ_ENGINE_SNAPSHOT_VIEW_H_
#define CLOUDIQ_ENGINE_SNAPSHOT_VIEW_H_

#include <memory>

#include "engine/database.h"

namespace cloudiq {

// A read-only view over a past snapshot *without restoring the database*
// — the first item of the paper's future work (§8). It works because of
// the two properties §5 already establishes: the pages a snapshot
// references are retained on the object store for the retention period
// (deferred deletion), and the snapshot's backup carries the full system
// dbspace image (catalog + table metadata). The view reconstructs that
// image on a private scratch volume, pins a read transaction whose
// snapshot is the historical catalog, and serves queries against the
// retained pages — concurrent with live traffic on the same database.
//
//   auto view = SnapshotView::Open(&db, snapshot_id);
//   QueryContext ctx = (*view)->NewQueryContext();
//   Result<TableReader> t = (*view)->OpenTable(table_id);
//   ... ScanTable(&ctx, &*t, ...) sees the data as of the snapshot ...
//
// Views are only supported for databases whose user dbspace is a cloud
// dbspace: conventional block dbspaces reuse freed blocks, so historical
// locations are not stable there. A view stays valid for the snapshot's
// retention period.
class SnapshotView {
 public:
  ~SnapshotView();

  SnapshotView(const SnapshotView&) = delete;
  SnapshotView& operator=(const SnapshotView&) = delete;

  static Result<std::unique_ptr<SnapshotView>> Open(Database* db,
                                                    uint64_t snapshot_id);

  // The historical catalog the view resolves tables against.
  const IdentityCatalog& catalog() const { return catalog_; }
  const SnapshotManager::SnapshotInfo& info() const { return info_; }

  // Opens a table as of the snapshot.
  Result<TableReader> OpenTable(uint64_t table_id);

  // A query context resolving table metadata from the snapshot image.
  QueryContext NewQueryContext();

 private:
  SnapshotView(Database* db, SnapshotManager::SnapshotInfo info);

  Database* db_;
  SnapshotManager::SnapshotInfo info_;
  // Scratch reconstruction of the snapshot's system dbspace. unique_ptr:
  // the SystemStore holds a pointer to the volume.
  std::unique_ptr<SimBlockVolume> image_volume_;
  std::unique_ptr<SystemStore> image_system_;
  IdentityCatalog catalog_;
  Transaction* txn_ = nullptr;  // pinned read transaction
};

}  // namespace cloudiq

#endif  // CLOUDIQ_ENGINE_SNAPSHOT_VIEW_H_
