#ifndef CLOUDIQ_ENGINE_CONSISTENCY_CHECK_H_
#define CLOUDIQ_ENGINE_CONSISTENCY_CHECK_H_

#include <string>
#include <vector>

#include "engine/database.h"

namespace cloudiq {

// Result of a full-database consistency audit.
struct ConsistencyReport {
  // Reachability: every page the committed catalog can reach.
  uint64_t objects_checked = 0;     // storage objects (tables/indexes)
  uint64_t pages_checked = 0;       // blockmap nodes + data pages
  uint64_t unreadable_pages = 0;    // read or checksum failures
  // Leaks: live cloud objects that no catalog path reaches and that the
  // snapshot manager does not own.
  uint64_t leaked_objects = 0;
  std::vector<std::string> problems;  // human-readable findings

  bool ok() const { return unreadable_pages == 0 && leaked_objects == 0; }
};

// Audits `db`: walks the committed catalog, faults in every blockmap and
// verifies every reachable page decodes with a valid checksum, then
// cross-checks the object store's live set against
// (reachable ∪ snapshot-retained ∪ bookkeeping) to find leaks.
//
// This is the tool the GC-completeness property tests use in anger, and
// what an operator would run after an incident. It performs real
// (simulated) I/O.
Result<ConsistencyReport> CheckConsistency(Database* db);

}  // namespace cloudiq

#endif  // CLOUDIQ_ENGINE_CONSISTENCY_CHECK_H_
