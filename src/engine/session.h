#ifndef CLOUDIQ_ENGINE_SESSION_H_
#define CLOUDIQ_ENGINE_SESSION_H_

#include <string>
#include <utility>

#include "engine/database.h"

namespace cloudiq {

// One tenant's connection to a database node. A Database serves many
// sessions; each session stamps the queries it opens with its tenant so
// the cost ledger and the run report roll work up per tenant. The
// workload engine (src/workload/) opens a session per admitted query
// job, but sessions are equally usable standalone:
//
//   Session s = db.OpenSession("acme");
//   Transaction* txn = db.Begin();
//   QueryContext ctx = s.NewQuery(txn, "Q6");
//   ... run, commit ...
class Session {
 public:
  Session(Database* db, std::string tenant)
      : db_(db), tenant_(std::move(tenant)) {}

  // A query context wired like Database::NewQueryContext, additionally
  // registered under this session's tenant in the cluster ledger.
  QueryContext NewQuery(Transaction* txn, const std::string& tag) {
    QueryContext ctx = db_->NewQueryContext(txn, tag);
    if (!tenant_.empty()) {
      db_->env().telemetry().ledger().SetQueryTenant(
          ctx.attribution().query_id, tenant_);
    }
    ++queries_started_;
    return ctx;
  }

  Database* db() { return db_; }
  const std::string& tenant() const { return tenant_; }
  uint64_t queries_started() const { return queries_started_; }

 private:
  Database* db_;
  std::string tenant_;
  uint64_t queries_started_ = 0;
};

inline Session Database::OpenSession(std::string tenant) {
  return Session(this, std::move(tenant));
}

}  // namespace cloudiq

#endif  // CLOUDIQ_ENGINE_SESSION_H_
