#include "engine/consistency_check.h"

#include <set>

namespace cloudiq {

Result<ConsistencyReport> CheckConsistency(Database* db) {
  ConsistencyReport report;
  Transaction* txn = db->Begin();

  // 1. Walk every storage object the committed catalog reaches; verify
  //    every blockmap node and data page reads back (checksums verify on
  //    decode).
  std::set<uint64_t> reachable_cloud_keys;
  const IdentityCatalog catalog = db->txn_mgr().catalog();
  for (const auto& [object_id, identity] : catalog.identities()) {
    Result<std::unique_ptr<StorageObject>> object =
        db->txn_mgr().OpenForRead(txn, object_id);
    if (!object.ok()) {
      report.problems.push_back("object " + std::to_string(object_id) +
                                " unopenable: " +
                                object.status().ToString());
      ++report.unreadable_pages;
      continue;
    }
    ++report.objects_checked;
    std::vector<PhysicalLoc> nodes;
    std::vector<PhysicalLoc> pages;
    Status st = (*object)->blockmap().CollectReachable(&nodes, &pages);
    if (!st.ok()) {
      report.problems.push_back("object " + std::to_string(object_id) +
                                " blockmap walk failed: " + st.ToString());
      ++report.unreadable_pages;
      continue;
    }
    for (PhysicalLoc loc : nodes) {
      ++report.pages_checked;
      if (loc.is_cloud()) reachable_cloud_keys.insert(loc.cloud_key());
      // CollectReachable already faulted the nodes in (decoded +
      // checksummed), so a successful walk vouches for them.
    }
    for (uint64_t page = 0; page < (*object)->page_count(); ++page) {
      ++report.pages_checked;
      Result<BufferManager::PageData> data = (*object)->ReadPage(page);
      if (!data.ok()) {
        report.problems.push_back(
            "object " + std::to_string(object_id) + " page " +
            std::to_string(page) + ": " + data.status().ToString());
        ++report.unreadable_pages;
      }
    }
    for (PhysicalLoc loc : pages) {
      if (loc.is_cloud()) reachable_cloud_keys.insert(loc.cloud_key());
    }
  }
  (void)db->Commit(txn);

  // 2. Leak audit: every live cloud object must be reachable, retained by
  //    the snapshot manager, or a known bookkeeping object.
  std::set<std::string> expected;
  for (uint64_t key : reachable_cloud_keys) {
    expected.insert(db->storage().object_io().StoreKey(key));
  }
  for (uint64_t key : db->snapshot_mgr()->RetainedKeys()) {
    expected.insert(db->storage().object_io().StoreKey(key));
  }
  for (const std::string& key : db->env().object_store().LiveKeys()) {
    if (expected.count(key) > 0) continue;
    // Snapshot-manager metadata and snapshot backups are legitimate
    // non-page objects.
    if (key.rfind("snapmgr/", 0) == 0 || key.rfind("backup/", 0) == 0) {
      continue;
    }
    ++report.leaked_objects;
    report.problems.push_back("leaked object: " + key);
  }
  return report;
}

}  // namespace cloudiq
