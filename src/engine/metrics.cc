#include "engine/metrics.h"

#include <cstdio>

namespace cloudiq {

MetricsSnapshot CollectMetrics(Database* db) {
  MetricsSnapshot m;
  const SimObjectStore::Stats& s3 = db->env().object_store().stats();
  m.s3_puts = s3.puts;
  m.s3_gets = s3.gets;
  m.s3_deletes = s3.deletes;
  m.s3_ranged_gets = s3.ranged_gets;
  m.s3_overwrites = s3.overwrites;
  m.s3_stale_reads = s3.stale_reads;
  m.s3_not_found_races = s3.not_found_races;
  m.s3_throttle_events = s3.throttle_events;
  m.live_objects = db->env().object_store().LiveObjectCount();
  m.live_bytes = db->env().object_store().LiveBytes();

  const StorageSubsystem::Stats& st = db->storage().stats();
  m.pages_written = st.pages_written;
  m.pages_read = st.pages_read;
  m.bytes_written = st.bytes_written;
  m.raw_bytes_written = st.raw_bytes_written;
  m.not_found_retries = db->storage().object_io().stats().not_found_retries;
  m.transient_retries = db->storage().object_io().stats().transient_retries;

  const BufferManager::Stats& buf = db->txn_mgr().buffer().stats();
  m.buffer_hits = buf.hits;
  m.buffer_misses = buf.misses;
  m.churn_flushes = buf.churn_flushes;
  m.commit_flushes = buf.commit_flushes;

  if (db->ocm() != nullptr) {
    m.ocm_enabled = true;
    const ObjectCacheManager::Stats& ocm = db->ocm()->stats();
    m.ocm_hits = ocm.hits;
    m.ocm_misses = ocm.misses;
    m.ocm_evictions = ocm.evictions;
    m.ocm_background_uploads = ocm.background_uploads;
    m.ocm_rerouted_reads = ocm.rerouted_reads;
  }

  const TransactionManager::Stats& txn = db->txn_mgr().stats();
  m.commits = txn.commits;
  m.rollbacks = txn.rollbacks;
  m.gc_pages_deleted = txn.gc_pages_deleted;

  m.max_allocated_key = db->keygen().max_allocated();
  m.key_fetches = db->key_cache().fetch_count();

  m.snapshots = db->snapshot_mgr()->ListSnapshots().size();
  m.retained_pages = db->snapshot_mgr()->retained_page_count();

  m.s3_requests = db->env().cost_meter().S3Requests();
  m.s3_request_usd = db->env().cost_meter().S3RequestUsd();
  m.ec2_usd = db->env().cost_meter().Ec2Usd();
  m.total_compute_usd = db->env().cost_meter().TotalComputeUsd();
  m.s3_monthly_storage_usd =
      db->env().cost_meter().S3MonthlyUsd(m.live_bytes / 1e9);
  m.sim_seconds = db->node().clock().now();

  const StatsRegistry& registry = db->env().telemetry().stats();
  for (const auto& [name, hist] : registry.histograms()) {
    if (hist.count() == 0) continue;
    m.latencies.push_back(MetricsSnapshot::LatencySummary{
        name, hist.count(), hist.p50(), hist.p95(), hist.p99(),
        hist.max()});
  }
  for (const auto& [name, counter] : registry.counters()) {
    if (counter.value() == 0) continue;
    m.counters.emplace_back(name, counter.value());
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    m.gauges.emplace_back(name, gauge.value());
  }
  return m;
}

std::string FormatMetrics(const MetricsSnapshot& m) {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "=== CloudIQ metrics (t=%.2f sim s) ===\n"
      "object store : %llu PUT / %llu GET / %llu DELETE / %llu ranged GET, "
      "%llu live objects (%.2f MB)\n"
      "               overwrites=%llu stale_reads=%llu (policy invariants)\n"
      "               consistency races retried=%llu throttle events=%llu\n"
      "storage      : %llu pages written (%.2f MB raw -> %.2f MB encoded), "
      "%llu pages read\n"
      "               NOT_FOUND retries=%llu transient retries=%llu\n"
      "buffer (RAM) : %llu hits / %llu misses, churn flushes=%llu, "
      "commit flushes=%llu\n"
      "OCM (SSD)    : %s, %llu hits / %llu misses, evictions=%llu, "
      "bg uploads=%llu, rerouted=%llu\n"
      "transactions : %llu commits, %llu rollbacks, GC deleted %llu pages\n"
      "key generator: watermark offset=%llu, range fetches=%llu\n"
      "snapshots    : %llu taken, %llu pages under retention\n"
      "cost         : %llu requests = $%.4f, EC2 $%.4f, "
      "compute total $%.4f, $%.4f/month at rest\n",
      m.sim_seconds, static_cast<unsigned long long>(m.s3_puts),
      static_cast<unsigned long long>(m.s3_gets),
      static_cast<unsigned long long>(m.s3_deletes),
      static_cast<unsigned long long>(m.s3_ranged_gets),
      static_cast<unsigned long long>(m.live_objects), m.live_bytes / 1e6,
      static_cast<unsigned long long>(m.s3_overwrites),
      static_cast<unsigned long long>(m.s3_stale_reads),
      static_cast<unsigned long long>(m.s3_not_found_races),
      static_cast<unsigned long long>(m.s3_throttle_events),
      static_cast<unsigned long long>(m.pages_written),
      m.raw_bytes_written / 1e6, m.bytes_written / 1e6,
      static_cast<unsigned long long>(m.pages_read),
      static_cast<unsigned long long>(m.not_found_retries),
      static_cast<unsigned long long>(m.transient_retries),
      static_cast<unsigned long long>(m.buffer_hits),
      static_cast<unsigned long long>(m.buffer_misses),
      static_cast<unsigned long long>(m.churn_flushes),
      static_cast<unsigned long long>(m.commit_flushes),
      m.ocm_enabled ? "enabled" : "disabled",
      static_cast<unsigned long long>(m.ocm_hits),
      static_cast<unsigned long long>(m.ocm_misses),
      static_cast<unsigned long long>(m.ocm_evictions),
      static_cast<unsigned long long>(m.ocm_background_uploads),
      static_cast<unsigned long long>(m.ocm_rerouted_reads),
      static_cast<unsigned long long>(m.commits),
      static_cast<unsigned long long>(m.rollbacks),
      static_cast<unsigned long long>(m.gc_pages_deleted),
      static_cast<unsigned long long>(m.max_allocated_key - kCloudKeyBase),
      static_cast<unsigned long long>(m.key_fetches),
      static_cast<unsigned long long>(m.snapshots),
      static_cast<unsigned long long>(m.retained_pages),
      static_cast<unsigned long long>(m.s3_requests), m.s3_request_usd,
      m.ec2_usd, m.total_compute_usd, m.s3_monthly_storage_usd);
  std::string report = buf;
  for (const MetricsSnapshot::LatencySummary& lat : m.latencies) {
    // Milliseconds of simulated time; %-13s keeps the two-column layout
    // of the block above.
    std::snprintf(buf, sizeof(buf),
                  "latency      : %-13s n=%-8llu p50=%9.3fms p95=%9.3fms "
                  "p99=%9.3fms max=%9.3fms\n",
                  lat.name.c_str(),
                  static_cast<unsigned long long>(lat.count),
                  lat.p50 * 1e3, lat.p95 * 1e3, lat.p99 * 1e3,
                  lat.max * 1e3);
    report += buf;
  }
  for (const auto& [name, value] : m.counters) {
    std::snprintf(buf, sizeof(buf), "counter      : %-13s %llu\n",
                  name.c_str(), static_cast<unsigned long long>(value));
    report += buf;
  }
  for (const auto& [name, value] : m.gauges) {
    std::snprintf(buf, sizeof(buf), "gauge        : %-13s %g\n",
                  name.c_str(), value);
    report += buf;
  }
  return report;
}

}  // namespace cloudiq
