#include "engine/snapshot_view.h"

namespace cloudiq {

SnapshotView::SnapshotView(Database* db,
                           SnapshotManager::SnapshotInfo info)
    : db_(db), info_(info) {}

SnapshotView::~SnapshotView() {
  if (txn_ != nullptr) {
    (void)db_->Commit(txn_);
  }
}

Result<std::unique_ptr<SnapshotView>> SnapshotView::Open(
    Database* db, uint64_t snapshot_id) {
  if (db->options().user_storage != UserStorage::kObjectStore) {
    return Status::NotSupported(
        "snapshot views require a cloud user dbspace: conventional "
        "dbspaces reuse freed blocks, so historical locations are not "
        "stable");
  }
  CLOUDIQ_ASSIGN_OR_RETURN(SnapshotManager::SnapshotImage image,
                           db->snapshot_mgr()->GetImage(snapshot_id));
  if (image.volumes.empty()) {
    return Status::Corruption("snapshot has no system-dbspace image");
  }

  // NOLINT(cloudiq-raw-new): the constructor is private (factory-only
  // type), so make_unique cannot reach it; ownership transfers to the
  // unique_ptr in the same expression.
  auto view = std::unique_ptr<SnapshotView>(
      new SnapshotView(db, image.info));
  // Reconstruct the system dbspace as of the snapshot on a scratch
  // volume. This is an in-memory copy; it costs no simulated I/O beyond
  // what GetImage's backup download already accounted.
  view->image_volume_ = std::make_unique<SimBlockVolume>(
      BlockVolumeOptions::EbsGp2(/*size_gb=*/100));
  view->image_volume_->RestoreRuns(std::move(image.volumes[0]));
  view->image_system_ =
      std::make_unique<SystemStore>(view->image_volume_.get());
  SimTime done = db->node().clock().now();
  CLOUDIQ_RETURN_IF_ERROR(
      view->image_system_->Open(db->node().clock().now(), &done));
  db->node().clock().AdvanceTo(done);

  CLOUDIQ_ASSIGN_OR_RETURN(
      view->catalog_,
      IdentityCatalog::Load(view->image_system_.get(), "catalog",
                            db->node().clock().now(), &done));
  db->node().clock().AdvanceTo(done);

  // Pin a read transaction and point its snapshot at the historical
  // catalog: every OpenForRead now resolves to the page versions the
  // snapshot captured — all still present on the object store thanks to
  // retention-deferred deletion.
  view->txn_ = db->Begin();
  view->txn_->snapshot = view->catalog_;
  return view;
}

Result<TableReader> SnapshotView::OpenTable(uint64_t table_id) {
  SimTime done = db_->node().clock().now();
  CLOUDIQ_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      image_system_->Get("tablemeta/" + std::to_string(table_id),
                         db_->node().clock().now(), &done));
  db_->node().clock().AdvanceTo(done);
  return TableReader(&db_->txn_mgr(), txn_,
                     TableMeta::Deserialize(bytes));
}

QueryContext SnapshotView::NewQueryContext() {
  QueryContext ctx(&db_->txn_mgr(), txn_, image_system_.get());
  ctx.set_meta_provider([this](uint64_t table_id) -> Result<TableMeta> {
    SimTime done = db_->node().clock().now();
    CLOUDIQ_ASSIGN_OR_RETURN(
        std::vector<uint8_t> bytes,
        image_system_->Get("tablemeta/" + std::to_string(table_id),
                           db_->node().clock().now(), &done));
    db_->node().clock().AdvanceTo(done);
    return TableMeta::Deserialize(bytes);
  });
  return ctx;
}

}  // namespace cloudiq
