#ifndef CLOUDIQ_ENGINE_DATABASE_H_
#define CLOUDIQ_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/table_loader.h"
#include "columnar/table_reader.h"
#include "common/result.h"
#include "exec/executor.h"
#include "keygen/object_key_generator.h"
#include "ndp/ndp_protocol.h"
#include "ocm/object_cache_manager.h"
#include "sim/environment.h"
#include "snapshot/snapshot_manager.h"
#include "store/storage.h"
#include "store/system_store.h"
#include "txn/transaction_manager.h"

namespace cloudiq {

class Session;

// Storage backing for the *user* dbspace — the experimental variable of
// the paper's first evaluation (Table 2/3/4).
enum class UserStorage {
  kObjectStore,  // cloud dbspace on S3-like storage (the paper's design)
  kEbs,          // conventional dbspace on an EBS gp2-like volume
  kEfs,          // conventional dbspace on an EFS-like volume
};

// The public face of CloudIQ on one compute node: wires the simulated
// cloud, the storage subsystem, the Object Key Generator, the buffer and
// transaction managers, optionally the OCM and the snapshot manager, and
// exposes dbspace/table/query/snapshot operations.
//
//   SimEnvironment cloud;                      // the simulated cloud
//   Database::Options opts;
//   opts.user_storage = UserStorage::kObjectStore;
//   Database db(&cloud, InstanceProfile::M5ad4xlarge(), opts);
//
//   Transaction* txn = db.Begin();
//   TableLoader loader = db.NewTableLoader(txn, schema);
//   loader.Append(batch); ...; loader.Finish(db.system());
//   db.Commit(txn);
//
// corresponds to the paper's
//   CREATE DBSPACE userdb USING OBJECT STORE "s3://bucket"
// followed by LOAD TABLE.
class Database {
 public:
  struct Options {
    UserStorage user_storage = UserStorage::kObjectStore;
    bool enable_ocm = true;
    bool encrypt_pages = false;
    uint64_t page_size = 512 * 1024;
    // Fraction of instance RAM given to the buffer manager (the paper
    // reserves 1/2 of RAM).
    double buffer_ram_fraction = 0.5;
    // Non-zero: absolute buffer capacity in bytes, overriding the
    // fraction. Benches use this to recreate the paper's regime where the
    // working set exceeds RAM at simulation-friendly scale factors.
    uint64_t buffer_capacity_override = 0;
    // User volume size (GB) when user_storage is a block volume.
    double user_volume_gb = 1024;
    double snapshot_retention_seconds = 7 * 24 * 3600;
    uint32_t blockmap_fanout = 256;
    NodeId node_id = 0;
    StorageSubsystem::Options storage;
    // Key-generation tuning (ablations sweep these).
    ObjectKeyGenerator::Options keygen;
    NodeKeyCache::Options key_cache;
    // OCM tuning (capacity fraction, brown-out re-routing).
    ObjectCacheManager::Options ocm;
    // Near-data processing: installs an NDP engine on the environment's
    // object store (idempotent across nodes sharing the environment) and
    // stamps query contexts with the mode, so eligible range scans can be
    // evaluated server-side (kAuto: per-scan bytes-moved heuristic).
    ndp::NdpMode ndp_mode = ndp::NdpMode::kOff;
    // Cost-intelligent planning defaults stamped onto every query context
    // (src/costopt/): the plan-choice policy, a node-wide latency SLO for
    // kMinCostUnderSlo, and the cold-pricing regression switch. The
    // workload engine overrides these per tenant at dispatch time via
    // QueryContext::SetCostConstraints.
    costopt::PlanPolicy cost_policy = costopt::PlanPolicy::kCostBlind;
    double cost_slo_seconds = 0;
    bool ndp_assume_cold = false;
    // Morsel-driven executor defaults stamped onto every query context
    // (src/exec/morsel.h): kSim keeps deterministic in-order morsels,
    // kNative drains them on exec_workers real threads. Either way the
    // simulated run is identical; only host wall time differs.
    ExecMode exec_mode = ExecMode::kSim;
    int exec_workers = 1;
    uint64_t exec_morsel_rows = 16384;
    // Reader node of a multiplex: modifications are rejected (§2).
    bool read_only = false;
    // Multiplex: name of the shared system-dbspace volume ("" = private
    // per-node EBS volume). Secondary nodes of a multiplex point at the
    // same EFS volume (§6, fourth experiment).
    std::string shared_system_volume;
  };

  Database(SimEnvironment* env, const InstanceProfile& profile,
           Options options);

  // --- transactions ---------------------------------------------------------
  Transaction* Begin() { return txn_mgr_->Begin(); }
  Status Commit(Transaction* txn) { return txn_mgr_->Commit(txn); }
  Status Rollback(Transaction* txn) { return txn_mgr_->Rollback(txn); }

  // --- tables ----------------------------------------------------------------
  TableLoader NewTableLoader(Transaction* txn, TableSchema schema) {
    return TableLoader(txn_mgr_.get(), txn, user_space_, std::move(schema));
  }
  Result<TableReader> OpenTable(Transaction* txn, uint64_t table_id) {
    CLOUDIQ_ASSIGN_OR_RETURN(TableMeta meta, TableMetaFor(table_id));
    return TableReader(txn_mgr_.get(), txn, std::move(meta));
  }

  // Table metadata, cached after the first load from the system dbspace
  // (invalidated on recovery / attach / restore — whenever the durable
  // catalog may have moved under us).
  Result<TableMeta> TableMetaFor(uint64_t table_id);

  // A query context wired to this database, with metadata caching and a
  // cluster-unique query id drawn from the environment's cost ledger.
  // `tag` labels the query in the ledger / EXPLAIN / run report. Wrap
  // execution + commit in a ScopedQueryAttribution to actually charge
  // storage work to the query.
  QueryContext NewQueryContext(Transaction* txn,
                               const std::string& tag = std::string()) {
    QueryContext::Options qopts;
    qopts.ndp_mode = options_.ndp_mode;
    qopts.cost_policy = options_.cost_policy;
    qopts.slo_seconds = options_.cost_slo_seconds;
    qopts.ndp_assume_cold = options_.ndp_assume_cold;
    qopts.exec_mode = options_.exec_mode;
    qopts.exec_workers = options_.exec_workers;
    qopts.morsel_rows = options_.exec_morsel_rows;
    QueryContext ctx(txn_mgr_.get(), txn, &system_, qopts);
    ctx.set_meta_provider(
        [this](uint64_t table_id) { return TableMetaFor(table_id); });
    ctx.SetAttribution(env_->telemetry().ledger().NextQueryId(), tag);
    return ctx;
  }

  // Re-points the executor defaults stamped by NewQueryContext. The
  // scale-up bench sweeps modes and worker counts over one loaded
  // database instead of reloading per configuration.
  void SetExecOptions(ExecMode mode, int workers) {
    options_.exec_mode = mode;
    options_.exec_workers = workers;
  }

  // A tenant-scoped session on this node (defined in engine/session.h):
  // queries opened through it are registered under `tenant` in the
  // cluster ledger, feeding the per-tenant rollups of the run report and
  // the workload engine's budget/fair-share accounting.
  Session OpenSession(std::string tenant);

  // --- snapshots (§5) ---------------------------------------------------------
  // Takes a near-instantaneous snapshot (applies the key-cache barrier).
  Result<SnapshotManager::SnapshotInfo> TakeSnapshot();
  // Point-in-time restore + catalog reopen.
  Status RestoreSnapshot(uint64_t snapshot_id);

  // --- fault simulation --------------------------------------------------------
  // Crashes and recovers this node: volatile state dropped, durable state
  // reloaded, and this node's outstanding key allocations garbage
  // collected by polling (the §3.3 writer-restart protocol).
  Status CrashAndRecover();

  // --- multiplex wiring --------------------------------------------------------
  // Replaces the local key-range source with a remote one (the
  // coordinator RPC of §3.2). The local ObjectKeyGenerator stops being
  // authoritative on this node.
  void UseRemoteKeyFetcher(NodeKeyCache::RangeFetcher fetcher);
  // Replaces the commit listener (secondaries notify the coordinator).
  void UseRemoteCommitListener(TransactionManager::CommitListener listener) {
    txn_mgr_->set_commit_listener(std::move(listener));
  }
  // Re-reads the shared system dbspace so this node sees catalogs
  // committed by other multiplex nodes.
  Status AttachSharedCatalog();

  // --- maintenance -----------------------------------------------------------
  Status Checkpoint();
  Status RunGarbageCollection() { return txn_mgr_->RunGarbageCollection(); }

  // --- accessors ---------------------------------------------------------------
  SimEnvironment& env() { return *env_; }
  NodeContext& node() { return *node_; }
  SystemStore* system() { return &system_; }
  StorageSubsystem& storage() { return *storage_; }
  TransactionManager& txn_mgr() { return *txn_mgr_; }
  ObjectKeyGenerator& keygen() { return keygen_; }
  NodeKeyCache& key_cache() { return *key_cache_; }
  ObjectCacheManager* ocm() { return ocm_.get(); }
  SnapshotManager* snapshot_mgr() { return snapshot_mgr_.get(); }
  DbSpace* user_space() { return user_space_; }
  const Options& options() const { return options_; }

  // Bytes at rest in the *user* dbspace (for the Table 4 cost figures).
  uint64_t UserBytesAtRest() const;

 private:
  // Rebuilds the Object Key Generator from its checkpoint plus the
  // transaction log; optionally runs the writer-restart active-set GC.
  Status RecoverKeygen(bool collect_active_sets);

  SimEnvironment* env_;
  Options options_;
  NodeContext* node_;
  SimBlockVolume* system_volume_;
  SimBlockVolume* user_volume_ = nullptr;
  SystemStore system_;
  std::unique_ptr<StorageSubsystem> storage_;
  ObjectKeyGenerator keygen_;
  std::unique_ptr<NodeKeyCache> key_cache_;
  std::unique_ptr<ObjectCacheManager> ocm_;
  std::unique_ptr<TransactionManager> txn_mgr_;
  std::unique_ptr<SnapshotManager> snapshot_mgr_;
  DbSpace* user_space_ = nullptr;
  std::map<uint64_t, TableMeta> table_meta_cache_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_ENGINE_DATABASE_H_
