#ifndef CLOUDIQ_ENGINE_METRICS_H_
#define CLOUDIQ_ENGINE_METRICS_H_

#include <string>
#include <utility>
#include <vector>

#include "engine/database.h"

namespace cloudiq {

// Point-in-time operational metrics across every layer of one Database
// node — what an operator's dashboard (or a bug report) would carry.
struct MetricsSnapshot {
  // Object store (cluster-wide).
  uint64_t s3_puts = 0;
  uint64_t s3_gets = 0;
  uint64_t s3_deletes = 0;
  uint64_t s3_ranged_gets = 0;
  uint64_t s3_overwrites = 0;          // must stay 0 under the policy
  uint64_t s3_stale_reads = 0;         // must stay 0 under the policy
  uint64_t s3_not_found_races = 0;     // consistency races (retried)
  uint64_t s3_throttle_events = 0;
  uint64_t live_objects = 0;
  uint64_t live_bytes = 0;

  // Node storage subsystem.
  uint64_t pages_written = 0;
  uint64_t pages_read = 0;
  uint64_t bytes_written = 0;
  uint64_t raw_bytes_written = 0;
  uint64_t not_found_retries = 0;
  uint64_t transient_retries = 0;

  // Buffer manager.
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
  uint64_t churn_flushes = 0;
  uint64_t commit_flushes = 0;

  // OCM (zeros when disabled).
  bool ocm_enabled = false;
  uint64_t ocm_hits = 0;
  uint64_t ocm_misses = 0;
  uint64_t ocm_evictions = 0;
  uint64_t ocm_background_uploads = 0;
  uint64_t ocm_rerouted_reads = 0;

  // Transactions & GC.
  uint64_t commits = 0;
  uint64_t rollbacks = 0;
  uint64_t gc_pages_deleted = 0;

  // Key generation.
  uint64_t max_allocated_key = 0;
  uint64_t key_fetches = 0;

  // Snapshots.
  uint64_t snapshots = 0;
  uint64_t retained_pages = 0;

  // Money. Request/EC2 USD come from the global CostMeter; the total is
  // the run's compute-side bill (storage-at-rest is reported per month).
  uint64_t s3_requests = 0;
  double s3_request_usd = 0;
  double ec2_usd = 0;
  double total_compute_usd = 0;
  double s3_monthly_storage_usd = 0;

  // Simulated wall clock of the node.
  double sim_seconds = 0;

  // Per-operation latency percentiles, folded in from the telemetry
  // registry (one entry per non-empty histogram, e.g. "s3.get",
  // "s3.put", "ocm.hit", "buffer.flush", "txn.commit"). Sim seconds.
  struct LatencySummary {
    std::string name;
    uint64_t count = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double max = 0;
  };
  std::vector<LatencySummary> latencies;

  // Registry counters and gauges not already surfaced above (zero-valued
  // counters are skipped).
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};

// Gathers a snapshot from every layer of `db`.
MetricsSnapshot CollectMetrics(Database* db);

// Formats a snapshot as a human-readable multi-line report.
std::string FormatMetrics(const MetricsSnapshot& snapshot);

}  // namespace cloudiq

#endif  // CLOUDIQ_ENGINE_METRICS_H_
