#include "columnar/value.h"

namespace cloudiq {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
    case ColumnType::kDate:
      return "DATE";
    case ColumnType::kDecimal:
      return "DECIMAL";
  }
  return "UNKNOWN";
}

// Howard Hinnant's days-from-civil algorithm.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

}  // namespace cloudiq
