#ifndef CLOUDIQ_COLUMNAR_SCHEMA_H_
#define CLOUDIQ_COLUMNAR_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/encoding.h"
#include "columnar/value.h"
#include "common/coding.h"

namespace cloudiq {

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
};

// Logical table definition. Tables can be range-partitioned on one column
// (as the paper's TPC-H setup creates them) and carry High-Group indexes
// on selected integer key columns.
struct TableSchema {
  std::string name;
  uint64_t table_id = 0;
  std::vector<ColumnDef> columns;

  // Range partitioning: rows route to the first partition whose upper
  // bound exceeds the partition column's value (+1 overflow partition).
  // -1 = single partition.
  int partition_column = -1;
  std::vector<int64_t> partition_bounds;  // ascending upper bounds

  // Columns with High-Group indexes (must be int-family).
  std::vector<int> hg_index_columns;
  // DATE-typed columns with datepart (year/month) indexes.
  std::vector<int> date_index_columns;
  // String columns with inverted-word TEXT indexes.
  std::vector<int> text_index_columns;

  int ColumnIndex(const std::string& column_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column_name) return static_cast<int>(i);
    }
    return -1;
  }

  size_t partition_count() const {
    return partition_column < 0 ? 1 : partition_bounds.size() + 1;
  }

  std::vector<uint8_t> Serialize() const;
  static TableSchema Deserialize(ByteReader& reader);
};

// Durable per-segment metadata: where a (partition, column) segment's
// pages live and their zone maps (§1: zone maps "early-prune pages that
// are not needed for a query").
struct SegmentMeta {
  uint64_t object_id = 0;
  uint64_t row_count = 0;
  std::vector<ZoneMapEntry> zones;  // one per page, in page order
  std::vector<uint32_t> page_rows;  // rows per page
  // Stored frame bytes per page (EncodePage output; encryption is
  // size-preserving). This is the size S3 SELECT bills as "scanned", so
  // the cost model can price pushdown against real billing instead of a
  // decoded-width guess. Empty for segments written before this field.
  std::vector<uint32_t> page_bytes;

  std::vector<uint8_t> Serialize() const;
  static SegmentMeta Deserialize(ByteReader& reader);
};

// Per-partition metadata: one segment per column plus HG index objects.
struct PartitionMeta {
  uint64_t row_count = 0;
  std::vector<SegmentMeta> columns;
  // Parallel to TableSchema::hg_index_columns: the index storage objects
  // and per-index-page key ranges (for pruning index page reads).
  std::vector<uint64_t> index_objects;
  std::vector<std::vector<std::pair<int64_t, int64_t>>> index_page_ranges;
  // Parallel to TableSchema::date_index_columns.
  std::vector<uint64_t> date_index_objects;
  std::vector<std::vector<std::pair<int64_t, int64_t>>> date_index_ranges;
  // Parallel to TableSchema::text_index_columns.
  std::vector<uint64_t> text_index_objects;
  std::vector<std::vector<std::pair<std::string, std::string>>>
      text_index_ranges;

  std::vector<uint8_t> Serialize() const;
  static PartitionMeta Deserialize(ByteReader& reader);
};

struct TableMeta {
  TableSchema schema;
  std::vector<PartitionMeta> partitions;

  uint64_t TotalRows() const {
    uint64_t n = 0;
    for (const auto& p : partitions) n += p.row_count;
    return n;
  }

  std::vector<uint8_t> Serialize() const;
  static TableMeta Deserialize(const std::vector<uint8_t>& bytes);
};

}  // namespace cloudiq

#endif  // CLOUDIQ_COLUMNAR_SCHEMA_H_
