#ifndef CLOUDIQ_COLUMNAR_TEXT_INDEX_H_
#define CLOUDIQ_COLUMNAR_TEXT_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "common/interval_set.h"
#include "common/result.h"
#include "txn/transaction_manager.h"

namespace cloudiq {

// TEXT index (§1: SAP IQ's niche indexes include "TEXT for text
// indexing"). An inverted word index over a string column: each
// whitespace-delimited token maps to the interval set of rows containing
// it. `WHERE comment LIKE '%special%requests%'` becomes the intersection
// of the "special" and "requests" posting lists followed by an exact
// check of the candidates — instead of scanning every comment.
//
// Storage mirrors the other index types: postings packed into pages of a
// dedicated storage object; per-page [first token, last token] ranges in
// the table metadata prune the pages a probe reads.
class TextIndex {
 public:
  // Splits on non-alphanumeric characters, lower-cases ASCII.
  static std::vector<std::string> Tokenize(const std::string& text);

  class Builder {
   public:
    void Add(const std::string& text, uint64_t row_id);
    const std::map<std::string, IntervalSet>& postings() const {
      return postings_;
    }
    bool empty() const { return postings_.empty(); }

   private:
    std::map<std::string, IntervalSet> postings_;
  };

  static Result<std::vector<std::pair<std::string, std::string>>> Build(
      TransactionManager* txn_mgr, Transaction* txn, uint64_t object_id,
      DbSpace* space, const Builder& builder, uint64_t page_payload_target);

  // Rows containing `word` (exact token match).
  static Result<IntervalSet> LookupWord(
      StorageObject* object,
      const std::vector<std::pair<std::string, std::string>>& page_ranges,
      const std::string& word);

  // Rows containing *all* of `words` (candidate set for LIKE patterns;
  // callers verify ordering/adjacency on the candidates).
  static Result<IntervalSet> LookupAllWords(
      StorageObject* object,
      const std::vector<std::pair<std::string, std::string>>& page_ranges,
      const std::vector<std::string>& words);
};

}  // namespace cloudiq

#endif  // CLOUDIQ_COLUMNAR_TEXT_INDEX_H_
