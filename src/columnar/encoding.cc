#include "columnar/encoding.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/coding.h"

namespace cloudiq {
namespace {

constexpr uint8_t kEncodingNBit = 1;
constexpr uint8_t kEncodingRawDouble = 2;
constexpr uint8_t kEncodingDictString = 3;
constexpr uint8_t kEncodingRawString = 4;
// Sorted runs (load order often is: orderkeys, dates): successive deltas
// are tiny even when the value range is wide, so delta + n-bit beats
// frame-of-reference.
constexpr uint8_t kEncodingDeltaNBit = 5;

}  // namespace

int BitWidthFor(uint64_t max_value) {
  int width = 1;
  while (width < 64 && (max_value >> width) != 0) ++width;
  return width;
}

std::vector<uint8_t> NBitPack(const std::vector<uint64_t>& values,
                              int bit_width) {
  assert(bit_width >= 1 && bit_width <= 64);
  std::vector<uint8_t> out((values.size() * bit_width + 7) / 8, 0);
  size_t bit_pos = 0;
  for (uint64_t v : values) {
    for (int b = 0; b < bit_width; ++b, ++bit_pos) {
      if ((v >> b) & 1) {
        out[bit_pos / 8] |= static_cast<uint8_t>(1u << (bit_pos % 8));
      }
    }
  }
  return out;
}

std::vector<uint64_t> NBitUnpack(const std::vector<uint8_t>& bytes,
                                 int bit_width, size_t count) {
  std::vector<uint64_t> out(count, 0);
  size_t bit_pos = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    for (int b = 0; b < bit_width; ++b, ++bit_pos) {
      if (bit_pos / 8 < bytes.size() &&
          (bytes[bit_pos / 8] >> (bit_pos % 8)) & 1) {
        v |= uint64_t{1} << b;
      }
    }
    out[i] = v;
  }
  return out;
}

std::vector<uint8_t> EncodeColumnPage(const ColumnVector& values,
                                      size_t begin, size_t end,
                                      ZoneMapEntry* zone) {
  assert(end <= values.size() && begin <= end);
  size_t count = end - begin;
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(values.type));
  PutU32(out, static_cast<uint32_t>(count));
  zone->row_count = static_cast<uint32_t>(count);

  switch (values.type) {
    case ColumnType::kInt64:
    case ColumnType::kDate:
    case ColumnType::kDecimal: {
      int64_t min_v = count > 0 ? values.ints[begin] : 0;
      int64_t max_v = min_v;
      for (size_t i = begin; i < end; ++i) {
        min_v = std::min(min_v, values.ints[i]);
        max_v = std::max(max_v, values.ints[i]);
      }
      zone->min_int = min_v;
      zone->max_int = max_v;
      // Non-decreasing pages (sorted keys, monotone dates) get delta +
      // n-bit; everything else frame-of-reference + n-bit.
      bool sorted = true;
      uint64_t max_step = 0;
      for (size_t i = begin + 1; i < end; ++i) {
        if (values.ints[i] < values.ints[i - 1]) {
          sorted = false;
          break;
        }
        max_step = std::max(
            max_step,
            static_cast<uint64_t>(values.ints[i] - values.ints[i - 1]));
      }
      int for_width =
          BitWidthFor(static_cast<uint64_t>(max_v - min_v));
      int delta_width = BitWidthFor(max_step);
      if (sorted && count > 1 && delta_width < for_width) {
        std::vector<uint64_t> deltas;
        deltas.reserve(count - 1);
        for (size_t i = begin + 1; i < end; ++i) {
          deltas.push_back(
              static_cast<uint64_t>(values.ints[i] - values.ints[i - 1]));
        }
        out.push_back(kEncodingDeltaNBit);
        out.push_back(static_cast<uint8_t>(delta_width));
        PutI64(out, values.ints[begin]);  // first value, raw
        std::vector<uint8_t> packed = NBitPack(deltas, delta_width);
        PutBytes(out, packed.data(), packed.size());
        break;
      }
      std::vector<uint64_t> deltas;
      deltas.reserve(count);
      for (size_t i = begin; i < end; ++i) {
        deltas.push_back(static_cast<uint64_t>(values.ints[i] - min_v));
      }
      out.push_back(kEncodingNBit);
      out.push_back(static_cast<uint8_t>(for_width));
      PutI64(out, min_v);
      std::vector<uint8_t> packed = NBitPack(deltas, for_width);
      PutBytes(out, packed.data(), packed.size());
      break;
    }
    case ColumnType::kDouble: {
      double min_v = count > 0 ? values.doubles[begin] : 0;
      double max_v = min_v;
      out.push_back(kEncodingRawDouble);
      for (size_t i = begin; i < end; ++i) {
        min_v = std::min(min_v, values.doubles[i]);
        max_v = std::max(max_v, values.doubles[i]);
        PutDouble(out, values.doubles[i]);
      }
      zone->min_double = min_v;
      zone->max_double = max_v;
      break;
    }
    case ColumnType::kString: {
      // Page-local dictionary; n-bit codes if it pays, raw otherwise.
      std::map<std::string, uint32_t> dict;
      for (size_t i = begin; i < end; ++i) {
        dict.emplace(values.strings[i], 0);
      }
      if (count > 0) {
        zone->min_string = dict.begin()->first.substr(0, 16);
        zone->max_string = std::prev(dict.end())->first.substr(0, 16);
      }
      size_t dict_bytes = 0;
      for (const auto& [s, code] : dict) dict_bytes += s.size() + 4;
      size_t raw_bytes = 0;
      for (size_t i = begin; i < end; ++i) {
        raw_bytes += values.strings[i].size() + 4;
      }
      int width =
          BitWidthFor(dict.empty() ? 0 : dict.size() - 1);
      size_t dict_total = dict_bytes + (count * width + 7) / 8;
      if (dict_total < raw_bytes) {
        uint32_t next = 0;
        for (auto& [s, code] : dict) code = next++;
        out.push_back(kEncodingDictString);
        out.push_back(static_cast<uint8_t>(width));
        PutU32(out, static_cast<uint32_t>(dict.size()));
        for (const auto& [s, code] : dict) PutString(out, s);
        std::vector<uint64_t> codes;
        codes.reserve(count);
        for (size_t i = begin; i < end; ++i) {
          codes.push_back(dict[values.strings[i]]);
        }
        std::vector<uint8_t> packed = NBitPack(codes, width);
        PutBytes(out, packed.data(), packed.size());
      } else {
        out.push_back(kEncodingRawString);
        for (size_t i = begin; i < end; ++i) {
          PutString(out, values.strings[i]);
        }
      }
      break;
    }
  }
  return out;
}

Result<ColumnVector> DecodeColumnPage(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  ColumnVector out;
  out.type = static_cast<ColumnType>(reader.GetU32());
  uint32_t count = reader.GetU32();
  if (reader.remaining() < 1) return Status::Corruption("column page");
  uint8_t encoding = reader.GetBytes(1)[0];

  switch (encoding) {
    case kEncodingNBit: {
      int width = reader.GetBytes(1)[0];
      int64_t base = reader.GetI64();
      std::vector<uint8_t> packed =
          reader.GetBytes((static_cast<size_t>(count) * width + 7) / 8);
      std::vector<uint64_t> deltas = NBitUnpack(packed, width, count);
      out.ints.reserve(count);
      for (uint64_t d : deltas) {
        out.ints.push_back(base + static_cast<int64_t>(d));
      }
      break;
    }
    case kEncodingDeltaNBit: {
      int width = reader.GetBytes(1)[0];
      int64_t value = reader.GetI64();
      size_t n_deltas = count > 0 ? count - 1 : 0;
      std::vector<uint8_t> packed =
          reader.GetBytes((n_deltas * width + 7) / 8);
      std::vector<uint64_t> deltas = NBitUnpack(packed, width, n_deltas);
      out.ints.reserve(count);
      if (count > 0) out.ints.push_back(value);
      for (uint64_t d : deltas) {
        value += static_cast<int64_t>(d);
        out.ints.push_back(value);
      }
      break;
    }
    case kEncodingRawDouble: {
      out.doubles.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        out.doubles.push_back(reader.GetDouble());
      }
      break;
    }
    case kEncodingDictString: {
      int width = reader.GetBytes(1)[0];
      uint32_t dict_size = reader.GetU32();
      std::vector<std::string> dict(dict_size);
      for (uint32_t i = 0; i < dict_size; ++i) dict[i] = reader.GetString();
      std::vector<uint8_t> packed =
          reader.GetBytes((static_cast<size_t>(count) * width + 7) / 8);
      std::vector<uint64_t> codes = NBitUnpack(packed, width, count);
      out.strings.reserve(count);
      for (uint64_t code : codes) {
        if (code >= dict.size()) {
          return Status::Corruption("dictionary code out of range");
        }
        out.strings.push_back(dict[code]);
      }
      break;
    }
    case kEncodingRawString: {
      out.strings.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        out.strings.push_back(reader.GetString());
      }
      break;
    }
    default:
      return Status::Corruption("unknown column encoding");
  }
  if (reader.overflow()) return Status::Corruption("column page truncated");
  return out;
}

}  // namespace cloudiq
