#include "columnar/schema.h"

namespace cloudiq {
namespace {

void PutZone(std::vector<uint8_t>& out, const ZoneMapEntry& zone) {
  PutI64(out, zone.min_int);
  PutI64(out, zone.max_int);
  PutDouble(out, zone.min_double);
  PutDouble(out, zone.max_double);
  PutString(out, zone.min_string);
  PutString(out, zone.max_string);
  PutU32(out, zone.row_count);
}

ZoneMapEntry GetZone(ByteReader& reader) {
  ZoneMapEntry zone;
  zone.min_int = reader.GetI64();
  zone.max_int = reader.GetI64();
  zone.min_double = reader.GetDouble();
  zone.max_double = reader.GetDouble();
  zone.min_string = reader.GetString();
  zone.max_string = reader.GetString();
  zone.row_count = reader.GetU32();
  return zone;
}

}  // namespace

std::vector<uint8_t> TableSchema::Serialize() const {
  std::vector<uint8_t> out;
  PutString(out, name);
  PutU64(out, table_id);
  PutU32(out, static_cast<uint32_t>(columns.size()));
  for (const ColumnDef& col : columns) {
    PutString(out, col.name);
    PutU32(out, static_cast<uint32_t>(col.type));
  }
  PutI64(out, partition_column);
  PutU32(out, static_cast<uint32_t>(partition_bounds.size()));
  for (int64_t b : partition_bounds) PutI64(out, b);
  PutU32(out, static_cast<uint32_t>(hg_index_columns.size()));
  for (int c : hg_index_columns) PutI64(out, c);
  PutU32(out, static_cast<uint32_t>(date_index_columns.size()));
  for (int c : date_index_columns) PutI64(out, c);
  PutU32(out, static_cast<uint32_t>(text_index_columns.size()));
  for (int c : text_index_columns) PutI64(out, c);
  return out;
}

TableSchema TableSchema::Deserialize(ByteReader& reader) {
  TableSchema schema;
  schema.name = reader.GetString();
  schema.table_id = reader.GetU64();
  uint32_t n_cols = reader.GetU32();
  for (uint32_t i = 0; i < n_cols; ++i) {
    ColumnDef col;
    col.name = reader.GetString();
    col.type = static_cast<ColumnType>(reader.GetU32());
    schema.columns.push_back(col);
  }
  schema.partition_column = static_cast<int>(reader.GetI64());
  uint32_t n_bounds = reader.GetU32();
  for (uint32_t i = 0; i < n_bounds; ++i) {
    schema.partition_bounds.push_back(reader.GetI64());
  }
  uint32_t n_idx = reader.GetU32();
  for (uint32_t i = 0; i < n_idx; ++i) {
    schema.hg_index_columns.push_back(static_cast<int>(reader.GetI64()));
  }
  uint32_t n_date = reader.GetU32();
  for (uint32_t i = 0; i < n_date; ++i) {
    schema.date_index_columns.push_back(static_cast<int>(reader.GetI64()));
  }
  uint32_t n_text = reader.GetU32();
  for (uint32_t i = 0; i < n_text; ++i) {
    schema.text_index_columns.push_back(static_cast<int>(reader.GetI64()));
  }
  return schema;
}

std::vector<uint8_t> SegmentMeta::Serialize() const {
  std::vector<uint8_t> out;
  PutU64(out, object_id);
  PutU64(out, row_count);
  PutU32(out, static_cast<uint32_t>(zones.size()));
  for (const ZoneMapEntry& zone : zones) PutZone(out, zone);
  PutU32(out, static_cast<uint32_t>(page_rows.size()));
  for (uint32_t rows : page_rows) PutU32(out, rows);
  PutU32(out, static_cast<uint32_t>(page_bytes.size()));
  for (uint32_t bytes : page_bytes) PutU32(out, bytes);
  return out;
}

SegmentMeta SegmentMeta::Deserialize(ByteReader& reader) {
  SegmentMeta meta;
  meta.object_id = reader.GetU64();
  meta.row_count = reader.GetU64();
  uint32_t n_zones = reader.GetU32();
  for (uint32_t i = 0; i < n_zones; ++i) meta.zones.push_back(GetZone(reader));
  uint32_t n_pages = reader.GetU32();
  for (uint32_t i = 0; i < n_pages; ++i) {
    meta.page_rows.push_back(reader.GetU32());
  }
  uint32_t n_bytes = reader.GetU32();
  for (uint32_t i = 0; i < n_bytes; ++i) {
    meta.page_bytes.push_back(reader.GetU32());
  }
  return meta;
}

std::vector<uint8_t> PartitionMeta::Serialize() const {
  std::vector<uint8_t> out;
  PutU64(out, row_count);
  PutU32(out, static_cast<uint32_t>(columns.size()));
  for (const SegmentMeta& seg : columns) {
    std::vector<uint8_t> bytes = seg.Serialize();
    PutU64(out, bytes.size());
    PutBytes(out, bytes.data(), bytes.size());
  }
  PutU32(out, static_cast<uint32_t>(index_objects.size()));
  for (uint64_t id : index_objects) PutU64(out, id);
  PutU32(out, static_cast<uint32_t>(index_page_ranges.size()));
  for (const auto& ranges : index_page_ranges) {
    PutU32(out, static_cast<uint32_t>(ranges.size()));
    for (const auto& [lo, hi] : ranges) {
      PutI64(out, lo);
      PutI64(out, hi);
    }
  }
  PutU32(out, static_cast<uint32_t>(date_index_objects.size()));
  for (uint64_t id : date_index_objects) PutU64(out, id);
  PutU32(out, static_cast<uint32_t>(date_index_ranges.size()));
  for (const auto& ranges : date_index_ranges) {
    PutU32(out, static_cast<uint32_t>(ranges.size()));
    for (const auto& [lo, hi] : ranges) {
      PutI64(out, lo);
      PutI64(out, hi);
    }
  }
  PutU32(out, static_cast<uint32_t>(text_index_objects.size()));
  for (uint64_t id : text_index_objects) PutU64(out, id);
  PutU32(out, static_cast<uint32_t>(text_index_ranges.size()));
  for (const auto& ranges : text_index_ranges) {
    PutU32(out, static_cast<uint32_t>(ranges.size()));
    for (const auto& [lo, hi] : ranges) {
      PutString(out, lo);
      PutString(out, hi);
    }
  }
  return out;
}

PartitionMeta PartitionMeta::Deserialize(ByteReader& reader) {
  PartitionMeta meta;
  meta.row_count = reader.GetU64();
  uint32_t n_cols = reader.GetU32();
  for (uint32_t i = 0; i < n_cols; ++i) {
    uint64_t len = reader.GetU64();
    std::vector<uint8_t> bytes = reader.GetBytes(len);
    ByteReader seg_reader(bytes);
    meta.columns.push_back(SegmentMeta::Deserialize(seg_reader));
  }
  uint32_t n_idx = reader.GetU32();
  for (uint32_t i = 0; i < n_idx; ++i) {
    meta.index_objects.push_back(reader.GetU64());
  }
  uint32_t n_ranges = reader.GetU32();
  for (uint32_t i = 0; i < n_ranges; ++i) {
    uint32_t n = reader.GetU32();
    std::vector<std::pair<int64_t, int64_t>> ranges;
    for (uint32_t j = 0; j < n; ++j) {
      int64_t lo = reader.GetI64();
      int64_t hi = reader.GetI64();
      ranges.emplace_back(lo, hi);
    }
    meta.index_page_ranges.push_back(std::move(ranges));
  }
  uint32_t n_date_idx = reader.GetU32();
  for (uint32_t i = 0; i < n_date_idx; ++i) {
    meta.date_index_objects.push_back(reader.GetU64());
  }
  uint32_t n_date_ranges = reader.GetU32();
  for (uint32_t i = 0; i < n_date_ranges; ++i) {
    uint32_t n = reader.GetU32();
    std::vector<std::pair<int64_t, int64_t>> ranges;
    for (uint32_t j = 0; j < n; ++j) {
      int64_t lo = reader.GetI64();
      int64_t hi = reader.GetI64();
      ranges.emplace_back(lo, hi);
    }
    meta.date_index_ranges.push_back(std::move(ranges));
  }
  uint32_t n_text_idx = reader.GetU32();
  for (uint32_t i = 0; i < n_text_idx; ++i) {
    meta.text_index_objects.push_back(reader.GetU64());
  }
  uint32_t n_text_ranges = reader.GetU32();
  for (uint32_t i = 0; i < n_text_ranges; ++i) {
    uint32_t n = reader.GetU32();
    std::vector<std::pair<std::string, std::string>> ranges;
    for (uint32_t j = 0; j < n; ++j) {
      std::string lo = reader.GetString();
      std::string hi = reader.GetString();
      ranges.emplace_back(std::move(lo), std::move(hi));
    }
    meta.text_index_ranges.push_back(std::move(ranges));
  }
  return meta;
}

std::vector<uint8_t> TableMeta::Serialize() const {
  std::vector<uint8_t> out;
  std::vector<uint8_t> schema_bytes = schema.Serialize();
  PutU64(out, schema_bytes.size());
  PutBytes(out, schema_bytes.data(), schema_bytes.size());
  PutU32(out, static_cast<uint32_t>(partitions.size()));
  for (const PartitionMeta& p : partitions) {
    std::vector<uint8_t> bytes = p.Serialize();
    PutU64(out, bytes.size());
    PutBytes(out, bytes.data(), bytes.size());
  }
  return out;
}

TableMeta TableMeta::Deserialize(const std::vector<uint8_t>& bytes) {
  TableMeta meta;
  ByteReader reader(bytes);
  uint64_t schema_len = reader.GetU64();
  std::vector<uint8_t> schema_bytes = reader.GetBytes(schema_len);
  ByteReader schema_reader(schema_bytes);
  meta.schema = TableSchema::Deserialize(schema_reader);
  uint32_t n_parts = reader.GetU32();
  for (uint32_t i = 0; i < n_parts; ++i) {
    uint64_t len = reader.GetU64();
    std::vector<uint8_t> part_bytes = reader.GetBytes(len);
    ByteReader part_reader(part_bytes);
    meta.partitions.push_back(PartitionMeta::Deserialize(part_reader));
  }
  return meta;
}

}  // namespace cloudiq
