#ifndef CLOUDIQ_COLUMNAR_TABLE_LOADER_H_
#define CLOUDIQ_COLUMNAR_TABLE_LOADER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "columnar/date_index.h"
#include "columnar/text_index.h"
#include "columnar/hg_index.h"
#include "columnar/schema.h"
#include "store/system_store.h"
#include "txn/transaction_manager.h"

namespace cloudiq {

// The load engine's per-table half: routes incoming row batches to range
// partitions, stages values per (partition, column), and cuts each
// *column's* pages independently when that column's staged bytes approach
// the page size — narrow integer columns pack tens of thousands of values
// per page while comment columns cut far more often, exactly as a
// disk-based columnar store fills pages. Pages are encoded (dictionary /
// n-bit / frame-of-reference) and appended to the partition's column
// storage objects; HG indexes build as rows stream by. Finish() flushes
// tails, writes the index objects and persists the table metadata.
//
// CPU consumed by parsing/encoding is *accumulated*, not applied: the
// load driver drains cpu_seconds() into the simulated clock with the
// node's parallelism, which is how loads scale with vCPUs (Figure 7).
class TableLoader {
 public:
  struct Options {
    double target_page_fill = 0.85;  // of the dbspace page size
    double encode_cpu_per_byte = 18e-9;
  };

  TableLoader(TransactionManager* txn_mgr, Transaction* txn, DbSpace* space,
              TableSchema schema)
      : TableLoader(txn_mgr, txn, space, std::move(schema), Options()) {}
  TableLoader(TransactionManager* txn_mgr, Transaction* txn, DbSpace* space,
              TableSchema schema, Options options);

  // Appends a columnar batch (all vectors the same length, matching the
  // schema's column order).
  Status Append(const std::vector<ColumnVector>& batch);

  // Flushes remaining staged rows, builds HG indexes and persists the
  // table metadata blob under "tablemeta/<table_id>". The caller commits
  // the transaction afterwards.
  Result<TableMeta> Finish(SystemStore* system);

  // Encoding CPU accumulated since the last call (seconds of one core).
  double TakeCpuSeconds() {
    double s = cpu_seconds_;
    cpu_seconds_ = 0;
    return s;
  }

  uint64_t rows_appended() const { return rows_appended_; }

  // Storage object id for (table, partition, column); index objects use
  // column slots >= 90.
  static uint64_t ObjectIdFor(uint64_t table_id, size_t partition,
                              size_t column) {
    return table_id * 100000 + partition * 128 + column;
  }

 private:
  struct PartitionState {
    std::vector<ColumnVector> staging;       // one per column
    std::vector<StorageObject*> objects;     // one per column
    std::vector<uint64_t> staged_col_bytes;  // raw-size estimate per column
    uint64_t row_count = 0;  // rows routed to this partition so far
    std::vector<SegmentMeta> segments;
    std::vector<HgIndex::Builder> index_builders;
    std::vector<DateIndex::Builder> date_index_builders;
    std::vector<TextIndex::Builder> text_index_builders;
  };

  size_t PartitionFor(int64_t partition_value) const;
  // Cuts a page for one column of one partition.
  Status EmitColumnPage(PartitionState* part, size_t column);

  TransactionManager* txn_mgr_;
  Transaction* txn_;
  DbSpace* space_;
  TableSchema schema_;
  Options options_;
  std::vector<PartitionState> partitions_;
  double cpu_seconds_ = 0;
  uint64_t rows_appended_ = 0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_COLUMNAR_TABLE_LOADER_H_
