#include "columnar/table_reader.h"

#include <algorithm>

#include "columnar/date_index.h"
#include "columnar/text_index.h"

namespace cloudiq {

TableReader::TableReader(TransactionManager* txn_mgr, Transaction* txn,
                         TableMeta meta)
    : txn_mgr_(txn_mgr), txn_(txn), meta_(std::move(meta)) {}

Result<TableReader> TableReader::Open(TransactionManager* txn_mgr,
                                      Transaction* txn, SystemStore* system,
                                      uint64_t table_id) {
  SimClock& clock = txn_mgr->storage().node()->clock();
  SimTime done = clock.now();
  CLOUDIQ_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      system->Get("tablemeta/" + std::to_string(table_id), clock.now(),
                  &done));
  clock.AdvanceTo(done);
  return TableReader(txn_mgr, txn, TableMeta::Deserialize(bytes));
}

Result<StorageObject*> TableReader::ObjectFor(uint64_t object_id) {
  auto it = objects_.find(object_id);
  if (it != objects_.end()) return it->second.get();
  CLOUDIQ_ASSIGN_OR_RETURN(std::unique_ptr<StorageObject> object,
                           txn_mgr_->OpenForRead(txn_, object_id));
  StorageObject* ptr = object.get();
  objects_[object_id] = std::move(object);
  return ptr;
}

Result<ColumnVector> TableReader::ReadPage(size_t partition, int column,
                                           size_t page) {
  CLOUDIQ_ASSIGN_OR_RETURN(BufferManager::PageData data,
                           FetchPage(partition, column, page));
  return DecodeColumnPage(*data);
}

Result<BufferManager::PageData> TableReader::FetchPage(size_t partition,
                                                       int column,
                                                       size_t page) {
  const SegmentMeta& seg = meta_.partitions[partition].columns[column];
  CLOUDIQ_ASSIGN_OR_RETURN(StorageObject * object,
                           ObjectFor(seg.object_id));
  CLOUDIQ_ASSIGN_OR_RETURN(BufferManager::PageData data,
                           object->ReadPage(page));
  // Counted at fetch (not decode) time: every fetched frame is decoded
  // exactly once either way, and the executor charges decode CPU from
  // this before its parallel region runs.
  decoded_bytes_ += data->size();
  return data;
}

Status TableReader::Prefetch(size_t partition, int column,
                             const std::vector<uint64_t>& pages) {
  const SegmentMeta& seg = meta_.partitions[partition].columns[column];
  CLOUDIQ_ASSIGN_OR_RETURN(StorageObject * object,
                           ObjectFor(seg.object_id));
  return object->Prefetch(pages);
}

std::vector<uint64_t> TableReader::PrunePagesInt(size_t partition,
                                                 int column, int64_t lo,
                                                 int64_t hi) const {
  const SegmentMeta& seg = meta_.partitions[partition].columns[column];
  std::vector<uint64_t> pages;
  for (size_t p = 0; p < seg.zones.size(); ++p) {
    if (seg.zones[p].max_int >= lo && seg.zones[p].min_int <= hi) {
      pages.push_back(p);
    }
  }
  return pages;
}

bool TableReader::PushdownEligible() const {
  if (txn_mgr_->storage().options().encrypt_pages) return false;
  if (txn_ != nullptr && txn_mgr_->buffer().HasDirty(txn_->id)) {
    return false;
  }
  return true;
}

Result<std::vector<TableReader::CloudPageRef>> TableReader::CloudPageRefs(
    size_t partition, int column, const std::vector<uint64_t>& pages) {
  const SegmentMeta& seg = meta_.partitions[partition].columns[column];
  CLOUDIQ_ASSIGN_OR_RETURN(StorageObject * object,
                           ObjectFor(seg.object_id));
  if (!object->space()->is_cloud()) {
    return Status::FailedPrecondition("segment not on a cloud dbspace");
  }
  // Prefix-sum of page_rows once; pages arrive ascending from the zone
  // pruner.
  std::vector<uint64_t> first_rows(seg.page_rows.size() + 1, 0);
  for (size_t p = 0; p < seg.page_rows.size(); ++p) {
    first_rows[p + 1] = first_rows[p] + seg.page_rows[p];
  }
  ObjectStoreIo& io = txn_mgr_->storage().object_io();
  std::vector<CloudPageRef> refs;
  refs.reserve(pages.size());
  for (uint64_t page : pages) {
    if (page >= seg.page_rows.size()) {
      return Status::InvalidArgument("page out of range");
    }
    CLOUDIQ_ASSIGN_OR_RETURN(PhysicalLoc loc,
                             object->blockmap().Lookup(page));
    if (!loc.is_cloud()) {
      return Status::FailedPrecondition("page not cloud-resident");
    }
    refs.push_back(CloudPageRef{io.StoreKey(loc.cloud_key()),
                                first_rows[page],
                                static_cast<uint32_t>(seg.page_rows[page]),
                                loc.cloud_key()});
  }
  return refs;
}

TableReader::Residency TableReader::ProbeResidency(
    size_t partition, int column, const std::vector<uint64_t>& pages) {
  Residency res;
  res.pages = pages.size();
  Result<StorageObject*> object = ObjectFor(
      meta_.partitions[partition].columns[column].object_id);
  if (!object.ok()) return res;  // unknown: price everything cold
  uint32_t space_id = object.value()->space()->id;
  BufferManager& buffer = txn_mgr_->buffer();
  CloudCache* cache = txn_mgr_->storage().cloud_cache();
  for (uint64_t page : pages) {
    Result<PhysicalLoc> loc = object.value()->blockmap().Lookup(page);
    if (!loc.ok() || !loc.value().valid()) {
      ++res.in_buffer;  // dirty / unmapped: served from RAM, never fetched
      continue;
    }
    if (buffer.Cached(space_id, loc.value())) {
      ++res.in_buffer;
    } else if (cache != nullptr && loc.value().is_cloud() &&
               cache->Resident(loc.value().cloud_key())) {
      ++res.in_cloud_cache;
    }
  }
  return res;
}

uint64_t TableReader::PageFirstRow(size_t partition, int column,
                                   size_t page) const {
  const SegmentMeta& seg = meta_.partitions[partition].columns[column];
  uint64_t row = 0;
  for (size_t p = 0; p < page && p < seg.page_rows.size(); ++p) {
    row += seg.page_rows[p];
  }
  return row;
}

Result<IntervalSet> TableReader::IndexLookup(size_t partition, int column,
                                             int64_t value) {
  return IndexLookupRange(partition, column, value, value);
}

Result<IntervalSet> TableReader::IndexLookupRange(size_t partition,
                                                  int column, int64_t lo,
                                                  int64_t hi) {
  const TableSchema& schema = meta_.schema;
  int slot = -1;
  for (size_t s = 0; s < schema.hg_index_columns.size(); ++s) {
    if (schema.hg_index_columns[s] == column) slot = static_cast<int>(s);
  }
  if (slot < 0) {
    return Status::InvalidArgument("column has no HG index");
  }
  const PartitionMeta& pm = meta_.partitions[partition];
  if (pm.index_objects[slot] == 0) return IntervalSet();  // empty partition
  CLOUDIQ_ASSIGN_OR_RETURN(StorageObject * object,
                           ObjectFor(pm.index_objects[slot]));
  return HgIndex::LookupRange(object, pm.index_page_ranges[slot], lo, hi);
}

namespace {
int DateIndexSlot(const TableSchema& schema, int column) {
  for (size_t s = 0; s < schema.date_index_columns.size(); ++s) {
    if (schema.date_index_columns[s] == column) {
      return static_cast<int>(s);
    }
  }
  return -1;
}
}  // namespace

Result<IntervalSet> TableReader::DateIndexMonth(size_t partition,
                                                int column, int year,
                                                int month) {
  int slot = DateIndexSlot(meta_.schema, column);
  if (slot < 0) {
    return Status::InvalidArgument("column has no DATE index");
  }
  const PartitionMeta& pm = meta_.partitions[partition];
  if (pm.date_index_objects[slot] == 0) return IntervalSet();
  CLOUDIQ_ASSIGN_OR_RETURN(StorageObject * object,
                           ObjectFor(pm.date_index_objects[slot]));
  return DateIndex::LookupMonth(object, pm.date_index_ranges[slot], year,
                                month);
}

Result<IntervalSet> TableReader::TextIndexAllWords(
    size_t partition, int column, const std::vector<std::string>& words) {
  int slot = -1;
  for (size_t s = 0; s < meta_.schema.text_index_columns.size(); ++s) {
    if (meta_.schema.text_index_columns[s] == column) {
      slot = static_cast<int>(s);
    }
  }
  if (slot < 0) {
    return Status::InvalidArgument("column has no TEXT index");
  }
  const PartitionMeta& pm = meta_.partitions[partition];
  if (pm.text_index_objects[slot] == 0) return IntervalSet();
  CLOUDIQ_ASSIGN_OR_RETURN(StorageObject * object,
                           ObjectFor(pm.text_index_objects[slot]));
  return TextIndex::LookupAllWords(object, pm.text_index_ranges[slot],
                                   words);
}

Result<IntervalSet> TableReader::DateIndexYears(size_t partition,
                                                int column, int year_lo,
                                                int year_hi) {
  int slot = DateIndexSlot(meta_.schema, column);
  if (slot < 0) {
    return Status::InvalidArgument("column has no DATE index");
  }
  const PartitionMeta& pm = meta_.partitions[partition];
  if (pm.date_index_objects[slot] == 0) return IntervalSet();
  CLOUDIQ_ASSIGN_OR_RETURN(StorageObject * object,
                           ObjectFor(pm.date_index_objects[slot]));
  return DateIndex::LookupYearRange(object, pm.date_index_ranges[slot],
                                    year_lo, year_hi);
}

}  // namespace cloudiq
