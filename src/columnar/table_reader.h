#ifndef CLOUDIQ_COLUMNAR_TABLE_READER_H_
#define CLOUDIQ_COLUMNAR_TABLE_READER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "columnar/schema.h"
#include "columnar/table_loader.h"
#include "common/interval_set.h"
#include "store/system_store.h"
#include "txn/transaction_manager.h"

namespace cloudiq {

// Snapshot-consistent read access to a loaded table: page reads with
// decode, zone-map pruning, parallel prefetch, and HG index probes. One
// TableReader per (transaction, table); storage objects are opened
// lazily from the transaction's snapshot.
class TableReader {
 public:
  TableReader(TransactionManager* txn_mgr, Transaction* txn,
              TableMeta meta);

  // Loads the table metadata blob and constructs a reader.
  static Result<TableReader> Open(TransactionManager* txn_mgr,
                                  Transaction* txn, SystemStore* system,
                                  uint64_t table_id);

  const TableMeta& meta() const { return meta_; }
  const TableSchema& schema() const { return meta_.schema; }

  // Decodes page `page` of (partition, column).
  Result<ColumnVector> ReadPage(size_t partition, int column, size_t page);

  // Fetches the *encoded* frame of page `page` without decoding it.
  // All simulated I/O and the decoded_bytes() accounting happen here, so
  // the morsel executor can fetch frames on the (deterministic)
  // coordinator and hand the pure-CPU DecodeColumnPage calls to native
  // worker threads. ReadPage == FetchPage + DecodeColumnPage.
  Result<BufferManager::PageData> FetchPage(size_t partition, int column,
                                            size_t page);

  // Parallel read-ahead of the listed pages of one column segment.
  Status Prefetch(size_t partition, int column,
                  const std::vector<uint64_t>& pages);

  // Pages of (partition, column) whose zone map intersects [lo, hi]
  // (int-family columns).
  std::vector<uint64_t> PrunePagesInt(size_t partition, int column,
                                      int64_t lo, int64_t hi) const;

  // HG index probe: partition-local row ids with column == value
  // (column must be one of the schema's hg_index_columns).
  Result<IntervalSet> IndexLookup(size_t partition, int column,
                                  int64_t value);
  Result<IntervalSet> IndexLookupRange(size_t partition, int column,
                                       int64_t lo, int64_t hi);

  // DATE-index probes: rows whose DATE column falls in one calendar
  // month, or in whole years [year_lo, year_hi] (column must be in the
  // schema's date_index_columns).
  Result<IntervalSet> DateIndexMonth(size_t partition, int column,
                                     int year, int month);
  Result<IntervalSet> DateIndexYears(size_t partition, int column,
                                     int year_lo, int year_hi);

  // TEXT-index probe: rows whose string column contains every word in
  // `words` (candidate set; callers verify exact patterns). The column
  // must be in the schema's text_index_columns.
  Result<IntervalSet> TextIndexAllWords(
      size_t partition, int column, const std::vector<std::string>& words);

  // First row id (partition-local) of each page, for mapping page-local
  // offsets to row ids.
  uint64_t PageFirstRow(size_t partition, int column, size_t page) const;

  // --- near-data-processing support --------------------------------------
  // One committed cloud page of a column segment addressed by its full
  // object-store key — the unit an NDP request references. Deliberately
  // protocol-agnostic: the reader resolves keys, the exec layer builds
  // NdpRequests from them, so columnar stays independent of src/ndp/.
  struct CloudPageRef {
    std::string store_key;
    uint64_t first_row = 0;   // partition-local row of the page's first value
    uint32_t row_count = 0;
    // Raw object key (PhysicalLoc::cloud_key), for residency probes
    // against the OCM index at plan time.
    uint64_t cloud_key = 0;
  };

  // Whether server-side pushdown can read this table's pages at all:
  // the storage subsystem must not encrypt pages (the store has no key)
  // and this transaction must have no unflushed dirty pages (the store
  // would serve stale committed versions).
  bool PushdownEligible() const;

  // Resolves `pages` of (partition, column) to object-store keys.
  // FailedPrecondition if any page is not cloud-resident (non-cloud
  // dbspace, or a dirty/unflushed page with no physical location yet).
  Result<std::vector<CloudPageRef>> CloudPageRefs(
      size_t partition, int column, const std::vector<uint64_t>& pages);

  // Plan-time residency of `pages` of (partition, column): how many a
  // pull would find in the RAM buffer pool, how many on the OCM's SSD,
  // the rest being object-store GETs. Pure probes — no LRU movement, no
  // simulated I/O, no stats — so the scan cost model can price warm
  // vs. cold without perturbing what it measures. Pages with no durable
  // location yet (dirty in this transaction) count as buffer-resident.
  struct Residency {
    uint64_t pages = 0;
    uint64_t in_buffer = 0;
    uint64_t in_cloud_cache = 0;

    uint64_t Cold() const { return pages - in_buffer - in_cloud_cache; }
    void Fold(const Residency& o) {
      pages += o.pages;
      in_buffer += o.in_buffer;
      in_cloud_cache += o.in_cloud_cache;
    }
  };
  Residency ProbeResidency(size_t partition, int column,
                           const std::vector<uint64_t>& pages);

  // Bytes decoded since construction (the executor charges decode CPU
  // from this).
  uint64_t decoded_bytes() const { return decoded_bytes_; }

 private:
  Result<StorageObject*> ObjectFor(uint64_t object_id);

  TransactionManager* txn_mgr_;
  Transaction* txn_;
  TableMeta meta_;
  std::map<uint64_t, std::unique_ptr<StorageObject>> objects_;
  uint64_t decoded_bytes_ = 0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_COLUMNAR_TABLE_READER_H_
