#include "columnar/text_index.h"

#include <cctype>

#include "common/coding.h"

namespace cloudiq {
namespace {

// Page format: [count u32]{ [token str][len u64][intervalset bytes] }*.
std::vector<uint8_t> EncodePage(
    const std::vector<std::pair<std::string, const IntervalSet*>>&
        entries) {
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(entries.size()));
  for (const auto& [token, set] : entries) {
    PutString(out, token);
    std::vector<uint8_t> bytes = set->Serialize();
    PutU64(out, bytes.size());
    PutBytes(out, bytes.data(), bytes.size());
  }
  return out;
}

Result<std::vector<std::pair<std::string, IntervalSet>>> DecodePage(
    const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  uint32_t count = reader.GetU32();
  std::vector<std::pair<std::string, IntervalSet>> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string token = reader.GetString();
    uint64_t len = reader.GetU64();
    entries.emplace_back(std::move(token),
                         IntervalSet::Deserialize(reader.GetBytes(len)));
  }
  if (reader.overflow()) return Status::Corruption("TEXT index page");
  return entries;
}

}  // namespace

std::vector<std::string> TextIndex::Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

void TextIndex::Builder::Add(const std::string& text, uint64_t row_id) {
  for (const std::string& token : Tokenize(text)) {
    postings_[token].Insert(row_id);
  }
}

Result<std::vector<std::pair<std::string, std::string>>> TextIndex::Build(
    TransactionManager* txn_mgr, Transaction* txn, uint64_t object_id,
    DbSpace* space, const Builder& builder,
    uint64_t page_payload_target) {
  CLOUDIQ_ASSIGN_OR_RETURN(StorageObject * object,
                           txn_mgr->CreateObject(txn, object_id, space));
  std::vector<std::pair<std::string, std::string>> page_ranges;
  std::vector<std::pair<std::string, const IntervalSet*>> pending;
  uint64_t pending_bytes = 0;
  auto flush_page = [&]() -> Status {
    if (pending.empty()) return Status::Ok();
    CLOUDIQ_RETURN_IF_ERROR(object->AppendPage(EncodePage(pending)).status());
    page_ranges.emplace_back(pending.front().first, pending.back().first);
    pending.clear();
    pending_bytes = 0;
    return Status::Ok();
  };
  for (const auto& [token, set] : builder.postings()) {
    uint64_t entry_bytes = token.size() + 28 + 16 * set.IntervalCount();
    if (!pending.empty() &&
        pending_bytes + entry_bytes > page_payload_target) {
      CLOUDIQ_RETURN_IF_ERROR(flush_page());
    }
    pending.emplace_back(token, &set);
    pending_bytes += entry_bytes;
  }
  CLOUDIQ_RETURN_IF_ERROR(flush_page());
  return page_ranges;
}

Result<IntervalSet> TextIndex::LookupWord(
    StorageObject* object,
    const std::vector<std::pair<std::string, std::string>>& page_ranges,
    const std::string& word) {
  IntervalSet rows;
  std::vector<uint64_t> pages;
  for (size_t p = 0; p < page_ranges.size(); ++p) {
    if (page_ranges[p].second >= word && page_ranges[p].first <= word) {
      pages.push_back(p);
    }
  }
  CLOUDIQ_RETURN_IF_ERROR(object->Prefetch(pages));
  for (uint64_t p : pages) {
    CLOUDIQ_ASSIGN_OR_RETURN(BufferManager::PageData data,
                             object->ReadPage(p));
    CLOUDIQ_ASSIGN_OR_RETURN(auto entries, DecodePage(*data));
    for (const auto& [token, set] : entries) {
      if (token == word) {
        for (const auto& iv : set.Intervals()) {
          rows.InsertRange(iv.begin, iv.end);
        }
      }
    }
  }
  return rows;
}

Result<IntervalSet> TextIndex::LookupAllWords(
    StorageObject* object,
    const std::vector<std::pair<std::string, std::string>>& page_ranges,
    const std::vector<std::string>& words) {
  IntervalSet result;
  bool first = true;
  for (const std::string& word : words) {
    CLOUDIQ_ASSIGN_OR_RETURN(IntervalSet rows,
                             LookupWord(object, page_ranges, word));
    if (first) {
      result = std::move(rows);
      first = false;
    } else {
      // Intersect: keep only values present in both.
      IntervalSet intersection;
      for (const auto& iv : result.Intervals()) {
        for (uint64_t v = iv.begin; v < iv.end; ++v) {
          if (rows.Contains(v)) intersection.Insert(v);
        }
      }
      result = std::move(intersection);
    }
    if (result.empty()) break;
  }
  return result;
}

}  // namespace cloudiq
