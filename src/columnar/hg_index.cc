#include "columnar/hg_index.h"

#include "common/coding.h"

namespace cloudiq {
namespace {

// Page format: [count u32]{ [value i64][len u64][intervalset bytes] }*
std::vector<uint8_t> EncodeIndexPage(
    const std::vector<std::pair<int64_t, const IntervalSet*>>& entries) {
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(entries.size()));
  for (const auto& [value, set] : entries) {
    PutI64(out, value);
    std::vector<uint8_t> bytes = set->Serialize();
    PutU64(out, bytes.size());
    PutBytes(out, bytes.data(), bytes.size());
  }
  return out;
}

Result<std::vector<std::pair<int64_t, IntervalSet>>> DecodeIndexPage(
    const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  uint32_t count = reader.GetU32();
  std::vector<std::pair<int64_t, IntervalSet>> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int64_t value = reader.GetI64();
    uint64_t len = reader.GetU64();
    entries.emplace_back(value,
                         IntervalSet::Deserialize(reader.GetBytes(len)));
  }
  if (reader.overflow()) return Status::Corruption("HG index page");
  return entries;
}

}  // namespace

Result<std::vector<std::pair<int64_t, int64_t>>> HgIndex::Build(
    TransactionManager* txn_mgr, Transaction* txn, uint64_t object_id,
    DbSpace* space, const Builder& builder,
    uint64_t page_payload_target) {
  CLOUDIQ_ASSIGN_OR_RETURN(StorageObject * object,
                           txn_mgr->CreateObject(txn, object_id, space));
  std::vector<std::pair<int64_t, int64_t>> page_ranges;

  std::vector<std::pair<int64_t, const IntervalSet*>> pending;
  uint64_t pending_bytes = 0;
  auto flush_page = [&]() -> Status {
    if (pending.empty()) return Status::Ok();
    CLOUDIQ_RETURN_IF_ERROR(
        object->AppendPage(EncodeIndexPage(pending)).status());
    page_ranges.emplace_back(pending.front().first, pending.back().first);
    pending.clear();
    pending_bytes = 0;
    return Status::Ok();
  };

  for (const auto& [value, set] : builder.postings()) {
    uint64_t entry_bytes = 8 + 8 + 8 + 16 * set.IntervalCount();
    if (!pending.empty() &&
        pending_bytes + entry_bytes > page_payload_target) {
      CLOUDIQ_RETURN_IF_ERROR(flush_page());
    }
    pending.emplace_back(value, &set);
    pending_bytes += entry_bytes;
  }
  CLOUDIQ_RETURN_IF_ERROR(flush_page());
  return page_ranges;
}

Result<IntervalSet> HgIndex::Lookup(
    StorageObject* object,
    const std::vector<std::pair<int64_t, int64_t>>& page_ranges,
    int64_t value) {
  return LookupRange(object, page_ranges, value, value);
}

Result<IntervalSet> HgIndex::LookupRange(
    StorageObject* object,
    const std::vector<std::pair<int64_t, int64_t>>& page_ranges,
    int64_t lo, int64_t hi) {
  IntervalSet rows;
  // The per-page key ranges are the "inner nodes": only overlapping
  // pages are read.
  std::vector<uint64_t> pages;
  for (size_t p = 0; p < page_ranges.size(); ++p) {
    if (page_ranges[p].second >= lo && page_ranges[p].first <= hi) {
      pages.push_back(p);
    }
  }
  CLOUDIQ_RETURN_IF_ERROR(object->Prefetch(pages));
  for (uint64_t p : pages) {
    CLOUDIQ_ASSIGN_OR_RETURN(BufferManager::PageData data,
                             object->ReadPage(p));
    CLOUDIQ_ASSIGN_OR_RETURN(auto entries, DecodeIndexPage(*data));
    for (const auto& [value, set] : entries) {
      if (value >= lo && value <= hi) {
        for (const auto& iv : set.Intervals()) {
          rows.InsertRange(iv.begin, iv.end);
        }
      }
    }
  }
  return rows;
}

}  // namespace cloudiq
