#ifndef CLOUDIQ_COLUMNAR_ENCODING_H_
#define CLOUDIQ_COLUMNAR_ENCODING_H_

#include <cstdint>
#include <vector>

#include "columnar/value.h"
#include "common/result.h"

namespace cloudiq {

// Column page encodings (§1: "columnar data in SAP IQ are compressed using
// the dictionary-encoding and the n-bit representation").
//
// Integer-family values use frame-of-reference + n-bit packing: a page
// stores min(values) and each value's delta packed at the minimum bit
// width. String pages build a page-local dictionary and n-bit-pack the
// codes, falling back to raw length-prefixed strings when the dictionary
// would not pay for itself (high-cardinality columns like comments).
// Doubles are stored raw. Every page additionally passes through the
// generic page codec (store/page_codec.h) for page-level compression.

// Packs `values` at `bit_width` bits each (little-endian bit order).
std::vector<uint8_t> NBitPack(const std::vector<uint64_t>& values,
                              int bit_width);
std::vector<uint64_t> NBitUnpack(const std::vector<uint8_t>& bytes,
                                 int bit_width, size_t count);

// Smallest width that can represent `max_value` (>= 1 bit).
int BitWidthFor(uint64_t max_value);

// Per-page zone map entry: min/max of the page's values (for strings, the
// dictionary-code domain is useless across pages, so zone maps track the
// min/max *string* prefix hashes are pointless — string zone maps store
// lexicographic min/max truncated to 16 bytes).
struct ZoneMapEntry {
  int64_t min_int = 0;
  int64_t max_int = 0;
  double min_double = 0;
  double max_double = 0;
  std::string min_string;
  std::string max_string;
  uint32_t row_count = 0;
};

// Encodes one column page; fills `zone` with the page's zone-map entry.
std::vector<uint8_t> EncodeColumnPage(const ColumnVector& values,
                                      size_t begin, size_t end,
                                      ZoneMapEntry* zone);

// Decodes a column page produced by EncodeColumnPage.
Result<ColumnVector> DecodeColumnPage(const std::vector<uint8_t>& bytes);

}  // namespace cloudiq

#endif  // CLOUDIQ_COLUMNAR_ENCODING_H_
