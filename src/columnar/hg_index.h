#ifndef CLOUDIQ_COLUMNAR_HG_INDEX_H_
#define CLOUDIQ_COLUMNAR_HG_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/interval_set.h"
#include "common/result.h"
#include "txn/transaction_manager.h"

namespace cloudiq {

// High-Group (HG) index (§1): combines a B+-tree-style sorted value
// organization with bitmap-compressed posting lists. CloudIQ's rendition
// stores, per indexed column and partition, the sorted distinct values
// with an interval-set of row ids each; entries are packed into pages of
// their own storage object, and the per-page key ranges (recorded in the
// table metadata) play the role of the B+-tree's inner levels — a lookup
// reads only the page whose range covers the probe key.
class HgIndex {
 public:
  // Accumulates value -> row-id postings during load.
  class Builder {
   public:
    void Add(int64_t value, uint64_t row_id) {
      postings_[value].Insert(row_id);
    }
    const std::map<int64_t, IntervalSet>& postings() const {
      return postings_;
    }
    bool empty() const { return postings_.empty(); }

   private:
    std::map<int64_t, IntervalSet> postings_;
  };

  // Writes the builder's postings into a new storage object `object_id`
  // owned by `txn`. Returns the per-page [min,max] key ranges for the
  // table metadata.
  static Result<std::vector<std::pair<int64_t, int64_t>>> Build(
      TransactionManager* txn_mgr, Transaction* txn, uint64_t object_id,
      DbSpace* space, const Builder& builder, uint64_t page_payload_target);

  // Probes the index for `value`: reads only the page whose key range
  // covers it. Returns an empty set when the value is absent.
  static Result<IntervalSet> Lookup(
      StorageObject* object,
      const std::vector<std::pair<int64_t, int64_t>>& page_ranges,
      int64_t value);

  // Range probe: row ids for values in [lo, hi].
  static Result<IntervalSet> LookupRange(
      StorageObject* object,
      const std::vector<std::pair<int64_t, int64_t>>& page_ranges,
      int64_t lo, int64_t hi);
};

}  // namespace cloudiq

#endif  // CLOUDIQ_COLUMNAR_HG_INDEX_H_
