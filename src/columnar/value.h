#ifndef CLOUDIQ_COLUMNAR_VALUE_H_
#define CLOUDIQ_COLUMNAR_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace cloudiq {

// Column types supported by the engine. DATE is stored as days since
// 1970-01-01 (int32 range), DECIMAL as a scaled int64 (two implied
// fraction digits, as TPC-H prices need).
enum class ColumnType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kDate = 3,
  kDecimal = 4,
};

const char* ColumnTypeName(ColumnType type);

// A single column's vector of values, in columnar form. Only the member
// matching the type is populated.
struct ColumnVector {
  ColumnType type = ColumnType::kInt64;
  std::vector<int64_t> ints;        // kInt64 / kDate / kDecimal
  std::vector<double> doubles;      // kDouble
  std::vector<std::string> strings; // kString

  size_t size() const {
    switch (type) {
      case ColumnType::kDouble:
        return doubles.size();
      case ColumnType::kString:
        return strings.size();
      default:
        return ints.size();
    }
  }
  void reserve(size_t n) {
    switch (type) {
      case ColumnType::kDouble:
        doubles.reserve(n);
        break;
      case ColumnType::kString:
        strings.reserve(n);
        break;
      default:
        ints.reserve(n);
    }
  }
};

// Days since epoch for a calendar date (proleptic Gregorian).
int64_t DaysFromCivil(int year, int month, int day);
// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

// Scaled-decimal helpers (2 fraction digits).
inline int64_t DecimalFromDouble(double v) {
  return static_cast<int64_t>(v * 100.0 + (v >= 0 ? 0.5 : -0.5));
}
inline double DecimalToDouble(int64_t v) { return v / 100.0; }

}  // namespace cloudiq

#endif  // CLOUDIQ_COLUMNAR_VALUE_H_
