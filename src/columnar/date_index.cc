#include "columnar/date_index.h"

#include "columnar/value.h"
#include "common/coding.h"

namespace cloudiq {
namespace {

// Page format mirrors the HG index: [count u32]{ [month key i64]
// [len u64][intervalset bytes] }*.
std::vector<uint8_t> EncodePage(
    const std::vector<std::pair<int64_t, const IntervalSet*>>& entries) {
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(entries.size()));
  for (const auto& [key, set] : entries) {
    PutI64(out, key);
    std::vector<uint8_t> bytes = set->Serialize();
    PutU64(out, bytes.size());
    PutBytes(out, bytes.data(), bytes.size());
  }
  return out;
}

Result<std::vector<std::pair<int64_t, IntervalSet>>> DecodePage(
    const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  uint32_t count = reader.GetU32();
  std::vector<std::pair<int64_t, IntervalSet>> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int64_t key = reader.GetI64();
    uint64_t len = reader.GetU64();
    entries.emplace_back(key,
                         IntervalSet::Deserialize(reader.GetBytes(len)));
  }
  if (reader.overflow()) return Status::Corruption("DATE index page");
  return entries;
}

Result<IntervalSet> LookupKeyRange(
    StorageObject* object,
    const std::vector<std::pair<int64_t, int64_t>>& page_ranges,
    int64_t lo, int64_t hi) {
  IntervalSet rows;
  std::vector<uint64_t> pages;
  for (size_t p = 0; p < page_ranges.size(); ++p) {
    if (page_ranges[p].second >= lo && page_ranges[p].first <= hi) {
      pages.push_back(p);
    }
  }
  CLOUDIQ_RETURN_IF_ERROR(object->Prefetch(pages));
  for (uint64_t p : pages) {
    CLOUDIQ_ASSIGN_OR_RETURN(BufferManager::PageData data,
                             object->ReadPage(p));
    CLOUDIQ_ASSIGN_OR_RETURN(auto entries, DecodePage(*data));
    for (const auto& [key, set] : entries) {
      if (key >= lo && key <= hi) {
        for (const auto& iv : set.Intervals()) {
          rows.InsertRange(iv.begin, iv.end);
        }
      }
    }
  }
  return rows;
}

}  // namespace

void DateIndex::Builder::Add(int64_t days, uint64_t row_id) {
  int year, month, day;
  CivilFromDays(days, &year, &month, &day);
  postings_[MonthKey(year, month)].Insert(row_id);
}

Result<std::vector<std::pair<int64_t, int64_t>>> DateIndex::Build(
    TransactionManager* txn_mgr, Transaction* txn, uint64_t object_id,
    DbSpace* space, const Builder& builder,
    uint64_t page_payload_target) {
  CLOUDIQ_ASSIGN_OR_RETURN(StorageObject * object,
                           txn_mgr->CreateObject(txn, object_id, space));
  std::vector<std::pair<int64_t, int64_t>> page_ranges;
  std::vector<std::pair<int64_t, const IntervalSet*>> pending;
  uint64_t pending_bytes = 0;
  auto flush_page = [&]() -> Status {
    if (pending.empty()) return Status::Ok();
    CLOUDIQ_RETURN_IF_ERROR(object->AppendPage(EncodePage(pending)).status());
    page_ranges.emplace_back(pending.front().first, pending.back().first);
    pending.clear();
    pending_bytes = 0;
    return Status::Ok();
  };
  for (const auto& [key, set] : builder.postings()) {
    uint64_t entry_bytes = 24 + 16 * set.IntervalCount();
    if (!pending.empty() &&
        pending_bytes + entry_bytes > page_payload_target) {
      CLOUDIQ_RETURN_IF_ERROR(flush_page());
    }
    pending.emplace_back(key, &set);
    pending_bytes += entry_bytes;
  }
  CLOUDIQ_RETURN_IF_ERROR(flush_page());
  return page_ranges;
}

Result<IntervalSet> DateIndex::LookupMonth(
    StorageObject* object,
    const std::vector<std::pair<int64_t, int64_t>>& page_ranges, int year,
    int month) {
  int64_t key = MonthKey(year, month);
  return LookupKeyRange(object, page_ranges, key, key);
}

Result<IntervalSet> DateIndex::LookupYearRange(
    StorageObject* object,
    const std::vector<std::pair<int64_t, int64_t>>& page_ranges,
    int year_lo, int year_hi) {
  return LookupKeyRange(object, page_ranges, MonthKey(year_lo, 1),
                        MonthKey(year_hi, 12));
}

}  // namespace cloudiq
