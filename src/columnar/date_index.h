#ifndef CLOUDIQ_COLUMNAR_DATE_INDEX_H_
#define CLOUDIQ_COLUMNAR_DATE_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/interval_set.h"
#include "common/result.h"
#include "txn/transaction_manager.h"

namespace cloudiq {

// DATE index (§1: SAP IQ "supports a wide range of other *niche* indexes
// (e.g., DATE/TIME/DTTM tailored for datepart queries)"). Where the HG
// index keys on raw values, the DATE index keys on *date parts*: one
// posting list per (year, month), so `WHERE month(col)=9 AND
// year(col)=1995` (Q14's shape) or `year(col) BETWEEN 1995 AND 1996`
// (Q7/Q8) resolve to row-id interval sets without scanning the column.
//
// Storage mirrors the HG index: postings packed into pages of a
// dedicated storage object, with per-page (year*12+month) key ranges in
// the table metadata acting as the inner levels.
class DateIndex {
 public:
  // Months are keyed as year*12 + (month-1).
  static int64_t MonthKey(int year, int month) {
    return static_cast<int64_t>(year) * 12 + (month - 1);
  }

  class Builder {
   public:
    // Adds a row whose date-typed value is `days` since epoch.
    void Add(int64_t days, uint64_t row_id);
    const std::map<int64_t, IntervalSet>& postings() const {
      return postings_;
    }
    bool empty() const { return postings_.empty(); }

   private:
    std::map<int64_t, IntervalSet> postings_;  // month key -> rows
  };

  // Writes the builder's postings into storage object `object_id`.
  // Returns per-page [min,max] month-key ranges for the table metadata.
  static Result<std::vector<std::pair<int64_t, int64_t>>> Build(
      TransactionManager* txn_mgr, Transaction* txn, uint64_t object_id,
      DbSpace* space, const Builder& builder, uint64_t page_payload_target);

  // Rows whose value falls in calendar month (year, month).
  static Result<IntervalSet> LookupMonth(
      StorageObject* object,
      const std::vector<std::pair<int64_t, int64_t>>& page_ranges,
      int year, int month);

  // Rows whose value falls in [year_lo, year_hi] (whole years).
  static Result<IntervalSet> LookupYearRange(
      StorageObject* object,
      const std::vector<std::pair<int64_t, int64_t>>& page_ranges,
      int year_lo, int year_hi);
};

}  // namespace cloudiq

#endif  // CLOUDIQ_COLUMNAR_DATE_INDEX_H_
