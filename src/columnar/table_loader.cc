#include "columnar/table_loader.h"

#include <algorithm>
#include <cassert>

#include "store/page_codec.h"

namespace cloudiq {
namespace {

uint64_t ValueBytes(const ColumnVector& col, size_t i) {
  switch (col.type) {
    case ColumnType::kString:
      return col.strings[i].size() + 4;
    default:
      return 8;
  }
}

void AppendValue(ColumnVector* dst, const ColumnVector& src, size_t i) {
  switch (src.type) {
    case ColumnType::kDouble:
      dst->doubles.push_back(src.doubles[i]);
      break;
    case ColumnType::kString:
      dst->strings.push_back(src.strings[i]);
      break;
    default:
      dst->ints.push_back(src.ints[i]);
  }
}

}  // namespace

TableLoader::TableLoader(TransactionManager* txn_mgr, Transaction* txn,
                         DbSpace* space, TableSchema schema,
                         Options options)
    : txn_mgr_(txn_mgr),
      txn_(txn),
      space_(space),
      schema_(std::move(schema)),
      options_(options) {
  partitions_.resize(schema_.partition_count());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    PartitionState& part = partitions_[p];
    part.staging.resize(schema_.columns.size());
    part.staged_col_bytes.resize(schema_.columns.size(), 0);
    part.objects.resize(schema_.columns.size(), nullptr);
    part.segments.resize(schema_.columns.size());
    part.index_builders.resize(schema_.hg_index_columns.size());
    part.date_index_builders.resize(schema_.date_index_columns.size());
    part.text_index_builders.resize(schema_.text_index_columns.size());
    for (size_t c = 0; c < schema_.columns.size(); ++c) {
      part.staging[c].type = schema_.columns[c].type;
      part.segments[c].object_id =
          ObjectIdFor(schema_.table_id, p, c);
    }
  }
}

size_t TableLoader::PartitionFor(int64_t value) const {
  for (size_t i = 0; i < schema_.partition_bounds.size(); ++i) {
    if (value < schema_.partition_bounds[i]) return i;
  }
  return schema_.partition_bounds.size();
}

Status TableLoader::Append(const std::vector<ColumnVector>& batch) {
  if (batch.size() != schema_.columns.size()) {
    return Status::InvalidArgument("batch column count mismatch");
  }
  size_t rows = batch.empty() ? 0 : batch[0].size();
  for (const ColumnVector& col : batch) {
    if (col.size() != rows) {
      return Status::InvalidArgument("ragged batch");
    }
  }

  uint64_t page_threshold = static_cast<uint64_t>(
      space_->page_size * options_.target_page_fill);
  for (size_t i = 0; i < rows; ++i) {
    size_t p = 0;
    if (schema_.partition_column >= 0) {
      p = PartitionFor(batch[schema_.partition_column].ints[i]);
    }
    PartitionState& part = partitions_[p];
    // Each column's staged footprint is tracked independently; a column
    // cuts a page as soon as *its* bytes near the page size.
    for (size_t c = 0; c < batch.size(); ++c) {
      AppendValue(&part.staging[c], batch[c], i);
      uint64_t bytes = ValueBytes(batch[c], i);
      cpu_seconds_ += options_.encode_cpu_per_byte * bytes;
      part.staged_col_bytes[c] += bytes;
      if (part.staged_col_bytes[c] >= page_threshold) {
        CLOUDIQ_RETURN_IF_ERROR(EmitColumnPage(&part, c));
      }
    }
    ++part.row_count;
    for (size_t s = 0; s < schema_.hg_index_columns.size(); ++s) {
      int col = schema_.hg_index_columns[s];
      part.index_builders[s].Add(batch[col].ints[i], part.row_count - 1);
    }
    for (size_t s = 0; s < schema_.date_index_columns.size(); ++s) {
      int col = schema_.date_index_columns[s];
      part.date_index_builders[s].Add(batch[col].ints[i],
                                      part.row_count - 1);
    }
    for (size_t s = 0; s < schema_.text_index_columns.size(); ++s) {
      int col = schema_.text_index_columns[s];
      part.text_index_builders[s].Add(batch[col].strings[i],
                                      part.row_count - 1);
    }
  }
  rows_appended_ += rows;
  return Status::Ok();
}

Status TableLoader::EmitColumnPage(PartitionState* part, size_t c) {
  size_t rows = part->staging[c].size();
  if (rows == 0) return Status::Ok();
  if (part->objects[c] == nullptr) {
    CLOUDIQ_ASSIGN_OR_RETURN(
        part->objects[c],
        txn_mgr_->CreateObject(txn_, part->segments[c].object_id, space_));
  }
  ZoneMapEntry zone;
  std::vector<uint8_t> payload =
      EncodeColumnPage(part->staging[c], 0, rows, &zone);
  cpu_seconds_ += options_.encode_cpu_per_byte * payload.size();
  // Record the stored frame size before the payload moves: the flush
  // pipeline wraps it in EncodePage (encryption is size-preserving), so
  // this is exactly what an S3 SELECT over the page bills as scanned.
  part->segments[c].page_bytes.push_back(
      static_cast<uint32_t>(EncodePage(payload).size()));
  CLOUDIQ_RETURN_IF_ERROR(
      part->objects[c]->AppendPage(std::move(payload)).status());
  part->segments[c].zones.push_back(zone);
  part->segments[c].page_rows.push_back(static_cast<uint32_t>(rows));
  part->segments[c].row_count += rows;
  part->staging[c] = ColumnVector();
  part->staging[c].type = schema_.columns[c].type;
  part->staged_col_bytes[c] = 0;
  return Status::Ok();
}

Result<TableMeta> TableLoader::Finish(SystemStore* system) {
  TableMeta meta;
  meta.schema = schema_;
  meta.partitions.resize(partitions_.size());
  uint64_t index_page_target = static_cast<uint64_t>(
      space_->page_size * options_.target_page_fill);

  for (size_t p = 0; p < partitions_.size(); ++p) {
    PartitionState& part = partitions_[p];
    for (size_t c = 0; c < schema_.columns.size(); ++c) {
      CLOUDIQ_RETURN_IF_ERROR(EmitColumnPage(&part, c));
    }
    PartitionMeta& pm = meta.partitions[p];
    pm.row_count = part.row_count;
    pm.columns = part.segments;

    for (size_t s = 0; s < schema_.hg_index_columns.size(); ++s) {
      uint64_t index_object =
          ObjectIdFor(schema_.table_id, p, 90 + s);
      if (part.index_builders[s].empty()) {
        pm.index_objects.push_back(0);
        pm.index_page_ranges.emplace_back();
        continue;
      }
      CLOUDIQ_ASSIGN_OR_RETURN(
          auto ranges,
          HgIndex::Build(txn_mgr_, txn_, index_object, space_,
                         part.index_builders[s], index_page_target));
      pm.index_objects.push_back(index_object);
      pm.index_page_ranges.push_back(std::move(ranges));
    }

    for (size_t s = 0; s < schema_.date_index_columns.size(); ++s) {
      uint64_t index_object = ObjectIdFor(schema_.table_id, p, 70 + s);
      if (part.date_index_builders[s].empty()) {
        pm.date_index_objects.push_back(0);
        pm.date_index_ranges.emplace_back();
        continue;
      }
      CLOUDIQ_ASSIGN_OR_RETURN(
          auto ranges,
          DateIndex::Build(txn_mgr_, txn_, index_object, space_,
                           part.date_index_builders[s],
                           index_page_target));
      pm.date_index_objects.push_back(index_object);
      pm.date_index_ranges.push_back(std::move(ranges));
    }

    for (size_t s = 0; s < schema_.text_index_columns.size(); ++s) {
      uint64_t index_object = ObjectIdFor(schema_.table_id, p, 60 + s);
      if (part.text_index_builders[s].empty()) {
        pm.text_index_objects.push_back(0);
        pm.text_index_ranges.emplace_back();
        continue;
      }
      CLOUDIQ_ASSIGN_OR_RETURN(
          auto ranges,
          TextIndex::Build(txn_mgr_, txn_, index_object, space_,
                           part.text_index_builders[s],
                           index_page_target));
      pm.text_index_objects.push_back(index_object);
      pm.text_index_ranges.push_back(std::move(ranges));
    }
  }

  SimClock& clock = txn_mgr_->storage().node()->clock();
  SimTime done = clock.now();
  CLOUDIQ_RETURN_IF_ERROR(system->Put(
      "tablemeta/" + std::to_string(schema_.table_id), meta.Serialize(),
      clock.now(), &done));
  clock.AdvanceTo(done);
  return meta;
}

}  // namespace cloudiq
