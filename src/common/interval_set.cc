#include "common/interval_set.h"

#include <cassert>
#include <cstring>

namespace cloudiq {

uint64_t IntervalSet::Count() const {
  uint64_t total = 0;
  for (const auto& [begin, end] : intervals_) total += end - begin;
  return total;
}

void IntervalSet::InsertRange(uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  // Find the first interval that could merge with [begin, end): any interval
  // whose end >= begin (adjacent counts as mergeable).
  auto it = intervals_.lower_bound(begin);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) it = prev;
  }
  while (it != intervals_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    it = intervals_.erase(it);
  }
  intervals_[begin] = end;
}

void IntervalSet::EraseRange(uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  auto it = intervals_.lower_bound(begin);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  while (it != intervals_.end() && it->first < end) {
    uint64_t ib = it->first;
    uint64_t ie = it->second;
    it = intervals_.erase(it);
    if (ib < begin) intervals_[ib] = begin;
    if (ie > end) {
      intervals_[end] = ie;
      break;
    }
  }
}

bool IntervalSet::Contains(uint64_t value) const {
  auto it = intervals_.upper_bound(value);
  if (it == intervals_.begin()) return false;
  --it;
  return value >= it->first && value < it->second;
}

uint64_t IntervalSet::Min() const {
  assert(!intervals_.empty());
  return intervals_.begin()->first;
}

uint64_t IntervalSet::Max() const {
  assert(!intervals_.empty());
  return std::prev(intervals_.end())->second - 1;
}

std::vector<IntervalSet::Interval> IntervalSet::Intervals() const {
  std::vector<Interval> out;
  out.reserve(intervals_.size());
  for (const auto& [begin, end] : intervals_) out.push_back({begin, end});
  return out;
}

std::vector<uint64_t> IntervalSet::Values() const {
  std::vector<uint64_t> out;
  out.reserve(Count());
  for (const auto& [begin, end] : intervals_) {
    for (uint64_t v = begin; v < end; ++v) out.push_back(v);
  }
  return out;
}

std::vector<uint8_t> IntervalSet::Serialize() const {
  std::vector<uint8_t> out(sizeof(uint64_t) * (1 + 2 * intervals_.size()));
  uint64_t count = intervals_.size();
  std::memcpy(out.data(), &count, sizeof(uint64_t));
  size_t off = sizeof(uint64_t);
  for (const auto& [begin, end] : intervals_) {
    std::memcpy(out.data() + off, &begin, sizeof(uint64_t));
    off += sizeof(uint64_t);
    std::memcpy(out.data() + off, &end, sizeof(uint64_t));
    off += sizeof(uint64_t);
  }
  return out;
}

IntervalSet IntervalSet::Deserialize(const std::vector<uint8_t>& bytes) {
  IntervalSet set;
  if (bytes.size() < sizeof(uint64_t)) return set;
  uint64_t count = 0;
  std::memcpy(&count, bytes.data(), sizeof(uint64_t));
  size_t off = sizeof(uint64_t);
  for (uint64_t i = 0; i < count; ++i) {
    if (off + 2 * sizeof(uint64_t) > bytes.size()) break;
    uint64_t begin = 0;
    uint64_t end = 0;
    std::memcpy(&begin, bytes.data() + off, sizeof(uint64_t));
    off += sizeof(uint64_t);
    std::memcpy(&end, bytes.data() + off, sizeof(uint64_t));
    off += sizeof(uint64_t);
    set.InsertRange(begin, end);
  }
  return set;
}

}  // namespace cloudiq
