#include "common/bitmap.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace cloudiq {

void Bitmap::Resize(uint64_t num_bits) {
  if (num_bits <= num_bits_) return;
  num_bits_ = num_bits;
  words_.resize((num_bits + kWordBits - 1) / kWordBits, 0);
}

void Bitmap::Set(uint64_t bit) {
  if (bit >= num_bits_) Resize(bit + 1);
  words_[bit / kWordBits] |= (uint64_t{1} << (bit % kWordBits));
}

void Bitmap::Clear(uint64_t bit) {
  if (bit >= num_bits_) return;
  words_[bit / kWordBits] &= ~(uint64_t{1} << (bit % kWordBits));
}

bool Bitmap::Test(uint64_t bit) const {
  if (bit >= num_bits_) return false;
  return (words_[bit / kWordBits] >> (bit % kWordBits)) & 1;
}

void Bitmap::SetRange(uint64_t begin, uint64_t end) {
  for (uint64_t b = begin; b < end; ++b) Set(b);
}

void Bitmap::ClearRange(uint64_t begin, uint64_t end) {
  for (uint64_t b = begin; b < end && b < num_bits_; ++b) Clear(b);
}

uint64_t Bitmap::CountSet() const {
  uint64_t count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

uint64_t Bitmap::FindClearRun(uint64_t from, uint64_t run_length) {
  assert(run_length > 0);
  uint64_t candidate = from;
  uint64_t run = 0;
  uint64_t bit = from;
  while (run < run_length) {
    if (bit >= num_bits_) {
      // Everything past the end is clear; the run completes here.
      return candidate;
    }
    if (Test(bit)) {
      candidate = bit + 1;
      run = 0;
    } else {
      ++run;
    }
    ++bit;
  }
  return candidate;
}

std::vector<uint64_t> Bitmap::SetBits() const {
  std::vector<uint64_t> bits;
  for (uint64_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      int tz = std::countr_zero(w);
      bits.push_back(wi * kWordBits + static_cast<uint64_t>(tz));
      w &= w - 1;
    }
  }
  return bits;
}

void Bitmap::UnionWith(const Bitmap& other) {
  Resize(other.num_bits_);
  for (uint64_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

void Bitmap::SubtractFrom(const Bitmap& other) {
  uint64_t n = std::min(words_.size(), other.words_.size());
  for (uint64_t i = 0; i < n; ++i) {
    words_[i] &= ~other.words_[i];
  }
}

std::vector<uint8_t> Bitmap::Serialize() const {
  std::vector<uint8_t> out(sizeof(uint64_t) * (1 + words_.size()));
  std::memcpy(out.data(), &num_bits_, sizeof(uint64_t));
  if (!words_.empty()) {
    std::memcpy(out.data() + sizeof(uint64_t), words_.data(),
                words_.size() * sizeof(uint64_t));
  }
  return out;
}

Bitmap Bitmap::Deserialize(const std::vector<uint8_t>& bytes) {
  Bitmap bm;
  if (bytes.size() < sizeof(uint64_t)) return bm;
  uint64_t num_bits = 0;
  std::memcpy(&num_bits, bytes.data(), sizeof(uint64_t));
  bm.Resize(num_bits);
  uint64_t payload_words = (bytes.size() - sizeof(uint64_t)) / sizeof(uint64_t);
  uint64_t n = std::min<uint64_t>(payload_words, bm.words_.size());
  if (n > 0) {
    std::memcpy(bm.words_.data(), bytes.data() + sizeof(uint64_t),
                n * sizeof(uint64_t));
  }
  return bm;
}

bool Bitmap::operator==(const Bitmap& other) const {
  // Bitmaps compare by set-bit content regardless of capacity.
  const Bitmap& a = words_.size() <= other.words_.size() ? *this : other;
  const Bitmap& b = words_.size() <= other.words_.size() ? other : *this;
  for (uint64_t i = 0; i < a.words_.size(); ++i) {
    if (a.words_[i] != b.words_[i]) return false;
  }
  for (uint64_t i = a.words_.size(); i < b.words_.size(); ++i) {
    if (b.words_[i] != 0) return false;
  }
  return true;
}

}  // namespace cloudiq
