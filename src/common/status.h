#ifndef CLOUDIQ_COMMON_STATUS_H_
#define CLOUDIQ_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace cloudiq {

// Operation outcome for all storage, transaction and engine APIs.
//
// CloudIQ does not use C++ exceptions on any data path; fallible operations
// return a Status (or Result<T>, see result.h). Statuses are cheap to copy
// for the common OK case (empty message, code only).
//
// [[nodiscard]] on the class makes every ignored `Status` return a
// compiler warning: a dropped error on a storage path can silently break
// the never-write-twice and RF/RB-GC invariants, so intentional drops
// must be spelled `(void)op();`.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,         // object / page / key does not exist (maybe *yet*:
                       // eventual consistency surfaces as kNotFound)
    kIoError,          // device-level failure
    kCorruption,       // checksum / format mismatch
    kInvalidArgument,  // caller error
    kAborted,          // transaction aborted (e.g., write retries exhausted)
    kBusy,             // resource saturated / throttled
    kAlreadyExists,    // e.g., attempt to write an object key twice
    kNotSupported,
    kFailedPrecondition,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg = "") {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string for logs and test diagnostics.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// Propagates a non-OK status to the caller. Usable only in functions
// returning Status.
#define CLOUDIQ_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::cloudiq::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (false)

}  // namespace cloudiq

#endif  // CLOUDIQ_COMMON_STATUS_H_
