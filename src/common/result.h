#ifndef CLOUDIQ_COMMON_RESULT_H_
#define CLOUDIQ_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace cloudiq {

// A value-or-error holder in the spirit of absl::StatusOr<T>.
//
// Usage:
//   Result<Page> r = store.ReadPage(id);
//   if (!r.ok()) return r.status();
//   Use(r.value());
//
// [[nodiscard]]: dropping a Result drops both the value and the error —
// never what the caller meant. Intentional drops spell `(void)op();`.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return status;` and `return value;` both work
  // inside functions declared to return Result<T>.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK Result must carry a value");
  }
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates `rexpr` (a Result<T>), propagates its error, or assigns the
// value to `lhs`.
#define CLOUDIQ_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  CLOUDIQ_ASSIGN_OR_RETURN_IMPL_(                            \
      CLOUDIQ_RESULT_CONCAT_(_result_tmp_, __LINE__), lhs, rexpr)

#define CLOUDIQ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define CLOUDIQ_RESULT_CONCAT_INNER_(a, b) a##b
#define CLOUDIQ_RESULT_CONCAT_(a, b) CLOUDIQ_RESULT_CONCAT_INNER_(a, b)

}  // namespace cloudiq

#endif  // CLOUDIQ_COMMON_RESULT_H_
