#ifndef CLOUDIQ_COMMON_BITMAP_H_
#define CLOUDIQ_COMMON_BITMAP_H_

#include <cstdint>
#include <vector>

namespace cloudiq {

// Dense, dynamically sized bitmap.
//
// Used for the freelist (one bit per storage block: set = in use) and for
// the block-range halves of the roll-forward / roll-back bitmaps. The bitmap
// grows on demand when bits beyond the current size are set; reads beyond
// the end return false.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(uint64_t num_bits) { Resize(num_bits); }

  // Grows (never shrinks) to hold at least `num_bits` bits.
  void Resize(uint64_t num_bits);

  uint64_t size_bits() const { return num_bits_; }

  void Set(uint64_t bit);
  void Clear(uint64_t bit);
  bool Test(uint64_t bit) const;

  // Sets / clears bits [begin, end).
  void SetRange(uint64_t begin, uint64_t end);
  void ClearRange(uint64_t begin, uint64_t end);

  // Number of set bits.
  uint64_t CountSet() const;

  // First clear bit index at or after `from` such that bits
  // [result, result + run_length) are all clear. Grows the bitmap if the run
  // must extend past the current end. Used by the freelist allocator.
  uint64_t FindClearRun(uint64_t from, uint64_t run_length);

  // Indices of all set bits in ascending order.
  std::vector<uint64_t> SetBits() const;

  // Merges another bitmap: every bit set in `other` becomes set here.
  void UnionWith(const Bitmap& other);
  // Clears every bit that is set in `other`.
  void SubtractFrom(const Bitmap& other);

  // Flat serialization: [num_bits][words...]. Used when bitmaps are flushed
  // to the system dbspace at commit time.
  std::vector<uint8_t> Serialize() const;
  static Bitmap Deserialize(const std::vector<uint8_t>& bytes);

  bool operator==(const Bitmap& other) const;

 private:
  static constexpr uint64_t kWordBits = 64;

  uint64_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_COMMON_BITMAP_H_
