#ifndef CLOUDIQ_COMMON_RANDOM_H_
#define CLOUDIQ_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace cloudiq {

// Deterministic pseudo-random generator (xoshiro256**). All randomness in
// CloudIQ — simulator jitter, TPC-H data generation, query stream
// permutations — flows through seeded Rng instances so that tests and
// benchmarks are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p.
  bool Bernoulli(double p);

  // Exponentially distributed with the given mean (for latency jitter).
  double Exponential(double mean);

 private:
  uint64_t s_[4];
};

// Computes the randomized key prefix that CloudIQ prepends to the 64-bit
// object key before storing it in the object store. AWS throttles request
// rates per key *prefix*; hashing the key (the paper uses a computationally
// efficient hash such as the Mersenne Twister's tempering transform) spreads
// consecutive keys across many prefixes so that a sequential allocator does
// not funnel all traffic into one rate-limit bucket.
uint64_t HashKeyPrefix(uint64_t key);

// Full object-store key string: "<hex prefix>/<hex key>".
std::string FormatObjectKey(uint64_t key);

}  // namespace cloudiq

#endif  // CLOUDIQ_COMMON_RANDOM_H_
