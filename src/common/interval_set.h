#ifndef CLOUDIQ_COMMON_INTERVAL_SET_H_
#define CLOUDIQ_COMMON_INTERVAL_SET_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace cloudiq {

// Set of uint64 values stored as coalesced half-open intervals [begin, end).
//
// The Object Key Generator hands out keys in monotonically increasing
// *ranges* precisely so that bookkeeping structures (active sets, RF/RB
// bitmap entries for cloud keys, post-restore garbage-collection sets) can
// be represented as a handful of intervals instead of millions of singleton
// bits. This container is that representation.
class IntervalSet {
 public:
  struct Interval {
    uint64_t begin;
    uint64_t end;  // exclusive
    bool operator==(const Interval& o) const {
      return begin == o.begin && end == o.end;
    }
  };

  IntervalSet() = default;

  bool empty() const { return intervals_.empty(); }

  // Total number of contained values.
  uint64_t Count() const;

  // Number of maximal intervals (bookkeeping footprint).
  size_t IntervalCount() const { return intervals_.size(); }

  void Insert(uint64_t value) { InsertRange(value, value + 1); }
  void InsertRange(uint64_t begin, uint64_t end);

  void Erase(uint64_t value) { EraseRange(value, value + 1); }
  void EraseRange(uint64_t begin, uint64_t end);

  bool Contains(uint64_t value) const;

  // Smallest / largest contained value. Undefined when empty.
  uint64_t Min() const;
  uint64_t Max() const;

  // All maximal intervals in ascending order.
  std::vector<Interval> Intervals() const;

  // All contained values in ascending order (use only for small sets,
  // e.g. in tests and garbage-collection polls).
  std::vector<uint64_t> Values() const;

  void Clear() { intervals_.clear(); }

  // Flat serialization: [count][begin,end]... little-endian.
  std::vector<uint8_t> Serialize() const;
  static IntervalSet Deserialize(const std::vector<uint8_t>& bytes);

  bool operator==(const IntervalSet& other) const {
    return intervals_ == other.intervals_;
  }

 private:
  // begin -> end, non-overlapping, non-adjacent.
  std::map<uint64_t, uint64_t> intervals_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_COMMON_INTERVAL_SET_H_
