#ifndef CLOUDIQ_COMMON_LOCK_RANKS_H_
#define CLOUDIQ_COMMON_LOCK_RANKS_H_

// GENERATED FILE — do not edit by hand.
//
// Emitted from LOCKS.md (the lock-rank manifest) by:
//   python3 tools/cloudiq_locks.py --emit-ranks src/common/lock_ranks.h
// scripts/check.sh locks fails if this file is stale (--check-ranks).
//
// Rank ascends toward the leaves: a thread may acquire a mutex only
// while every mutex it already holds has a strictly smaller rank.
// Rank 0 means unranked (tests/benches); the tripwire ignores it.

namespace cloudiq {
namespace lockrank {

inline constexpr int kWorkloadEngine = 10;
inline constexpr int kTaskPool = 15;
inline constexpr int kAdmissionController = 20;
inline constexpr int kFairScheduler = 21;
inline constexpr int kStepFiber = 25;
inline constexpr int kMultiplex = 30;
inline constexpr int kTransactionManager = 40;
inline constexpr int kSnapshotManager = 45;
inline constexpr int kBufferManager = 50;
inline constexpr int kObjectCacheManager = 55;
inline constexpr int kObjectKeyGenerator = 60;
inline constexpr int kNodeKeyCache = 61;
inline constexpr int kSimObjectStore = 70;
inline constexpr int kSpendPredictor = 80;
inline constexpr int kStallProfiler = 90;
inline constexpr int kCostLedger = 91;
inline constexpr int kStatsRegistry = 92;
inline constexpr int kTracer = 93;

// Human name for a rank, for tripwire diagnostics.
inline constexpr const char* RankName(int rank) {
  switch (rank) {
    case 10: return "WorkloadEngine";
    case 15: return "TaskPool";
    case 20: return "AdmissionController";
    case 21: return "FairScheduler";
    case 25: return "StepFiber";
    case 30: return "Multiplex";
    case 40: return "TransactionManager";
    case 45: return "SnapshotManager";
    case 50: return "BufferManager";
    case 55: return "ObjectCacheManager";
    case 60: return "ObjectKeyGenerator";
    case 61: return "NodeKeyCache";
    case 70: return "SimObjectStore";
    case 80: return "SpendPredictor";
    case 90: return "StallProfiler";
    case 91: return "CostLedger";
    case 92: return "StatsRegistry";
    case 93: return "Tracer";
    default: return "unranked";
  }
}

}  // namespace lockrank
}  // namespace cloudiq

#endif  // CLOUDIQ_COMMON_LOCK_RANKS_H_
