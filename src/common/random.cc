#include "common/random.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace cloudiq {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  return Next() % bound;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u >= 1.0) u = 0.9999999999;
  return -mean * std::log(1.0 - u);
}

uint64_t HashKeyPrefix(uint64_t key) {
  // The Mersenne Twister tempering transform, applied to both 32-bit halves
  // of the key. Cheap (a handful of shifts/xors), stateless and well mixing —
  // the properties §3.1 of the paper asks of the prefixing hash.
  auto temper = [](uint32_t y) {
    y ^= y >> 11;
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= y >> 18;
    return y;
  };
  uint32_t lo = temper(static_cast<uint32_t>(key));
  uint32_t hi = temper(static_cast<uint32_t>(key >> 32) ^ lo);
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

std::string FormatObjectKey(uint64_t key) {
  char buf[64];
  // 16-hex-digit hashed prefix, then the raw key. The prefix is what the
  // object store's rate limiter buckets on.
  std::snprintf(buf, sizeof(buf), "%016llx/%016llx",
                static_cast<unsigned long long>(HashKeyPrefix(key)),
                static_cast<unsigned long long>(key));
  return std::string(buf);
}

}  // namespace cloudiq
