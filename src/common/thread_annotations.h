#ifndef CLOUDIQ_COMMON_THREAD_ANNOTATIONS_H_
#define CLOUDIQ_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes (-Wthread-safety).
//
// CloudIQ's concurrency model is narrow by design — StepFiber's strict
// host/fiber handoff serializes almost everything — but the invariants the
// paper depends on (never-write-an-object-twice, RF/RB GC safety,
// deterministic replay) live or die on lock discipline around the shared
// managers. These macros make that discipline machine-checked: members are
// declared GUARDED_BY their mutex, internal helpers declare REQUIRES, and
// `scripts/check.sh annotations` builds src/ under Clang with
// `-Wthread-safety -Werror`. Under GCC (the default toolchain in CI
// images without Clang) every macro expands to nothing, so the annotations
// are free documentation.
//
// The vocabulary matches the Clang documentation (and Abseil's
// thread_annotations.h) so the annotations read like any other modern
// C++ systems codebase:
//   GUARDED_BY(mu)    field accessed only with `mu` held
//   PT_GUARDED_BY(mu) pointee accessed only with `mu` held
//   REQUIRES(mu)      function must be called with `mu` held
//   EXCLUDES(mu)      function must be called with `mu` NOT held
//   ACQUIRE/RELEASE   function acquires / releases `mu`
//   CAPABILITY        class is a lockable capability (see common/mutex.h)
//   SCOPED_CAPABILITY RAII class that acquires in ctor, releases in dtor

#if defined(__clang__) && defined(__has_attribute)
#define CLOUDIQ_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CLOUDIQ_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) CLOUDIQ_THREAD_ANNOTATION_(capability(x))

#define SCOPED_CAPABILITY CLOUDIQ_THREAD_ANNOTATION_(scoped_lockable)

#define GUARDED_BY(x) CLOUDIQ_THREAD_ANNOTATION_(guarded_by(x))

#define PT_GUARDED_BY(x) CLOUDIQ_THREAD_ANNOTATION_(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  CLOUDIQ_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  CLOUDIQ_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  CLOUDIQ_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  CLOUDIQ_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  CLOUDIQ_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  CLOUDIQ_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  CLOUDIQ_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  CLOUDIQ_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  CLOUDIQ_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  CLOUDIQ_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  CLOUDIQ_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) CLOUDIQ_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  CLOUDIQ_THREAD_ANNOTATION_(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  CLOUDIQ_THREAD_ANNOTATION_(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) CLOUDIQ_THREAD_ANNOTATION_(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  CLOUDIQ_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CLOUDIQ_COMMON_THREAD_ANNOTATIONS_H_
