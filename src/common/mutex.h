#ifndef CLOUDIQ_COMMON_MUTEX_H_
#define CLOUDIQ_COMMON_MUTEX_H_

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iterator>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/lock_ranks.h"
#include "common/thread_annotations.h"

namespace cloudiq {

// Process-wide count of contended Mutex acquisitions (Lock() calls whose
// initial try_lock failed). This is *wall-clock* contention between OS
// threads, which is scheduler-dependent and therefore deliberately kept
// out of the deterministic report JSON; the stall profiler's kLockWait
// class books the *simulated* serialization instead. The counter is
// surfaced only in --profile's stdout summary as a sanity signal that
// real contention stays negligible.
inline std::atomic<uint64_t>& MutexContentionCounter() {
  static std::atomic<uint64_t> contended{0};
  return contended;
}

// Runtime lock-rank tripwire — the dynamic counterpart of the static
// analyzer in tools/cloudiq_locks.py. Every ranked Mutex (constructed
// with a lockrank:: constant from the generated src/common/lock_ranks.h,
// which tools/cloudiq_locks.py emits from LOCKS.md) reports its
// acquisitions and releases here; a per-thread stack of held ranks is
// kept, and acquiring a mutex whose rank is not strictly greater than
// every held rank is a lock-order inversion. The check runs *before*
// blocking on the lock, so an actual deadlock becomes a loud abort with
// the held stack printed instead of a hang. Unranked mutexes (rank 0 —
// tests, benches, fixtures) are invisible to the observer.
//
// On by default in every build, including the ASan/UBSan/TSan sweeps;
// set CLOUDIQ_LOCK_RANK_CHECK=0 in the environment to opt out. Tests
// install a failure handler to observe violations without dying (no
// death-test machinery, which TSan dislikes); the default handler
// prints and aborts.
class LockRankObserver {
 public:
  struct Held {
    int rank;
    const void* mu;
  };

  using FailureHandler = std::function<void(const std::string&)>;

  static bool Enabled() {
    static const bool enabled = [] {
      const char* v = std::getenv("CLOUDIQ_LOCK_RANK_CHECK");
      return v == nullptr || v[0] != '0';
    }();
    return enabled;
  }

  // Called before blocking on a ranked mutex; trips on inversion.
  static void BeforeAcquire(int rank) {
    if (rank == 0 || !Enabled() || bypass_depth_ > 0) return;
    for (const Held& held : HeldStack()) {
      if (rank <= held.rank) {
        Fail(rank, held);
        return;
      }
    }
  }

  // Called after a ranked mutex is actually held.
  static void AfterAcquire(int rank, const void* mu) {
    if (rank == 0 || !Enabled()) return;
    HeldStack().push_back(Held{rank, mu});
  }

  // Called before a ranked mutex is released; removes the most recent
  // entry for this mutex (releases may be out of LIFO order — e.g.
  // MutexUnlock re-acquires above an outer scope's eventual release).
  static void BeforeRelease(int rank, const void* mu) {
    if (rank == 0 || !Enabled()) return;
    auto& stack = HeldStack();
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->mu == mu) {
        stack.erase(std::next(it).base());
        return;
      }
    }
  }

  // Installs a failure handler for the current process (tests only);
  // returns the previous one. Pass nullptr to restore print-and-abort.
  static FailureHandler InstallFailureHandler(FailureHandler handler) {
    FailureHandler prev = std::move(HandlerSlot());
    HandlerSlot() = std::move(handler);
    return prev;
  }

  // The current thread's held-rank stack (ranked mutexes only), deepest
  // acquisition last. Exposed for tests.
  static std::vector<Held>& HeldStack() {
    thread_local std::vector<Held> stack;
    return stack;
  }

 private:
  friend class ScopedLockRankBypass;

  static FailureHandler& HandlerSlot() {
    static FailureHandler handler;
    return handler;
  }

  static void Fail(int rank, const Held& blocking) {
    std::string msg = "lock-rank inversion: acquiring ";
    msg += lockrank::RankName(rank);
    msg += " (rank " + std::to_string(rank) + ") while holding ";
    msg += lockrank::RankName(blocking.rank);
    msg += " (rank " + std::to_string(blocking.rank) + "); held stack:";
    for (const Held& held : HeldStack()) {
      msg += ' ';
      msg += lockrank::RankName(held.rank);
      msg += "=" + std::to_string(held.rank);
    }
    if (HandlerSlot()) {
      HandlerSlot()(msg);
      return;
    }
    std::fprintf(stderr, "CLOUDIQ LOCK-RANK TRIPWIRE: %s\n", msg.c_str());
    std::abort();
  }

  static thread_local int bypass_depth_;
};

inline thread_local int LockRankObserver::bypass_depth_ = 0;

// Suspends inversion *checking* (acquisitions are still tracked) on the
// current thread — for the one legitimate same-rank pattern: two
// instances of the same class locked together (ObjectKeyGenerator's
// move-assignment). Pair every use with a
// `// NOLINT(cloudiq-lock-order): why` so the static analyzer agrees.
class ScopedLockRankBypass {
 public:
  ScopedLockRankBypass() { ++LockRankObserver::bypass_depth_; }
  ~ScopedLockRankBypass() { --LockRankObserver::bypass_depth_; }

  ScopedLockRankBypass(const ScopedLockRankBypass&) = delete;
  ScopedLockRankBypass& operator=(const ScopedLockRankBypass&) = delete;
};

// Annotated mutex: std::mutex wrapped as a Clang thread-safety
// *capability* so -Wthread-safety can verify lock discipline statically
// (libstdc++'s std::mutex carries no annotations).
//
// Locking rules in CloudIQ, enforced by these types plus the annotations:
//
//  1. A class's mutex guards only that class's own containers, counters
//     and cursors (leaf state). It is NEVER held across a callback, a
//     simulated I/O, or a call into another manager — those paths can
//     re-enter the same class on the same thread (BufferManager's flush
//     callback re-enters TransactionManager; IoScheduler::RunParallel
//     drains SimExecutor tasks that re-enter the OCM), and Mutex is not
//     recursive by design.
//  2. Lock ordering is the layering order: a higher layer's mutex may be
//     held while taking a lower layer's leaf lock (telemetry: Tracer,
//     StatsRegistry, CostLedger), never the reverse.
//  3. Private helpers that expect the caller's lock declare REQUIRES(mu_);
//     public entry points take the lock themselves and are therefore
//     implicitly EXCLUDES(mu_).
class CAPABILITY("mutex") Mutex {
 public:
  // An unranked mutex — invisible to the lock-rank tripwire. For code
  // outside src/ (tests, benches); every Mutex member inside src/ must
  // instead carry its LOCKS.md rank (tools/cloudiq_locks.py enforces).
  Mutex() = default;
  // A ranked mutex: pass the owner class's lockrank:: constant, e.g.
  //   mutable Mutex mu_{lockrank::kBufferManager};
  explicit Mutex(int rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // Contended-acquire instrumentation: an uncontended lock is one
  // try_lock (same atomic op as lock's fast path); a contended one bumps
  // the process-wide counter before blocking.
  void Lock() ACQUIRE() {
    LockRankObserver::BeforeAcquire(rank_);
    if (!mu_.try_lock()) {
      MutexContentionCounter().fetch_add(1, std::memory_order_relaxed);
      mu_.lock();
    }
    LockRankObserver::AfterAcquire(rank_, this);
  }
  void Unlock() RELEASE() {
    LockRankObserver::BeforeRelease(rank_, this);
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    // A TryLock can never deadlock, but an out-of-rank TryLock is still
    // a discipline violation — it becomes a blocking Lock the day
    // someone "fixes" a spurious failure — so it is checked the same.
    LockRankObserver::BeforeAcquire(rank_);
    if (!mu_.try_lock()) return false;
    LockRankObserver::AfterAcquire(rank_, this);
    return true;
  }

  // Static-analysis assertion for paths where the lock is known held but
  // the analysis cannot see it (e.g. across a std::function boundary).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const int rank_ = 0;
};

// RAII lock; the annotated replacement for std::lock_guard<std::mutex>.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Inverse scope: temporarily releases a held mutex for a callback /
// re-entrant region inside a REQUIRES(mu) function, re-acquiring on exit.
class SCOPED_CAPABILITY MutexUnlock {
 public:
  explicit MutexUnlock(Mutex* mu) RELEASE(mu) : mu_(mu) { mu_->Unlock(); }
  ~MutexUnlock() ACQUIRE() { mu_->Lock(); }

  MutexUnlock(const MutexUnlock&) = delete;
  MutexUnlock& operator=(const MutexUnlock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable bound to Mutex. condition_variable_any because the
// capability wrapper is not a std::mutex; the predicate overload is the
// only form CloudIQ uses (spurious wakeups handled by construction).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) REQUIRES(mu) {
    WaitUnannotated(mu, pred);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // The analysis cannot model a condvar's unlock/relock cycle; the REQUIRES
  // on Wait() is the contract callers are checked against.
  template <typename Predicate>
  void WaitUnannotated(Mutex* mu, Predicate pred) NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu->mu_, pred);
  }

  // condition_variable_any carries its own internal mutex so it can wait
  // on any BasicLockable; the capability wrapper satisfies that shape via
  // the raw std::mutex handle.
  std::condition_variable_any cv_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_COMMON_MUTEX_H_
