#ifndef CLOUDIQ_COMMON_MUTEX_H_
#define CLOUDIQ_COMMON_MUTEX_H_

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace cloudiq {

// Process-wide count of contended Mutex acquisitions (Lock() calls whose
// initial try_lock failed). This is *wall-clock* contention between OS
// threads, which is scheduler-dependent and therefore deliberately kept
// out of the deterministic report JSON; the stall profiler's kLockWait
// class books the *simulated* serialization instead. The counter is
// surfaced only in --profile's stdout summary as a sanity signal that
// real contention stays negligible.
inline std::atomic<uint64_t>& MutexContentionCounter() {
  static std::atomic<uint64_t> contended{0};
  return contended;
}

// Annotated mutex: std::mutex wrapped as a Clang thread-safety
// *capability* so -Wthread-safety can verify lock discipline statically
// (libstdc++'s std::mutex carries no annotations).
//
// Locking rules in CloudIQ, enforced by these types plus the annotations:
//
//  1. A class's mutex guards only that class's own containers, counters
//     and cursors (leaf state). It is NEVER held across a callback, a
//     simulated I/O, or a call into another manager — those paths can
//     re-enter the same class on the same thread (BufferManager's flush
//     callback re-enters TransactionManager; IoScheduler::RunParallel
//     drains SimExecutor tasks that re-enter the OCM), and Mutex is not
//     recursive by design.
//  2. Lock ordering is the layering order: a higher layer's mutex may be
//     held while taking a lower layer's leaf lock (telemetry: Tracer,
//     StatsRegistry, CostLedger), never the reverse.
//  3. Private helpers that expect the caller's lock declare REQUIRES(mu_);
//     public entry points take the lock themselves and are therefore
//     implicitly EXCLUDES(mu_).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // Contended-acquire instrumentation: an uncontended lock is one
  // try_lock (same atomic op as lock's fast path); a contended one bumps
  // the process-wide counter before blocking.
  void Lock() ACQUIRE() {
    if (!mu_.try_lock()) {
      MutexContentionCounter().fetch_add(1, std::memory_order_relaxed);
      mu_.lock();
    }
  }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Static-analysis assertion for paths where the lock is known held but
  // the analysis cannot see it (e.g. across a std::function boundary).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock; the annotated replacement for std::lock_guard<std::mutex>.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Inverse scope: temporarily releases a held mutex for a callback /
// re-entrant region inside a REQUIRES(mu) function, re-acquiring on exit.
class SCOPED_CAPABILITY MutexUnlock {
 public:
  explicit MutexUnlock(Mutex* mu) RELEASE(mu) : mu_(mu) { mu_->Unlock(); }
  ~MutexUnlock() ACQUIRE() { mu_->Lock(); }

  MutexUnlock(const MutexUnlock&) = delete;
  MutexUnlock& operator=(const MutexUnlock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable bound to Mutex. condition_variable_any because the
// capability wrapper is not a std::mutex; the predicate overload is the
// only form CloudIQ uses (spurious wakeups handled by construction).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) REQUIRES(mu) {
    WaitUnannotated(mu, pred);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // The analysis cannot model a condvar's unlock/relock cycle; the REQUIRES
  // on Wait() is the contract callers are checked against.
  template <typename Predicate>
  void WaitUnannotated(Mutex* mu, Predicate pred) NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu->mu_, pred);
  }

  // condition_variable_any carries its own internal mutex so it can wait
  // on any BasicLockable; the capability wrapper satisfies that shape via
  // the raw std::mutex handle.
  std::condition_variable_any cv_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_COMMON_MUTEX_H_
