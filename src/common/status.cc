#include "common/status.h"

namespace cloudiq {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kIoError:
      return "IO_ERROR";
    case Status::Code::kCorruption:
      return "CORRUPTION";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kAborted:
      return "ABORTED";
    case Status::Code::kBusy:
      return "BUSY";
    case Status::Code::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Status::Code::kNotSupported:
      return "NOT_SUPPORTED";
    case Status::Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cloudiq
