#ifndef CLOUDIQ_COMMON_CODING_H_
#define CLOUDIQ_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cloudiq {

// Little-endian fixed-width encoding helpers used by every on-"disk"
// structure (pages, blockmap nodes, transaction-log records, snapshot
// metadata). Keeping one scheme repo-wide makes serialized artifacts
// comparable across modules and in tests.

inline void PutU64(std::vector<uint8_t>& dst, uint64_t v) {
  size_t off = dst.size();
  dst.resize(off + sizeof(v));
  std::memcpy(dst.data() + off, &v, sizeof(v));
}

inline void PutU32(std::vector<uint8_t>& dst, uint32_t v) {
  size_t off = dst.size();
  dst.resize(off + sizeof(v));
  std::memcpy(dst.data() + off, &v, sizeof(v));
}

inline void PutI64(std::vector<uint8_t>& dst, int64_t v) {
  PutU64(dst, static_cast<uint64_t>(v));
}

inline void PutDouble(std::vector<uint8_t>& dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(dst, bits);
}

inline void PutBytes(std::vector<uint8_t>& dst, const uint8_t* src,
                     size_t n) {
  dst.insert(dst.end(), src, src + n);
}

inline void PutString(std::vector<uint8_t>& dst, const std::string& s) {
  PutU32(dst, static_cast<uint32_t>(s.size()));
  PutBytes(dst, reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

// Sequential reader over an encoded buffer. Out-of-bounds reads return
// zero values and latch `overflow()`; callers validating untrusted bytes
// check it once at the end.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  uint64_t GetU64() {
    uint64_t v = 0;
    Read(&v, sizeof(v));
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    Read(&v, sizeof(v));
    return v;
  }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetDouble() {
    uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::vector<uint8_t> GetBytes(size_t n) {
    if (pos_ + n > size_) {
      overflow_ = true;
      return {};
    }
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  std::string GetString() {
    uint32_t n = GetU32();
    if (pos_ + n > size_) {
      overflow_ = true;
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  size_t remaining() const { return size_ - pos_; }
  bool overflow() const { return overflow_; }

 private:
  void Read(void* dst, size_t n) {
    if (pos_ + n > size_) {
      overflow_ = true;
      return;
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool overflow_ = false;
};

// FNV-1a checksum used in page headers to detect torn or corrupt reads.
inline uint64_t Checksum64(const uint8_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace cloudiq

#endif  // CLOUDIQ_COMMON_CODING_H_
