#include "ndp/ndp_engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "columnar/encoding.h"
#include "store/page_codec.h"

namespace cloudiq {
namespace ndp {
namespace {

// One request column with its pages decoded, plus a monotone cursor so
// row lookups across the ascending row scan stay O(1) amortized.
struct DecodedColumn {
  const NdpColumn* meta = nullptr;
  std::vector<ColumnVector> pages;  // parallel to meta->pages
  size_t cursor = 0;

  // Index of the page covering `row`, or npos. Rows are probed in
  // ascending order, so the cursor only moves forward.
  static constexpr size_t npos = std::numeric_limits<size_t>::max();
  size_t PageFor(uint64_t row) {
    while (cursor < meta->pages.size() &&
           meta->pages[cursor].first_row + meta->pages[cursor].row_count <=
               row) {
      ++cursor;
    }
    if (cursor >= meta->pages.size() ||
        meta->pages[cursor].first_row > row) {
      return npos;
    }
    return cursor;
  }
};

// Three-way comparison of column value (col, page, offset) against the
// literal carried by a kCmp node.
int CompareValue(const DecodedColumn& col, size_t page, size_t offset,
                 const NdpExpr& e) {
  const ColumnVector& vals = col.pages[page];
  if (vals.type == ColumnType::kString) {
    const std::string& lhs = vals.strings[offset];
    if (lhs < e.string_literal) return -1;
    if (lhs > e.string_literal) return 1;
    return 0;
  }
  if (vals.type == ColumnType::kDouble ||
      e.literal_type == ColumnType::kDouble) {
    double lhs = vals.type == ColumnType::kDouble
                     ? vals.doubles[offset]
                     : static_cast<double>(vals.ints[offset]);
    double rhs = e.literal_type == ColumnType::kDouble
                     ? e.double_literal
                     : static_cast<double>(e.int_literal);
    if (lhs < rhs) return -1;
    if (lhs > rhs) return 1;
    return 0;
  }
  int64_t lhs = vals.ints[offset];
  int64_t rhs = e.int_literal;
  if (lhs < rhs) return -1;
  if (lhs > rhs) return 1;
  return 0;
}

bool EvalCmp(CmpOp cmp, int c) {
  switch (cmp) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

// Evaluates `e` for the row whose per-column (page, offset) coordinates
// are in `where` (npos-free by the time we get here).
bool EvalExpr(const NdpExpr& e, std::vector<DecodedColumn>& cols,
              const std::vector<std::pair<size_t, size_t>>& where) {
  switch (e.op) {
    case ExprOp::kTrue:
      return true;
    case ExprOp::kCmp: {
      const auto& [page, offset] = where[e.column];
      return EvalCmp(e.cmp, CompareValue(cols[e.column], page, offset, e));
    }
    case ExprOp::kAnd:
      for (const NdpExpr& child : e.children) {
        if (!EvalExpr(child, cols, where)) return false;
      }
      return true;
    case ExprOp::kOr:
      for (const NdpExpr& child : e.children) {
        if (EvalExpr(child, cols, where)) return true;
      }
      return false;
    case ExprOp::kNot:
      return !EvalExpr(e.children[0], cols, where);
  }
  return false;
}

void AppendValue(const ColumnVector& src, size_t offset, ColumnVector* dst) {
  switch (src.type) {
    case ColumnType::kDouble:
      dst->doubles.push_back(src.doubles[offset]);
      break;
    case ColumnType::kString:
      dst->strings.push_back(src.strings[offset]);
      break;
    default:
      dst->ints.push_back(src.ints[offset]);
  }
}

// Running state for one aggregate.
struct AggState {
  bool seen = false;
  int64_t count = 0;
  int64_t int_acc = 0;
  double double_acc = 0;
  std::string string_acc;
};

}  // namespace

Result<std::vector<std::string>> NdpEngine::KeysOf(
    const std::vector<uint8_t>& request) const {
  CLOUDIQ_ASSIGN_OR_RETURN(NdpRequest req, NdpRequest::Deserialize(request));
  std::vector<std::string> keys;
  for (const NdpColumn& col : req.columns) {
    for (const NdpPageRef& page : col.pages) keys.push_back(page.key);
  }
  return keys;
}

Result<NdpResult> NdpEngine::Evaluate(
    const NdpRequest& req,
    const std::vector<const std::vector<uint8_t>*>& pages) {
  // Decode every page frame into its column vector, column-major in
  // KeysOf order.
  std::vector<DecodedColumn> cols(req.columns.size());
  size_t page_index = 0;
  for (size_t c = 0; c < req.columns.size(); ++c) {
    cols[c].meta = &req.columns[c];
    cols[c].pages.reserve(req.columns[c].pages.size());
    for (const NdpPageRef& ref : req.columns[c].pages) {
      if (page_index >= pages.size() || pages[page_index] == nullptr) {
        return Status::InvalidArgument("NDP page payloads do not match "
                                       "request refs");
      }
      CLOUDIQ_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                               DecodePage(*pages[page_index]));
      CLOUDIQ_ASSIGN_OR_RETURN(ColumnVector vals,
                               DecodeColumnPage(payload));
      if (vals.size() != ref.row_count || vals.type != req.columns[c].type) {
        return Status::InvalidArgument(
            "NDP page shape mismatch for " + ref.key);
      }
      cols[c].pages.push_back(std::move(vals));
      ++page_index;
    }
  }
  if (page_index != pages.size()) {
    return Status::InvalidArgument("NDP page payloads do not match "
                                   "request refs");
  }

  // Validate aggregates up front (SUM over strings has no meaning).
  for (const NdpAggregate& agg : req.aggregates) {
    if (agg.op == AggOp::kSum &&
        req.columns[agg.column].type == ColumnType::kString) {
      return Status::InvalidArgument("NDP SUM over a string column");
    }
  }

  NdpResult result;
  result.is_aggregate = !req.aggregates.empty();
  std::vector<size_t> projected;
  if (!result.is_aggregate) {
    for (size_t c = 0; c < req.columns.size(); ++c) {
      if (!req.columns[c].projected) continue;
      projected.push_back(c);
      ColumnVector out;
      out.type = req.columns[c].type;
      result.columns.push_back(std::move(out));
    }
  }
  std::vector<AggState> agg_states(req.aggregates.size());

  // Drive the scan by the first column's pages; a row qualifies only if
  // every request column covers it (each cursor moves forward once per
  // scan, so the whole pass is linear in pages + rows).
  std::vector<std::pair<size_t, size_t>> where(req.columns.size());
  for (const NdpPageRef& drive : req.columns[0].pages) {
    for (uint64_t row = drive.first_row;
         row < drive.first_row + drive.row_count; ++row) {
      bool covered = true;
      for (size_t c = 0; c < cols.size(); ++c) {
        size_t page = cols[c].PageFor(row);
        if (page == DecodedColumn::npos) {
          covered = false;
          break;
        }
        where[c] = {page, row - req.columns[c].pages[page].first_row};
      }
      if (!covered) continue;
      if (!EvalExpr(req.filter, cols, where)) continue;
      ++result.rows_matched;
      if (!result.is_aggregate) {
        for (size_t i = 0; i < projected.size(); ++i) {
          size_t c = projected[i];
          AppendValue(cols[c].pages[where[c].first], where[c].second,
                      &result.columns[i]);
        }
        continue;
      }
      for (size_t a = 0; a < req.aggregates.size(); ++a) {
        const NdpAggregate& agg = req.aggregates[a];
        AggState& st = agg_states[a];
        ++st.count;
        if (agg.op == AggOp::kCount) continue;
        const DecodedColumn& col = cols[agg.column];
        const ColumnVector& vals = col.pages[where[agg.column].first];
        size_t offset = where[agg.column].second;
        switch (vals.type) {
          case ColumnType::kDouble: {
            double v = vals.doubles[offset];
            if (agg.op == AggOp::kSum) {
              st.double_acc += v;
            } else if (!st.seen ||
                       (agg.op == AggOp::kMin ? v < st.double_acc
                                              : v > st.double_acc)) {
              st.double_acc = v;
            }
            break;
          }
          case ColumnType::kString: {
            const std::string& v = vals.strings[offset];
            if (!st.seen || (agg.op == AggOp::kMin ? v < st.string_acc
                                                   : v > st.string_acc)) {
              st.string_acc = v;
            }
            break;
          }
          default: {
            int64_t v = vals.ints[offset];
            if (agg.op == AggOp::kSum) {
              st.int_acc += v;
            } else if (!st.seen || (agg.op == AggOp::kMin ? v < st.int_acc
                                                          : v > st.int_acc)) {
              st.int_acc = v;
            }
          }
        }
        st.seen = true;
      }
    }
  }

  if (result.is_aggregate) {
    for (size_t a = 0; a < req.aggregates.size(); ++a) {
      const NdpAggregate& agg = req.aggregates[a];
      const AggState& st = agg_states[a];
      ColumnVector out;
      ColumnType col_type = req.columns[agg.column].type;
      switch (agg.op) {
        case AggOp::kCount:
          out.type = ColumnType::kInt64;
          out.ints.push_back(st.count);
          break;
        case AggOp::kSum:
          out.type = col_type;
          if (col_type == ColumnType::kDouble) {
            out.doubles.push_back(st.double_acc);
          } else {
            out.ints.push_back(st.int_acc);
          }
          break;
        case AggOp::kMin:
        case AggOp::kMax:
          out.type = col_type;
          // No matching rows: an empty (zero-row) result column.
          if (st.seen) {
            AppendValue(
                [&] {
                  ColumnVector v;
                  v.type = col_type;
                  v.ints.push_back(st.int_acc);
                  v.doubles.push_back(st.double_acc);
                  v.strings.push_back(st.string_acc);
                  return v;
                }(),
                0, &out);
          }
          break;
      }
      result.columns.push_back(std::move(out));
    }
  }
  return result;
}

Result<std::vector<uint8_t>> NdpEngine::Execute(
    const std::vector<uint8_t>& request,
    const std::vector<const std::vector<uint8_t>*>& pages) const {
  CLOUDIQ_ASSIGN_OR_RETURN(NdpRequest req, NdpRequest::Deserialize(request));
  CLOUDIQ_ASSIGN_OR_RETURN(NdpResult result, Evaluate(req, pages));
  return result.Serialize();
}

}  // namespace ndp
}  // namespace cloudiq
