#include "ndp/ndp_protocol.h"

#include <limits>
#include <utility>

#include "columnar/encoding.h"
#include "common/coding.h"

namespace cloudiq {
namespace ndp {
namespace {

// Wire-format guards: a malformed or adversarial request must fail the
// parse, never the server.
constexpr uint32_t kMaxColumns = 256;
constexpr uint32_t kMaxPagesPerColumn = 1u << 20;
constexpr uint32_t kMaxExprDepth = 64;
constexpr uint32_t kMaxExprChildren = 256;
constexpr uint32_t kMaxAggregates = 64;

bool ValidType(uint32_t t) {
  return t <= static_cast<uint32_t>(ColumnType::kDecimal);
}

void PutExpr(std::vector<uint8_t>& dst, const NdpExpr& e) {
  PutU32(dst, static_cast<uint32_t>(e.op));
  switch (e.op) {
    case ExprOp::kTrue:
      break;
    case ExprOp::kCmp:
      PutU32(dst, static_cast<uint32_t>(e.cmp));
      PutU32(dst, e.column);
      PutU32(dst, static_cast<uint32_t>(e.literal_type));
      PutI64(dst, e.int_literal);
      PutDouble(dst, e.double_literal);
      PutString(dst, e.string_literal);
      break;
    case ExprOp::kAnd:
    case ExprOp::kOr:
    case ExprOp::kNot:
      PutU32(dst, static_cast<uint32_t>(e.children.size()));
      for (const NdpExpr& child : e.children) PutExpr(dst, child);
      break;
  }
}

Status GetExpr(ByteReader& r, uint32_t depth, NdpExpr* out) {
  if (depth > kMaxExprDepth) {
    return Status::InvalidArgument("NDP filter nests too deep");
  }
  uint32_t op = r.GetU32();
  if (op > static_cast<uint32_t>(ExprOp::kNot)) {
    return Status::InvalidArgument("bad NDP filter op");
  }
  out->op = static_cast<ExprOp>(op);
  switch (out->op) {
    case ExprOp::kTrue:
      break;
    case ExprOp::kCmp: {
      uint32_t cmp = r.GetU32();
      if (cmp > static_cast<uint32_t>(CmpOp::kGe)) {
        return Status::InvalidArgument("bad NDP comparison op");
      }
      out->cmp = static_cast<CmpOp>(cmp);
      out->column = r.GetU32();
      uint32_t type = r.GetU32();
      if (!ValidType(type)) {
        return Status::InvalidArgument("bad NDP literal type");
      }
      out->literal_type = static_cast<ColumnType>(type);
      out->int_literal = r.GetI64();
      out->double_literal = r.GetDouble();
      out->string_literal = r.GetString();
      break;
    }
    case ExprOp::kAnd:
    case ExprOp::kOr:
    case ExprOp::kNot: {
      uint32_t n = r.GetU32();
      if (n == 0 || n > kMaxExprChildren ||
          (out->op == ExprOp::kNot && n != 1)) {
        return Status::InvalidArgument("bad NDP filter arity");
      }
      out->children.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        CLOUDIQ_RETURN_IF_ERROR(GetExpr(r, depth + 1, &out->children[i]));
        if (r.overflow()) {
          return Status::InvalidArgument("truncated NDP filter");
        }
      }
      break;
    }
  }
  return Status::Ok();
}

// Validates that every column reference in `e` is in range.
Status CheckColumns(const NdpExpr& e, size_t n_columns) {
  if (e.op == ExprOp::kCmp && e.column >= n_columns) {
    return Status::InvalidArgument("NDP filter references unknown column");
  }
  for (const NdpExpr& child : e.children) {
    CLOUDIQ_RETURN_IF_ERROR(CheckColumns(child, n_columns));
  }
  return Status::Ok();
}

}  // namespace

const char* NdpModeName(NdpMode mode) {
  switch (mode) {
    case NdpMode::kOff: return "off";
    case NdpMode::kOn: return "on";
    case NdpMode::kAuto: return "auto";
  }
  return "off";
}

Result<NdpMode> ParseNdpMode(const std::string& text) {
  if (text == "off") return NdpMode::kOff;
  if (text == "on") return NdpMode::kOn;
  if (text == "auto") return NdpMode::kAuto;
  return Status::InvalidArgument("bad NDP mode (want on|off|auto): " + text);
}

NdpExpr NdpExpr::True() { return NdpExpr{}; }

NdpExpr NdpExpr::CmpInt(uint32_t column, CmpOp cmp, int64_t literal) {
  NdpExpr e;
  e.op = ExprOp::kCmp;
  e.cmp = cmp;
  e.column = column;
  e.literal_type = ColumnType::kInt64;
  e.int_literal = literal;
  return e;
}

NdpExpr NdpExpr::And(std::vector<NdpExpr> children) {
  NdpExpr e;
  e.op = ExprOp::kAnd;
  e.children = std::move(children);
  return e;
}

std::vector<uint8_t> NdpRequest::Serialize() const {
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(columns.size()));
  for (const NdpColumn& col : columns) {
    PutString(out, col.name);
    PutU32(out, static_cast<uint32_t>(col.type));
    PutU32(out, col.projected ? 1 : 0);
    PutU32(out, static_cast<uint32_t>(col.pages.size()));
    for (const NdpPageRef& page : col.pages) {
      PutString(out, page.key);
      PutU64(out, page.first_row);
      PutU32(out, page.row_count);
    }
  }
  PutExpr(out, filter);
  PutU32(out, static_cast<uint32_t>(aggregates.size()));
  for (const NdpAggregate& agg : aggregates) {
    PutU32(out, static_cast<uint32_t>(agg.op));
    PutU32(out, agg.column);
  }
  return out;
}

Result<NdpRequest> NdpRequest::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  NdpRequest req;
  uint32_t n_columns = r.GetU32();
  if (n_columns == 0 || n_columns > kMaxColumns) {
    return Status::InvalidArgument("bad NDP column count");
  }
  req.columns.resize(n_columns);
  for (NdpColumn& col : req.columns) {
    col.name = r.GetString();
    uint32_t type = r.GetU32();
    if (!ValidType(type)) {
      return Status::InvalidArgument("bad NDP column type");
    }
    col.type = static_cast<ColumnType>(type);
    col.projected = r.GetU32() != 0;
    uint32_t n_pages = r.GetU32();
    if (n_pages > kMaxPagesPerColumn || r.overflow()) {
      return Status::InvalidArgument("bad NDP page count");
    }
    col.pages.resize(n_pages);
    uint64_t prev_end = 0;
    for (NdpPageRef& page : col.pages) {
      page.key = r.GetString();
      page.first_row = r.GetU64();
      page.row_count = r.GetU32();
      if (r.overflow()) {
        return Status::InvalidArgument("truncated NDP request");
      }
      if (page.key.empty() || page.row_count == 0 ||
          page.first_row < prev_end) {
        return Status::InvalidArgument("bad NDP page ref");
      }
      prev_end = page.first_row + page.row_count;
    }
  }
  CLOUDIQ_RETURN_IF_ERROR(GetExpr(r, 0, &req.filter));
  CLOUDIQ_RETURN_IF_ERROR(CheckColumns(req.filter, req.columns.size()));
  uint32_t n_aggs = r.GetU32();
  if (n_aggs > kMaxAggregates) {
    return Status::InvalidArgument("bad NDP aggregate count");
  }
  req.aggregates.resize(n_aggs);
  for (NdpAggregate& agg : req.aggregates) {
    uint32_t op = r.GetU32();
    if (op > static_cast<uint32_t>(AggOp::kMax)) {
      return Status::InvalidArgument("bad NDP aggregate op");
    }
    agg.op = static_cast<AggOp>(op);
    agg.column = r.GetU32();
    if (agg.column >= req.columns.size()) {
      return Status::InvalidArgument("NDP aggregate references unknown "
                                     "column");
    }
  }
  if (r.overflow() || r.remaining() != 0) {
    return Status::InvalidArgument("malformed NDP request");
  }
  return req;
}

std::vector<uint8_t> NdpResult::Serialize() const {
  std::vector<uint8_t> out;
  PutU32(out, is_aggregate ? 1 : 0);
  PutU64(out, rows_matched);
  PutU32(out, static_cast<uint32_t>(columns.size()));
  for (const ColumnVector& col : columns) {
    PutU32(out, static_cast<uint32_t>(col.type));
    PutU64(out, col.size());
    if (col.size() == 0) continue;
    // Re-encode through the columnar page encoding so the wire result is
    // as compressed as the stored pages the pull path would have moved.
    ZoneMapEntry zone;
    std::vector<uint8_t> encoded = EncodeColumnPage(col, 0, col.size(),
                                                    &zone);
    PutU32(out, static_cast<uint32_t>(encoded.size()));
    PutBytes(out, encoded.data(), encoded.size());
  }
  return out;
}

Result<NdpResult> NdpResult::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  NdpResult res;
  res.is_aggregate = r.GetU32() != 0;
  res.rows_matched = r.GetU64();
  uint32_t n_columns = r.GetU32();
  if (n_columns > kMaxColumns || r.overflow()) {
    return Status::InvalidArgument("bad NDP result column count");
  }
  res.columns.resize(n_columns);
  for (ColumnVector& col : res.columns) {
    uint32_t type = r.GetU32();
    if (!ValidType(type)) {
      return Status::InvalidArgument("bad NDP result column type");
    }
    col.type = static_cast<ColumnType>(type);
    uint64_t rows = r.GetU64();
    if (rows == 0) continue;
    uint32_t len = r.GetU32();
    if (r.overflow() || len > r.remaining()) {
      return Status::InvalidArgument("truncated NDP result");
    }
    std::vector<uint8_t> encoded = r.GetBytes(len);
    CLOUDIQ_ASSIGN_OR_RETURN(ColumnVector decoded,
                             DecodeColumnPage(encoded));
    if (decoded.size() != rows || decoded.type != col.type) {
      return Status::InvalidArgument("NDP result column mismatch");
    }
    col = std::move(decoded);
  }
  if (r.overflow() || r.remaining() != 0) {
    return Status::InvalidArgument("malformed NDP result");
  }
  return res;
}

}  // namespace ndp
}  // namespace cloudiq
