#ifndef CLOUDIQ_NDP_NDP_PROTOCOL_H_
#define CLOUDIQ_NDP_NDP_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/value.h"
#include "common/result.h"

namespace cloudiq {
namespace ndp {

// Consumer-side pushdown policy (Taurus-style NDP). kOff pulls every
// page over the NIC (the seed behavior), kOn pushes every eligible scan
// into the store, kAuto lets the executor pick per scan with a
// bytes-moved cost heuristic (surfaced in EXPLAIN).
enum class NdpMode { kOff = 0, kOn = 1, kAuto = 2 };

const char* NdpModeName(NdpMode mode);
// "off" / "on" / "auto" (case-sensitive); InvalidArgument otherwise.
Result<NdpMode> ParseNdpMode(const std::string& text);

// --- filter expression tree ------------------------------------------------

enum class ExprOp : uint8_t { kTrue = 0, kCmp = 1, kAnd = 2, kOr = 3,
                              kNot = 4 };
enum class CmpOp : uint8_t { kEq = 0, kNe = 1, kLt = 2, kLe = 3, kGt = 4,
                             kGe = 5 };

// A predicate over one row: comparisons of a request column against a
// literal, combined with and/or/not. Small and closed by design — the
// server evaluates exactly this, nothing else, so the wire format is the
// whole contract.
struct NdpExpr {
  ExprOp op = ExprOp::kTrue;

  // kCmp only.
  CmpOp cmp = CmpOp::kEq;
  uint32_t column = 0;  // index into NdpRequest::columns
  ColumnType literal_type = ColumnType::kInt64;
  int64_t int_literal = 0;
  double double_literal = 0;
  std::string string_literal;

  // kAnd / kOr (>= 1 child) and kNot (exactly 1 child).
  std::vector<NdpExpr> children;

  // Convenience builders for the executor's range pushdown.
  static NdpExpr True();
  static NdpExpr CmpInt(uint32_t column, CmpOp cmp, int64_t literal);
  static NdpExpr And(std::vector<NdpExpr> children);
};

// --- request ---------------------------------------------------------------

// One encoded column page living as one object-store key: `key` holds
// EncodePage(EncodeColumnPage(...)) bytes, covering table rows
// [first_row, first_row + row_count).
struct NdpPageRef {
  std::string key;
  uint64_t first_row = 0;
  uint32_t row_count = 0;
};

struct NdpColumn {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  bool projected = true;  // returned to the client (else filter-only)
  std::vector<NdpPageRef> pages;  // ascending by first_row
};

enum class AggOp : uint8_t { kCount = 0, kSum = 1, kMin = 2, kMax = 3 };

struct NdpAggregate {
  AggOp op = AggOp::kCount;
  uint32_t column = 0;  // ignored for kCount
};

// A server-side scan: decode the referenced pages, evaluate `filter` on
// every row covered by all columns, and return either the projected
// columns' matching values (row mode) or the aggregates (one row).
struct NdpRequest {
  std::vector<NdpColumn> columns;
  NdpExpr filter;
  std::vector<NdpAggregate> aggregates;  // empty = row mode

  std::vector<uint8_t> Serialize() const;
  static Result<NdpRequest> Deserialize(const std::vector<uint8_t>& bytes);
};

// --- result ----------------------------------------------------------------

// Row mode: `columns` holds one ColumnVector per projected request
// column (request order), all the same length. Aggregate mode: one
// single-row ColumnVector per requested aggregate. Row-mode columns
// travel re-encoded through EncodeColumnPage, so the result is as
// compressed as the pages the pull path would have fetched.
struct NdpResult {
  bool is_aggregate = false;
  uint64_t rows_matched = 0;
  std::vector<ColumnVector> columns;

  std::vector<uint8_t> Serialize() const;
  static Result<NdpResult> Deserialize(const std::vector<uint8_t>& bytes);
};

}  // namespace ndp
}  // namespace cloudiq

#endif  // CLOUDIQ_NDP_NDP_PROTOCOL_H_
