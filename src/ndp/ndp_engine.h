#ifndef CLOUDIQ_NDP_NDP_ENGINE_H_
#define CLOUDIQ_NDP_NDP_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "ndp/ndp_protocol.h"
#include "sim/object_store.h"

namespace cloudiq {
namespace ndp {

// The server-side NDP evaluator (the compute half of the Taurus-style
// "storage does the scan" split). Stateless and page-native: it sees
// only encoded column pages handed to it by SimObjectStore::Select —
// never the OCM, the buffer pool or transactions, which is exactly the
// layering a real storage-side pushdown has (and what the
// cloudiq-ndp-layering lint rule enforces).
//
// Pages arrive as stored frames (EncodePage over EncodeColumnPage
// output); an undecodable frame — e.g. a page written with
// encrypt_pages on, which the server has no key for — fails the request
// and the consumer falls back to pulling.
class NdpEngine : public NdpServerEngine {
 public:
  NdpEngine() = default;

  Result<std::vector<std::string>> KeysOf(
      const std::vector<uint8_t>& request) const override;

  Result<std::vector<uint8_t>> Execute(
      const std::vector<uint8_t>& request,
      const std::vector<const std::vector<uint8_t>*>& pages) const override;

  // The evaluator proper, over an already-parsed request and decoded
  // frames (exposed for unit tests; Execute wraps it with the wire
  // formats).
  static Result<NdpResult> Evaluate(
      const NdpRequest& request,
      const std::vector<const std::vector<uint8_t>*>& pages);
};

}  // namespace ndp
}  // namespace cloudiq

#endif  // CLOUDIQ_NDP_NDP_ENGINE_H_
