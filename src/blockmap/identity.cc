#include "blockmap/identity.h"

#include "common/coding.h"

namespace cloudiq {

std::vector<uint8_t> IdentityObject::Serialize() const {
  std::vector<uint8_t> bytes;
  PutU64(bytes, object_id);
  PutU32(bytes, dbspace_id);
  PutU64(bytes, root.encoded());
  PutU64(bytes, page_count);
  PutU64(bytes, version);
  return bytes;
}

IdentityObject IdentityObject::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  IdentityObject id;
  id.object_id = reader.GetU64();
  id.dbspace_id = reader.GetU32();
  id.root = PhysicalLoc::FromEncoded(reader.GetU64());
  id.page_count = reader.GetU64();
  id.version = reader.GetU64();
  return id;
}

Result<IdentityObject> IdentityCatalog::Get(uint64_t object_id) const {
  auto it = identities_.find(object_id);
  if (it == identities_.end()) {
    return Status::NotFound("identity " + std::to_string(object_id));
  }
  return it->second;
}

void IdentityCatalog::Put(const IdentityObject& identity) {
  identities_[identity.object_id] = identity;
}

void IdentityCatalog::Remove(uint64_t object_id) {
  identities_.erase(object_id);
}

std::vector<uint8_t> IdentityCatalog::Serialize() const {
  std::vector<uint8_t> bytes;
  PutU64(bytes, identities_.size());
  for (const auto& [id, identity] : identities_) {
    std::vector<uint8_t> entry = identity.Serialize();
    PutU64(bytes, entry.size());
    PutBytes(bytes, entry.data(), entry.size());
  }
  return bytes;
}

IdentityCatalog IdentityCatalog::Deserialize(
    const std::vector<uint8_t>& bytes) {
  IdentityCatalog catalog;
  ByteReader reader(bytes);
  uint64_t n = reader.GetU64();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t len = reader.GetU64();
    std::vector<uint8_t> entry = reader.GetBytes(len);
    IdentityObject identity = IdentityObject::Deserialize(entry);
    catalog.identities_[identity.object_id] = identity;
  }
  return catalog;
}

Status IdentityCatalog::Persist(SystemStore* store, const std::string& name,
                                SimTime now, SimTime* completion) const {
  return store->Put(name, Serialize(), now, completion);
}

Result<IdentityCatalog> IdentityCatalog::Load(SystemStore* store,
                                              const std::string& name,
                                              SimTime now,
                                              SimTime* completion) {
  CLOUDIQ_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                           store->Get(name, now, completion));
  return Deserialize(bytes);
}

}  // namespace cloudiq
