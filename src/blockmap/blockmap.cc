#include "blockmap/blockmap.h"

#include <cassert>

#include "common/coding.h"

namespace cloudiq {
namespace {

constexpr uint64_t kInvalidEncoded = ~uint64_t{0};

std::vector<uint8_t> SerializeNode(bool leaf,
                                   const std::vector<uint64_t>& entries) {
  std::vector<uint8_t> bytes;
  PutU32(bytes, leaf ? 1 : 0);
  PutU32(bytes, static_cast<uint32_t>(entries.size()));
  for (uint64_t e : entries) PutU64(bytes, e);
  return bytes;
}

}  // namespace

Blockmap::Blockmap(StorageSubsystem* storage, DbSpace* space,
                   uint32_t fanout, BufferManager* page_cache)
    : storage_(storage),
      space_(space),
      page_cache_(page_cache),
      fanout_(fanout) {
  assert(fanout_ >= 2);
  root_ = std::make_unique<Node>();
  root_->leaf = true;
}

Blockmap Blockmap::Open(StorageSubsystem* storage, DbSpace* space,
                        uint32_t fanout, PhysicalLoc root,
                        uint64_t page_count, BufferManager* page_cache) {
  Blockmap map(storage, space, fanout, page_cache);
  map.root_.reset();
  map.root_loc_ = root;
  map.page_count_ = page_count;
  map.height_ = 1;
  while (map.SubtreeCapacity(map.height_) < page_count) ++map.height_;
  return map;
}

uint64_t Blockmap::SubtreeCapacity(uint32_t height) const {
  uint64_t cap = 1;
  for (uint32_t i = 0; i < height; ++i) cap *= fanout_;
  return cap;
}

Result<std::vector<uint8_t>> Blockmap::ReadNodeBytes(PhysicalLoc loc) {
  if (page_cache_ != nullptr) {
    // Blockmap pages live in the RAM buffer cache like any other page;
    // repeated tree descents across queries hit RAM, not the device.
    StorageSubsystem* storage = storage_;
    DbSpace* space = space_;
    CLOUDIQ_ASSIGN_OR_RETURN(
        BufferManager::PageData data,
        page_cache_->Get(space_->id, loc, [storage, space, loc]() {
          return storage->ReadPage(space, loc);
        }));
    return *data;
  }
  return storage_->ReadPage(space_, loc);
}

// Reads and parses a blockmap node page. The serialized form is
// self-describing (leaf flag + entry count), so the caller can sanity-check
// the level against its expectation.
Result<Blockmap::Node*> Blockmap::LoadNode(PhysicalLoc loc,
                                           bool expect_leaf) {
  CLOUDIQ_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadNodeBytes(loc));
  ByteReader reader(bytes);
  bool stored_leaf = reader.GetU32() != 0;
  if (stored_leaf != expect_leaf) {
    return Status::Corruption("blockmap node level mismatch");
  }
  uint32_t count = reader.GetU32();
  auto node = std::make_unique<Node>();
  node->leaf = stored_leaf;
  node->stored_loc = loc;
  node->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) node->entries.push_back(reader.GetU64());
  if (reader.overflow()) return Status::Corruption("blockmap node bytes");
  if (!stored_leaf) node->children.resize(node->entries.size());
  return node.release();
}

Result<Blockmap::Node*> Blockmap::FaultIn(Node* parent, size_t slot) {
  assert(!parent->leaf);
  if (parent->children[slot] != nullptr) return parent->children[slot].get();
  uint64_t encoded = parent->entries[slot];
  if (encoded == kInvalidEncoded) {
    return Status::Corruption("dangling blockmap child");
  }
  CLOUDIQ_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      ReadNodeBytes(PhysicalLoc::FromEncoded(encoded)));
  ByteReader reader(bytes);
  bool child_is_leaf = reader.GetU32() != 0;
  uint32_t count = reader.GetU32();
  auto node = std::make_unique<Node>();
  node->leaf = child_is_leaf;
  node->stored_loc = PhysicalLoc::FromEncoded(encoded);
  node->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) node->entries.push_back(reader.GetU64());
  if (reader.overflow()) return Status::Corruption("blockmap node bytes");
  if (!child_is_leaf) node->children.resize(node->entries.size());
  parent->children[slot] = std::move(node);
  return parent->children[slot].get();
}

Result<Blockmap::Node*> Blockmap::DescendToLeaf(uint64_t logical_page,
                                                bool mark_dirty,
                                                uint64_t* leaf_slot) {
  if (logical_page >= page_count_) {
    return Status::InvalidArgument("logical page out of range");
  }
  if (root_ == nullptr) {
    CLOUDIQ_ASSIGN_OR_RETURN(Node * loaded,
                             LoadNode(root_loc_, height_ == 1));
    root_.reset(loaded);
  }
  Node* node = root_.get();
  uint64_t rel = logical_page;
  uint32_t level = height_;
  if (mark_dirty) node->dirty = true;
  while (!node->leaf) {
    uint64_t child_cap = SubtreeCapacity(level - 1);
    size_t slot = static_cast<size_t>(rel / child_cap);
    rel %= child_cap;
    CLOUDIQ_ASSIGN_OR_RETURN(Node * child, FaultIn(node, slot));
    node = child;
    if (mark_dirty) node->dirty = true;
    --level;
  }
  *leaf_slot = rel;
  return node;
}

Result<PhysicalLoc> Blockmap::Lookup(uint64_t logical_page) {
  uint64_t slot = 0;
  CLOUDIQ_ASSIGN_OR_RETURN(Node * leaf,
                           DescendToLeaf(logical_page, false, &slot));
  if (slot >= leaf->entries.size()) {
    return Status::Corruption("blockmap leaf underfilled");
  }
  return PhysicalLoc::FromEncoded(leaf->entries[slot]);
}

Result<PhysicalLoc> Blockmap::Update(uint64_t logical_page,
                                     PhysicalLoc loc) {
  uint64_t slot = 0;
  CLOUDIQ_ASSIGN_OR_RETURN(Node * leaf,
                           DescendToLeaf(logical_page, true, &slot));
  if (slot >= leaf->entries.size()) {
    return Status::Corruption("blockmap leaf underfilled");
  }
  PhysicalLoc old = PhysicalLoc::FromEncoded(leaf->entries[slot]);
  leaf->entries[slot] = loc.encoded();
  return old;
}

uint64_t Blockmap::Append(PhysicalLoc loc) {
  // Grow the tree if full: the old root becomes child 0 of a new root
  // (height grows; the new root is dirty by construction).
  if (root_ == nullptr) {
    // Fault in lazily before structural changes.
    uint64_t ignored;
    if (page_count_ > 0) {
      Result<Node*> r = DescendToLeaf(0, false, &ignored);
      assert(r.ok() && "cannot fault in blockmap root for append");
      (void)r;
    } else {
      root_ = std::make_unique<Node>();
      root_->leaf = true;
    }
  }
  if (page_count_ == SubtreeCapacity(height_) && page_count_ > 0) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->entries.push_back(root_->stored_loc.encoded());
    new_root->children.resize(1);
    new_root->children[0] = std::move(root_);
    new_root->dirty = true;
    root_ = std::move(new_root);
    ++height_;
  }

  // Descend to the append position, creating nodes along the right edge.
  uint64_t page = page_count_;
  Node* node = root_.get();
  node->dirty = true;
  uint64_t rel = page;
  uint32_t level = height_;
  while (!node->leaf) {
    uint64_t child_cap = SubtreeCapacity(level - 1);
    size_t slot = static_cast<size_t>(rel / child_cap);
    rel %= child_cap;
    if (slot == node->entries.size()) {
      node->entries.push_back(kInvalidEncoded);
      node->children.emplace_back();
    }
    if (node->children[slot] == nullptr &&
        node->entries[slot] == kInvalidEncoded) {
      auto child = std::make_unique<Node>();
      child->leaf = (level - 1) == 1;
      child->dirty = true;
      node->children[slot] = std::move(child);
    } else if (node->children[slot] == nullptr) {
      Result<Node*> r = FaultIn(node, slot);
      assert(r.ok() && "blockmap fault-in during append failed");
      (void)r;
    }
    node = node->children[slot].get();
    node->dirty = true;
    --level;
  }
  node->entries.push_back(loc.encoded());
  return page_count_++;
}

Status Blockmap::FlushNode(Node* node, CloudCache::WriteMode mode,
                           uint64_t txn_id, FlushEffects* effects) {
  if (!node->dirty) return Status::Ok();
  if (!node->leaf) {
    for (size_t i = 0; i < node->children.size(); ++i) {
      Node* child = node->children[i].get();
      if (child != nullptr && child->dirty) {
        CLOUDIQ_RETURN_IF_ERROR(FlushNode(child, mode, txn_id, effects));
        node->entries[i] = child->stored_loc.encoded();
      }
    }
  }
  // Copy-on-write: the node's previous incarnation is superseded, not
  // overwritten. On a cloud dbspace the write below takes a brand-new
  // object key (never-write-twice); on a conventional dbspace it takes a
  // fresh block run. The location is assigned at prepare time, which is
  // what lets a parent serialize its children's new locations before any
  // I/O has run — and therefore lets all node writes go out in parallel.
  if (node->stored_loc.valid()) effects->freed.push_back(node->stored_loc);
  CLOUDIQ_ASSIGN_OR_RETURN(
      StorageSubsystem::PreparedWrite prepared,
      storage_->PrepareWrite(space_,
                             SerializeNode(node->leaf, node->entries),
                             mode, txn_id));
  node->stored_loc = prepared.loc;
  node->dirty = false;
  effects->allocated.push_back(prepared.loc);
  effects->ops.push_back(std::move(prepared.op));
  effects->statuses.push_back(prepared.status);
  ++effects->nodes_written;
  return Status::Ok();
}

Result<Blockmap::FlushEffects> Blockmap::PrepareFlush(
    CloudCache::WriteMode mode, uint64_t txn_id) {
  FlushEffects effects;
  if (root_ == nullptr || !root_->dirty) {
    effects.new_root = root_loc_;
    return effects;
  }
  CLOUDIQ_RETURN_IF_ERROR(FlushNode(root_.get(), mode, txn_id, &effects));
  root_loc_ = root_->stored_loc;
  effects.new_root = root_loc_;
  return effects;
}

Result<Blockmap::FlushEffects> Blockmap::Flush(CloudCache::WriteMode mode,
                                               uint64_t txn_id) {
  CLOUDIQ_ASSIGN_OR_RETURN(FlushEffects effects,
                           PrepareFlush(mode, txn_id));
  NodeContext* node = storage_->node();
  node->io().RunParallel(effects.ops, node->IoWidth());
  for (const auto& status : effects.statuses) {
    if (!status->ok()) return *status;
  }
  effects.ops.clear();
  effects.statuses.clear();
  return effects;
}

bool Blockmap::dirty() const { return root_ != nullptr && root_->dirty; }

Status Blockmap::CollectNode(Node* node, std::vector<PhysicalLoc>* nodes,
                             std::vector<PhysicalLoc>* data_pages) {
  if (node->stored_loc.valid()) nodes->push_back(node->stored_loc);
  if (node->leaf) {
    for (uint64_t e : node->entries) {
      if (e != kInvalidEncoded) {
        data_pages->push_back(PhysicalLoc::FromEncoded(e));
      }
    }
    return Status::Ok();
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    CLOUDIQ_ASSIGN_OR_RETURN(Node * child, FaultIn(node, i));
    CLOUDIQ_RETURN_IF_ERROR(CollectNode(child, nodes, data_pages));
  }
  return Status::Ok();
}

Status Blockmap::CollectReachable(std::vector<PhysicalLoc>* nodes,
                                  std::vector<PhysicalLoc>* data_pages) {
  if (page_count_ == 0) return Status::Ok();
  uint64_t ignored;
  CLOUDIQ_ASSIGN_OR_RETURN(Node * leaf, DescendToLeaf(0, false, &ignored));
  (void)leaf;
  return CollectNode(root_.get(), nodes, data_pages);
}

}  // namespace cloudiq
