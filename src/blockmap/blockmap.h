#ifndef CLOUDIQ_BLOCKMAP_BLOCKMAP_H_
#define CLOUDIQ_BLOCKMAP_BLOCKMAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/result.h"
#include "common/status.h"
#include "store/cloud_cache.h"
#include "store/physical_loc.h"
#include "store/storage.h"

namespace cloudiq {

// The blockmap: SAP IQ's mapping from logical database pages to their
// physical representation — block runs on conventional dbspaces, object
// keys on cloud dbspaces (§2, §3.1). Blockmap pages are organized as a
// fixed-fanout tree whose nodes are themselves pages stored through the
// StorageSubsystem.
//
// Versioning follows Figure 2 of the paper exactly: updating data page H
// to H' dirties its owning leaf D; flushing D yields D' under a *new*
// location (never-write-twice on cloud dbspaces), which dirties D's
// parent, and so on to the root A'; the new root location is recorded in
// the identity object. Flush() reports every replaced node location (for
// the transaction's RF bitmap) and every new one (RB bitmap).
//
// A Blockmap instance is a single transaction's working copy; concurrent
// readers open their own instances from the committed root (table-level
// versioning, §2).
class Blockmap {
 public:
  // Locations freed/allocated by a flush, for RF/RB bookkeeping. When
  // produced by PrepareFlush, `ops`/`statuses` carry the prepared node
  // writes for the caller to execute (in parallel, possibly batched with
  // other blockmaps' writes); Flush() runs them itself.
  struct FlushEffects {
    std::vector<PhysicalLoc> freed;      // old versions of rewritten nodes
    std::vector<PhysicalLoc> allocated;  // new node locations
    PhysicalLoc new_root;
    uint64_t nodes_written = 0;
    std::vector<IoScheduler::Op> ops;
    std::vector<std::shared_ptr<Status>> statuses;
  };

  // Creates an empty blockmap (no pages yet) over `space`. When
  // `page_cache` is given, node reads go through the RAM buffer cache —
  // blockmap pages are cached exactly like data pages in SAP IQ.
  Blockmap(StorageSubsystem* storage, DbSpace* space, uint32_t fanout,
           BufferManager* page_cache = nullptr);

  // Opens the committed tree rooted at `root` containing `page_count`
  // logical pages. Nodes are faulted in lazily on lookup.
  static Blockmap Open(StorageSubsystem* storage, DbSpace* space,
                       uint32_t fanout, PhysicalLoc root,
                       uint64_t page_count,
                       BufferManager* page_cache = nullptr);

  // Number of logical pages mapped.
  uint64_t page_count() const { return page_count_; }

  // Physical location of `logical_page`. Faults in blockmap nodes from
  // storage as needed (this is real I/O on the simulated clock).
  Result<PhysicalLoc> Lookup(uint64_t logical_page);

  // Points `logical_page` at `loc`; returns the previous location (invalid
  // if the page had never been flushed). Dirties the leaf-to-root path.
  Result<PhysicalLoc> Update(uint64_t logical_page, PhysicalLoc loc);

  // Appends a new logical page mapped to `loc` (typically invalid until
  // first flush); returns its logical page number. Grows the tree height
  // as needed.
  uint64_t Append(PhysicalLoc loc);

  // Writes all dirty nodes bottom-up using copy-on-write, returning the
  // new root location and the freed/allocated node sets. `mode`/`txn_id`
  // flow through to the OCM.
  Result<FlushEffects> Flush(CloudCache::WriteMode mode, uint64_t txn_id);

  // Like Flush, but only *prepares* the node writes: every node gets its
  // new location assigned (fresh object key / block run) and serialized
  // with its children's new locations, so the returned ops can run in any
  // order and in parallel — including batched with other objects' flushes
  // at commit. The caller must execute `ops` and check `statuses`.
  Result<FlushEffects> PrepareFlush(CloudCache::WriteMode mode,
                                    uint64_t txn_id);

  // True if any node is dirty (Flush would write something).
  bool dirty() const;

  PhysicalLoc root_loc() const { return root_loc_; }
  uint32_t fanout() const { return fanout_; }
  uint32_t height() const { return height_; }

  // Collects the locations of every node and every data page reachable
  // from the current (flushed) tree — the "reachable set" used by GC
  // completeness tests and by snapshot restore.
  Status CollectReachable(std::vector<PhysicalLoc>* nodes,
                          std::vector<PhysicalLoc>* data_pages);

 private:
  struct Node {
    PhysicalLoc stored_loc;  // invalid if never persisted
    bool dirty = false;
    bool leaf = true;
    // Leaf: data-page locations. Internal: child locations (children[i]
    // is authoritative when non-null, else entries[i]).
    std::vector<uint64_t> entries;  // encoded PhysicalLoc
    std::vector<std::unique_ptr<Node>> children;
  };

  // Reads a node page, via the buffer cache when configured.
  Result<std::vector<uint8_t>> ReadNodeBytes(PhysicalLoc loc);
  Result<Node*> FaultIn(Node* parent, size_t slot);
  Result<Node*> DescendToLeaf(uint64_t logical_page, bool mark_dirty,
                              uint64_t* leaf_slot);
  Status FlushNode(Node* node, CloudCache::WriteMode mode, uint64_t txn_id,
                   FlushEffects* effects);
  Status CollectNode(Node* node, std::vector<PhysicalLoc>* nodes,
                     std::vector<PhysicalLoc>* data_pages);
  Result<Node*> LoadNode(PhysicalLoc loc, bool leaf);
  // Capacity of a subtree of the given height (height 1 = leaf).
  uint64_t SubtreeCapacity(uint32_t height) const;

  StorageSubsystem* storage_;
  DbSpace* space_;
  BufferManager* page_cache_;
  uint32_t fanout_;
  uint32_t height_ = 1;  // levels, including the leaf level
  uint64_t page_count_ = 0;
  PhysicalLoc root_loc_;
  std::unique_ptr<Node> root_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_BLOCKMAP_BLOCKMAP_H_
