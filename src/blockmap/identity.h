#ifndef CLOUDIQ_BLOCKMAP_IDENTITY_H_
#define CLOUDIQ_BLOCKMAP_IDENTITY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/physical_loc.h"
#include "store/system_store.h"

namespace cloudiq {

// Identity object (§3.1, Figure 2): the catalog entry that records where a
// storage object's *root blockmap page* lives, plus enough metadata to open
// the blockmap. When a root blockmap page is versioned (A -> A'), the new
// root location is recorded here. Identity objects live in the system
// dbspace — strong consistency — so unlike everything on cloud dbspaces
// they may be updated in place.
struct IdentityObject {
  uint64_t object_id = 0;   // owning table / index / segment
  uint32_t dbspace_id = 0;  // where the blockmap + data pages live
  PhysicalLoc root;         // root blockmap page
  uint64_t page_count = 0;
  uint64_t version = 0;     // commit sequence number that produced this

  std::vector<uint8_t> Serialize() const;
  static IdentityObject Deserialize(const std::vector<uint8_t>& bytes);
};

// The system catalog's identity table: object id -> current committed
// IdentityObject. Persisted as one blob in the system store; MVCC snapshots
// are cheap copies of the in-memory map (table-level versioning).
class IdentityCatalog {
 public:
  IdentityCatalog() = default;

  Result<IdentityObject> Get(uint64_t object_id) const;
  void Put(const IdentityObject& identity);
  void Remove(uint64_t object_id);
  bool Contains(uint64_t object_id) const {
    return identities_.count(object_id) > 0;
  }

  const std::map<uint64_t, IdentityObject>& identities() const {
    return identities_;
  }

  // Durable image in the system store under `name`.
  Status Persist(SystemStore* store, const std::string& name, SimTime now,
                 SimTime* completion) const;
  static Result<IdentityCatalog> Load(SystemStore* store,
                                      const std::string& name, SimTime now,
                                      SimTime* completion);

  std::vector<uint8_t> Serialize() const;
  static IdentityCatalog Deserialize(const std::vector<uint8_t>& bytes);

 private:
  std::map<uint64_t, IdentityObject> identities_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_BLOCKMAP_IDENTITY_H_
