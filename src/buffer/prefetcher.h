#ifndef CLOUDIQ_BUFFER_PREFETCHER_H_
#define CLOUDIQ_BUFFER_PREFETCHER_H_

#include <vector>

#include "buffer/buffer_manager.h"
#include "store/physical_loc.h"
#include "store/storage.h"

namespace cloudiq {

// Parallel read-ahead into the buffer cache (§1: SAP IQ "relies on
// prefetching to parallelize I/O as much as possible ... far beyond
// sequential block-based prefetching").
//
// The query executor knows exactly which pages a scan will touch (the
// blockmap gives it the full location list up front), so prefetching here
// is batch-parallel: all missing locations are fetched with up to the
// node's I/O width in flight. This is the mechanism that turns the object
// store's high per-request latency into high aggregate throughput.
class Prefetcher {
 public:
  Prefetcher(StorageSubsystem* storage, BufferManager* buffer)
      : storage_(storage), buffer_(buffer) {}

  // Fetches every location not already cached into the buffer cache.
  // Returns the first error encountered (pages that did load stay cached).
  Status PrefetchLocs(DbSpace* space, const std::vector<PhysicalLoc>& locs);

  struct Stats {
    uint64_t requested = 0;
    uint64_t already_cached = 0;
    uint64_t fetched = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  StorageSubsystem* storage_;
  BufferManager* buffer_;
  Stats stats_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_BUFFER_PREFETCHER_H_
