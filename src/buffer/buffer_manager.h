#ifndef CLOUDIQ_BUFFER_BUFFER_MANAGER_H_
#define CLOUDIQ_BUFFER_BUFFER_MANAGER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "store/physical_loc.h"
#include "store/storage.h"
#include "telemetry/telemetry.h"

namespace cloudiq {

// SAP IQ's first-layer cache: decompressed pages in RAM (§2). CloudIQ's
// buffer manager has two halves:
//
//  * a *clean* cache keyed by physical location, LRU-evicted. Cloud pages
//    are immutable under their object key (never-write-twice), so a
//    location is a perfect cache key; conventional locations are
//    invalidated when their blocks are freed.
//  * per-transaction *dirty lists* ("the buffer manager maintains a list
//    of all the dirty pages associated with active transactions"). Dirty
//    pages are flushed by the owning transaction — under cache pressure
//    during the churn phase (write-back through the OCM) and exhaustively
//    before commit (write-through), matching §4's three-phase model.
//
// The flush itself (storage write + blockmap update + RF/RB bookkeeping)
// belongs to the transaction layer and is injected as a callback.
//
// Locking: mu_ guards the cache maps and counters only. It is dropped
// (MutexUnlock) around the loader and flush callbacks — both re-enter
// other managers (the flush callback re-enters TransactionManager, which
// calls back into this class) and mu_ is not recursive.
class BufferManager {
 public:
  using PageData = std::shared_ptr<const std::vector<uint8_t>>;

  struct Options {
    uint64_t capacity_bytes = 64 << 20;
  };

  // One dirty page awaiting flush.
  struct DirtyPage {
    uint64_t object_id;
    uint64_t page;
    std::vector<uint8_t> payload;
  };

  // Flushes a batch of dirty pages for `txn_id`. `for_commit` selects the
  // OCM write mode (write-through) and must leave every page durable on
  // its backing store before returning OK.
  using FlushBatchFn = std::function<Status(
      uint64_t txn_id, std::vector<DirtyPage>&& pages, bool for_commit)>;

  BufferManager(Options options, FlushBatchFn flush)
      : options_(options), flush_(std::move(flush)) {}

  // --- clean cache -------------------------------------------------------
  // Looks up the page stored at (dbspace, loc); on miss, invokes `loader`
  // (which performs the simulated I/O, with mu_ released) and caches the
  // result.
  Result<PageData> Get(
      uint32_t dbspace_id, PhysicalLoc loc,
      const std::function<Result<std::vector<uint8_t>>()>& loader)
      EXCLUDES(mu_);

  // Inserts an already-available page (prefetch results, pages built
  // during load that later readers will want).
  void Insert(uint32_t dbspace_id, PhysicalLoc loc,
              std::vector<uint8_t> payload) EXCLUDES(mu_);

  bool Cached(uint32_t dbspace_id, PhysicalLoc loc) const EXCLUDES(mu_);

  // Drops a location (its blocks were freed / object deleted).
  void Invalidate(uint32_t dbspace_id, PhysicalLoc loc) EXCLUDES(mu_);

  // --- dirty pages ---------------------------------------------------------
  // Registers (or replaces) a dirty page owned by `txn_id`. May trigger
  // churn-phase eviction: least-recently dirtied pages of the same
  // transaction are flushed with write-back semantics until the total
  // footprint fits the capacity.
  Status PutDirty(uint64_t txn_id, uint64_t object_id, uint64_t page,
                  std::vector<uint8_t> payload) EXCLUDES(mu_);

  // Read-your-writes: the dirty copy if present.
  Result<PageData> GetDirty(uint64_t txn_id, uint64_t object_id,
                            uint64_t page) const EXCLUDES(mu_);

  // True if `txn_id` has any unflushed dirty pages.
  bool HasDirty(uint64_t txn_id) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = dirty_.find(txn_id);
    return it != dirty_.end() && !it->second.pages.empty();
  }

  // Flushes every remaining dirty page of `txn_id` (commit path,
  // write-through).
  Status FlushTxn(uint64_t txn_id) EXCLUDES(mu_);

  // Discards `txn_id`'s dirty pages (rollback).
  void DropTxn(uint64_t txn_id) EXCLUDES(mu_);

  uint64_t clean_bytes() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return clean_bytes_;
  }
  uint64_t dirty_bytes() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return dirty_bytes_;
  }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t clean_evictions = 0;
    uint64_t churn_flushes = 0;   // dirty pages flushed under pressure
    uint64_t commit_flushes = 0;  // dirty pages flushed at commit
  };
  Stats stats() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

  // Wires telemetry. `clock` is the owning node's clock, used to time
  // miss fills and flush batches (the loader / flush callbacks advance
  // it); miss latencies land in "buffer.miss_fill", flush batches in
  // "buffer.flush". Wiring happens during single-threaded setup, before
  // any page traffic — the pointers below are read-only afterwards, so
  // they are deliberately not guarded by mu_.
  void set_telemetry(Telemetry* telemetry, const SimClock* clock,
                     uint32_t trace_pid);

 private:
  struct CleanKey {
    uint32_t dbspace_id;
    uint64_t encoded_loc;
    bool operator==(const CleanKey& o) const {
      return dbspace_id == o.dbspace_id && encoded_loc == o.encoded_loc;
    }
  };
  struct CleanKeyHash {
    size_t operator()(const CleanKey& k) const {
      return std::hash<uint64_t>()(k.encoded_loc * 0x9e3779b97f4a7c15ULL ^
                                   k.dbspace_id);
    }
  };
  struct CleanEntry {
    PageData data;
    std::list<CleanKey>::iterator lru_it;
  };

  struct DirtyKey {
    uint64_t object_id;
    uint64_t page;
    bool operator<(const DirtyKey& o) const {
      return object_id != o.object_id ? object_id < o.object_id
                                      : page < o.page;
    }
  };

  void InsertCleanLocked(const CleanKey& key, PageData data) REQUIRES(mu_);
  void EvictCleanIfNeeded() REQUIRES(mu_);
  Status EvictDirtyIfNeeded(uint64_t txn_id) REQUIRES(mu_);
  void TouchLru(CleanEntry& entry, const CleanKey& key) REQUIRES(mu_);

  Options options_;
  FlushBatchFn flush_;

  mutable Mutex mu_{lockrank::kBufferManager};
  std::unordered_map<CleanKey, CleanEntry, CleanKeyHash> clean_
      GUARDED_BY(mu_);
  std::list<CleanKey> lru_ GUARDED_BY(mu_);  // front = most recent
  uint64_t clean_bytes_ GUARDED_BY(mu_) = 0;

  // txn -> (object, page) -> payload; flush order = dirty order (std::map
  // inside a map of txns, plus an explicit FIFO per txn).
  struct TxnDirty {
    std::map<DirtyKey, std::vector<uint8_t>> pages;
    std::list<DirtyKey> order;  // front = oldest
  };
  std::map<uint64_t, TxnDirty> dirty_ GUARDED_BY(mu_);
  uint64_t dirty_bytes_ GUARDED_BY(mu_) = 0;

  Stats stats_ GUARDED_BY(mu_);

  // Telemetry wiring: written once by set_telemetry() during setup.
  Telemetry* telemetry_ = nullptr;
  CostLedger* ledger_ = nullptr;
  StallProfiler* profiler_ = nullptr;
  const SimClock* clock_ = nullptr;
  uint32_t trace_pid_ = 0;
  Histogram* miss_fill_latency_ = nullptr;
  Histogram* flush_latency_ = nullptr;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_BUFFER_BUFFER_MANAGER_H_
