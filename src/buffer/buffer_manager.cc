#include "buffer/buffer_manager.h"

#include <algorithm>
#include <optional>
#include <cassert>
#include <utility>

namespace cloudiq {

void BufferManager::set_telemetry(Telemetry* telemetry,
                                  const SimClock* clock,
                                  uint32_t trace_pid) {
  telemetry_ = telemetry;
  clock_ = clock;
  trace_pid_ = trace_pid;
  if (telemetry == nullptr) {
    miss_fill_latency_ = flush_latency_ = nullptr;
    ledger_ = nullptr;
    profiler_ = nullptr;
    return;
  }
  miss_fill_latency_ = &telemetry->stats().histogram("buffer.miss_fill");
  flush_latency_ = &telemetry->stats().histogram("buffer.flush");
  ledger_ = &telemetry->ledger();
  profiler_ = &telemetry->profiler();
}

void BufferManager::InsertCleanLocked(const CleanKey& key, PageData data) {
  lru_.push_front(key);
  clean_bytes_ += data->size();
  clean_[key] = CleanEntry{std::move(data), lru_.begin()};
  EvictCleanIfNeeded();
}

Result<BufferManager::PageData> BufferManager::Get(
    uint32_t dbspace_id, PhysicalLoc loc,
    const std::function<Result<std::vector<uint8_t>>()>& loader) {
  MutexLock lock(&mu_);
  CleanKey key{dbspace_id, loc.encoded()};
  auto it = clean_.find(key);
  if (it != clean_.end()) {
    ++stats_.hits;
    if (ledger_ != nullptr) ledger_->RecordBufferHit();
    TouchLru(it->second, key);
    return it->second.data;
  }
  ++stats_.misses;
  if (ledger_ != nullptr) ledger_->RecordBufferMiss();
  // The loader performs the device I/O and advances the node clock, so
  // bracketing it with clock reads yields the miss-fill latency. The I/O
  // can reach back into other managers, so mu_ is released around it.
  SimTime miss_start = clock_ != nullptr ? clock_->now() : 0;
  std::optional<Result<std::vector<uint8_t>>> loaded;
  {
    MutexUnlock unlock(&mu_);
    if (profiler_ != nullptr && clock_ != nullptr) {
      // Whatever the loader does not claim for a finer class (OCM fetch,
      // network, throttle) books as buffer-fill wait.
      ScopedStall stall(profiler_, clock_, WaitClass::kBufferFill);
      loaded.emplace(loader());
    } else {
      loaded.emplace(loader());
    }
  }
  if (!loaded->ok()) return loaded->status();
  if (miss_fill_latency_ != nullptr) {
    miss_fill_latency_->Record(clock_->now() - miss_start);
    if (telemetry_->tracer().enabled()) {
      telemetry_->tracer().CompleteSpan(trace_pid_, kTrackBuffer, "buffer",
                                        "miss fill", miss_start,
                                        clock_->now());
    }
  }
  auto data = std::make_shared<const std::vector<uint8_t>>(
      std::move(*loaded).value());
  // The unlock window may have let another fiber fill the same slot; keep
  // the resident copy in that case rather than double-counting bytes.
  auto raced = clean_.find(key);
  if (raced != clean_.end()) {
    TouchLru(raced->second, key);
    return raced->second.data;
  }
  InsertCleanLocked(key, data);
  return PageData(data);
}

void BufferManager::Insert(uint32_t dbspace_id, PhysicalLoc loc,
                           std::vector<uint8_t> payload) {
  MutexLock lock(&mu_);
  CleanKey key{dbspace_id, loc.encoded()};
  auto it = clean_.find(key);
  if (it != clean_.end()) {
    TouchLru(it->second, key);
    return;
  }
  auto data = std::make_shared<const std::vector<uint8_t>>(
      std::move(payload));
  InsertCleanLocked(key, std::move(data));
}

bool BufferManager::Cached(uint32_t dbspace_id, PhysicalLoc loc) const {
  MutexLock lock(&mu_);
  return clean_.count(CleanKey{dbspace_id, loc.encoded()}) > 0;
}

void BufferManager::Invalidate(uint32_t dbspace_id, PhysicalLoc loc) {
  MutexLock lock(&mu_);
  CleanKey key{dbspace_id, loc.encoded()};
  auto it = clean_.find(key);
  if (it == clean_.end()) return;
  clean_bytes_ -= it->second.data->size();
  lru_.erase(it->second.lru_it);
  clean_.erase(it);
}

void BufferManager::TouchLru(CleanEntry& entry, const CleanKey& key) {
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
}

void BufferManager::EvictCleanIfNeeded() {
  while (clean_bytes_ + dirty_bytes_ > options_.capacity_bytes &&
         !lru_.empty()) {
    CleanKey victim = lru_.back();
    lru_.pop_back();
    auto it = clean_.find(victim);
    assert(it != clean_.end());
    clean_bytes_ -= it->second.data->size();
    clean_.erase(it);
    ++stats_.clean_evictions;
  }
}

Status BufferManager::PutDirty(uint64_t txn_id, uint64_t object_id,
                               uint64_t page,
                               std::vector<uint8_t> payload) {
  MutexLock lock(&mu_);
  TxnDirty& txn = dirty_[txn_id];
  DirtyKey key{object_id, page};
  auto it = txn.pages.find(key);
  if (it != txn.pages.end()) {
    dirty_bytes_ -= it->second.size();
    it->second = std::move(payload);
    dirty_bytes_ += it->second.size();
  } else {
    dirty_bytes_ += payload.size();
    txn.pages.emplace(key, std::move(payload));
    txn.order.push_back(key);
  }
  // Churn phase: make room by first dropping clean pages, then flushing
  // this transaction's oldest dirty pages with write-back semantics.
  EvictCleanIfNeeded();
  return EvictDirtyIfNeeded(txn_id);
}

Status BufferManager::EvictDirtyIfNeeded(uint64_t txn_id) {
  if (clean_bytes_ + dirty_bytes_ <= options_.capacity_bytes) {
    return Status::Ok();
  }
  auto txn_it = dirty_.find(txn_id);
  if (txn_it == dirty_.end()) return Status::Ok();
  TxnDirty& txn = txn_it->second;

  // Flush the oldest dirty pages in one batch until the cache fits again:
  // batching lets the flush callback run the writes in parallel, which is
  // where cloud dbspaces earn their throughput.
  std::vector<DirtyPage> batch;
  uint64_t to_free =
      (clean_bytes_ + dirty_bytes_) - options_.capacity_bytes;
  uint64_t freed = 0;
  while (!txn.order.empty() && freed < to_free) {
    DirtyKey key = txn.order.front();
    // Keep at least one page: the page being written right now must stay.
    if (txn.order.size() <= 1) break;
    txn.order.pop_front();
    auto page_it = txn.pages.find(key);
    if (page_it == txn.pages.end()) continue;
    freed += page_it->second.size();
    dirty_bytes_ -= page_it->second.size();
    batch.push_back(
        DirtyPage{key.object_id, key.page, std::move(page_it->second)});
    txn.pages.erase(page_it);
  }
  if (batch.empty()) return Status::Ok();
  stats_.churn_flushes += batch.size();
  if (ledger_ != nullptr) ledger_->RecordBufferFlush(batch.size());
  size_t batch_size = batch.size();
  SimTime flush_start = clock_ != nullptr ? clock_->now() : 0;
  // The flush callback re-enters TransactionManager (which calls back
  // into this class); release mu_ for its duration.
  Status st = Status::Ok();
  {
    MutexUnlock unlock(&mu_);
    if (profiler_ != nullptr && clock_ != nullptr) {
      ScopedStall stall(profiler_, clock_, WaitClass::kBufferFill);
      st = flush_(txn_id, std::move(batch), /*for_commit=*/false);
    } else {
      st = flush_(txn_id, std::move(batch), /*for_commit=*/false);
    }
  }
  if (flush_latency_ != nullptr) {
    flush_latency_->Record(clock_->now() - flush_start);
    if (telemetry_->tracer().enabled()) {
      telemetry_->tracer().CompleteSpan(
          trace_pid_, kTrackBuffer, "buffer",
          "churn flush (" + std::to_string(batch_size) + " pages)",
          flush_start, clock_->now());
    }
  }
  return st;
}

Result<BufferManager::PageData> BufferManager::GetDirty(
    uint64_t txn_id, uint64_t object_id, uint64_t page) const {
  MutexLock lock(&mu_);
  auto txn_it = dirty_.find(txn_id);
  if (txn_it == dirty_.end()) return Status::NotFound("no dirty pages");
  auto it = txn_it->second.pages.find(DirtyKey{object_id, page});
  if (it == txn_it->second.pages.end()) {
    return Status::NotFound("page not dirty");
  }
  return std::make_shared<const std::vector<uint8_t>>(it->second);
}

Status BufferManager::FlushTxn(uint64_t txn_id) {
  MutexLock lock(&mu_);
  auto txn_it = dirty_.find(txn_id);
  if (txn_it == dirty_.end()) return Status::Ok();
  std::vector<DirtyPage> batch;
  batch.reserve(txn_it->second.pages.size());
  for (const DirtyKey& key : txn_it->second.order) {
    auto page_it = txn_it->second.pages.find(key);
    if (page_it == txn_it->second.pages.end()) continue;
    dirty_bytes_ -= page_it->second.size();
    batch.push_back(
        DirtyPage{key.object_id, key.page, std::move(page_it->second)});
  }
  dirty_.erase(txn_it);
  if (batch.empty()) return Status::Ok();
  stats_.commit_flushes += batch.size();
  if (ledger_ != nullptr) ledger_->RecordBufferFlush(batch.size());
  size_t batch_size = batch.size();
  SimTime flush_start = clock_ != nullptr ? clock_->now() : 0;
  Status st = Status::Ok();
  {
    MutexUnlock unlock(&mu_);
    if (profiler_ != nullptr && clock_ != nullptr) {
      ScopedStall stall(profiler_, clock_, WaitClass::kBufferFill);
      st = flush_(txn_id, std::move(batch), /*for_commit=*/true);
    } else {
      st = flush_(txn_id, std::move(batch), /*for_commit=*/true);
    }
  }
  if (flush_latency_ != nullptr) {
    flush_latency_->Record(clock_->now() - flush_start);
    if (telemetry_->tracer().enabled()) {
      telemetry_->tracer().CompleteSpan(
          trace_pid_, kTrackBuffer, "buffer",
          "commit flush (" + std::to_string(batch_size) + " pages)",
          flush_start, clock_->now());
    }
  }
  return st;
}

void BufferManager::DropTxn(uint64_t txn_id) {
  MutexLock lock(&mu_);
  auto txn_it = dirty_.find(txn_id);
  if (txn_it == dirty_.end()) return;
  for (const auto& [key, payload] : txn_it->second.pages) {
    dirty_bytes_ -= payload.size();
  }
  dirty_.erase(txn_it);
}

}  // namespace cloudiq
