#include "buffer/prefetcher.h"

namespace cloudiq {

Status Prefetcher::PrefetchLocs(DbSpace* space,
                                const std::vector<PhysicalLoc>& locs) {
  std::vector<IoScheduler::Op> ops;
  std::vector<std::shared_ptr<StorageSubsystem::ReadSlot>> slots;
  std::vector<PhysicalLoc> fetched_locs;
  stats_.requested += locs.size();
  for (PhysicalLoc loc : locs) {
    if (buffer_->Cached(space->id, loc)) {
      ++stats_.already_cached;
      continue;
    }
    auto slot = std::make_shared<StorageSubsystem::ReadSlot>();
    ops.push_back(storage_->MakeReadOp(space, loc, slot));
    slots.push_back(std::move(slot));
    fetched_locs.push_back(loc);
  }
  if (ops.empty()) return Status::Ok();
  storage_->node()->io().RunParallel(ops, storage_->node()->IoWidth());

  Status first_error;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i]->status.ok()) {
      if (first_error.ok()) first_error = slots[i]->status;
      continue;
    }
    ++stats_.fetched;
    buffer_->Insert(space->id, fetched_locs[i],
                    std::move(slots[i]->payload));
  }
  return first_error;
}

}  // namespace cloudiq
