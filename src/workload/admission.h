#ifndef CLOUDIQ_WORKLOAD_ADMISSION_H_
#define CLOUDIQ_WORKLOAD_ADMISSION_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sim/sim_clock.h"

namespace cloudiq {

// Token bucket on the simulated clock: capacity `burst`, refilled at
// `rate` tokens per simulated second. Deterministic — refill is computed
// from the timestamps handed in, never from wall time.
class TokenBucket {
 public:
  TokenBucket() = default;
  // rate <= 0 means unlimited (TryTake always succeeds).
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  // Refills up to `now`, then takes one token if available.
  bool TryTake(SimTime now) {
    if (rate_ <= 0) return true;
    Refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  // Refilled balance at `now` (test hook; does not consume).
  double TokensAt(SimTime now) {
    if (rate_ <= 0) return burst_;
    Refill(now);
    return tokens_;
  }

  bool unlimited() const { return rate_ <= 0; }

 private:
  void Refill(SimTime now) {
    if (now > last_refill_) {
      tokens_ = std::min(burst_, tokens_ + (now - last_refill_) * rate_);
      last_refill_ = now;
    }
  }

  double rate_ = 0;
  double burst_ = 1;
  double tokens_ = 1;
  SimTime last_refill_ = 0;
};

// Front door of the workload engine: decides, for each arriving query,
// whether it starts immediately, waits in the bounded admission queue, or
// is shed (overload protection). Sheds happen for three reasons, checked
// in order: the tenant exhausted its cost budget, the tenant's token
// bucket is empty (per-tenant rate limit), or the admission queue is at
// its depth threshold (global overload). The bounded queue is what keeps
// tail latency of *admitted* queries finite once arrivals outrun service.
class AdmissionController {
 public:
  struct Options {
    // Queries executing at once across the node pool. Arrivals beyond it
    // queue (or shed once the queue is full).
    int concurrency_limit = 8;
    // Queued queries beyond which new arrivals are shed.
    size_t max_queue_depth = 64;
  };

  enum class Decision {
    kAdmit,            // dispatch now
    kQueue,            // wait for a slot
    kShedQueueFull,    // overload: queue at threshold
    kShedRateLimited,  // tenant token bucket empty
    kShedBudget,       // tenant cost budget exhausted
    kDefer,            // predicted spend would breach budget; park it
  };

  explicit AdmissionController(Options options) : options_(options) {}

  // Per-tenant rate limit (rate <= 0 = unlimited).
  void RegisterTenant(const std::string& tenant, double rate_per_sec,
                      double burst) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    buckets_[tenant] = TokenBucket(rate_per_sec, burst);
  }

  // Decides for one arrival of `tenant` at `now`. `spent_usd`/`budget_usd`
  // are the tenant's ledger spend and configured budget (budget <= 0 =
  // unlimited); `can_dispatch_now` says whether a run slot AND an executor
  // slot are free this instant. A consumed token is not refunded if the
  // queue check then sheds — the request did hit the rate limiter.
  Decision Decide(const std::string& tenant, SimTime now, double spent_usd,
                  double budget_usd, bool can_dispatch_now) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (budget_usd > 0 && spent_usd >= budget_usd) {
      return Decision::kShedBudget;
    }
    auto it = buckets_.find(tenant);
    if (it != buckets_.end() && !it->second.TryTake(now)) {
      return Decision::kShedRateLimited;
    }
    if (can_dispatch_now && queued_ == 0) return Decision::kAdmit;
    if (queued_ < options_.max_queue_depth) return Decision::kQueue;
    return Decision::kShedQueueFull;
  }

  // Predictive variant (src/costopt/): also consults what the job is
  // *expected* to cost (`predicted_usd`, from the SpendPredictor) and the
  // predicted spend of the tenant's in-flight jobs. A job whose predicted
  // spend would carry the tenant past its budget is deferred — parked
  // until completions either free predicted headroom or prove the budget
  // truly exhausted — instead of admitted (blowing the budget) or shed
  // (historical spend alone says there is room). Checked after the hard
  // budget gate and before the rate limiter, so a deferral never consumes
  // a token: the job will be re-decided on wake.
  Decision DecidePredictive(const std::string& tenant, SimTime now,
                            double spent_usd, double predicted_usd,
                            double inflight_predicted_usd, double budget_usd,
                            bool can_dispatch_now) EXCLUDES(mu_) {
    if (budget_usd > 0) {
      MutexLock lock(&mu_);
      if (spent_usd >= budget_usd) return Decision::kShedBudget;
      if (spent_usd + inflight_predicted_usd + predicted_usd > budget_usd) {
        return Decision::kDefer;
      }
    }
    return Decide(tenant, now, spent_usd, budget_usd, can_dispatch_now);
  }

  static bool IsShed(Decision d) {
    return d == Decision::kShedQueueFull ||
           d == Decision::kShedRateLimited || d == Decision::kShedBudget;
  }
  static const char* DecisionName(Decision d) {
    switch (d) {
      case Decision::kAdmit: return "admit";
      case Decision::kQueue: return "queue";
      case Decision::kShedQueueFull: return "shed_queue_full";
      case Decision::kShedRateLimited: return "shed_rate_limited";
      case Decision::kShedBudget: return "shed_budget";
      case Decision::kDefer: return "defer";
    }
    return "?";
  }

  // Occupancy bookkeeping, driven by the engine.
  void OnDispatch() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++running_;
  }
  void OnQueue() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++queued_;
  }
  void OnDequeue() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    --queued_;
  }
  void OnComplete() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    --running_;
  }

  bool HasRunSlot() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return running_ < options_.concurrency_limit;
  }
  int running() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return running_;
  }
  size_t queued() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return queued_;
  }
  const Options& options() const { return options_; }

  // Test hook: the tenant's refilled token balance.
  double TenantTokens(const std::string& tenant, SimTime now)
      EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = buckets_.find(tenant);
    return it == buckets_.end() ? 0 : it->second.TokensAt(now);
  }

 private:
  // mu_ guards the occupancy counters and the bucket map; TokenBucket is a
  // plain value type whose instances are only touched under this lock.
  Options options_;  // set at construction, read-only after
  mutable Mutex mu_{lockrank::kAdmissionController};
  int running_ GUARDED_BY(mu_) = 0;
  size_t queued_ GUARDED_BY(mu_) = 0;
  std::map<std::string, TokenBucket> buckets_ GUARDED_BY(mu_);
};

}  // namespace cloudiq

#endif  // CLOUDIQ_WORKLOAD_ADMISSION_H_
