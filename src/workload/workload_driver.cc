#include "workload/workload_driver.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/status.h"
#include "tpch/queries.h"

namespace cloudiq {

uint64_t WorkloadDriver::Summary::TotalCompleted() const {
  uint64_t total = 0;
  for (const TenantOutcome& t : tenants) total += t.counts.completed;
  return total;
}

uint64_t WorkloadDriver::Summary::TotalShed() const {
  uint64_t total = 0;
  for (const TenantOutcome& t : tenants) total += t.counts.Shed();
  return total;
}

WorkloadEngine::QueryBody WorkloadDriver::TpchBody(int query_number) {
  return [query_number](Session*, QueryContext* ctx) {
    return RunTpchQuery(ctx, query_number).status();
  };
}

int WorkloadDriver::NextQuery(size_t tenant_index) {
  TenantProgress& p = progress_[tenant_index];
  if (p.next_in_cycle >= p.order.size()) {
    p.order = p.load.mix;
    if (p.load.shuffle_mix) {
      // Fisher-Yates off the shared seeded Rng.
      for (size_t i = p.order.size(); i > 1; --i) {
        std::swap(p.order[i - 1], p.order[rng_.Uniform(i)]);
      }
    }
    p.next_in_cycle = 0;
  }
  return p.order[p.next_in_cycle++];
}

Result<WorkloadDriver::Summary> WorkloadDriver::Run(
    const std::vector<TenantLoad>& loads) {
  if (loads.empty()) {
    return Status::InvalidArgument("workload driver needs >= 1 tenant");
  }
  progress_.clear();
  for (const TenantLoad& load : loads) {
    if (load.mix.empty() || load.total_queries <= 0) {
      return Status::InvalidArgument("tenant " + load.config.name +
                                     ": empty mix or zero queries");
    }
    progress_.push_back(TenantProgress{load, {}, 0, 0});
    engine_->AddTenant(load.config);
  }

  const SimTime start = engine_->now();
  // Closed-loop tenants resubmit from the completion hook; remember each
  // tenant's slot so the hook can find its progress entry.
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < progress_.size(); ++i) {
    index[progress_[i].load.config.name] = i;
  }
  // Per-tenant drain tracking for the fairness snapshot (see
  // TenantOutcome::completed_at_first_drain).
  std::vector<uint64_t> events(progress_.size(), 0);
  std::vector<uint64_t> completions(progress_.size(), 0);
  std::vector<double> drain_at(progress_.size(), 0);
  std::vector<uint64_t> snapshot(progress_.size(), 0);
  bool snapshot_taken = false;
  engine_->set_completion_hook([&, this](
                                   const WorkloadEngine::Completion& done) {
    auto it = index.find(done.tenant);
    if (it == index.end()) return;
    const size_t i = it->second;
    TenantProgress& p = progress_[i];
    ++events[i];
    if (!done.shed && done.status.ok()) ++completions[i];
    if (events[i] == static_cast<uint64_t>(p.load.total_queries)) {
      drain_at[i] = done.finish - start;
      if (!snapshot_taken) {
        snapshot_taken = true;
        snapshot = completions;
      }
    }
    if (p.load.arrival_rate > 0) return;  // open loop: stream is pre-built
    if (p.submitted >= p.load.total_queries) return;
    const int q = NextQuery(i);
    ++p.submitted;
    engine_->Submit(p.load.config.name, "tpch_q" + std::to_string(q),
                    done.finish, TpchBody(q));
  });

  // Seed the streams. Open-loop tenants get their whole Poisson arrival
  // sequence up front; closed-loop tenants get their initial window. The
  // tenant order here is the load order, so one seed replays one stream.
  for (size_t i = 0; i < progress_.size(); ++i) {
    TenantProgress& p = progress_[i];
    if (p.load.arrival_rate > 0) {
      SimTime at = start;
      for (int n = 0; n < p.load.total_queries; ++n) {
        at += rng_.Exponential(1.0 / p.load.arrival_rate);
        const int q = NextQuery(i);
        ++p.submitted;
        engine_->Submit(p.load.config.name, "tpch_q" + std::to_string(q),
                        at, TpchBody(q));
      }
    } else {
      const int window =
          std::min(p.load.inflight > 0 ? p.load.inflight : 1,
                   p.load.total_queries);
      for (int n = 0; n < window; ++n) {
        const int q = NextQuery(i);
        ++p.submitted;
        engine_->Submit(p.load.config.name, "tpch_q" + std::to_string(q),
                        start, TpchBody(q));
      }
    }
  }

  Status run = engine_->RunUntilIdle();
  engine_->set_completion_hook(nullptr);
  if (!run.ok()) return run;

  Summary summary;
  double sum = 0, sum_sq = 0;
  for (size_t i = 0; i < progress_.size(); ++i) {
    const TenantProgress& p = progress_[i];
    const std::string& name = p.load.config.name;
    TenantOutcome out;
    out.tenant = name;
    out.counts = engine_->Counts(name);
    out.completed_at_first_drain = snapshot[i];
    out.drain_seconds = drain_at[i];
    const Histogram& lat = engine_->LatencyHistogram(name);
    const Histogram& wait = engine_->QueueWaitHistogram(name);
    out.latency_p50 = lat.p50();
    out.latency_p95 = lat.p95();
    out.queue_wait_p95 = wait.p95();
    // Fairness over the first-drain snapshot: final counts equalize once
    // every stream drains, the snapshot captures contention-time shares.
    const double share = snapshot_taken
                             ? static_cast<double>(snapshot[i])
                             : static_cast<double>(out.counts.completed);
    sum += share;
    sum_sq += share * share;
    summary.tenants.push_back(std::move(out));
  }
  summary.makespan_seconds = engine_->now() - start;
  if (summary.makespan_seconds > 0) {
    summary.throughput_qps =
        summary.TotalCompleted() / summary.makespan_seconds;
  }
  const double n = static_cast<double>(summary.tenants.size());
  summary.fairness_index =
      sum_sq > 0 ? (sum * sum) / (n * sum_sq) : 0;
  return summary;
}

}  // namespace cloudiq
