#ifndef CLOUDIQ_WORKLOAD_FAIR_SCHEDULER_H_
#define CLOUDIQ_WORKLOAD_FAIR_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sim/sim_clock.h"

namespace cloudiq {

// Weighted fair-share dispatch across tenants, with priority aging.
//
// Each tenant accumulates *virtual service*: executed sim-seconds divided
// by the tenant's weight. When a run slot frees, the queued tenant with
// the least virtual service dispatches next, so over time tenants receive
// service proportional to their weights (classic weighted fair queueing,
// at whole-query granularity). Two refinements keep it well-behaved:
//
//  * Priority aging: a queued job's effective key shrinks by aging_rate
//    for every simulated second it has waited, so even a tenant that is
//    far "ahead" on service cannot starve others indefinitely — its
//    waiting jobs age back into contention.
//  * Catch-up on wake: a tenant that was idle while others ran would
//    otherwise return with a huge service deficit and monopolize the
//    engine; when a tenant's queue goes non-empty its virtual service is
//    lifted to the minimum among currently-backlogged tenants.
class FairScheduler {
 public:
  struct Options {
    // Virtual-service seconds of priority credit per simulated second a
    // job has waited. 0 disables aging (pure WFQ).
    double aging_rate = 0.05;
  };

  struct Pick {
    std::string tenant;
    uint64_t job_id = 0;
    SimTime enqueued_at = 0;
  };

  explicit FairScheduler(Options options) : options_(options) {}

  void RegisterTenant(const std::string& tenant, double weight)
      EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    Tenant& t = tenants_[tenant];
    t.weight = weight > 0 ? weight : 1.0;
  }

  void Enqueue(const std::string& tenant, uint64_t job_id, SimTime now)
      EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    Tenant& t = tenants_[tenant];
    if (t.queue.empty()) {
      // Catch-up on wake (see class comment).
      bool any = false;
      double min_service = 0;
      for (const auto& [name, other] : tenants_) {
        if (name == tenant || other.queue.empty()) continue;
        if (!any || other.virtual_service < min_service) {
          min_service = other.virtual_service;
          any = true;
        }
      }
      if (any && min_service > t.virtual_service) {
        t.virtual_service = min_service;
      }
    }
    t.queue.push_back(QueuedJob{job_id, now});
    ++queued_total_;
  }

  // Pops the job to dispatch at `now`: head of the queue of the tenant
  // with the least aged virtual service (ties break by tenant name, so
  // dispatch order is deterministic). Empty when nothing is queued.
  std::optional<Pick> PickNext(SimTime now) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    const std::string* best_name = nullptr;
    Tenant* best = nullptr;
    double best_key = 0;
    for (auto& [name, t] : tenants_) {
      if (t.queue.empty()) continue;
      double waited = now - t.queue.front().enqueued_at;
      double key = t.virtual_service - options_.aging_rate * waited;
      if (best == nullptr || key < best_key) {
        best_name = &name;
        best = &t;
        best_key = key;
      }
    }
    if (best == nullptr) return std::nullopt;
    QueuedJob job = best->queue.front();
    best->queue.pop_front();
    --queued_total_;
    return Pick{*best_name, job.job_id, job.enqueued_at};
  }

  // Charges `sim_seconds` of executed service to the tenant (called at
  // every fiber step with that slice's *active* node time, so dispatch
  // decisions see current service and time-shared nodes don't
  // double-bill).
  void AddService(const std::string& tenant, double sim_seconds)
      EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    Tenant& t = tenants_[tenant];
    t.virtual_service += sim_seconds / t.weight;
  }

  size_t queued() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return queued_total_;
  }
  size_t queued_for(const std::string& tenant) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.queue.size();
  }
  double virtual_service(const std::string& tenant) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.virtual_service;
  }

 private:
  struct QueuedJob {
    uint64_t job_id;
    SimTime enqueued_at;
  };
  struct Tenant {
    double weight = 1.0;
    double virtual_service = 0;
    std::deque<QueuedJob> queue;
  };

  Options options_;  // set at construction, read-only after
  mutable Mutex mu_{lockrank::kFairScheduler};
  std::map<std::string, Tenant> tenants_ GUARDED_BY(mu_);
  size_t queued_total_ GUARDED_BY(mu_) = 0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_WORKLOAD_FAIR_SCHEDULER_H_
