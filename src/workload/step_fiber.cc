#include "workload/step_fiber.h"

namespace cloudiq {

StepFiber::StepFiber(Body body)
    : body_(std::move(body)), thread_([this] { Trampoline(); }) {}

void StepFiber::Trampoline() {
  bool cancelled;
  {
    MutexLock lock(&mu_);
    // NOLINT(cloudiq-stall-report): real-thread handoff awaiting the
    // first Resume; the sim clock does not run while parked here.
    cv_.Wait(&mu_, [this]() REQUIRES(mu_) { return fiber_turn_; });
    cancelled = cancel_;
  }
  if (!cancelled) {
    try {
      body_();
    } catch (const CancelTag&) {
      // Teardown unwound the body; nothing to do.
    }
  }
  {
    MutexLock lock(&mu_);
    finished_ = true;
    fiber_turn_ = false;
  }
  cv_.NotifyAll();
}

bool StepFiber::Resume() {
  MutexLock lock(&mu_);
  if (finished_) return false;
  fiber_turn_ = true;
  cv_.NotifyAll();
  // NOLINT(cloudiq-stall-report): real-thread handoff to the fiber; any
  // sim-time the step consumes is charged by the fiber body itself.
  cv_.Wait(&mu_, [this]() REQUIRES(mu_) { return !fiber_turn_; });
  return !finished_;
}

void StepFiber::Yield() {
  MutexLock lock(&mu_);
  fiber_turn_ = false;
  cv_.NotifyAll();
  // NOLINT(cloudiq-stall-report): real-thread handoff back to the engine;
  // the engine charges the suspension gap (kLockWait) at the next resume.
  cv_.Wait(&mu_, [this]() REQUIRES(mu_) { return fiber_turn_; });
  if (cancel_) throw CancelTag{};
}

StepFiber::~StepFiber() {
  {
    MutexLock lock(&mu_);
    if (!finished_) {
      cancel_ = true;
      fiber_turn_ = true;
      cv_.NotifyAll();
      // NOLINT(cloudiq-stall-report): teardown unwind of a cancelled
      // fiber; no simulated time passes during destruction.
      cv_.Wait(&mu_, [this]() REQUIRES(mu_) { return finished_; });
    }
  }
  thread_.join();
}

}  // namespace cloudiq
