#include "workload/step_fiber.h"

namespace cloudiq {

StepFiber::StepFiber(Body body)
    : body_(std::move(body)), thread_([this] { Trampoline(); }) {}

void StepFiber::Trampoline() {
  bool cancelled;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return fiber_turn_; });
    cancelled = cancel_;
  }
  if (!cancelled) {
    try {
      body_();
    } catch (const CancelTag&) {
      // Teardown unwound the body; nothing to do.
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
    fiber_turn_ = false;
  }
  cv_.notify_all();
}

bool StepFiber::Resume() {
  std::unique_lock<std::mutex> lock(mu_);
  if (finished_) return false;
  fiber_turn_ = true;
  cv_.notify_all();
  cv_.wait(lock, [this] { return !fiber_turn_; });
  return !finished_;
}

void StepFiber::Yield() {
  std::unique_lock<std::mutex> lock(mu_);
  fiber_turn_ = false;
  cv_.notify_all();
  cv_.wait(lock, [this] { return fiber_turn_; });
  if (cancel_) throw CancelTag{};
}

StepFiber::~StepFiber() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!finished_) {
      cancel_ = true;
      fiber_turn_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return finished_; });
    }
  }
  thread_.join();
}

}  // namespace cloudiq
