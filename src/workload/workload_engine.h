#ifndef CLOUDIQ_WORKLOAD_WORKLOAD_ENGINE_H_
#define CLOUDIQ_WORKLOAD_WORKLOAD_ENGINE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "costopt/predictor.h"
#include "engine/database.h"
#include "engine/session.h"
#include "telemetry/stall_profiler.h"
#include "workload/admission.h"
#include "workload/fair_scheduler.h"
#include "workload/step_fiber.h"

namespace cloudiq {

// Deterministic concurrent multi-tenant query engine.
//
// Sits on top of a pool of database nodes that share one SimEnvironment
// (a multiplex's secondaries, or a single node for one-box workloads) and
// runs many queries "at once" on the simulated clock:
//
//  * arrivals pass the AdmissionController (per-tenant token buckets,
//    cost budgets, a global concurrency limit and a bounded queue with
//    overload shedding);
//  * queued queries dispatch by weighted fair share with priority aging
//    (FairScheduler), onto the least-loaded node;
//  * each dispatched query runs as a StepFiber whose executor step hook
//    yields at operator boundaries and CPU charges, and the engine always
//    resumes the runnable job that is earliest in virtual time — so jobs
//    time-share node clocks and contend for the shared buffer pools, OCM
//    and object store exactly as interleaved real sessions would, in a
//    fully reproducible order;
//  * completions feed latency/queue-wait histograms and SLO met/missed
//    counters into the StatsRegistry (workload.<tenant>.*), per-tenant
//    cost into the CostLedger rollups, and each job's *active* node time
//    into the CostMeter — ledger and meter stay equal by construction.
//
// Locking: mu_ guards the engine's own leaf state (job maps, engine clock,
// node occupancy, tenant table). The admission controller, scheduler and
// telemetry instruments serialize themselves and sit below the engine in
// the lock order. mu_ is released (MutexUnlock) around fiber resumes and
// the completion/event hooks — both re-enter the engine: hooks call
// Submit(), and a resumed fiber runs an entire query. A Job* stays valid
// across those windows because only its own Complete() erases it.
class WorkloadEngine {
 public:
  struct TenantConfig {
    std::string name;
    double weight = 1.0;         // fair-share weight
    double rate_per_sec = 0;     // admission token refill; <= 0 unlimited
    double burst = 4;            // token bucket capacity
    double cost_budget_usd = 0;  // ledger spend cap; <= 0 unlimited
    double slo_seconds = 0;      // end-to-end target; <= 0 no SLO
    // Plan-choice policy handed to this tenant's query contexts at
    // dispatch (src/costopt/). kCostBlind leaves whatever the Database's
    // own options say untouched; the other policies override with the
    // tenant's SLO and remaining budget.
    costopt::PlanPolicy cost_policy = costopt::PlanPolicy::kCostBlind;
  };

  struct Options {
    AdmissionController::Options admission;
    FairScheduler::Options scheduler;
    // Queries time-sharing one node at once. concurrency_limit caps the
    // pool-wide total; this caps one node's multiprogramming.
    int slots_per_node = 2;
    // Predictive admission (src/costopt/): arrivals are decided against
    // predicted spend — the SpendPredictor's per-(tenant, tag) mean of
    // billed USD — on top of historical ledger spend. Jobs whose
    // prediction would carry the tenant past its budget are parked on a
    // deferred queue and re-priced when a completion changes the
    // forecast; parked jobs that still don't fit when the pool drains
    // are shed as budget sheds.
    bool predictive_admission = false;
    // Predicted spend for a (tenant, tag) never seen before.
    double spend_prior_usd = 0;
    // Deterministic resume-order perturbation, for the lock/interleaving
    // stress sweep (tests only). 0 = off: resume the runnable job
    // earliest in virtual time — the default schedule, byte-identical
    // reports. Nonzero: the runnable job is instead chosen by a seeded
    // hash, so each seed exercises a different — but still legal and
    // still reproducible — fiber interleaving. Any resume order is
    // legal: node clocks never run backward and suspension gaps are
    // charged from ready_time, so charge windows stay non-negative.
    uint64_t resume_perturb_seed = 0;
  };

  WorkloadEngine(std::vector<Database*> nodes, Options options,
                 std::vector<TenantConfig> tenants);
  ~WorkloadEngine();

  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  // The work of one query: runs inside the job's fiber against the
  // engine-chosen node. The engine owns the transaction (Begin before,
  // Commit on Ok / Rollback on error after) and the query context's
  // identity; the body only executes.
  using QueryBody = std::function<Status(Session* session,
                                         QueryContext* ctx)>;

  // Registers (or reconfigures) a tenant: weight, rate limit, budget and
  // SLO take effect for subsequent admissions. Equivalent to listing the
  // tenant in the constructor.
  void AddTenant(const TenantConfig& config) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    RegisterTenant(config);
  }

  // Registers an arrival of `tenant` at simulated time `arrival` (clamped
  // forward to the engine's current time if already past). Returns the
  // job id. Unknown tenants are auto-registered with default limits.
  uint64_t Submit(const std::string& tenant, std::string tag,
                  SimTime arrival, QueryBody body) EXCLUDES(mu_);

  // Everything known about one finished (or shed) job.
  struct Completion {
    uint64_t job_id = 0;
    std::string tenant;
    std::string tag;
    Status status;         // query result; sheds carry Busy
    bool shed = false;
    AdmissionController::Decision decision =
        AdmissionController::Decision::kAdmit;
    SimTime arrival = 0;
    SimTime dispatch = 0;  // 0 for sheds
    SimTime finish = 0;
    double active_seconds = 0;  // node time the job actually consumed
  };
  using CompletionHook = std::function<void(const Completion&)>;
  // Called after each completion or shed. Safe to Submit() from inside
  // (closed-loop drivers do).
  void set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
  }

  // Chaos hook: called with the engine time at every arrival and
  // completion event. Failure tests use it to kill nodes mid-workload.
  using EventHook = std::function<void(SimTime now)>;
  void set_event_hook(EventHook hook) { event_hook_ = std::move(hook); }

  // Processes events — arrivals, fiber steps, dispatches — in virtual
  // time order until no work remains. Individual query failures land in
  // the per-tenant failed counters and Completion::status, not here.
  Status RunUntilIdle() EXCLUDES(mu_);

  // --- observability -------------------------------------------------------
  struct TenantCounts {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t shed_queue_full = 0;
    uint64_t shed_rate_limited = 0;
    uint64_t shed_budget = 0;
    uint64_t slo_met = 0;
    uint64_t slo_missed = 0;
    double spent_usd = 0;

    uint64_t Shed() const {
      return shed_queue_full + shed_rate_limited + shed_budget;
    }
  };
  TenantCounts Counts(const std::string& tenant) const EXCLUDES(mu_);
  const Histogram& LatencyHistogram(const std::string& tenant) const
      EXCLUDES(mu_);
  const Histogram& QueueWaitHistogram(const std::string& tenant) const
      EXCLUDES(mu_);

  SimTime now() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return clock_;
  }
  const AdmissionController& admission() const { return admission_; }
  const FairScheduler& scheduler() const { return scheduler_; }
  SimEnvironment* env() { return env_; }
  // Total fiber resumes — grows past the job count when queries actually
  // slice into multiple steps.
  uint64_t steps() const;

 private:
  struct Job {
    uint64_t id = 0;
    std::string tenant;
    std::string tag;
    QueryBody body;
    SimTime arrival = 0;
    SimTime dispatch = 0;
    // Virtual time at which this job continues; orders resumes so jobs
    // sharing a node round-robin instead of one monopolizing the clock.
    SimTime ready_time = 0;
    int node_index = -1;
    Database* db = nullptr;
    std::unique_ptr<Session> session;
    std::unique_ptr<StepFiber> fiber;
    // Ledger context to restore at the next resume: exactly what the
    // fiber had current when it last yielded (query- or operator-level).
    AttributionContext saved_attr;
    AttributionContext query_attr;  // query-level identity, for billing
    // Stall-profiler scope stack, swapped alongside saved_attr: the open
    // query/operator stall scopes belong to this fiber, not the thread.
    std::unique_ptr<StallProfiler::Frame> frame;
    // False until the first fiber resume returns; suspension gaps are
    // charged from ready_time, which is only meaningful after a step.
    bool stepped = false;
    Status result;
    double active_seconds = 0;
    // Cost-intelligent planning: the spend the admission decision cited
    // (reserved against the tenant's budget while in flight), and the
    // tenant constraints stamped onto the query context at dispatch.
    double predicted_usd = 0;
    costopt::PlanPolicy cost_policy = costopt::PlanPolicy::kCostBlind;
    double slo_seconds = 0;
    double budget_left_usd = -1;
  };

  struct TenantState {
    TenantConfig config;
    double spent_usd = 0;
    // Sum of predicted_usd over the tenant's admitted-or-queued jobs —
    // what DecidePredictive holds against the budget besides history.
    double inflight_predicted_usd = 0;
    Counter* costopt_deferred = nullptr;       // arrivals parked on predict
    Counter* costopt_deferred_shed = nullptr;  // parked jobs that never fit
    // Registry instruments, resolved once (stable references).
    Counter* submitted = nullptr;
    Counter* completed = nullptr;
    Counter* failed = nullptr;
    Counter* shed_queue_full = nullptr;
    Counter* shed_rate_limited = nullptr;
    Counter* shed_budget = nullptr;
    Counter* slo_met = nullptr;
    Counter* slo_missed = nullptr;
    Histogram* latency = nullptr;
    Histogram* queue_wait = nullptr;
    // workload.<tenant>.stall.<class> — cumulative seconds the tenant's
    // queries spent in each wait class, refreshed on every completion.
    std::array<Gauge*, kNumWaitClasses> stall = {};
  };

  TenantState& RegisterTenant(const TenantConfig& config) REQUIRES(mu_);
  TenantState& TenantFor(const std::string& name) REQUIRES(mu_);
  void ProcessNextArrival() REQUIRES(mu_);
  void StepJob(Job* job) REQUIRES(mu_);
  void RunJobBody(Job* job);  // fiber side; touches only the job itself
  void Dispatch(std::unique_ptr<Job> job, SimTime now) REQUIRES(mu_);
  void Complete(Job* job) REQUIRES(mu_);
  void Shed(std::unique_ptr<Job> job,
            AdmissionController::Decision decision) REQUIRES(mu_);
  void TryDispatch(SimTime now) REQUIRES(mu_);
  int FindFreeNode() const REQUIRES(mu_);
  // Re-prices every deferred job against fresh spend history and
  // headroom (called after each completion). FIFO; a job that still
  // doesn't fit goes back to the end of the deferred queue.
  void WakeDeferred(SimTime now) REQUIRES(mu_);

  // Wiring set at construction (nodes, env, hooks, instrument pointers) is
  // not guarded; admission_/scheduler_ carry their own locks.
  std::vector<Database*> nodes_;
  Options options_;
  SimEnvironment* env_;
  AdmissionController admission_;
  FairScheduler scheduler_;

  mutable Mutex mu_{lockrank::kWorkloadEngine};
  std::map<std::string, TenantState> tenants_ GUARDED_BY(mu_);
  uint64_t last_job_id_ GUARDED_BY(mu_) = 0;
  // Engine time: max event time processed so far.
  SimTime clock_ GUARDED_BY(mu_) = 0;
  // Arrivals not yet admitted, by (arrival time, job id).
  std::map<std::pair<SimTime, uint64_t>, std::unique_ptr<Job>> arrivals_
      GUARDED_BY(mu_);
  // Admission-queued jobs by id (dispatch order lives in the scheduler).
  std::map<uint64_t, std::unique_ptr<Job>> queued_jobs_ GUARDED_BY(mu_);
  // Dispatched jobs by id.
  std::map<uint64_t, std::unique_ptr<Job>> running_ GUARDED_BY(mu_);
  std::vector<int> node_active_ GUARDED_BY(mu_);
  // Jobs parked by predictive admission, FIFO; woken on completions.
  std::deque<std::unique_ptr<Job>> deferred_ GUARDED_BY(mu_);
  // Resume-perturbation step counter (Options::resume_perturb_seed).
  uint64_t perturb_ticks_ GUARDED_BY(mu_) = 0;
  // Per-(tenant, tag) billed-spend history behind DecidePredictive.
  // Carries its own lock; sits below mu_ like the other leaf components.
  costopt::SpendPredictor predictor_;

  CompletionHook completion_hook_;
  EventHook event_hook_;
  Counter* steps_ = nullptr;
  Histogram* latency_all_ = nullptr;
  Histogram* queue_wait_all_ = nullptr;
  Gauge* queue_depth_ = nullptr;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_WORKLOAD_WORKLOAD_ENGINE_H_
