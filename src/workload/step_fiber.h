#ifndef CLOUDIQ_WORKLOAD_STEP_FIBER_H_
#define CLOUDIQ_WORKLOAD_STEP_FIBER_H_

#include <functional>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cloudiq {

// Cooperative execution slice for one query job.
//
// The simulator is single-threaded by design, but query execution is a
// deep synchronous call stack (executor → buffer manager → OCM → object
// store) that cannot return part-way. To interleave many queries on the
// sim clock, each job's body runs on its own OS thread under a strict
// handoff: exactly one side — the scheduler (host) or the body (fiber) —
// runs at any instant, and every switch goes through a mutex/condvar
// pair. The interleaving is therefore fully decided by the order of
// Resume() calls, which makes concurrent workloads exactly reproducible
// (and data-race-free under TSan: the handoff mutex orders every access
// the two sides make to shared simulator state).
//
// The body yields wherever the executor's step hook fires (operator
// boundaries, CPU charges); the host resumes jobs in virtual-time order.
class StepFiber {
 public:
  using Body = std::function<void()>;

  // Starts the thread; the body does not run until the first Resume().
  explicit StepFiber(Body body);

  // If the body has not finished, cancels it: the next (forced) Yield
  // unwinds the body's stack via an internal exception. Joins the thread.
  ~StepFiber();

  StepFiber(const StepFiber&) = delete;
  StepFiber& operator=(const StepFiber&) = delete;

  // Host side: runs the body until its next Yield() or until it returns.
  // Returns true while the body has more work, false once finished.
  bool Resume() EXCLUDES(mu_);

  // Body side: suspends, handing control back to Resume()'s caller.
  void Yield() EXCLUDES(mu_);

  // Host side (valid between Resume() calls: the handoff guarantees the
  // fiber is parked, so the host's read cannot race a fiber write).
  bool finished() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return finished_;
  }

 private:
  struct CancelTag {};  // thrown out of Yield() when cancelled

  void Trampoline() EXCLUDES(mu_);

  Body body_;
  mutable Mutex mu_{lockrank::kStepFiber};
  CondVar cv_;
  bool fiber_turn_ GUARDED_BY(mu_) = false;
  bool finished_ GUARDED_BY(mu_) = false;
  bool cancel_ GUARDED_BY(mu_) = false;
  std::thread thread_;  // last: starts after state is initialized
};

}  // namespace cloudiq

#endif  // CLOUDIQ_WORKLOAD_STEP_FIBER_H_
