#include "workload/workload_engine.h"

#include <algorithm>

#include "telemetry/tracer.h"

namespace cloudiq {

WorkloadEngine::WorkloadEngine(std::vector<Database*> nodes, Options options,
                               std::vector<TenantConfig> tenants)
    : nodes_(std::move(nodes)),
      options_(options),
      env_(&nodes_.front()->env()),
      admission_(options.admission),
      scheduler_(options.scheduler),
      node_active_(nodes_.size(), 0),
      predictor_(options.spend_prior_usd) {
  StatsRegistry& stats = env_->telemetry().stats();
  steps_ = &stats.counter("workload.steps");
  latency_all_ = &stats.histogram("workload.latency");
  queue_wait_all_ = &stats.histogram("workload.queue_wait");
  queue_depth_ = &stats.gauge("workload.queue_depth");
  // Start the engine where the pool already is (load phases advance node
  // clocks before the workload begins).
  MutexLock lock(&mu_);
  for (Database* db : nodes_) {
    clock_ = std::max(clock_, db->node().clock().now());
  }
  for (const TenantConfig& config : tenants) RegisterTenant(config);
}

WorkloadEngine::~WorkloadEngine() = default;

WorkloadEngine::TenantState& WorkloadEngine::RegisterTenant(
    const TenantConfig& config) {
  TenantState& ts = tenants_[config.name];
  ts.config = config;
  StatsRegistry& stats = env_->telemetry().stats();
  const std::string p = "workload." + config.name + ".";
  ts.submitted = &stats.counter(p + "submitted");
  ts.completed = &stats.counter(p + "completed");
  ts.failed = &stats.counter(p + "failed");
  ts.shed_queue_full = &stats.counter(p + "shed_queue_full");
  ts.shed_rate_limited = &stats.counter(p + "shed_rate_limited");
  ts.shed_budget = &stats.counter(p + "shed_budget");
  ts.slo_met = &stats.counter(p + "slo_met");
  ts.slo_missed = &stats.counter(p + "slo_missed");
  ts.costopt_deferred = &stats.counter(p + "costopt_deferred");
  ts.costopt_deferred_shed = &stats.counter(p + "costopt_deferred_shed");
  ts.latency = &stats.histogram(p + "latency");
  ts.queue_wait = &stats.histogram(p + "queue_wait");
  for (int i = 0; i < kNumWaitClasses; ++i) {
    ts.stall[i] = &stats.gauge(
        p + "stall." + WaitClassName(static_cast<WaitClass>(i)));
  }
  // The report's per-tenant SLO-burn lines read the target back from here
  // (the report walks the ledger and registry; it never sees the engine).
  stats.gauge(p + "slo_seconds").Set(config.slo_seconds);
  admission_.RegisterTenant(config.name, config.rate_per_sec, config.burst);
  scheduler_.RegisterTenant(config.name, config.weight);
  return ts;
}

WorkloadEngine::TenantState& WorkloadEngine::TenantFor(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  TenantConfig config;
  config.name = name;
  return RegisterTenant(config);
}

uint64_t WorkloadEngine::Submit(const std::string& tenant, std::string tag,
                                SimTime arrival, QueryBody body) {
  MutexLock lock(&mu_);
  TenantFor(tenant);  // ensure instruments and limits exist
  auto job = std::make_unique<Job>();
  job->id = ++last_job_id_;
  job->tenant = tenant;
  job->tag = std::move(tag);
  job->body = std::move(body);
  job->arrival = std::max(arrival, clock_);
  uint64_t id = job->id;
  arrivals_.emplace(std::make_pair(job->arrival, id), std::move(job));
  return id;
}

Status WorkloadEngine::RunUntilIdle() {
  for (;;) {
    // One lock acquisition per event; the helpers below open MutexUnlock
    // windows around fiber resumes and user hooks.
    MutexLock lock(&mu_);
    SimTime t_arrival = 0;
    bool have_arrival = !arrivals_.empty();
    if (have_arrival) t_arrival = arrivals_.begin()->first.first;

    // The runnable job earliest in virtual time. Jobs sharing a node all
    // sit at that node's clock; ready_time (set when a job last stepped)
    // breaks the tie in favour of the job that has waited longest, so
    // co-resident jobs round-robin. Final tie: lowest id (map order).
    Job* best = nullptr;
    SimTime best_eff = 0;
    for (auto& [id, job] : running_) {
      (void)id;
      SimTime eff = std::max(job->ready_time,
                             job->db->node().clock().now());
      if (best == nullptr || eff < best_eff ||
          (eff == best_eff && job->ready_time < best->ready_time)) {
        best = job.get();
        best_eff = eff;
      }
    }

    if (have_arrival && (best == nullptr || t_arrival <= best_eff)) {
      ProcessNextArrival();
      continue;
    }
    if (best != nullptr && options_.resume_perturb_seed != 0) {
      // Stress-sweep mode: pick the next fiber to resume by a seeded
      // splitmix-style hash of (seed, job id, tick) instead of earliest
      // virtual time. The arrival-vs-step decision above still uses the
      // true earliest time, so arrivals are never starved; see
      // Options::resume_perturb_seed for why any order is legal.
      Job* pick = nullptr;
      uint64_t pick_hash = 0;
      for (auto& [id, job] : running_) {
        uint64_t h = options_.resume_perturb_seed +
                     0x9e3779b97f4a7c15ull * (id + 1) +
                     0xbf58476d1ce4e5b9ull * (perturb_ticks_ + 1);
        h ^= h >> 30;
        h *= 0xbf58476d1ce4e5b9ull;
        h ^= h >> 27;
        h *= 0x94d049bb133111ebull;
        h ^= h >> 31;
        if (pick == nullptr || h > pick_hash) {
          pick = job.get();
          pick_hash = h;
        }
      }
      best = pick;
      ++perturb_ticks_;
    }
    if (best != nullptr) {
      StepJob(best);
      continue;
    }
    if (scheduler_.queued() > 0) {
      // No capacity consumer left to free a slot — cannot happen unless
      // the pool is empty of slots entirely.
      TryDispatch(clock_);
      if (running_.empty()) {
        return Status::FailedPrecondition(
            "queued jobs but no dispatch capacity");
      }
      continue;
    }
    if (!deferred_.empty()) {
      // Nothing running and nothing arriving: no future completion will
      // change the forecast the deferral cited, so the parked predicted
      // spend still breaches the budget — those jobs shed as budget
      // sheds (costopt_deferred_shed counts them apart).
      while (!deferred_.empty()) {
        std::unique_ptr<Job> job = std::move(deferred_.front());
        deferred_.pop_front();
        TenantFor(job->tenant).costopt_deferred_shed->Add();
        Shed(std::move(job),
             AdmissionController::Decision::kShedBudget);
      }
      continue;
    }
    return Status::Ok();
  }
}

void WorkloadEngine::ProcessNextArrival() {
  auto node = arrivals_.extract(arrivals_.begin());
  std::unique_ptr<Job> job = std::move(node.mapped());
  clock_ = std::max(clock_, job->arrival);
  if (event_hook_) {
    SimTime now = clock_;
    MutexUnlock unlock(&mu_);
    event_hook_(now);
  }
  TenantState& ts = TenantFor(job->tenant);
  ts.submitted->Add();
  bool can_dispatch = admission_.HasRunSlot() && FindFreeNode() >= 0;
  AdmissionController::Decision decision;
  if (options_.predictive_admission) {
    // Predictive admission: the decision cites the SpendPredictor's
    // estimate for this (tenant, tag) plus the predicted spend already
    // in flight — a job expected to breach the budget parks on the
    // deferred queue instead of running (or being wrongly shed).
    job->predicted_usd = predictor_.Predict(job->tenant, job->tag);
    decision = admission_.DecidePredictive(
        job->tenant, clock_, ts.spent_usd, job->predicted_usd,
        ts.inflight_predicted_usd, ts.config.cost_budget_usd, can_dispatch);
  } else {
    decision = admission_.Decide(job->tenant, clock_, ts.spent_usd,
                                 ts.config.cost_budget_usd, can_dispatch);
  }
  switch (decision) {
    case AdmissionController::Decision::kAdmit:
      ts.inflight_predicted_usd += job->predicted_usd;
      admission_.OnDispatch();
      Dispatch(std::move(job), clock_);
      break;
    case AdmissionController::Decision::kQueue: {
      ts.inflight_predicted_usd += job->predicted_usd;
      admission_.OnQueue();
      scheduler_.Enqueue(job->tenant, job->id, clock_);
      uint64_t id = job->id;
      queued_jobs_[id] = std::move(job);
      break;
    }
    case AdmissionController::Decision::kDefer:
      ts.costopt_deferred->Add();
      deferred_.push_back(std::move(job));
      break;
    default:
      Shed(std::move(job), decision);
      break;
  }
  queue_depth_->Set(static_cast<double>(admission_.queued()));
}

void WorkloadEngine::Shed(std::unique_ptr<Job> job,
                          AdmissionController::Decision decision) {
  TenantState& ts = TenantFor(job->tenant);
  switch (decision) {
    case AdmissionController::Decision::kShedQueueFull:
      ts.shed_queue_full->Add();
      break;
    case AdmissionController::Decision::kShedRateLimited:
      ts.shed_rate_limited->Add();
      break;
    case AdmissionController::Decision::kShedBudget:
      ts.shed_budget->Add();
      break;
    default:
      break;
  }
  if (completion_hook_) {
    Completion c;
    c.job_id = job->id;
    c.tenant = job->tenant;
    c.tag = job->tag;
    c.status = Status::Busy(AdmissionController::DecisionName(decision));
    c.shed = true;
    c.decision = decision;
    c.arrival = job->arrival;
    c.finish = clock_;
    MutexUnlock unlock(&mu_);
    completion_hook_(c);
  }
}

int WorkloadEngine::FindFreeNode() const {
  int best = -1;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (node_active_[i] >= options_.slots_per_node) continue;
    if (best < 0 || node_active_[i] < node_active_[best] ||
        (node_active_[i] == node_active_[best] &&
         nodes_[i]->node().clock().now() <
             nodes_[best]->node().clock().now())) {
      best = i;
    }
  }
  return best;
}

void WorkloadEngine::Dispatch(std::unique_ptr<Job> job, SimTime now) {
  int node_index = FindFreeNode();
  job->node_index = node_index;
  job->db = nodes_[node_index];
  ++node_active_[node_index];
  job->dispatch = now;
  job->ready_time = now;
  // The query cannot start before its dispatch instant; if the node is
  // mid-way through other work its clock is already later, and the job
  // simply continues from there (node-busy wait lands in its latency).
  job->db->node().clock().AdvanceTo(now);
  job->session = std::make_unique<Session>(job->db, job->tenant);
  TenantState& ts = TenantFor(job->tenant);
  // Stash the tenant's plan-choice constraints now, under the lock: the
  // fiber body stamps them onto the query context (SetCostConstraints)
  // without touching engine state. budget_left is what the chooser's
  // kMinLatencyUnderBudget compares predicted request-USD against.
  job->cost_policy = ts.config.cost_policy;
  job->slo_seconds = ts.config.slo_seconds;
  job->budget_left_usd =
      ts.config.cost_budget_usd > 0
          ? std::max(0.0, ts.config.cost_budget_usd - ts.spent_usd)
          : -1;
  double wait = std::max(0.0, now - job->arrival);
  ts.queue_wait->Record(wait);
  queue_wait_all_->Record(wait);
  Job* raw = job.get();
  raw->frame = env_->telemetry().profiler().NewFrame();
  raw->fiber = std::make_unique<StepFiber>([this, raw] { RunJobBody(raw); });
  running_[raw->id] = std::move(job);
}

void WorkloadEngine::RunJobBody(Job* job) {
  Database* db = job->db;
  Transaction* txn = db->Begin();
  QueryContext ctx = job->session->NewQuery(txn, job->tag);
  // A tenant with a cost-aware policy overrides the database defaults;
  // kCostBlind tenants leave whatever Database::Options configured.
  if (job->cost_policy != costopt::PlanPolicy::kCostBlind) {
    ctx.SetCostConstraints(job->cost_policy, job->slo_seconds,
                           job->budget_left_usd);
  }
  job->query_attr = ctx.attribution();
  StepFiber* fiber = job->fiber.get();
  // Executor parallel sections (ScopedParallelSection) defer this hook
  // until the section closes, so a fiber suspends/resumes only with a
  // balanced profiler stack: the engine swaps the job's whole stall
  // frame around every resume, which must never happen with a parallel
  // node still open (its lanes would scale against the wrong window).
  // One deferred step fires per section — a section is one scheduling
  // unit, like a single charge.
  ctx.set_step_hook([fiber](const char*) { fiber->Yield(); });
  Status st;
  {
    // Query-level context for the whole Begin..Commit window; operator
    // scopes nest within it on this fiber's stack, and the engine swaps
    // the whole stack top in and out around every step.
    ScopedAttribution scope(&db->env().telemetry().ledger(),
                            ctx.attribution());
    // Account the job's pre-execution life under its own identity:
    // admission/scheduler queueing, then waiting for the node clock to
    // reach this fiber's first resume (dispatch metadata advances
    // nothing, so the node clock has not moved since). Together with the
    // query scope below, the tiles telescope: the job's wait-class sum
    // equals finish - arrival exactly.
    StallProfiler& profiler = db->env().telemetry().profiler();
    const SimClock& clock = db->node().clock();
    profiler.Charge(WaitClass::kAdmissionQueue, job->arrival, job->dispatch);
    profiler.Charge(WaitClass::kLockWait, job->dispatch, clock.now());
    // The rest of the job's life — body, commit/rollback — is one stall
    // scope: instrumented waits inside book their own classes, and the
    // unclaimed remainder (charged CPU work) lands on kCpuExec. Pinned so
    // the residual keeps the query key even though operator scopes swap
    // the ledger's current context underneath.
    ScopedStall stall(&profiler, &clock, WaitClass::kCpuExec);
    profiler.PinScopeAttribution();
    st = job->body ? job->body(job->session.get(), &ctx) : Status::Ok();
    if (st.ok()) {
      st = db->Commit(txn);
    } else {
      Status rollback = db->Rollback(txn);
      (void)rollback;  // the query's own error is the one to report
    }
  }
  job->result = st;
}

void WorkloadEngine::StepJob(Job* job) {
  NodeContext& node = job->db->node();
  SimTime before = node.clock().now();
  CostLedger& ledger = env_->telemetry().ledger();
  StallProfiler& profiler = env_->telemetry().profiler();
  // Restore exactly the attribution the fiber had current when it last
  // yielded; capture it back after the step. Other jobs' scopes never
  // leak in, even though all fibers share the one ledger slot. The stall
  // frame (the fiber's open scope stack) swaps in lockstep.
  AttributionContext host = ledger.Swap(job->saved_attr);
  StallProfiler::Frame* host_frame = profiler.SwapFrame(job->frame.get());
  if (job->stepped) {
    // While this fiber was parked, co-resident jobs advanced the node
    // clock past where it last yielded: time the query spent serialized
    // behind its neighbours, charged under the yield-point attribution.
    profiler.Charge(WaitClass::kLockWait, job->ready_time, before);
  }
  bool more;
  {
    // The resumed fiber runs a whole query slice — buffer pools, OCM,
    // transactions. None of that may see the engine lock held.
    MutexUnlock unlock(&mu_);
    more = job->fiber->Resume();
  }
  job->stepped = true;
  job->saved_attr = ledger.Swap(std::move(host));
  profiler.SwapFrame(host_frame);
  steps_->Add();
  double delta = node.clock().now() - before;
  job->active_seconds += delta;
  // Charge fair-share service as it accrues, not at completion: PickNext
  // then sees up-to-date virtual service, so weighted shares track even
  // when queries are long relative to the run.
  scheduler_.AddService(job->tenant, delta);
  job->ready_time = node.clock().now();
  if (!more) Complete(job);
}

void WorkloadEngine::Complete(Job* job) {
  uint64_t id = job->id;
  SimTime finish = job->db->node().clock().now();
  clock_ = std::max(clock_, finish);
  TenantState& ts = TenantFor(job->tenant);
  CostLedger& ledger = env_->telemetry().ledger();

  // Bill the job's *active* node time both globally and to the query —
  // the same seconds at the same rate, so the ledger's USD keeps summing
  // to the meter's even though wall spans of co-resident jobs overlap.
  double hourly = job->db->node().profile().hourly_usd;
  env_->cost_meter().AddEc2Hours(job->active_seconds / 3600.0, hourly);
  ledger.ChargeCompute(job->query_attr, job->active_seconds, hourly);

  double latency = finish - job->arrival;
  ts.latency->Record(latency);
  latency_all_->Record(latency);
  if (job->result.ok()) {
    ts.completed->Add();
  } else {
    ts.failed->Add();
  }
  if (ts.config.slo_seconds > 0) {
    (latency <= ts.config.slo_seconds ? ts.slo_met : ts.slo_missed)->Add();
  }
  double billed_usd = ledger.QueryTotal(job->query_attr.query_id)
                          .TotalUsd(ledger.prices());
  ts.spent_usd += billed_usd;
  if (options_.predictive_admission) {
    // Feed the predictor the job's actual bill and release its budget
    // reservation; the deferred queue re-prices on this new forecast
    // below (WakeDeferred).
    predictor_.Observe(job->tenant, job->tag, billed_usd);
    ts.inflight_predicted_usd =
        std::max(0.0, ts.inflight_predicted_usd - job->predicted_usd);
  }
  // Refresh the tenant's wait-class gauges (cumulative seconds, including
  // background shadow time its queries enqueued).
  StallProfiler::Entry stall =
      env_->telemetry().profiler().TenantTotal(job->tenant);
  for (int i = 0; i < kNumWaitClasses; ++i) {
    ts.stall[i]->Set(static_cast<double>(stall.ns[i]) * 1e-9);
  }
  admission_.OnComplete();
  --node_active_[job->node_index];
  env_->telemetry().tracer().CompleteSpan(
      job->db->node().trace_pid(), kTrackExec, "workload",
      job->tenant + "/" + job->tag, job->dispatch, finish);

  Completion c;
  c.job_id = id;
  c.tenant = job->tenant;
  c.tag = job->tag;
  c.status = job->result;
  c.arrival = job->arrival;
  c.dispatch = job->dispatch;
  c.finish = finish;
  c.active_seconds = job->active_seconds;
  running_.erase(id);  // job gone before hooks, so hooks may Submit
  if (event_hook_ || completion_hook_) {
    MutexUnlock unlock(&mu_);
    if (event_hook_) event_hook_(finish);
    if (completion_hook_) completion_hook_(c);
  }
  if (!deferred_.empty()) WakeDeferred(finish);
  TryDispatch(finish);
}

void WorkloadEngine::WakeDeferred(SimTime now) {
  // Every parked job gets one fresh DecidePredictive against the
  // post-completion history: spend and in-flight predictions moved, so
  // the earlier deferral verdict is stale. Jobs that still don't fit go
  // back to the end of the queue (FIFO within a wake round).
  std::deque<std::unique_ptr<Job>> parked;
  parked.swap(deferred_);
  while (!parked.empty()) {
    std::unique_ptr<Job> job = std::move(parked.front());
    parked.pop_front();
    TenantState& ts = TenantFor(job->tenant);
    bool can_dispatch = admission_.HasRunSlot() && FindFreeNode() >= 0;
    job->predicted_usd = predictor_.Predict(job->tenant, job->tag);
    AdmissionController::Decision decision = admission_.DecidePredictive(
        job->tenant, now, ts.spent_usd, job->predicted_usd,
        ts.inflight_predicted_usd, ts.config.cost_budget_usd, can_dispatch);
    switch (decision) {
      case AdmissionController::Decision::kAdmit:
        ts.inflight_predicted_usd += job->predicted_usd;
        admission_.OnDispatch();
        Dispatch(std::move(job), now);
        break;
      case AdmissionController::Decision::kQueue: {
        ts.inflight_predicted_usd += job->predicted_usd;
        admission_.OnQueue();
        scheduler_.Enqueue(job->tenant, job->id, now);
        uint64_t id = job->id;
        queued_jobs_[id] = std::move(job);
        break;
      }
      case AdmissionController::Decision::kDefer:
        deferred_.push_back(std::move(job));
        break;
      default:
        ts.costopt_deferred_shed->Add();
        Shed(std::move(job), decision);
        break;
    }
  }
  queue_depth_->Set(static_cast<double>(admission_.queued()));
}

void WorkloadEngine::TryDispatch(SimTime now) {
  while (admission_.HasRunSlot() && FindFreeNode() >= 0) {
    std::optional<FairScheduler::Pick> pick = scheduler_.PickNext(now);
    if (!pick.has_value()) break;
    auto it = queued_jobs_.find(pick->job_id);
    std::unique_ptr<Job> job = std::move(it->second);
    queued_jobs_.erase(it);
    admission_.OnDequeue();
    admission_.OnDispatch();
    Dispatch(std::move(job), now);
  }
  queue_depth_->Set(static_cast<double>(admission_.queued()));
}

WorkloadEngine::TenantCounts WorkloadEngine::Counts(
    const std::string& tenant) const {
  TenantCounts out;
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return out;
  const TenantState& ts = it->second;
  out.submitted = ts.submitted->value();
  out.completed = ts.completed->value();
  out.failed = ts.failed->value();
  out.shed_queue_full = ts.shed_queue_full->value();
  out.shed_rate_limited = ts.shed_rate_limited->value();
  out.shed_budget = ts.shed_budget->value();
  out.slo_met = ts.slo_met->value();
  out.slo_missed = ts.slo_missed->value();
  out.spent_usd = ts.spent_usd;
  return out;
}

const Histogram& WorkloadEngine::LatencyHistogram(
    const std::string& tenant) const {
  // Registry instruments outlive the engine; only the map lookup needs
  // the lock.
  MutexLock lock(&mu_);
  return *tenants_.at(tenant).latency;
}

const Histogram& WorkloadEngine::QueueWaitHistogram(
    const std::string& tenant) const {
  MutexLock lock(&mu_);
  return *tenants_.at(tenant).queue_wait;
}

uint64_t WorkloadEngine::steps() const { return steps_->value(); }

}  // namespace cloudiq
