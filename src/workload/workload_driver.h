#ifndef CLOUDIQ_WORKLOAD_WORKLOAD_DRIVER_H_
#define CLOUDIQ_WORKLOAD_WORKLOAD_DRIVER_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "workload/workload_engine.h"

namespace cloudiq {

// Replays multi-tenant TPC-H query mixes through a WorkloadEngine.
//
// Two arrival disciplines, selectable per tenant:
//  * open loop  (arrival_rate > 0): a seeded Poisson process on the sim
//    clock — interarrival gaps are Exponential(1/rate) — submits the
//    tenant's whole stream up front. Load is independent of completions,
//    so saturation shows up as queueing and shedding.
//  * closed loop (arrival_rate == 0): the tenant keeps `inflight` queries
//    outstanding; each completion immediately submits the next. Load
//    self-limits, so saturation shows up as per-query latency.
//
// All randomness (arrival gaps, per-tenant mix shuffles) flows through
// one seeded Rng, so a (seed, tenant set) pair replays identically.
class WorkloadDriver {
 public:
  struct TenantLoad {
    WorkloadEngine::TenantConfig config;
    std::vector<int> mix = {1, 6};  // TPC-H query numbers, cycled
    bool shuffle_mix = true;        // seeded shuffle of each cycle
    int total_queries = 16;
    double arrival_rate = 0;  // queries per sim second; 0 = closed loop
    int inflight = 1;         // closed-loop window
  };

  // Per-tenant outcome summary (engine counters, re-read after the run).
  struct TenantOutcome {
    std::string tenant;
    WorkloadEngine::TenantCounts counts;
    double latency_p50 = 0;
    double latency_p95 = 0;
    double queue_wait_p95 = 0;
    // Completions this tenant had when the *first* tenant drained its
    // stream. Final counts equalize in closed loop (everyone eventually
    // finishes); this snapshot is where fair-share ratios are visible.
    uint64_t completed_at_first_drain = 0;
    double drain_seconds = 0;  // start until this tenant's last event
  };
  struct Summary {
    std::vector<TenantOutcome> tenants;
    double makespan_seconds = 0;  // first arrival to last completion
    double throughput_qps = 0;    // completed / makespan
    // Jain's fairness index over per-tenant completed counts: 1 = exactly
    // even, 1/n = one tenant got everything.
    double fairness_index = 0;

    uint64_t TotalCompleted() const;
    uint64_t TotalShed() const;
  };

  WorkloadDriver(WorkloadEngine* engine, uint64_t seed)
      : engine_(engine), rng_(seed) {}

  // Submits every tenant's stream and runs the engine to idle.
  Result<Summary> Run(const std::vector<TenantLoad>& loads);

 private:
  // The engine body for one TPC-H query.
  static WorkloadEngine::QueryBody TpchBody(int query_number);
  int NextQuery(size_t tenant_index);

  struct TenantProgress {
    TenantLoad load;
    std::vector<int> order;  // current shuffled cycle
    size_t next_in_cycle = 0;
    int submitted = 0;
  };

  WorkloadEngine* engine_;
  Rng rng_;
  std::vector<TenantProgress> progress_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_WORKLOAD_WORKLOAD_DRIVER_H_
