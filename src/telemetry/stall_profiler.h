#ifndef CLOUDIQ_TELEMETRY_STALL_PROFILER_H_
#define CLOUDIQ_TELEMETRY_STALL_PROFILER_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sim/sim_clock.h"
#include "telemetry/attribution.h"
#include "telemetry/tracer.h"

namespace cloudiq {

// Where a simulated microsecond went. Every blocking point in the system
// charges its elapsed sim-time to exactly one of these classes, keyed by
// the current AttributionContext, so a per-query breakdown answers "what
// would I have to split / cache / push down to make this query faster".
enum class WaitClass : int {
  kCpuExec = 0,       // executing (scan/join/agg CPU, decode) — the residual
  kLockWait,          // serialized behind another query on the node clock
  kAdmissionQueue,    // queued in the AdmissionController before dispatch
  kBufferFill,        // waiting for a buffer-pool miss fill or dirty flush
  kOcmFetch,          // SSD cache read (hit path) + cache-fill writes
  kOcmUpload,         // write-back SSD writes + background upload drains
  kNetworkTransfer,   // object-store transfer time incl. NIC serialization
  kThrottleBackoff,   // per-prefix pacer stalls + NOT_FOUND retry backoff
  kNdpSelect,         // server-side scan time of pushed-down Selects
};
inline constexpr int kNumWaitClasses = 9;

// Stable lowercase identifier ("cpu_exec", "lock_wait", ...) used in the
// report JSON, gauges and EXPLAIN output.
const char* WaitClassName(WaitClass cls);

// Wait-state accounting ledger: attributes every simulated nanosecond of
// a query's lifetime to the wait class (and attribution key) that caused
// it. The cousin of CostLedger — same key space, same "current context"
// discipline — but it books *time windows* instead of dollars, and its
// conservation invariant is exact:
//
//     sum over all entries of all classes
//         == window_nanos() + background_nanos()        (int64, exact)
//
// and for any scope, the per-class charges inside it plus the kCpuExec
// (or scope-class) residual equal the scope's elapsed time exactly.
//
// Exactness comes from integer-nanosecond accounting: every charge is a
// [start, end) window in absolute sim-seconds, converted once per
// endpoint via llround(t * 1e9). llround is monotonic, so disjoint inner
// windows of a scope can never sum past the scope's own elapsed
// nanoseconds, residuals are non-negative by construction, and integer
// addition makes the invariant equality exact rather than within an
// epsilon (the ledger==meter analogue for time).
//
// Structure mirrors how the simulator spends time:
//   * Scopes bracket foreground regions (a query, an operator, a buffer
//     miss fill). Inner charges register against the enclosing scope;
//     when the scope closes, the unclaimed remainder ("residual") is
//     charged to the scope's own class — kCpuExec for a query scope, so
//     un-instrumented clock advances conservatively count as execution.
//   * Parallel sections bracket IoScheduler::RunParallel: the lanes'
//     device windows overlap in wall sim-time, so their raw charges are
//     accumulated per (key, class) and scaled to the section's actual
//     elapsed time with largest-remainder rounding (exact, deterministic)
//     before registering with the parent.
//   * Background sections bracket deferred work (OCM upload pump, cache
//     fills) that consumes *no* foreground wall time: charges register
//     against the enqueuing query's entry and count toward
//     background_nanos() instead of any scope's inner time.
//
// Concurrency: fibers interleave on real threads under the workload
// engine's strict handoff, so each job owns a Frame (its scope stack)
// that the engine swaps around every fiber resume, exactly like the
// ledger's saved attribution. A built-in default frame serves
// single-threaded harness code. All mutation happens under the leaf
// mu_; the attribution key is read from the CostLedger before locking
// (profiler → ledger is in layering order; the ledger never calls back).
class StallProfiler {
 public:
  using Key = CostLedger::Key;

  // Nanoseconds charged to one (query, operator, node), by wait class.
  struct Entry {
    std::array<int64_t, kNumWaitClasses> ns{};
    // Portion of the above booked inside background sections (deferred
    // OCM work the query enqueued but did not wait for). Subtracting it
    // from TotalNanos() leaves exactly the key's foreground lifetime, so
    // per-query conservation is checkable: for a workload-engine job,
    // TotalNanos() - background == finish - arrival in nanoseconds.
    int64_t background = 0;

    int64_t TotalNanos() const {
      int64_t total = 0;
      for (int64_t v : ns) total += v;
      return total;
    }
    void Fold(const Entry& other) {
      for (int i = 0; i < kNumWaitClasses; ++i) ns[i] += other.ns[i];
      background += other.background;
    }
  };

  // One fiber's (or the harness's) stack of open sections. Owned by the
  // workload engine's jobs; opaque to everyone else.
  struct Frame {
    struct Node {
      enum Kind { kScope, kParallel, kBackground };
      Kind kind = kScope;
      WaitClass cls = WaitClass::kCpuExec;  // kScope: residual class
      bool pinned = false;                  // kScope: residual key pinned?
      Key key;                              // kScope: pinned residual key
      int64_t start_ns = 0;                 // kScope / kParallel
      int64_t inner_ns = 0;                 // kScope: charges inside
      // kParallel: raw overlapping lane charges, scaled at section end.
      std::map<std::pair<Key, int>, int64_t> lanes;
    };
    std::vector<Node> stack;
  };

  StallProfiler(CostLedger* ledger, Tracer* tracer)
      : ledger_(ledger), tracer_(tracer) {}
  StallProfiler(const StallProfiler&) = delete;
  StallProfiler& operator=(const StallProfiler&) = delete;

  static int64_t ToNanos(double seconds) {
    return std::llround(seconds * 1e9);
  }

  // --- charges -----------------------------------------------------------
  // Books the window [start, end) of absolute sim-seconds to `cls` under
  // the current attribution. Registers with the innermost open section of
  // the current frame (scope inner time / parallel lane / background).
  // Emits a Chrome-trace wait span when the tracer is enabled.
  void Charge(WaitClass cls, double start_seconds, double end_seconds)
      EXCLUDES(mu_);

  // --- scopes ------------------------------------------------------------
  // Brackets a foreground region whose unclaimed remainder is charged to
  // `cls`. Prefer ScopedStall below.
  void BeginScope(WaitClass cls, double start_seconds) EXCLUDES(mu_);
  // Pins the residual of the innermost open scope to the current
  // attribution, so it survives inner ScopedAttribution restores (the
  // workload engine pins the query scope it opens around a job body).
  void PinScopeAttribution() EXCLUDES(mu_);
  void EndScope(double end_seconds) EXCLUDES(mu_);

  // Brackets IoScheduler::RunParallel, where lane completion windows
  // overlap in wall sim-time.
  void BeginParallel(double start_seconds) EXCLUDES(mu_);
  void EndParallel(double end_seconds) EXCLUDES(mu_);

  // Brackets deferred work that advances no foreground clock (OCM pump,
  // cache fills). Charges inside go to the attributed entry and to
  // background_nanos().
  void BeginBackground() EXCLUDES(mu_);
  void EndBackground() EXCLUDES(mu_);

  // --- frames ------------------------------------------------------------
  std::unique_ptr<Frame> NewFrame() { return std::make_unique<Frame>(); }
  // Installs `next` as the current frame, returning the previous one
  // (nullptr selects the built-in default frame). The workload engine
  // swaps frames around every fiber resume.
  Frame* SwapFrame(Frame* next) EXCLUDES(mu_);

  // --- views -------------------------------------------------------------
  std::map<Key, Entry> entries() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return entries_;
  }
  // Sum of every entry of `query_id` across operators and nodes.
  Entry QueryTotal(uint64_t query_id) const EXCLUDES(mu_);
  Entry GrandTotal() const EXCLUDES(mu_);
  // Per-class totals for one tenant's queries (tenant mapping from the
  // ledger; "" aggregates unmapped queries and unattributed work).
  Entry TenantTotal(const std::string& tenant) const EXCLUDES(mu_);
  // Foreground nanoseconds accounted at top level (outermost scope
  // elapses + direct charges outside any scope).
  int64_t window_nanos() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return window_ns_;
  }
  // Shadow nanoseconds booked inside background sections.
  int64_t background_nanos() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return background_ns_;
  }

  void Reset() EXCLUDES(mu_);

 private:
  Key CurrentKey() const EXCLUDES(mu_);
  Frame* FrameLocked() REQUIRES(mu_);
  // Books `n` nanoseconds of (key, cls) against the innermost section of
  // the current frame; `wall` charges also accrue to an enclosing scope's
  // inner time (false for scope residuals, whose elapsed propagates
  // wholesale).
  void RegisterLocked(const Key& key, WaitClass cls, int64_t n, bool wall)
      REQUIRES(mu_);

  CostLedger* const ledger_;
  Tracer* const tracer_;

  mutable Mutex mu_{lockrank::kStallProfiler};
  Frame default_frame_ GUARDED_BY(mu_);
  Frame* current_frame_ GUARDED_BY(mu_) = nullptr;
  std::map<Key, Entry> entries_ GUARDED_BY(mu_);
  int64_t window_ns_ GUARDED_BY(mu_) = 0;
  int64_t background_ns_ GUARDED_BY(mu_) = 0;
};

// RAII foreground scope: the unclaimed remainder of [construction, now)
// is charged to `cls` when the scope closes.
class ScopedStall {
 public:
  ScopedStall(StallProfiler* profiler, const SimClock* clock, WaitClass cls)
      : profiler_(profiler), clock_(clock) {
    profiler_->BeginScope(cls, clock_->now());
  }
  ~ScopedStall() { profiler_->EndScope(clock_->now()); }
  ScopedStall(const ScopedStall&) = delete;
  ScopedStall& operator=(const ScopedStall&) = delete;

 private:
  StallProfiler* profiler_;
  const SimClock* clock_;
};

// RAII parallel section: lane charges inside (overlapping device windows
// or the executor's per-morsel kCpuExec charges) are accumulated per
// (key, class) and scaled to the section's elapsed sim-time when it
// closes. When the lane windows are disjoint and telescope to the
// section's elapsed time — the morsel executor's charge loop — the scale
// is exactly 1 and the raw charges register unchanged, so lane totals
// still sum to wall sim-time even when the section nests inside a pinned
// per-job scope (tools/stall_top.py --check verifies this per entry).
class ScopedParallelStall {
 public:
  ScopedParallelStall(StallProfiler* profiler, const SimClock* clock)
      : profiler_(profiler), clock_(clock) {
    profiler_->BeginParallel(clock_->now());
  }
  ~ScopedParallelStall() { profiler_->EndParallel(clock_->now()); }
  ScopedParallelStall(const ScopedParallelStall&) = delete;
  ScopedParallelStall& operator=(const ScopedParallelStall&) = delete;

 private:
  StallProfiler* profiler_;
  const SimClock* clock_;
};

// RAII background section (OCM pump, cache fill).
class ScopedBackgroundStall {
 public:
  explicit ScopedBackgroundStall(StallProfiler* profiler)
      : profiler_(profiler) {
    profiler_->BeginBackground();
  }
  ~ScopedBackgroundStall() { profiler_->EndBackground(); }
  ScopedBackgroundStall(const ScopedBackgroundStall&) = delete;
  ScopedBackgroundStall& operator=(const ScopedBackgroundStall&) = delete;

 private:
  StallProfiler* profiler_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_TELEMETRY_STALL_PROFILER_H_
