#ifndef CLOUDIQ_TELEMETRY_TRACER_H_
#define CLOUDIQ_TELEMETRY_TRACER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "sim/sim_clock.h"
#include "telemetry/stats.h"

namespace cloudiq {

// Track ids (Chrome trace "tid") used by the instrumented layers. Every
// compute node is one trace process (pid = NodeContext::trace_pid());
// the shared object store is pid kClusterPid.
enum TraceTrack : uint32_t {
  kTrackObjectStore = 1,  // cluster pid only
  kTrackExec = 1,
  kTrackTxn = 2,
  kTrackBuffer = 3,
  kTrackOcm = 4,
  kTrackStoreIo = 5,
  kTrackKeygen = 6,
  kTrackStall = 7,
};

constexpr uint32_t kClusterPid = 0;

// One Chrome trace_event entry, stamped with *simulated* seconds.
struct TraceEvent {
  const char* category;  // static string
  std::string name;
  char phase;   // 'X' complete span, 'i' instant
  double ts;    // sim seconds
  double dur;   // sim seconds ('X' only)
  uint32_t pid;
  uint32_t tid;
};

// Records spans and instant events on the simulated timeline. Disabled
// by default: every recording call first checks a single bool, so the
// tracer costs one predictable branch per call site when off. Call sites
// that would build a dynamic name must guard with enabled() themselves
// so the allocation is also skipped.
//
// Locking: mu_ guards the event buffer and name maps. It is a leaf lock —
// recording calls arrive from inside every other manager's critical
// sections. enabled_ is deliberately *not* guarded: it is a set-up-time
// switch read on every hot path; the handoff protocol orders the one
// writer against the readers.
class Tracer {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // A span known to cover [start, end] on the given track. `end < start`
  // is recorded as a zero-length span at `start`.
  void CompleteSpan(uint32_t pid, uint32_t tid, const char* category,
                    std::string name, SimTime start, SimTime end)
      EXCLUDES(mu_) {
    if (!enabled_) return;
    MutexLock lock(&mu_);
    events_.push_back(TraceEvent{category, std::move(name), 'X', start,
                                 end > start ? end - start : 0, pid, tid});
  }

  // A point event (throttle, eviction, retry, ...).
  void Instant(uint32_t pid, uint32_t tid, const char* category,
               std::string name, SimTime t) EXCLUDES(mu_) {
    if (!enabled_) return;
    MutexLock lock(&mu_);
    events_.push_back(
        TraceEvent{category, std::move(name), 'i', t, 0, pid, tid});
  }

  // Track naming, surfaced as Chrome trace metadata. Cheap and recorded
  // regardless of enabled() so a tracer switched on mid-run still labels
  // its tracks.
  void SetProcessName(uint32_t pid, std::string name) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    process_names_[pid] = std::move(name);
  }
  void SetTrackName(uint32_t pid, uint32_t tid, std::string name)
      EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    track_names_[{pid, tid}] = std::move(name);
  }

  // Export-time snapshots, by value (references would escape the lock).
  std::vector<TraceEvent> events() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return events_;
  }
  std::map<uint32_t, std::string> process_names() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return process_names_;
  }
  std::map<std::pair<uint32_t, uint32_t>, std::string> track_names() const
      EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return track_names_;
  }

  void Clear() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    events_.clear();
  }

 private:
  bool enabled_ = false;
  mutable Mutex mu_{lockrank::kTracer};
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
  std::map<uint32_t, std::string> process_names_ GUARDED_BY(mu_);
  std::map<std::pair<uint32_t, uint32_t>, std::string> track_names_
      GUARDED_BY(mu_);
};

// RAII span: stamps `start` from the clock at construction and records
// the span at destruction, so early returns inside the scope still close
// it. Does nothing when the tracer is disabled.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const SimClock* clock, uint32_t pid,
             uint32_t tid, const char* category, std::string name)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        clock_(clock),
        pid_(pid),
        tid_(tid),
        category_(category) {
    if (tracer_ != nullptr) {
      name_ = std::move(name);
      start_ = clock->now();
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->CompleteSpan(pid_, tid_, category_, std::move(name_), start_,
                            clock_->now());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const SimClock* clock_;
  uint32_t pid_;
  uint32_t tid_;
  const char* category_;
  std::string name_;
  SimTime start_ = 0;
};

// Serializes traces and stats for humans and for chrome://tracing (or
// https://ui.perfetto.dev — both read the trace_event JSON format).
class TraceExporter {
 public:
  // {"traceEvents": [...]} with sim seconds scaled to microseconds, plus
  // process/track name metadata events.
  static std::string ToChromeTraceJson(const Tracer& tracer);

  static Status WriteChromeTrace(const Tracer& tracer,
                                 const std::string& path);

  // Plain-text percentile report over every registered histogram, plus
  // the registered counters and gauges.
  static std::string PercentileReport(const StatsRegistry& registry);
};

}  // namespace cloudiq

#endif  // CLOUDIQ_TELEMETRY_TRACER_H_
