#include "telemetry/tracer.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace cloudiq {

namespace {

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendMetadata(const char* kind, uint32_t pid, uint32_t tid,
                    const std::string& value, bool* first,
                    std::string* out) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%s{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,\"name\":\"%s\","
                "\"args\":{\"name\":\"",
                *first ? "" : ",\n", pid, tid, kind);
  *first = false;
  *out += buf;
  AppendJsonEscaped(value, out);
  *out += "\"}}";
}

std::string FormatSeconds(double s) {
  char buf[32];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  }
  return buf;
}

}  // namespace

std::string TraceExporter::ToChromeTraceJson(const Tracer& tracer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [pid, name] : tracer.process_names()) {
    AppendMetadata("process_name", pid, 0, name, &first, &out);
  }
  for (const auto& [key, name] : tracer.track_names()) {
    AppendMetadata("thread_name", key.first, key.second, name, &first,
                   &out);
  }
  for (const TraceEvent& e : tracer.events()) {
    char buf[160];
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f,"
                    "\"dur\":%.3f,\"cat\":\"%s\",\"name\":\"",
                    first ? "" : ",\n", e.pid, e.tid, e.ts * 1e6,
                    e.dur * 1e6, e.category);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,\"tid\":%u,"
                    "\"ts\":%.3f,\"cat\":\"%s\",\"name\":\"",
                    first ? "" : ",\n", e.pid, e.tid, e.ts * 1e6,
                    e.category);
    }
    first = false;
    out += buf;
    AppendJsonEscaped(e.name, &out);
    out += "\"}";
  }
  out += "\n]}\n";
  return out;
}

Status TraceExporter::WriteChromeTrace(const Tracer& tracer,
                                       const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) {
    return Status::IoError("cannot open trace file " + path);
  }
  file << ToChromeTraceJson(tracer);
  file.close();
  if (!file) return Status::IoError("short write to " + path);
  return Status::Ok();
}

std::string TraceExporter::PercentileReport(const StatsRegistry& registry) {
  std::string out = "=== latency percentiles (simulated time) ===\n";
  for (const auto& [name, h] : registry.histograms()) {
    if (h.count() == 0) continue;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-24s n=%-8" PRIu64
                  " p50=%-9s p95=%-9s p99=%-9s max=%-9s mean=%s\n",
                  name.c_str(), h.count(), FormatSeconds(h.p50()).c_str(),
                  FormatSeconds(h.p95()).c_str(),
                  FormatSeconds(h.p99()).c_str(),
                  FormatSeconds(h.max()).c_str(),
                  FormatSeconds(h.mean()).c_str());
    out += buf;
  }
  bool have_scalars = false;
  for (const auto& [name, c] : registry.counters()) {
    if (c.value() == 0) continue;
    if (!have_scalars) {
      out += "=== registered counters & gauges ===\n";
      have_scalars = true;
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-24s %" PRIu64 "\n", name.c_str(),
                  c.value());
    out += buf;
  }
  for (const auto& [name, g] : registry.gauges()) {
    if (g.value() == 0) continue;
    if (!have_scalars) {
      out += "=== registered counters & gauges ===\n";
      have_scalars = true;
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-24s %.6g\n", name.c_str(),
                  g.value());
    out += buf;
  }
  return out;
}

}  // namespace cloudiq
