#ifndef CLOUDIQ_TELEMETRY_TELEMETRY_H_
#define CLOUDIQ_TELEMETRY_TELEMETRY_H_

#include "telemetry/attribution.h"
#include "telemetry/stall_profiler.h"
#include "telemetry/stats.h"
#include "telemetry/tracer.h"

namespace cloudiq {

// One simulation's observability state: the name-keyed stats registry
// (always on — histogram/counter updates are a few arithmetic ops), the
// event tracer (off by default; see Tracer), and the per-query cost
// ledger (always on; see CostLedger), and the wait-state stall profiler
// (always on; see StallProfiler — its per-charge cost is an integer add
// under a leaf lock). Owned by SimEnvironment and shared by every node
// of the cluster, so multi-node runs land on a single timeline with
// per-node tracks, one cluster-wide ledger, and one stall ledger.
class Telemetry {
 public:
  StatsRegistry& stats() { return stats_; }
  const StatsRegistry& stats() const { return stats_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  CostLedger& ledger() { return ledger_; }
  const CostLedger& ledger() const { return ledger_; }
  StallProfiler& profiler() { return profiler_; }
  const StallProfiler& profiler() const { return profiler_; }

 private:
  StatsRegistry stats_;
  Tracer tracer_;
  CostLedger ledger_;
  StallProfiler profiler_{&ledger_, &tracer_};
};

}  // namespace cloudiq

#endif  // CLOUDIQ_TELEMETRY_TELEMETRY_H_
