#ifndef CLOUDIQ_TELEMETRY_TELEMETRY_H_
#define CLOUDIQ_TELEMETRY_TELEMETRY_H_

#include "telemetry/stats.h"
#include "telemetry/tracer.h"

namespace cloudiq {

// One simulation's observability state: the name-keyed stats registry
// (always on — histogram/counter updates are a few arithmetic ops) and
// the event tracer (off by default; see Tracer). Owned by SimEnvironment
// and shared by every node of the cluster, so multi-node runs land on a
// single timeline with per-node tracks.
class Telemetry {
 public:
  StatsRegistry& stats() { return stats_; }
  const StatsRegistry& stats() const { return stats_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

 private:
  StatsRegistry stats_;
  Tracer tracer_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_TELEMETRY_TELEMETRY_H_
