#include "telemetry/report.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>

namespace cloudiq {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("0");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

void AppendCount(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendField(std::string* out, const char* name, double v, bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(name);
  out->append("\":");
  AppendNumber(out, v);
}

void AppendField(std::string* out, const char* name, uint64_t v,
                 bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(name);
  out->append("\":");
  AppendCount(out, v);
}

// One ledger entry as a JSON object body (no braces), so callers can
// prepend identity fields.
void AppendEntryFields(std::string* out, const CostLedger::Entry& e,
                       const LedgerPrices& prices, bool* first) {
  AppendField(out, "gets", e.gets, first);
  AppendField(out, "puts", e.puts, first);
  AppendField(out, "deletes", e.deletes, first);
  AppendField(out, "ranged_gets", e.ranged_gets, first);
  AppendField(out, "heads", e.heads, first);
  AppendField(out, "get_bytes", e.get_bytes, first);
  AppendField(out, "put_bytes", e.put_bytes, first);
  AppendField(out, "selects", e.selects, first);
  AppendField(out, "select_scanned_bytes", e.select_scanned_bytes, first);
  AppendField(out, "select_returned_bytes", e.select_returned_bytes, first);
  AppendField(out, "throttle_events", e.throttle_events, first);
  AppendField(out, "throttle_stall_seconds", e.throttle_stall_seconds,
              first);
  AppendField(out, "not_found_retries", e.not_found_retries, first);
  AppendField(out, "transient_retries", e.transient_retries, first);
  AppendField(out, "ocm_hits", e.ocm_hits, first);
  AppendField(out, "ocm_misses", e.ocm_misses, first);
  AppendField(out, "ocm_hit_rate", e.OcmHitRate(), first);
  AppendField(out, "ocm_fills", e.ocm_fills, first);
  AppendField(out, "ocm_uploads", e.ocm_uploads, first);
  AppendField(out, "buffer_hits", e.buffer_hits, first);
  AppendField(out, "buffer_misses", e.buffer_misses, first);
  AppendField(out, "buffer_flush_pages", e.buffer_flush_pages, first);
  AppendField(out, "sim_seconds", e.sim_seconds, first);
  AppendField(out, "request_usd", e.RequestUsd(prices), first);
  AppendField(out, "ec2_usd", e.ec2_usd, first);
  AppendField(out, "total_usd", e.TotalUsd(prices), first);
}

// One stall entry's per-class nanosecond tallies plus the exact total.
// Integer fields keep the conservation invariant checkable on the JSON
// itself (sum of classes == total_nanos, sums across entries == window +
// background).
void AppendStallFields(std::string* out, const StallProfiler::Entry& e,
                       bool* first) {
  for (int i = 0; i < kNumWaitClasses; ++i) {
    AppendField(out, WaitClassName(static_cast<WaitClass>(i)),
                static_cast<uint64_t>(e.ns[i]), first);
  }
  AppendField(out, "total_nanos", static_cast<uint64_t>(e.TotalNanos()),
              first);
  AppendField(out, "background_nanos", static_cast<uint64_t>(e.background),
              first);
}

}  // namespace

std::string BuildRunReportJson(const RunReportInfo& info,
                               const StatsRegistry& stats,
                               const CostLedger& ledger,
                               const StallProfiler& profiler) {
  const LedgerPrices& prices = ledger.prices();
  std::string out;
  out.reserve(1 << 16);
  out.append("{\n\"schema_version\":1,\n\"bench\":");
  AppendEscaped(&out, info.bench);
  out.append(",\n\"scale_factor\":");
  AppendNumber(&out, info.scale_factor);
  out.append(",\n\"sim_seconds\":");
  AppendNumber(&out, info.sim_seconds);

  // Global meter view plus the ledger's grand total: the two price the
  // same request stream, so "requests_usd" and "ledger".request_usd must
  // agree within rounding (check.sh's smoke step asserts this).
  CostLedger::Entry grand = ledger.GrandTotal();
  out.append(",\n\"cost\":{\"meter\":{");
  {
    bool first = true;
    AppendField(&out, "s3_puts", info.s3_puts, &first);
    AppendField(&out, "s3_gets", info.s3_gets, &first);
    AppendField(&out, "s3_deletes", info.s3_deletes, &first);
    AppendField(&out, "s3_ranged_gets", info.s3_ranged_gets, &first);
    AppendField(&out, "s3_selects", info.s3_selects, &first);
    AppendField(&out, "select_scanned_bytes", info.select_scanned_bytes,
                &first);
    AppendField(&out, "select_returned_bytes", info.select_returned_bytes,
                &first);
    AppendField(&out, "request_usd", info.request_usd, &first);
    AppendField(&out, "ec2_usd", info.ec2_usd, &first);
    AppendField(&out, "storage_usd_month", info.storage_usd_month, &first);
  }
  out.append("},\"ledger\":{");
  {
    bool first = true;
    AppendEntryFields(&out, grand, prices, &first);
  }
  out.append("}}");

  // Per-query rollups, with the per-(operator, node) entries nested so a
  // consumer can reconstruct EXPLAIN ANALYZE or per-node splits.
  out.append(",\n\"queries\":[");
  bool first_query = true;
  for (const auto& [query_id, tag] : ledger.Queries()) {
    if (!first_query) out.push_back(',');
    first_query = false;
    CostLedger::Entry total = ledger.QueryTotal(query_id);
    out.append("\n{\"query_id\":");
    AppendCount(&out, query_id);
    out.append(",\"tag\":");
    AppendEscaped(&out, total.tag.empty() ? tag : total.tag);
    bool first = false;  // false: AppendField prepends the comma
    AppendEntryFields(&out, total, prices, &first);
    out.append(",\"entries\":[");
    bool first_entry = true;
    for (const auto& [key, entry] : ledger.entries()) {
      if (key.query_id != query_id) continue;
      if (!first_entry) out.push_back(',');
      first_entry = false;
      out.append("{\"operator_id\":");
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%d", key.operator_id);
      out.append(buf);
      out.append(",\"node_id\":");
      AppendCount(&out, key.node_id);
      out.append(",\"tag\":");
      AppendEscaped(&out, entry.tag);
      bool f = false;
      AppendEntryFields(&out, entry, prices, &f);
      out.push_back('}');
    }
    out.append("]}");
  }
  out.append("]");

  // Per-node rollup across all queries.
  std::map<uint32_t, CostLedger::Entry> by_node;
  for (const auto& [key, entry] : ledger.entries()) {
    by_node[key.node_id].Fold(entry);
  }
  out.append(",\n\"nodes\":[");
  bool first_node = true;
  for (const auto& [node_id, entry] : by_node) {
    if (!first_node) out.push_back(',');
    first_node = false;
    out.append("\n{\"node_id\":");
    AppendCount(&out, node_id);
    bool first = false;
    AppendEntryFields(&out, entry, prices, &first);
    out.push_back('}');
  }
  out.append("]");

  // Per-tenant workload rollup: admission/SLO counters and latency
  // quantiles from the workload.<tenant>.* registry instruments, spend
  // from the ledger's tenant dimension. Empty when no workload engine ran.
  const auto& counters = stats.counters();
  const auto& histograms = stats.histograms();
  auto tenant_count = [&](const std::string& tenant, const char* name) {
    auto it = counters.find("workload." + tenant + "." + name);
    return it == counters.end() ? uint64_t{0} : it->second.value();
  };
  auto tenant_hist = [&](const std::string& tenant,
                         const char* name) -> const Histogram* {
    auto it = histograms.find("workload." + tenant + "." + name);
    return it == histograms.end() ? nullptr : &it->second;
  };
  std::map<std::string, bool> tenant_names;  // name -> has ledger entry
  for (const std::string& t : ledger.Tenants()) tenant_names[t] = true;
  const std::string kPrefix = "workload.";
  const std::string kSuffix = ".submitted";
  for (const auto& [name, c] : counters) {
    if (name.size() <= kPrefix.size() + kSuffix.size()) continue;
    if (name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    if (name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    tenant_names.emplace(
        name.substr(kPrefix.size(),
                    name.size() - kPrefix.size() - kSuffix.size()),
        false);
  }
  out.append(",\n\"tenants\":[");
  bool first_tenant = true;
  for (const auto& [tenant, has_ledger] : tenant_names) {
    if (!first_tenant) out.push_back(',');
    first_tenant = false;
    out.append("\n{\"tenant\":");
    AppendEscaped(&out, tenant);
    bool first = false;
    AppendField(&out, "submitted", tenant_count(tenant, "submitted"),
                &first);
    AppendField(&out, "completed", tenant_count(tenant, "completed"),
                &first);
    AppendField(&out, "failed", tenant_count(tenant, "failed"), &first);
    const uint64_t shed = tenant_count(tenant, "shed_queue_full") +
                          tenant_count(tenant, "shed_rate_limited") +
                          tenant_count(tenant, "shed_budget");
    AppendField(&out, "shed", shed, &first);
    AppendField(&out, "shed_queue_full",
                tenant_count(tenant, "shed_queue_full"), &first);
    AppendField(&out, "shed_rate_limited",
                tenant_count(tenant, "shed_rate_limited"), &first);
    AppendField(&out, "shed_budget", tenant_count(tenant, "shed_budget"),
                &first);
    AppendField(&out, "slo_met", tenant_count(tenant, "slo_met"), &first);
    AppendField(&out, "slo_missed", tenant_count(tenant, "slo_missed"),
                &first);
    const Histogram* lat = tenant_hist(tenant, "latency");
    AppendField(&out, "latency_p50", lat ? lat->p50() : 0, &first);
    AppendField(&out, "latency_p95", lat ? lat->p95() : 0, &first);
    const Histogram* wait = tenant_hist(tenant, "queue_wait");
    AppendField(&out, "queue_wait_p50", wait ? wait->p50() : 0, &first);
    AppendField(&out, "queue_wait_p95", wait ? wait->p95() : 0, &first);
    CostLedger::Entry spend =
        has_ledger ? ledger.TenantTotal(tenant) : CostLedger::Entry{};
    AppendField(&out, "request_usd", spend.RequestUsd(prices), &first);
    AppendField(&out, "ec2_usd", spend.ec2_usd, &first);
    AppendField(&out, "cost_usd", spend.TotalUsd(prices), &first);
    // Wait-class breakdown for the tenant's queries plus the SLO-burn
    // fractions: the average per-completed-query seconds spent in each
    // class as a fraction of the tenant's p95 latency budget — "tenant A
    // burns 32% of its SLO on network transfer" is the
    // decide-what-to-fix-next number.
    StallProfiler::Entry stall = profiler.TenantTotal(tenant);
    const uint64_t completed = tenant_count(tenant, "completed");
    double slo_seconds = 0;
    {
      const auto& gauges = stats.gauges();
      auto it = gauges.find("workload." + tenant + ".slo_seconds");
      if (it != gauges.end()) slo_seconds = it->second.value();
    }
    AppendField(&out, "stall_total_seconds", stall.TotalNanos() / 1e9,
                &first);
    for (int i = 0; i < kNumWaitClasses; ++i) {
      std::string field = "stall_";
      field += WaitClassName(static_cast<WaitClass>(i));
      field += "_seconds";
      AppendField(&out, field.c_str(), stall.ns[i] / 1e9, &first);
    }
    for (int i = 0; i < kNumWaitClasses; ++i) {
      std::string field = "slo_burn_";
      field += WaitClassName(static_cast<WaitClass>(i));
      double burn = 0;
      if (completed > 0 && slo_seconds > 0) {
        burn = (stall.ns[i] / 1e9) /
               (static_cast<double>(completed) * slo_seconds);
      }
      AppendField(&out, field.c_str(), burn, &first);
    }
    out.push_back('}');
  }
  out.append("]");

  // The stall profiler's wait-state ledger: where every simulated
  // nanosecond went, globally and per query / operator / node. All
  // integer nanos; sum over queries' entries of all classes equals
  // window_nanos + background_nanos exactly (check.sh profile asserts
  // this on the emitted JSON).
  out.append(",\n\"stalls\":{\"window_nanos\":");
  AppendCount(&out, static_cast<uint64_t>(profiler.window_nanos()));
  out.append(",\"background_nanos\":");
  AppendCount(&out, static_cast<uint64_t>(profiler.background_nanos()));
  out.append(",\"total\":{");
  {
    bool first = true;
    AppendStallFields(&out, profiler.GrandTotal(), &first);
  }
  out.append("},\"queries\":[");
  {
    std::map<CostLedger::Key, StallProfiler::Entry> stall_entries =
        profiler.entries();
    std::map<uint64_t, std::string> query_tags;
    for (const auto& [query_id, tag] : ledger.Queries()) {
      query_tags[query_id] = tag;
    }
    std::map<uint64_t, StallProfiler::Entry> by_query;
    for (const auto& [key, entry] : stall_entries) {
      by_query[key.query_id].Fold(entry);
    }
    bool first_query = true;
    for (const auto& [query_id, total] : by_query) {
      if (!first_query) out.push_back(',');
      first_query = false;
      out.append("\n{\"query_id\":");
      AppendCount(&out, query_id);
      out.append(",\"tag\":");
      auto tag_it = query_tags.find(query_id);
      AppendEscaped(&out,
                    tag_it != query_tags.end() ? tag_it->second : "");
      bool first = false;
      AppendStallFields(&out, total, &first);
      out.append(",\"entries\":[");
      bool first_entry = true;
      for (const auto& [key, entry] : stall_entries) {
        if (key.query_id != query_id) continue;
        if (!first_entry) out.push_back(',');
        first_entry = false;
        out.append("{\"operator_id\":");
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%d", key.operator_id);
        out.append(buf);
        out.append(",\"node_id\":");
        AppendCount(&out, key.node_id);
        bool f = false;
        AppendStallFields(&out, entry, &f);
        out.push_back('}');
      }
      out.append("]}");
    }
  }
  out.append("]}");

  // The per-prefix throttle heatmap.
  out.append(",\n\"prefixes\":[");
  bool first_prefix = true;
  for (const auto& [prefix, ps] : ledger.prefixes()) {
    if (!first_prefix) out.push_back(',');
    first_prefix = false;
    out.append("\n{\"prefix\":");
    AppendEscaped(&out, prefix);
    bool first = false;
    AppendField(&out, "requests", ps.requests, &first);
    AppendField(&out, "throttle_events", ps.throttle_events, &first);
    AppendField(&out, "stall_seconds", ps.stall_seconds, &first);
    out.push_back('}');
  }
  out.append("]");

  out.append(",\n\"histograms\":[");
  bool first_hist = true;
  for (const auto& [name, h] : stats.histograms()) {
    if (!first_hist) out.push_back(',');
    first_hist = false;
    out.append("\n{\"name\":");
    AppendEscaped(&out, name);
    bool first = false;
    AppendField(&out, "count", h.count(), &first);
    AppendField(&out, "sum", h.sum(), &first);
    AppendField(&out, "min", h.min(), &first);
    AppendField(&out, "mean", h.mean(), &first);
    AppendField(&out, "p50", h.p50(), &first);
    AppendField(&out, "p95", h.p95(), &first);
    AppendField(&out, "p99", h.p99(), &first);
    AppendField(&out, "max", h.max(), &first);
    out.push_back('}');
  }
  out.append("]");

  out.append(",\n\"counters\":{");
  bool first_counter = true;
  for (const auto& [name, c] : stats.counters()) {
    if (!first_counter) out.push_back(',');
    first_counter = false;
    out.push_back('\n');
    AppendEscaped(&out, name);
    out.push_back(':');
    AppendCount(&out, c.value());
  }
  out.append("}");

  out.append(",\n\"gauges\":{");
  bool first_gauge = true;
  for (const auto& [name, g] : stats.gauges()) {
    if (!first_gauge) out.push_back(',');
    first_gauge = false;
    out.push_back('\n');
    AppendEscaped(&out, name);
    out.push_back(':');
    AppendNumber(&out, g.value());
  }
  out.append("}\n}\n");
  return out;
}

Status WriteRunReport(const RunReportInfo& info, const StatsRegistry& stats,
                      const CostLedger& ledger,
                      const StallProfiler& profiler,
                      const std::string& path) {
  std::string json = BuildRunReportJson(info, stats, ledger, profiler);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open report file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("short write to report file: " + path);
  }
  return Status::Ok();
}

}  // namespace cloudiq
