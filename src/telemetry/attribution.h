#ifndef CLOUDIQ_TELEMETRY_ATTRIBUTION_H_
#define CLOUDIQ_TELEMETRY_ATTRIBUTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cloudiq {

// Who caused a storage-layer event. The query layer opens an attribution
// scope (query id + node), executor operators refine it with an operator
// id, and every layer below — buffer manager, OCM, ObjectStoreIo, the
// simulated object store and block devices — charges its work to whatever
// context is current. Asynchronous work (OCM background uploads, cache
// fills) captures the context at enqueue time and re-establishes it when
// the background pump runs, so deferred I/O is still billed to the query
// that caused it rather than to whoever happens to drain the queue.
struct AttributionContext {
  uint64_t query_id = 0;     // 0 = outside any attributed scope
  int32_t operator_id = -1;  // -1 = query-level work (load, commit, GC)
  uint32_t node_id = 0;      // NodeContext::trace_pid(); 0 = unknown
  std::string tag;           // human label ("load", "Q7", ...)
};

// Request price points the ledger uses to turn attributed requests into
// USD. Mirrors the request rates of CloudPrices (sim/cost_model.h)
// without depending on it — telemetry sits below sim in the layering, so
// SimEnvironment copies its meter's rates in at construction.
struct LedgerPrices {
  double put_per_1k = 0.005;   // PUT and DELETE requests
  double get_per_1k = 0.0004;  // GET (plain, ranged parts, HEAD)
  // NDP SELECT: per-request rate plus per-byte scanned/returned rates
  // (mirrors CloudPrices::s3_select_*).
  double select_per_1k = 0.0004;
  double select_scanned_per_gb = 0.002;
  double select_returned_per_gb = 0.0007;
};

// Per-query cost and causality ledger. Aggregates every attributed event
// by (query, operator, node) and every object-store request by key
// prefix, and prices the result through LedgerPrices — the per-query
// counterpart of the global CostMeter (the two see the same event stream,
// so their totals must agree; tests assert it).
//
// The "current" context is one slot, swapped by ScopedAttribution; the
// fiber handoff serializes the swappers. mu_ guards the slot, the
// aggregation maps and the one-entry pointer cache. Like the other
// telemetry locks this is a leaf: recording calls arrive from inside
// every other manager's critical sections.
class CostLedger {
 public:
  enum class Request { kGet, kPut, kDelete, kRangedGet, kHead, kSelect };

  struct Key {
    uint64_t query_id = 0;
    int32_t operator_id = -1;
    uint32_t node_id = 0;

    bool operator<(const Key& o) const {
      if (query_id != o.query_id) return query_id < o.query_id;
      if (operator_id != o.operator_id) return operator_id < o.operator_id;
      return node_id < o.node_id;
    }
    bool operator==(const Key& o) const {
      return query_id == o.query_id && operator_id == o.operator_id &&
             node_id == o.node_id;
    }
  };

  // Everything charged to one (query, operator, node). Fold() merges
  // entries, which is how operator rows roll up to query totals and
  // query totals to the grand total.
  struct Entry {
    std::string tag;

    // Object-store requests.
    uint64_t gets = 0;
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t ranged_gets = 0;
    uint64_t heads = 0;
    uint64_t get_bytes = 0;
    uint64_t put_bytes = 0;

    // NDP SELECT requests: count, bytes scanned inside the store and
    // bytes actually returned over the wire (the pushdown win is the
    // gap between the two).
    uint64_t selects = 0;
    uint64_t select_scanned_bytes = 0;
    uint64_t select_returned_bytes = 0;

    // Throttling and retries suffered by this originator.
    uint64_t throttle_events = 0;
    double throttle_stall_seconds = 0;
    uint64_t not_found_retries = 0;
    uint64_t transient_retries = 0;

    // Cache interactions.
    uint64_t ocm_hits = 0;
    uint64_t ocm_misses = 0;
    uint64_t ocm_fills = 0;
    uint64_t ocm_uploads = 0;
    uint64_t buffer_hits = 0;
    uint64_t buffer_misses = 0;
    uint64_t buffer_flush_pages = 0;

    // Simulated time spent inside scopes at this key (informational),
    // and compute cost priced by an explicit ChargeCompute call (the
    // bench harness charges each phase's wall time once, at query level,
    // so rolled-up USD does not double-count operator time).
    double sim_seconds = 0;
    double ec2_usd = 0;

    uint64_t Requests() const {
      return gets + puts + deletes + ranged_gets + heads + selects;
    }
    double RequestUsd(const LedgerPrices& prices) const {
      return (puts + deletes) / 1000.0 * prices.put_per_1k +
             (gets + ranged_gets + heads) / 1000.0 * prices.get_per_1k +
             selects / 1000.0 * prices.select_per_1k +
             select_scanned_bytes / 1e9 * prices.select_scanned_per_gb +
             select_returned_bytes / 1e9 * prices.select_returned_per_gb;
    }
    double TotalUsd(const LedgerPrices& prices) const {
      return RequestUsd(prices) + ec2_usd;
    }
    double OcmHitRate() const {
      uint64_t lookups = ocm_hits + ocm_misses;
      return lookups == 0 ? 0 : static_cast<double>(ocm_hits) / lookups;
    }
    void Fold(const Entry& other);
  };

  // Per-prefix object-store pressure (the throttle heatmap). Hashed
  // prefixes are near-unique, so the map is capped: once full, new
  // prefixes aggregate under kOtherPrefixes.
  struct PrefixStats {
    uint64_t requests = 0;
    uint64_t throttle_events = 0;
    double stall_seconds = 0;
  };
  static constexpr size_t kMaxPrefixes = 4096;
  static constexpr const char* kOtherPrefixes = "(other)";

  // --- current context ---------------------------------------------------
  AttributionContext current() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return current_;
  }
  // Installs `next`, returning the previous context (ScopedAttribution
  // restores it).
  AttributionContext Swap(AttributionContext next) EXCLUDES(mu_);

  // Monotonic query-id source; every Database::NewQueryContext and every
  // bench phase (load, Qn) draws from here so ids are cluster-unique.
  uint64_t NextQueryId() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return ++last_query_id_;
  }
  // The most recently issued query id (0 = none yet issued).
  uint64_t last_query_id() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return last_query_id_;
  }

  // --- tenants -----------------------------------------------------------
  // Maps a query id to a tenant, so multi-tenant workloads (src/workload/)
  // roll up per tenant. Queries never mapped — loads, maintenance, anything
  // outside the workload engine — aggregate under the "" tenant, so
  // TenantTotal("") plus the mapped tenants always sums to GrandTotal().
  void SetQueryTenant(uint64_t query_id, const std::string& tenant)
      EXCLUDES(mu_);
  // "" when the query was never mapped.
  std::string QueryTenant(uint64_t query_id) const EXCLUDES(mu_);
  // Sum of every entry of `tenant`'s queries across operators and nodes
  // ("" sums the unmapped remainder, including unattributed work).
  Entry TenantTotal(const std::string& tenant) const EXCLUDES(mu_);
  // Distinct mapped tenant names, ascending.
  std::vector<std::string> Tenants() const EXCLUDES(mu_);

  // --- recording (all charge to current()) -------------------------------
  void RecordRequest(Request kind, uint64_t bytes) EXCLUDES(mu_);
  // One NDP SELECT: bytes scanned server-side vs. bytes returned.
  void RecordSelect(uint64_t scanned_bytes, uint64_t returned_bytes)
      EXCLUDES(mu_);
  void RecordThrottle(double stall_seconds) EXCLUDES(mu_);
  void RecordRetry(bool not_found) EXCLUDES(mu_);
  void RecordOcmHit() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++MutableLocked()->ocm_hits;
  }
  void RecordOcmMiss() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++MutableLocked()->ocm_misses;
  }
  void RecordOcmFill() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++MutableLocked()->ocm_fills;
  }
  void RecordOcmUpload() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++MutableLocked()->ocm_uploads;
  }
  void RecordBufferHit() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++MutableLocked()->buffer_hits;
  }
  void RecordBufferMiss() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++MutableLocked()->buffer_misses;
  }
  void RecordBufferFlush(uint64_t pages) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    MutableLocked()->buffer_flush_pages += pages;
  }
  void AddSimSeconds(double seconds) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    MutableLocked()->sim_seconds += seconds;
  }
  void RecordPrefix(const std::string& prefix, bool throttled,
                    double stall_seconds) EXCLUDES(mu_);

  // Prices `seconds` of instance time at `hourly_usd` onto `who`
  // (independent of the current scope: the harness charges a phase after
  // it finishes, when the scope is already closed). Adds money only —
  // sim_seconds stays with the scopes that measured it.
  void ChargeCompute(const AttributionContext& who, double seconds,
                     double hourly_usd) EXCLUDES(mu_);

  // --- views -------------------------------------------------------------
  // Report-time snapshots, by value (references would escape the lock).
  std::map<Key, Entry> entries() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return entries_;
  }
  std::map<std::string, PrefixStats> prefixes() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return prefixes_;
  }
  // Sum of every entry of `query_id` across operators and nodes.
  Entry QueryTotal(uint64_t query_id) const EXCLUDES(mu_);
  // Sum of every entry, attributed or not.
  Entry GrandTotal() const EXCLUDES(mu_);
  // Distinct query ids seen, ascending, with the first non-empty tag.
  std::vector<std::pair<uint64_t, std::string>> Queries() const;

  // Prices are wired once at environment construction (setup time) and
  // read-only afterwards, so they are deliberately unguarded.
  const LedgerPrices& prices() const { return prices_; }
  void set_prices(const LedgerPrices& prices) { prices_ = prices; }

  void Reset() EXCLUDES(mu_);

 private:
  // Entry for the current context; one-slot cache keeps the hot path
  // (one ledger update per simulated request) to a pointer bump.
  Entry* MutableLocked() REQUIRES(mu_);
  std::string QueryTenantLocked(uint64_t query_id) const REQUIRES(mu_);

  mutable Mutex mu_{lockrank::kCostLedger};
  AttributionContext current_ GUARDED_BY(mu_);
  LedgerPrices prices_;
  uint64_t last_query_id_ GUARDED_BY(mu_) = 0;
  std::map<Key, Entry> entries_ GUARDED_BY(mu_);
  std::map<std::string, PrefixStats> prefixes_ GUARDED_BY(mu_);
  std::map<uint64_t, std::string> query_tenants_ GUARDED_BY(mu_);
  Entry* cached_entry_ GUARDED_BY(mu_) = nullptr;
};

// RAII attribution scope: installs `ctx` on construction, restores the
// previous context on destruction. Safe to nest (operators inside a
// query, a query inside a workload).
class ScopedAttribution {
 public:
  ScopedAttribution(CostLedger* ledger, AttributionContext ctx)
      : ledger_(ledger), prev_(ledger->Swap(std::move(ctx))) {}
  ~ScopedAttribution() { ledger_->Swap(std::move(prev_)); }
  ScopedAttribution(const ScopedAttribution&) = delete;
  ScopedAttribution& operator=(const ScopedAttribution&) = delete;

 private:
  CostLedger* ledger_;
  AttributionContext prev_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_TELEMETRY_ATTRIBUTION_H_
