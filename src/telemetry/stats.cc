#include "telemetry/stats.h"

#include <algorithm>
#include <cmath>

namespace cloudiq {

namespace {
// 1 / ln(kGrowth), hoisted so Record costs one log() and one multiply.
const double kInvLogGrowth = 1.0 / std::log(Histogram::kGrowth);
}  // namespace

int Histogram::BucketFor(double value) {
  if (!(value > kMinValue)) return 0;
  int bucket =
      static_cast<int>(std::log(value / kMinValue) * kInvLogGrowth);
  return std::min(bucket, kBucketCount - 1);
}

double Histogram::BucketMidpoint(int bucket) {
  // Geometric midpoint of [kMin * g^b, kMin * g^(b+1)).
  return kMinValue * std::pow(kGrowth, bucket + 0.5);
}

double Histogram::MaxRelativeError() { return std::sqrt(kGrowth) - 1.0; }

void Histogram::Record(double value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (exact_.size() + 1 == count_ && exact_.size() < kExactSamples) {
    exact_.push_back(value);
  } else if (exact_.size() != count_) {
    exact_.clear();  // outgrown: buckets take over
  }
  ++buckets_[BucketFor(value)];
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest value with cumulative count >= q * n.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count_));
  if (rank == 0) rank = 1;

  if (exact_.size() == count_) {
    std::vector<double> sorted(exact_);
    std::sort(sorted.begin(), sorted.end());
    return sorted[rank - 1];
  }

  uint64_t cumulative = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    cumulative += buckets_[b];
    if (cumulative >= rank) {
      return std::clamp(BucketMidpoint(b), min_, max_);
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  bool exact_ok = exact_.size() == count_ &&
                  other.exact_.size() == other.count_ &&
                  count_ + other.count_ <= kExactSamples;
  if (exact_ok) {
    exact_.insert(exact_.end(), other.exact_.begin(), other.exact_.end());
  } else {
    exact_.clear();
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int b = 0; b < kBucketCount; ++b) buckets_[b] += other.buckets_[b];
}

void StatsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, g] : gauges_) g.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

}  // namespace cloudiq
