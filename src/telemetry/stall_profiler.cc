#include "telemetry/stall_profiler.h"

#include <algorithm>
#include <cassert>

namespace cloudiq {

const char* WaitClassName(WaitClass cls) {
  switch (cls) {
    case WaitClass::kCpuExec:
      return "cpu_exec";
    case WaitClass::kLockWait:
      return "lock_wait";
    case WaitClass::kAdmissionQueue:
      return "admission_queue";
    case WaitClass::kBufferFill:
      return "buffer_fill";
    case WaitClass::kOcmFetch:
      return "ocm_fetch";
    case WaitClass::kOcmUpload:
      return "ocm_upload";
    case WaitClass::kNetworkTransfer:
      return "network_transfer";
    case WaitClass::kThrottleBackoff:
      return "throttle_backoff";
    case WaitClass::kNdpSelect:
      return "ndp_select";
  }
  return "unknown";
}

StallProfiler::Key StallProfiler::CurrentKey() const {
  AttributionContext attr = ledger_->current();
  return Key{attr.query_id, attr.operator_id, attr.node_id};
}

StallProfiler::Frame* StallProfiler::FrameLocked() {
  return current_frame_ != nullptr ? current_frame_ : &default_frame_;
}

void StallProfiler::RegisterLocked(const Key& key, WaitClass cls, int64_t n,
                                   bool wall) {
  if (n == 0) return;
  Frame* frame = FrameLocked();
  if (wall && !frame->stack.empty() &&
      frame->stack.back().kind == Frame::Node::kScope) {
    frame->stack.back().inner_ns += n;
  }
  // The innermost parallel/background section decides where the charge
  // lands; scopes are transparent for this (they only track inner time).
  for (auto it = frame->stack.rbegin(); it != frame->stack.rend(); ++it) {
    if (it->kind == Frame::Node::kParallel) {
      it->lanes[{key, static_cast<int>(cls)}] += n;
      return;
    }
    if (it->kind == Frame::Node::kBackground) {
      Entry& entry = entries_[key];
      entry.ns[static_cast<int>(cls)] += n;
      entry.background += n;
      background_ns_ += n;
      return;
    }
  }
  entries_[key].ns[static_cast<int>(cls)] += n;
  // Only wall charges outside any section credit the window directly.
  // Inside a foreground scope the outermost scope's elapsed credits it
  // when the scope closes — which also covers the scope's own residual
  // (wall=false), so that must never credit the window a second time.
  if (wall && frame->stack.empty()) window_ns_ += n;
}

void StallProfiler::Charge(WaitClass cls, double start_seconds,
                           double end_seconds) {
  int64_t n = ToNanos(end_seconds) - ToNanos(start_seconds);
  if (n <= 0) return;
  Key key = CurrentKey();
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->CompleteSpan(key.node_id, kTrackStall, "stall",
                          WaitClassName(cls), start_seconds, end_seconds);
  }
  MutexLock lock(&mu_);
  RegisterLocked(key, cls, n, /*wall=*/true);
}

void StallProfiler::BeginScope(WaitClass cls, double start_seconds) {
  MutexLock lock(&mu_);
  Frame::Node node;
  node.kind = Frame::Node::kScope;
  node.cls = cls;
  node.start_ns = ToNanos(start_seconds);
  FrameLocked()->stack.push_back(std::move(node));
}

void StallProfiler::PinScopeAttribution() {
  Key key = CurrentKey();
  MutexLock lock(&mu_);
  Frame* frame = FrameLocked();
  for (auto it = frame->stack.rbegin(); it != frame->stack.rend(); ++it) {
    if (it->kind == Frame::Node::kScope) {
      it->pinned = true;
      it->key = key;
      return;
    }
  }
}

void StallProfiler::EndScope(double end_seconds) {
  Key current = CurrentKey();
  MutexLock lock(&mu_);
  Frame* frame = FrameLocked();
  assert(!frame->stack.empty() &&
         frame->stack.back().kind == Frame::Node::kScope);
  if (frame->stack.empty()) return;
  Frame::Node scope = std::move(frame->stack.back());
  frame->stack.pop_back();

  int64_t elapsed = ToNanos(end_seconds) - scope.start_ns;
  if (elapsed < 0) elapsed = 0;
  // Inner charges are disjoint sub-windows converted with the same
  // monotonic llround, so they cannot exceed the scope's own elapsed;
  // the clamp only defends against mis-bracketed instrumentation.
  int64_t residual = elapsed - scope.inner_ns;
  if (residual < 0) {
    assert(false && "stall scope inner charges exceed elapsed");
    residual = 0;
    elapsed = scope.inner_ns;
  }
  const Key& key = scope.pinned ? scope.key : current;
  RegisterLocked(key, scope.cls, residual, /*wall=*/false);

  if (frame->stack.empty()) {
    window_ns_ += elapsed;
  } else if (frame->stack.back().kind == Frame::Node::kScope) {
    frame->stack.back().inner_ns += elapsed;
  }
  // Parent parallel/background: nothing — the scope's charges landed in
  // the lanes / background tally individually, summing to elapsed.
}

void StallProfiler::BeginParallel(double start_seconds) {
  MutexLock lock(&mu_);
  Frame::Node node;
  node.kind = Frame::Node::kParallel;
  node.start_ns = ToNanos(start_seconds);
  FrameLocked()->stack.push_back(std::move(node));
}

void StallProfiler::EndParallel(double end_seconds) {
  MutexLock lock(&mu_);
  Frame* frame = FrameLocked();
  assert(!frame->stack.empty() &&
         frame->stack.back().kind == Frame::Node::kParallel);
  if (frame->stack.empty()) return;
  Frame::Node section = std::move(frame->stack.back());
  frame->stack.pop_back();

  int64_t elapsed = ToNanos(end_seconds) - section.start_ns;
  if (elapsed < 0) elapsed = 0;
  if (section.lanes.empty()) return;  // wall time absorbed by the parent

  int64_t weight = 0;
  for (const auto& [lane, n] : section.lanes) weight += n;
  if (weight <= elapsed) {
    // No overlap (or idle tail): register raw lane charges; the
    // remainder stays with the parent scope's residual.
    for (const auto& [lane, n] : section.lanes) {
      RegisterLocked(lane.first, static_cast<WaitClass>(lane.second), n,
                     /*wall=*/true);
    }
    return;
  }

  // Lanes overlapped in wall sim-time: scale the raw charges down to the
  // section's actual elapsed nanoseconds, largest-remainder rounding so
  // the scaled parts sum to `elapsed` exactly and deterministically
  // (lanes is an ordered map).
  struct Share {
    const Key* key;
    int cls;
    int64_t base;
    int64_t rem;
    size_t order;
  };
  std::vector<Share> shares;
  shares.reserve(section.lanes.size());
  int64_t assigned = 0;
  size_t order = 0;
  for (const auto& [lane, n] : section.lanes) {
    __int128 scaled = static_cast<__int128>(n) * elapsed;
    int64_t base = static_cast<int64_t>(scaled / weight);
    int64_t rem = static_cast<int64_t>(scaled % weight);
    assigned += base;
    shares.push_back(Share{&lane.first, lane.second, base, rem, order++});
  }
  int64_t leftover = elapsed - assigned;  // 0 <= leftover < lanes.size()
  std::sort(shares.begin(), shares.end(), [](const Share& a, const Share& b) {
    if (a.rem != b.rem) return a.rem > b.rem;
    return a.order < b.order;
  });
  for (Share& share : shares) {
    int64_t n = share.base + (leftover > 0 ? 1 : 0);
    if (leftover > 0) --leftover;
    RegisterLocked(*share.key, static_cast<WaitClass>(share.cls), n,
                   /*wall=*/true);
  }
}

void StallProfiler::BeginBackground() {
  MutexLock lock(&mu_);
  Frame::Node node;
  node.kind = Frame::Node::kBackground;
  FrameLocked()->stack.push_back(std::move(node));
}

void StallProfiler::EndBackground() {
  MutexLock lock(&mu_);
  Frame* frame = FrameLocked();
  assert(!frame->stack.empty() &&
         frame->stack.back().kind == Frame::Node::kBackground);
  if (!frame->stack.empty()) frame->stack.pop_back();
}

StallProfiler::Frame* StallProfiler::SwapFrame(Frame* next) {
  MutexLock lock(&mu_);
  Frame* prev = current_frame_;
  current_frame_ = next;
  return prev;
}

StallProfiler::Entry StallProfiler::QueryTotal(uint64_t query_id) const {
  Entry total;
  MutexLock lock(&mu_);
  for (const auto& [key, entry] : entries_) {
    if (key.query_id == query_id) total.Fold(entry);
  }
  return total;
}

StallProfiler::Entry StallProfiler::GrandTotal() const {
  Entry total;
  MutexLock lock(&mu_);
  for (const auto& [key, entry] : entries_) total.Fold(entry);
  return total;
}

StallProfiler::Entry StallProfiler::TenantTotal(
    const std::string& tenant) const {
  Entry total;
  std::map<Key, Entry> snapshot = entries();
  for (const auto& [key, entry] : snapshot) {
    if (ledger_->QueryTenant(key.query_id) == tenant) total.Fold(entry);
  }
  return total;
}

void StallProfiler::Reset() {
  MutexLock lock(&mu_);
  entries_.clear();
  window_ns_ = 0;
  background_ns_ = 0;
  default_frame_.stack.clear();
  current_frame_ = nullptr;
}

}  // namespace cloudiq
