#ifndef CLOUDIQ_TELEMETRY_REPORT_H_
#define CLOUDIQ_TELEMETRY_REPORT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "telemetry/attribution.h"
#include "telemetry/stall_profiler.h"
#include "telemetry/stats.h"

namespace cloudiq {

// Global totals the harness folds into the run report alongside the
// ledger. Carried as plain numbers (not a CostMeter) so the report
// builder stays below sim in the layering; the bench harness copies the
// meter's totals in.
struct RunReportInfo {
  std::string bench;        // binary name, e.g. "tpch_power_run"
  double scale_factor = 0;  // TPC-H SF the run used (0 = not applicable)
  double sim_seconds = 0;   // simulated end time of the run

  // Global CostMeter view, for cross-checking against the ledger.
  uint64_t s3_puts = 0;
  uint64_t s3_gets = 0;
  uint64_t s3_deletes = 0;
  uint64_t s3_ranged_gets = 0;
  uint64_t s3_selects = 0;
  uint64_t select_scanned_bytes = 0;
  uint64_t select_returned_bytes = 0;
  double request_usd = 0;
  double ec2_usd = 0;
  double storage_usd_month = 0;
};

// Builds the structured run report: global cost, the attribution ledger
// broken down by query / node / key prefix (the throttle heatmap), the
// stall profiler's wait-class breakdown (integer nanoseconds, so the
// conservation invariant survives serialization exactly), and every
// StatsRegistry instrument. Top-level keys:
//   schema_version, bench, cost, queries, nodes, tenants, stalls,
//   prefixes, histograms, counters, gauges
std::string BuildRunReportJson(const RunReportInfo& info,
                               const StatsRegistry& stats,
                               const CostLedger& ledger,
                               const StallProfiler& profiler);

// Convenience: build + write to `path`.
Status WriteRunReport(const RunReportInfo& info, const StatsRegistry& stats,
                      const CostLedger& ledger,
                      const StallProfiler& profiler, const std::string& path);

}  // namespace cloudiq

#endif  // CLOUDIQ_TELEMETRY_REPORT_H_
