#ifndef CLOUDIQ_TELEMETRY_STATS_H_
#define CLOUDIQ_TELEMETRY_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cloudiq {

// Log-bucketed latency histogram over positive doubles (seconds).
//
// Values are binned geometrically: bucket i covers
// [kMinValue * g^i, kMinValue * g^(i+1)) with g = kGrowth, so a quantile
// reconstructed from the bucket's geometric midpoint is off by at most
// sqrt(g) - 1 relative error (~2.5% at g = 1.05). The first
// kExactSamples values are additionally kept verbatim, so small
// histograms — most per-op distributions in a short simulation — report
// *exact* quantiles. Histograms merge losslessly at the bucket level,
// which is how per-node distributions roll up to cluster-wide ones.
class Histogram {
 public:
  static constexpr double kMinValue = 1e-7;  // 0.1 us
  static constexpr double kGrowth = 1.05;
  static constexpr int kBucketCount = 640;   // covers past 3e6 seconds
  static constexpr size_t kExactSamples = 128;

  void Record(double value);

  // Quantile in [0, 1] by nearest rank. Exact while the sample set is
  // small; bucket-midpoint approximation (clamped to [min, max]) after.
  double Quantile(double q) const;

  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / count_; }

  // Folds `other` into this histogram.
  void Merge(const Histogram& other);

  void Reset() { *this = Histogram(); }

  // Largest relative error Quantile() can make once the exact sample set
  // has been outgrown (see class comment).
  static double MaxRelativeError();

 private:
  static int BucketFor(double value);
  static double BucketMidpoint(int bucket);

  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  // Exact values while count_ <= kExactSamples (valid iff size == count_).
  std::vector<double> exact_;
  std::array<uint64_t, kBucketCount> buckets_{};
};

// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  double value_ = 0;
};

// Name-keyed registry so layers can publish stats without adding fields
// to MetricsSnapshot. Returned references are stable for the registry's
// lifetime (std::map never relocates elements); hot paths resolve their
// instruments once and keep the pointer.
//
// Locking: mu_ guards the *maps* — lookup/insert in counter()/gauge()/
// histogram() and the snapshot accessors. Mutating an instrument through
// a cached reference is serialized by the fiber handoff protocol, the
// same contract that makes the cached-pointer pattern sound at all. This
// is a leaf lock: it is taken while other managers hold their own locks,
// and never the reverse.
class StatsRegistry {
 public:
  Counter& counter(const std::string& name) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return counters_[name];
  }
  Gauge& gauge(const std::string& name) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return gauges_[name];
  }
  Histogram& histogram(const std::string& name) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return histograms_[name];
  }

  // Report-time snapshots, by value: a reference to a guarded map would
  // escape the lock.
  std::map<std::string, Counter> counters() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return counters_;
  }
  std::map<std::string, Gauge> gauges() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return gauges_;
  }
  std::map<std::string, Histogram> histograms() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return histograms_;
  }

  void Reset() EXCLUDES(mu_);

 private:
  mutable Mutex mu_{lockrank::kStatsRegistry};
  std::map<std::string, Counter> counters_ GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ GUARDED_BY(mu_);
};

}  // namespace cloudiq

#endif  // CLOUDIQ_TELEMETRY_STATS_H_
