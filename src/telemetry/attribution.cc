#include "telemetry/attribution.h"

#include <algorithm>

namespace cloudiq {

void CostLedger::Entry::Fold(const Entry& other) {
  if (tag.empty()) tag = other.tag;
  gets += other.gets;
  puts += other.puts;
  deletes += other.deletes;
  ranged_gets += other.ranged_gets;
  heads += other.heads;
  get_bytes += other.get_bytes;
  put_bytes += other.put_bytes;
  selects += other.selects;
  select_scanned_bytes += other.select_scanned_bytes;
  select_returned_bytes += other.select_returned_bytes;
  throttle_events += other.throttle_events;
  throttle_stall_seconds += other.throttle_stall_seconds;
  not_found_retries += other.not_found_retries;
  transient_retries += other.transient_retries;
  ocm_hits += other.ocm_hits;
  ocm_misses += other.ocm_misses;
  ocm_fills += other.ocm_fills;
  ocm_uploads += other.ocm_uploads;
  buffer_hits += other.buffer_hits;
  buffer_misses += other.buffer_misses;
  buffer_flush_pages += other.buffer_flush_pages;
  sim_seconds += other.sim_seconds;
  ec2_usd += other.ec2_usd;
}

AttributionContext CostLedger::Swap(AttributionContext next) {
  MutexLock lock(&mu_);
  AttributionContext prev = std::move(current_);
  current_ = std::move(next);
  cached_entry_ = nullptr;
  return prev;
}

CostLedger::Entry* CostLedger::MutableLocked() {
  if (cached_entry_ != nullptr) return cached_entry_;
  Key key{current_.query_id, current_.operator_id, current_.node_id};
  Entry& entry = entries_[key];
  if (entry.tag.empty()) entry.tag = current_.tag;
  cached_entry_ = &entry;
  return cached_entry_;
}

void CostLedger::RecordRequest(Request kind, uint64_t bytes) {
  MutexLock lock(&mu_);
  Entry* e = MutableLocked();
  switch (kind) {
    case Request::kGet:
      ++e->gets;
      e->get_bytes += bytes;
      break;
    case Request::kPut:
      ++e->puts;
      e->put_bytes += bytes;
      break;
    case Request::kDelete:
      ++e->deletes;
      break;
    case Request::kRangedGet:
      ++e->ranged_gets;
      e->get_bytes += bytes;
      break;
    case Request::kHead:
      ++e->heads;
      break;
    case Request::kSelect:
      // SELECTs carry two byte dimensions; use RecordSelect instead.
      ++e->selects;
      e->select_returned_bytes += bytes;
      break;
  }
}

void CostLedger::RecordSelect(uint64_t scanned_bytes,
                              uint64_t returned_bytes) {
  MutexLock lock(&mu_);
  Entry* e = MutableLocked();
  ++e->selects;
  e->select_scanned_bytes += scanned_bytes;
  e->select_returned_bytes += returned_bytes;
}

void CostLedger::RecordThrottle(double stall_seconds) {
  MutexLock lock(&mu_);
  Entry* e = MutableLocked();
  ++e->throttle_events;
  e->throttle_stall_seconds += stall_seconds;
}

void CostLedger::RecordRetry(bool not_found) {
  MutexLock lock(&mu_);
  Entry* e = MutableLocked();
  if (not_found) {
    ++e->not_found_retries;
  } else {
    ++e->transient_retries;
  }
}

void CostLedger::RecordPrefix(const std::string& prefix, bool throttled,
                              double stall_seconds) {
  MutexLock lock(&mu_);
  PrefixStats* stats;
  auto it = prefixes_.find(prefix);
  if (it != prefixes_.end()) {
    stats = &it->second;
  } else if (prefixes_.size() < kMaxPrefixes) {
    stats = &prefixes_[prefix];
  } else {
    stats = &prefixes_[kOtherPrefixes];
  }
  ++stats->requests;
  if (throttled) {
    ++stats->throttle_events;
    stats->stall_seconds += stall_seconds;
  }
}

void CostLedger::ChargeCompute(const AttributionContext& who, double seconds,
                               double hourly_usd) {
  MutexLock lock(&mu_);
  Key key{who.query_id, who.operator_id, who.node_id};
  Entry& entry = entries_[key];
  if (entry.tag.empty()) entry.tag = who.tag;
  // Money only: sim_seconds is accumulated by scopes, so query rollups
  // (which fold operator entries in) don't double-count the time.
  entry.ec2_usd += seconds / 3600.0 * hourly_usd;
  cached_entry_ = nullptr;  // entries_ may have moved on insert
}

void CostLedger::SetQueryTenant(uint64_t query_id,
                                const std::string& tenant) {
  MutexLock lock(&mu_);
  if (tenant.empty()) {
    query_tenants_.erase(query_id);
  } else {
    query_tenants_[query_id] = tenant;
  }
}

std::string CostLedger::QueryTenantLocked(uint64_t query_id) const {
  auto it = query_tenants_.find(query_id);
  return it == query_tenants_.end() ? std::string() : it->second;
}

std::string CostLedger::QueryTenant(uint64_t query_id) const {
  MutexLock lock(&mu_);
  return QueryTenantLocked(query_id);
}

CostLedger::Entry CostLedger::TenantTotal(const std::string& tenant) const {
  MutexLock lock(&mu_);
  Entry total;
  for (const auto& [key, entry] : entries_) {
    if (QueryTenantLocked(key.query_id) == tenant) total.Fold(entry);
  }
  return total;
}

std::vector<std::string> CostLedger::Tenants() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (const auto& [query_id, tenant] : query_tenants_) {
    (void)query_id;
    if (out.empty() || out.back() != tenant) out.push_back(tenant);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

CostLedger::Entry CostLedger::QueryTotal(uint64_t query_id) const {
  MutexLock lock(&mu_);
  Entry total;
  for (const auto& [key, entry] : entries_) {
    if (key.query_id == query_id) total.Fold(entry);
  }
  return total;
}

CostLedger::Entry CostLedger::GrandTotal() const {
  MutexLock lock(&mu_);
  Entry total;
  for (const auto& [key, entry] : entries_) total.Fold(entry);
  return total;
}

std::vector<std::pair<uint64_t, std::string>> CostLedger::Queries() const {
  MutexLock lock(&mu_);
  std::vector<std::pair<uint64_t, std::string>> out;
  for (const auto& [key, entry] : entries_) {
    if (out.empty() || out.back().first != key.query_id) {
      out.emplace_back(key.query_id, entry.tag);
    } else if (out.back().second.empty()) {
      out.back().second = entry.tag;
    }
  }
  return out;
}

void CostLedger::Reset() {
  MutexLock lock(&mu_);
  current_ = AttributionContext();
  last_query_id_ = 0;
  entries_.clear();
  prefixes_.clear();
  query_tenants_.clear();
  cached_entry_ = nullptr;
}

}  // namespace cloudiq
