#ifndef CLOUDIQ_KEYGEN_OBJECT_KEY_GENERATOR_H_
#define CLOUDIQ_KEYGEN_OBJECT_KEY_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/interval_set.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "common/status.h"

namespace cloudiq {

// Identifies a node in a multiplex cluster. Node 0 is the coordinator by
// convention.
using NodeId = uint32_t;

// A half-open range of object keys [begin, end) handed out by the
// coordinator.
struct KeyRange {
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

// Bookkeeping event emitted by the Object Key Generator so its state can be
// made durable. The engine appends these to the coordinator's transaction
// log; ObjectKeyGenerator::Recover() replays them after a crash.
struct KeygenLogRecord {
  enum class Type { kAllocate, kCommit };
  Type type;
  NodeId node = 0;
  // kAllocate: the granted range. The largest allocated key (`end - 1`) is
  // what §3.2 calls "the largest allocated object key recorded in the
  // transaction log".
  uint64_t begin = 0;
  uint64_t end = 0;
  // kCommit: keys consumed by a committed transaction; they leave the
  // node's active set because committed pages are tracked by RF/RB bitmaps
  // from then on.
  IntervalSet committed;
};

// The coordinator-resident Object Key Generator (§3.2 of the paper).
//
// Guarantees, verified by tests/keygen:
//   1. 64-bit keys confined to [2^63, 2^64) so they can overload the
//      physical-block-number field of the blockmap;
//   2. uniqueness across all nodes and across crash/recovery — a key is
//      never handed out twice;
//   3. strict monotonicity — later allocations have strictly larger keys,
//      which lets bookkeeping and GC operate on ranges.
//
// The generator also maintains the *active sets*: for every node, the keys
// that have been handed out but not yet accounted for by a committed
// transaction. After a writer-node crash, the node's active set is exactly
// the set of keys that must be polled for garbage collection (Table 1).
class ObjectKeyGenerator {
 public:
  struct Options {
    uint64_t first_key = uint64_t{1} << 63;
    uint64_t min_range_size = 16;
    uint64_t max_range_size = 1 << 20;
  };

  ObjectKeyGenerator() : ObjectKeyGenerator(Options()) {}
  explicit ObjectKeyGenerator(Options options);

  // Movable so Database can rebuild the generator on recovery; the moves
  // lock the source (and, for assignment, the destination) so the
  // analysis can prove the guarded state transfers cleanly.
  ObjectKeyGenerator(ObjectKeyGenerator&& other) noexcept;
  ObjectKeyGenerator& operator=(ObjectKeyGenerator&& other) noexcept;

  // Allocates a range of `size` keys to `node` (clamped to
  // [min_range_size, max_range_size]). Appends a kAllocate record to the
  // pending log. This is the body of the "allocate key range" RPC; the RPC
  // transport and its transaction envelope live in src/multiplex.
  KeyRange AllocateRange(NodeId node, uint64_t size) EXCLUDES(mu_);

  // A transaction on `node` committed having consumed `keys`. The keys
  // leave the node's active set (their lifecycle is now governed by the
  // committed transaction's RF/RB bitmaps). Appends a kCommit record.
  void OnTransactionCommitted(NodeId node, const IntervalSet& keys)
      EXCLUDES(mu_);

  // NOTE: there is deliberately no OnTransactionRolledBack(). The paper
  // does not notify the coordinator on rollback: the rolling-back node
  // deletes its own objects, and if the node later crashes the same range
  // is simply re-polled (deletes are idempotent). Tests cover this.

  // A node restarted after a crash: returns the keys that must be polled
  // for garbage collection (its entire active set, including unconsumed
  // tails of outstanding ranges) and clears the set.
  IntervalSet TakeActiveSetForRecovery(NodeId node) EXCLUDES(mu_);

  // Read-only snapshot, for inspection and tests (by value: a reference
  // into the guarded map would outlive the lock).
  IntervalSet ActiveSet(NodeId node) const EXCLUDES(mu_);
  uint64_t max_allocated() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return next_key_;
  }

  // --- Durability -----------------------------------------------------
  // Serializes current state (max allocated key + active sets) and clears
  // the pending log: the checkpoint at clock 50 of Table 1.
  std::vector<uint8_t> Checkpoint() EXCLUDES(mu_);

  // Log records appended since the last checkpoint (to be written to the
  // transaction log by the caller). Snapshot by value, as with ActiveSet.
  std::vector<KeygenLogRecord> pending_log() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pending_log_;
  }

  // Rebuilds the generator from the last checkpoint plus the replayed
  // transaction log — the coordinator-crash recovery walk-through of
  // Table 1 (clock 110–120).
  static ObjectKeyGenerator Recover(const std::vector<uint8_t>& checkpoint,
                                    const std::vector<KeygenLogRecord>& log);
  static ObjectKeyGenerator Recover(const std::vector<uint8_t>& checkpoint,
                                    const std::vector<KeygenLogRecord>& log,
                                    Options options);

 private:
  Options options_;
  mutable Mutex mu_{lockrank::kObjectKeyGenerator};
  uint64_t next_key_ GUARDED_BY(mu_);
  std::map<NodeId, IntervalSet> active_sets_ GUARDED_BY(mu_);
  std::vector<KeygenLogRecord> pending_log_ GUARDED_BY(mu_);
};

// Per-node key cache (§3.2): secondary nodes consume keys from a locally
// cached range and fetch a new range from the coordinator when exhausted.
// The requested range size adapts to the node's allocation rate: it doubles
// when ranges are exhausted quickly and halves when a range lingers.
class NodeKeyCache {
 public:
  // Fetches a fresh range of the requested size (the coordinator RPC).
  // The double parameter is the node's current simulated time, used for
  // adaptive sizing and so the transport can account RPC latency.
  using RangeFetcher = std::function<KeyRange(uint64_t size, double now)>;

  struct Options {
    uint64_t initial_range_size = 128;
    uint64_t min_range_size = 16;
    uint64_t max_range_size = 1 << 20;
    // A range exhausted faster than this doubles the next request; slower
    // than 10x this halves it.
    double fast_exhaust_seconds = 1.0;
  };

  explicit NodeKeyCache(RangeFetcher fetcher)
      : NodeKeyCache(std::move(fetcher), Options()) {}
  NodeKeyCache(RangeFetcher fetcher, Options options);

  // Returns the next unique key, fetching a new range if needed. The
  // coordinator fetch runs with mu_ released: it is an outbound RPC whose
  // transport (Multiplex) takes its own locks.
  uint64_t NextKey(double now) EXCLUDES(mu_);

  // Snapshot barrier: discards the cached range so subsequent keys come
  // from ranges allocated strictly after this point. Taking a snapshot
  // records the coordinator's allocation watermark; restore garbage
  // collection assumes every key used after the snapshot exceeds that
  // watermark (§5), which only holds if nodes abandon ranges they cached
  // beforehand.
  void DiscardCachedRange() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    range_ = KeyRange{};
    cursor_ = 0;
  }

  // Keys remaining in the cached range.
  uint64_t Remaining() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return range_.end - cursor_;
  }
  uint64_t current_range_size() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return next_request_size_;
  }
  uint64_t fetch_count() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return fetch_count_;
  }

 private:
  RangeFetcher fetcher_;
  Options options_;
  mutable Mutex mu_{lockrank::kNodeKeyCache};
  KeyRange range_ GUARDED_BY(mu_);
  uint64_t cursor_ GUARDED_BY(mu_) = 0;
  uint64_t next_request_size_ GUARDED_BY(mu_);
  double last_fetch_time_ GUARDED_BY(mu_) = -1;
  uint64_t fetch_count_ GUARDED_BY(mu_) = 0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_KEYGEN_OBJECT_KEY_GENERATOR_H_
