#include "keygen/object_key_generator.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"

namespace cloudiq {

ObjectKeyGenerator::ObjectKeyGenerator(Options options)
    : options_(options), next_key_(options.first_key) {
  assert(options_.first_key >= (uint64_t{1} << 63) &&
         "object keys must live in [2^63, 2^64)");
}

ObjectKeyGenerator::ObjectKeyGenerator(ObjectKeyGenerator&& other) noexcept
    : options_(other.options_) {
  MutexLock theirs(&other.mu_);
  next_key_ = other.next_key_;
  active_sets_ = std::move(other.active_sets_);
  pending_log_ = std::move(other.pending_log_);
}

ObjectKeyGenerator& ObjectKeyGenerator::operator=(
    ObjectKeyGenerator&& other) noexcept {
  if (this == &other) return *this;
  // Two instances of the same class, so both mutexes carry the same
  // rank; address order would be nondeterministic, and move-assignment
  // runs single-threaded by contract (callers own both generators), so
  // the same-rank double acquire is safe here and nowhere else.
  ScopedLockRankBypass bypass;
  MutexLock mine(&mu_);
  // NOLINT(cloudiq-lock-order): same-rank sibling instance; single-threaded move-assignment, rank check bypassed above.
  MutexLock theirs(&other.mu_);
  options_ = other.options_;
  next_key_ = other.next_key_;
  active_sets_ = std::move(other.active_sets_);
  pending_log_ = std::move(other.pending_log_);
  return *this;
}

KeyRange ObjectKeyGenerator::AllocateRange(NodeId node, uint64_t size) {
  MutexLock lock(&mu_);
  size = std::clamp(size, options_.min_range_size, options_.max_range_size);
  KeyRange range{next_key_, next_key_ + size};
  next_key_ = range.end;
  active_sets_[node].InsertRange(range.begin, range.end);

  KeygenLogRecord rec;
  rec.type = KeygenLogRecord::Type::kAllocate;
  rec.node = node;
  rec.begin = range.begin;
  rec.end = range.end;
  pending_log_.push_back(std::move(rec));
  return range;
}

void ObjectKeyGenerator::OnTransactionCommitted(NodeId node,
                                                const IntervalSet& keys) {
  MutexLock lock(&mu_);
  auto it = active_sets_.find(node);
  if (it != active_sets_.end()) {
    for (const auto& iv : keys.Intervals()) {
      it->second.EraseRange(iv.begin, iv.end);
    }
  }
  KeygenLogRecord rec;
  rec.type = KeygenLogRecord::Type::kCommit;
  rec.node = node;
  rec.committed = keys;
  pending_log_.push_back(std::move(rec));
}

IntervalSet ObjectKeyGenerator::TakeActiveSetForRecovery(NodeId node) {
  MutexLock lock(&mu_);
  auto it = active_sets_.find(node);
  if (it == active_sets_.end()) return IntervalSet();
  IntervalSet set = std::move(it->second);
  active_sets_.erase(it);
  return set;
}

IntervalSet ObjectKeyGenerator::ActiveSet(NodeId node) const {
  MutexLock lock(&mu_);
  auto it = active_sets_.find(node);
  return it == active_sets_.end() ? IntervalSet() : it->second;
}

std::vector<uint8_t> ObjectKeyGenerator::Checkpoint() {
  MutexLock lock(&mu_);
  std::vector<uint8_t> out;
  PutU64(out, next_key_);
  PutU64(out, active_sets_.size());
  for (const auto& [node, set] : active_sets_) {
    PutU32(out, node);
    std::vector<uint8_t> set_bytes = set.Serialize();
    PutU64(out, set_bytes.size());
    PutBytes(out, set_bytes.data(), set_bytes.size());
  }
  pending_log_.clear();
  return out;
}

ObjectKeyGenerator ObjectKeyGenerator::Recover(
    const std::vector<uint8_t>& checkpoint,
    const std::vector<KeygenLogRecord>& log) {
  return Recover(checkpoint, log, Options());
}

ObjectKeyGenerator ObjectKeyGenerator::Recover(
    const std::vector<uint8_t>& checkpoint,
    const std::vector<KeygenLogRecord>& log, Options options) {
  ObjectKeyGenerator gen(options);
  MutexLock lock(&gen.mu_);
  if (!checkpoint.empty()) {
    ByteReader reader(checkpoint);
    gen.next_key_ = reader.GetU64();
    uint64_t n = reader.GetU64();
    for (uint64_t i = 0; i < n; ++i) {
      NodeId node = reader.GetU32();
      uint64_t len = reader.GetU64();
      std::vector<uint8_t> set_bytes = reader.GetBytes(len);
      gen.active_sets_[node] = IntervalSet::Deserialize(set_bytes);
    }
  }
  // Replay the transaction log in order, as the coordinator does after the
  // checkpointed state is loaded (Table 1, clock 120).
  for (const KeygenLogRecord& rec : log) {
    switch (rec.type) {
      case KeygenLogRecord::Type::kAllocate:
        gen.active_sets_[rec.node].InsertRange(rec.begin, rec.end);
        gen.next_key_ = std::max(gen.next_key_, rec.end);
        break;
      case KeygenLogRecord::Type::kCommit: {
        auto it = gen.active_sets_.find(rec.node);
        if (it != gen.active_sets_.end()) {
          for (const auto& iv : rec.committed.Intervals()) {
            it->second.EraseRange(iv.begin, iv.end);
          }
        }
        break;
      }
    }
  }
  return gen;
}

NodeKeyCache::NodeKeyCache(RangeFetcher fetcher, Options options)
    : fetcher_(std::move(fetcher)),
      options_(options),
      next_request_size_(options.initial_range_size) {}

uint64_t NodeKeyCache::NextKey(double now) {
  MutexLock lock(&mu_);
  if (cursor_ >= range_.end) {
    // Adapt the request size to the observed consumption rate before
    // fetching: a node that burns through ranges quickly asks for bigger
    // ones (fewer coordinator RPCs); an idle node shrinks its footprint
    // (smaller active set to garbage collect after a crash).
    if (last_fetch_time_ >= 0) {
      double elapsed = now - last_fetch_time_;
      if (elapsed < options_.fast_exhaust_seconds) {
        next_request_size_ =
            std::min(options_.max_range_size, next_request_size_ * 2);
      } else if (elapsed > 10 * options_.fast_exhaust_seconds) {
        next_request_size_ =
            std::max(options_.min_range_size, next_request_size_ / 2);
      }
    }
    uint64_t request = next_request_size_;
    KeyRange fetched;
    {
      // The fetch is a coordinator RPC; release mu_ for its duration.
      MutexUnlock unlock(&mu_);
      fetched = fetcher_(request, now);
    }
    range_ = fetched;
    assert(!range_.empty() && "coordinator returned an empty key range");
    cursor_ = range_.begin;
    last_fetch_time_ = now;
    ++fetch_count_;
  }
  return cursor_++;
}

}  // namespace cloudiq
