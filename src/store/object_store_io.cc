#include "store/object_store_io.h"

#include <cstdio>

#include "common/random.h"

namespace cloudiq {

void ObjectStoreIo::set_telemetry(Telemetry* telemetry,
                                  uint32_t trace_pid) {
  telemetry_ = telemetry;
  trace_pid_ = trace_pid;
  if (telemetry == nullptr) {
    get_latency_ = put_latency_ = select_latency_ = nullptr;
    ledger_ = nullptr;
    profiler_ = nullptr;
    return;
  }
  get_latency_ = &telemetry->stats().histogram("io.get");
  put_latency_ = &telemetry->stats().histogram("io.put");
  select_latency_ = &telemetry->stats().histogram("io.select");
  ledger_ = &telemetry->ledger();
  profiler_ = &telemetry->profiler();
}

std::string ObjectStoreIo::StoreKey(uint64_t key) const {
  if (options_.hashed_prefixes) return FormatObjectKey(key);
  // Ablation: a single shared prefix funnels all requests into one
  // rate-limit bucket.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "data/%016llx",
                static_cast<unsigned long long>(key));
  return std::string(buf);
}

Status ObjectStoreIo::Put(uint64_t key, const std::vector<uint8_t>& frame,
                          SimTime start, SimTime* completion) {
  std::string store_key = StoreKey(key);
  SimTime t = start;
  for (int attempt = 0;; ++attempt) {
    SimTime nic_done = nic_->Transfer(frame.size(), t);
    if (profiler_ != nullptr) {
      profiler_->Charge(WaitClass::kNetworkTransfer, t, nic_done);
    }
    Status st = store_->Put(store_key, frame, nic_done, completion);
    if (st.ok()) {
      if (put_latency_ != nullptr) put_latency_->Record(*completion - start);
      if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
        telemetry_->tracer().CompleteSpan(trace_pid_, kTrackStoreIo, "io",
                                          "put " + store_key, start,
                                          *completion);
      }
      return st;
    }
    ++stats_.transient_retries;
    if (ledger_ != nullptr) ledger_->RecordRetry(/*not_found=*/false);
    if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
      telemetry_->tracer().Instant(trace_pid_, kTrackStoreIo, "io",
                                   "transient retry " + store_key,
                                   *completion);
    }
    if (attempt >= options_.max_transient_retries) {
      // §4: "after a pre-determined number of failures of the same page,
      // the transaction is rolled back."
      return Status::Aborted("PUT retries exhausted for key " + store_key);
    }
    t = *completion;
  }
}

Result<std::vector<uint8_t>> ObjectStoreIo::Get(uint64_t key, SimTime start,
                                                SimTime* completion) {
  std::string store_key = StoreKey(key);
  SimTime t = start;
  double backoff = options_.not_found_backoff;
  int not_found = 0;
  int transient = 0;
  for (;;) {
    Result<std::vector<uint8_t>> r = store_->Get(store_key, t, completion);
    if (r.ok()) {
      // NIC transfer of the downloaded bytes.
      SimTime store_done = *completion;
      *completion = nic_->Transfer(r.value().size(), store_done);
      if (profiler_ != nullptr) {
        profiler_->Charge(WaitClass::kNetworkTransfer, store_done,
                          *completion);
      }
      if (get_latency_ != nullptr) get_latency_->Record(*completion - start);
      if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
        telemetry_->tracer().CompleteSpan(trace_pid_, kTrackStoreIo, "io",
                                          "get " + store_key, start,
                                          *completion);
      }
      return r;
    }
    if (r.status().IsNotFound()) {
      // Eventual consistency: the one-and-only version of this object may
      // simply not be visible yet. Back off and retry (§3: "we have
      // modified the storage subsystem to retry until the object is
      // found, up to a configurable number of retries").
      if (++not_found > options_.max_not_found_retries) return r.status();
      ++stats_.not_found_retries;
      if (ledger_ != nullptr) ledger_->RecordRetry(/*not_found=*/true);
      if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
        telemetry_->tracer().Instant(trace_pid_, kTrackStoreIo, "io",
                                     "NOT_FOUND retry " + store_key,
                                     *completion);
      }
      t = *completion + backoff;
      if (profiler_ != nullptr) {
        profiler_->Charge(WaitClass::kThrottleBackoff, *completion, t);
      }
      backoff *= 2;
      continue;
    }
    if (++transient > options_.max_transient_retries) return r.status();
    ++stats_.transient_retries;
    if (ledger_ != nullptr) ledger_->RecordRetry(/*not_found=*/false);
    t = *completion;
  }
}

Result<std::vector<uint8_t>> ObjectStoreIo::Select(
    const std::vector<uint8_t>& request, SimTime start, SimTime* completion,
    uint64_t* bytes_scanned) {
  if (bytes_scanned != nullptr) *bytes_scanned = 0;
  SimTime t = start;
  double backoff = options_.not_found_backoff;
  int not_found = 0;
  int transient = 0;
  for (;;) {
    // The request itself crosses the NIC (it is tiny next to the pages
    // it spares).
    SimTime nic_done = nic_->Transfer(request.size(), t);
    if (profiler_ != nullptr) {
      profiler_->Charge(WaitClass::kNetworkTransfer, t, nic_done);
    }
    uint64_t scanned = 0;
    Result<std::vector<uint8_t>> r =
        store_->Select(request, nic_done, completion, &scanned);
    if (r.ok()) {
      SimTime store_done = *completion;
      *completion = nic_->Transfer(r.value().size(), store_done);
      if (profiler_ != nullptr) {
        profiler_->Charge(WaitClass::kNetworkTransfer, store_done,
                          *completion);
      }
      ++stats_.selects;
      stats_.select_request_bytes += request.size();
      stats_.select_returned_bytes += r.value().size();
      if (bytes_scanned != nullptr) *bytes_scanned = scanned;
      if (select_latency_ != nullptr) {
        select_latency_->Record(*completion - start);
      }
      if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
        telemetry_->tracer().CompleteSpan(trace_pid_, kTrackStoreIo, "io",
                                          "select", start, *completion);
      }
      return r;
    }
    if (r.status().IsNotFound()) {
      // A referenced page lost the §3 visibility race; back off and let
      // it become visible, exactly like a Get.
      if (++not_found > options_.max_not_found_retries) return r.status();
      ++stats_.not_found_retries;
      if (ledger_ != nullptr) ledger_->RecordRetry(/*not_found=*/true);
      if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
        telemetry_->tracer().Instant(trace_pid_, kTrackStoreIo, "io",
                                     "NOT_FOUND retry (select)",
                                     *completion);
      }
      t = *completion + backoff;
      if (profiler_ != nullptr) {
        profiler_->Charge(WaitClass::kThrottleBackoff, *completion, t);
      }
      backoff *= 2;
      continue;
    }
    if (r.status().IsNotSupported() || r.status().IsInvalidArgument()) {
      // No engine installed or the server cannot evaluate the request
      // (e.g. encrypted pages): not retryable — the caller falls back to
      // pulling pages.
      return r.status();
    }
    if (++transient > options_.max_transient_retries) return r.status();
    ++stats_.transient_retries;
    if (ledger_ != nullptr) ledger_->RecordRetry(/*not_found=*/false);
    t = *completion;
  }
}

bool ObjectStoreIo::Exists(uint64_t key, SimTime start,
                           SimTime* completion) {
  return store_->Exists(StoreKey(key), start, completion);
}

Status ObjectStoreIo::Delete(uint64_t key, SimTime start,
                             SimTime* completion) {
  return store_->Delete(StoreKey(key), start, completion);
}

}  // namespace cloudiq
