#include "store/freelist.h"

namespace cloudiq {

uint64_t Freelist::AllocateRun(uint32_t block_count) {
  // Next-fit: resume searching where the last allocation ended to keep the
  // scan amortized O(1) for append-heavy load workloads.
  uint64_t first = bitmap_.FindClearRun(alloc_cursor_, block_count);
  bitmap_.SetRange(first, first + block_count);
  alloc_cursor_ = first + block_count;
  return first;
}

void Freelist::FreeRun(uint64_t first_block, uint32_t block_count) {
  bitmap_.ClearRange(first_block, first_block + block_count);
  if (first_block < alloc_cursor_) alloc_cursor_ = first_block;
}

void Freelist::MarkUsed(uint64_t first_block, uint32_t block_count) {
  bitmap_.SetRange(first_block, first_block + block_count);
}

}  // namespace cloudiq
