#include "store/system_store.h"

#include "common/coding.h"

namespace cloudiq {

SystemStore::SystemStore(SimBlockVolume* volume) : volume_(volume) {}

Status SystemStore::Open(SimTime now, SimTime* completion) {
  return RefreshDirectory(now, completion);
}

Status SystemStore::RefreshDirectory(SimTime now, SimTime* completion) {
  directory_.clear();
  next_run_ = 1;
  *completion = now;
  Result<std::vector<uint8_t>> dir = volume_->Read(kDirectoryRun, now,
                                                   completion);
  if (!dir.ok()) {
    if (dir.status().IsNotFound()) return Status::Ok();  // fresh volume
    return dir.status();
  }
  ByteReader reader(dir.value());
  next_run_ = reader.GetU64();
  uint64_t n = reader.GetU64();
  for (uint64_t i = 0; i < n; ++i) {
    std::string name = reader.GetString();
    uint64_t run = reader.GetU64();
    directory_[name] = run;
  }
  if (reader.overflow()) return Status::Corruption("system directory");
  return Status::Ok();
}

Status SystemStore::PersistDirectory(SimTime now, SimTime* completion) {
  std::vector<uint8_t> bytes;
  PutU64(bytes, next_run_);
  PutU64(bytes, directory_.size());
  for (const auto& [name, run] : directory_) {
    PutString(bytes, name);
    PutU64(bytes, run);
  }
  return volume_->Write(kDirectoryRun, std::move(bytes), now, completion);
}

Status SystemStore::Put(const std::string& name,
                        const std::vector<uint8_t>& value, SimTime now,
                        SimTime* completion) {
  CLOUDIQ_RETURN_IF_ERROR(RefreshDirectory(now, completion));
  now = *completion;
  auto it = directory_.find(name);
  bool new_entry = it == directory_.end();
  uint64_t run = new_entry ? next_run_++ : it->second;
  CLOUDIQ_RETURN_IF_ERROR(volume_->Write(run, value, now, completion));
  if (new_entry) {
    directory_[name] = run;
    return PersistDirectory(*completion, completion);
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> SystemStore::Get(const std::string& name,
                                              SimTime now,
                                              SimTime* completion) {
  CLOUDIQ_RETURN_IF_ERROR(RefreshDirectory(now, completion));
  now = *completion;
  auto it = directory_.find(name);
  if (it == directory_.end()) return Status::NotFound(name);
  return volume_->Read(it->second, now, completion);
}

Status SystemStore::Delete(const std::string& name, SimTime now,
                           SimTime* completion) {
  CLOUDIQ_RETURN_IF_ERROR(RefreshDirectory(now, completion));
  now = *completion;
  auto it = directory_.find(name);
  if (it == directory_.end()) return Status::Ok();
  CLOUDIQ_RETURN_IF_ERROR(volume_->Free(it->second, now, completion));
  directory_.erase(it);
  return PersistDirectory(*completion, completion);
}

std::vector<std::string> SystemStore::List() const {
  std::vector<std::string> names;
  names.reserve(directory_.size());
  for (const auto& [name, run] : directory_) names.push_back(name);
  return names;
}

uint64_t SystemStore::StoredBytes() const { return volume_->StoredBytes(); }

}  // namespace cloudiq
