#include "store/storage.h"

#include <cassert>

#include "store/page_codec.h"

namespace cloudiq {
namespace {

// Cheap deterministic keystream for the encryption pass-through (§4): the
// simulation stands in for AES-CTR; the property under test is that bytes
// at rest (OCM disk and object store) never equal the plaintext frame.
void XorKeystream(std::vector<uint8_t>& data, uint64_t seed, uint64_t key) {
  uint64_t state = seed ^ (key * 0x9e3779b97f4a7c15ULL);
  uint64_t word = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (i % 8 == 0) {
      state += 0x9e3779b97f4a7c15ULL;
      word = state;
      word = (word ^ (word >> 30)) * 0xbf58476d1ce4e5b9ULL;
      word = (word ^ (word >> 27)) * 0x94d049bb133111ebULL;
      word ^= word >> 31;
    }
    data[i] ^= static_cast<uint8_t>(word >> ((i % 8) * 8));
  }
}

}  // namespace

StorageSubsystem::StorageSubsystem(NodeContext* node, SimObjectStore* store,
                                   Options options)
    : node_(node),
      options_(options),
      object_io_(store, &node->nic(), options.object_io) {
  object_io_.set_telemetry(&node->telemetry(), node->trace_pid());
}

DbSpace* StorageSubsystem::CreateBlockDbSpace(const std::string& name,
                                              SimBlockVolume* volume,
                                              uint64_t page_size) {
  auto space = std::make_unique<DbSpace>();
  space->id = next_dbspace_id_++;
  space->name = name;
  space->type = DbSpace::Type::kBlock;
  space->page_size = page_size;
  space->volume = volume;
  DbSpace* ptr = space.get();
  dbspaces_[space->id] = std::move(space);
  return ptr;
}

DbSpace* StorageSubsystem::CreateCloudDbSpace(const std::string& name,
                                              uint64_t page_size) {
  auto space = std::make_unique<DbSpace>();
  space->id = next_dbspace_id_++;
  space->name = name;
  space->type = DbSpace::Type::kCloud;
  space->page_size = page_size;
  DbSpace* ptr = space.get();
  dbspaces_[space->id] = std::move(space);
  return ptr;
}

DbSpace* StorageSubsystem::FindDbSpace(const std::string& name) {
  for (auto& [id, space] : dbspaces_) {
    if (space->name == name) return space.get();
  }
  return nullptr;
}

DbSpace* StorageSubsystem::dbspace(uint32_t id) {
  auto it = dbspaces_.find(id);
  return it == dbspaces_.end() ? nullptr : it->second.get();
}

std::vector<uint8_t> StorageSubsystem::MaybeEncrypt(
    std::vector<uint8_t> frame, uint64_t key) const {
  if (options_.encrypt_pages) {
    XorKeystream(frame, options_.encryption_seed, key);
  }
  return frame;
}

Result<StorageSubsystem::PreparedWrite> StorageSubsystem::PrepareWrite(
    DbSpace* space, const std::vector<uint8_t>& payload,
    CloudCache::WriteMode mode, uint64_t txn_id) {
  if (payload.size() > space->page_size) {
    return Status::InvalidArgument("payload exceeds page size");
  }
  std::vector<uint8_t> frame = EncodePage(payload);

  PreparedWrite prepared;
  prepared.status = std::make_shared<Status>();
  prepared.frame_bytes = frame.size();
  stats_.raw_bytes_written += payload.size();
  stats_.bytes_written += frame.size();
  ++stats_.pages_written;

  if (space->is_cloud()) {
    assert(key_source_ && "cloud dbspace requires a key source");
    // "Never write an object twice": every flush gets a fresh key, even a
    // re-flush of the same logical page within one transaction (§3.1).
    uint64_t key = key_source_(node_->clock().now());
    if (options_.never_write_twice) {
      bool inserted = written_keys_.insert(key).second;
      if (!inserted) {
        return Status::AlreadyExists(
            "object key handed out twice; key generator violated "
            "uniqueness");
      }
    }
    prepared.loc = PhysicalLoc::ForCloudKey(key);
    std::vector<uint8_t> stored = MaybeEncrypt(std::move(frame), key);

    CloudCache* cache = cloud_cache_;
    ObjectStoreIo* io = &object_io_;
    auto status = prepared.status;
    prepared.op = [cache, io, key, mode, txn_id,
                   stored = std::move(stored), status](SimTime start) {
      SimTime done = start;
      if (cache != nullptr) {
        *status = cache->Write(key, stored, mode, txn_id, start, &done);
      } else {
        *status = io->Put(key, stored, start, &done);
      }
      return done;
    };
  } else {
    uint32_t block_count = static_cast<uint32_t>(
        (frame.size() + space->block_size() - 1) / space->block_size());
    if (block_count == 0) block_count = 1;
    assert(block_count <= kBlocksPerPage);
    uint64_t first_block = space->freelist.AllocateRun(block_count);
    prepared.loc = PhysicalLoc::ForBlocks(first_block, block_count);

    SimBlockVolume* volume = space->volume;
    auto status = prepared.status;
    prepared.op = [volume, first_block, frame = std::move(frame),
                   status](SimTime start) {
      SimTime done = start;
      *status = volume->Write(first_block, frame, start, &done);
      return done;
    };
  }
  return prepared;
}

Result<PhysicalLoc> StorageSubsystem::WritePage(
    DbSpace* space, const std::vector<uint8_t>& payload,
    CloudCache::WriteMode mode, uint64_t txn_id) {
  CLOUDIQ_ASSIGN_OR_RETURN(PreparedWrite prepared,
                           PrepareWrite(space, payload, mode, txn_id));
  node_->io().RunOne(prepared.op);
  if (!prepared.status->ok()) return *prepared.status;
  return prepared.loc;
}

IoScheduler::Op StorageSubsystem::MakeReadOp(DbSpace* space, PhysicalLoc loc,
                                             std::shared_ptr<ReadSlot> out) {
  ++stats_.pages_read;
  // Branch on the *location*, not the dbspace: a page set may carry
  // locations from several dbspaces, and the location encoding is
  // authoritative (§3.1: representation distinguished by numeric range).
  if (loc.is_cloud()) {
    uint64_t key = loc.cloud_key();
    CloudCache* cache = cloud_cache_;
    ObjectStoreIo* io = &object_io_;
    bool encrypted = options_.encrypt_pages;
    uint64_t seed = options_.encryption_seed;
    Stats* stats = &stats_;
    return [cache, io, key, encrypted, seed, out, stats](SimTime start) {
      SimTime done = start;
      Result<std::vector<uint8_t>> frame =
          cache != nullptr ? cache->Read(key, start, &done)
                           : io->Get(key, start, &done);
      if (!frame.ok()) {
        out->status = frame.status();
        return done;
      }
      std::vector<uint8_t> bytes = std::move(frame).value();
      if (encrypted) XorKeystream(bytes, seed, key);
      Result<std::vector<uint8_t>> payload = DecodePage(bytes);
      if (!payload.ok()) {
        out->status = payload.status();
        return done;
      }
      stats->bytes_read += bytes.size();
      out->status = Status::Ok();
      out->payload = std::move(payload).value();
      return done;
    };
  }
  SimBlockVolume* volume = space->volume;
  uint64_t first_block = loc.first_block();
  Stats* stats = &stats_;
  return [volume, first_block, out, stats](SimTime start) {
    SimTime done = start;
    Result<std::vector<uint8_t>> frame =
        volume->Read(first_block, start, &done);
    if (!frame.ok()) {
      out->status = frame.status();
      return done;
    }
    Result<std::vector<uint8_t>> payload = DecodePage(frame.value());
    if (!payload.ok()) {
      out->status = payload.status();
      return done;
    }
    stats->bytes_read += frame.value().size();
    out->status = Status::Ok();
    out->payload = std::move(payload).value();
    return done;
  };
}

Result<std::vector<uint8_t>> StorageSubsystem::ReadPage(DbSpace* space,
                                                        PhysicalLoc loc) {
  auto slot = std::make_shared<ReadSlot>();
  IoScheduler::Op op = MakeReadOp(space, loc, slot);
  node_->io().RunOne(op);
  if (!slot->status.ok()) return slot->status;
  return std::move(slot->payload);
}

std::vector<DbSpace*> StorageSubsystem::AllDbSpaces() {
  std::vector<DbSpace*> spaces;
  spaces.reserve(dbspaces_.size());
  for (auto& [id, space] : dbspaces_) spaces.push_back(space.get());
  return spaces;
}

Status StorageSubsystem::DeletePage(DbSpace* space, PhysicalLoc loc,
                                    bool defer_allowed) {
  ++stats_.pages_deleted;
  if (loc.is_cloud()) {
    uint64_t key = loc.cloud_key();
    if (defer_allowed && delete_interceptor_ &&
        delete_interceptor_(key)) {
      // Ownership transferred to the snapshot manager (§5): the page
      // outlives its MVCC version until the retention period expires.
      return Status::Ok();
    }
    if (cloud_cache_ != nullptr) cloud_cache_->Erase(key);
    SimTime done = 0;
    return object_io_.Delete(key, node_->clock().now(), &done);
  }
  space->freelist.FreeRun(loc.first_block(), loc.block_count());
  SimTime done = 0;
  return space->volume->Free(loc.first_block(), node_->clock().now(),
                             &done);
}

Status StorageSubsystem::FlushForCommit(uint64_t txn_id) {
  if (cloud_cache_ == nullptr) return Status::Ok();
  SimTime done = 0;
  Status st =
      cloud_cache_->FlushForCommit(txn_id, node_->clock().now(), &done);
  node_->clock().AdvanceTo(done);
  return st;
}

Status StorageSubsystem::OverwriteCloudPage(
    DbSpace* space, PhysicalLoc loc, const std::vector<uint8_t>& payload) {
  if (options_.never_write_twice) {
    return Status::FailedPrecondition(
        "never-write-twice policy forbids in-place object updates");
  }
  if (!space->is_cloud() || !loc.is_cloud()) {
    return Status::InvalidArgument("OverwriteCloudPage needs a cloud page");
  }
  std::vector<uint8_t> frame =
      MaybeEncrypt(EncodePage(payload), loc.cloud_key());
  SimTime done = 0;
  return object_io_.Put(loc.cloud_key(), frame, node_->clock().now(), &done);
}

}  // namespace cloudiq
