#ifndef CLOUDIQ_STORE_CLOUD_CACHE_H_
#define CLOUDIQ_STORE_CLOUD_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sim/sim_clock.h"

namespace cloudiq {

// Interface the storage subsystem uses to reach cloud dbspace objects when
// a second-layer cache is configured. The Object Cache Manager (src/ocm)
// is the production implementation; its absence must not affect
// correctness (§4: "the OCM is intended solely as a performance
// optimization"), which tests verify by running every workload both ways.
class CloudCache {
 public:
  // Matches the OCM's two write modes (§4): write-back is used for
  // cache-pressure evictions during the churn phase (synchronous to local
  // SSD, asynchronous to the object store); write-through for the commit
  // phase (synchronous to the object store, asynchronous local caching).
  enum class WriteMode { kWriteBack, kWriteThrough };

  virtual ~CloudCache() = default;

  // Reads the object for `key`, from local cache if present, otherwise
  // read-through from the object store (with NOT_FOUND retry).
  virtual Result<std::vector<uint8_t>> Read(uint64_t key, SimTime start,
                                            SimTime* completion) = 0;

  // Whether a Read of `key` would be served locally right now. A pure
  // probe for plan-time cost estimation: no LRU touch, no stats, no
  // simulated I/O — the answer is sim-visible state only, so planning
  // stays deterministic and free. Defaults to cold.
  virtual bool Resident(uint64_t /*key*/) const { return false; }

  // Writes the object for `key` under the given mode on behalf of
  // transaction `txn_id`.
  virtual Status Write(uint64_t key, std::vector<uint8_t> data,
                       WriteMode mode, uint64_t txn_id, SimTime start,
                       SimTime* completion) = 0;

  // Drops any cached copy (page deleted by GC).
  virtual void Erase(uint64_t key) = 0;

  // The FlushForCommit signal: promote `txn_id`'s queued background writes
  // to the head of the write queue and execute them through to the object
  // store; subsequent writes from this transaction use write-through.
  virtual Status FlushForCommit(uint64_t txn_id, SimTime start,
                                SimTime* completion) = 0;

  // The transaction rolled back: queued background uploads for it are
  // dropped and locally cached pages that never reached the object store
  // are discarded (they must not linger in the cache, §4).
  virtual void AbortTxn(uint64_t txn_id) = 0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_STORE_CLOUD_CACHE_H_
