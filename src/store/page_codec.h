#ifndef CLOUDIQ_STORE_PAGE_CODEC_H_
#define CLOUDIQ_STORE_PAGE_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace cloudiq {

// Page-level compression and integrity framing (§1: "SAP IQ employs
// page-level compression to further reduce the amount of I/O").
//
// The codec wraps a page payload as:
//   [magic u32][flags u32][raw_size u64][checksum u64][body...]
// where body is either the raw payload or an RLE-compressed form,
// whichever is smaller. Column payloads are already dictionary/n-bit
// encoded upstream, so the page codec mainly squeezes zero padding and
// repetitive runs — which is also where most of the paper's 512 KB pages
// win their 1–16-block variability.

// Encodes `payload`; the result is self-describing.
std::vector<uint8_t> EncodePage(const std::vector<uint8_t>& payload);

// Decodes a frame produced by EncodePage, verifying magic and checksum.
Result<std::vector<uint8_t>> DecodePage(const std::vector<uint8_t>& frame);

// Raw RLE primitives (exposed for tests).
std::vector<uint8_t> RleCompress(const std::vector<uint8_t>& in);
Result<std::vector<uint8_t>> RleDecompress(const std::vector<uint8_t>& in,
                                           uint64_t expected_size);

}  // namespace cloudiq

#endif  // CLOUDIQ_STORE_PAGE_CODEC_H_
