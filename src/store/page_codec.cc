#include "store/page_codec.h"

#include <cstring>

#include "common/coding.h"

namespace cloudiq {
namespace {

constexpr uint32_t kPageMagic = 0x49515047;  // "IQPG"
constexpr uint32_t kFlagRle = 1u << 0;
constexpr size_t kHeaderSize = 4 + 4 + 8 + 8;

}  // namespace

std::vector<uint8_t> RleCompress(const std::vector<uint8_t>& in) {
  // Byte-oriented RLE: a run of >= 4 equal bytes becomes
  // [0x00 marker][byte][u32 length]; literals are chunked as
  // [0x01 marker][u32 length][bytes...].
  std::vector<uint8_t> out;
  out.reserve(in.size() / 4 + 16);
  size_t i = 0;
  while (i < in.size()) {
    size_t run = 1;
    while (i + run < in.size() && in[i + run] == in[i] && run < 0xffffffff) {
      ++run;
    }
    if (run >= 4) {
      out.push_back(0x00);
      out.push_back(in[i]);
      uint32_t len = static_cast<uint32_t>(run);
      out.insert(out.end(), reinterpret_cast<uint8_t*>(&len),
                 reinterpret_cast<uint8_t*>(&len) + 4);
      i += run;
    } else {
      // Gather literals until the next long run.
      size_t lit_start = i;
      while (i < in.size()) {
        size_t r = 1;
        while (i + r < in.size() && in[i + r] == in[i] && r < 4) ++r;
        if (r >= 4 && i + 3 < in.size() && in[i + 3] == in[i]) break;
        i += 1;
      }
      uint32_t len = static_cast<uint32_t>(i - lit_start);
      out.push_back(0x01);
      out.insert(out.end(), reinterpret_cast<uint8_t*>(&len),
                 reinterpret_cast<uint8_t*>(&len) + 4);
      out.insert(out.end(), in.begin() + lit_start, in.begin() + i);
    }
  }
  return out;
}

Result<std::vector<uint8_t>> RleDecompress(const std::vector<uint8_t>& in,
                                           uint64_t expected_size) {
  std::vector<uint8_t> out;
  out.reserve(expected_size);
  size_t i = 0;
  while (i < in.size()) {
    uint8_t marker = in[i++];
    if (marker == 0x00) {
      if (i + 5 > in.size()) return Status::Corruption("truncated RLE run");
      uint8_t value = in[i++];
      uint32_t len;
      std::memcpy(&len, in.data() + i, 4);
      i += 4;
      out.insert(out.end(), len, value);
    } else if (marker == 0x01) {
      if (i + 4 > in.size()) return Status::Corruption("truncated literal");
      uint32_t len;
      std::memcpy(&len, in.data() + i, 4);
      i += 4;
      if (i + len > in.size()) return Status::Corruption("literal overrun");
      out.insert(out.end(), in.begin() + i, in.begin() + i + len);
      i += len;
    } else {
      return Status::Corruption("bad RLE marker");
    }
  }
  if (out.size() != expected_size) {
    return Status::Corruption("RLE size mismatch");
  }
  return out;
}

std::vector<uint8_t> EncodePage(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> compressed = RleCompress(payload);
  bool use_rle = compressed.size() < payload.size();
  const std::vector<uint8_t>& body = use_rle ? compressed : payload;

  std::vector<uint8_t> frame;
  frame.reserve(kHeaderSize + body.size());
  PutU32(frame, kPageMagic);
  PutU32(frame, use_rle ? kFlagRle : 0);
  PutU64(frame, payload.size());
  PutU64(frame, Checksum64(payload.data(), payload.size()));
  PutBytes(frame, body.data(), body.size());
  return frame;
}

Result<std::vector<uint8_t>> DecodePage(const std::vector<uint8_t>& frame) {
  if (frame.size() < kHeaderSize) {
    return Status::Corruption("page frame too small");
  }
  ByteReader reader(frame);
  if (reader.GetU32() != kPageMagic) {
    return Status::Corruption("bad page magic");
  }
  uint32_t flags = reader.GetU32();
  uint64_t raw_size = reader.GetU64();
  uint64_t checksum = reader.GetU64();

  std::vector<uint8_t> body(frame.begin() + kHeaderSize, frame.end());
  std::vector<uint8_t> payload;
  if (flags & kFlagRle) {
    CLOUDIQ_ASSIGN_OR_RETURN(payload, RleDecompress(body, raw_size));
  } else {
    payload = std::move(body);
    if (payload.size() != raw_size) {
      return Status::Corruption("raw page size mismatch");
    }
  }
  if (Checksum64(payload.data(), payload.size()) != checksum) {
    return Status::Corruption("page checksum mismatch");
  }
  return payload;
}

}  // namespace cloudiq
