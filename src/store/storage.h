#ifndef CLOUDIQ_STORE_STORAGE_H_
#define CLOUDIQ_STORE_STORAGE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sim/block_volume.h"
#include "sim/environment.h"
#include "sim/io_scheduler.h"
#include "store/cloud_cache.h"
#include "store/freelist.h"
#include "store/object_store_io.h"
#include "store/physical_loc.h"

namespace cloudiq {

// A dbspace: a named collection of storage the engine can place pages on
// (§2). Conventional dbspaces sit on block volumes and allocate from a
// freelist; cloud dbspaces sit on the object store and have no freelist at
// all — a flushed page simply takes a fresh object key.
struct DbSpace {
  enum class Type { kBlock, kCloud };

  uint32_t id = 0;
  std::string name;
  Type type = Type::kBlock;
  uint64_t page_size = 512 * 1024;

  SimBlockVolume* volume = nullptr;  // kBlock only
  Freelist freelist;                 // kBlock only

  uint64_t block_size() const { return page_size / kBlocksPerPage; }
  bool is_cloud() const { return type == Type::kCloud; }
};

// Per-node storage subsystem: the single point through which pages reach
// persistent media. Implements the paper's §3 storage rules:
//
//  * pages on cloud dbspaces are stored directly as objects;
//  * an object key is never written twice (enforced here, checked by
//    tests against the object store's overwrite counter);
//  * reads retry on NOT_FOUND to ride out eventual-consistency races;
//  * when a CloudCache (the OCM) is attached, cloud traffic is routed
//    through it; correctness is identical without it.
class StorageSubsystem {
 public:
  struct Options {
    bool encrypt_pages = false;
    uint64_t encryption_seed = 0x5ec2e7;
    // If false (ablation), a page may be rewritten in place under its old
    // key on flush — demonstrating the stale-read anomaly the paper's
    // design rules out.
    bool never_write_twice = true;
    ObjectStoreIo::Options object_io;
  };

  // `node` supplies the clock/executor/NIC; `store` is the shared object
  // store. The key source yields fresh object keys (a NodeKeyCache bound
  // to the coordinator).
  StorageSubsystem(NodeContext* node, SimObjectStore* store)
      : StorageSubsystem(node, store, Options()) {}
  StorageSubsystem(NodeContext* node, SimObjectStore* store,
                   Options options);

  // --- dbspace management ---------------------------------------------
  DbSpace* CreateBlockDbSpace(const std::string& name,
                              SimBlockVolume* volume, uint64_t page_size);
  DbSpace* CreateCloudDbSpace(const std::string& name, uint64_t page_size);
  DbSpace* FindDbSpace(const std::string& name);
  DbSpace* dbspace(uint32_t id);

  // --- wiring -----------------------------------------------------------
  using KeySource = std::function<uint64_t(double now)>;
  void set_key_source(KeySource source) { key_source_ = std::move(source); }

  void set_cloud_cache(CloudCache* cache) { cloud_cache_ = cache; }

  // When set, deletion of a cloud page is offered to the interceptor
  // first; returning true means ownership transferred (the snapshot
  // manager will delete it when its retention expires, §5).
  using DeleteInterceptor = std::function<bool(uint64_t object_key)>;
  void set_delete_interceptor(DeleteInterceptor f) {
    delete_interceptor_ = std::move(f);
  }

  // --- page I/O ----------------------------------------------------------
  // A prepared page write: the location is assigned eagerly (fresh object
  // key or freelist run) so the caller can update its blockmap; `op`
  // performs the device I/O when executed (directly or in a parallel
  // batch). `status` is filled by the op.
  struct PreparedWrite {
    PhysicalLoc loc;
    uint64_t frame_bytes = 0;
    IoScheduler::Op op;
    std::shared_ptr<Status> status;
  };

  // Encodes (compresses/checksums/encrypts) `payload` and prepares its
  // write. `mode` selects the OCM path for cloud pages; `txn_id`
  // associates queued background work with a transaction.
  Result<PreparedWrite> PrepareWrite(DbSpace* space,
                                     const std::vector<uint8_t>& payload,
                                     CloudCache::WriteMode mode,
                                     uint64_t txn_id);

  // Convenience: prepare + run synchronously on the node's clock.
  Result<PhysicalLoc> WritePage(DbSpace* space,
                                const std::vector<uint8_t>& payload,
                                CloudCache::WriteMode mode, uint64_t txn_id);

  // Result slot for batched reads.
  struct ReadSlot {
    Status status = Status::NotFound("pending");
    std::vector<uint8_t> payload;
  };

  IoScheduler::Op MakeReadOp(DbSpace* space, PhysicalLoc loc,
                             std::shared_ptr<ReadSlot> out);

  Result<std::vector<uint8_t>> ReadPage(DbSpace* space, PhysicalLoc loc);

  // Deletes the stored page (GC). For cloud pages, the snapshot
  // interceptor may take ownership instead of deleting when
  // `defer_allowed` is true; rollback deletes pass false — pages of
  // rolled-back transactions were never part of a committed version, so
  // no snapshot can reference them.
  Status DeletePage(DbSpace* space, PhysicalLoc loc,
                    bool defer_allowed = true);

  // Flushes a committing transaction's queued OCM work (no-op without an
  // OCM).
  Status FlushForCommit(uint64_t txn_id);

  // Rewrite-in-place under an existing key. Only callable when
  // never_write_twice is disabled; exists for the write-twice ablation.
  Status OverwriteCloudPage(DbSpace* space, PhysicalLoc loc,
                            const std::vector<uint8_t>& payload);

  struct Stats {
    uint64_t pages_written = 0;
    uint64_t pages_read = 0;
    uint64_t pages_deleted = 0;
    uint64_t bytes_written = 0;  // post-compression frame bytes
    uint64_t bytes_read = 0;
    uint64_t raw_bytes_written = 0;  // pre-compression
  };
  const Stats& stats() const { return stats_; }

  NodeContext* node() { return node_; }
  ObjectStoreIo& object_io() { return object_io_; }
  CloudCache* cloud_cache() { return cloud_cache_; }
  std::vector<DbSpace*> AllDbSpaces();
  const Options& options() const { return options_; }

 private:
  std::vector<uint8_t> MaybeEncrypt(std::vector<uint8_t> frame,
                                    uint64_t key) const;

  NodeContext* node_;
  Options options_;
  ObjectStoreIo object_io_;
  KeySource key_source_;
  CloudCache* cloud_cache_ = nullptr;
  DeleteInterceptor delete_interceptor_;
  std::map<uint32_t, std::unique_ptr<DbSpace>> dbspaces_;
  uint32_t next_dbspace_id_ = 1;
  // Keys this node has written; guards the never-write-twice invariant.
  std::unordered_set<uint64_t> written_keys_;
  Stats stats_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_STORE_STORAGE_H_
