#ifndef CLOUDIQ_STORE_FREELIST_H_
#define CLOUDIQ_STORE_FREELIST_H_

#include <cstdint>
#include <vector>

#include "common/bitmap.h"

namespace cloudiq {

// Block allocator for conventional dbspaces: a bitmap with one bit per
// block — set means in use (§2 of the paper). Cloud dbspaces have *no*
// freelist: "the notion of free blocks does not apply"; pages there are
// addressed by freshly generated object keys. The shrunken system-dbspace
// freelist is what makes cloud snapshots near-instantaneous (§5).
class Freelist {
 public:
  Freelist() = default;

  // Allocates a contiguous run of `block_count` clear blocks and marks them
  // used. Returns the first block number.
  uint64_t AllocateRun(uint32_t block_count);

  // Releases a run previously returned by AllocateRun.
  void FreeRun(uint64_t first_block, uint32_t block_count);

  // Marks a run used without searching — used when crash recovery replays
  // RB bitmaps onto the checkpointed freelist.
  void MarkUsed(uint64_t first_block, uint32_t block_count);

  bool IsUsed(uint64_t block) const { return bitmap_.Test(block); }
  uint64_t UsedBlocks() const { return bitmap_.CountSet(); }

  // Serialized size is what a checkpoint must write; on cloud-only
  // databases this stays tiny, which §5 exploits.
  std::vector<uint8_t> Serialize() const { return bitmap_.Serialize(); }
  static Freelist Deserialize(const std::vector<uint8_t>& bytes) {
    Freelist fl;
    fl.bitmap_ = Bitmap::Deserialize(bytes);
    return fl;
  }

  const Bitmap& bitmap() const { return bitmap_; }
  Bitmap* mutable_bitmap() { return &bitmap_; }

 private:
  Bitmap bitmap_;
  uint64_t alloc_cursor_ = 0;  // next-fit search start
};

}  // namespace cloudiq

#endif  // CLOUDIQ_STORE_FREELIST_H_
