#ifndef CLOUDIQ_STORE_SYSTEM_STORE_H_
#define CLOUDIQ_STORE_SYSTEM_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sim/block_volume.h"
#include "sim/sim_clock.h"

namespace cloudiq {

// Durable key-value store over the *system* dbspace (a strongly consistent
// block volume; §3.1: "the identity object is part of the system dbspace,
// which is always stored on devices with strong consistency guarantees;
// therefore, it can be updated in-place").
//
// Holds everything the engine must be able to update in place and recover
// after a crash: identity objects / the system catalog, checkpoint blocks,
// the transaction log, committed RF/RB bitmaps and the key generator's
// checkpoints. A directory run at block 0 maps names to runs; reopening the
// same volume (simulated node restart) recovers the full contents.
class SystemStore {
 public:
  // Opens (or initializes) the store on `volume`. Each node's clock is
  // passed per call so multiplex nodes can share one volume.
  explicit SystemStore(SimBlockVolume* volume);

  // Loads the directory from the volume; call after a simulated restart.
  Status Open(SimTime now, SimTime* completion);

  // Writes (or overwrites, in place) the blob under `name`.
  Status Put(const std::string& name, const std::vector<uint8_t>& value,
             SimTime now, SimTime* completion);

  Result<std::vector<uint8_t>> Get(const std::string& name, SimTime now,
                                   SimTime* completion);

  Status Delete(const std::string& name, SimTime now, SimTime* completion);

  bool Contains(const std::string& name) const {
    return directory_.count(name) > 0;
  }

  // Names currently stored (sorted).
  std::vector<std::string> List() const;

  // Bytes held, directory included — the "system dbspace size" that §5's
  // near-instant snapshot argument depends on staying small.
  uint64_t StoredBytes() const;

 private:
  Status PersistDirectory(SimTime now, SimTime* completion);
  // Re-reads the directory run so that multiple SystemStore instances
  // over one shared (EFS) volume stay coherent: another multiplex node
  // may have added names since we last looked.
  Status RefreshDirectory(SimTime now, SimTime* completion);

  static constexpr uint64_t kDirectoryRun = 0;

  SimBlockVolume* volume_;
  std::map<std::string, uint64_t> directory_;  // name -> run id
  uint64_t next_run_ = 1;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_STORE_SYSTEM_STORE_H_
