#ifndef CLOUDIQ_STORE_OBJECT_STORE_IO_H_
#define CLOUDIQ_STORE_OBJECT_STORE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sim/nic.h"
#include "sim/object_store.h"
#include "sim/sim_clock.h"
#include "telemetry/telemetry.h"

namespace cloudiq {

// One node's channel to the object store: routes every request through the
// node's NIC, maps 64-bit object keys to full store keys (hashed prefix +
// key, §3.1), and implements the retry policies of §3/§4:
//   - GET NOT_FOUND (eventual-consistency race on a never-rewritten key)
//     is retried with backoff up to a configurable limit;
//   - transient PUT/GET failures are retried a fixed number of times, after
//     which the caller rolls the transaction back.
class ObjectStoreIo {
 public:
  struct Options {
    int max_not_found_retries = 14;
    double not_found_backoff = 0.02;  // seconds, doubled each retry
    int max_transient_retries = 5;
    // Ablation knob: disable prefix hashing so that all keys share one
    // rate-limit bucket (bench_ablation_prefixing).
    bool hashed_prefixes = true;
  };

  ObjectStoreIo(SimObjectStore* store, Nic* nic)
      : ObjectStoreIo(store, nic, Options()) {}
  ObjectStoreIo(SimObjectStore* store, Nic* nic, Options options)
      : store_(store), nic_(nic), options_(options) {}

  // Uploads `frame` under `key`. Returns Aborted after exhausting
  // transient-failure retries.
  Status Put(uint64_t key, const std::vector<uint8_t>& frame, SimTime start,
             SimTime* completion);

  // Downloads the object, retrying NOT_FOUND (visibility races) and
  // transient failures. Returns NotFound only after the retry budget is
  // exhausted — which for a correctly keyed read means the object truly
  // does not exist.
  Result<std::vector<uint8_t>> Get(uint64_t key, SimTime start,
                                   SimTime* completion);

  // Near-data processing: ships a serialized NdpRequest to the store,
  // lets the server evaluate it, and downloads only the result. The
  // request travels over the NIC like an upload and the result like a
  // download — the whole point is that the result is a fraction of the
  // pages a pull would have moved. Retries NOT_FOUND (a referenced page
  // losing the visibility race) and transient failures exactly like Get.
  // `*bytes_scanned` (optional) reports the server-side scan volume.
  Result<std::vector<uint8_t>> Select(const std::vector<uint8_t>& request,
                                      SimTime start, SimTime* completion,
                                      uint64_t* bytes_scanned = nullptr);

  // Whether the store can evaluate Select at all (an NDP engine is
  // installed). Planners check this before building a request.
  bool SelectSupported() const { return store_->has_ndp_engine(); }

  // HEAD: true if the object currently exists (no retries — GC polling
  // treats "not visible" as "nothing to collect *now*"; idempotent
  // re-polls are the safety net).
  bool Exists(uint64_t key, SimTime start, SimTime* completion);

  Status Delete(uint64_t key, SimTime start, SimTime* completion);

  // Full store key for a 64-bit object key under the current prefix policy.
  std::string StoreKey(uint64_t key) const;

  struct Stats {
    uint64_t not_found_retries = 0;
    uint64_t transient_retries = 0;
    uint64_t selects = 0;
    uint64_t select_request_bytes = 0;   // NIC bytes up (requests)
    uint64_t select_returned_bytes = 0;  // NIC bytes down (results)
  };
  const Stats& stats() const { return stats_; }

  const Options& options() const { return options_; }

  // Wires telemetry for this node's channel: end-to-end latencies
  // (retries and NIC time included) land in "io.get"/"io.put"; retries
  // become instant events on the node's store-I/O track.
  void set_telemetry(Telemetry* telemetry, uint32_t trace_pid);

 private:
  SimObjectStore* store_;
  Nic* nic_;
  Options options_;
  Stats stats_;
  Telemetry* telemetry_ = nullptr;
  CostLedger* ledger_ = nullptr;
  StallProfiler* profiler_ = nullptr;
  uint32_t trace_pid_ = 0;
  Histogram* get_latency_ = nullptr;
  Histogram* put_latency_ = nullptr;
  Histogram* select_latency_ = nullptr;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_STORE_OBJECT_STORE_IO_H_
