#ifndef CLOUDIQ_STORE_PHYSICAL_LOC_H_
#define CLOUDIQ_STORE_PHYSICAL_LOC_H_

#include <cstdint>
#include <string>

namespace cloudiq {

// Object keys live in [2^63, 2^64); physical block numbers below 2^48.
// This split lets one 64-bit field — the blockmap's existing physical
// block number — address both conventional and cloud dbspaces with no file
// format change (§3.1 of the paper).
inline constexpr uint64_t kCloudKeyBase = uint64_t{1} << 63;
inline constexpr uint64_t kMaxBlockNumber = (uint64_t{1} << 48) - 1;

// Maximum blocks per page: a page is stored as 1–16 contiguous blocks
// (block size = page size / 16), depending on how well it compressed.
inline constexpr uint32_t kBlocksPerPage = 16;

// Physical address of a stored page: either a (first block, block count)
// run on a conventional dbspace, or an object key on a cloud dbspace.
// Encoded in a single 64-bit integer exactly as SAP IQ overloads the
// blockmap field:
//   [2^63, 2^64)          -> object key
//   bits 48..51           -> block count - 1
//   bits 0..47            -> first block number
class PhysicalLoc {
 public:
  PhysicalLoc() : encoded_(kInvalid) {}

  static PhysicalLoc ForCloudKey(uint64_t key) {
    PhysicalLoc loc;
    loc.encoded_ = key;
    return loc;
  }

  static PhysicalLoc ForBlocks(uint64_t first_block, uint32_t block_count) {
    PhysicalLoc loc;
    loc.encoded_ =
        first_block | (uint64_t{block_count - 1} << 48);
    return loc;
  }

  static PhysicalLoc FromEncoded(uint64_t encoded) {
    PhysicalLoc loc;
    loc.encoded_ = encoded;
    return loc;
  }

  bool valid() const { return encoded_ != kInvalid; }
  bool is_cloud() const { return valid() && encoded_ >= kCloudKeyBase; }

  uint64_t cloud_key() const { return encoded_; }
  uint64_t first_block() const { return encoded_ & kMaxBlockNumber; }
  uint32_t block_count() const {
    return static_cast<uint32_t>((encoded_ >> 48) & 0xf) + 1;
  }

  uint64_t encoded() const { return encoded_; }

  std::string ToString() const;

  bool operator==(const PhysicalLoc& o) const {
    return encoded_ == o.encoded_;
  }

 private:
  // All-ones is not a representable location (block count nibble aside,
  // block number 2^48-1 with count 16 would collide only if keys reached
  // 2^64-1, which the generator never hands out).
  static constexpr uint64_t kInvalid = ~uint64_t{0};

  uint64_t encoded_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_STORE_PHYSICAL_LOC_H_
