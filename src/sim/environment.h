#ifndef CLOUDIQ_SIM_ENVIRONMENT_H_
#define CLOUDIQ_SIM_ENVIRONMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/block_volume.h"
#include "sim/cost_model.h"
#include "sim/instance_profile.h"
#include "sim/io_scheduler.h"
#include "sim/local_ssd.h"
#include "sim/nic.h"
#include "sim/object_store.h"
#include "sim/sim_clock.h"
#include "sim/sim_executor.h"
#include "telemetry/telemetry.h"

namespace cloudiq {

class SimEnvironment;

// All simulated resources owned by one compute node: its own virtual
// timeline, NIC, local SSDs and background executor. Cluster-shared
// resources (the object store, network block volumes, the cost meter) live
// in SimEnvironment and are referenced from here.
class NodeContext {
 public:
  NodeContext(const InstanceProfile& profile, SimEnvironment* env);

  const InstanceProfile& profile() const { return profile_; }
  SimClock& clock() { return clock_; }
  SimExecutor& executor() { return executor_; }
  Nic& nic() { return nic_; }
  SimLocalSsd& ssd() { return ssd_; }
  IoScheduler& io() { return io_; }
  SimEnvironment& env() { return *env_; }
  // Cluster-shared telemetry (defined below SimEnvironment).
  Telemetry& telemetry();
  // Chrome-trace process id of this node (0 is the shared object store).
  uint32_t trace_pid() const { return trace_pid_; }

  // Maximum useful I/O stream width for this node. Bounded by vCPUs and by
  // the engine's intrinsic ~48-stream flush/prefetch pipeline limit (the
  // paper attributes the ~9 Gb/s NIC plateau on the 96-vCPU instance to
  // limitations tied to the fixed 512 KB page size).
  int IoWidth() const;

 private:
  InstanceProfile profile_;
  SimEnvironment* env_;
  uint32_t trace_pid_ = 0;
  SimClock clock_;
  SimExecutor executor_;
  Nic nic_;
  SimLocalSsd ssd_;
  IoScheduler io_;
};

// The simulated cloud: one object store, any number of network block
// volumes, a cluster cost meter, and the compute nodes.
class SimEnvironment {
 public:
  explicit SimEnvironment(ObjectStoreOptions store_options = {});

  SimObjectStore& object_store() { return object_store_; }
  CostMeter& cost_meter() { return cost_meter_; }
  Telemetry& telemetry() { return telemetry_; }

  // Creates (or returns the existing) named block volume.
  SimBlockVolume& CreateVolume(const std::string& name,
                               BlockVolumeOptions options);
  SimBlockVolume* FindVolume(const std::string& name);

  // Adds a compute node; returns its index.
  NodeContext& AddNode(const InstanceProfile& profile);
  NodeContext& node(size_t i) { return *nodes_[i]; }
  size_t node_count() const { return nodes_.size(); }

 private:
  Telemetry telemetry_;  // before the object store, which points into it
  SimObjectStore object_store_;
  CostMeter cost_meter_;
  std::map<std::string, std::unique_ptr<SimBlockVolume>> volumes_;
  std::vector<std::unique_ptr<NodeContext>> nodes_;
};

inline Telemetry& NodeContext::telemetry() { return env_->telemetry(); }

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_ENVIRONMENT_H_
