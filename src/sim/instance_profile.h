#ifndef CLOUDIQ_SIM_INSTANCE_PROFILE_H_
#define CLOUDIQ_SIM_INSTANCE_PROFILE_H_

#include <string>

namespace cloudiq {

// Shape of a simulated compute instance (the EC2 instance types the paper's
// evaluation uses). The buffer manager sizes itself from `ram_gb` (half of
// RAM, per the paper's configuration), the OCM from `ssd_gb`, and the
// IoScheduler bounds I/O parallelism by `vcpus` and NIC bandwidth.
struct InstanceProfile {
  std::string name;
  int vcpus = 1;
  double ram_gb = 1;
  double ssd_gb = 0;        // total local NVMe capacity (RAID 0 across devs)
  int ssd_devices = 0;      // number of NVMe devices bundled
  double nic_gbps = 1;      // advertised NIC bandwidth ("up to")
  double hourly_usd = 0;

  // Instance types used in the paper's experiments.
  static InstanceProfile M5ad4xlarge();
  static InstanceProfile M5ad12xlarge();
  static InstanceProfile M5ad24xlarge();
  static InstanceProfile R5Large();
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_INSTANCE_PROFILE_H_
