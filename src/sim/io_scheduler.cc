#include "sim/io_scheduler.h"

#include <algorithm>
#include <cassert>

namespace cloudiq {

void IoScheduler::RunParallel(const std::vector<Op>& ops, int width) {
  if (ops.empty()) return;
  width = std::max(1, width);
  if (profiler_ != nullptr) profiler_->BeginParallel(clock_->now());
  std::vector<SimTime> workers(
      static_cast<size_t>(std::min<size_t>(width, ops.size())),
      clock_->now());
  for (const Op& op : ops) {
    // Assign to the earliest-free worker.
    size_t best = 0;
    for (size_t i = 1; i < workers.size(); ++i) {
      if (workers[i] < workers[best]) best = i;
    }
    SimTime start = workers[best];
    // Let background work scheduled before this op's start occupy devices
    // first, so asynchronous writes contend with this foreground op.
    executor_->RunDue(start);
    workers[best] = op(start);
    assert(workers[best] >= start);
  }
  SimTime done = *std::max_element(workers.begin(), workers.end());
  clock_->AdvanceTo(done);
  if (profiler_ != nullptr) profiler_->EndParallel(done);
  executor_->RunDue(done);
}

SimTime IoScheduler::RunOne(const Op& op) {
  executor_->RunDue(clock_->now());
  SimTime done = op(clock_->now());
  clock_->AdvanceTo(done);
  executor_->RunDue(done);
  return done;
}

void IoScheduler::AddCpuWork(double total_cpu_seconds, int parallelism) {
  if (total_cpu_seconds <= 0) return;
  parallelism = std::max(1, parallelism);
  clock_->Advance(total_cpu_seconds / parallelism);
  executor_->RunDue(clock_->now());
}

}  // namespace cloudiq
