#include "sim/object_store.h"

#include <algorithm>

namespace cloudiq {

SimObjectStore::SimObjectStore(ObjectStoreOptions options)
    : options_(options), rng_(options.seed), streams_(options.streams) {}

void SimObjectStore::set_telemetry(Telemetry* telemetry) {
  MutexLock lock(&mu_);
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    get_latency_ = put_latency_ = delete_latency_ = nullptr;
    select_latency_ = nullptr;
    ledger_ = nullptr;
    profiler_ = nullptr;
    return;
  }
  get_latency_ = &telemetry->stats().histogram("s3.get");
  put_latency_ = &telemetry->stats().histogram("s3.put");
  delete_latency_ = &telemetry->stats().histogram("s3.delete");
  select_latency_ = &telemetry->stats().histogram("s3.select");
  ledger_ = &telemetry->ledger();
  profiler_ = &telemetry->profiler();
}

std::string SimObjectStore::PrefixOf(const std::string& key) {
  size_t slash = key.find('/');
  if (slash == std::string::npos) return key;
  return key.substr(0, slash);
}

SimTime SimObjectStore::ServiceRequest(const std::string& key, bool is_put,
                                       uint64_t bytes, SimTime arrival) {
  // Per-prefix request-rate pacing (the S3 "optimizing performance"
  // limits the paper works around with hashed prefixes).
  std::string prefix = PrefixOf(key);
  auto& pacers = is_put ? put_pacers_ : get_pacers_;
  double rate =
      is_put ? options_.per_prefix_put_rate : options_.per_prefix_get_rate;
  auto [it, inserted] = pacers.try_emplace(prefix, rate);
  SimTime admitted = it->second.Admit(arrival);
  bool throttled = admitted > arrival + 1e-12;
  double stall = throttled ? admitted - arrival : 0;
  if (throttled) {
    ++stats_.throttle_events;
    if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
      telemetry_->tracer().Instant(kClusterPid, kTrackObjectStore, "s3",
                                   "throttle " + prefix, arrival);
    }
  }
  if (ledger_ != nullptr) {
    ledger_->RecordPrefix(prefix, throttled, stall);
    if (throttled) ledger_->RecordThrottle(stall);
  }

  // Bound pacer-map growth: hashed prefixes are effectively unique, so
  // stale entries (whose pacing can no longer matter) dominate. Flush the
  // maps wholesale once they get large; in-window pacing state for hot
  // prefixes is rebuilt on the next request.
  if (pacers.size() > 200000) {
    auto hot = pacers.extract(prefix);
    pacers.clear();
    pacers.insert(std::move(hot));
  }

  double base =
      is_put ? options_.put_base_latency : options_.get_base_latency;
  double transfer = static_cast<double>(bytes) / options_.stream_bandwidth;
  // Mild deterministic-seeded jitter so request times are not lockstep.
  double jitter = rng_.Exponential(base * 0.15);
  SimTime completion = streams_.Submit(admitted, transfer, base + jitter);
  // Tile the request's window into the stall ledger: pacer stall first,
  // the rest (queueing behind other streams + base + transfer) is the
  // network transfer.
  if (profiler_ != nullptr) {
    profiler_->Charge(WaitClass::kThrottleBackoff, arrival, admitted);
    profiler_->Charge(WaitClass::kNetworkTransfer, admitted, completion);
  }
  return completion;
}

Status SimObjectStore::Put(const std::string& key,
                           std::vector<uint8_t> value, SimTime arrival,
                           SimTime* completion) {
  MutexLock lock(&mu_);
  if (options_.enforce_never_write_twice && objects_.count(key) > 0) {
    // Tripwire for the paper's core invariant: the engine must never PUT
    // the same object key twice, even after deleting it (a delete marker
    // still counts as "ever written" — reusing the key would resurrect
    // the §3 eventual-consistency scenarios the keygen design rules out).
    return Status::AlreadyExists("never-write-twice violation: " + key);
  }
  *completion = ServiceRequest(key, /*is_put=*/true, value.size(), arrival);
  ++stats_.puts;
  stats_.put_bytes += value.size();
  if (cost_meter_ != nullptr) cost_meter_->AddS3Put();
  if (ledger_ != nullptr) {
    ledger_->RecordRequest(CostLedger::Request::kPut, value.size());
  }
  if (put_latency_ != nullptr) put_latency_->Record(*completion - arrival);
  if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
    telemetry_->tracer().CompleteSpan(kClusterPid, kTrackObjectStore, "s3",
                                      "PUT " + key, arrival, *completion);
  }
  if (options_.transient_error_rate > 0 &&
      rng_.Bernoulli(options_.transient_error_rate)) {
    return Status::IoError("simulated transient PUT failure");
  }

  SimTime visible_at = *completion;
  if (rng_.Bernoulli(options_.lag_probability)) {
    visible_at += rng_.Exponential(options_.mean_visibility_lag);
  }
  Object& obj = objects_[key];
  if (!obj.versions.empty()) ++stats_.overwrites;
  // Versions are kept in *creation* order: the store eventually converges
  // to the last mutation issued, even when an earlier mutation's
  // visibility lag outlasts a later one's.
  obj.versions.push_back({visible_at, /*is_delete=*/false, std::move(value)});
  return Status::Ok();
}

Result<std::vector<uint8_t>> SimObjectStore::Get(const std::string& key,
                                                 SimTime arrival,
                                                 SimTime* completion) {
  MutexLock lock(&mu_);
  ++stats_.gets;
  if (cost_meter_ != nullptr) cost_meter_->AddS3Get();

  auto it = objects_.find(key);
  const Version* newest = nullptr;
  const Version* newest_visible = nullptr;
  if (it != objects_.end()) {
    for (const Version& v : it->second.versions) {
      newest = &v;
      if (v.visible_at <= arrival) newest_visible = &v;
    }
  }

  if (newest_visible == nullptr || newest_visible->is_delete) {
    // Nothing visible: either the key truly does not exist, or we raced
    // eventual consistency (scenario 3).
    *completion =
        ServiceRequest(key, /*is_put=*/false, /*bytes=*/0, arrival);
    if (ledger_ != nullptr) {
      ledger_->RecordRequest(CostLedger::Request::kGet, 0);
    }
    if (get_latency_ != nullptr) {
      get_latency_->Record(*completion - arrival);
    }
    bool raced = newest != nullptr && !newest->is_delete;
    if (raced) ++stats_.not_found_races;
    if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
      telemetry_->tracer().CompleteSpan(
          kClusterPid, kTrackObjectStore, "s3",
          "GET " + key + " -> NOT_FOUND", arrival, *completion);
      if (raced) {
        telemetry_->tracer().Instant(kClusterPid, kTrackObjectStore, "s3",
                                     "visibility race " + key, arrival);
      }
    }
    if (options_.transient_error_rate > 0 &&
        rng_.Bernoulli(options_.transient_error_rate)) {
      return Status::IoError("simulated transient GET failure");
    }
    return Status::NotFound(key);
  }

  *completion = ServiceRequest(key, /*is_put=*/false,
                               newest_visible->value.size(), arrival);
  stats_.get_bytes += newest_visible->value.size();
  if (ledger_ != nullptr) {
    ledger_->RecordRequest(CostLedger::Request::kGet,
                           newest_visible->value.size());
  }
  if (get_latency_ != nullptr) get_latency_->Record(*completion - arrival);
  if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
    telemetry_->tracer().CompleteSpan(kClusterPid, kTrackObjectStore, "s3",
                                      "GET " + key, arrival, *completion);
  }
  if (newest_visible != newest) ++stats_.stale_reads;  // scenario 2
  if (options_.transient_error_rate > 0 &&
      rng_.Bernoulli(options_.transient_error_rate)) {
    return Status::IoError("simulated transient GET failure");
  }
  return newest_visible->value;
}

bool SimObjectStore::Exists(const std::string& key, SimTime arrival,
                            SimTime* completion) {
  MutexLock lock(&mu_);
  ++stats_.gets;  // HEAD is billed like GET
  if (cost_meter_ != nullptr) cost_meter_->AddS3Get();
  if (ledger_ != nullptr) {
    ledger_->RecordRequest(CostLedger::Request::kHead, 0);
  }
  *completion = ServiceRequest(key, /*is_put=*/false, /*bytes=*/0, arrival);
  auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  const Version* newest_visible = nullptr;
  for (const Version& v : it->second.versions) {
    if (v.visible_at <= arrival) newest_visible = &v;
  }
  return newest_visible != nullptr && !newest_visible->is_delete;
}

Status SimObjectStore::Delete(const std::string& key, SimTime arrival,
                              SimTime* completion) {
  MutexLock lock(&mu_);
  *completion = ServiceRequest(key, /*is_put=*/true, /*bytes=*/0, arrival);
  ++stats_.deletes;
  if (cost_meter_ != nullptr) cost_meter_->AddS3Delete();  // put-rate billing
  if (ledger_ != nullptr) {
    ledger_->RecordRequest(CostLedger::Request::kDelete, 0);
  }
  if (delete_latency_ != nullptr) {
    delete_latency_->Record(*completion - arrival);
  }
  if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
    telemetry_->tracer().CompleteSpan(kClusterPid, kTrackObjectStore, "s3",
                                      "DELETE " + key, arrival,
                                      *completion);
  }
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::Ok();  // idempotent
  SimTime visible_at = *completion;
  if (rng_.Bernoulli(options_.lag_probability)) {
    visible_at += rng_.Exponential(options_.mean_visibility_lag);
  }
  it->second.versions.push_back({visible_at, /*is_delete=*/true, {}});
  return Status::Ok();
}

// Every SELECT is billed — even one that loses the §3 visibility race
// or fails server-side (the server still parsed and dispatched it).
void SimObjectStore::BillSelectLocked(uint64_t scanned, uint64_t returned) {
  ++stats_.selects;
  stats_.select_scanned_bytes += scanned;
  stats_.select_returned_bytes += returned;
  if (cost_meter_ != nullptr) cost_meter_->AddS3Select(scanned, returned);
  if (ledger_ != nullptr) ledger_->RecordSelect(scanned, returned);
}

Result<std::vector<uint8_t>> SimObjectStore::Select(
    const std::vector<uint8_t>& request, SimTime arrival,
    SimTime* completion, uint64_t* bytes_scanned, uint64_t* bytes_returned) {
  MutexLock lock(&mu_);
  if (bytes_scanned != nullptr) *bytes_scanned = 0;
  if (bytes_returned != nullptr) *bytes_returned = 0;
  if (ndp_engine_ == nullptr) {
    return Status::NotSupported("object store has no NDP engine");
  }

  Result<std::vector<std::string>> keys = ndp_engine_->KeysOf(request);
  if (!keys.ok()) return keys.status();
  if (keys.value().empty()) {
    return Status::InvalidArgument("NDP request references no pages");
  }

  // Resolve every referenced page to its newest visible version. A
  // single invisible page fails the whole request: the consumer retries
  // with backoff exactly like a NOT_FOUND Get.
  std::vector<const std::vector<uint8_t>*> pages;
  pages.reserve(keys.value().size());
  uint64_t scanned = 0;
  for (const std::string& key : keys.value()) {
    auto it = objects_.find(key);
    const Version* newest = nullptr;
    const Version* newest_visible = nullptr;
    if (it != objects_.end()) {
      for (const Version& v : it->second.versions) {
        newest = &v;
        if (v.visible_at <= arrival) newest_visible = &v;
      }
    }
    if (newest_visible == nullptr || newest_visible->is_delete) {
      *completion = ServiceRequest(keys.value().front(), /*is_put=*/false,
                                   /*bytes=*/0, arrival);
      BillSelectLocked(/*scanned=*/0, /*returned=*/0);
      bool raced = newest != nullptr && !newest->is_delete;
      if (raced) ++stats_.not_found_races;
      if (select_latency_ != nullptr) {
        select_latency_->Record(*completion - arrival);
      }
      if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
        telemetry_->tracer().CompleteSpan(
            kClusterPid, kTrackObjectStore, "s3",
            "SELECT " + key + " -> NOT_FOUND", arrival, *completion);
        if (raced) {
          telemetry_->tracer().Instant(kClusterPid, kTrackObjectStore, "s3",
                                       "visibility race " + key, arrival);
        }
      }
      return Status::NotFound(key);
    }
    scanned += newest_visible->value.size();
    pages.push_back(&newest_visible->value);
  }

  Result<std::vector<uint8_t>> result = ndp_engine_->Execute(request, pages);
  if (!result.ok()) {
    *completion = ServiceRequest(keys.value().front(), /*is_put=*/false,
                                 /*bytes=*/0, arrival);
    BillSelectLocked(/*scanned=*/0, /*returned=*/0);
    return result.status();
  }
  uint64_t returned = result.value().size();

  // Latency: per-prefix GET pacing on the first page's prefix, a SELECT
  // time-to-first-byte, the server-side scan at select_scan_bandwidth,
  // then only the result bytes transferred through a connection stream.
  std::string prefix = PrefixOf(keys.value().front());
  auto [pit, inserted] =
      get_pacers_.try_emplace(prefix, options_.per_prefix_get_rate);
  SimTime admitted = pit->second.Admit(arrival);
  bool throttled = admitted > arrival + 1e-12;
  double stall = throttled ? admitted - arrival : 0;
  if (throttled) ++stats_.throttle_events;
  if (ledger_ != nullptr) {
    ledger_->RecordPrefix(prefix, throttled, stall);
    if (throttled) ledger_->RecordThrottle(stall);
  }
  double scan_time =
      static_cast<double>(scanned) / options_.select_scan_bandwidth;
  double transfer =
      static_cast<double>(returned) / options_.stream_bandwidth;
  double jitter = rng_.Exponential(options_.select_base_latency * 0.15);
  *completion = streams_.Submit(
      admitted, transfer, options_.select_base_latency + scan_time + jitter);
  // A pushed-down SELECT's post-pacer window is server-side scan plus the
  // (much smaller) result transfer; the whole of it is the price of
  // choosing pushdown, so it books as kNdpSelect rather than splitting
  // hairs between scan and result bytes.
  if (profiler_ != nullptr) {
    profiler_->Charge(WaitClass::kThrottleBackoff, arrival, admitted);
    profiler_->Charge(WaitClass::kNdpSelect, admitted, *completion);
  }

  BillSelectLocked(scanned, returned);
  if (bytes_scanned != nullptr) *bytes_scanned = scanned;
  if (bytes_returned != nullptr) *bytes_returned = returned;
  if (select_latency_ != nullptr) {
    select_latency_->Record(*completion - arrival);
  }
  if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
    telemetry_->tracer().CompleteSpan(
        kClusterPid, kTrackObjectStore, "s3",
        "SELECT (" + std::to_string(pages.size()) + " pages, " +
            std::to_string(scanned) + " -> " + std::to_string(returned) +
            " B)",
        arrival, *completion);
  }
  if (options_.transient_error_rate > 0 &&
      rng_.Bernoulli(options_.transient_error_rate)) {
    return Status::IoError("simulated transient SELECT failure");
  }
  return result;
}

SimTime SimObjectStore::ExternalRead(uint64_t bytes, SimTime arrival) {
  MutexLock lock(&mu_);
  // Streamed as 8 MB ranged GETs over multiple connections.
  constexpr uint64_t kPartBytes = 8 << 20;
  uint64_t parts = (bytes + kPartBytes - 1) / kPartBytes;
  SimTime done = arrival;
  for (uint64_t i = 0; i < parts; ++i) {
    uint64_t part = std::min(kPartBytes, bytes - i * kPartBytes);
    ++stats_.ranged_gets;
    stats_.get_bytes += part;
    if (cost_meter_ != nullptr) cost_meter_->AddS3RangedGet();
    if (ledger_ != nullptr) {
      ledger_->RecordRequest(CostLedger::Request::kRangedGet, part);
    }
    double transfer = static_cast<double>(part) / options_.stream_bandwidth;
    SimTime part_done = streams_.Submit(arrival, transfer,
                                        options_.get_base_latency);
    if (get_latency_ != nullptr) get_latency_->Record(part_done - arrival);
    if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
      telemetry_->tracer().CompleteSpan(
          kClusterPid, kTrackObjectStore, "s3",
          "ranged GET (" + std::to_string(part) + " B)", arrival, part_done);
    }
    done = std::max(done, part_done);
  }
  // The parts stream concurrently; charge the covering window once.
  if (profiler_ != nullptr) {
    profiler_->Charge(WaitClass::kNetworkTransfer, arrival, done);
  }
  return done;
}

uint64_t SimObjectStore::LiveObjectCount() const {
  MutexLock lock(&mu_);
  uint64_t count = 0;
  for (const auto& [key, obj] : objects_) {
    if (!obj.versions.empty() && !obj.versions.back().is_delete) ++count;
  }
  return count;
}

uint64_t SimObjectStore::LiveBytes() const {
  MutexLock lock(&mu_);
  uint64_t bytes = 0;
  for (const auto& [key, obj] : objects_) {
    if (!obj.versions.empty() && !obj.versions.back().is_delete) {
      bytes += obj.versions.back().value.size();
    }
  }
  return bytes;
}

std::vector<std::string> SimObjectStore::LiveKeys() const {
  MutexLock lock(&mu_);
  std::vector<std::string> keys;
  for (const auto& [key, obj] : objects_) {
    if (!obj.versions.empty() && !obj.versions.back().is_delete) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace cloudiq
