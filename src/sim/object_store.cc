#include "sim/object_store.h"

#include <algorithm>

namespace cloudiq {

SimObjectStore::SimObjectStore(ObjectStoreOptions options)
    : options_(options), rng_(options.seed), streams_(options.streams) {}

void SimObjectStore::set_telemetry(Telemetry* telemetry) {
  MutexLock lock(&mu_);
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    get_latency_ = put_latency_ = delete_latency_ = nullptr;
    ledger_ = nullptr;
    return;
  }
  get_latency_ = &telemetry->stats().histogram("s3.get");
  put_latency_ = &telemetry->stats().histogram("s3.put");
  delete_latency_ = &telemetry->stats().histogram("s3.delete");
  ledger_ = &telemetry->ledger();
}

std::string SimObjectStore::PrefixOf(const std::string& key) {
  size_t slash = key.find('/');
  if (slash == std::string::npos) return key;
  return key.substr(0, slash);
}

SimTime SimObjectStore::ServiceRequest(const std::string& key, bool is_put,
                                       uint64_t bytes, SimTime arrival) {
  // Per-prefix request-rate pacing (the S3 "optimizing performance"
  // limits the paper works around with hashed prefixes).
  std::string prefix = PrefixOf(key);
  auto& pacers = is_put ? put_pacers_ : get_pacers_;
  double rate =
      is_put ? options_.per_prefix_put_rate : options_.per_prefix_get_rate;
  auto [it, inserted] = pacers.try_emplace(prefix, rate);
  SimTime admitted = it->second.Admit(arrival);
  bool throttled = admitted > arrival + 1e-12;
  double stall = throttled ? admitted - arrival : 0;
  if (throttled) {
    ++stats_.throttle_events;
    if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
      telemetry_->tracer().Instant(kClusterPid, kTrackObjectStore, "s3",
                                   "throttle " + prefix, arrival);
    }
  }
  if (ledger_ != nullptr) {
    ledger_->RecordPrefix(prefix, throttled, stall);
    if (throttled) ledger_->RecordThrottle(stall);
  }

  // Bound pacer-map growth: hashed prefixes are effectively unique, so
  // stale entries (whose pacing can no longer matter) dominate. Flush the
  // maps wholesale once they get large; in-window pacing state for hot
  // prefixes is rebuilt on the next request.
  if (pacers.size() > 200000) {
    auto hot = pacers.extract(prefix);
    pacers.clear();
    pacers.insert(std::move(hot));
  }

  double base =
      is_put ? options_.put_base_latency : options_.get_base_latency;
  double transfer = static_cast<double>(bytes) / options_.stream_bandwidth;
  // Mild deterministic-seeded jitter so request times are not lockstep.
  double jitter = rng_.Exponential(base * 0.15);
  return streams_.Submit(admitted, transfer, base + jitter);
}

Status SimObjectStore::Put(const std::string& key,
                           std::vector<uint8_t> value, SimTime arrival,
                           SimTime* completion) {
  MutexLock lock(&mu_);
  if (options_.enforce_never_write_twice && objects_.count(key) > 0) {
    // Tripwire for the paper's core invariant: the engine must never PUT
    // the same object key twice, even after deleting it (a delete marker
    // still counts as "ever written" — reusing the key would resurrect
    // the §3 eventual-consistency scenarios the keygen design rules out).
    return Status::AlreadyExists("never-write-twice violation: " + key);
  }
  *completion = ServiceRequest(key, /*is_put=*/true, value.size(), arrival);
  ++stats_.puts;
  stats_.put_bytes += value.size();
  if (cost_meter_ != nullptr) cost_meter_->AddS3Put();
  if (ledger_ != nullptr) {
    ledger_->RecordRequest(CostLedger::Request::kPut, value.size());
  }
  if (put_latency_ != nullptr) put_latency_->Record(*completion - arrival);
  if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
    telemetry_->tracer().CompleteSpan(kClusterPid, kTrackObjectStore, "s3",
                                      "PUT " + key, arrival, *completion);
  }
  if (options_.transient_error_rate > 0 &&
      rng_.Bernoulli(options_.transient_error_rate)) {
    return Status::IoError("simulated transient PUT failure");
  }

  SimTime visible_at = *completion;
  if (rng_.Bernoulli(options_.lag_probability)) {
    visible_at += rng_.Exponential(options_.mean_visibility_lag);
  }
  Object& obj = objects_[key];
  if (!obj.versions.empty()) ++stats_.overwrites;
  // Versions are kept in *creation* order: the store eventually converges
  // to the last mutation issued, even when an earlier mutation's
  // visibility lag outlasts a later one's.
  obj.versions.push_back({visible_at, /*is_delete=*/false, std::move(value)});
  return Status::Ok();
}

Result<std::vector<uint8_t>> SimObjectStore::Get(const std::string& key,
                                                 SimTime arrival,
                                                 SimTime* completion) {
  MutexLock lock(&mu_);
  ++stats_.gets;
  if (cost_meter_ != nullptr) cost_meter_->AddS3Get();

  auto it = objects_.find(key);
  const Version* newest = nullptr;
  const Version* newest_visible = nullptr;
  if (it != objects_.end()) {
    for (const Version& v : it->second.versions) {
      newest = &v;
      if (v.visible_at <= arrival) newest_visible = &v;
    }
  }

  if (newest_visible == nullptr || newest_visible->is_delete) {
    // Nothing visible: either the key truly does not exist, or we raced
    // eventual consistency (scenario 3).
    *completion =
        ServiceRequest(key, /*is_put=*/false, /*bytes=*/0, arrival);
    if (ledger_ != nullptr) {
      ledger_->RecordRequest(CostLedger::Request::kGet, 0);
    }
    if (get_latency_ != nullptr) {
      get_latency_->Record(*completion - arrival);
    }
    bool raced = newest != nullptr && !newest->is_delete;
    if (raced) ++stats_.not_found_races;
    if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
      telemetry_->tracer().CompleteSpan(
          kClusterPid, kTrackObjectStore, "s3",
          "GET " + key + " -> NOT_FOUND", arrival, *completion);
      if (raced) {
        telemetry_->tracer().Instant(kClusterPid, kTrackObjectStore, "s3",
                                     "visibility race " + key, arrival);
      }
    }
    if (options_.transient_error_rate > 0 &&
        rng_.Bernoulli(options_.transient_error_rate)) {
      return Status::IoError("simulated transient GET failure");
    }
    return Status::NotFound(key);
  }

  *completion = ServiceRequest(key, /*is_put=*/false,
                               newest_visible->value.size(), arrival);
  stats_.get_bytes += newest_visible->value.size();
  if (ledger_ != nullptr) {
    ledger_->RecordRequest(CostLedger::Request::kGet,
                           newest_visible->value.size());
  }
  if (get_latency_ != nullptr) get_latency_->Record(*completion - arrival);
  if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
    telemetry_->tracer().CompleteSpan(kClusterPid, kTrackObjectStore, "s3",
                                      "GET " + key, arrival, *completion);
  }
  if (newest_visible != newest) ++stats_.stale_reads;  // scenario 2
  if (options_.transient_error_rate > 0 &&
      rng_.Bernoulli(options_.transient_error_rate)) {
    return Status::IoError("simulated transient GET failure");
  }
  return newest_visible->value;
}

bool SimObjectStore::Exists(const std::string& key, SimTime arrival,
                            SimTime* completion) {
  MutexLock lock(&mu_);
  ++stats_.gets;  // HEAD is billed like GET
  if (cost_meter_ != nullptr) cost_meter_->AddS3Get();
  if (ledger_ != nullptr) {
    ledger_->RecordRequest(CostLedger::Request::kHead, 0);
  }
  *completion = ServiceRequest(key, /*is_put=*/false, /*bytes=*/0, arrival);
  auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  const Version* newest_visible = nullptr;
  for (const Version& v : it->second.versions) {
    if (v.visible_at <= arrival) newest_visible = &v;
  }
  return newest_visible != nullptr && !newest_visible->is_delete;
}

Status SimObjectStore::Delete(const std::string& key, SimTime arrival,
                              SimTime* completion) {
  MutexLock lock(&mu_);
  *completion = ServiceRequest(key, /*is_put=*/true, /*bytes=*/0, arrival);
  ++stats_.deletes;
  if (cost_meter_ != nullptr) cost_meter_->AddS3Delete();  // put-rate billing
  if (ledger_ != nullptr) {
    ledger_->RecordRequest(CostLedger::Request::kDelete, 0);
  }
  if (delete_latency_ != nullptr) {
    delete_latency_->Record(*completion - arrival);
  }
  if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
    telemetry_->tracer().CompleteSpan(kClusterPid, kTrackObjectStore, "s3",
                                      "DELETE " + key, arrival,
                                      *completion);
  }
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::Ok();  // idempotent
  SimTime visible_at = *completion;
  if (rng_.Bernoulli(options_.lag_probability)) {
    visible_at += rng_.Exponential(options_.mean_visibility_lag);
  }
  it->second.versions.push_back({visible_at, /*is_delete=*/true, {}});
  return Status::Ok();
}

SimTime SimObjectStore::ExternalRead(uint64_t bytes, SimTime arrival) {
  MutexLock lock(&mu_);
  // Streamed as 8 MB ranged GETs over multiple connections.
  constexpr uint64_t kPartBytes = 8 << 20;
  uint64_t parts = (bytes + kPartBytes - 1) / kPartBytes;
  SimTime done = arrival;
  for (uint64_t i = 0; i < parts; ++i) {
    uint64_t part = std::min(kPartBytes, bytes - i * kPartBytes);
    ++stats_.ranged_gets;
    stats_.get_bytes += part;
    if (cost_meter_ != nullptr) cost_meter_->AddS3RangedGet();
    if (ledger_ != nullptr) {
      ledger_->RecordRequest(CostLedger::Request::kRangedGet, part);
    }
    double transfer = static_cast<double>(part) / options_.stream_bandwidth;
    SimTime part_done = streams_.Submit(arrival, transfer,
                                        options_.get_base_latency);
    if (get_latency_ != nullptr) get_latency_->Record(part_done - arrival);
    if (telemetry_ != nullptr && telemetry_->tracer().enabled()) {
      telemetry_->tracer().CompleteSpan(
          kClusterPid, kTrackObjectStore, "s3",
          "ranged GET (" + std::to_string(part) + " B)", arrival, part_done);
    }
    done = std::max(done, part_done);
  }
  return done;
}

uint64_t SimObjectStore::LiveObjectCount() const {
  MutexLock lock(&mu_);
  uint64_t count = 0;
  for (const auto& [key, obj] : objects_) {
    if (!obj.versions.empty() && !obj.versions.back().is_delete) ++count;
  }
  return count;
}

uint64_t SimObjectStore::LiveBytes() const {
  MutexLock lock(&mu_);
  uint64_t bytes = 0;
  for (const auto& [key, obj] : objects_) {
    if (!obj.versions.empty() && !obj.versions.back().is_delete) {
      bytes += obj.versions.back().value.size();
    }
  }
  return bytes;
}

std::vector<std::string> SimObjectStore::LiveKeys() const {
  MutexLock lock(&mu_);
  std::vector<std::string> keys;
  for (const auto& [key, obj] : objects_) {
    if (!obj.versions.empty() && !obj.versions.back().is_delete) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace cloudiq
