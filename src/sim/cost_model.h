#ifndef CLOUDIQ_SIM_COST_MODEL_H_
#define CLOUDIQ_SIM_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace cloudiq {

// Public cloud price points used by the simulator's cost accounting.
//
// Request and storage rates are the published AWS us-east-1 prices the paper
// cites ("costs are calculated based on the publicly available prices listed
// by Amazon"). The EC2 hourly rate for m5ad.24xlarge is calibrated from the
// paper's own Table 2 x Table 3 arithmetic (EBS load: 4,294.1 s at $5.04
// implies ~$4.22/h for compute + system-dbspace overhead); the smaller
// instances scale by vCPU count.
struct CloudPrices {
  // Object store (S3-like).
  double s3_put_per_1k = 0.005;        // USD per 1,000 PUT/DELETE requests
  double s3_get_per_1k = 0.0004;       // USD per 1,000 GET requests
  double s3_storage_gb_month = 0.023;  // USD per GB-month

  // Near-data processing (S3 Select-like pricing): each SELECT pays the
  // GET request rate plus per-byte rates for data scanned server-side and
  // data returned over the wire. Scanning is cheap, returning is cheaper
  // than a full GET only because far fewer bytes come back.
  double s3_select_per_1k = 0.0004;        // USD per 1,000 SELECT requests
  double s3_select_scanned_per_gb = 0.002; // USD per GB scanned server-side
  double s3_select_returned_per_gb = 0.0007;  // USD per GB returned

  // Block volumes.
  double ebs_gp2_gb_month = 0.10;  // USD per GB-month (provisioned)
  double efs_std_gb_month = 0.30;  // USD per GB-month (utilized)

  // Compute (USD per hour).
  double ec2_m5ad_4xlarge = 0.704;
  double ec2_m5ad_12xlarge = 2.112;
  double ec2_m5ad_24xlarge = 4.225;
  double ec2_r5_large = 0.126;
};

// Accumulates the monetary cost of a simulated run, by category.
// Every device model reports its requests here; the benchmark harness
// reports EC2 time from the simulated clock.
class CostMeter {
 public:
  explicit CostMeter(CloudPrices prices = CloudPrices()) : prices_(prices) {}

  void AddS3Put(uint64_t n = 1) { s3_puts_ += n; }
  void AddS3Get(uint64_t n = 1) { s3_gets_ += n; }
  // DELETE is billed at the PUT rate, ranged GET parts at the GET rate;
  // they get their own counters so cost reports can break them out.
  void AddS3Delete(uint64_t n = 1) { s3_deletes_ += n; }
  void AddS3RangedGet(uint64_t n = 1) { s3_ranged_gets_ += n; }
  // One NDP SELECT request that scanned `scanned_bytes` inside the store
  // and shipped `returned_bytes` back to the compute node.
  void AddS3Select(uint64_t scanned_bytes, uint64_t returned_bytes) {
    ++s3_selects_;
    select_scanned_bytes_ += scanned_bytes;
    select_returned_bytes_ += returned_bytes;
  }
  void AddEc2Hours(double hours, double hourly_rate) {
    ec2_usd_ += hours * hourly_rate;
  }

  uint64_t s3_puts() const { return s3_puts_; }
  uint64_t s3_gets() const { return s3_gets_; }
  uint64_t s3_deletes() const { return s3_deletes_; }
  uint64_t s3_ranged_gets() const { return s3_ranged_gets_; }
  uint64_t s3_selects() const { return s3_selects_; }
  uint64_t select_scanned_bytes() const { return select_scanned_bytes_; }
  uint64_t select_returned_bytes() const { return select_returned_bytes_; }
  uint64_t S3Requests() const {
    return s3_puts_ + s3_gets_ + s3_deletes_ + s3_ranged_gets_ + s3_selects_;
  }

  double S3RequestUsd() const {
    return (s3_puts_ + s3_deletes_) / 1000.0 * prices_.s3_put_per_1k +
           (s3_gets_ + s3_ranged_gets_) / 1000.0 * prices_.s3_get_per_1k +
           s3_selects_ / 1000.0 * prices_.s3_select_per_1k +
           select_scanned_bytes_ / 1e9 * prices_.s3_select_scanned_per_gb +
           select_returned_bytes_ / 1e9 * prices_.s3_select_returned_per_gb;
  }
  double Ec2Usd() const { return ec2_usd_; }
  double TotalComputeUsd() const { return Ec2Usd() + S3RequestUsd(); }

  // Data-at-rest cost for `gb` stored for one month on each medium.
  double S3MonthlyUsd(double gb) const {
    return gb * prices_.s3_storage_gb_month;
  }
  double EbsMonthlyUsd(double gb) const {
    return gb * prices_.ebs_gp2_gb_month;
  }
  double EfsMonthlyUsd(double gb) const {
    return gb * prices_.efs_std_gb_month;
  }

  const CloudPrices& prices() const { return prices_; }

  void Reset() {
    s3_puts_ = 0;
    s3_gets_ = 0;
    s3_deletes_ = 0;
    s3_ranged_gets_ = 0;
    s3_selects_ = 0;
    select_scanned_bytes_ = 0;
    select_returned_bytes_ = 0;
    ec2_usd_ = 0;
  }

 private:
  CloudPrices prices_;
  uint64_t s3_puts_ = 0;
  uint64_t s3_gets_ = 0;
  uint64_t s3_deletes_ = 0;
  uint64_t s3_ranged_gets_ = 0;
  uint64_t s3_selects_ = 0;
  uint64_t select_scanned_bytes_ = 0;
  uint64_t select_returned_bytes_ = 0;
  double ec2_usd_ = 0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_COST_MODEL_H_
