#ifndef CLOUDIQ_SIM_BLOCK_VOLUME_H_
#define CLOUDIQ_SIM_BLOCK_VOLUME_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sim/device.h"
#include "sim/sim_clock.h"

namespace cloudiq {

// Performance envelope of a simulated network block volume.
//
// The two presets capture what the paper's evaluation ran against: a 1 TB
// EBS gp2 volume (IOPS provisioned at 3 IOPS/GB, 250 MB/s throughput cap)
// and a standard EFS file system (throughput a function of utilized space,
// higher per-operation latency, POSIX semantics). Both are strongly
// consistent — which is why SAP IQ could run on them unmodified — but their
// throughput is capped by provisioning rather than scaling with the number
// of compute nodes, which is the property the paper's Figure 9 argument
// hinges on.
struct BlockVolumeOptions {
  std::string name = "ebs-gp2-1tb";
  double base_latency = 0.0007;  // seconds per operation
  double iops = 3000;            // operations/sec ceiling
  double bandwidth = 250e6;      // bytes/sec ceiling
  int channels = 16;             // internal parallelism

  static BlockVolumeOptions EbsGp2(double size_gb);
  static BlockVolumeOptions EfsStandard(double utilized_gb);
};

// Strongly consistent block device addressed by 64-bit block number.
// Pages occupy contiguous block runs; a run written together must be read
// together (which is how the blockmap addresses conventional dbspaces).
class SimBlockVolume {
 public:
  explicit SimBlockVolume(BlockVolumeOptions options);

  // Writes a run of blocks starting at `first_block` (strong consistency:
  // immediately visible). Overwrites are allowed — this is the semantics
  // CloudIQ relies on for conventional dbspaces.
  Status Write(uint64_t first_block, std::vector<uint8_t> data,
               SimTime arrival, SimTime* completion);

  // Reads the run previously written at `first_block`.
  Result<std::vector<uint8_t>> Read(uint64_t first_block, SimTime arrival,
                                    SimTime* completion);

  // Drops the run (frees simulated space).
  Status Free(uint64_t first_block, SimTime arrival, SimTime* completion);

  uint64_t StoredBytes() const { return stored_bytes_; }
  uint64_t RunCount() const { return runs_.size(); }

  // Full-volume image, for backup/restore (the snapshot manager backs up
  // the system dbspace and any non-cloud dbspaces in full, §5). The
  // returned map is a deep copy.
  std::unordered_map<uint64_t, std::vector<uint8_t>> SnapshotRuns() const {
    return runs_;
  }
  void RestoreRuns(std::unordered_map<uint64_t, std::vector<uint8_t>> runs) {
    runs_ = std::move(runs);
    stored_bytes_ = 0;
    for (const auto& [block, data] : runs_) stored_bytes_ += data.size();
  }

  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats(); }

  const BlockVolumeOptions& options() const { return options_; }

 private:
  SimTime Service(uint64_t bytes, SimTime arrival);

  BlockVolumeOptions options_;
  ChannelQueue channels_;
  RatePacer iops_pacer_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> runs_;
  uint64_t stored_bytes_ = 0;
  DeviceStats stats_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_BLOCK_VOLUME_H_
