#ifndef CLOUDIQ_SIM_NIC_H_
#define CLOUDIQ_SIM_NIC_H_

#include <cstdint>
#include <vector>

#include "sim/device.h"
#include "sim/sim_clock.h"

namespace cloudiq {

// Per-node network interface. All object-store and shared-volume traffic of
// a node flows through its NIC, which both caps throughput and records a
// bandwidth trace (bytes per one-second bucket) — the trace behind the
// paper's Figure 8.
class Nic {
 public:
  explicit Nic(double gbps)
      : bandwidth_(gbps * 1e9 / 8.0), queue_(/*channels=*/1) {}

  // Accounts a transfer of `bytes` arriving at `arrival`; returns the time
  // at which the transfer clears the NIC.
  SimTime Transfer(uint64_t bytes, SimTime arrival) {
    double occupancy = static_cast<double>(bytes) / bandwidth_;
    SimTime done = queue_.Submit(arrival, occupancy, 0.0);
    // The bytes move only while the wire is actually occupied — the trace
    // must not smear them over queueing delay.
    RecordTrace(done - occupancy, done, bytes);
    total_bytes_ += bytes;
    return done;
  }

  double bandwidth_bytes_per_sec() const { return bandwidth_; }
  uint64_t total_bytes() const { return total_bytes_; }

  // Bandwidth trace: bucket[i] holds bytes transferred during simulated
  // interval [i*res, (i+1)*res), res = trace_resolution() seconds.
  const std::vector<double>& trace() const { return trace_; }
  double trace_resolution() const { return resolution_; }
  void set_trace_resolution(double seconds) {
    resolution_ = seconds;
    trace_.clear();
  }
  void ResetTrace() {
    trace_.clear();
    total_bytes_ = 0;
  }

 private:
  void RecordTrace(SimTime start, SimTime end, uint64_t bytes) {
    if (end <= start) end = start + 1e-9;
    size_t first = static_cast<size_t>(start / resolution_);
    size_t last = static_cast<size_t>(end / resolution_);
    if (trace_.size() <= last) trace_.resize(last + 1, 0.0);
    double span = end - start;
    for (size_t b = first; b <= last; ++b) {
      double lo = std::max(start, b * resolution_);
      double hi = std::min(end, (b + 1) * resolution_);
      if (hi > lo) trace_[b] += bytes * (hi - lo) / span;
    }
  }

  double bandwidth_;
  ChannelQueue queue_;
  std::vector<double> trace_;
  double resolution_ = 1.0;
  uint64_t total_bytes_ = 0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_NIC_H_
