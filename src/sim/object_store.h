#ifndef CLOUDIQ_SIM_OBJECT_STORE_H_
#define CLOUDIQ_SIM_OBJECT_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/device.h"
#include "sim/sim_clock.h"
#include "telemetry/telemetry.h"

namespace cloudiq {

// Server-side compute plugged into the object store (Taurus-style
// near-data processing). The store stays agnostic of the request wire
// format: the engine first lists the object keys a serialized NdpRequest
// references (a pure parse), the store resolves those keys to visible
// page payloads under its own lock, and the engine then evaluates the
// request against them. Implemented by ndp::NdpEngine (src/ndp/); the
// split keeps sim free of any dependency on the NDP protocol and keeps
// all guarded-state access inside the store's annotated methods.
class NdpServerEngine {
 public:
  virtual ~NdpServerEngine() = default;

  // Object keys the serialized request references, in the order Execute
  // expects their payloads. InvalidArgument on a malformed request.
  virtual Result<std::vector<std::string>> KeysOf(
      const std::vector<uint8_t>& request) const = 0;

  // Evaluates the request against the resolved page payloads (parallel
  // to KeysOf's order). Returns the serialized NdpResult.
  virtual Result<std::vector<uint8_t>> Execute(
      const std::vector<uint8_t>& request,
      const std::vector<const std::vector<uint8_t>*>& pages) const = 0;
};

// Tuning knobs for the simulated object store. Defaults approximate S3
// circa the paper's evaluation: double-digit-millisecond request latencies,
// ~90 MB/s per connection stream, enormous aggregate throughput, documented
// per-prefix request-rate ceilings (3,500 writes/s and 5,500 reads/s), and
// eventual consistency for fresh PUTs, overwrites and deletes.
struct ObjectStoreOptions {
  double get_base_latency = 0.012;   // seconds to first byte
  double put_base_latency = 0.020;
  double stream_bandwidth = 90e6;    // bytes/sec per connection
  int streams = 4096;                // aggregate parallel connections
  double per_prefix_put_rate = 3500;
  double per_prefix_get_rate = 5500;

  // Eventual consistency: a mutation becomes visible `visibility_lag`
  // seconds after completion with probability `lag_probability`
  // (otherwise read-after-write appears immediate). The defaults model
  // pre-2020 S3, where the race was real but rare; consistency tests
  // crank these up to force every code path.
  double lag_probability = 0.02;
  double mean_visibility_lag = 0.15;  // seconds, exponential

  // Fault injection: probability that a request fails with a transient
  // IO error (caller retries).
  double transient_error_rate = 0.0;

  // Near-data processing (SELECT). A SELECT pays a higher time-to-first-
  // byte than a GET (the server sets up a scan pipeline), scans pages at
  // the server-side rate below (far above a single connection's download
  // bandwidth — the whole point), and streams only the result bytes back
  // through a connection stream.
  double select_base_latency = 0.030;   // seconds to first byte
  double select_scan_bandwidth = 400e6; // bytes/sec server-side scan rate

  // Dynamic never-write-twice enforcement (§3): when set, a PUT to a key
  // that was *ever* written — even if since deleted — fails with
  // AlreadyExists instead of creating a new version. CloudIQ's storage
  // layer never overwrites a key (the Object Key Generator hands every
  // writer a fresh monotone key), so engine configurations can run with
  // this on as a tripwire; it stays off by default because the
  // write-twice *ablation* bench exists precisely to overwrite keys and
  // measure the stale-read fallout.
  bool enforce_never_write_twice = false;

  uint64_t seed = 42;
};

// In-memory object store with S3-like performance and consistency
// semantics. All operations take the simulated arrival time and return the
// completion time through `*completion`; the caller (IoScheduler) advances
// the clock.
//
// Consistency model: each key holds a list of versions stamped with the
// simulated time at which they become visible. A Get at time T returns the
// newest version visible at T. Overwriting a key therefore yields *stale
// reads* until the new version becomes visible, and a fresh key yields
// NOT_FOUND until its first version becomes visible — exactly the three
// read scenarios of §3 of the paper. CloudIQ's storage layer never
// overwrites a key, so scenario (2) is impossible by construction;
// `stats().stale_reads` lets tests and the write-twice ablation verify
// this.
class SimObjectStore {
 public:
  explicit SimObjectStore(ObjectStoreOptions options = ObjectStoreOptions());

  // Uploads an object. Completion time accounts for per-prefix pacing,
  // stream bandwidth and base latency.
  Status Put(const std::string& key, std::vector<uint8_t> value,
             SimTime arrival, SimTime* completion);

  // Downloads the newest visible version. Returns NotFound if the key has
  // no visible version at `arrival` (including the eventual-consistency
  // window after a fresh PUT).
  Result<std::vector<uint8_t>> Get(const std::string& key, SimTime arrival,
                                   SimTime* completion);

  // HEAD request: true if any visible, non-deleted version exists.
  bool Exists(const std::string& key, SimTime arrival, SimTime* completion);

  // Removes the object (eventually: a delete marker that becomes visible
  // after the consistency lag).
  Status Delete(const std::string& key, SimTime arrival,
                SimTime* completion);

  // Near-data processing: evaluates a serialized NdpRequest against the
  // newest visible versions of the pages it references and returns the
  // serialized NdpResult. Requires an engine (set_ndp_engine);
  // NotSupported otherwise. NotFound if any referenced page has no
  // visible version at `arrival` (the §3 eventual-consistency race —
  // callers retry exactly like a Get). `*bytes_scanned` /
  // `*bytes_returned` (optional) report the server-side scan volume vs.
  // the bytes shipped back; the gap is the NDP win.
  Result<std::vector<uint8_t>> Select(const std::vector<uint8_t>& request,
                                      SimTime arrival, SimTime* completion,
                                      uint64_t* bytes_scanned = nullptr,
                                      uint64_t* bytes_returned = nullptr);

  // Installs the server-side NDP engine (not owned; typically installed
  // once by Database construction). nullptr disables Select.
  void set_ndp_engine(const NdpServerEngine* engine) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ndp_engine_ = engine;
  }
  bool has_ndp_engine() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return ndp_engine_ != nullptr;
  }

  // Models streaming `bytes` of *external input data* (e.g. TPC-H load
  // files staged in an input bucket) without materializing the objects:
  // bills one GET per part, occupies download streams, and returns the
  // completion time.
  SimTime ExternalRead(uint64_t bytes, SimTime arrival);

  // Number of keys whose *final* state (ignoring visibility lag) is a live
  // object. Used by garbage-collection completeness tests.
  uint64_t LiveObjectCount() const;
  // Bytes in live objects (final state). Feeds the data-at-rest cost table.
  uint64_t LiveBytes() const;
  // All live keys (final state), for audits.
  std::vector<std::string> LiveKeys() const;

  struct Stats {
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t deletes = 0;
    uint64_t ranged_gets = 0;      // ExternalRead parts (billed as GET)
    uint64_t not_found_races = 0;  // GETs that raced visibility (scenario 3)
    uint64_t stale_reads = 0;      // GETs served an old version (scenario 2)
    uint64_t overwrites = 0;       // PUTs to a key that already existed
    uint64_t throttle_events = 0;  // requests delayed by per-prefix pacing
    uint64_t put_bytes = 0;
    uint64_t get_bytes = 0;
    uint64_t selects = 0;                // NDP SELECT requests served
    uint64_t select_scanned_bytes = 0;   // pages decoded server-side
    uint64_t select_returned_bytes = 0;  // result bytes shipped back
  };
  // Returned by value: handing out a reference to a guarded field would
  // let callers read it after the lock drops (Clang's reference-return
  // check rejects exactly that). The struct is ten integers; the copy is
  // noise next to a simulated request.
  Stats stats() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = Stats();
  }

  // Wires a cost meter; when set, every PUT/GET is billed.
  void set_cost_meter(CostMeter* meter) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    cost_meter_ = meter;
  }

  // Wires telemetry: request latencies land in the "s3.get"/"s3.put"/
  // "s3.delete" histograms; throttle events and visibility races become
  // instant trace events; every request becomes a span when tracing is
  // enabled. Every request, throttle stall and per-prefix hit is also
  // charged to the telemetry's cost ledger under whatever attribution
  // context is current.
  void set_telemetry(Telemetry* telemetry);

  const ObjectStoreOptions& options() const { return options_; }

 private:
  struct Version {
    SimTime visible_at;
    bool is_delete;
    std::vector<uint8_t> value;
  };
  struct Object {
    std::vector<Version> versions;  // ascending by visible_at
  };

  // Applies pacing + bandwidth + latency for one request; returns
  // completion time.
  SimTime ServiceRequest(const std::string& key, bool is_put, uint64_t bytes,
                         SimTime arrival) REQUIRES(mu_);

  // Bills one SELECT to stats, meter and ledger.
  void BillSelectLocked(uint64_t scanned, uint64_t returned) REQUIRES(mu_);

  static std::string PrefixOf(const std::string& key);

  ObjectStoreOptions options_;  // set at construction, read-only after

  // The store is shared cluster-wide: every node's fibers reach it
  // through ObjectStoreIo. mu_ is a leaf lock — held across whole
  // requests (nothing below re-enters the store) but never while calling
  // out to anything that could.
  mutable Mutex mu_{lockrank::kSimObjectStore};
  Rng rng_ GUARDED_BY(mu_);
  ChannelQueue streams_ GUARDED_BY(mu_);
  std::unordered_map<std::string, RatePacer> put_pacers_ GUARDED_BY(mu_);
  std::unordered_map<std::string, RatePacer> get_pacers_ GUARDED_BY(mu_);
  std::unordered_map<std::string, Object> objects_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
  CostMeter* cost_meter_ GUARDED_BY(mu_) = nullptr;
  Telemetry* telemetry_ GUARDED_BY(mu_) = nullptr;
  CostLedger* ledger_ GUARDED_BY(mu_) = nullptr;
  StallProfiler* profiler_ GUARDED_BY(mu_) = nullptr;
  const NdpServerEngine* ndp_engine_ GUARDED_BY(mu_) = nullptr;
  Histogram* get_latency_ GUARDED_BY(mu_) = nullptr;
  Histogram* put_latency_ GUARDED_BY(mu_) = nullptr;
  Histogram* delete_latency_ GUARDED_BY(mu_) = nullptr;
  Histogram* select_latency_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_OBJECT_STORE_H_
