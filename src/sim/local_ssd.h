#ifndef CLOUDIQ_SIM_LOCAL_SSD_H_
#define CLOUDIQ_SIM_LOCAL_SSD_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "sim/device.h"
#include "sim/sim_clock.h"

namespace cloudiq {

// Locally attached NVMe storage (the m5ad instance SSDs the OCM runs on,
// bundled as RAID 0). Latency is two to three orders of magnitude below the
// object store — that is the OCM's entire value proposition — but reads and
// writes share the device's channels, so when the OCM floods the device
// with asynchronous cache-fill writes, reads queue behind them and
// *cache-hit latency can exceed object-store latency*. That queueing
// behaviour is deliberate: it reproduces the Q3/Q4 brown-out the paper
// analyzes in Figure 6.
struct LocalSsdOptions {
  int devices = 2;               // NVMe devices in the RAID 0 set
  int channels_per_device = 4;
  double base_latency = 0.00012;      // seconds
  double device_read_bandwidth = 1.2e9;   // bytes/sec per device
  // Sustained write bandwidth is far below read bandwidth on instance
  // NVMe — the asymmetry that lets a flood of asynchronous cache fills
  // outpace the device and back reads up behind them.
  double device_write_bandwidth = 0.35e9;
  double capacity_bytes = 600e9;
  double write_error_rate = 0;        // fault injection for cache writes
  uint64_t seed = 7;
};

// Key-value cache device: the OCM stores pages under their object keys.
class SimLocalSsd {
 public:
  explicit SimLocalSsd(LocalSsdOptions options = LocalSsdOptions());

  Status Write(const std::string& key, std::vector<uint8_t> data,
               SimTime arrival, SimTime* completion);
  Result<std::vector<uint8_t>> Read(const std::string& key, SimTime arrival,
                                    SimTime* completion);
  // Erase is a metadata operation (trim); no queueing cost.
  void Erase(const std::string& key);
  bool Contains(const std::string& key) const;

  uint64_t StoredBytes() const { return stored_bytes_; }
  double CapacityBytes() const { return options_.capacity_bytes; }

  // Seconds of queued work currently backed up on the device — the signal
  // a latency-aware OCM would monitor (the paper's proposed future work).
  double BacklogSeconds(SimTime now) const { return channels_.Backlog(now); }

  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats(); }

  // Fault injection (tests): probability that a Write fails.
  void set_write_error_rate(double rate) { options_.write_error_rate = rate; }

  const LocalSsdOptions& options() const { return options_; }

 private:
  SimTime Service(uint64_t bytes, SimTime arrival, bool is_write);

  LocalSsdOptions options_;
  Rng rng_;
  ChannelQueue channels_;
  std::unordered_map<std::string, std::vector<uint8_t>> data_;
  uint64_t stored_bytes_ = 0;
  DeviceStats stats_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_LOCAL_SSD_H_
