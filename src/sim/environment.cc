#include "sim/environment.h"

#include <algorithm>

namespace cloudiq {

namespace {
// SAP IQ's flush/prefetch pipelines stop scaling near this stream count
// at the 512 KB page size; see NodeContext::IoWidth(). At ~15 MB/s per
// S3 stream this is what produces the ~9 Gb/s NIC plateau the paper
// observes on the 96-vCPU instance (Figure 8).
constexpr int kMaxIoStreams = 80;

LocalSsdOptions SsdOptionsFor(const InstanceProfile& profile) {
  LocalSsdOptions o;
  o.devices = std::max(1, profile.ssd_devices);
  o.capacity_bytes = profile.ssd_gb * 1e9;
  return o;
}
}  // namespace

NodeContext::NodeContext(const InstanceProfile& profile, SimEnvironment* env)
    : profile_(profile),
      env_(env),
      trace_pid_(static_cast<uint32_t>(env->node_count()) + 1),
      nic_(profile.nic_gbps),
      ssd_(SsdOptionsFor(profile)),
      io_(&clock_, &executor_) {
  io_.set_profiler(&env->telemetry().profiler());
  Tracer& tracer = env->telemetry().tracer();
  std::string node = "node" + std::to_string(trace_pid_ - 1);
  tracer.SetProcessName(trace_pid_, node + " (" + profile.name + ")");
  tracer.SetTrackName(trace_pid_, kTrackExec, "executor");
  tracer.SetTrackName(trace_pid_, kTrackTxn, "transactions");
  tracer.SetTrackName(trace_pid_, kTrackBuffer, "buffer manager");
  tracer.SetTrackName(trace_pid_, kTrackOcm, "OCM (SSD cache)");
  tracer.SetTrackName(trace_pid_, kTrackStoreIo, "object-store I/O");
  tracer.SetTrackName(trace_pid_, kTrackKeygen, "key generator");
  tracer.SetTrackName(trace_pid_, kTrackStall, "wait-state stalls");
}

int NodeContext::IoWidth() const {
  // Each vCPU drives a couple of asynchronous requests; the pipeline
  // tops out at kMaxIoStreams.
  return std::min(2 * profile_.vcpus, kMaxIoStreams);
}

SimEnvironment::SimEnvironment(ObjectStoreOptions store_options)
    : object_store_(store_options) {
  object_store_.set_cost_meter(&cost_meter_);
  object_store_.set_telemetry(&telemetry_);
  // Keep the ledger's request pricing in lockstep with the meter's, so
  // per-query USD sums to the global total (telemetry cannot see
  // CloudPrices itself; see LedgerPrices).
  LedgerPrices ledger_prices;
  ledger_prices.put_per_1k = cost_meter_.prices().s3_put_per_1k;
  ledger_prices.get_per_1k = cost_meter_.prices().s3_get_per_1k;
  ledger_prices.select_per_1k = cost_meter_.prices().s3_select_per_1k;
  ledger_prices.select_scanned_per_gb =
      cost_meter_.prices().s3_select_scanned_per_gb;
  ledger_prices.select_returned_per_gb =
      cost_meter_.prices().s3_select_returned_per_gb;
  telemetry_.ledger().set_prices(ledger_prices);
  telemetry_.tracer().SetProcessName(kClusterPid, "cluster");
  telemetry_.tracer().SetTrackName(kClusterPid, kTrackObjectStore,
                                   "object store (S3)");
}

SimBlockVolume& SimEnvironment::CreateVolume(const std::string& name,
                                             BlockVolumeOptions options) {
  auto it = volumes_.find(name);
  if (it == volumes_.end()) {
    it = volumes_
             .emplace(name, std::make_unique<SimBlockVolume>(options))
             .first;
  }
  return *it->second;
}

SimBlockVolume* SimEnvironment::FindVolume(const std::string& name) {
  auto it = volumes_.find(name);
  return it == volumes_.end() ? nullptr : it->second.get();
}

NodeContext& SimEnvironment::AddNode(const InstanceProfile& profile) {
  nodes_.push_back(std::make_unique<NodeContext>(profile, this));
  return *nodes_.back();
}

}  // namespace cloudiq
