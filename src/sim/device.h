#ifndef CLOUDIQ_SIM_DEVICE_H_
#define CLOUDIQ_SIM_DEVICE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/sim_clock.h"

namespace cloudiq {

// Building blocks for analytic device models. Every simulated device is a
// small queueing network assembled from these two primitives; submitting a
// request advances the queue state and returns the absolute completion time,
// from which the caller derives the request's latency.

// A pool of `channels` identical servers (think: NVMe queues, S3 connection
// streams, an EBS volume's internal parallelism). A request occupies the
// earliest-free channel for `occupancy` seconds; `extra_latency` is
// pipelined delay (propagation, first-byte wait) that does not occupy the
// channel.
class ChannelQueue {
 public:
  explicit ChannelQueue(int channels)
      : next_free_(static_cast<size_t>(std::max(1, channels)), 0.0) {}

  SimTime Submit(SimTime arrival, double occupancy, double extra_latency) {
    // Pick the earliest-free channel.
    size_t best = 0;
    for (size_t i = 1; i < next_free_.size(); ++i) {
      if (next_free_[i] < next_free_[best]) best = i;
    }
    SimTime start = std::max(arrival, next_free_[best]);
    next_free_[best] = start + occupancy;
    return start + occupancy + extra_latency;
  }

  // Earliest time a new request could start service.
  SimTime EarliestStart() const {
    SimTime t = next_free_[0];
    for (SimTime v : next_free_) t = std::min(t, v);
    return t;
  }

  // Fraction of channels still busy at time `t` — a utilization signal used
  // by the local-SSD model to inflate read latency under write floods.
  double BusyFraction(SimTime t) const {
    size_t busy = 0;
    for (SimTime v : next_free_) {
      if (v > t) ++busy;
    }
    return static_cast<double>(busy) / static_cast<double>(next_free_.size());
  }

  // Total backlog (seconds of queued work past `t`) across channels.
  double Backlog(SimTime t) const {
    double sum = 0;
    for (SimTime v : next_free_) sum += std::max(0.0, v - t);
    return sum;
  }

 private:
  std::vector<SimTime> next_free_;
};

// Enforces a maximum request rate (IOPS cap, per-prefix request limits).
// Requests are admitted no faster than `rate` per second; an over-rate
// request waits for the next slot.
class RatePacer {
 public:
  explicit RatePacer(double rate_per_sec) : interval_(1.0 / rate_per_sec) {}

  // Returns the admission time for a request arriving at `arrival`.
  SimTime Admit(SimTime arrival) {
    SimTime start = std::max(arrival, next_slot_);
    next_slot_ = start + interval_;
    return start;
  }

  SimTime next_slot() const { return next_slot_; }

 private:
  double interval_;
  SimTime next_slot_ = 0.0;
};

// Aggregate I/O statistics kept by every device.
struct DeviceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t deletes = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  double read_time = 0;   // summed per-request latency, seconds
  double write_time = 0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_DEVICE_H_
