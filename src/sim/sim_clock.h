#ifndef CLOUDIQ_SIM_SIM_CLOCK_H_
#define CLOUDIQ_SIM_SIM_CLOCK_H_

#include <algorithm>
#include <cassert>

namespace cloudiq {

// Simulated time, in seconds since simulation start.
using SimTime = double;

// Virtual wall clock shared by every component of a simulation.
//
// Nothing in CloudIQ sleeps: device models compute completion times
// analytically and the clock jumps forward. Benchmarks therefore report
// simulated seconds (comparable to the paper's measurements) while running
// in real milliseconds.
class SimClock {
 public:
  SimClock() = default;

  SimTime now() const { return now_; }

  // Moves time forward by `seconds` (must be >= 0).
  void Advance(double seconds) {
    assert(seconds >= 0);
    now_ += seconds;
  }

  // Moves time forward to `t` if `t` is in the future; never moves back.
  void AdvanceTo(SimTime t) { now_ = std::max(now_, t); }

 private:
  SimTime now_ = 0.0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_SIM_CLOCK_H_
