#ifndef CLOUDIQ_SIM_SIM_CLOCK_H_
#define CLOUDIQ_SIM_SIM_CLOCK_H_

#include <algorithm>

namespace cloudiq {

// Simulated time, in seconds since simulation start.
using SimTime = double;

// Virtual wall clock shared by every component of a simulation.
//
// Nothing in CloudIQ sleeps: device models compute completion times
// analytically and the clock jumps forward. Benchmarks therefore report
// simulated seconds (comparable to the paper's measurements) while running
// in real milliseconds.
class SimClock {
 public:
  SimClock() = default;

  SimTime now() const { return now_; }

  // Moves time forward by `seconds`. A negative advance — typically a
  // device model's duration formula going negative on unexpected input —
  // is clamped to zero rather than asserted: the old assert compiled out
  // under NDEBUG, silently letting release builds run the clock
  // backwards, and monotonicity is what makes completion times
  // meaningful. NaN is also ignored (NaN > 0 is false).
  void Advance(double seconds) {
    if (seconds > 0) now_ += seconds;
  }

  // Moves time forward to `t` if `t` is in the future; never moves back.
  void AdvanceTo(SimTime t) { now_ = std::max(now_, t); }

 private:
  SimTime now_ = 0.0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_SIM_CLOCK_H_
