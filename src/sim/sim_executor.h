#ifndef CLOUDIQ_SIM_SIM_EXECUTOR_H_
#define CLOUDIQ_SIM_SIM_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <map>

#include "sim/sim_clock.h"

namespace cloudiq {

// Deterministic background-task queue.
//
// The OCM's asynchronous work (cache fills after read-through, write-back
// uploads to the object store) is modelled as tasks scheduled here. Tasks
// run when simulated time passes their due time; running a task typically
// submits I/O to a device model, which advances that device's queue state
// and thereby inflates the latency of concurrent foreground requests — the
// mechanism behind the OCM brown-out analysis.
//
// Tasks with equal due times run in scheduling order, so a simulation with
// a fixed seed is exactly reproducible.
class SimExecutor {
 public:
  using Task = std::function<void(SimTime run_at)>;

  // Enqueues `task` to run at `due` (or as soon after as the queue drains).
  void Schedule(SimTime due, Task task) {
    tasks_.emplace(std::pair<SimTime, uint64_t>(due, seq_++),
                   std::move(task));
  }

  // Runs every task due at or before `now`. Tasks may schedule more tasks;
  // newly scheduled tasks also run if due.
  void RunDue(SimTime now) {
    while (!tasks_.empty() && tasks_.begin()->first.first <= now) {
      auto node = tasks_.extract(tasks_.begin());
      node.mapped()(node.key().first);
    }
  }

  // Runs everything regardless of due time (used at shutdown / commit
  // barriers). Returns the number of tasks run.
  uint64_t Drain() {
    uint64_t n = 0;
    while (!tasks_.empty()) {
      auto node = tasks_.extract(tasks_.begin());
      node.mapped()(node.key().first);
      ++n;
    }
    return n;
  }

  size_t pending() const { return tasks_.size(); }

 private:
  std::map<std::pair<SimTime, uint64_t>, Task> tasks_;
  uint64_t seq_ = 0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_SIM_EXECUTOR_H_
