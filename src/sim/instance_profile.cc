#include "sim/instance_profile.h"

#include "sim/cost_model.h"

namespace cloudiq {

namespace {
const CloudPrices kPrices;
}  // namespace

InstanceProfile InstanceProfile::M5ad4xlarge() {
  return {"m5ad.4xlarge", /*vcpus=*/16,   /*ram_gb=*/64,
          /*ssd_gb=*/600, /*ssd_devices=*/2, /*nic_gbps=*/10,
          kPrices.ec2_m5ad_4xlarge};
}

InstanceProfile InstanceProfile::M5ad12xlarge() {
  return {"m5ad.12xlarge", /*vcpus=*/48,    /*ram_gb=*/192,
          /*ssd_gb=*/1800, /*ssd_devices=*/2, /*nic_gbps=*/12,
          kPrices.ec2_m5ad_12xlarge};
}

InstanceProfile InstanceProfile::M5ad24xlarge() {
  return {"m5ad.24xlarge", /*vcpus=*/96,    /*ram_gb=*/384,
          /*ssd_gb=*/3600, /*ssd_devices=*/4, /*nic_gbps=*/20,
          kPrices.ec2_m5ad_24xlarge};
}

InstanceProfile InstanceProfile::R5Large() {
  return {"r5.large", /*vcpus=*/2, /*ram_gb=*/16,
          /*ssd_gb=*/0, /*ssd_devices=*/0, /*nic_gbps=*/10,
          kPrices.ec2_r5_large};
}

}  // namespace cloudiq
