#include "sim/local_ssd.h"

namespace cloudiq {

SimLocalSsd::SimLocalSsd(LocalSsdOptions options)
    : options_(options),
      rng_(options.seed),
      channels_(options.devices * options.channels_per_device) {}

SimTime SimLocalSsd::Service(uint64_t bytes, SimTime arrival,
                             bool is_write) {
  double device_bw = is_write ? options_.device_write_bandwidth
                              : options_.device_read_bandwidth;
  double per_channel_bw = device_bw / options_.channels_per_device;
  double transfer = static_cast<double>(bytes) / per_channel_bw;
  return channels_.Submit(arrival, transfer, options_.base_latency);
}

Status SimLocalSsd::Write(const std::string& key, std::vector<uint8_t> data,
                          SimTime arrival, SimTime* completion) {
  *completion = Service(data.size(), arrival, /*is_write=*/true);
  ++stats_.writes;
  stats_.write_bytes += data.size();
  stats_.write_time += *completion - arrival;
  if (options_.write_error_rate > 0 &&
      rng_.Bernoulli(options_.write_error_rate)) {
    return Status::IoError("simulated local SSD write failure");
  }
  auto it = data_.find(key);
  if (it != data_.end()) stored_bytes_ -= it->second.size();
  stored_bytes_ += data.size();
  data_[key] = std::move(data);
  return Status::Ok();
}

Result<std::vector<uint8_t>> SimLocalSsd::Read(const std::string& key,
                                               SimTime arrival,
                                               SimTime* completion) {
  auto it = data_.find(key);
  uint64_t bytes = it == data_.end() ? 0 : it->second.size();
  *completion = Service(bytes, arrival, /*is_write=*/false);
  ++stats_.reads;
  stats_.read_bytes += bytes;
  stats_.read_time += *completion - arrival;
  if (it == data_.end()) return Status::NotFound(key);
  return it->second;
}

void SimLocalSsd::Erase(const std::string& key) {
  auto it = data_.find(key);
  if (it == data_.end()) return;
  stored_bytes_ -= it->second.size();
  data_.erase(it);
}

bool SimLocalSsd::Contains(const std::string& key) const {
  return data_.count(key) > 0;
}

}  // namespace cloudiq
