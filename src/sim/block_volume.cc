#include "sim/block_volume.h"

#include <algorithm>

namespace cloudiq {

BlockVolumeOptions BlockVolumeOptions::EbsGp2(double size_gb) {
  BlockVolumeOptions o;
  o.name = "ebs-gp2";
  o.base_latency = 0.0007;
  // gp2: 3 IOPS per provisioned GB, capped at 16,000 — with burst
  // credits sustaining 3,000 IOPS on small volumes (the system dbspace's
  // metadata traffic lives comfortably inside the burst envelope).
  o.iops = std::clamp(3.0 * size_gb, 3000.0, 16000.0);
  o.bandwidth = 250e6;
  // Four effective service channels: a lone stream sees ~62 MB/s (typical
  // of gp2 single-threaded throughput) while concurrent streams together
  // reach the 250 MB/s volume ceiling.
  o.channels = 4;
  return o;
}

BlockVolumeOptions BlockVolumeOptions::EfsStandard(double utilized_gb) {
  BlockVolumeOptions o;
  o.name = "efs-standard";
  o.base_latency = 0.003;  // NFS round trip
  o.iops = 7000;
  // Standard EFS: baseline throughput scales with utilized space
  // (~50 MB/s per TB) with burst credit up to ~100 MB/s for this size
  // class; we model the sustained envelope.
  o.bandwidth = std::clamp(utilized_gb / 1024.0 * 50e6, 25e6, 110e6);
  o.channels = 4;
  return o;
}

SimBlockVolume::SimBlockVolume(BlockVolumeOptions options)
    : options_(options),
      channels_(options.channels),
      iops_pacer_(options.iops) {}

SimTime SimBlockVolume::Service(uint64_t bytes, SimTime arrival) {
  SimTime admitted = iops_pacer_.Admit(arrival);
  // A request occupies bandwidth for its transfer time; the volume-wide
  // bandwidth ceiling is modelled by dividing per-channel bandwidth.
  double per_channel_bw = options_.bandwidth / options_.channels;
  double transfer = static_cast<double>(bytes) / per_channel_bw;
  return channels_.Submit(admitted, transfer, options_.base_latency);
}

Status SimBlockVolume::Write(uint64_t first_block,
                             std::vector<uint8_t> data, SimTime arrival,
                             SimTime* completion) {
  *completion = Service(data.size(), arrival);
  ++stats_.writes;
  stats_.write_bytes += data.size();
  stats_.write_time += *completion - arrival;
  auto it = runs_.find(first_block);
  if (it != runs_.end()) stored_bytes_ -= it->second.size();
  stored_bytes_ += data.size();
  runs_[first_block] = std::move(data);
  return Status::Ok();
}

Result<std::vector<uint8_t>> SimBlockVolume::Read(uint64_t first_block,
                                                  SimTime arrival,
                                                  SimTime* completion) {
  auto it = runs_.find(first_block);
  uint64_t bytes = it == runs_.end() ? 0 : it->second.size();
  *completion = Service(bytes, arrival);
  ++stats_.reads;
  stats_.read_bytes += bytes;
  stats_.read_time += *completion - arrival;
  if (it == runs_.end()) {
    return Status::NotFound("no run at block " + std::to_string(first_block));
  }
  return it->second;
}

Status SimBlockVolume::Free(uint64_t first_block, SimTime arrival,
                            SimTime* completion) {
  *completion = arrival;  // metadata-only
  auto it = runs_.find(first_block);
  if (it != runs_.end()) {
    stored_bytes_ -= it->second.size();
    runs_.erase(it);
  }
  return Status::Ok();
}

}  // namespace cloudiq
