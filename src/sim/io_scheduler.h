#ifndef CLOUDIQ_SIM_IO_SCHEDULER_H_
#define CLOUDIQ_SIM_IO_SCHEDULER_H_

#include <functional>
#include <vector>

#include "sim/sim_clock.h"
#include "sim/sim_executor.h"

namespace cloudiq {

// Folds batches of (possibly parallel) operations into simulated elapsed
// time.
//
// An Op is a callable that, given its start time, submits work to device
// models and returns its completion time. RunParallel dispatches ops onto
// `width` virtual workers (worker = a CPU thread driving an I/O stream,
// exactly SAP IQ's prefetch/flush thread pools); the clock advances to the
// time the last worker finishes. Background tasks that come due while the
// batch executes are interleaved, so asynchronous OCM work competes with
// foreground I/O for device time.
class IoScheduler {
 public:
  using Op = std::function<SimTime(SimTime start)>;

  IoScheduler(SimClock* clock, SimExecutor* executor)
      : clock_(clock), executor_(executor) {}

  // Runs `ops` with at most `width` in flight. Advances the clock past the
  // last completion.
  void RunParallel(const std::vector<Op>& ops, int width);

  // Runs a single op synchronously; advances the clock.
  SimTime RunOne(const Op& op);

  // Accounts pure CPU work of `total_cpu_seconds` spread over
  // `parallelism` cores; advances the clock by the critical path.
  void AddCpuWork(double total_cpu_seconds, int parallelism);

  SimClock* clock() { return clock_; }
  SimExecutor* executor() { return executor_; }

 private:
  SimClock* clock_;
  SimExecutor* executor_;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_IO_SCHEDULER_H_
