#ifndef CLOUDIQ_SIM_IO_SCHEDULER_H_
#define CLOUDIQ_SIM_IO_SCHEDULER_H_

#include <functional>
#include <vector>

#include "sim/sim_clock.h"
#include "sim/sim_executor.h"
#include "telemetry/stall_profiler.h"

namespace cloudiq {

// Folds batches of (possibly parallel) operations into simulated elapsed
// time.
//
// An Op is a callable that, given its start time, submits work to device
// models and returns its completion time. RunParallel dispatches ops onto
// `width` virtual workers (worker = a CPU thread driving an I/O stream,
// exactly SAP IQ's prefetch/flush thread pools); the clock advances to the
// time the last worker finishes. Background tasks that come due while the
// batch executes are interleaved, so asynchronous OCM work competes with
// foreground I/O for device time.
class IoScheduler {
 public:
  using Op = std::function<SimTime(SimTime start)>;

  IoScheduler(SimClock* clock, SimExecutor* executor)
      : clock_(clock), executor_(executor) {}

  // Runs `ops` with at most `width` in flight. Advances the clock past the
  // last completion.
  void RunParallel(const std::vector<Op>& ops, int width);

  // Runs a single op synchronously; advances the clock.
  SimTime RunOne(const Op& op);

  // Accounts pure CPU work of `total_cpu_seconds` spread over
  // `parallelism` cores; advances the clock by the critical path.
  void AddCpuWork(double total_cpu_seconds, int parallelism);

  SimClock* clock() { return clock_; }
  SimExecutor* executor() { return executor_; }

  // Wires the stall profiler so RunParallel can bracket its lanes in a
  // parallel section: the lanes' device windows overlap in wall sim-time,
  // and the section scales their raw charges to the batch's actual
  // elapsed time (see StallProfiler).
  void set_profiler(StallProfiler* profiler) { profiler_ = profiler; }

 private:
  SimClock* clock_;
  SimExecutor* executor_;
  StallProfiler* profiler_ = nullptr;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SIM_IO_SCHEDULER_H_
