#ifndef CLOUDIQ_SNAPSHOT_SNAPSHOT_MANAGER_H_
#define CLOUDIQ_SNAPSHOT_SNAPSHOT_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "sim/block_volume.h"
#include "sim/environment.h"
#include "store/object_store_io.h"

namespace cloudiq {

// The snapshot manager (§5): frequent, near-instantaneous snapshots with
// point-in-time restore, built on two ideas —
//
//  1. *Deferred deletion.* When the transaction manager drops a page
//     version, ownership transfers here instead of deleting the object;
//     the page is retained for a user-defined retention period and
//     permanently deleted by a background sweep. The FIFO of
//     (object-key, expiry) records is itself stored on the object store.
//
//  2. *Tiny backups.* Cloud dbspaces are never backed up — their pages are
//     already retained. A snapshot backs up only the snapshot-manager
//     metadata plus the system dbspace (catalog, freelists, log), which
//     the reduced freelist keeps small. Restores bring the system dbspace
//     back and garbage collect exactly the keys in
//     (max key at snapshot, max key at restore] — computable because the
//     Object Key Generator is monotonic.
class SnapshotManager {
 public:
  struct Options {
    double retention_seconds = 7 * 24 * 3600;
  };

  struct SnapshotInfo {
    uint64_t id = 0;
    SimTime taken_at = 0;
    uint64_t max_allocated_key = 0;  // keygen watermark at snapshot time
    uint64_t backup_bytes = 0;       // size of the full (non-cloud) backup
    double duration_seconds = 0;     // simulated time the snapshot took
    SimTime expires_at = 0;
  };

  SnapshotManager(NodeContext* node, ObjectStoreIo* io,
                  SimObjectStore* store)
      : SnapshotManager(node, io, store, Options()) {}
  SnapshotManager(NodeContext* node, ObjectStoreIo* io,
                  SimObjectStore* store, Options options);

  // Delete-interceptor hook: the transaction manager dropped `key`.
  // Returns true (ownership taken) — the page is queued for deferred
  // deletion at now + retention.
  bool OnPageDropped(uint64_t key) EXCLUDES(mu_);

  // Background sweep: permanently deletes pages whose retention expired;
  // prunes the FIFO and re-persists the metadata.
  Status CollectExpired() EXCLUDES(mu_);

  // Takes a snapshot: persists the FIFO metadata and a full backup of the
  // system volume (and any other non-cloud volumes passed in).
  // `max_allocated_key` is the keygen watermark recorded for restore GC.
  Result<SnapshotInfo> TakeSnapshot(
      uint64_t max_allocated_key,
      const std::vector<SimBlockVolume*>& non_cloud_volumes) EXCLUDES(mu_);

  // Restores the given snapshot: non-cloud volumes are restored from the
  // backup, the retained-page FIFO is rolled back to its snapshot image,
  // and every key in (snapshot watermark, current watermark] is polled
  // and deleted from the object store. Returns the number of objects
  // garbage collected. The caller must re-open catalogs afterwards
  // (TransactionManager::RecoverAfterCrash).
  Result<uint64_t> Restore(uint64_t snapshot_id,
                           uint64_t current_max_allocated_key,
                           const std::vector<SimBlockVolume*>&
                               non_cloud_volumes) EXCLUDES(mu_);

  // Snapshot registry.
  std::vector<SnapshotInfo> ListSnapshots() const EXCLUDES(mu_);

  // A copy of the snapshot's backup image (per-volume run maps), for
  // constructing read-only views over the past without restoring (§8
  // future work: "create read-only views over past snapshots in an
  // existing database without having to recover").
  struct SnapshotImage {
    SnapshotInfo info;
    std::vector<std::unordered_map<uint64_t, std::vector<uint8_t>>> volumes;
  };
  Result<SnapshotImage> GetImage(uint64_t snapshot_id) const EXCLUDES(mu_);

  // Deletes snapshots whose retention expired (their backups go too).
  Status ExpireSnapshots() EXCLUDES(mu_);

  size_t retained_page_count() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return fifo_.size();
  }

  // Keys currently owned by the snapshot manager (retained, awaiting
  // expiry). Used by consistency audits.
  std::vector<uint64_t> RetainedKeys() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    std::vector<uint64_t> keys;
    keys.reserve(fifo_.size());
    for (const Retained& r : fifo_) keys.push_back(r.key);
    return keys;
  }
  uint64_t pages_permanently_deleted() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pages_permanently_deleted_;
  }

 private:
  struct Retained {
    uint64_t key;
    SimTime expires_at;
  };
  struct StoredSnapshot {
    SnapshotInfo info;
    // Backup image: per-volume run maps, plus the FIFO at snapshot time.
    std::vector<std::unordered_map<uint64_t, std::vector<uint8_t>>> volumes;
    std::deque<Retained> fifo;
  };

  // Persists the FIFO metadata to the object store ("just like the user
  // data, this list of metadata is also stored on object stores").
  Status PersistMetadata() REQUIRES(mu_);

  NodeContext* node_;
  ObjectStoreIo* io_;
  SimObjectStore* store_;
  Options options_;

  // mu_ is held across the manager's own store/NIC I/O: nothing below the
  // snapshot layer calls back into it, so the re-entrancy hazard that
  // forbids lock-across-I/O elsewhere does not exist here, and holding it
  // keeps the FIFO/registry mutations atomic per operation.
  mutable Mutex mu_{lockrank::kSnapshotManager};
  std::deque<Retained> fifo_
      GUARDED_BY(mu_);  // ascending expiry (FIFO by drop time)
  std::map<uint64_t, StoredSnapshot> snapshots_ GUARDED_BY(mu_);
  uint64_t next_snapshot_id_ GUARDED_BY(mu_) = 1;
  uint64_t pages_permanently_deleted_ GUARDED_BY(mu_) = 0;
};

}  // namespace cloudiq

#endif  // CLOUDIQ_SNAPSHOT_SNAPSHOT_MANAGER_H_
