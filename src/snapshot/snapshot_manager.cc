#include "snapshot/snapshot_manager.h"

#include "common/coding.h"

namespace cloudiq {
namespace {
constexpr char kMetadataKey[] = "snapmgr/metadata";
}  // namespace

SnapshotManager::SnapshotManager(NodeContext* node, ObjectStoreIo* io,
                                 SimObjectStore* store, Options options)
    : node_(node), io_(io), store_(store), options_(options) {}

bool SnapshotManager::OnPageDropped(uint64_t key) {
  MutexLock lock(&mu_);
  fifo_.push_back(
      Retained{key, node_->clock().now() + options_.retention_seconds});
  return true;
}

Status SnapshotManager::PersistMetadata() {
  std::vector<uint8_t> bytes;
  PutU64(bytes, fifo_.size());
  for (const Retained& r : fifo_) {
    PutU64(bytes, r.key);
    PutDouble(bytes, r.expires_at);
  }
  SimTime done = node_->clock().now();
  // NOLINT(cloudiq-direct-put): snapshot metadata lives under a reserved
  // string prefix that cannot collide with keygen's numeric keyspace, and
  // it is legitimately rewritten in place on every change.
  // NOLINT(cloudiq-lock-order): the metadata PUT must be atomic with the
  // FIFO image it serializes; snapshot admin ops are serialized by design
  // and the sim store never calls back into the snapshot layer.
  Status st = store_->Put(kMetadataKey, std::move(bytes),
                          node_->clock().now(), &done);
  node_->clock().AdvanceTo(done);
  return st;
}

Status SnapshotManager::CollectExpired() {
  MutexLock lock(&mu_);
  SimTime now = node_->clock().now();
  bool changed = false;
  while (!fifo_.empty() && fifo_.front().expires_at <= now) {
    SimTime done = now;
    // NOLINT(cloudiq-lock-order): the deletes must stay atomic with the
    // FIFO pops they mirror; admin ops are serialized and the sim store
    // never re-enters this layer.
    CLOUDIQ_RETURN_IF_ERROR(io_->Delete(fifo_.front().key, now, &done));
    node_->clock().AdvanceTo(done);
    fifo_.pop_front();
    ++pages_permanently_deleted_;
    changed = true;
  }
  if (changed) return PersistMetadata();
  return Status::Ok();
}

Result<SnapshotManager::SnapshotInfo> SnapshotManager::TakeSnapshot(
    uint64_t max_allocated_key,
    const std::vector<SimBlockVolume*>& non_cloud_volumes) {
  MutexLock lock(&mu_);
  SimTime start = node_->clock().now();
  CLOUDIQ_RETURN_IF_ERROR(PersistMetadata());

  StoredSnapshot stored;
  stored.fifo = fifo_;
  uint64_t backup_bytes = 0;
  for (SimBlockVolume* volume : non_cloud_volumes) {
    stored.volumes.push_back(volume->SnapshotRuns());
    backup_bytes += volume->StoredBytes();
  }
  // The backup itself lands on the object store; charge its upload (one
  // logical PUT stream — the volumes are small by design).
  SimTime done = node_->clock().now();
  std::vector<uint8_t> marker(64, 0);  // backup manifest object
  // NOLINT(cloudiq-direct-put): backup manifests use the reserved
  // "backup/" string prefix, disjoint from keygen's numeric keys; each
  // snapshot id is written exactly once.
  // NOLINT(cloudiq-lock-order): the backup upload must be atomic with the
  // catalog entry it creates; snapshot admin ops are serialized and the
  // sim store never re-enters this layer.
  CLOUDIQ_RETURN_IF_ERROR(store_->Put(
      "backup/" + std::to_string(next_snapshot_id_), std::move(marker),
      node_->clock().now(), &done));
  node_->clock().AdvanceTo(done);
  // Upload time for the backup payload through the NIC.
  node_->clock().AdvanceTo(node_->nic().Transfer(backup_bytes, done));

  SnapshotInfo info;
  info.id = next_snapshot_id_++;
  info.taken_at = start;
  info.max_allocated_key = max_allocated_key;
  info.backup_bytes = backup_bytes;
  info.duration_seconds = node_->clock().now() - start;
  info.expires_at = start + options_.retention_seconds;
  stored.info = info;
  snapshots_[info.id] = std::move(stored);
  return info;
}

Result<uint64_t> SnapshotManager::Restore(
    uint64_t snapshot_id, uint64_t current_max_allocated_key,
    const std::vector<SimBlockVolume*>& non_cloud_volumes) {
  MutexLock lock(&mu_);
  auto it = snapshots_.find(snapshot_id);
  if (it == snapshots_.end()) {
    return Status::NotFound("snapshot " + std::to_string(snapshot_id));
  }
  StoredSnapshot& stored = it->second;
  if (node_->clock().now() > stored.info.expires_at) {
    return Status::FailedPrecondition("snapshot retention expired");
  }
  if (stored.volumes.size() != non_cloud_volumes.size()) {
    return Status::InvalidArgument("volume count mismatch");
  }

  // Restore the system dbspace (and other non-cloud volumes) from the
  // backup; download time through the NIC.
  uint64_t restore_bytes = 0;
  for (size_t i = 0; i < non_cloud_volumes.size(); ++i) {
    for (const auto& [run, data] : stored.volumes[i]) {
      restore_bytes += data.size();
    }
    non_cloud_volumes[i]->RestoreRuns(stored.volumes[i]);
  }
  node_->clock().AdvanceTo(
      node_->nic().Transfer(restore_bytes, node_->clock().now()));

  // Roll the retained-page FIFO back to its snapshot image: pages dropped
  // after the snapshot are referenced again by the restored catalog.
  fifo_ = stored.fifo;
  CLOUDIQ_RETURN_IF_ERROR(PersistMetadata());

  // Pages created after the snapshot are garbage: their keys form the
  // contiguous range (snapshot watermark, restore watermark] thanks to
  // monotonic key generation. Poll and delete.
  uint64_t collected = 0;
  for (uint64_t key = stored.info.max_allocated_key;
       key < current_max_allocated_key; ++key) {
    SimTime done = node_->clock().now();
    // NOLINT(cloudiq-lock-order): restore is a stop-the-world admin op —
    // the orphan sweep must finish before anyone sees the rolled-back
    // catalog; the sim store never re-enters this layer.
    if (io_->Exists(key, node_->clock().now(), &done)) {
      node_->clock().AdvanceTo(done);
      // NOLINT(cloudiq-lock-order): same stop-the-world restore sweep as
      // the Exists probe above.
      CLOUDIQ_RETURN_IF_ERROR(io_->Delete(key, node_->clock().now(), &done));
      ++collected;
    }
    node_->clock().AdvanceTo(done);
  }
  return collected;
}

Result<SnapshotManager::SnapshotImage> SnapshotManager::GetImage(
    uint64_t snapshot_id) const {
  MutexLock lock(&mu_);
  auto it = snapshots_.find(snapshot_id);
  if (it == snapshots_.end()) {
    return Status::NotFound("snapshot " + std::to_string(snapshot_id));
  }
  if (node_->clock().now() > it->second.info.expires_at) {
    return Status::FailedPrecondition("snapshot retention expired");
  }
  SnapshotImage image;
  image.info = it->second.info;
  image.volumes = it->second.volumes;
  return image;
}

std::vector<SnapshotManager::SnapshotInfo> SnapshotManager::ListSnapshots()
    const {
  MutexLock lock(&mu_);
  std::vector<SnapshotInfo> infos;
  for (const auto& [id, stored] : snapshots_) infos.push_back(stored.info);
  return infos;
}

Status SnapshotManager::ExpireSnapshots() {
  MutexLock lock(&mu_);
  SimTime now = node_->clock().now();
  for (auto it = snapshots_.begin(); it != snapshots_.end();) {
    if (it->second.info.expires_at <= now) {
      SimTime done = now;
      // NOLINT(cloudiq-lock-order): backup deletion must stay atomic with
      // the catalog erase it mirrors; admin ops are serialized and the
      // sim store never re-enters this layer.
      CLOUDIQ_RETURN_IF_ERROR(
          store_->Delete("backup/" + std::to_string(it->first), now, &done));
      node_->clock().AdvanceTo(done);
      it = snapshots_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

}  // namespace cloudiq
