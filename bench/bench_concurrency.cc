// Concurrent multi-tenant workload bench: N tenants replay TPC-H mixes
// through the workload engine (admission control + weighted fair share)
// over a multiplex pool, all on the simulated clock.
//
// Three sections:
//  1. Closed-loop concurrency sweep — throughput grows with the admission
//     concurrency limit until the pool saturates (shared object store and
//     system-volume queueing), then flattens.
//  2. Open-loop arrival sweep — as offered load crosses pool capacity the
//     bounded admission queue keeps p95 latency of admitted queries
//     finite and shedding absorbs the excess.
//  3. Fairness — equal weights complete near-equal query counts; 2:1
//     weights track the weight ratio.
//
// Pinning any of --tenants / --arrival / --concurrency switches to a
// single run of that configuration (the smoke and determinism modes of
// scripts/check.sh use this). Everything is seeded: one seed, one
// schedule, byte-identical --report output.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "multiplex/multiplex.h"
#include "workload/workload_driver.h"

namespace cloudiq {
namespace bench {
namespace {

constexpr uint64_t kSeed = 2021;
// Light scan/aggregate mix so each configuration drains in bench time.
const std::vector<int> kMix = {1, 6, 14};

struct RunConfig {
  std::vector<int> mix = kMix;
  int tenants = 2;
  double arrival = 0;  // per tenant, queries/sim-second; 0 = closed loop
  int concurrency = 4;
  std::vector<double> weights;  // empty = all 1.0
  int queries_per_tenant = 8;
  int inflight = 2;
  size_t max_queue_depth = 8;
  double slo_seconds = 0;
};

struct RunResult {
  WorkloadDriver::Summary summary;
  double throughput = 0;
  double p95 = 0;
  double queue_wait_p95 = 0;
  double shed_rate = 0;
};

Result<RunResult> RunWorkload(const RunConfig& config, double scale,
                              bool report) {
  SimEnvironment env;
  Multiplex::Options options;
  options.db.user_storage = UserStorage::kObjectStore;
  options.db = WithNdp(options.db);
  options.db.buffer_capacity_override =
      static_cast<uint64_t>(scale * 0.8e9 * 0.15);
  const int nodes = std::clamp((config.concurrency + 1) / 2, 1, 4);
  Multiplex mx(&env, nodes, options);
  MaybeEnableTracing(&env);

  TpchGenerator gen(scale);
  TpchLoadOptions load_options;
  CLOUDIQ_RETURN_IF_ERROR(
      LoadTpch(&mx.secondary(0), &gen, load_options).status());
  CLOUDIQ_RETURN_IF_ERROR(mx.SyncCatalogs());
  // One untimed warm pass per node: the workload phase then runs at cache
  // steady state, so the concurrency effects under study aren't masked by
  // cold starts.
  for (int i = 0; i < nodes; ++i) {
    for (int q : config.mix) {
      Database& node_db = mx.secondary(i);
      Transaction* txn = node_db.Begin();
      QueryContext ctx = node_db.NewQueryContext(txn);
      CLOUDIQ_RETURN_IF_ERROR(RunTpchQuery(&ctx, q).status());
      CLOUDIQ_RETURN_IF_ERROR(node_db.Commit(txn));
    }
  }

  std::vector<Database*> pool;
  for (int i = 0; i < nodes; ++i) pool.push_back(&mx.secondary(i));
  WorkloadEngine::Options engine_options;
  engine_options.admission.concurrency_limit = config.concurrency;
  engine_options.admission.max_queue_depth = config.max_queue_depth;
  engine_options.slots_per_node = 2;
  WorkloadEngine engine(pool, engine_options, {});
  WorkloadDriver driver(&engine, kSeed);

  std::vector<WorkloadDriver::TenantLoad> loads;
  for (int t = 0; t < config.tenants; ++t) {
    WorkloadDriver::TenantLoad load;
    load.config.name = "tenant" + std::to_string(t);
    load.config.weight = t < static_cast<int>(config.weights.size())
                             ? config.weights[t]
                             : 1.0;
    load.config.slo_seconds = config.slo_seconds;
    load.mix = config.mix;
    load.total_queries = config.queries_per_tenant;
    load.arrival_rate = config.arrival;
    load.inflight = config.inflight;
    loads.push_back(std::move(load));
  }
  CLOUDIQ_ASSIGN_OR_RETURN(WorkloadDriver::Summary summary,
                           driver.Run(loads));

  RunResult result;
  result.throughput = summary.throughput_qps;
  uint64_t submitted = 0;
  for (const auto& t : summary.tenants) {
    result.p95 = std::max(result.p95, t.latency_p95);
    result.queue_wait_p95 = std::max(result.queue_wait_p95,
                                     t.queue_wait_p95);
    submitted += t.counts.submitted;
  }
  if (submitted > 0) {
    result.shed_rate =
        static_cast<double>(summary.TotalShed()) / submitted;
  }
  result.summary = std::move(summary);
  if (report) MaybeReportTelemetry(&mx.secondary(0));
  return result;
}

// Mean per-query service seconds at concurrency 1: the capacity yardstick
// the open-loop sweep prices its arrival rates against.
Result<double> Calibrate(double scale) {
  RunConfig config;
  config.tenants = 1;
  config.concurrency = 1;
  config.inflight = 1;
  config.queries_per_tenant = static_cast<int>(config.mix.size());
  CLOUDIQ_ASSIGN_OR_RETURN(RunResult r, RunWorkload(config, scale, false));
  uint64_t done = r.summary.TotalCompleted();
  if (done == 0) {
    return Status::FailedPrecondition("calibration completed 0 queries");
  }
  return r.summary.makespan_seconds / done;
}

int RunSingle(double scale) {
  const WorkloadFlags& flags = Workload();
  RunConfig config;
  if (flags.tenants > 0) config.tenants = flags.tenants;
  if (flags.arrival >= 0) config.arrival = flags.arrival;
  if (flags.concurrency > 0) config.concurrency = flags.concurrency;
  std::printf("=== Concurrency (single config): tenants=%d arrival=%g "
              "concurrency=%d SF=%g ===\n",
              config.tenants, config.arrival, config.concurrency, scale);
  Result<RunResult> r = RunWorkload(config, scale, true);
  if (!r.ok()) {
    std::fprintf(stderr, "run failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("%-10s %10s %10s %12s %12s %10s\n", "tenant", "done",
              "shed", "p50 (s)", "p95 (s)", "wait p95");
  Hr();
  for (const auto& t : r->summary.tenants) {
    std::printf("%-10s %10llu %10llu %12.2f %12.2f %10.2f\n",
                t.tenant.c_str(),
                static_cast<unsigned long long>(t.counts.completed),
                static_cast<unsigned long long>(t.counts.Shed()),
                t.latency_p50, t.latency_p95, t.queue_wait_p95);
  }
  Hr();
  std::printf("throughput=%.3f q/s  fairness=%.3f  shed_rate=%.2f%%\n",
              r->throughput, r->summary.fairness_index,
              100.0 * r->shed_rate);
  return 0;
}

int RunSweep(double scale) {
  // 1. Closed-loop concurrency scaling.
  std::printf("=== Concurrency sweep: 4 tenants closed-loop (SF=%g) "
              "===\n", scale);
  std::printf("%-12s %14s %12s %12s\n", "Concurrency", "thrpt (q/s)",
              "p95 (s)", "fairness");
  Hr();
  double first_throughput = 0, last_throughput = 0;
  for (int limit : {1, 2, 4, 8}) {
    RunConfig config;
    config.tenants = 4;
    config.concurrency = limit;
    config.queries_per_tenant = 6;
    Result<RunResult> r = RunWorkload(config, scale, false);
    if (!r.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    if (first_throughput == 0) first_throughput = r->throughput;
    last_throughput = r->throughput;
    std::printf("%-12d %14.3f %12.2f %12.3f\n", limit, r->throughput,
                r->p95, r->summary.fairness_index);
  }
  Hr();
  std::printf("Scaling 1->8 slots: %.2fx — grows until the shared "
              "storage saturates, then flattens.\n\n",
              last_throughput / first_throughput);

  // 2. Open-loop arrival sweep, rates priced against measured capacity.
  Result<double> service = Calibrate(scale);
  if (!service.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  const int kConcurrency = 4;
  const double capacity = kConcurrency / *service;  // pool q/s, roughly
  std::printf("=== Arrival sweep: 2 tenants open-loop, concurrency=%d, "
              "queue_depth=8 (mean service %.2f s -> capacity ~%.3f q/s) "
              "===\n",
              kConcurrency, *service, capacity);
  std::printf("%-10s %14s %12s %12s %10s\n", "load", "thrpt (q/s)",
              "p95 (s)", "wait p95", "shed %");
  Hr();
  for (double mult : {0.5, 1.0, 2.0, 4.0}) {
    RunConfig config;
    config.tenants = 2;
    config.concurrency = kConcurrency;
    config.arrival = mult * capacity / config.tenants;
    config.queries_per_tenant = 12;
    config.slo_seconds = 8 * *service;
    Result<RunResult> r = RunWorkload(config, scale, false);
    if (!r.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("%7.1fx   %14.3f %12.2f %12.2f %9.1f%%\n", mult,
                r->throughput, r->p95, r->queue_wait_p95,
                100.0 * r->shed_rate);
  }
  Hr();
  std::printf("Past capacity the bounded queue pins waiting time and "
              "shedding absorbs the overload.\n\n");

  // 3. Fairness at equal and 2:1 weights. Each tenant submits its whole
  // stream at t=0 (inflight == total, deep queue): with both tenants
  // backlogged, every freed slot is a fair-share decision, so the
  // completion counts at first drain expose the weight ratio.
  std::printf("=== Fairness: 2 tenants, full backlog at t=0 ===\n");
  for (const std::vector<double>& weights :
       {std::vector<double>{1, 1}, std::vector<double>{2, 1}}) {
    RunConfig config;
    config.tenants = 2;
    config.concurrency = 2;
    config.weights = weights;
    // Uniform-cost queries: fair share is defined over *service time*, so
    // a single-query mix makes the completion-count ratio readable.
    config.mix = {6};
    config.queries_per_tenant = 16;
    config.inflight = 16;
    config.max_queue_depth = 64;
    Result<RunResult> r = RunWorkload(config, scale, false);
    if (!r.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    const auto& a = r->summary.tenants[0];
    const auto& b = r->summary.tenants[1];
    std::printf("weights %g:%g -> completed %llu:%llu at first drain "
                "(fairness %.3f)\n",
                weights[0], weights[1],
                static_cast<unsigned long long>(a.completed_at_first_drain),
                static_cast<unsigned long long>(b.completed_at_first_drain),
                r->summary.fairness_index);
  }
  std::printf("Equal weights split the pool evenly; 2:1 weights shift "
              "service toward the heavy tenant.\n");
  return 0;
}

int Main() {
  double scale = BenchScale(0.005);
  Telemetry().scale_factor = scale;
  const WorkloadFlags& flags = Workload();
  if (flags.tenants > 0 || flags.arrival >= 0 || flags.concurrency > 0) {
    return RunSingle(scale);
  }
  return RunSweep(scale);
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
