// Reproduces Table 4: monthly data-at-rest storage cost per volume type,
// computed as the compressed user-dbspace footprint times the public
// per-GB-month rates (S3 $0.023, EBS gp2 $0.10, EFS $0.30).
//
// Expected shape (paper, SF1000 => ~518 GB compressed): S3 $12.05,
// EBS $51.80, EFS $155.40 — the order-of-magnitude reduction the paper's
// abstract leads with.

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

int Main() {
  double scale = BenchScale(0.25);
  std::printf(
      "=== Table 4: monthly cost of data at rest (SF=%g) ===\n", scale);

  // The compressed footprint is identical across backends (same pages);
  // load once on the object store and price the same bytes on each
  // medium — exactly how the paper computes the table.
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  Database db(&env, InstanceProfile::M5ad24xlarge(), WithNdp(options));
  MaybeEnableTracing(&db);
  TpchGenerator gen(scale);
  Result<TpchLoadResult> load = LoadTpch(&db, &gen, {});
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 load.status().ToString().c_str());
    return 1;
  }
  double gb = load->bytes_at_rest / 1e9;
  CostMeter& meter = env.cost_meter();

  std::printf("Compressed user dbspace: %.3f GB (raw input %.3f GB, "
              "compression %.2fx)\n\n",
              gb, load->input_bytes / 1e9,
              static_cast<double>(load->input_bytes) /
                  load->bytes_at_rest);
  std::printf("%-9s %28s\n", "Volume", "Monthly storage cost (USD)");
  Hr();
  std::printf("%-9s %28.4f\n", "AWS S3", meter.S3MonthlyUsd(gb));
  std::printf("%-9s %28.4f\n", "AWS EBS", meter.EbsMonthlyUsd(gb));
  std::printf("%-9s %28.4f\n", "AWS EFS", meter.EfsMonthlyUsd(gb));
  Hr();
  std::printf("Ratios: EBS/S3 = %.2fx, EFS/S3 = %.2fx "
              "(paper: 51.80/12.05 = 4.30x, 155.40/12.05 = 12.9x)\n",
              meter.EbsMonthlyUsd(gb) / meter.S3MonthlyUsd(gb),
              meter.EfsMonthlyUsd(gb) / meter.S3MonthlyUsd(gb));
  MaybeReportTelemetry(&db);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
