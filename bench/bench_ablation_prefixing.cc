// Ablation: hashed key prefixes (§3.1). The paper prepends a
// Mersenne-Twister hash of the 64-bit key so that consecutive keys land
// in different S3 rate-limit buckets. This bench loads the same data with
// hashed prefixes vs a single shared "data/" prefix and reports load time
// and throttle events — the cost of ignoring S3's per-prefix
// request-rate guidance.

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

struct AblationResult {
  double load_seconds;
  uint64_t throttle_events;
};

Result<AblationResult> RunLoad(bool hashed, double scale) {
  // A tight per-prefix limit makes the effect visible at bench scale;
  // the real S3 limits (3,500 PUT/s) bite exactly the same way at
  // production request rates.
  ObjectStoreOptions store_options;
  store_options.per_prefix_put_rate = 300;
  store_options.per_prefix_get_rate = 500;
  SimEnvironment env(store_options);
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.storage.object_io.hashed_prefixes = hashed;
  Database db(&env, InstanceProfile::M5ad24xlarge(), WithNdp(options));
  MaybeEnableTracing(&db);
  TpchGenerator gen(scale);
  CLOUDIQ_ASSIGN_OR_RETURN(TpchLoadResult load, LoadTpch(&db, &gen, {}));
  MaybeReportTelemetry(&db);
  return AblationResult{load.seconds,
                        env.object_store().stats().throttle_events};
}

int Main() {
  double scale = BenchScale(0.05);
  std::printf("=== Ablation: hashed key prefixes vs one shared prefix "
              "(SF=%g, per-prefix limit 300 PUT/s) ===\n",
              scale);
  Result<AblationResult> hashed = RunLoad(true, scale);
  Result<AblationResult> plain = RunLoad(false, scale);
  if (!hashed.ok() || !plain.ok()) return 1;

  std::printf("%-18s %12s %18s\n", "Prefix policy", "Load (s)",
              "Throttle events");
  Hr();
  std::printf("%-18s %12.2f %18llu\n", "hashed (paper)",
              hashed->load_seconds,
              static_cast<unsigned long long>(hashed->throttle_events));
  std::printf("%-18s %12.2f %18llu\n", "single prefix",
              plain->load_seconds,
              static_cast<unsigned long long>(plain->throttle_events));
  Hr();
  std::printf("Slowdown without hashed prefixes: %.2fx\n",
              plain->load_seconds / hashed->load_seconds);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
