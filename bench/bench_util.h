#ifndef CLOUDIQ_BENCH_BENCH_UTIL_H_
#define CLOUDIQ_BENCH_BENCH_UTIL_H_

#include <array>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "engine/database.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_loader.h"

namespace cloudiq {
namespace bench {

// Default scale factor for the reproduction benches. The paper ran SF
// 1000 on real AWS hardware; the simulator reproduces the *shape* of the
// results (who wins, by what factor, where crossovers fall) at a scale
// that keeps each bench binary in the seconds range on a laptop. Override
// with the CLOUDIQ_BENCH_SF environment variable.
inline double BenchScale(double fallback = 0.01) {
  const char* env = std::getenv("CLOUDIQ_BENCH_SF");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

struct PowerRunResult {
  double load_seconds = 0;
  std::array<double, kTpchQueryCount> query_seconds{};
  uint64_t bytes_at_rest = 0;
  uint64_t input_bytes = 0;

  double QuerySum() const {
    double total = 0;
    for (double q : query_seconds) total += q;
    return total;
  }
  double QueryGeoMean() const {
    double log_sum = 0;
    for (double q : query_seconds) log_sum += std::log(std::max(q, 1e-9));
    return std::exp(log_sum / kTpchQueryCount);
  }
  double TotalSeconds() const { return load_seconds + QuerySum(); }
};

// Loads TPC-H into `db` and runs the 22 queries sequentially ("power
// mode"), measuring simulated seconds for each phase.
inline Result<PowerRunResult> RunPower(Database* db, TpchGenerator* gen,
                                       size_t partitions = 8) {
  PowerRunResult result;
  TpchLoadOptions load_options;
  load_options.partitions = partitions;
  CLOUDIQ_ASSIGN_OR_RETURN(TpchLoadResult load,
                           LoadTpch(db, gen, load_options));
  result.load_seconds = load.seconds;
  result.bytes_at_rest = load.bytes_at_rest;
  result.input_bytes = load.input_bytes;

  for (int q = 1; q <= kTpchQueryCount; ++q) {
    SimTime before = db->node().clock().now();
    Transaction* txn = db->Begin();
    QueryContext ctx = db->NewQueryContext(txn);
    CLOUDIQ_RETURN_IF_ERROR(RunTpchQuery(&ctx, q).status());
    CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
    result.query_seconds[q - 1] = db->node().clock().now() - before;
  }
  return result;
}

// Runs the 22 queries only (the database must already be loaded).
inline Result<std::array<double, kTpchQueryCount>> RunQueriesOnly(
    Database* db) {
  std::array<double, kTpchQueryCount> times{};
  for (int q = 1; q <= kTpchQueryCount; ++q) {
    SimTime before = db->node().clock().now();
    Transaction* txn = db->Begin();
    QueryContext ctx = db->NewQueryContext(txn);
    CLOUDIQ_RETURN_IF_ERROR(RunTpchQuery(&ctx, q).status());
    CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
    times[q - 1] = db->node().clock().now() - before;
  }
  return times;
}

inline const char* StorageName(UserStorage storage) {
  switch (storage) {
    case UserStorage::kObjectStore: return "AWS S3";
    case UserStorage::kEbs: return "AWS EBS";
    case UserStorage::kEfs: return "AWS EFS";
  }
  return "?";
}

inline void PrintQueryRow(const char* label,
                          const PowerRunResult& result) {
  std::printf("%-8s load=%9.1f |", label, result.load_seconds);
  for (int q = 0; q < kTpchQueryCount; ++q) {
    std::printf(" Q%d=%.1f", q + 1, result.query_seconds[q]);
  }
  std::printf("\n");
}

inline void Hr() {
  std::printf(
      "--------------------------------------------------------------\n");
}

}  // namespace bench
}  // namespace cloudiq

#endif  // CLOUDIQ_BENCH_BENCH_UTIL_H_
