#ifndef CLOUDIQ_BENCH_BENCH_UTIL_H_
#define CLOUDIQ_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "engine/database.h"
#include "engine/metrics.h"
#include "exec/explain.h"
#include "ndp/ndp_protocol.h"
#include "telemetry/report.h"
#include "telemetry/tracer.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_loader.h"

namespace cloudiq {
namespace bench {

// Shared telemetry toggles for the bench binaries:
//   --metrics        (or CLOUDIQ_METRICS=1)    print the per-layer metrics
//                                              report after each run
//   --trace=PATH     (or CLOUDIQ_TRACE=PATH)   enable the sim tracer and
//                                              export a Chrome trace (open
//                                              in chrome://tracing or
//                                              https://ui.perfetto.dev)
//   --report=PATH    (or CLOUDIQ_REPORT=PATH)  write the structured JSON
//                                              run report: global cost,
//                                              the attribution ledger by
//                                              query/node/prefix, and the
//                                              stats registry
//   --explain        (or CLOUDIQ_EXPLAIN=1)    print EXPLAIN ANALYZE after
//                                              each TPC-H query run by the
//                                              shared harness
//   --ndp=MODE       (or CLOUDIQ_NDP=MODE)     near-data processing mode
//                                              (off|on|auto) applied to
//                                              every Database the bench
//                                              builds through WithNdp —
//                                              any figure/table can be
//                                              re-run with pushdown
//   --profile        (or CLOUDIQ_PROFILE=1)    print the wait-state stall
//                                              profile ("stall top") after
//                                              each run: per-class totals
//                                              and the top queries by wait
//                                              time, from the StallProfiler
//   --whatif         (or CLOUDIQ_WHATIF=1)     print EXPLAIN WHATIF after
//                                              each TPC-H query: every
//                                              candidate plan the scan
//                                              planner priced (USD +
//                                              per-stall-class latency),
//                                              the winner and the reason
// Benches that execute several configurations write the trace/report
// after each run, so the exported file holds the most recent
// configuration.
struct TelemetryOptions {
  bool print_metrics = false;
  bool print_explain = false;
  bool print_whatif = false;  // print EXPLAIN WHATIF after each query
  bool profile = false;     // print the stall breakdown after each run
  std::string trace_path;   // empty = tracing off
  std::string report_path;  // empty = no JSON report
  std::string bench_name;   // argv[0] basename, stamped into the report
  double scale_factor = 0;  // benches may set for the report (0 = n/a)
};

inline TelemetryOptions& Telemetry() {
  static TelemetryOptions options;
  return options;
}

// Shared knobs for the concurrency-aware benches:
//   --tenants=N      (or CLOUDIQ_TENANTS=N)     tenant count
//   --arrival=R      (or CLOUDIQ_ARRIVAL=R)     open-loop arrival rate per
//                                               tenant, queries per
//                                               simulated second (0 = run
//                                               the tenants closed-loop)
//   --concurrency=C  (or CLOUDIQ_CONCURRENCY=C) pool-wide admission
//                                               concurrency limit
// Unset values stay negative; each bench applies its own defaults or
// sweeps. Setting any of them pins that dimension instead of sweeping it.
struct WorkloadFlags {
  int tenants = -1;
  double arrival = -1;
  int concurrency = -1;
};

inline WorkloadFlags& Workload() {
  static WorkloadFlags flags;
  return flags;
}

// Shared near-data-processing mode (--ndp / CLOUDIQ_NDP). Defaults to
// off so every bench reproduces the seed numbers unless pushdown is
// asked for explicitly.
inline ndp::NdpMode& NdpFlag() {
  static ndp::NdpMode mode = ndp::NdpMode::kOff;
  return mode;
}

// Stamps the shared NDP mode into a database's options; benches route
// their Database::Options (or Multiplex::Options::db) through this.
inline Database::Options WithNdp(Database::Options options) {
  options.ndp_mode = NdpFlag();
  return options;
}

// Shared executor mode for the morsel-driven parallel executor:
//   --exec=MODE      (or CLOUDIQ_EXEC=MODE)          sim|native — sim charges
//                                                    morsels to the simulated
//                                                    clock in fixed order
//                                                    (deterministic reports);
//                                                    native runs them on the
//                                                    TaskPool's real threads
//   --workers=N      (or CLOUDIQ_EXEC_WORKERS=N)     worker count per query
// Defaults reproduce the seed exactly: sim mode, one worker.
struct ExecFlags {
  ExecMode mode = ExecMode::kSim;
  int workers = 1;
};

inline ExecFlags& Exec() {
  static ExecFlags flags;
  return flags;
}

// Stamps the shared executor mode into a database's options, like WithNdp.
inline Database::Options WithExec(Database::Options options) {
  options.exec_mode = Exec().mode;
  options.exec_workers = Exec().workers;
  return options;
}

// Parses the toggles above from argv + environment. Call from main()
// before the bench body; unknown arguments are left alone.
inline void InitTelemetry(int argc, char** argv) {
  TelemetryOptions& options = Telemetry();
  if (argc > 0 && argv[0] != nullptr) {
    const char* slash = std::strrchr(argv[0], '/');
    options.bench_name = slash != nullptr ? slash + 1 : argv[0];
  }
  const char* env_metrics = std::getenv("CLOUDIQ_METRICS");
  if (env_metrics != nullptr && env_metrics[0] != '\0' &&
      std::strcmp(env_metrics, "0") != 0) {
    options.print_metrics = true;
  }
  const char* env_explain = std::getenv("CLOUDIQ_EXPLAIN");
  if (env_explain != nullptr && env_explain[0] != '\0' &&
      std::strcmp(env_explain, "0") != 0) {
    options.print_explain = true;
  }
  const char* env_profile = std::getenv("CLOUDIQ_PROFILE");
  if (env_profile != nullptr && env_profile[0] != '\0' &&
      std::strcmp(env_profile, "0") != 0) {
    options.profile = true;
  }
  const char* env_whatif = std::getenv("CLOUDIQ_WHATIF");
  if (env_whatif != nullptr && env_whatif[0] != '\0' &&
      std::strcmp(env_whatif, "0") != 0) {
    options.print_whatif = true;
  }
  const char* env_trace = std::getenv("CLOUDIQ_TRACE");
  if (env_trace != nullptr && env_trace[0] != '\0') {
    options.trace_path = env_trace;
  }
  const char* env_report = std::getenv("CLOUDIQ_REPORT");
  if (env_report != nullptr && env_report[0] != '\0') {
    options.report_path = env_report;
  }
  WorkloadFlags& workload = Workload();
  const char* env_tenants = std::getenv("CLOUDIQ_TENANTS");
  if (env_tenants != nullptr && env_tenants[0] != '\0') {
    workload.tenants = std::atoi(env_tenants);
  }
  const char* env_arrival = std::getenv("CLOUDIQ_ARRIVAL");
  if (env_arrival != nullptr && env_arrival[0] != '\0') {
    workload.arrival = std::atof(env_arrival);
  }
  const char* env_concurrency = std::getenv("CLOUDIQ_CONCURRENCY");
  if (env_concurrency != nullptr && env_concurrency[0] != '\0') {
    workload.concurrency = std::atoi(env_concurrency);
  }
  const char* env_ndp = std::getenv("CLOUDIQ_NDP");
  if (env_ndp != nullptr && env_ndp[0] != '\0') {
    Result<ndp::NdpMode> mode = ndp::ParseNdpMode(env_ndp);
    if (mode.ok()) {
      NdpFlag() = mode.value();
    } else {
      std::fprintf(stderr, "ignoring CLOUDIQ_NDP=%s (want off|on|auto)\n",
                   env_ndp);
    }
  }
  ExecFlags& exec = Exec();
  const char* env_exec = std::getenv("CLOUDIQ_EXEC");
  if (env_exec != nullptr && env_exec[0] != '\0') {
    if (!ParseExecMode(env_exec, &exec.mode)) {
      std::fprintf(stderr, "ignoring CLOUDIQ_EXEC=%s (want sim|native)\n",
                   env_exec);
    }
  }
  const char* env_workers = std::getenv("CLOUDIQ_EXEC_WORKERS");
  if (env_workers != nullptr && env_workers[0] != '\0') {
    int workers = std::atoi(env_workers);
    if (workers > 0) exec.workers = workers;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      options.print_metrics = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      options.print_explain = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      options.profile = true;
    } else if (std::strcmp(argv[i], "--whatif") == 0) {
      options.print_whatif = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      options.trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--report=", 9) == 0) {
      options.report_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--tenants=", 10) == 0) {
      workload.tenants = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--arrival=", 10) == 0) {
      workload.arrival = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--concurrency=", 14) == 0) {
      workload.concurrency = std::atoi(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--ndp=", 6) == 0) {
      Result<ndp::NdpMode> mode = ndp::ParseNdpMode(argv[i] + 6);
      if (mode.ok()) {
        NdpFlag() = mode.value();
      } else {
        std::fprintf(stderr, "ignoring %s (want --ndp=off|on|auto)\n",
                     argv[i]);
      }
    } else if (std::strncmp(argv[i], "--exec=", 7) == 0) {
      if (!ParseExecMode(argv[i] + 7, &exec.mode)) {
        std::fprintf(stderr, "ignoring %s (want --exec=sim|native)\n",
                     argv[i]);
      }
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      int workers = std::atoi(argv[i] + 10);
      if (workers > 0) exec.workers = workers;
    }
  }
}

// Switches the tracer on for `env` when --trace was given. The overload
// taking a Database is a convenience for the common single-node benches;
// multiplex benches pass any node's env (all nodes share one environment).
inline void MaybeEnableTracing(SimEnvironment* env) {
  if (!Telemetry().trace_path.empty()) {
    env->telemetry().tracer().set_enabled(true);
  }
}

inline void MaybeEnableTracing(Database* db) {
  MaybeEnableTracing(&db->env());
}

inline void MaybeWriteTrace(SimEnvironment* env) {
  const TelemetryOptions& options = Telemetry();
  if (options.trace_path.empty()) return;
  Status st = TraceExporter::WriteChromeTrace(env->telemetry().tracer(),
                                              options.trace_path);
  if (st.ok()) {
    std::printf("trace written to %s\n", options.trace_path.c_str());
  } else {
    std::printf("trace export failed: %s\n", st.ToString().c_str());
  }
}

// Process-wide accumulator of predicted-vs-billed accuracy across every
// query the shared harness ran: what the costopt.prediction_error gauge
// in --report is computed from.
inline costopt::PredictionAccuracy& PredictionStats() {
  static costopt::PredictionAccuracy acc;
  return acc;
}

// Publishes the accumulated prediction accuracy as costopt.* gauges so
// it rides into the JSON run report with the rest of the registry. A
// no-op until some query actually planned with the cost model, so
// benches that never consider pushdown keep their report shape.
inline void PublishPredictionStats(SimEnvironment* env) {
  const costopt::PredictionAccuracy& acc = PredictionStats();
  if (acc.scans == 0) return;
  StatsRegistry& stats = env->telemetry().stats();
  stats.gauge("costopt.whatif_scans").Set(static_cast<double>(acc.scans));
  stats.gauge("costopt.predicted_usd").Set(acc.predicted_usd);
  stats.gauge("costopt.billed_usd").Set(acc.billed_usd);
  stats.gauge("costopt.prediction_error").Set(acc.RelativeError());
}

// Writes the structured JSON run report when --report was given.
// `sim_seconds` is the run's simulated end time (0 when no single node
// clock is authoritative).
inline void MaybeWriteReport(SimEnvironment* env, double sim_seconds) {
  const TelemetryOptions& options = Telemetry();
  if (options.report_path.empty()) return;
  PublishPredictionStats(env);
  const CostMeter& meter = env->cost_meter();
  RunReportInfo info;
  info.bench = options.bench_name;
  info.scale_factor = options.scale_factor;
  info.sim_seconds = sim_seconds;
  info.s3_puts = meter.s3_puts();
  info.s3_gets = meter.s3_gets();
  info.s3_deletes = meter.s3_deletes();
  info.s3_ranged_gets = meter.s3_ranged_gets();
  info.request_usd = meter.S3RequestUsd();
  info.ec2_usd = meter.Ec2Usd();
  info.storage_usd_month =
      meter.S3MonthlyUsd(env->object_store().LiveBytes() / 1e9);
  Status st = WriteRunReport(info, env->telemetry().stats(),
                             env->telemetry().ledger(),
                             env->telemetry().profiler(),
                             options.report_path);
  if (st.ok()) {
    std::printf("report written to %s\n", options.report_path.c_str());
  } else {
    std::printf("report export failed: %s\n", st.ToString().c_str());
  }
}

// Prints the wait-state stall profile when --profile is on: per-class
// totals over the whole run, then the queries with the most wait time.
// The mutex-contention line is real wall-clock scheduling (OS-dependent)
// and is deliberately stdout-only — it never enters the deterministic
// JSON report.
inline void MaybePrintStallTop(SimEnvironment* env) {
  if (!Telemetry().profile) return;
  const StallProfiler& profiler = env->telemetry().profiler();
  const CostLedger& ledger = env->telemetry().ledger();
  StallProfiler::Entry total = profiler.GrandTotal();
  double fg = (total.TotalNanos() - total.background) / 1e9;
  double bg = total.background / 1e9;
  std::printf("wait-state profile (foreground %.6fs, background %.6fs)\n",
              fg, bg);
  std::vector<int> order(kNumWaitClasses);
  for (int i = 0; i < kNumWaitClasses; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&total](int a, int b) {
    if (total.ns[a] != total.ns[b]) return total.ns[a] > total.ns[b];
    return a < b;
  });
  int64_t grand = total.TotalNanos();
  for (int cls : order) {
    if (total.ns[cls] == 0) continue;
    std::printf("  %-18s %12.6fs  %5.1f%%\n",
                WaitClassName(static_cast<WaitClass>(cls)),
                total.ns[cls] / 1e9,
                grand > 0 ? 100.0 * total.ns[cls] / grand : 0.0);
  }
  // Queries ranked by time spent not executing (everything but kCpuExec).
  struct QueryRow {
    uint64_t id;
    std::string tag;
    StallProfiler::Entry entry;
    int64_t WaitNanos() const {
      return entry.TotalNanos() - entry.ns[0];  // minus kCpuExec
    }
  };
  std::vector<QueryRow> rows;
  for (const auto& [id, tag] : ledger.Queries()) {
    QueryRow row{id, tag, profiler.QueryTotal(id)};
    if (row.entry.TotalNanos() > 0) rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const QueryRow& a,
                                         const QueryRow& b) {
    if (a.WaitNanos() != b.WaitNanos()) return a.WaitNanos() > b.WaitNanos();
    return a.id < b.id;
  });
  size_t shown = std::min<size_t>(rows.size(), 10);
  if (shown > 0) std::printf("top queries by wait time:\n");
  for (size_t i = 0; i < shown; ++i) {
    const QueryRow& row = rows[i];
    std::printf("  q%-5llu %-12s total %10.6fs  wait %10.6fs",
                static_cast<unsigned long long>(row.id), row.tag.c_str(),
                row.entry.TotalNanos() / 1e9, row.WaitNanos() / 1e9);
    // The two heaviest wait classes, as "class share%".
    std::vector<int> top(kNumWaitClasses);
    for (int c = 0; c < kNumWaitClasses; ++c) top[c] = c;
    std::sort(top.begin(), top.end(), [&row](int a, int b) {
      if (row.entry.ns[a] != row.entry.ns[b]) {
        return row.entry.ns[a] > row.entry.ns[b];
      }
      return a < b;
    });
    int64_t qtotal = row.entry.TotalNanos();
    for (int c = 0; c < 2 && row.entry.ns[top[c]] > 0; ++c) {
      std::printf("  %s %.1f%%", WaitClassName(static_cast<WaitClass>(top[c])),
                  100.0 * row.entry.ns[top[c]] / qtotal);
    }
    std::printf("\n");
  }
  std::printf(
      "mutex contention (wall-clock, nondeterministic): %llu contended "
      "acquires\n",
      static_cast<unsigned long long>(
          MutexContentionCounter().load(std::memory_order_relaxed)));
}

// Prints the metrics report and/or exports the Chrome trace and JSON run
// report, as toggled. The env-only overload serves benches that drive
// storage layers without a Database facade: it prints the registry's
// percentile report instead of the full FormatMetrics dump.
inline void MaybeReportTelemetry(Database* db) {
  if (Telemetry().print_metrics) {
    std::printf("%s", FormatMetrics(CollectMetrics(db)).c_str());
  }
  MaybePrintStallTop(&db->env());
  MaybeWriteTrace(&db->env());
  MaybeWriteReport(&db->env(), db->node().clock().now());
}

inline void MaybeReportTelemetry(SimEnvironment* env) {
  if (Telemetry().print_metrics) {
    std::printf("%s",
                TraceExporter::PercentileReport(env->telemetry().stats())
                    .c_str());
  }
  MaybePrintStallTop(env);
  MaybeWriteTrace(env);
  MaybeWriteReport(env, /*sim_seconds=*/0);
}

// Bills `seconds` of this node's instance time both globally (CostMeter)
// and to `who` in the attribution ledger — the same rate and duration, so
// the ledger's USD sums to the meter's.
inline void ChargePhase(Database* db, const AttributionContext& who,
                        double seconds) {
  double hourly = db->node().profile().hourly_usd;
  db->env().cost_meter().AddEc2Hours(seconds / 3600.0, hourly);
  db->env().telemetry().ledger().ChargeCompute(who, seconds, hourly);
}

// Default scale factor for the reproduction benches. The paper ran SF
// 1000 on real AWS hardware; the simulator reproduces the *shape* of the
// results (who wins, by what factor, where crossovers fall) at a scale
// that keeps each bench binary in the seconds range on a laptop. Override
// with the CLOUDIQ_BENCH_SF environment variable.
inline double BenchScale(double fallback = 0.01) {
  const char* env = std::getenv("CLOUDIQ_BENCH_SF");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

struct PowerRunResult {
  double load_seconds = 0;
  std::array<double, kTpchQueryCount> query_seconds{};
  uint64_t bytes_at_rest = 0;
  uint64_t input_bytes = 0;

  double QuerySum() const {
    double total = 0;
    for (double q : query_seconds) total += q;
    return total;
  }
  double QueryGeoMean() const {
    double log_sum = 0;
    for (double q : query_seconds) log_sum += std::log(std::max(q, 1e-9));
    return std::exp(log_sum / kTpchQueryCount);
  }
  double TotalSeconds() const { return load_seconds + QuerySum(); }
};

// Runs one TPC-H query under full attribution: the query id and tag are
// assigned by NewQueryContext, the whole Begin..Commit window executes
// inside the query's ledger scope (so commit flushes and OCM promotions
// are charged to it), and the query's simulated duration is billed as EC2
// time. Prints EXPLAIN ANALYZE when --explain is on.
inline Status RunOneTpchQuery(Database* db, int q, double* seconds) {
  SimTime before = db->node().clock().now();
  Transaction* txn = db->Begin();
  QueryContext ctx = db->NewQueryContext(txn, "Q" + std::to_string(q));
  {
    ScopedQueryAttribution scope(&ctx);
    // Query-level stall scope, like the workload engine opens around a
    // job body: operator scopes nest inside, and the query's wait-class
    // sum equals its sim duration exactly.
    StallProfiler& profiler = db->env().telemetry().profiler();
    ScopedStall stall(&profiler, &db->node().clock(), WaitClass::kCpuExec);
    profiler.PinScopeAttribution();
    CLOUDIQ_RETURN_IF_ERROR(RunTpchQuery(&ctx, q).status());
    CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
  }
  *seconds = db->node().clock().now() - before;
  ChargePhase(db, ctx.attribution(), *seconds);
  db->env().telemetry().tracer().CompleteSpan(
      db->node().trace_pid(), kTrackExec, "query", "Q" + std::to_string(q),
      before, db->node().clock().now());
  // Score the planner's predictions against what the ledger billed this
  // query (nothing to score when no scan consulted the cost model).
  const CostLedger& ledger = db->env().telemetry().ledger();
  PredictionStats().Fold(costopt::ComparePredictions(
      ctx.whatif(), ledger.entries(), ctx.attribution().query_id,
      ledger.prices()));
  if (Telemetry().print_explain) {
    std::printf("%s", FormatExplainAnalyze(&ctx).c_str());
  }
  if (Telemetry().print_whatif && !ctx.whatif().empty()) {
    std::printf("%s", FormatExplainWhatIf(&ctx).c_str());
  }
  return Status::Ok();
}

// Loads TPC-H into `db` and runs the 22 queries sequentially ("power
// mode"), measuring simulated seconds for each phase.
inline Result<PowerRunResult> RunPower(Database* db, TpchGenerator* gen,
                                       size_t partitions = 8) {
  MaybeEnableTracing(db);
  Tracer& tracer = db->env().telemetry().tracer();
  CostLedger& ledger = db->env().telemetry().ledger();
  PowerRunResult result;
  TpchLoadOptions load_options;
  load_options.partitions = partitions;
  SimTime load_start = db->node().clock().now();
  // The load is attributed like a query of its own, tagged "load".
  AttributionContext load_attr;
  load_attr.query_id = ledger.NextQueryId();
  load_attr.node_id = db->node().trace_pid();
  load_attr.tag = "load";
  {
    ScopedAttribution scope(&ledger, load_attr);
    StallProfiler& profiler = db->env().telemetry().profiler();
    ScopedStall stall(&profiler, &db->node().clock(), WaitClass::kCpuExec);
    profiler.PinScopeAttribution();
    CLOUDIQ_ASSIGN_OR_RETURN(TpchLoadResult load,
                             LoadTpch(db, gen, load_options));
    result.load_seconds = load.seconds;
    result.bytes_at_rest = load.bytes_at_rest;
    result.input_bytes = load.input_bytes;
  }
  ChargePhase(db, load_attr, result.load_seconds);
  tracer.CompleteSpan(db->node().trace_pid(), kTrackExec, "query",
                      "load TPC-H", load_start, db->node().clock().now());

  for (int q = 1; q <= kTpchQueryCount; ++q) {
    CLOUDIQ_RETURN_IF_ERROR(
        RunOneTpchQuery(db, q, &result.query_seconds[q - 1]));
  }
  MaybeReportTelemetry(db);
  return result;
}

// Runs the 22 queries only (the database must already be loaded).
inline Result<std::array<double, kTpchQueryCount>> RunQueriesOnly(
    Database* db) {
  MaybeEnableTracing(db);
  std::array<double, kTpchQueryCount> times{};
  for (int q = 1; q <= kTpchQueryCount; ++q) {
    CLOUDIQ_RETURN_IF_ERROR(RunOneTpchQuery(db, q, &times[q - 1]));
  }
  MaybeReportTelemetry(db);
  return times;
}

inline const char* StorageName(UserStorage storage) {
  switch (storage) {
    case UserStorage::kObjectStore: return "AWS S3";
    case UserStorage::kEbs: return "AWS EBS";
    case UserStorage::kEfs: return "AWS EFS";
  }
  return "?";
}

inline void PrintQueryRow(const char* label,
                          const PowerRunResult& result) {
  std::printf("%-8s load=%9.1f |", label, result.load_seconds);
  for (int q = 0; q < kTpchQueryCount; ++q) {
    std::printf(" Q%d=%.1f", q + 1, result.query_seconds[q]);
  }
  std::printf("\n");
}

inline void Hr() {
  std::printf(
      "--------------------------------------------------------------\n");
}

}  // namespace bench
}  // namespace cloudiq

#endif  // CLOUDIQ_BENCH_BENCH_UTIL_H_
