#ifndef CLOUDIQ_BENCH_BENCH_UTIL_H_
#define CLOUDIQ_BENCH_BENCH_UTIL_H_

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "engine/database.h"
#include "engine/metrics.h"
#include "telemetry/tracer.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_loader.h"

namespace cloudiq {
namespace bench {

// Shared telemetry toggles for the bench binaries:
//   --metrics        (or CLOUDIQ_METRICS=1)    print the per-layer metrics
//                                              report after each run
//   --trace=PATH     (or CLOUDIQ_TRACE=PATH)   enable the sim tracer and
//                                              export a Chrome trace (open
//                                              in chrome://tracing or
//                                              https://ui.perfetto.dev)
// Benches that execute several configurations write the trace after each
// run, so the exported file holds the most recent configuration.
struct TelemetryOptions {
  bool print_metrics = false;
  std::string trace_path;  // empty = tracing off
};

inline TelemetryOptions& Telemetry() {
  static TelemetryOptions options;
  return options;
}

// Parses the toggles above from argv + environment. Call from main()
// before the bench body; unknown arguments are left alone.
inline void InitTelemetry(int argc, char** argv) {
  TelemetryOptions& options = Telemetry();
  const char* env_metrics = std::getenv("CLOUDIQ_METRICS");
  if (env_metrics != nullptr && env_metrics[0] != '\0' &&
      std::strcmp(env_metrics, "0") != 0) {
    options.print_metrics = true;
  }
  const char* env_trace = std::getenv("CLOUDIQ_TRACE");
  if (env_trace != nullptr && env_trace[0] != '\0') {
    options.trace_path = env_trace;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      options.print_metrics = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      options.trace_path = argv[i] + 8;
    }
  }
}

// Switches the tracer on for `env` when --trace was given. The overload
// taking a Database is a convenience for the common single-node benches;
// multiplex benches pass any node's env (all nodes share one environment).
inline void MaybeEnableTracing(SimEnvironment* env) {
  if (!Telemetry().trace_path.empty()) {
    env->telemetry().tracer().set_enabled(true);
  }
}

inline void MaybeEnableTracing(Database* db) {
  MaybeEnableTracing(&db->env());
}

inline void MaybeWriteTrace(SimEnvironment* env) {
  const TelemetryOptions& options = Telemetry();
  if (options.trace_path.empty()) return;
  Status st = TraceExporter::WriteChromeTrace(env->telemetry().tracer(),
                                              options.trace_path);
  if (st.ok()) {
    std::printf("trace written to %s\n", options.trace_path.c_str());
  } else {
    std::printf("trace export failed: %s\n", st.ToString().c_str());
  }
}

// Prints the metrics report and/or exports the Chrome trace, as toggled.
// The env-only overload serves benches that drive storage layers without
// a Database facade: it prints the registry's percentile report instead
// of the full FormatMetrics dump.
inline void MaybeReportTelemetry(Database* db) {
  if (Telemetry().print_metrics) {
    std::printf("%s", FormatMetrics(CollectMetrics(db)).c_str());
  }
  MaybeWriteTrace(&db->env());
}

inline void MaybeReportTelemetry(SimEnvironment* env) {
  if (Telemetry().print_metrics) {
    std::printf("%s",
                TraceExporter::PercentileReport(env->telemetry().stats())
                    .c_str());
  }
  MaybeWriteTrace(env);
}

// Default scale factor for the reproduction benches. The paper ran SF
// 1000 on real AWS hardware; the simulator reproduces the *shape* of the
// results (who wins, by what factor, where crossovers fall) at a scale
// that keeps each bench binary in the seconds range on a laptop. Override
// with the CLOUDIQ_BENCH_SF environment variable.
inline double BenchScale(double fallback = 0.01) {
  const char* env = std::getenv("CLOUDIQ_BENCH_SF");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

struct PowerRunResult {
  double load_seconds = 0;
  std::array<double, kTpchQueryCount> query_seconds{};
  uint64_t bytes_at_rest = 0;
  uint64_t input_bytes = 0;

  double QuerySum() const {
    double total = 0;
    for (double q : query_seconds) total += q;
    return total;
  }
  double QueryGeoMean() const {
    double log_sum = 0;
    for (double q : query_seconds) log_sum += std::log(std::max(q, 1e-9));
    return std::exp(log_sum / kTpchQueryCount);
  }
  double TotalSeconds() const { return load_seconds + QuerySum(); }
};

// Loads TPC-H into `db` and runs the 22 queries sequentially ("power
// mode"), measuring simulated seconds for each phase.
inline Result<PowerRunResult> RunPower(Database* db, TpchGenerator* gen,
                                       size_t partitions = 8) {
  MaybeEnableTracing(db);
  Tracer& tracer = db->env().telemetry().tracer();
  PowerRunResult result;
  TpchLoadOptions load_options;
  load_options.partitions = partitions;
  SimTime load_start = db->node().clock().now();
  CLOUDIQ_ASSIGN_OR_RETURN(TpchLoadResult load,
                           LoadTpch(db, gen, load_options));
  result.load_seconds = load.seconds;
  result.bytes_at_rest = load.bytes_at_rest;
  result.input_bytes = load.input_bytes;
  tracer.CompleteSpan(db->node().trace_pid(), kTrackExec, "query",
                      "load TPC-H", load_start, db->node().clock().now());

  for (int q = 1; q <= kTpchQueryCount; ++q) {
    SimTime before = db->node().clock().now();
    Transaction* txn = db->Begin();
    QueryContext ctx = db->NewQueryContext(txn);
    CLOUDIQ_RETURN_IF_ERROR(RunTpchQuery(&ctx, q).status());
    CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
    result.query_seconds[q - 1] = db->node().clock().now() - before;
    tracer.CompleteSpan(db->node().trace_pid(), kTrackExec, "query",
                        "Q" + std::to_string(q), before,
                        db->node().clock().now());
  }
  MaybeReportTelemetry(db);
  return result;
}

// Runs the 22 queries only (the database must already be loaded).
inline Result<std::array<double, kTpchQueryCount>> RunQueriesOnly(
    Database* db) {
  MaybeEnableTracing(db);
  Tracer& tracer = db->env().telemetry().tracer();
  std::array<double, kTpchQueryCount> times{};
  for (int q = 1; q <= kTpchQueryCount; ++q) {
    SimTime before = db->node().clock().now();
    Transaction* txn = db->Begin();
    QueryContext ctx = db->NewQueryContext(txn);
    CLOUDIQ_RETURN_IF_ERROR(RunTpchQuery(&ctx, q).status());
    CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
    times[q - 1] = db->node().clock().now() - before;
    tracer.CompleteSpan(db->node().trace_pid(), kTrackExec, "query",
                        "Q" + std::to_string(q), before,
                        db->node().clock().now());
  }
  MaybeReportTelemetry(db);
  return times;
}

inline const char* StorageName(UserStorage storage) {
  switch (storage) {
    case UserStorage::kObjectStore: return "AWS S3";
    case UserStorage::kEbs: return "AWS EBS";
    case UserStorage::kEfs: return "AWS EFS";
  }
  return "?";
}

inline void PrintQueryRow(const char* label,
                          const PowerRunResult& result) {
  std::printf("%-8s load=%9.1f |", label, result.load_seconds);
  for (int q = 0; q < kTpchQueryCount; ++q) {
    std::printf(" Q%d=%.1f", q + 1, result.query_seconds[q]);
  }
  std::printf("\n");
}

inline void Hr() {
  std::printf(
      "--------------------------------------------------------------\n");
}

}  // namespace bench
}  // namespace cloudiq

#endif  // CLOUDIQ_BENCH_BENCH_UTIL_H_
