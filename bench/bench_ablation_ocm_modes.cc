// Ablation: the OCM's two write modes (§4). During the churn phase the
// OCM absorbs evictions at SSD latency (write-back) and uploads in the
// background; at commit it switches to write-through. This bench forces
// churn by shrinking the buffer cache and compares:
//   (a) no OCM            — every eviction is a synchronous object PUT;
//   (b) OCM               — write-back churn + write-through commit.
// It reports the load time and the latency class each eviction saw.

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

struct ModeResult {
  double load_seconds;
  uint64_t churn_flushes;
  uint64_t background_uploads;
};

Result<ModeResult> RunLoad(bool enable_ocm, double scale) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.enable_ocm = enable_ocm;
  // A deliberately tiny buffer so the churn phase dominates, as in a
  // long-running OLAP transaction.
  options.buffer_ram_fraction = 0.0002;  // ~13 MB on the 64 GB instance
  Database db(&env, InstanceProfile::M5ad4xlarge(), WithNdp(options));
  MaybeEnableTracing(&db);
  TpchGenerator gen(scale);
  CLOUDIQ_ASSIGN_OR_RETURN(TpchLoadResult load, LoadTpch(&db, &gen, {}));
  MaybeReportTelemetry(&db);
  ModeResult result;
  result.load_seconds = load.seconds;
  result.churn_flushes = db.txn_mgr().buffer().stats().churn_flushes;
  result.background_uploads =
      db.ocm() != nullptr ? db.ocm()->stats().background_uploads +
                                db.ocm()->stats().commit_promotions
                          : 0;
  return result;
}

int Main() {
  double scale = BenchScale(0.05);
  std::printf("=== Ablation: OCM write-back vs direct object-store writes "
              "under churn (SF=%g, ~13 MB buffer) ===\n",
              scale);
  Result<ModeResult> without = RunLoad(false, scale);
  Result<ModeResult> with = RunLoad(true, scale);
  if (!without.ok() || !with.ok()) return 1;

  std::printf("%-26s %10s %14s %18s\n", "Configuration", "Load (s)",
              "Churn flushes", "Async uploads");
  Hr();
  std::printf("%-26s %10.2f %14llu %18s\n", "no OCM (sync PUTs)",
              without->load_seconds,
              static_cast<unsigned long long>(without->churn_flushes),
              "-");
  std::printf("%-26s %10.2f %14llu %18llu\n",
              "OCM (write-back churn)", with->load_seconds,
              static_cast<unsigned long long>(with->churn_flushes),
              static_cast<unsigned long long>(with->background_uploads));
  Hr();
  std::printf("Write-back speedup on the churn-heavy load: %.2fx\n",
              without->load_seconds / with->load_seconds);
  std::printf("(The commit phase is write-through in both cases, so "
              "durability is identical — §4.)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
