// Ablation: the never-write-an-object-twice policy (§3/§3.1). With the
// policy on, a page stored on the object store has exactly one version,
// so eventual consistency can only surface as a retryable NOT_FOUND.
// With the policy off (updating objects in place), a reader can be served
// a *stale page* — silent corruption no retry can detect. This bench
// rewrites pages in place under an aggressive consistency lag and counts
// what a verifying reader observes.

#include "bench/bench_util.h"
#include "tests/test_util.h"

namespace cloudiq {
namespace bench {
namespace {

int Main() {
  std::printf("=== Ablation: never-write-twice vs in-place object "
              "updates under eventual consistency ===\n");

  const int kPages = 200;

  // --- Policy ON: every rewrite takes a fresh key. -----------------------
  uint64_t stale_with_policy = 0;
  uint64_t retries_with_policy = 0;
  {
    ObjectStoreOptions store_options;
    store_options.lag_probability = 0.5;
    store_options.mean_visibility_lag = 1.0;
    testing_util::SingleNodeHarness h(4096, store_options);
    MaybeEnableTracing(&h.env);
    for (int i = 0; i < kPages; ++i) {
      std::vector<uint8_t> v1 = h.MakePayload(512, 1);
      std::vector<uint8_t> v2 = h.MakePayload(512, 2);
      Result<PhysicalLoc> loc1 = h.storage->WritePage(
          h.cloud_space, v1, CloudCache::WriteMode::kWriteThrough, 1);
      if (!loc1.ok()) return 1;
      // "Update": a new version under a NEW key (the old page would be
      // garbage collected after commit).
      Result<PhysicalLoc> loc2 = h.storage->WritePage(
          h.cloud_space, v2, CloudCache::WriteMode::kWriteThrough, 1);
      if (!loc2.ok()) return 1;
      Result<std::vector<uint8_t>> read =
          h.storage->ReadPage(h.cloud_space, *loc2);
      if (!read.ok() || read.value() != v2) ++stale_with_policy;
    }
    stale_with_policy += h.env.object_store().stats().stale_reads;
    retries_with_policy = h.storage->object_io().stats().not_found_retries;
    MaybeReportTelemetry(&h.env);
  }

  // --- Policy OFF: rewrite the same key in place. ------------------------
  uint64_t stale_without_policy = 0;
  {
    ObjectStoreOptions store_options;
    store_options.lag_probability = 0.5;
    store_options.mean_visibility_lag = 1.0;
    StorageSubsystem::Options storage_options;
    storage_options.never_write_twice = false;
    testing_util::SingleNodeHarness h(4096, store_options,
                                      storage_options);
    MaybeEnableTracing(&h.env);
    for (int i = 0; i < kPages; ++i) {
      std::vector<uint8_t> v1 = h.MakePayload(512, 1);
      std::vector<uint8_t> v2 = h.MakePayload(512, 2);
      Result<PhysicalLoc> loc = h.storage->WritePage(
          h.cloud_space, v1, CloudCache::WriteMode::kWriteThrough, 1);
      if (!loc.ok()) return 1;
      if (!h.storage->OverwriteCloudPage(h.cloud_space, *loc, v2).ok()) {
        return 1;
      }
      Result<std::vector<uint8_t>> read =
          h.storage->ReadPage(h.cloud_space, *loc);
      if (read.ok() && read.value() != v2) ++stale_without_policy;
    }
    MaybeReportTelemetry(&h.env);
  }

  std::printf("%-34s %18s %22s\n", "Policy", "Stale page reads",
              "NOT_FOUND retries");
  Hr();
  std::printf("%-34s %18llu %22llu\n", "never-write-twice (paper)",
              static_cast<unsigned long long>(stale_with_policy),
              static_cast<unsigned long long>(retries_with_policy));
  std::printf("%-34s %18llu %22s\n", "in-place updates",
              static_cast<unsigned long long>(stale_without_policy),
              "n/a (reads 'succeed')");
  Hr();
  std::printf(
      "With the policy, eventual consistency degrades to a *detectable* "
      "NOT_FOUND that retries absorb;\nwithout it, %.0f%% of fresh reads "
      "silently returned the previous version of the page.\n",
      100.0 * stale_without_policy / kPages);
  return stale_with_policy == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
