// Reproduces Figure 6: per-query execution times with and without the
// OCM, on the low-RAM m5ad.4xlarge and the large m5ad.24xlarge.
//
// Expected shape (paper): ~25.8% / 25.6% geometric-mean improvement with
// the OCM on the two instances; cold-cache warm-up hurts the first
// queries; on the big instance, bursts of asynchronous cache fills can
// make early queries (Q3/Q4 in the paper) *slower* with the OCM than
// without — the brown-out analyzed in §6.

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

struct ConfigResult {
  std::array<double, kTpchQueryCount> times{};
  uint64_t rerouted_reads = 0;
};

Result<ConfigResult> RunConfig(
    const InstanceProfile& profile, bool enable_ocm, bool reroute,
    double scale) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.enable_ocm = enable_ocm;
  options.ocm.reroute_on_pressure = reroute;
  // The paper's regime has the working set exceed the buffer cache (520
  // GB of compressed data vs a <=192 GB buffer): scale the buffer to the
  // same ratio of the bench-scale data so RAM churn is realistic. The
  // 24xlarge keeps its 6x RAM advantage over the 4xlarge.
  double data_bytes = scale * 0.8e9;  // ~compressed TPC-H footprint
  options.buffer_capacity_override = static_cast<uint64_t>(
      data_bytes * (profile.ram_gb / 384.0) * 0.15);
  Database db(&env, profile, WithNdp(options));
  TpchGenerator gen(scale);
  CLOUDIQ_RETURN_IF_ERROR(LoadTpch(&db, &gen, {}).status());
  // The paper's OCM experiment starts with a *cold* disk cache (reads
  // warm it up); a simulated instance restart drops the cache while
  // keeping the loaded data.
  CLOUDIQ_RETURN_IF_ERROR(db.CrashAndRecover());
  ConfigResult result;
  CLOUDIQ_ASSIGN_OR_RETURN(result.times, RunQueriesOnly(&db));
  if (db.ocm() != nullptr) {
    result.rerouted_reads = db.ocm()->stats().rerouted_reads;
  }
  return result;
}

double GeoMean(const std::array<double, kTpchQueryCount>& qs) {
  double log_sum = 0;
  for (double q : qs) log_sum += std::log(std::max(q, 1e-9));
  return std::exp(log_sum / kTpchQueryCount);
}

int Main() {
  double scale = BenchScale(0.05);
  std::printf("=== Figure 6: impact of the OCM on query execution times "
              "(SF=%g) ===\n",
              scale);

  const InstanceProfile profiles[2] = {InstanceProfile::M5ad4xlarge(),
                                       InstanceProfile::M5ad24xlarge()};
  for (const InstanceProfile& profile : profiles) {
    Result<ConfigResult> with_ocm_run =
        RunConfig(profile, true, false, scale);
    Result<ConfigResult> without_ocm_run =
        RunConfig(profile, false, false, scale);
    Result<ConfigResult> with_reroute_run =
        RunConfig(profile, true, true, scale);
    if (!with_ocm_run.ok() || !without_ocm_run.ok() ||
        !with_reroute_run.ok()) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    const std::array<double, kTpchQueryCount>* with_ocm =
        &with_ocm_run->times;
    const std::array<double, kTpchQueryCount>* without_ocm =
        &without_ocm_run->times;
    const std::array<double, kTpchQueryCount>* with_reroute =
        &with_reroute_run->times;
    std::printf("\n--- %s ---\n", profile.name.c_str());
    std::printf("%-6s %12s %12s %10s\n", "Query", "no OCM (s)",
                "with OCM (s)", "speedup");
    for (int q = 0; q < kTpchQueryCount; ++q) {
      double off = (*without_ocm)[q];
      double on = (*with_ocm)[q];
      std::printf("Q%-5d %12.3f %12.3f %9.2fx%s\n", q + 1, off, on,
                  on > 0 ? off / on : 0.0,
                  on > off * 1.02 ? "   <- warm-up / fill-burst penalty"
                                  : "");
    }
    double improvement =
        100.0 * (1.0 - GeoMean(*with_ocm) / GeoMean(*without_ocm));
    std::printf("Geometric-mean improvement with OCM: %.1f%% "
                "(paper: 25.8%% on 4xlarge, 25.6%% on 24xlarge)\n",
                improvement);

    // The paper's proposed future work: re-route reads to the object
    // store when the SSD is saturated by fill bursts. Count how many
    // per-query regressions the mitigation removes.
    int penalties_plain = 0;
    int penalties_reroute = 0;
    for (int q = 0; q < kTpchQueryCount; ++q) {
      if ((*with_ocm)[q] > (*without_ocm)[q] * 1.02) ++penalties_plain;
      if ((*with_reroute)[q] > (*without_ocm)[q] * 1.02) {
        ++penalties_reroute;
      }
    }
    std::printf("With latency-aware re-routing (the paper's proposed "
                "mitigation): geo-mean improvement %.1f%%, slow-down "
                "queries %d -> %d, %llu hits re-routed\n",
                100.0 * (1.0 -
                         GeoMean(*with_reroute) / GeoMean(*without_ocm)),
                penalties_plain, penalties_reroute,
                static_cast<unsigned long long>(
                    with_reroute_run->rerouted_reads));
    std::printf("(remaining slow-downs are cold-cache warm-up — both "
                "paths read the object store — not SSD brown-outs; the "
                "brown-out mechanism itself is exercised by "
                "tests/ocm_test.cc)\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
