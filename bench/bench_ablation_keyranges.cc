// Ablation: key-range allocation (§3.2). The coordinator hands out key
// *ranges* that nodes cache locally, with adaptive sizing; the
// alternative — one key per request — turns every page flush into a
// coordinator round trip plus a transaction-log write. This bench loads
// the same data under range sizes {1, 16, adaptive} and reports load
// time and coordinator allocation events.

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

struct Config {
  const char* label;
  uint64_t initial;
  uint64_t min_size;
  uint64_t max_size;
};

int Main() {
  double scale = BenchScale(0.02);
  std::printf("=== Ablation: key-range allocation granularity (SF=%g) "
              "===\n",
              scale);
  const Config configs[] = {
      {"singleton (1)", 1, 1, 1},
      {"fixed 16", 16, 16, 16},
      {"adaptive (paper)", 128, 16, 1 << 20},
  };
  std::printf("%-18s %12s %22s\n", "Range policy", "Load (s)",
              "Coordinator fetches");
  Hr();
  double base = 0;
  for (const Config& config : configs) {
    SimEnvironment env;
    Database::Options options;
    options.user_storage = UserStorage::kObjectStore;
    options.keygen.min_range_size = config.min_size;
    options.keygen.max_range_size = config.max_size;
    options.key_cache.initial_range_size = config.initial;
    options.key_cache.min_range_size = config.min_size;
    options.key_cache.max_range_size = config.max_size;
    Database db(&env, InstanceProfile::M5ad24xlarge(), WithNdp(options));
    MaybeEnableTracing(&db);
    TpchGenerator gen(scale);
    Result<TpchLoadResult> load = LoadTpch(&db, &gen, {});
    if (!load.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   load.status().ToString().c_str());
      return 1;
    }
    if (base == 0) base = load->seconds;
    std::printf("%-18s %12.2f %22llu\n", config.label, load->seconds,
                static_cast<unsigned long long>(
                    db.key_cache().fetch_count()));
    MaybeReportTelemetry(&db);
  }
  Hr();
  std::printf("Every fetch is a coordinator transaction (log write + "
              "active-set update); ranges amortize it away and keep the\n"
              "RF/RB cloud-key bookkeeping representable as a handful of "
              "intervals.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
