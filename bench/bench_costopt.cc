// Cost-intelligent planning: cost-aware vs. cost-blind across two tenant
// mixes.
//
//   warm_rescan — twelve Q6-style month scans over a lineitem whose pages
//   were warmed by a prior full scan. The legacy cost-blind planner
//   priced every pull as if the cache were empty and pushed these scans
//   into the store at a loss (paying SELECT request + scanned-GB money to
//   avoid a transfer that would have been a buffer hit); the cost-aware
//   chooser probes residency and keeps them local. The headline: lower $
//   AND lower p95 at the same SLO — strict dominance, not a trade.
//
//   budget_guard — six identical ETL scans against a tight tenant budget.
//   Cost-blind admission only looks at money already spent, so it admits
//   the job that blows the budget and finds out after the fact;
//   predictive admission prices the job first, defers it, and sheds it
//   cleanly once completions prove the budget truly has no headroom.
//   The headline: budget overshoot goes to ~zero.
//
// Every number is simulated and deterministic; double runs of --report
// byte-compare (scripts/check.sh costopt gates this).

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "tpch/queries_internal.h"
#include "workload/workload_engine.h"

namespace cloudiq {
namespace bench {
namespace {

using tpch_internal::D;

// One fixed SLO for the warm_rescan mix: generous enough that every mode
// meets it, so the comparison is "$ at equal-or-better p95 under the same
// SLO", not an SLO-violation contest.
constexpr double kSloSeconds = 2.0;

// --- mix 1: warm_rescan ---------------------------------------------------

struct WarmMode {
  const char* name;
  bool assume_cold;  // the legacy always-cold pricing bug
  costopt::PlanPolicy policy;
};

std::vector<WarmMode> WarmModes() {
  return {
      // The pre-costopt planner: prices every pull as all-cold.
      {"cost_blind_cold", true, costopt::PlanPolicy::kCostBlind},
      // The repaired heuristic: still byte-based, but residency-aware.
      {"cost_blind", false, costopt::PlanPolicy::kCostBlind},
      // The cost model end to end: cheapest candidate under the SLO.
      {"cost_aware", false, costopt::PlanPolicy::kMinCostUnderSlo},
  };
}

struct WarmResult {
  double usd = 0;          // measured queries: requests + EC2 time
  double p95_seconds = 0;
  double mean_seconds = 0;
  int pushed_scans = 0;    // how many of the 12 scans went server-side
  costopt::PredictionAccuracy accuracy;
};

struct WarmRun {
  std::unique_ptr<SimEnvironment> env;
  std::unique_ptr<Database> db;
  WarmResult result;
};

Result<WarmRun> RunWarmMode(const WarmMode& mode, double scale) {
  WarmRun run;
  run.env = std::make_unique<SimEnvironment>();
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.enable_ocm = false;  // buffer alone holds the working set
  options.ndp_mode = ndp::NdpMode::kAuto;
  options.ndp_assume_cold = mode.assume_cold;
  options.cost_policy = mode.policy;
  options.cost_slo_seconds = kSloSeconds;
  run.db = std::make_unique<Database>(run.env.get(),
                                      InstanceProfile::M5ad4xlarge(),
                                      options);
  MaybeEnableTracing(run.db.get());
  TpchGenerator gen(scale);
  CLOUDIQ_RETURN_IF_ERROR(LoadTpch(run.db.get(), &gen, {}).status());

  Database* db = run.db.get();
  CostLedger& ledger = db->env().telemetry().ledger();
  auto& stats = db->env().telemetry().stats();

  // Warm-up: a rangeless pull scan of the measured columns fills the
  // buffer (rangeless scans never consider pushdown, so the cache is
  // warm in every mode). Not counted in the measured numbers.
  {
    Transaction* txn = db->Begin();
    QueryContext ctx = db->NewQueryContext(txn, "warm");
    ScopedQueryAttribution scope(&ctx);
    CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem, ctx.OpenTable(kLineitem));
    CLOUDIQ_RETURN_IF_ERROR(
        ScanTable(&ctx, &lineitem,
                  {"l_extendedprice", "l_discount", "l_shipdate"})
            .status());
    CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
  }

  // Measured: one Q6-style scan per month of 1994, all warm.
  std::vector<double> latencies;
  for (int month = 1; month <= 12; ++month) {
    int64_t lo = D(1994, month, 1);
    int64_t hi = (month == 12 ? D(1995, 1, 1) : D(1994, month + 1, 1)) - 1;
    uint64_t pushed_before = stats.counter("ndp.pushdown_scans").value();
    SimTime before = db->node().clock().now();
    Transaction* txn = db->Begin();
    QueryContext ctx =
        db->NewQueryContext(txn, "q6_m" + std::to_string(month));
    {
      ScopedQueryAttribution scope(&ctx);
      CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem,
                               ctx.OpenTable(kLineitem));
      CLOUDIQ_ASSIGN_OR_RETURN(
          Batch items,
          ScanTable(&ctx, &lineitem, {"l_extendedprice", "l_discount"},
                    ScanRange{"l_shipdate", lo, hi}));
      (void)items;
      CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
    }
    double seconds = db->node().clock().now() - before;
    ChargePhase(db, ctx.attribution(), seconds);
    latencies.push_back(seconds);
    run.result.mean_seconds += seconds / 12.0;
    run.result.usd += ledger.QueryTotal(ctx.attribution().query_id)
                          .TotalUsd(ledger.prices());
    if (stats.counter("ndp.pushdown_scans").value() > pushed_before) {
      ++run.result.pushed_scans;
    }
    costopt::PredictionAccuracy acc = costopt::ComparePredictions(
        ctx.whatif(), ledger.entries(), ctx.attribution().query_id,
        ledger.prices());
    run.result.accuracy.Fold(acc);
    PredictionStats().Fold(acc);
    if (Telemetry().print_whatif && !ctx.whatif().empty()) {
      std::printf("%s", FormatExplainWhatIf(&ctx).c_str());
    }
  }
  std::sort(latencies.begin(), latencies.end());
  run.result.p95_seconds =
      latencies[(latencies.size() * 95 + 99) / 100 - 1];
  return run;
}

// --- mix 2: budget_guard --------------------------------------------------

// A flat int64 table scanned end to end by each ETL job; the buffer is
// held far below the table so every scan re-fetches from the store and
// costs real request money.
constexpr uint64_t kEtlTableId = 7;
constexpr int64_t kEtlRows = 200000;

Status LoadEtlTable(Database* db) {
  TableSchema schema;
  schema.name = "etl_t";
  schema.table_id = kEtlTableId;
  schema.columns = {{"k", ColumnType::kInt64}};
  schema.hg_index_columns = {0};
  Transaction* txn = db->Begin();
  TableLoader loader = db->NewTableLoader(txn, schema);
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  for (int64_t i = 0; i < kEtlRows; ++i) {
    // Scrambled values: keeps the column from delta/RLE-encoding down to
    // a buffer-sized object, so every rescan really re-fetches pages.
    batch.columns[0].ints.push_back((i * 1103515245 + 12345) % 2147483647);
  }
  CLOUDIQ_RETURN_IF_ERROR(loader.Append(batch.columns));
  CLOUDIQ_RETURN_IF_ERROR(loader.Finish(db->system()).status());
  return db->Commit(txn);
}

struct BudgetRun {
  std::unique_ptr<SimEnvironment> env;
  std::unique_ptr<Database> db;
  std::unique_ptr<WorkloadEngine> engine;
  double spent_usd = 0;
  double overshoot_usd = 0;
  uint64_t completed = 0;
  uint64_t shed_budget = 0;
  uint64_t deferred = 0;
  uint64_t deferred_shed = 0;
  double last_finish = 0;
};

Result<BudgetRun> RunBudgetMode(bool predictive, double budget_usd,
                                double prior_usd, double spacing,
                                int jobs) {
  BudgetRun run;
  run.env = std::make_unique<SimEnvironment>();
  Database::Options db_options;
  db_options.user_storage = UserStorage::kObjectStore;
  db_options.page_size = 8192;
  db_options.blockmap_fanout = 16;
  db_options.enable_ocm = false;
  db_options.buffer_capacity_override = 8 * 8192;  // scans stay cold
  run.db = std::make_unique<Database>(run.env.get(),
                                      InstanceProfile::M5ad4xlarge(),
                                      db_options);
  CLOUDIQ_RETURN_IF_ERROR(LoadEtlTable(run.db.get()));

  WorkloadEngine::Options options;
  options.predictive_admission = predictive;
  options.spend_prior_usd = prior_usd;
  WorkloadEngine::TenantConfig tenant;
  tenant.name = "etl";
  tenant.cost_budget_usd = budget_usd;
  run.engine = std::make_unique<WorkloadEngine>(
      std::vector<Database*>{run.db.get()}, options,
      std::vector<WorkloadEngine::TenantConfig>{tenant});
  double last_finish = 0;
  run.engine->set_completion_hook(
      [&last_finish](const WorkloadEngine::Completion& c) {
        if (!c.shed) last_finish = std::max(last_finish, c.finish);
      });
  auto scan_body = [](Session*, QueryContext* ctx) {
    CLOUDIQ_ASSIGN_OR_RETURN(TableReader reader,
                             ctx->OpenTable(kEtlTableId));
    return ScanTable(ctx, &reader, {"k"}).status();
  };
  for (int i = 0; i < jobs; ++i) {
    run.engine->Submit("etl", "scan", spacing * i, scan_body);
  }
  CLOUDIQ_RETURN_IF_ERROR(run.engine->RunUntilIdle());

  WorkloadEngine::TenantCounts counts = run.engine->Counts("etl");
  run.spent_usd = counts.spent_usd;
  run.overshoot_usd =
      budget_usd > 0 ? std::max(0.0, counts.spent_usd - budget_usd) : 0;
  run.completed = counts.completed;
  run.shed_budget = counts.shed_budget;
  auto& stats = run.env->telemetry().stats();
  run.deferred = stats.counter("workload.etl.costopt_deferred").value();
  run.deferred_shed =
      stats.counter("workload.etl.costopt_deferred_shed").value();
  run.last_finish = last_finish;
  return run;
}

int Main() {
  double scale = BenchScale(0.01);
  Telemetry().scale_factor = scale;
  std::printf("=== Cost-intelligent planning: cost-aware vs. cost-blind "
              "(SF=%g, m5ad.4xlarge) ===\n\n", scale);

  // --- warm_rescan ---
  std::printf("-- mix warm_rescan: 12 warm Q6 month scans, SLO %.1fs --\n",
              kSloSeconds);
  std::vector<WarmMode> warm_modes = WarmModes();
  std::vector<WarmRun> warm_runs;
  for (const WarmMode& mode : warm_modes) {
    Result<WarmRun> r = RunWarmMode(mode, scale);
    if (!r.ok()) {
      std::printf("mode %s failed: %s\n", mode.name,
                  r.status().ToString().c_str());
      return 1;
    }
    warm_runs.push_back(std::move(r.value()));
  }
  std::printf("%-16s %6s %12s %10s %10s %10s\n", "mode", "pushed",
              "usd/12q", "mean_s", "p95_s", "pred_err");
  for (size_t m = 0; m < warm_modes.size(); ++m) {
    const WarmResult& r = warm_runs[m].result;
    std::printf("%-16s %6d %12.6f %10.5f %10.5f %10.3f\n",
                warm_modes[m].name, r.pushed_scans, r.usd, r.mean_seconds,
                r.p95_seconds, r.accuracy.RelativeError());
  }
  Hr();

  // --- budget_guard ---
  // Calibrate one ETL scan (cost + duration) with an unlimited budget,
  // then give the tenant budget for ~3.2 scans and submit 6, spaced so
  // they run serially. Cost-blind admission overshoots by most of a
  // scan; predictive admission defers the fourth and sheds cleanly.
  Result<BudgetRun> cal = RunBudgetMode(false, 0, 0, 0, 1);
  if (!cal.ok()) {
    std::printf("calibration failed: %s\n",
                cal.status().ToString().c_str());
    return 1;
  }
  double scan_usd = cal.value().spent_usd;
  double scan_seconds = cal.value().last_finish;
  double budget = 3.2 * scan_usd;
  double spacing = 2.0 * scan_seconds;
  std::printf("-- mix budget_guard: 6 ETL scans ($%.6f each), budget "
              "$%.6f --\n", scan_usd, budget);
  Result<BudgetRun> blind = RunBudgetMode(false, budget, 0, spacing, 6);
  Result<BudgetRun> aware =
      RunBudgetMode(true, budget, scan_usd, spacing, 6);
  if (!blind.ok() || !aware.ok()) {
    std::printf("budget_guard failed: %s\n",
                (!blind.ok() ? blind.status() : aware.status())
                    .ToString().c_str());
    return 1;
  }
  struct { const char* name; const BudgetRun* run; } budget_rows[] = {
      {"cost_blind", &blind.value()}, {"cost_aware", &aware.value()}};
  std::printf("%-12s %6s %6s %6s %6s %12s %12s\n", "mode", "done",
              "shed", "defer", "dshed", "spent_usd", "overshoot");
  for (const auto& row : budget_rows) {
    std::printf("%-12s %6llu %6llu %6llu %6llu %12.6f %12.6f\n", row.name,
                static_cast<unsigned long long>(row.run->completed),
                static_cast<unsigned long long>(row.run->shed_budget),
                static_cast<unsigned long long>(row.run->deferred),
                static_cast<unsigned long long>(row.run->deferred_shed),
                row.run->spent_usd, row.run->overshoot_usd);
  }
  Hr();

  // Headline checks: cost-aware strictly dominates cost-blind on
  // warm_rescan ($ down, p95 not worse, same SLO), and predictive
  // admission eliminates the budget overshoot without stalling service.
  const WarmResult& blind_cold = warm_runs[0].result;
  const WarmResult& cost_aware = warm_runs.back().result;
  bool warm_dominates = cost_aware.usd < blind_cold.usd &&
                        cost_aware.p95_seconds <= blind_cold.p95_seconds;
  bool decisions_differ =
      blind_cold.pushed_scans > 0 && cost_aware.pushed_scans == 0;
  bool budget_guarded =
      aware.value().overshoot_usd < blind.value().overshoot_usd &&
      aware.value().completed > 0;
  std::printf("\ncost_aware dominates cost_blind_cold on warm_rescan "
              "($%.6f < $%.6f, p95 %.5fs <= %.5fs): %s\n",
              cost_aware.usd, blind_cold.usd, cost_aware.p95_seconds,
              blind_cold.p95_seconds, warm_dominates ? "YES" : "NO");
  std::printf("legacy pushes warm scans / cost_aware keeps them local: "
              "%s\n", decisions_differ ? "YES" : "NO");
  std::printf("predictive admission cuts budget overshoot ($%.6f -> "
              "$%.6f): %s\n", blind.value().overshoot_usd,
              aware.value().overshoot_usd, budget_guarded ? "YES" : "NO");

  // Report gauges live on the last surviving environment (the predictive
  // budget run); all values are sim-derived, so double runs byte-compare.
  auto& stats = aware.value().env->telemetry().stats();
  for (size_t m = 0; m < warm_modes.size(); ++m) {
    const WarmResult& r = warm_runs[m].result;
    std::string p =
        std::string("costopt.bench.warm_rescan.") + warm_modes[m].name;
    stats.gauge(p + ".usd").Set(r.usd);
    stats.gauge(p + ".mean_seconds").Set(r.mean_seconds);
    stats.gauge(p + ".p95_seconds").Set(r.p95_seconds);
    stats.gauge(p + ".pushed_scans").Set(r.pushed_scans);
    stats.gauge(p + ".prediction_error").Set(r.accuracy.RelativeError());
  }
  for (const auto& row : budget_rows) {
    std::string p =
        std::string("costopt.bench.budget_guard.") + row.name;
    stats.gauge(p + ".spent_usd").Set(row.run->spent_usd);
    stats.gauge(p + ".overshoot_usd").Set(row.run->overshoot_usd);
    stats.gauge(p + ".completed")
        .Set(static_cast<double>(row.run->completed));
    stats.gauge(p + ".shed_budget")
        .Set(static_cast<double>(row.run->shed_budget));
    stats.gauge(p + ".deferred")
        .Set(static_cast<double>(row.run->deferred));
    stats.gauge(p + ".deferred_shed")
        .Set(static_cast<double>(row.run->deferred_shed));
  }
  stats.gauge("costopt.bench.budget_guard.budget_usd").Set(budget);
  MaybeWriteTrace(aware.value().env.get());
  MaybeWriteReport(aware.value().env.get(),
                   aware.value().db->node().clock().now());
  return warm_dominates && decisions_differ && budget_guarded ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
