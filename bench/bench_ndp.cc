// Near-data processing crossover: runs Q1/Q6-shaped lineitem scans and a
// join-heavy case with pushdown off / on / auto, sweeping predicate
// selectivity and projection width, and reports bytes moved over the
// NIC, server-side scan volume, simulated latency, and $ per query.
//
// The interesting outputs:
//   - the >= 5x reduction in NIC bytes on the high-selectivity Q6-style
//     scan with NDP on (the subsystem's headline claim);
//   - the crossover: auto mode pushes selective/narrow scans into the
//     store but keeps wide low-selectivity scans (the join case) on the
//     pull path, where shipping pages once is cheaper than shipping a
//     nearly-complete result plus the per-request surcharge.

#include <cmath>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "tpch/queries_internal.h"

namespace cloudiq {
namespace bench {
namespace {

using tpch_internal::D;

struct ScanCase {
  const char* name;
  std::vector<std::string> columns;  // projected columns
  int64_t lo, hi;                    // l_shipdate range
  bool join;  // also scan orders (no range) and hash-join on l_orderkey
};

// TPC-H ship dates span 1992..1998. The sweep moves selectivity from
// ~1% (one month) to ~85% (six years) and projection width from 2 to 7
// columns; the join case adds a full orders scan and a hash join.
std::vector<ScanCase> Cases() {
  return {
      {"q6_month",
       {"l_extendedprice", "l_discount"},
       D(1994, 1, 1), D(1994, 2, 1) - 1, false},
      {"q6_year",
       {"l_extendedprice", "l_discount"},
       D(1994, 1, 1), D(1995, 1, 1) - 1, false},
      {"q1_wide",
       {"l_extendedprice", "l_discount", "l_quantity", "l_tax",
        "l_returnflag", "l_linestatus", "l_shipdate"},
       D(1994, 1, 1), D(1995, 1, 1) - 1, false},
      {"scan_low_sel",
       {"l_extendedprice", "l_discount", "l_quantity", "l_shipdate"},
       D(1992, 1, 1), D(1998, 1, 1) - 1, false},
      {"join_heavy",
       {"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"},
       D(1992, 1, 1), D(1998, 1, 1) - 1, true},
  };
}

struct CaseResult {
  double seconds = 0;
  uint64_t nic_bytes = 0;   // NIC bytes moved by the query (up + down)
  uint64_t scanned = 0;     // server-side bytes scanned (NDP only)
  uint64_t returned = 0;    // SELECT result bytes (NDP only)
  double usd = 0;           // full query cost: requests + EC2 time
  double select_p50 = 0;    // store-side SELECT latency (NDP only)
  double select_p95 = 0;
  uint64_t rows = 0;
  double checksum = 0;      // sum(l_extendedprice), result-equality check
  bool pushed = false;      // at least one scan went server-side
};

Result<CaseResult> RunCase(Database* db, const ScanCase& c) {
  CaseResult out;
  auto& stats = db->env().telemetry().stats();
  CostLedger& ledger = db->env().telemetry().ledger();
  uint64_t nic_before = db->node().nic().total_bytes();
  uint64_t scanned_before = stats.counter("ndp.bytes_scanned").value();
  uint64_t returned_before = stats.counter("ndp.bytes_returned").value();
  uint64_t pushed_before = stats.counter("ndp.pushdown_scans").value();
  SimTime before = db->node().clock().now();

  Transaction* txn = db->Begin();
  QueryContext ctx = db->NewQueryContext(txn, c.name);
  {
    ScopedQueryAttribution scope(&ctx);
    CLOUDIQ_ASSIGN_OR_RETURN(TableReader lineitem,
                             ctx.OpenTable(kLineitem));
    CLOUDIQ_ASSIGN_OR_RETURN(
        Batch items, ScanTable(&ctx, &lineitem, c.columns,
                               ScanRange{"l_shipdate", c.lo, c.hi}));
    if (c.join) {
      CLOUDIQ_ASSIGN_OR_RETURN(TableReader orders, ctx.OpenTable(kOrders));
      CLOUDIQ_ASSIGN_OR_RETURN(
          Batch ord,
          ScanTable(&ctx, &orders, {"o_orderkey", "o_custkey"}));
      CLOUDIQ_ASSIGN_OR_RETURN(
          items, HashJoin(&ctx, items, "l_orderkey", ord, "o_orderkey",
                          JoinType::kInner));
    }
    out.rows = items.rows();
    const ColumnVector& price = items.columns[items.Col("l_extendedprice")];
    for (int64_t v : price.ints) out.checksum += static_cast<double>(v);
    CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
  }
  out.seconds = db->node().clock().now() - before;
  ChargePhase(db, ctx.attribution(), out.seconds);
  out.nic_bytes = db->node().nic().total_bytes() - nic_before;
  out.scanned = stats.counter("ndp.bytes_scanned").value() - scanned_before;
  out.returned =
      stats.counter("ndp.bytes_returned").value() - returned_before;
  out.pushed =
      stats.counter("ndp.pushdown_scans").value() > pushed_before;
  // Each case runs in a fresh environment, so the whole histogram is
  // this query's SELECTs (empty when the scan pulled).
  const Histogram& select_latency = stats.histogram("s3.select");
  out.select_p50 = select_latency.p50();
  out.select_p95 = select_latency.p95();
  out.usd = ledger.QueryTotal(ctx.attribution().query_id)
                .TotalUsd(ledger.prices());
  if (Telemetry().print_explain) {
    std::printf("%s", FormatExplainAnalyze(&ctx).c_str());
  }
  return out;
}

// One mode's sweep. Every case gets a fresh environment + database, so
// each query runs cold (no cross-case buffer warm-up distorting the
// bytes-moved comparison); the last case's environment is kept alive to
// host the report gauges.
struct ModeRun {
  std::unique_ptr<SimEnvironment> env;
  std::unique_ptr<Database> db;
  std::vector<CaseResult> results;
  double nic_peak_gbps = 0;
};

Result<ModeRun> RunMode(ndp::NdpMode mode, double scale) {
  ModeRun run;
  for (const ScanCase& c : Cases()) {
    run.db.reset();  // db before env: it holds pointers into it
    run.env = std::make_unique<SimEnvironment>();
    Database::Options options;
    options.user_storage = UserStorage::kObjectStore;
    // Fair NIC comparison: no OCM layer, and a buffer cache far below
    // the working set, so the pull path fetches pages from the store
    // just like the paper's larger-than-RAM regime.
    options.enable_ocm = false;
    options.buffer_capacity_override =
        static_cast<uint64_t>(scale * 0.8e9 * 0.15);
    options.ndp_mode = mode;
    run.db = std::make_unique<Database>(run.env.get(),
                                        InstanceProfile::M5ad4xlarge(),
                                        options);
    MaybeEnableTracing(run.db.get());
    TpchGenerator gen(scale);
    CLOUDIQ_RETURN_IF_ERROR(LoadTpch(run.db.get(), &gen, {}).status());
    // The NIC trace (and total-bytes counter) starts after the load so
    // the per-query numbers are not swamped by the one-time upload.
    run.db->node().nic().set_trace_resolution(0.05);
    run.db->node().nic().ResetTrace();
    CLOUDIQ_ASSIGN_OR_RETURN(CaseResult r, RunCase(run.db.get(), c));
    run.results.push_back(r);
    const std::vector<double>& trace = run.db->node().nic().trace();
    double res = run.db->node().nic().trace_resolution();
    for (double bytes : trace) {
      run.nic_peak_gbps =
          std::max(run.nic_peak_gbps, bytes / res * 8 / 1e9);
    }
  }
  return run;
}

int Main() {
  double scale = BenchScale(0.01);
  Telemetry().scale_factor = scale;
  std::printf("=== Near-data processing: pushdown crossover (SF=%g, "
              "m5ad.4xlarge, OCM off) ===\n\n",
              scale);

  const ndp::NdpMode modes[] = {ndp::NdpMode::kOff, ndp::NdpMode::kOn,
                                ndp::NdpMode::kAuto};
  std::vector<ModeRun> runs;
  for (ndp::NdpMode mode : modes) {
    Result<ModeRun> r = RunMode(mode, scale);
    if (!r.ok()) {
      std::printf("mode %s failed: %s\n", ndp::NdpModeName(mode),
                  r.status().ToString().c_str());
      return 1;
    }
    runs.push_back(std::move(r.value()));
  }

  std::vector<ScanCase> cases = Cases();
  std::printf("%-13s %-5s %5s %12s %12s %12s %9s %11s\n", "case", "mode",
              "push", "nic_bytes", "scanned", "returned", "sim_s",
              "usd/query");
  bool results_match = true;
  for (size_t c = 0; c < cases.size(); ++c) {
    for (size_t m = 0; m < runs.size(); ++m) {
      const CaseResult& r = runs[m].results[c];
      std::printf("%-13s %-5s %5s %12llu %12llu %12llu %9.4f %11.6f\n",
                  cases[c].name, ndp::NdpModeName(modes[m]),
                  r.pushed ? "yes" : "no",
                  static_cast<unsigned long long>(r.nic_bytes),
                  static_cast<unsigned long long>(r.scanned),
                  static_cast<unsigned long long>(r.returned), r.seconds,
                  r.usd);
      if (r.rows != runs[0].results[c].rows ||
          std::abs(r.checksum - runs[0].results[c].checksum) > 1e-6) {
        results_match = false;
      }
    }
    Hr();
  }
  for (size_t m = 0; m < runs.size(); ++m) {
    std::printf("peak NIC bandwidth (%s): %.2f Gb/s\n",
                ndp::NdpModeName(modes[m]), runs[m].nic_peak_gbps);
  }

  // Headline checks. q6_month is the high-selectivity Q6-style scan;
  // join_heavy is the wide low-selectivity scan auto should keep local.
  const CaseResult& off_q6 = runs[0].results[0];
  const CaseResult& on_q6 = runs[1].results[0];
  double ratio = on_q6.nic_bytes > 0
                     ? static_cast<double>(off_q6.nic_bytes) /
                           static_cast<double>(on_q6.nic_bytes)
                     : 0;
  const CaseResult& auto_q6 = runs[2].results[0];
  const CaseResult& auto_join = runs[2].results.back();
  std::printf("\nNIC bytes q6_month, off vs on: %.1fx reduction "
              "(>= 5x wanted) -> %s\n",
              ratio, ratio >= 5.0 ? "YES" : "NO");
  std::printf("auto pushes q6_month / pulls join_heavy: %s\n",
              auto_q6.pushed && !auto_join.pushed ? "YES" : "NO");
  std::printf("results identical across modes: %s\n",
              results_match ? "YES" : "NO");

  // Crossover table into the (auto-mode) run report: deterministic gauge
  // names and values, so double runs byte-compare.
  auto& stats = runs.back().db->env().telemetry().stats();
  for (size_t c = 0; c < cases.size(); ++c) {
    for (size_t m = 0; m < runs.size(); ++m) {
      const CaseResult& r = runs[m].results[c];
      std::string prefix = std::string("ndp.bench.") + cases[c].name + "." +
                           ndp::NdpModeName(modes[m]);
      stats.gauge(prefix + ".nic_bytes")
          .Set(static_cast<double>(r.nic_bytes));
      stats.gauge(prefix + ".bytes_scanned")
          .Set(static_cast<double>(r.scanned));
      stats.gauge(prefix + ".bytes_returned")
          .Set(static_cast<double>(r.returned));
      stats.gauge(prefix + ".sim_seconds").Set(r.seconds);
      stats.gauge(prefix + ".usd").Set(r.usd);
      stats.gauge(prefix + ".select_p50").Set(r.select_p50);
      stats.gauge(prefix + ".select_p95").Set(r.select_p95);
      stats.gauge(prefix + ".pushed").Set(r.pushed ? 1 : 0);
    }
  }
  for (size_t m = 0; m < runs.size(); ++m) {
    stats.gauge(std::string("ndp.bench.nic_peak_gbps.") +
                ndp::NdpModeName(modes[m]))
        .Set(runs[m].nic_peak_gbps);
  }
  MaybeWriteTrace(&runs.back().db->env());
  MaybeWriteReport(&runs.back().db->env(),
                   runs.back().db->node().clock().now());
  bool ok = ratio >= 5.0 && auto_q6.pushed && !auto_join.pushed &&
            results_match;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
