// Reproduces Table 2 of "Bringing Cloud-Native Storage to SAP IQ"
// (SIGMOD'21): load and per-query execution times of the TPC-H benchmark
// in power mode, with the user dbspace on S3-like object storage vs
// EBS-like and EFS-like block volumes, on an m5ad.24xlarge-shaped node.
//
// Expected shape (paper, SF1000): S3 loads ~1.6x faster than EBS and
// ~4.8x faster than EFS; query geometric mean 23.2s (S3) vs 52.1 (EBS) vs
// 119.3 (EFS); short queries (Q2, Q19) are the exception where S3's
// per-request latency cannot be masked.

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

int Main() {
  // Table 2 needs enough data volume for bandwidth (not per-request
  // latency) to gate the load; below SF ~0.1 the fixed commit cost
  // dominates and EBS's low latency wins the load leg.
  double scale = BenchScale(0.25);
  std::printf(
      "=== Table 2: TPC-H load & query times by storage volume "
      "(SF=%g, simulated seconds) ===\n",
      scale);

  const UserStorage backends[] = {UserStorage::kObjectStore,
                                  UserStorage::kEbs, UserStorage::kEfs};
  PowerRunResult results[3];
  for (int b = 0; b < 3; ++b) {
    SimEnvironment env;
    Database::Options options;
    // The paper's regime: the compressed data (520 GB at SF1000) far
    // exceeds the buffer cache; scale the buffer to the bench-scale data
    // so the query leg measures storage, not RAM.
    options.buffer_capacity_override =
        static_cast<uint64_t>(scale * 0.8e9 * 0.15);
    options.user_storage = backends[b];
    Database db(&env, InstanceProfile::M5ad24xlarge(), WithNdp(options));
    TpchGenerator gen(scale);
    Result<PowerRunResult> run = RunPower(&db, &gen);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    results[b] = *run;
  }

  std::printf("%-9s %10s |", "Volume", "Load");
  for (int q = 1; q <= kTpchQueryCount; ++q) std::printf("  Q%-2d  ", q);
  std::printf("\n");
  Hr();
  for (int b = 0; b < 3; ++b) {
    std::printf("%-9s %10.1f |", StorageName(backends[b]),
                results[b].load_seconds);
    for (int q = 0; q < kTpchQueryCount; ++q) {
      std::printf(" %6.2f", results[b].query_seconds[q]);
    }
    std::printf("\n");
  }
  Hr();
  std::printf("Query geometric means: S3=%.2f s   EBS=%.2f s   EFS=%.2f s\n",
              results[0].QueryGeoMean(), results[1].QueryGeoMean(),
              results[2].QueryGeoMean());
  std::printf("Load speedup: S3 vs EBS = %.2fx, S3 vs EFS = %.2fx\n",
              results[1].load_seconds / results[0].load_seconds,
              results[2].load_seconds / results[0].load_seconds);
  std::printf(
      "Paper (SF1000): geo means 23.2 / 52.1 / 119.3; load 2657 / 4294 / "
      "12677 s.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
