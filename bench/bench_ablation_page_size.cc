// Ablation: cloud dbspaces with custom page sizes (the paper's §8 future
// work — "the requirement of having a unified page size across the whole
// database was primarily driven by the characteristics of shared block
// devices that do not necessarily apply to object stores"). Sweeps the
// user-dbspace page size and reports load time, footprint, request counts
// and a scan-heavy / lookup-heavy query pair: small pages cost more
// requests per byte (latency-bound loads suffer); large pages amplify
// read volume for selective queries.

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

int Main() {
  double scale = BenchScale(0.1);
  std::printf("=== Ablation: cloud dbspace page size (SF=%g) ===\n",
              scale);
  std::printf("%-10s %10s %10s %10s %12s %16s\n", "Page size", "Load (s)",
              "PUTs", "At rest", "Q1 scan (s)", "50 lookups (s)");
  Hr();

  const uint64_t sizes[] = {64 << 10, 256 << 10, 512 << 10, 2 << 20};
  for (uint64_t page_size : sizes) {
    SimEnvironment env;
    Database::Options options;
    options.user_storage = UserStorage::kObjectStore;
    options.page_size = page_size;
    Database db(&env, InstanceProfile::M5ad24xlarge(), WithNdp(options));
    MaybeEnableTracing(&db);
    TpchGenerator gen(scale);
    Result<TpchLoadResult> load = LoadTpch(&db, &gen, {});
    if (!load.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   load.status().ToString().c_str());
      return 1;
    }
    uint64_t puts = env.object_store().stats().puts;

    // Start cold so page size shows up in the read path.
    if (!db.CrashAndRecover().ok()) return 1;
    SimTime before = db.node().clock().now();
    {
      Transaction* txn = db.Begin();
      QueryContext ctx = db.NewQueryContext(txn);
      if (!RunTpchQuery(&ctx, 1).ok()) return 1;
      (void)db.Commit(txn);
    }
    double scan_time = db.node().clock().now() - before;

    // Cold indexed point lookups: each reads one index page and one data
    // page per touched column — exactly where oversized pages amplify
    // the bytes read per probe.
    if (!db.CrashAndRecover().ok()) return 1;
    before = db.node().clock().now();
    {
      Transaction* txn = db.Begin();
      QueryContext ctx = db.NewQueryContext(txn);
      Result<TableReader> lineitem = ctx.OpenTable(kLineitem);
      if (!lineitem.ok()) return 1;
      Rng rng(7);
      size_t partitions = lineitem->meta().partitions.size();
      for (int i = 0; i < 50; ++i) {
        int64_t orderkey = rng.UniformRange(
            1, static_cast<int64_t>(gen.RowCount(kOrders)));
        size_t p = rng.Uniform(partitions);
        Result<IntervalSet> rows = lineitem->IndexLookup(p, 0, orderkey);
        if (!rows.ok()) return 1;
        if (rows->empty()) continue;
        Result<Batch> hit = ScanRowIds(&ctx, &*lineitem, p,
                                       {"l_orderkey", "l_quantity"},
                                       *rows);
        if (!hit.ok()) return 1;
      }
      (void)db.Commit(txn);
    }
    double lookup_time = db.node().clock().now() - before;

    std::printf("%7llu KB %10.2f %10llu %7.1f MB %12.3f %16.3f\n",
                static_cast<unsigned long long>(page_size >> 10),
                load->seconds, static_cast<unsigned long long>(puts),
                load->bytes_at_rest / 1e6, scan_time, lookup_time);
    MaybeReportTelemetry(&db);
  }
  Hr();
  std::printf("Small pages multiply request counts (latency-bound load); "
              "large pages read more bytes per selective probe.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
