// Reproduces Table 5: utilization of the Object Cache Manager during the
// execution of the TPC-H queries (cache misses / hits / evictions), plus
// the GET-request savings the paper attributes to the OCM (74.5% hit
// rate, 2,807,368 averted GETs, $1.12 = 32% of the query-phase request
// bill at SF1000).

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

int Main() {
  double scale = BenchScale(0.05);
  std::printf("=== Table 5: OCM utilization during the TPC-H queries "
              "(SF=%g) ===\n",
              scale);

  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  // The paper's regime: the working set exceeds the RAM buffer, so query
  // re-reads reach the OCM instead of staying in RAM (520 GB of data vs a
  // 192 GB buffer at SF1000). Scale the buffer accordingly.
  options.buffer_capacity_override =
      static_cast<uint64_t>(scale * 0.8e9 * 0.15);
  Database db(&env, InstanceProfile::M5ad24xlarge(), WithNdp(options));
  TpchGenerator gen(scale);
  if (!LoadTpch(&db, &gen, {}).ok()) return 1;

  // The query run starts with a cold OCM (fresh instance), as in the
  // paper's experiment — the warm-up misses of the early queries are part
  // of the measurement.
  if (!db.CrashAndRecover().ok()) return 1;
  db.ocm()->ResetStats();
  uint64_t gets_before = env.cost_meter().s3_gets();
  // Run the suite twice so the second pass exercises a warm cache (the
  // paper's sequential 22 queries re-touch many shared pages).
  for (int pass = 0; pass < 2; ++pass) {
    Result<std::array<double, kTpchQueryCount>> queries =
        RunQueriesOnly(&db);
    if (!queries.ok()) {
      std::fprintf(stderr, "queries failed: %s\n",
                   queries.status().ToString().c_str());
      return 1;
    }
  }
  const ObjectCacheManager::Stats& stats = db.ocm()->stats();
  uint64_t lookups = stats.hits + stats.misses;
  uint64_t gets_during_queries = env.cost_meter().s3_gets() - gets_before;

  std::printf("%-14s %12s %10s\n", "", "Objects", "Percentage");
  Hr();
  std::printf("%-14s %12llu %9.1f%%\n", "Cache Misses",
              static_cast<unsigned long long>(stats.misses),
              lookups > 0 ? 100.0 * stats.misses / lookups : 0.0);
  std::printf("%-14s %12llu %9.1f%%\n", "Cache Hits",
              static_cast<unsigned long long>(stats.hits),
              lookups > 0 ? 100.0 * stats.hits / lookups : 0.0);
  std::printf("%-14s %12llu\n", "Evictions",
              static_cast<unsigned long long>(stats.evictions));
  Hr();

  CloudPrices prices;
  double averted_usd = stats.hits / 1000.0 * prices.s3_get_per_1k;
  double issued_usd = gets_during_queries / 1000.0 * prices.s3_get_per_1k;
  std::printf("GET requests averted by the OCM: %llu (= $%.6f saved, "
              "%.0f%% of the query-phase GET bill)\n",
              static_cast<unsigned long long>(stats.hits), averted_usd,
              averted_usd + issued_usd > 0
                  ? 100.0 * averted_usd / (averted_usd + issued_usd)
                  : 0.0);
  std::printf("Paper (SF1000): 962,573 misses (25.5%%), 2,807,368 hits "
              "(74.5%%), $1.12 saved (32%%).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
