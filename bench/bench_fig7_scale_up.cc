// Reproduces Figure 7: scale-up behavior. TPC-H loaded into a cloud
// dbspace and queried on instances of increasing capacity
// (m5ad.4xlarge / 12xlarge / 24xlarge = 16 / 48 / 96 vCPUs).
//
// Expected shape (paper, log-log): almost-linear scaling 16 -> 48 vCPUs;
// smaller gains 48 -> 96 because the engine's I/O pipeline (bounded by
// the 512 KB page size) saturates the NIC near 9 Gb/s — compute keeps
// scaling but the load's I/O leg does not.

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

int Main() {
  double scale = BenchScale(0.25);
  std::printf("=== Figure 7: scale-up behaviour (SF=%g) ===\n", scale);
  std::printf("%-15s %6s %12s %12s %12s\n", "Instance", "vCPUs",
              "Load (s)", "Queries (s)", "Total (s)");
  Hr();

  const InstanceProfile profiles[3] = {InstanceProfile::M5ad4xlarge(),
                                       InstanceProfile::M5ad12xlarge(),
                                       InstanceProfile::M5ad24xlarge()};
  double totals[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    SimEnvironment env;
    Database::Options options;
    options.user_storage = UserStorage::kObjectStore;
    Database db(&env, profiles[i], WithNdp(options));
    TpchGenerator gen(scale);
    Result<PowerRunResult> run = RunPower(&db, &gen);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    totals[i] = run->TotalSeconds();
    std::printf("%-15s %6d %12.1f %12.1f %12.1f\n",
                profiles[i].name.c_str(), profiles[i].vcpus,
                run->load_seconds, run->QuerySum(), run->TotalSeconds());
  }
  Hr();
  std::printf("Speedup 16->48 vCPUs: %.2fx (ideal 3.0x)\n",
              totals[0] / totals[1]);
  std::printf("Speedup 48->96 vCPUs: %.2fx (ideal 2.0x; the paper sees "
              "clearly sub-linear gains here)\n",
              totals[1] / totals[2]);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
