// Reproduces Figure 7: scale-up behavior, in two parts.
//
// Part 1 — modeled instance sweep (the paper's experiment): TPC-H loaded
// into a cloud dbspace and queried on instances of increasing capacity
// (m5ad.4xlarge / 12xlarge / 24xlarge = 16 / 48 / 96 vCPUs). Expected
// shape (paper, log-log): almost-linear scaling 16 -> 48 vCPUs; smaller
// gains 48 -> 96 because the engine's I/O pipeline (bounded by the
// 512 KB page size) saturates the NIC near 9 Gb/s — compute keeps
// scaling but the load's I/O leg does not. Skipped under --quick.
//
// Part 2 — morsel-executor worker sweep: Q1 and Q6 on one instance class
// at 1/2/4/8 executor workers (or just --workers=N when given). In sim
// mode (default) the simulated query times must be bitwise identical
// across worker counts — the executor charges morsels to the simulated
// clock in a fixed order regardless of how many host threads ran them —
// and this binary fails if they are not. In native mode (--exec=native)
// each sweep point is also wall-clock timed (warmup + min over reps) and
// the host-time speedup over one worker is reported, plus published as
// parallel.bench.* gauges in --report. Wall speedup saturates at the
// host's core count: a 1-core container shows ~1.0x at every width.
//
// Each sweep point rebuilds the database from scratch so its simulated
// trajectory is identical run-to-run: same load, same warmup, same query
// sequence. That makes the sim-invariance check exact rather than
// modulo cache state.

#include "bench/bench_util.h"

#include <chrono>
#include <thread>
#include <vector>

namespace cloudiq {
namespace bench {
namespace {

// Host wall-clock reading. Sim benches are banned from wall time by the
// determinism lint; native-mode wall speedup is the one measurement that
// *is* host time, so this is the sanctioned escape hatch.
double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now()  // NOLINT(cloudiq-wall-clock): native-mode wall speedup is itself the measurement
                 .time_since_epoch())
      .count();
}

// Loads TPC-H into `db` under the same attribution/stall discipline as
// RunPower, so the stall profile of a sweep-point report still conserves.
Status LoadForSweep(Database* db, TpchGenerator* gen) {
  CostLedger& ledger = db->env().telemetry().ledger();
  TpchLoadOptions load_options;
  AttributionContext load_attr;
  load_attr.query_id = ledger.NextQueryId();
  load_attr.node_id = db->node().trace_pid();
  load_attr.tag = "load";
  double seconds = 0;
  {
    ScopedAttribution scope(&ledger, load_attr);
    StallProfiler& profiler = db->env().telemetry().profiler();
    ScopedStall stall(&profiler, &db->node().clock(), WaitClass::kCpuExec);
    profiler.PinScopeAttribution();
    CLOUDIQ_ASSIGN_OR_RETURN(TpchLoadResult load,
                             LoadTpch(db, gen, load_options));
    seconds = load.seconds;
  }
  ChargePhase(db, load_attr, seconds);
  return Status::Ok();
}

int InstanceSweep(double scale) {
  std::printf("=== Figure 7 (part 1): instance scale-up (SF=%g) ===\n",
              scale);
  std::printf("%-15s %6s %12s %12s %12s\n", "Instance", "vCPUs",
              "Load (s)", "Queries (s)", "Total (s)");
  Hr();

  const InstanceProfile profiles[3] = {InstanceProfile::M5ad4xlarge(),
                                       InstanceProfile::M5ad12xlarge(),
                                       InstanceProfile::M5ad24xlarge()};
  double totals[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    SimEnvironment env;
    Database::Options options;
    options.user_storage = UserStorage::kObjectStore;
    Database db(&env, profiles[i], WithExec(WithNdp(options)));
    TpchGenerator gen(scale);
    Result<PowerRunResult> run = RunPower(&db, &gen);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    totals[i] = run->TotalSeconds();
    std::printf("%-15s %6d %12.1f %12.1f %12.1f\n",
                profiles[i].name.c_str(), profiles[i].vcpus,
                run->load_seconds, run->QuerySum(), run->TotalSeconds());
  }
  Hr();
  std::printf("Speedup 16->48 vCPUs: %.2fx (ideal 3.0x)\n",
              totals[0] / totals[1]);
  std::printf("Speedup 48->96 vCPUs: %.2fx (ideal 2.0x; the paper sees "
              "clearly sub-linear gains here)\n",
              totals[1] / totals[2]);
  return 0;
}

int WorkerSweep(double scale, bool workers_pinned) {
  const ExecMode mode = Exec().mode;
  const int kReps = 3;
  std::vector<int> widths;
  if (workers_pinned) {
    widths.push_back(Exec().workers);
  } else {
    widths = {1, 2, 4, 8};
  }
  std::printf("=== Figure 7 (part 2): morsel worker sweep "
              "(exec=%s, SF=%g, reps=%d)\n",
              ExecModeName(mode), scale, kReps);
  std::printf("%-8s %12s %12s", "Workers", "Q1 sim(s)", "Q6 sim(s)");
  if (mode == ExecMode::kNative) {
    std::printf(" %13s %13s %9s %9s", "Q1 wall(s)", "Q6 wall(s)",
                "Q1 spd", "Q6 spd");
  }
  std::printf("\n");
  Hr();

  double q1_sim_base = -1, q6_sim_base = -1;
  double q1_wall_base = 0, q6_wall_base = 0;
  struct WallPoint {
    int workers;
    double q1;
    double q6;
  };
  std::vector<WallPoint> walls;
  for (size_t i = 0; i < widths.size(); ++i) {
    int w = widths[i];
    SimEnvironment env;
    Database::Options options;
    options.user_storage = UserStorage::kObjectStore;
    Database db(&env, InstanceProfile::M5ad4xlarge(),
                WithExec(WithNdp(options)));
    db.SetExecOptions(mode, w);
    TpchGenerator gen(scale);
    Status st = LoadForSweep(&db, &gen);
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      return 1;
    }
    MaybeEnableTracing(&db);
    double q1_sim = 0, q6_sim = 0;
    double q1_wall = 0, q6_wall = 0;
    // Warmup rep primes the buffer pool (and, native, the host caches);
    // timed reps then see identical cache state, and min-of-reps damps
    // scheduler noise in the wall numbers.
    for (int rep = 0; rep <= kReps; ++rep) {
      double t0 = WallNow();
      st = RunOneTpchQuery(&db, 1, &q1_sim);
      double t1 = WallNow();
      if (st.ok()) st = RunOneTpchQuery(&db, 6, &q6_sim);
      double t2 = WallNow();
      if (!st.ok()) {
        std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
        return 1;
      }
      if (rep == 0) continue;  // warmup
      if (rep == 1 || t1 - t0 < q1_wall) q1_wall = t1 - t0;
      if (rep == 1 || t2 - t1 < q6_wall) q6_wall = t2 - t1;
    }
    // The determinism contract: simulated time may not depend on the
    // worker count (nor, by the same construction, on the mode).
    if (i == 0) {
      q1_sim_base = q1_sim;
      q6_sim_base = q6_sim;
      q1_wall_base = q1_wall;
      q6_wall_base = q6_wall;
    } else if (q1_sim != q1_sim_base || q6_sim != q6_sim_base) {
      std::fprintf(stderr,
                   "FAIL: sim time depends on worker count "
                   "(w=%d: Q1 %.9f vs %.9f, Q6 %.9f vs %.9f)\n",
                   w, q1_sim, q1_sim_base, q6_sim, q6_sim_base);
      return 1;
    }
    std::printf("%-8d %12.6f %12.6f", w, q1_sim, q6_sim);
    if (mode == ExecMode::kNative) {
      std::printf(" %13.6f %13.6f %8.2fx %8.2fx", q1_wall, q6_wall,
                  q1_wall_base / q1_wall, q6_wall_base / q6_wall);
      walls.push_back({w, q1_wall, q6_wall});
    }
    // Every sweep point rebuilds its environment, and the exported
    // report holds the last point's telemetry — so the whole sweep's
    // gauges are emitted into that final environment here. Sim seconds
    // are deterministic (identical across runs, modes and worker
    // counts), so publishing them keeps sim reports byte-identical;
    // wall gauges ride into --report only in native mode.
    if (i + 1 == widths.size()) {
      StatsRegistry& stats = env.telemetry().stats();
      stats.gauge("parallel.bench.sim.q1_seconds").Set(q1_sim);
      stats.gauge("parallel.bench.sim.q6_seconds").Set(q6_sim);
      if (mode == ExecMode::kNative) {
        stats.gauge("parallel.bench.hw_cores")
            .Set(static_cast<double>(std::thread::hardware_concurrency()));
        for (const WallPoint& point : walls) {
          std::string prefix =
              "parallel.bench.native.w" + std::to_string(point.workers);
          stats.gauge(prefix + ".q1_wall_seconds").Set(point.q1);
          stats.gauge(prefix + ".q6_wall_seconds").Set(point.q6);
          stats.gauge(prefix + ".q1_speedup")
              .Set(walls.front().q1 / point.q1);
          stats.gauge(prefix + ".q6_speedup")
              .Set(walls.front().q6 / point.q6);
        }
      }
    }
    std::printf("\n");
    // Several configurations: the exported trace/report holds the most
    // recent sweep point (the bench_util contract).
    MaybeReportTelemetry(&db);
  }
  Hr();
  if (mode == ExecMode::kSim) {
    std::printf("sim times identical across worker counts (deterministic "
                "mode holds)\n");
  } else {
    std::printf("native wall speedup saturates at the host's %u cores\n",
                std::thread::hardware_concurrency());
  }
  return 0;
}

int Main(bool quick, bool workers_pinned) {
  double scale = BenchScale(quick ? 0.01 : 0.25);
  Telemetry().scale_factor = scale;
  if (!quick) {
    int rc = InstanceSweep(scale);
    if (rc != 0) return rc;
    std::printf("\n");
  }
  return WorkerSweep(scale, workers_pinned);
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  bool quick = false;
  bool workers_pinned = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--workers=", 10) == 0) workers_pinned = true;
  }
  return cloudiq::bench::Main(quick, workers_pinned);
}
