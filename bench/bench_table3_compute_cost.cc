// Reproduces Table 3: the monetary *compute* cost of loading TPC-H and of
// running the 22 queries once, per storage volume. Costs combine EC2
// instance time (simulated hours x the calibrated hourly rate) with S3
// request charges (PUT/GET), exactly the composition the paper describes.
//
// Expected shape (paper, SF1000): load S3 $15.18 / EBS $5.04 / EFS $15.39
// (S3 loads fast but pays PUTs; EFS pays long instance hours); query S3
// $2.35 / EBS $3.88 / EFS $8.53 (S3's GET charges are amortized by faster
// execution).

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

int Main() {
  double scale = BenchScale(0.25);
  std::printf(
      "=== Table 3: compute cost of load and of one query suite run "
      "(SF=%g) ===\n",
      scale);
  std::printf("%-9s %14s %14s   %s\n", "Volume", "Load (USD)",
              "Query (USD)", "(EC2 time + S3 requests)");
  Hr();

  const UserStorage backends[] = {UserStorage::kObjectStore,
                                  UserStorage::kEbs, UserStorage::kEfs};
  double hourly = InstanceProfile::M5ad24xlarge().hourly_usd;
  for (UserStorage backend : backends) {
    SimEnvironment env;
    Database::Options options;
    // The paper's regime: the compressed data (520 GB at SF1000) far
    // exceeds the buffer cache; scale the buffer to the bench-scale data
    // so the query leg measures storage, not RAM.
    options.buffer_capacity_override =
        static_cast<uint64_t>(scale * 0.8e9 * 0.15);
    options.user_storage = backend;
    Database db(&env, InstanceProfile::M5ad24xlarge(), WithNdp(options));
    TpchGenerator gen(scale);

    CostMeter& meter = env.cost_meter();
    TpchLoadOptions load_options;
    Result<TpchLoadResult> load = LoadTpch(&db, &gen, load_options);
    if (!load.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   load.status().ToString().c_str());
      return 1;
    }
    double load_requests_usd = meter.S3RequestUsd();
    double load_usd = load->seconds / 3600.0 * hourly + load_requests_usd;

    SimTime query_start = db.node().clock().now();
    Result<std::array<double, kTpchQueryCount>> queries =
        RunQueriesOnly(&db);
    if (!queries.ok()) return 1;
    double query_seconds = db.node().clock().now() - query_start;
    double query_requests_usd = meter.S3RequestUsd() - load_requests_usd;
    double query_usd = query_seconds / 3600.0 * hourly + query_requests_usd;

    std::printf("%-9s %14.4f %14.4f   (load: %.1fs EC2 + $%.4f req; "
                "query: %.1fs EC2 + $%.4f req)\n",
                StorageName(backend), load_usd, query_usd, load->seconds,
                load_requests_usd, query_seconds, query_requests_usd);
  }
  Hr();
  std::printf("Paper (SF1000): load 15.18 / 5.04 / 15.39 USD; query 2.35 / "
              "3.88 / 8.53 USD.\n");
  std::printf("Shape: S3 queries are the cheapest despite GET charges; EFS "
              "is the most expensive on both legs; S3 loads pay a PUT "
              "premium over EBS.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
