// §5's headline claim: "on a database where all user dbspaces are on the
// cloud, taking a snapshot can be near-instantaneous", because only the
// (shrunken) system dbspace must be backed up — cloud pages are already
// retained by deferred deletion. This bench grows the database and
// compares snapshot duration and backup bytes between a cloud-dbspace
// database and a conventional EBS-dbspace database, whose user volume
// must be copied in full.

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

struct SnapResult {
  double duration = 0;
  uint64_t backup_bytes = 0;
  uint64_t data_bytes = 0;
};

Result<SnapResult> SnapshotAfterLoad(UserStorage storage, double scale) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = storage;
  Database db(&env, InstanceProfile::M5ad4xlarge(), WithNdp(options));
  MaybeEnableTracing(&db);
  TpchGenerator gen(scale);
  CLOUDIQ_ASSIGN_OR_RETURN(TpchLoadResult load, LoadTpch(&db, &gen, {}));
  CLOUDIQ_ASSIGN_OR_RETURN(SnapshotManager::SnapshotInfo info,
                           db.TakeSnapshot());
  MaybeReportTelemetry(&db);
  return SnapResult{info.duration_seconds, info.backup_bytes,
                    load.bytes_at_rest};
}

int Main() {
  std::printf("=== §5: snapshot cost vs database size "
              "(cloud dbspace vs EBS dbspace) ===\n");
  std::printf("%8s | %12s %14s | %12s %14s\n", "SF", "cloud snap(s)",
              "cloud backup", "EBS snap(s)", "EBS backup");
  Hr();
  const double scales[] = {0.02, 0.1, 0.25};
  double last_cloud = 0, last_ebs = 0;
  for (double scale : scales) {
    Result<SnapResult> cloud =
        SnapshotAfterLoad(UserStorage::kObjectStore, scale);
    Result<SnapResult> ebs = SnapshotAfterLoad(UserStorage::kEbs, scale);
    if (!cloud.ok() || !ebs.ok()) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    std::printf("%8g | %12.4f %11.2f MB | %12.4f %11.2f MB\n", scale,
                cloud->duration, cloud->backup_bytes / 1e6, ebs->duration,
                ebs->backup_bytes / 1e6);
    last_cloud = cloud->duration;
    last_ebs = ebs->duration;
  }
  Hr();
  std::printf(
      "Cloud snapshots back up only the system dbspace (catalog, logs, "
      "shrunken freelist) and stay flat as data grows;\nconventional "
      "snapshots copy the whole user volume. At the largest size the "
      "cloud snapshot is %.0fx faster.\n",
      last_ebs / std::max(last_cloud, 1e-9));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
