// Micro-benchmarks (google-benchmark) for CloudIQ's hot primitives:
// n-bit packing, column-page encode/decode, RLE page compression, object
// key generation, bitmap and interval-set operations. These measure real
// CPU time (not simulated time) and guard against regressions in the
// encode/decode paths that the simulated CPU-cost model abstracts.

#include <benchmark/benchmark.h>

#include "columnar/encoding.h"
#include "common/bitmap.h"
#include "common/interval_set.h"
#include "common/random.h"
#include "keygen/object_key_generator.h"
#include "store/page_codec.h"
#include "store/physical_loc.h"

namespace cloudiq {
namespace {

void BM_NBitPack(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<uint64_t> values(8192);
  uint64_t mask =
      width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  for (auto& v : values) v = rng.Next() & mask;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NBitPack(values, width));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_NBitPack)->Arg(4)->Arg(13)->Arg(32);

void BM_NBitUnpack(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<uint64_t> values(8192);
  uint64_t mask =
      width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  for (auto& v : values) v = rng.Next() & mask;
  std::vector<uint8_t> packed = NBitPack(values, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NBitUnpack(packed, width, values.size()));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_NBitUnpack)->Arg(4)->Arg(13)->Arg(32);

void BM_EncodeIntColumnPage(benchmark::State& state) {
  ColumnVector col;
  col.type = ColumnType::kInt64;
  Rng rng(2);
  for (int i = 0; i < 8192; ++i) {
    col.ints.push_back(1000000 + static_cast<int64_t>(rng.Uniform(5000)));
  }
  for (auto _ : state) {
    ZoneMapEntry zone;
    benchmark::DoNotOptimize(EncodeColumnPage(col, 0, col.ints.size(),
                                              &zone));
  }
  state.SetItemsProcessed(state.iterations() * col.ints.size());
}
BENCHMARK(BM_EncodeIntColumnPage);

void BM_DecodeIntColumnPage(benchmark::State& state) {
  ColumnVector col;
  col.type = ColumnType::kInt64;
  Rng rng(2);
  for (int i = 0; i < 8192; ++i) {
    col.ints.push_back(1000000 + static_cast<int64_t>(rng.Uniform(5000)));
  }
  ZoneMapEntry zone;
  std::vector<uint8_t> page = EncodeColumnPage(col, 0, col.ints.size(),
                                               &zone);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeColumnPage(page));
  }
  state.SetItemsProcessed(state.iterations() * col.ints.size());
}
BENCHMARK(BM_DecodeIntColumnPage);

void BM_PageCodecRle(benchmark::State& state) {
  std::vector<uint8_t> payload(512 * 1024, 0);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    payload[rng.Uniform(payload.size())] = static_cast<uint8_t>(rng.Next());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodePage(payload));
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_PageCodecRle);

void BM_KeyGeneration(benchmark::State& state) {
  ObjectKeyGenerator gen;
  NodeKeyCache cache(
      [&](uint64_t size, double) { return gen.AllocateRange(1, size); });
  double now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.NextKey(now));
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyGeneration);

void BM_HashKeyPrefix(benchmark::State& state) {
  uint64_t key = kCloudKeyBase;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashKeyPrefix(key++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashKeyPrefix);

void BM_BitmapSetRange(benchmark::State& state) {
  for (auto _ : state) {
    Bitmap bm;
    bm.SetRange(0, 100000);
    benchmark::DoNotOptimize(bm.CountSet());
  }
}
BENCHMARK(BM_BitmapSetRange);

void BM_IntervalSetInsert(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    IntervalSet set;
    for (int i = 0; i < 1000; ++i) {
      uint64_t begin = kCloudKeyBase + rng.Uniform(1 << 20);
      set.InsertRange(begin, begin + 16);
    }
    benchmark::DoNotOptimize(set.Count());
  }
}
BENCHMARK(BM_IntervalSetInsert);

}  // namespace
}  // namespace cloudiq

BENCHMARK_MAIN();
