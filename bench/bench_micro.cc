// Micro-benchmarks (google-benchmark) for CloudIQ's hot primitives:
// n-bit packing, column-page encode/decode, RLE page compression, object
// key generation, bitmap and interval-set operations. These measure real
// CPU time (not simulated time) and guard against regressions in the
// encode/decode paths that the simulated CPU-cost model abstracts.

#include <benchmark/benchmark.h>

#include "columnar/encoding.h"
#include "common/bitmap.h"
#include "common/interval_set.h"
#include "common/random.h"
#include "engine/database.h"
#include "keygen/object_key_generator.h"
#include "store/page_codec.h"
#include "store/physical_loc.h"

namespace cloudiq {
namespace {

void BM_NBitPack(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<uint64_t> values(8192);
  uint64_t mask =
      width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  for (auto& v : values) v = rng.Next() & mask;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NBitPack(values, width));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_NBitPack)->Arg(4)->Arg(13)->Arg(32);

void BM_NBitUnpack(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<uint64_t> values(8192);
  uint64_t mask =
      width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  for (auto& v : values) v = rng.Next() & mask;
  std::vector<uint8_t> packed = NBitPack(values, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NBitUnpack(packed, width, values.size()));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_NBitUnpack)->Arg(4)->Arg(13)->Arg(32);

void BM_EncodeIntColumnPage(benchmark::State& state) {
  ColumnVector col;
  col.type = ColumnType::kInt64;
  Rng rng(2);
  for (int i = 0; i < 8192; ++i) {
    col.ints.push_back(1000000 + static_cast<int64_t>(rng.Uniform(5000)));
  }
  for (auto _ : state) {
    ZoneMapEntry zone;
    benchmark::DoNotOptimize(EncodeColumnPage(col, 0, col.ints.size(),
                                              &zone));
  }
  state.SetItemsProcessed(state.iterations() * col.ints.size());
}
BENCHMARK(BM_EncodeIntColumnPage);

void BM_DecodeIntColumnPage(benchmark::State& state) {
  ColumnVector col;
  col.type = ColumnType::kInt64;
  Rng rng(2);
  for (int i = 0; i < 8192; ++i) {
    col.ints.push_back(1000000 + static_cast<int64_t>(rng.Uniform(5000)));
  }
  ZoneMapEntry zone;
  std::vector<uint8_t> page = EncodeColumnPage(col, 0, col.ints.size(),
                                               &zone);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeColumnPage(page));
  }
  state.SetItemsProcessed(state.iterations() * col.ints.size());
}
BENCHMARK(BM_DecodeIntColumnPage);

void BM_PageCodecRle(benchmark::State& state) {
  std::vector<uint8_t> payload(512 * 1024, 0);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    payload[rng.Uniform(payload.size())] = static_cast<uint8_t>(rng.Next());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodePage(payload));
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_PageCodecRle);

void BM_KeyGeneration(benchmark::State& state) {
  ObjectKeyGenerator gen;
  NodeKeyCache cache(
      [&](uint64_t size, double) { return gen.AllocateRange(1, size); });
  double now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.NextKey(now));
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyGeneration);

void BM_HashKeyPrefix(benchmark::State& state) {
  uint64_t key = kCloudKeyBase;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashKeyPrefix(key++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashKeyPrefix);

void BM_BitmapSetRange(benchmark::State& state) {
  for (auto _ : state) {
    Bitmap bm;
    bm.SetRange(0, 100000);
    benchmark::DoNotOptimize(bm.CountSet());
  }
}
BENCHMARK(BM_BitmapSetRange);

// --- morsel executor: native-mode full scan -------------------------------
// Host wall time of ScanTable at 1/2/4/8 executor workers over a wide
// synthetic table. The per-iteration work is fetch + page decode +
// materialize — exactly what the morsel executor fans out — so the
// items/s ratio between worker counts is the executor's real scale-up on
// this host (it saturates at the machine's core count).

constexpr uint64_t kScanFixtureTableId = 42;
constexpr int kScanFixtureCols = 4;
constexpr int64_t kScanFixtureRows = 1 << 18;

struct ScanFixture {
  SimEnvironment env;
  std::unique_ptr<Database> db;
};

ScanFixture* GlobalScanFixture() {
  static ScanFixture* fixture = [] {
    auto* f = new ScanFixture();  // leaked: lives for the whole process
    Database::Options options;
    options.user_storage = UserStorage::kObjectStore;
    f->db = std::make_unique<Database>(
        &f->env, InstanceProfile::M5ad4xlarge(), options);
    TableSchema schema;
    schema.name = "wide";
    schema.table_id = kScanFixtureTableId;
    for (int c = 0; c < kScanFixtureCols; ++c) {
      schema.columns.push_back({"c" + std::to_string(c),
                                ColumnType::kInt64});
    }
    Transaction* txn = f->db->Begin();
    TableLoader loader = f->db->NewTableLoader(txn, schema);
    Rng rng(7);
    Batch batch;
    for (int c = 0; c < kScanFixtureCols; ++c) {
      batch.AddColumn(schema.columns[c].name, {ColumnType::kInt64,
                                               {}, {}, {}});
    }
    for (int64_t i = 0; i < kScanFixtureRows; ++i) {
      for (int c = 0; c < kScanFixtureCols; ++c) {
        batch.columns[c].ints.push_back(
            static_cast<int64_t>(rng.Uniform(1 << 20)));
      }
    }
    if (!loader.Append(batch.columns).ok() ||
        !loader.Finish(f->db->system()).ok() ||
        !f->db->Commit(txn).ok()) {
      std::abort();
    }
    return f;
  }();
  return fixture;
}

void BM_ParallelScanDecode(benchmark::State& state) {
  ScanFixture* f = GlobalScanFixture();
  f->db->SetExecOptions(ExecMode::kNative,
                        static_cast<int>(state.range(0)));
  Transaction* txn = f->db->Begin();
  QueryContext ctx = f->db->NewQueryContext(txn, "bm_scan");
  Result<TableReader> reader = ctx.OpenTable(kScanFixtureTableId);
  if (!reader.ok()) {
    state.SkipWithError(reader.status().ToString().c_str());
    return;
  }
  std::vector<std::string> cols;
  for (int c = 0; c < kScanFixtureCols; ++c) {
    cols.push_back("c" + std::to_string(c));
  }
  for (auto _ : state) {
    Result<Batch> batch = ScanTable(&ctx, &*reader, cols);
    if (!batch.ok()) {
      state.SkipWithError(batch.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(batch->rows());
  }
  state.SetItemsProcessed(state.iterations() * kScanFixtureRows *
                          kScanFixtureCols);
  (void)f->db->Commit(txn);
}
BENCHMARK(BM_ParallelScanDecode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_IntervalSetInsert(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    IntervalSet set;
    for (int i = 0; i < 1000; ++i) {
      uint64_t begin = kCloudKeyBase + rng.Uniform(1 << 20);
      set.InsertRange(begin, begin + 16);
    }
    benchmark::DoNotOptimize(set.Count());
  }
}
BENCHMARK(BM_IntervalSetInsert);

}  // namespace
}  // namespace cloudiq

BENCHMARK_MAIN();
