// Reproduces Figure 9: scale-out behaviour. Eight TPC-H query streams
// (pseudo-random permutations of the 22 queries) run concurrently over a
// multiplex of 2, 4 and 8 secondary nodes; the system dbspace sits on a
// shared EFS-like volume, user data on the object store.
//
// Expected shape (paper, log-log): doubling the secondaries roughly
// halves the time to drain all streams, because aggregate object-store
// throughput grows with the node count — unlike provisioned block
// volumes, whose throughput is fixed.

#include <algorithm>

#include "bench/bench_util.h"
#include "multiplex/multiplex.h"

namespace cloudiq {
namespace bench {
namespace {

Result<double> RunStreams(int secondaries, double scale) {
  SimEnvironment env;
  Multiplex::Options options;
  options.db.user_storage = UserStorage::kObjectStore;
  options.db = WithNdp(options.db);
  // The paper's regime: the working set exceeds the buffer cache, so
  // every stream keeps reading from the object store (or the node's OCM)
  // for the whole run — at bench scale that needs an explicit cap.
  options.db.buffer_capacity_override =
      static_cast<uint64_t>(scale * 0.8e9 * 0.15);
  Multiplex mx(&env, secondaries, options);
  MaybeEnableTracing(&env);

  // Bulk-load through the first writer node, then attach every reader.
  TpchGenerator gen(scale);
  TpchLoadOptions load_options;
  CLOUDIQ_RETURN_IF_ERROR(LoadTpch(&mx.secondary(0), &gen, load_options)
                              .status());
  CLOUDIQ_RETURN_IF_ERROR(mx.SyncCatalogs());

  // Warm every node's caches with one untimed pass: at SF1000 the paper's
  // throughput run operates at a cache steady state (Table 5's 74.5% hit
  // rate); at bench scale the cold-start cost would otherwise dominate
  // and mask the scale-out effect under study.
  for (int i = 0; i < secondaries; ++i) {
    for (int q = 1; q <= kTpchQueryCount; ++q) {
      Database& node_db = mx.secondary(i);
      Transaction* txn = node_db.Begin();
      QueryContext ctx = node_db.NewQueryContext(txn);
      CLOUDIQ_RETURN_IF_ERROR(RunTpchQuery(&ctx, q).status());
      CLOUDIQ_RETURN_IF_ERROR(node_db.Commit(txn));
    }
  }

  // Eight streams, balanced across the secondaries; each node gets its
  // streams' queries as one work list. Nodes execute on their own
  // simulated timelines, interleaved in global time order (always advance
  // the node with the smallest clock) so that shared-resource queueing —
  // the EFS system volume, the object store — is modelled faithfully.
  constexpr int kStreams = 8;
  Rng rng(2021);
  std::vector<std::vector<int>> work(secondaries);
  for (int stream = 0; stream < kStreams; ++stream) {
    std::vector<int> order(kTpchQueryCount);
    for (int q = 0; q < kTpchQueryCount; ++q) order[q] = q + 1;
    for (int q = kTpchQueryCount - 1; q > 0; --q) {
      std::swap(order[q], order[rng.Uniform(q + 1)]);
    }
    auto& node_work = work[stream % secondaries];
    node_work.insert(node_work.end(), order.begin(), order.end());
  }

  // Align every node's clock to the same start line.
  SimTime start = 0;
  for (int i = 0; i < secondaries; ++i) {
    start = std::max(start, mx.secondary(i).node().clock().now());
  }
  std::vector<size_t> next(secondaries, 0);
  for (int i = 0; i < secondaries; ++i) {
    mx.secondary(i).node().clock().AdvanceTo(start);
  }
  for (;;) {
    int best = -1;
    for (int i = 0; i < secondaries; ++i) {
      if (next[i] >= work[i].size()) continue;
      if (best < 0 || mx.secondary(i).node().clock().now() <
                          mx.secondary(best).node().clock().now()) {
        best = i;
      }
    }
    if (best < 0) break;
    Database& node_db = mx.secondary(best);
    int q = work[best][next[best]++];
    Transaction* txn = node_db.Begin();
    QueryContext ctx = node_db.NewQueryContext(txn);
    CLOUDIQ_RETURN_IF_ERROR(RunTpchQuery(&ctx, q).status());
    CLOUDIQ_RETURN_IF_ERROR(node_db.Commit(txn));
  }
  double elapsed = 0;
  for (int i = 0; i < secondaries; ++i) {
    elapsed = std::max(
        elapsed, mx.secondary(i).node().clock().now() - start);
  }
  MaybeReportTelemetry(&mx.secondary(0));
  return elapsed;
}

int Main() {
  double scale = BenchScale(0.05);
  std::printf("=== Figure 9: scale-out of 8 concurrent query streams "
              "(SF=%g) ===\n",
              scale);
  std::printf("%-12s %20s\n", "Secondaries", "All streams done (s)");
  Hr();
  double times[3] = {0, 0, 0};
  int sizes[3] = {2, 4, 8};
  for (int i = 0; i < 3; ++i) {
    Result<double> t = RunStreams(sizes[i], scale);
    if (!t.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   t.status().ToString().c_str());
      return 1;
    }
    times[i] = *t;
    std::printf("%-12d %20.1f\n", sizes[i], times[i]);
  }
  Hr();
  std::printf("Scaling 2->4 nodes: %.2fx (ideal 2.0x)\n",
              times[0] / times[1]);
  std::printf("Scaling 4->8 nodes: %.2fx (ideal 2.0x)\n",
              times[1] / times[2]);
  std::printf("Paper: doubling the secondaries almost halves the total "
              "time — combined S3 throughput grows with node count.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
