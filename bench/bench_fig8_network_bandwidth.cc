// Reproduces Figure 8: network bandwidth utilization during the TPC-H
// load on the m5ad.24xlarge instance. The paper observed the NIC
// saturating at slightly above 9 Gb/s — well below the instance's
// 20 Gb/s — and attributed the ceiling to the engine's I/O pipeline at
// the fixed 512 KB page size.

#include <algorithm>

#include "bench/bench_util.h"

namespace cloudiq {
namespace bench {
namespace {

int Main() {
  double scale = BenchScale(0.25);
  std::printf("=== Figure 8: NIC bandwidth during load (SF=%g, "
              "m5ad.24xlarge, 20 Gb/s NIC) ===\n",
              scale);

  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  Database db(&env, InstanceProfile::M5ad24xlarge(), WithNdp(options));
  MaybeEnableTracing(&db);
  TpchGenerator gen(scale);
  // Bench-scale loads finish in simulated seconds, so the trace samples
  // at 50 ms (the paper's figure samples a multi-minute load per second).
  db.node().nic().set_trace_resolution(0.05);
  db.node().nic().ResetTrace();
  if (!LoadTpch(&db, &gen, {}).ok()) return 1;

  const std::vector<double>& trace = db.node().nic().trace();
  if (trace.empty()) {
    std::printf("(no trace)\n");
    return 1;
  }
  double res = db.node().nic().trace_resolution();
  double peak = 0;
  for (double bytes : trace) peak = std::max(peak, bytes / res);
  double peak_gbps = peak * 8 / 1e9;

  // Bandwidth-over-time bar chart, one row per sample.
  std::printf("\n  t(s)   Gb/s  |bar (each # ~ 0.25 Gb/s)\n");
  for (size_t s = 0; s < trace.size(); ++s) {
    double gbps = trace[s] / res * 8 / 1e9;
    int bars = static_cast<int>(gbps / 0.25);
    std::printf("  %5.2f  %5.2f |", s * res, gbps);
    for (int b = 0; b < bars && b < 60; ++b) std::printf("#");
    std::printf("\n");
  }
  std::printf("\nPeak observed bandwidth: %.2f Gb/s (instance NIC: 20 "
              "Gb/s)\n",
              peak_gbps);
  std::printf("Paper: saturation slightly above 9 Gb/s, attributed to the "
              "engine's intrinsic I/O pipeline limits at 512 KB pages.\n");
  std::printf("Reproduced %s: the plateau sits at the pipeline's "
              "80-stream ceiling, far below the NIC line rate.\n",
              peak_gbps < 15.0 ? "YES" : "NO");
  MaybeReportTelemetry(&db);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudiq

int main(int argc, char** argv) {
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::bench::Main();
}
