// Reproduces Table 1 of the paper: the recovery / garbage-collection
// walk-through. A multiplex with a coordinator and one writer (W1) plays
// the scripted event sequence — checkpoint, key-range allocation, commits,
// a coordinator crash + recovery, a rollback, and a writer crash +
// restart — printing the coordinator's active set after each event.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "keygen/object_key_generator.h"
#include "store/physical_loc.h"

namespace cloudiq {
namespace {

std::string ActiveSetString(const ObjectKeyGenerator& gen, NodeId node) {
  const IntervalSet& set = gen.ActiveSet(node);
  if (set.empty()) return "(empty)";
  std::string out;
  for (const auto& iv : set.Intervals()) {
    if (!out.empty()) out += ", ";
    // Print offsets from 2^63 so the table reads like the paper's
    // 101-200 example.
    out += "{" + std::to_string(iv.begin - kCloudKeyBase) + "-" +
           std::to_string(iv.end - 1 - kCloudKeyBase) + "}";
  }
  return "W1: " + out;
}

void Row(int clock, const char* event, const char* description,
         const std::string& active_set) {
  std::printf("| %5d | %-22s | %-58s | %-18s |\n", clock, event, description,
              active_set.c_str());
}

int Main() {
  std::printf(
      "=== Table 1: recovery and garbage collection walk-through ===\n");
  std::printf("(key offsets are relative to 2^63, mirroring the paper's "
              "101-200 presentation)\n\n");
  std::printf("| clock | event                  | description            "
              "                                    | active set(s)      |\n");

  ObjectKeyGenerator::Options opts;
  opts.first_key = kCloudKeyBase + 101;
  opts.min_range_size = 1;
  ObjectKeyGenerator gen(opts);

  // Clock 50: checkpoint.
  std::vector<uint8_t> checkpoint = gen.Checkpoint();
  Row(50, "Checkpoint", "metadata incl. active sets flushed to disk",
      "(empty)");

  // Clock 60: range 101-200 allocated to W1.
  KeyRange range = gen.AllocateRange(/*node=*/1, 100);
  Row(60, "W1 allocation", "key range 101-200 allocated to W1",
      ActiveSetString(gen, 1));

  // Clock 70: T1 flushes objects 101-130 (recorded in T1's RB bitmap).
  IntervalSet t1;
  t1.InsertRange(range.begin, range.begin + 30);
  Row(70, "T1 begins on W1",
      "objects 101-130 flushed; range recorded in T1's RB bitmap",
      ActiveSetString(gen, 1));

  // Clock 80: T2 uses 131-150.
  IntervalSet t2;
  t2.InsertRange(range.begin + 30, range.begin + 50);
  Row(80, "T2 begins on W1",
      "objects 131-150 used by T2; recorded in T2's RB bitmap",
      ActiveSetString(gen, 1));

  // Clock 90: T1 commits; its keys leave the active set.
  gen.OnTransactionCommitted(1, t1);
  Row(90, "T1 commits", "RF/RB of T1 flushed; active set updated",
      ActiveSetString(gen, 1));

  // Clock 100: T3 flushes 151-160.
  Row(100, "T3 begins on W1",
      "objects 151-160 flushed; recorded in T3's RB bitmap",
      ActiveSetString(gen, 1));

  // Clock 110: coordinator crashes — volatile state gone.
  std::vector<KeygenLogRecord> replay_log = gen.pending_log();
  Row(110, "Coordinator crashes", "", "(empty)");

  // Clock 120: coordinator recovers from checkpoint + log replay.
  ObjectKeyGenerator recovered =
      ObjectKeyGenerator::Recover(checkpoint, replay_log, opts);
  Row(120, "Coordinator recovers", "active set recovered",
      ActiveSetString(recovered, 1));

  // Clock 130: T2 rolls back; W1 deletes 131-150 locally, the
  // coordinator is deliberately NOT notified.
  Row(130, "T2 rolls back",
      "objects 131-150 garbage collected; active set NOT updated",
      ActiveSetString(recovered, 1));

  // Clock 140: W1 crashes.
  Row(140, "W1 crashes", "", ActiveSetString(recovered, 1));

  // Clock 150: W1 restarts; the coordinator polls the entire active set
  // for garbage collection (idempotently re-covering 131-150).
  IntervalSet polled = recovered.TakeActiveSetForRecovery(1);
  Row(150, "W1 restarts",
      "outstanding allocations garbage collected on the coordinator",
      ActiveSetString(recovered, 1));

  std::printf("\nPolled for GC at clock 150: %llu keys "
              "(131-200, including T2's already-deleted 131-150 and the "
              "unconsumed tail)\n",
              static_cast<unsigned long long>(polled.Count()));
  bool ok = polled.Count() == 70 &&
            polled.Contains(kCloudKeyBase + 131) &&
            polled.Contains(kCloudKeyBase + 200) &&
            !polled.Contains(kCloudKeyBase + 130);
  std::printf("Matches the paper's Table 1 semantics: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace cloudiq

int main(int argc, char** argv) {
  // No simulated environment here (pure keygen walk-through), but the
  // shared flags are accepted so every bench binary has the same CLI.
  cloudiq::bench::InitTelemetry(argc, argv);
  return cloudiq::Main();
}
