// Seed-swept StepFiber interleaving stress: Options::resume_perturb_seed
// replaces the engine's earliest-virtual-time resume policy with a
// seeded hash, so every seed drives a different — but legal and
// reproducible — fiber interleaving through the whole lock graph
// (engine, admission, scheduler, fibers, buffer, OCM, store, telemetry).
// The runtime lock-rank tripwire is on by default in every test binary,
// so any ordering bug an interleaving shakes out aborts loudly here
// before the morsel-parallel executor multiplies the interleavings.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "engine/database.h"
#include "sim/environment.h"
#include "sim/instance_profile.h"
#include "workload/workload_engine.h"

namespace cloudiq {
namespace {

Database::Options SmallDbOptions() {
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 8192;
  options.blockmap_fanout = 16;
  return options;
}

// A query body that burns `steps` slices of simulated CPU, yielding to
// the engine after each slice — every yield is a resume-order decision
// point for the perturbation to flip.
WorkloadEngine::QueryBody SyntheticBody(int steps) {
  return [steps](Session*, QueryContext* ctx) {
    for (int i = 0; i < steps; ++i) ctx->ChargeValues(300000);
    return Status::Ok();
  };
}

struct RunOutcome {
  uint64_t completed = 0;
  uint64_t steps = 0;
  double end_time = 0;
  std::vector<uint64_t> completion_order;

  bool operator==(const RunOutcome& o) const {
    return completed == o.completed && steps == o.steps &&
           end_time == o.end_time && completion_order == o.completion_order;
  }
};

RunOutcome RunWorkload(uint64_t perturb_seed) {
  SimEnvironment env;
  auto db1 = std::make_unique<Database>(&env, InstanceProfile::M5ad4xlarge(),
                                        SmallDbOptions());
  auto db2 = std::make_unique<Database>(&env, InstanceProfile::M5ad4xlarge(),
                                        SmallDbOptions());
  WorkloadEngine::Options options;
  options.slots_per_node = 3;
  options.resume_perturb_seed = perturb_seed;
  WorkloadEngine engine({db1.get(), db2.get()}, options, {});

  RunOutcome outcome;
  engine.set_completion_hook([&](const WorkloadEngine::Completion& c) {
    if (!c.shed && c.status.ok()) ++outcome.completed;
    outcome.completion_order.push_back(c.job_id);
  });
  // Arrivals 10us apart against ~22.5us steps (300k values / 16 vcpus at
  // 1.2ns per value), so many jobs are resident at once and every resume
  // is a real choice for the perturbation to flip.
  const char* tenants[] = {"alpha", "beta", "gamma"};
  for (int i = 0; i < 12; ++i) {
    engine.Submit(tenants[i % 3], "q" + std::to_string(i), 0.00001 * i,
                  SyntheticBody(3 + i % 4));
  }
  EXPECT_TRUE(engine.RunUntilIdle().ok());
  outcome.steps = engine.steps();
  outcome.end_time = engine.now();
  return outcome;
}

TEST(LockStressTest, SeedSweepCompletesUnderTripwire) {
  // Every perturbed interleaving must complete all jobs with the
  // tripwire silent (an inversion would abort the binary).
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunOutcome outcome = RunWorkload(seed);
    EXPECT_EQ(outcome.completed, 12u) << "seed " << seed;
    EXPECT_EQ(outcome.completion_order.size(), 12u) << "seed " << seed;
    EXPECT_GT(outcome.steps, 12u) << "seed " << seed;
  }
}

TEST(LockStressTest, SameSeedReproducesTheSchedule) {
  for (uint64_t seed : {1ull, 5ull, 8ull}) {
    RunOutcome first = RunWorkload(seed);
    RunOutcome second = RunWorkload(seed);
    EXPECT_TRUE(first == second) << "seed " << seed;
  }
}

TEST(LockStressTest, SeedsActuallyPerturbTheSchedule) {
  // The knob must do something: across the sweep at least two seeds
  // produce different completion orders (else the stress is a no-op).
  std::vector<RunOutcome> outcomes;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    outcomes.push_back(RunWorkload(seed));
  }
  bool any_difference = false;
  for (size_t i = 1; i < outcomes.size(); ++i) {
    if (!(outcomes[i] == outcomes[0])) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(LockStressTest, ZeroSeedKeepsTheDefaultSchedule) {
  // resume_perturb_seed = 0 must be byte-identical to the default
  // earliest-virtual-time policy (it is the shipped configuration).
  RunOutcome defaulted = RunWorkload(0);
  RunOutcome again = RunWorkload(0);
  EXPECT_TRUE(defaulted == again);
  EXPECT_EQ(defaulted.completed, 12u);
}

}  // namespace
}  // namespace cloudiq
