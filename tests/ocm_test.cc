#include <gtest/gtest.h>

#include "ocm/object_cache_manager.h"
#include "tests/test_util.h"

namespace cloudiq {
namespace {

using testing_util::SingleNodeHarness;

class OcmTest : public ::testing::Test {
 protected:
  OcmTest() : OcmTest(ObjectStoreOptions()) {}
  explicit OcmTest(ObjectStoreOptions store_opts)
      : h_(4096, store_opts),
        ocm_(h_.node, &h_.storage->object_io()) {
    h_.storage->set_cloud_cache(&ocm_);
  }

  // Writes an object directly (bypassing the OCM) so reads can miss.
  uint64_t PutDirect(uint8_t seed, size_t size = 1024) {
    uint64_t key = h_.key_cache->NextKey(h_.node->clock().now());
    SimTime done = 0;
    Status st = h_.storage->object_io().Put(key, h_.MakePayload(size, seed),
                                            h_.node->clock().now(), &done);
    EXPECT_TRUE(st.ok());
    h_.node->clock().AdvanceTo(done);
    return key;
  }

  SingleNodeHarness h_;
  ObjectCacheManager ocm_;
};

TEST_F(OcmTest, ReadThroughCachesAsynchronously) {
  uint64_t key = PutDirect(5);
  h_.node->clock().Advance(10);  // let visibility settle

  SimTime done = 0;
  Result<std::vector<uint8_t>> first =
      ocm_.Read(key, h_.node->clock().now(), &done);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(ocm_.stats().misses, 1u);
  EXPECT_EQ(ocm_.stats().hits, 0u);

  // Run the asynchronous cache fill, then read again: now a local hit.
  h_.node->clock().AdvanceTo(done + 1.0);
  h_.node->executor().RunDue(h_.node->clock().now());
  Result<std::vector<uint8_t>> second =
      ocm_.Read(key, h_.node->clock().now(), &done);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(ocm_.stats().hits, 1u);
  EXPECT_EQ(second.value(), first.value());
}

TEST_F(OcmTest, CacheHitFasterThanObjectStore) {
  uint64_t key = PutDirect(6, 64 * 1024);
  h_.node->clock().Advance(10);
  SimTime done = 0;
  SimTime t0 = h_.node->clock().now();
  ASSERT_TRUE(ocm_.Read(key, t0, &done).ok());
  double miss_latency = done - t0;
  h_.node->clock().AdvanceTo(done + 1.0);
  h_.node->executor().RunDue(h_.node->clock().now());

  SimTime t1 = h_.node->clock().now();
  ASSERT_TRUE(ocm_.Read(key, t1, &done).ok());
  double hit_latency = done - t1;
  EXPECT_LT(hit_latency, miss_latency / 5);
}

TEST_F(OcmTest, WriteBackLatencyIsLocal) {
  uint64_t key = h_.key_cache->NextKey(0);
  SimTime done = 0;
  SimTime t0 = h_.node->clock().now();
  ASSERT_TRUE(ocm_.Write(key, h_.MakePayload(64 * 1024, 1),
                         CloudCache::WriteMode::kWriteBack, /*txn=*/1, t0,
                         &done)
                  .ok());
  double wb_latency = done - t0;

  uint64_t key2 = h_.key_cache->NextKey(0);
  SimTime t1 = done;
  ASSERT_TRUE(ocm_.Write(key2, h_.MakePayload(64 * 1024, 1),
                         CloudCache::WriteMode::kWriteThrough, 1, t1, &done)
                  .ok());
  double wt_latency = done - t1;
  // Write-back completes at SSD speed; write-through pays the object
  // store's latency.
  EXPECT_LT(wb_latency, wt_latency / 5);
}

TEST_F(OcmTest, WriteBackUploadsInBackground) {
  uint64_t key = h_.key_cache->NextKey(0);
  SimTime done = 0;
  ASSERT_TRUE(ocm_.Write(key, h_.MakePayload(512, 3),
                         CloudCache::WriteMode::kWriteBack, 1, 0.0, &done)
                  .ok());
  EXPECT_EQ(ocm_.write_queue_depth(), 1u);
  // Background pump runs as simulated time passes.
  h_.node->executor().RunDue(done + 10.0);
  EXPECT_EQ(ocm_.write_queue_depth(), 0u);
  EXPECT_EQ(ocm_.stats().background_uploads, 1u);
  // The object is durable on the store.
  SimTime get_done = 0;
  EXPECT_TRUE(h_.storage->object_io()
                  .Get(key, done + 100.0, &get_done)
                  .ok());
}

TEST_F(OcmTest, PendingWriteBackReadableBeforeUpload) {
  uint64_t key = h_.key_cache->NextKey(0);
  SimTime done = 0;
  std::vector<uint8_t> payload = h_.MakePayload(512, 8);
  ASSERT_TRUE(ocm_.Write(key, payload, CloudCache::WriteMode::kWriteBack, 1,
                         0.0, &done)
                  .ok());
  // Read before the background upload has run: must not lose the page.
  Result<std::vector<uint8_t>> r = ocm_.Read(key, done, &done);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), payload);
}

TEST_F(OcmTest, FlushForCommitDrainsAndUpgrades) {
  // Queue several write-backs for txn 1 and one for txn 2.
  SimTime done = 0;
  std::vector<uint64_t> txn1_keys;
  for (int i = 0; i < 5; ++i) {
    uint64_t key = h_.key_cache->NextKey(0);
    txn1_keys.push_back(key);
    ASSERT_TRUE(ocm_.Write(key, h_.MakePayload(512, 1),
                           CloudCache::WriteMode::kWriteBack, 1,
                           h_.node->clock().now(), &done)
                    .ok());
  }
  uint64_t txn2_key = h_.key_cache->NextKey(0);
  ASSERT_TRUE(ocm_.Write(txn2_key, h_.MakePayload(512, 2),
                         CloudCache::WriteMode::kWriteBack, 2,
                         h_.node->clock().now(), &done)
                  .ok());

  // FlushForCommit(1): txn 1's uploads all executed synchronously (txn
  // 2's write stays a background job — it may drain via the pump, but is
  // never promoted).
  ASSERT_TRUE(ocm_.FlushForCommit(1, h_.node->clock().now(), &done).ok());
  EXPECT_EQ(ocm_.stats().commit_promotions, 5u);
  for (uint64_t key : txn1_keys) {
    SimTime get_done = 0;
    EXPECT_TRUE(h_.storage->object_io()
                    .Get(key, done + 100.0, &get_done)
                    .ok());
  }

  // Subsequent writes from txn 1 are upgraded to write-through.
  uint64_t late_key = h_.key_cache->NextKey(0);
  SimTime t0 = done + 200.0;
  SimTime wt_done = 0;
  ASSERT_TRUE(ocm_.Write(late_key, h_.MakePayload(512, 9),
                         CloudCache::WriteMode::kWriteBack, 1, t0, &wt_done)
                  .ok());
  SimTime get_done = 0;
  EXPECT_TRUE(h_.storage->object_io()
                  .Get(late_key, wt_done + 100.0, &get_done)
                  .ok());
}

TEST_F(OcmTest, AbortDropsQueuedUploadsAndLocalCopies) {
  uint64_t key = h_.key_cache->NextKey(0);
  SimTime done = 0;
  ASSERT_TRUE(ocm_.Write(key, h_.MakePayload(512, 1),
                         CloudCache::WriteMode::kWriteBack, 1, 0.0, &done)
                  .ok());
  ocm_.AbortTxn(1);
  EXPECT_EQ(ocm_.write_queue_depth(), 0u);
  // Nothing reaches the object store even after time passes.
  h_.node->executor().RunDue(done + 100.0);
  SimTime get_done = 0;
  EXPECT_TRUE(h_.storage->object_io()
                  .Get(key, done + 200.0, &get_done)
                  .status()
                  .IsNotFound());
}

TEST_F(OcmTest, EraseRemovesCachedObject) {
  uint64_t key = PutDirect(7);
  h_.node->clock().Advance(10);
  SimTime done = 0;
  ASSERT_TRUE(ocm_.Read(key, h_.node->clock().now(), &done).ok());
  h_.node->executor().RunDue(done + 10.0);
  ocm_.Erase(key);
  // Next read misses again (fetches from store).
  uint64_t misses_before = ocm_.stats().misses;
  ASSERT_TRUE(ocm_.Read(key, done + 20.0, &done).ok());
  EXPECT_EQ(ocm_.stats().misses, misses_before + 1);
}

TEST(OcmEvictionTest, LruEvictsWhenCapacityExceeded) {
  SingleNodeHarness h;
  ObjectCacheManager::Options opts;
  opts.capacity_fraction = 10.0 * 1024 / h.node->ssd().CapacityBytes();
  ObjectCacheManager ocm(h.node, &h.storage->object_io(), opts);

  // Write ~20 KB of pages through write-back; capacity is ~10 KB.
  SimTime done = 0;
  for (int i = 0; i < 20; ++i) {
    uint64_t key = h.key_cache->NextKey(0);
    ASSERT_TRUE(ocm.Write(key, h.MakePayload(1024, static_cast<uint8_t>(i)),
                          CloudCache::WriteMode::kWriteBack, 1,
                          h.node->clock().now(), &done)
                    .ok());
    h.node->clock().AdvanceTo(done);
    h.node->executor().RunDue(h.node->clock().now() + 5.0);
  }
  EXPECT_GT(ocm.stats().evictions, 0u);
  EXPECT_LE(ocm.cached_bytes(), 11 * 1024u);
}

TEST(OcmFaultTest, LocalWriteErrorsAreIgnored) {
  // §4: "If a write to the locally attached storage fails, the error is
  // ignored, and the page is written directly to the object store."
  SingleNodeHarness h;
  h.node->ssd().set_write_error_rate(1.0);  // every local write fails
  ObjectCacheManager ocm(h.node, &h.storage->object_io());

  uint64_t key = h.key_cache->NextKey(0);
  SimTime done = 0;
  std::vector<uint8_t> payload = h.MakePayload(256, 4);
  ASSERT_TRUE(ocm.Write(key, payload, CloudCache::WriteMode::kWriteBack, 1,
                        0.0, &done)
                  .ok());
  h.node->executor().RunDue(done + 10.0);
  EXPECT_GT(ocm.stats().local_write_errors_ignored, 0u);

  // The page is durable on the object store despite the dead SSD...
  SimTime get_done = 0;
  Result<std::vector<uint8_t>> direct =
      h.storage->object_io().Get(key, done + 100.0, &get_done);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.value(), payload);
  // ...and OCM reads still return it (read-through; fills keep failing).
  Result<std::vector<uint8_t>> via_ocm =
      ocm.Read(key, done + 200.0, &get_done);
  ASSERT_TRUE(via_ocm.ok());
  EXPECT_EQ(via_ocm.value(), payload);
}

TEST(OcmIntegrationTest, StorageSubsystemRoutesThroughOcm) {
  SingleNodeHarness h;
  ObjectCacheManager ocm(h.node, &h.storage->object_io());
  h.storage->set_cloud_cache(&ocm);

  std::vector<uint8_t> payload = h.MakePayload(2048, 3);
  Result<PhysicalLoc> loc = h.storage->WritePage(
      h.cloud_space, payload, CloudCache::WriteMode::kWriteBack, 1);
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(h.storage->FlushForCommit(1).ok());

  Result<std::vector<uint8_t>> back =
      h.storage->ReadPage(h.cloud_space, *loc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
  EXPECT_GT(ocm.stats().hits + ocm.stats().misses, 0u);
}

TEST(OcmBrownoutTest, BurstyFillsInflateHitLatency) {
  // Reproduce the Figure 6 Q3/Q4 mechanism: a cold OCM flooded with
  // asynchronous cache fills makes concurrent SSD *hits* slower than
  // going to the object store.
  SingleNodeHarness h;
  ObjectCacheManager ocm(h.node, &h.storage->object_io());

  // Seed one hot object into the cache.
  uint64_t hot = h.key_cache->NextKey(0);
  SimTime done = 0;
  ASSERT_TRUE(ocm.Write(hot, h.MakePayload(512 * 1024, 1),
                        CloudCache::WriteMode::kWriteBack, 1, 0.0, &done)
                  .ok());
  h.node->executor().RunDue(done + 10.0);
  h.node->clock().AdvanceTo(done + 10.0);

  // Baseline hit latency on a quiet device.
  SimTime t0 = h.node->clock().now();
  ASSERT_TRUE(ocm.Read(hot, t0, &done).ok());
  double quiet_hit = done - t0;

  // Cold-scan burst: many large read-throughs scheduling async fills.
  std::vector<uint64_t> cold;
  for (int i = 0; i < 400; ++i) {
    uint64_t key = h.key_cache->NextKey(0);
    SimTime put_done = 0;
    ASSERT_TRUE(h.storage->object_io()
                    .Put(key, h.MakePayload(512 * 1024, 2),
                         h.node->clock().now(), &put_done)
                    .ok());
    cold.push_back(key);
  }
  h.node->clock().Advance(50);
  SimTime burst_start = h.node->clock().now();
  for (uint64_t key : cold) {
    ASSERT_TRUE(ocm.Read(key, burst_start, &done).ok());
  }
  // Let the asynchronous fills land on the SSD, then read the hot page
  // while the device is still digesting the backlog — the hit queues
  // behind hundreds of 512 KB writes.
  SimTime t1 = burst_start + 0.1;
  h.node->executor().RunDue(t1);
  ASSERT_TRUE(ocm.Read(hot, t1, &done).ok());
  double busy_hit = done - t1;
  EXPECT_GT(busy_hit, 5 * quiet_hit);
  // This is the paper's observation verbatim: "the latency of reads is
  // significantly higher on the SSD devices than on S3" under fill
  // floods. A direct object-store GET would have been faster.
  EXPECT_GT(busy_hit, 0.012);
}

}  // namespace
}  // namespace cloudiq
